// The sweep-worker subcommand: the worker half of distributed
// verification. A coordinator (`blazes serve`) plans a sweep into seed-
// range batches; workers claim batches over HTTP, run them locally with
// the same RunCell the single-process check uses, and report the
// outcomes back. Any number of workers can serve the same coordinator;
// the merged report is byte-identical regardless of how the batches were
// sharded.
//
// Usage:
//
//	blazes sweep-worker -coordinator URL [-sweep id] [-parallel n]
//	                    [-poll d] [-name w] [-max n]
//
// With -sweep the worker drains that one sweep and exits when it
// completes; without it the worker serves every running sweep until
// interrupted.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"blazes/service"
	"blazes/verify"
)

func runSweepWorker(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blazes sweep-worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL, e.g. http://127.0.0.1:8351 (required)")
		sweepID     = fs.String("sweep", "", "serve one sweep id and exit when it completes (default: every running sweep, until interrupted)")
		parallel    = fs.Int("parallel", 0, "schedule workers per batch (0 = one per CPU, 1 = sequential)")
		poll        = fs.Duration("poll", 500*time.Millisecond, "poll interval when no work is claimable")
		name        = fs.String("name", "", "worker name reported in claims (default: host-pid)")
		maxBatches  = fs.Int("max", 2, "max batches per claim")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: blazes sweep-worker -coordinator URL [-sweep id] [-parallel n] [-poll d] [-name w] [-max n]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return exitOK
		}
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "blazes: sweep-worker: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		fs.Usage()
		return exitUsage
	}
	if *coordinator == "" {
		fmt.Fprintf(stderr, "blazes: sweep-worker: -coordinator is required\n")
		fs.Usage()
		return exitUsage
	}
	if *parallel < 0 || *maxBatches <= 0 || *poll <= 0 {
		fmt.Fprintf(stderr, "blazes: sweep-worker: -parallel must be ≥ 0, -max and -poll positive\n")
		fs.Usage()
		return exitUsage
	}
	worker := *name
	if worker == "" {
		host, _ := os.Hostname()
		worker = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	parallelism := *parallel
	if parallelism == 0 {
		parallelism = -1 // one worker per CPU
	}
	base := strings.TrimRight(*coordinator, "/")

	for ctx.Err() == nil {
		ids := []string{*sweepID}
		if *sweepID == "" {
			var list service.SweepListResponse
			if err := getJSON(ctx, base+"/v1/sweeps", &list); err != nil {
				fmt.Fprintln(stderr, "blazes: sweep-worker:", err)
				sleepCtx(ctx, *poll)
				continue
			}
			ids = ids[:0]
			for _, st := range list.Sweeps {
				if st.State == "running" {
					ids = append(ids, st.Sweep)
				}
			}
		}
		worked := false
		for _, id := range ids {
			n, done, err := workSweep(ctx, base, id, worker, parallelism, *maxBatches, stderr)
			if err != nil {
				if ctx.Err() != nil {
					return exitOK
				}
				fmt.Fprintf(stderr, "blazes: sweep-worker: sweep %s: %v\n", id, err)
				if *sweepID != "" {
					return exitError
				}
				continue
			}
			worked = worked || n > 0
			if done && *sweepID != "" {
				fmt.Fprintf(stdout, "sweep %s: all batches reported\n", id)
				return exitOK
			}
		}
		if !worked {
			sleepCtx(ctx, *poll)
		}
	}
	return exitOK
}

// workSweep performs one claim round against sweep id: claim up to max
// batches, run each locally, report the outcomes. It returns the number
// of batches completed and whether the sweep has every batch reported.
func workSweep(ctx context.Context, base, id, worker string, parallelism, max int, stderr io.Writer) (int, bool, error) {
	var claim service.SweepClaimResponse
	err := postJSON(ctx, base+"/v1/sweeps/"+id+"/claim",
		service.SweepClaimRequest{Worker: worker, Max: max}, &claim)
	if err != nil {
		return 0, false, err
	}
	done := claim.Done
	for _, b := range claim.Batches {
		wl, err := verify.LookupWorkload(b.Cell.Workload)
		if err != nil {
			return 0, done, err
		}
		outs, err := verify.RunCell(ctx, wl, b.Cell, parallelism, b.SeedFrom, b.SeedTo)
		if err != nil {
			// The claim lease expires and the batch is re-issued; nothing
			// to report.
			return 0, done, err
		}
		var rep service.SweepReportResponse
		if err := postJSON(ctx, base+"/v1/sweeps/"+id+"/report",
			service.SweepReportRequest{Batch: &b.ID, Outcomes: outs}, &rep); err != nil {
			return 0, done, err
		}
		fmt.Fprintf(stderr, "sweep %s: batch %d (%s under %s/%s seeds [%d,%d)) reported, %d/%d seeds done\n",
			id, b.ID, b.Cell.Workload, b.Cell.Mechanism, b.Cell.Plan.Name, b.SeedFrom, b.SeedTo,
			rep.SeedsDone, rep.SeedsTotal)
		done = rep.Done
	}
	return len(claim.Batches), done, nil
}

// getJSON / postJSON are the tiny coordinator client: JSON in, JSON out,
// any non-2xx status surfaced as an error carrying the server's message.
func getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(req, out)
}

func postJSON(ctx context.Context, url string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(req, out)
}

func doJSON(req *http.Request, out any) error {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e service.ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
