package blazes

import (
	"blazes/internal/core"
	"blazes/internal/dataflow"
	"blazes/internal/fd"
)

// This file re-exports the Blazes domain vocabulary so that programs embed
// the analysis through `import "blazes"` alone. The aliases are the same
// types the internal packages use, so graphs built here flow through the
// analyzer without conversion; the internal packages stay free to move as
// long as these names keep their meaning.

// Label is a stream label of the Figure 8 lattice: a kind plus, for Seal
// and NDRead, the attribute subscript.
type Label = core.Label

// LabelKind enumerates the stream labels of Figure 8.
type LabelKind = core.LabelKind

// The stream-label kinds of Figure 8, from least to most severe.
const (
	LNDRead  = core.LNDRead
	LTaint   = core.LTaint
	LSeal    = core.LSeal
	LAsync   = core.LAsync
	LRun     = core.LRun
	LInst    = core.LInst
	LDiverge = core.LDiverge
)

// The subscript-free labels.
var (
	Async   = core.Async
	Run     = core.Run
	Inst    = core.Inst
	Diverge = core.Diverge
)

// Seal returns the Seal_key label for the given key attributes.
func Seal(key ...string) Label { return core.Seal(key...) }

// Annotation is a C.O.W.R. component-path annotation (Figure 7).
type Annotation = core.Annotation

// The confluent annotations. Order-sensitive annotations are built with
// ORGate/OWGate/ORStar/OWStar.
var (
	CR = core.CR
	CW = core.CW
)

// ORGate returns the OR_gate annotation: order-sensitive, read-only,
// partitioned on the given attributes.
func ORGate(gate ...string) Annotation { return core.ORGate(gate...) }

// OWGate returns the OW_gate annotation: order-sensitive, stateful,
// partitioned on the given attributes.
func OWGate(gate ...string) Annotation { return core.OWGate(gate...) }

// ORStar returns OR*: order-sensitive read with unknown partitioning.
func ORStar() Annotation { return core.ORStar() }

// OWStar returns OW*: order-sensitive write with unknown partitioning.
func OWStar() Annotation { return core.OWStar() }

// ParseAnnotation parses the paper's textual annotation names ("CR", "CW",
// "OR", "OW", "OR*", "OW*") with an optional subscript list.
func ParseAnnotation(label string, subscript []string) (Annotation, error) {
	return core.ParseAnnotation(label, subscript)
}

// Step records one inference step of the Figure 9 reduction rules.
type Step = core.Step

// Reconciliation captures one Figure 10 run at an output interface.
type Reconciliation = core.Reconciliation

// AttrSet is an immutable sorted set of attribute names (seal keys, gates,
// schemas).
type AttrSet = fd.AttrSet

// Attrs builds an attribute set from names.
func Attrs(names ...string) AttrSet { return fd.NewAttrSet(names...) }

// FDSet carries injective functional-dependency lineage for white-box
// components (seal-compatibility and key chasing).
type FDSet = fd.Set

// NewFDSet builds a dependency set from the given FDs.
func NewFDSet(fds ...FD) *FDSet { return fd.NewSet(fds...) }

// FD is one (possibly injective) functional dependency.
type FD = fd.FD

// InjectiveFD declares from ↣ to.
func InjectiveFD(from, to AttrSet) FD { return fd.NewInjectiveFD(from, to) }

// IdentityFD declares attr ↣ attr (the attribute passes through unchanged).
func IdentityFD(attr string) FD { return fd.Identity(attr) }

// RenameFD declares from ↣ to for single attributes (a projection rename).
func RenameFD(from, to string) FD { return fd.Rename(from, to) }

// Graph is a logical dataflow: components wired by streams. Build one with
// a GraphBuilder (or load one from a Spec) and hand it to an Analyzer.
type Graph = dataflow.Graph

// Component is a unit of computation and storage with annotated paths.
type Component = dataflow.Component

// Stream connects component interfaces (or external sources/sinks).
type Stream = dataflow.Stream

// Analysis is the raw whole-dataflow analysis result. Most callers want
// the Result/Report returned by Analyzer; Analysis is exposed for tools
// that walk derivations directly.
type Analysis = dataflow.Analysis

// Strategy is a synthesized coordination plan for one component.
type Strategy = dataflow.Strategy

// Coordination enumerates the delivery mechanisms of Figure 5.
type Coordination = dataflow.Coordination

// The delivery mechanisms of Figure 5, plus the mechanisms installed by
// registered strategies (see the blazes/strategy package).
const (
	CoordNone            = dataflow.CoordNone
	CoordSequenced       = dataflow.CoordSequenced
	CoordDynamicOrder    = dataflow.CoordDynamicOrder
	CoordSealed          = dataflow.CoordSealed
	CoordQuorumOrder     = dataflow.CoordQuorumOrder
	CoordMergeRewrite    = dataflow.CoordMergeRewrite
	CoordPartitionSealed = dataflow.CoordPartitionSealed
)

// AdQuery selects which continuous query (Figure 6) the paper's reporting
// server runs.
type AdQuery = dataflow.AdQuery

// The four reporting-server queries of Figure 6.
const (
	THRESH   = dataflow.THRESH
	POOR     = dataflow.POOR
	WINDOW   = dataflow.WINDOW
	CAMPAIGN = dataflow.CAMPAIGN
)

// WordcountTopology builds the paper's streaming wordcount dataflow
// (Section VI-A); sealBatch seals the tweet source per batch.
func WordcountTopology(sealBatch bool) *Graph { return dataflow.WordcountTopology(sealBatch) }

// AdNetwork builds the paper's ad-tracking dataflow (Figures 3/4) with the
// given reporting query; sealKey, when non-empty, seals the click stream.
func AdNetwork(query AdQuery, sealKey ...string) *Graph {
	return dataflow.AdNetwork(query, sealKey...)
}
