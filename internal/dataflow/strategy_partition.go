package dataflow

// StrategyPartitionSealing names the per-partition sealing strategy
// (M3p): the same punctuation/voting protocol as sealing, but each
// partition key seals and releases independently, so one slow partition
// does not hold back reads against the others.
const StrategyPartitionSealing = "partition-sealing"

func init() { RegisterStrategy(partitionSealingStrategy{}) }

type partitionSealingStrategy struct{}

func (partitionSealingStrategy) Name() string { return StrategyPartitionSealing }

func (partitionSealingStrategy) Summary() string {
	return "per-partition sealing (M3p): partitions seal and release independently — same protocol cost as sealing, but a straggler partition delays only its own reads"
}

func (partitionSealingStrategy) Plan(ctx *StrategyContext) (Strategy, bool) {
	a, g, comp := ctx.Analysis, ctx.Graph, ctx.Component
	if ctx.Origin {
		keys, ok := sealPlan(a, g, comp)
		if !ok {
			return Strategy{}, false
		}
		return Strategy{
			Component: comp.Name,
			Mechanism: CoordPartitionSealed,
			SealKeys:  keys,
			Reason:    "order-sensitive paths are compatible with the seals on their rendezvousing inputs; partitions release independently as they seal",
		}, true
	}
	keys, ok := sealPlan(a, g, comp)
	if !ok {
		keys = consumedSealKeys(a, g, comp)
	}
	return Strategy{
		Component: comp.Name,
		Mechanism: CoordPartitionSealed,
		SealKeys:  keys,
		Reason:    "sealed inputs gate per-partition processing; partitions release independently as their seals arrive",
	}, true
}
