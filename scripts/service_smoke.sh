#!/usr/bin/env bash
# service_smoke.sh — end-to-end smoke test of `blazes serve`: boot the
# service on a free port, drive one create → mutate → analyze → verify
# round trip over HTTP, then prove durability the hard way — kill -9 the
# journaled server mid-life, restart it on the same journal, and assert
# the session replays intact — and finally send SIGTERM and assert a
# clean (exit 0) shutdown. CI runs this as the service job; it is also
# the quickest local sanity check after touching blazes/service,
# blazes/internal/journal or cmd/blazes.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="$(mktemp -d)/blazes"
OUT="$(mktemp)"
JOURNAL="$(mktemp -d)"
SERVER_PID=""
cleanup() {
	[[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
	rm -rf "$(dirname "$BIN")" "$OUT" "$JOURNAL"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/blazes

boot() { # extra serve flags...
	: >"$OUT"
	"$BIN" serve -addr 127.0.0.1:0 -max-sessions 8 "$@" >"$OUT" 2>&1 &
	SERVER_PID=$!
	# Wait for the announced listen address.
	BASE=""
	for _ in $(seq 1 100); do
		BASE="$(sed -n 's/.*serving on \(http:\/\/[^ ]*\).*/\1/p' "$OUT" | head -1)"
		[[ -n "$BASE" ]] && break
		kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died during startup:"; cat "$OUT"; exit 1; }
		sleep 0.1
	done
	[[ -n "$BASE" ]] || { echo "server never announced its address:"; cat "$OUT"; exit 1; }
	echo "serving at $BASE"
}

fetch() { # method path [body]
	local method=$1 path=$2 body=${3:-}
	if [[ -n "$body" ]]; then
		curl -fsS -X "$method" -H 'Content-Type: application/json' -d "$body" "$BASE$path"
	else
		curl -fsS -X "$method" "$BASE$path"
	fi
}

expect() { # label haystack needle
	local label=$1 hay=$2 needle=$3
	if [[ "$hay" != *"$needle"* ]]; then
		echo "FAIL: $label response missing '$needle':"
		echo "$hay"
		exit 1
	fi
	echo "ok: $label"
}

wait_ready() {
	# Writes shed 503 while the boot replay runs — wait for the server to
	# leave read-only mode before driving traffic.
	for _ in $(seq 1 100); do
		[[ "$(fetch GET /v1/stats || true)" == *'"recovering": false'* ]] && return 0
		sleep 0.1
	done
	echo "server never finished its boot replay:"
	cat "$OUT"
	exit 1
}

SPEC='Count:\n  annotation: {from: words, to: counts, label: OW, subscript: [word, batch]}\ntopology:\n  sources:\n    - {name: words, to: Count.words}\n  sinks:\n    - {name: counts, from: Count.counts}\n'

boot -journal "$JOURNAL"
wait_ready
expect healthz "$(fetch GET /healthz)" '"ok": true'
expect create "$(fetch POST /v1/sessions "{\"name\":\"wc\",\"spec\":\"$SPEC\"}")" '"session": "s1"'
expect analyze-unsealed "$(fetch POST /v1/sessions/s1/analyze)" '"kind": "Run"'
expect mutate "$(fetch POST /v1/sessions/s1/mutate '{"ops":[{"op":"seal","stream":"words","key":["batch"]}]}')" '"applied": 1'
ANALYZE2="$(fetch POST /v1/sessions/s1/analyze '{"synthesize":true}')"
expect analyze-sealed "$ANALYZE2" '"kind": "Async"'
expect analyze-delta "$ANALYZE2" '"delta"'
expect verify "$(fetch POST /v1/verify '{"workloads":["synthetic-set"],"seeds":8,"parallelism":2}')" '"holds": true'
expect stats "$(fetch GET /v1/stats)" '"durable": true'

# Crash recovery: kill -9 (no drain, no journal close), restart on the
# same journal, and require the acknowledged session state back.
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "killed -9; restarting on the journal"
boot -journal "$JOURNAL"
wait_ready
RECOVERED="$(fetch GET /v1/sessions/s1)"
expect recovered-session "$RECOVERED" '"recovered": true'
expect recovered-version "$RECOVERED" '"version": 1'
expect recovered-stats "$(fetch GET /v1/stats)" '"recovered_sessions": 1'
# The recovered session must analyze like the original sealed session did.
expect recovered-analyze "$(fetch POST /v1/sessions/s1/analyze)" '"kind": "Async"'

# Graceful shutdown: SIGTERM must yield exit code 0.
kill -TERM "$SERVER_PID"
EXIT=0
wait "$SERVER_PID" || EXIT=$?
SERVER_PID=""
if [[ "$EXIT" != 0 ]]; then
	echo "FAIL: server exited $EXIT after SIGTERM:"
	cat "$OUT"
	exit 1
fi
grep -q "shut down cleanly" "$OUT" || { echo "FAIL: no clean-shutdown message:"; cat "$OUT"; exit 1; }
echo "ok: clean shutdown"
echo "service smoke test passed"
