package bloom

import (
	"fmt"

	"blazes/internal/core"
	"blazes/internal/dataflow"
	"blazes/internal/fd"
)

// PathAnnotation is an automatically derived C.O.W.R. annotation for one
// (input interface, output interface) pair of a module — the white-box
// extraction of Section VII.
type PathAnnotation struct {
	From, To string
	Ann      core.Annotation
}

// ModuleAnalysis is the full white-box result for a module.
type ModuleAnalysis struct {
	Module *Module
	Paths  []PathAnnotation
	// Deps is the lineage catalog: injective functional dependencies
	// extracted from identity projections (Section VII-B2), used for seal
	// compatibility and chasing.
	Deps *fd.Set
	// OutSchema maps output interfaces to their attribute sets, enabling
	// seal-key chasing in the dataflow analysis.
	OutSchema map[string]fd.AttrSet
}

// Analyze derives component annotations for a module.
//
// Attribution model (documented in DESIGN.md): a path exists from input
// `in` to output `out` when `out` is reachable from `in` through the rule
// graph. The path's *annotation*, however, is computed from the input's
// "live segment": the rules reachable from `in` through transient
// collections only, stopping at persistent tables (state written at arrival
// time), with scratch reads expanded transitively (scratches recompute at
// read time, so their derivation ops — e.g. the aggregation behind a
// standing query — execute when the *reading* event arrives). This matches
// the paper's manual annotations: the reporting server's click→response
// path is CW (a log append), while its request→response path carries the
// query's aggregation and is OR with the query's grouping columns as gate.
func Analyze(m *Module) (*ModuleAnalysis, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	res := &ModuleAnalysis{
		Module:    m,
		Deps:      extractLineage(m),
		OutSchema: map[string]fd.AttrSet{},
	}
	for _, out := range m.Outputs() {
		res.OutSchema[out] = fd.NewAttrSet(m.Collection(out).Schema...)
	}

	full := fullReachability(m)
	for _, in := range m.Inputs() {
		for _, out := range m.Outputs() {
			if !full[in][out] {
				continue
			}
			ann, err := liveSegmentAnnotation(m, in, out, full)
			if err != nil {
				return nil, err
			}
			res.Paths = append(res.Paths, PathAnnotation{From: in, To: out, Ann: ann})
		}
	}
	return res, nil
}

// fullReachability maps each collection to the set of collections reachable
// through rules of any merge operator.
func fullReachability(m *Module) map[string]map[string]bool {
	adj := map[string][]string{}
	for _, r := range m.rules {
		for _, read := range r.Body.reads() {
			adj[read] = append(adj[read], r.Head)
		}
	}
	out := map[string]map[string]bool{}
	for _, start := range m.order {
		seen := map[string]bool{}
		queue := []string{start}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		out[start] = seen
	}
	return out
}

// ruleOps summarizes the operations performed by one rule body with its
// transitive scratch expansions.
type ruleOps struct {
	nonmono bool
	// gates lists the partition subscripts of nonmonotonic ops; a nil
	// entry marks an op with unknown partitioning.
	gates []fd.AttrSet
}

// expandRuleOps computes a rule's operations, inlining the derivations of
// scratch collections it reads (they recompute each timestep, so their ops
// happen at read time). Tables, channels and interfaces are boundaries.
func expandRuleOps(m *Module, r Rule, visiting map[int]bool) ruleOps {
	ops := exprOps(r.Body)
	if r.Op == Delete {
		// Deletion is nonmonotonic with no known partitioning.
		ops.nonmono = true
		ops.gates = append(ops.gates, fd.AttrSet{})
	}
	for _, read := range r.Body.reads() {
		c := m.Collection(read)
		if c == nil || c.Kind != Scratch {
			continue
		}
		for idx, dr := range m.rules {
			if dr.Head != read || visiting[idx] {
				continue
			}
			visiting[idx] = true
			sub := expandRuleOps(m, dr, visiting)
			visiting[idx] = false
			ops.nonmono = ops.nonmono || sub.nonmono
			ops.gates = append(ops.gates, sub.gates...)
		}
	}
	return ops
}

// exprOps extracts the nonmonotonic operations (and their subscripts) of a
// single expression tree, per the paper's subscript rules: an aggregation's
// subscript is its grouping columns; an antijoin's subscript is the columns
// in its theta clause.
func exprOps(e Expr) ruleOps {
	var ops ruleOps
	switch x := e.(type) {
	case *ScanExpr:
	case *ProjectExpr:
		ops = exprOps(x.Input)
	case *SelectExpr:
		ops = exprOps(x.Input)
	case *JoinExpr:
		l, r := exprOps(x.Left), exprOps(x.Right)
		ops.nonmono = l.nonmono || r.nonmono
		ops.gates = append(l.gates, r.gates...)
	case *AntiJoinExpr:
		l, r := exprOps(x.Left), exprOps(x.Right)
		ops.nonmono = true
		var theta []string
		for _, p := range x.On {
			theta = append(theta, p[0])
		}
		ops.gates = append(append(l.gates, r.gates...), fd.NewAttrSet(theta...))
	case *GroupByExpr:
		in := exprOps(x.Input)
		ops.nonmono = true
		ops.gates = append(in.gates, fd.NewAttrSet(x.Keys...))
	case *ThresholdExpr:
		ops = exprOps(x.Input)
	}
	return ops
}

// liveSegmentAnnotation computes the C.O.W.R. annotation for in→out.
func liveSegmentAnnotation(m *Module, in, out string, full map[string]map[string]bool) (core.Annotation, error) {
	live := map[string]bool{in: true}
	queue := []string{in}
	write := false
	nonmono := false
	var gates []fd.AttrSet

	attributed := map[int]bool{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for idx, r := range m.rules {
			if attributed[idx] {
				continue
			}
			readsCur := false
			for _, read := range r.Body.reads() {
				if read == cur {
					readsCur = true
					break
				}
			}
			if !readsCur {
				continue
			}
			// Only rules that can influence this output count.
			if r.Head != out && !full[r.Head][out] {
				continue
			}
			attributed[idx] = true
			ops := expandRuleOps(m, r, map[int]bool{})
			nonmono = nonmono || ops.nonmono
			gates = append(gates, ops.gates...)

			head := m.Collection(r.Head)
			if head == nil {
				return core.Annotation{}, fmt.Errorf("bloom: rule head %q undeclared", r.Head)
			}
			if head.Kind == Table || r.Op == Delete {
				// State write: the live segment ends at the table
				// boundary (downstream ops run at *their* trigger time).
				write = true
				continue
			}
			if !live[r.Head] {
				live[r.Head] = true
				queue = append(queue, r.Head)
			}
		}
	}

	if !nonmono {
		if write {
			return core.CW, nil
		}
		return core.CR, nil
	}
	gate, known := combineGates(gates)
	var ann core.Annotation
	if !known {
		if write {
			ann = core.OWStar()
		} else {
			ann = core.ORStar()
		}
	} else if write {
		ann = core.OWGate(gate.Attrs()...)
	} else {
		ann = core.ORGate(gate.Attrs()...)
	}
	return ann, nil
}

// combineGates merges the gates of the nonmonotonic ops on a path: all
// known and identical ⇒ that gate; otherwise unknown (conservative ⇒ *).
func combineGates(gates []fd.AttrSet) (fd.AttrSet, bool) {
	if len(gates) == 0 {
		return fd.AttrSet{}, false
	}
	first := gates[0]
	if first.IsEmpty() {
		return fd.AttrSet{}, false
	}
	for _, g := range gates[1:] {
		if !g.Equal(first) {
			return fd.AttrSet{}, false
		}
	}
	return first, true
}

// extractLineage builds the injective-FD catalog from identity projections:
// every column carried without transformation records an injective
// dependency between its source and target names (Section VII-B2's sound
// but incomplete detection via transitive identity applications).
func extractLineage(m *Module) *fd.Set {
	deps := fd.NewSet()
	// Every declared column injectively determines itself.
	for _, c := range m.Collections() {
		deps.AddIdentity(c.Schema...)
	}
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *ProjectExpr:
			for _, cs := range x.Cols {
				if cs.From != "" && cs.out() != cs.From {
					deps.Add(fd.Rename(cs.From, cs.out()))
					deps.Add(fd.Rename(cs.out(), cs.From))
				}
			}
			walk(x.Input)
		case *SelectExpr:
			walk(x.Input)
		case *JoinExpr:
			walk(x.Left)
			walk(x.Right)
		case *AntiJoinExpr:
			walk(x.Left)
			walk(x.Right)
		case *GroupByExpr:
			for _, a := range x.Aggs {
				if a.Func != Count {
					deps.Add(fd.NewFD(fd.NewAttrSet(a.Col), fd.NewAttrSet(a.As)))
				}
			}
			walk(x.Input)
		case *ThresholdExpr:
			walk(x.Input)
		}
	}
	for _, r := range m.rules {
		walk(r.Body)
	}
	return deps
}

// Component installs the module as an annotated component in a dataflow
// graph — the white-box bridge: the module's extracted annotations, lineage
// and output schemas flow into the Blazes analysis with no manual
// annotation file.
func (a *ModuleAnalysis) Component(g *dataflow.Graph, rep bool) *dataflow.Component {
	comp := g.Component(a.Module.Name)
	comp.Rep = rep
	comp.Deps = a.Deps
	if comp.OutSchema == nil {
		comp.OutSchema = map[string]fd.AttrSet{}
	}
	for out, schema := range a.OutSchema {
		comp.OutSchema[out] = schema
	}
	for _, p := range a.Paths {
		comp.AddPath(p.From, p.To, p.Ann)
	}
	return comp
}
