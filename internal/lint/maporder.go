package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// maporder flags `range` over a map whose loop body lets Go's randomized
// iteration order escape: appending to a slice declared outside the loop
// (it may feed emissions, schedules, report sections or a return value),
// sending on a channel, returning or breaking out of the loop, or calling
// into code with unknown side effects. The canonical repair is to iterate
// sorted keys; the one recognized escape hatch is the decorate-sort idiom —
// append inside the loop, canonical sort immediately after it in the same
// block (sortedKeys itself passes this way).
//
// Order-insensitive bodies pass without ceremony: writes into other maps,
// delete, numeric accumulation (count++, sum += v), and locals that never
// leave the loop are all commutative across iteration orders.
func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				if ls, ok := stmt.(*ast.LabeledStmt); ok {
					stmt = ls.Stmt
				}
				if rs, ok := stmt.(*ast.RangeStmt); ok {
					p.checkMapRange(rs, list[i+1:])
				}
			}
			return true
		})
	}
}

// checkMapRange analyzes one range statement (and, for the sort-after
// escape, the statements following it in the enclosing block).
func (p *Pass) checkMapRange(rs *ast.RangeStmt, rest []ast.Stmt) {
	t := p.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	c := &orderClassifier{pass: p, locals: map[types.Object]bool{}}
	c.noteDefs(rs.Key)
	c.noteDefs(rs.Value)
	c.stmt(rs.Body)
	if c.escape != token.NoPos {
		p.Reportf(rs.Pos(), "range over map: %s escapes iteration order; iterate sorted keys or sort the result (//lint:allow maporder <reason> if order provably cannot be observed)", c.escapeWhat)
		return
	}
	// An existential return is order-free only over a read-only body: an
	// early exit skips however many of the remaining iterations' writes.
	if c.constReturnSeen && (c.mutated || len(c.appended) > 0) {
		p.Reportf(c.constReturnPos, "range over map: early return combined with loop writes makes how many iterations ran observable; separate the scan from the mutation or iterate sorted keys")
		return
	}
	// Appends to outer slices are fine iff every appended variable is
	// canonically sorted right after the loop.
	for obj, pos := range c.appended {
		if !sortedAfter(p, obj, rest) {
			p.Reportf(pos, "range over map appends to %q without a canonical sort after the loop; sort it or iterate sorted keys", obj.Name())
		}
	}
}

// orderClassifier walks a loop body deciding whether iteration order can
// escape. locals tracks objects declared inside the body (writes to them
// stay inside one iteration); appended records outer slices fed by append.
//
// Two order-insensitive idioms get dedicated tracking instead of an escape:
//
//   - flag-set: `found = true` on an outer variable — every iteration that
//     fires writes the same constant, so the final state is order-free as
//     long as no *conflicting* constant lands on the same variable;
//   - existential return: `if pred(v) { return false }` — the loop answers
//     "does any element match" with a constant, which is order-free only
//     while the body performs no other outer-state mutation (an early
//     return would otherwise skip a varying number of those mutations).
type orderClassifier struct {
	pass       *Pass
	locals     map[types.Object]bool
	appended   map[types.Object]token.Pos
	escape     token.Pos
	escapeWhat string

	// mutated records any outer-state effect (map write, accumulation,
	// append, delete/copy) — constant returns are only safe without them.
	mutated bool
	// constWrites maps outer variables to the constant assigned to them.
	constWrites map[types.Object]string
	// constReturn is the signature of constant-only returns seen so far.
	constReturn     string
	constReturnSeen bool
	constReturnPos  token.Pos
}

func (c *orderClassifier) escapes(pos token.Pos, what string) {
	if c.escape == token.NoPos {
		c.escape, c.escapeWhat = pos, what
	}
}

func (c *orderClassifier) noteDefs(e ast.Expr) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if obj := c.pass.Info.Defs[id]; obj != nil {
		c.locals[obj] = true
	}
}

func (c *orderClassifier) stmt(s ast.Stmt) {
	if c.escape != token.NoPos {
		return
	}
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			c.stmt(st)
		}
	case *ast.IfStmt:
		c.stmt(s.Init)
		c.stmt(s.Body)
		c.stmt(s.Else)
	case *ast.ForStmt:
		c.stmt(s.Init)
		c.stmt(s.Body)
	case *ast.RangeStmt:
		c.noteDefs(s.Key)
		c.noteDefs(s.Value)
		c.stmt(s.Body)
	case *ast.SwitchStmt:
		c.stmt(s.Init)
		c.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init)
		c.stmt(s.Body)
	case *ast.CaseClause:
		for _, st := range s.Body {
			c.stmt(st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						c.noteDefs(name)
					}
					for _, v := range vs.Values {
						c.rhs(v)
					}
				}
			}
		}
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.IncDecStmt:
		// ++/-- is commutative accumulation on integer types; on anything
		// else the target must be loop-local or a map slot.
		if !c.lvalueOK(s.X) && !c.integerTarget(s.X) {
			c.escapes(s.Pos(), "increment of a non-local, non-map target")
		}
		c.noteWrite(s.X)
	case *ast.ExprStmt:
		c.rhs(s.X)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.CONTINUE:
		default:
			// break/goto make which-iteration-ran-last observable.
			c.escapes(s.Pos(), s.Tok.String()+" out of the loop")
		}
	case *ast.ReturnStmt:
		c.ret(s)
	case *ast.SendStmt:
		c.escapes(s.Pos(), "channel send")
	case *ast.DeferStmt:
		c.escapes(s.Pos(), "defer (runs in iteration order)")
	case *ast.GoStmt:
		c.escapes(s.Pos(), "goroutine launch")
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	case *ast.EmptyStmt:
	default:
		c.escapes(s.Pos(), "statement with unknown ordering effects")
	}
}

// assign classifies one assignment. Allowed shapes: writes into maps,
// writes to loop-locals, numeric compound accumulation (+=, |=, ...), and
// append to an outer slice (recorded for the sort-after check).
func (c *orderClassifier) assign(s *ast.AssignStmt) {
	if s.Tok == token.DEFINE {
		for _, lhs := range s.Lhs {
			c.noteDefs(lhs)
		}
		for _, rhs := range s.Rhs {
			c.rhs(rhs)
		}
		return
	}
	if s.Tok != token.ASSIGN {
		// Compound assignment: integer accumulation (sum += v, bits |= b)
		// is commutative, so outer accumulators are fine. String += builds
		// in iteration order and float += is not associative bit-for-bit —
		// those need a loop-local or map-slot target.
		for _, lhs := range s.Lhs {
			if !c.lvalueOK(lhs) && !c.integerTarget(lhs) {
				c.escapes(s.Pos(), "order-dependent compound assignment to an outer target")
				return
			}
			c.noteWrite(lhs)
		}
		for _, rhs := range s.Rhs {
			c.rhs(rhs)
		}
		return
	}
	// Plain assignment: each LHS must be a map slot, a loop-local, or an
	// outer variable receiving a constant (the flag-set idiom);
	// `out = append(out, ...)` to an outer slice is recorded instead.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if obj, ok := c.appendTarget(s.Lhs[0], s.Rhs[0]); ok {
			if c.locals[obj] {
				return
			}
			c.mutated = true
			if c.appended == nil {
				c.appended = map[types.Object]token.Pos{}
			}
			if _, seen := c.appended[obj]; !seen {
				c.appended[obj] = s.Pos()
			}
			return
		}
		if c.flagSet(s) {
			return
		}
	}
	for _, lhs := range s.Lhs {
		if !c.lvalueOK(lhs) {
			c.escapes(s.Pos(), "assignment to a non-local, non-map target")
			return
		}
		c.noteWrite(lhs)
	}
	for _, rhs := range s.Rhs {
		c.rhs(rhs)
	}
}

// flagSet matches `found = <constant>` on an outer variable: every firing
// iteration writes the same value, so the final state is order-free. A
// second, different constant on the same variable reintroduces order
// (last-writer-wins) and escapes.
func (c *orderClassifier) flagSet(s *ast.AssignStmt) bool {
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := c.pass.Info.ObjectOf(id)
	if obj == nil || c.locals[obj] {
		return false
	}
	tv, ok := c.pass.Info.Types[s.Rhs[0]]
	if !ok || tv.Value == nil {
		return false
	}
	val := tv.Value.ExactString()
	if c.constWrites == nil {
		c.constWrites = map[types.Object]string{}
	}
	if prev, seen := c.constWrites[obj]; seen && prev != val {
		c.escapes(s.Pos(), "conflicting constant writes to "+obj.Name()+" (last iteration wins)")
		return true
	}
	c.constWrites[obj] = val
	c.mutated = true
	return true
}

// ret classifies a return inside the loop body. Constant-only results (and
// bare `return`) answer an existential query identically no matter which
// iteration fired first, so they are deferred to checkMapRange, which
// rejects them if the body also mutates outer state. Differing constant
// signatures, or any computed result, escape immediately.
func (c *orderClassifier) ret(s *ast.ReturnStmt) {
	sig := ""
	for _, res := range s.Results {
		tv, ok := c.pass.Info.Types[res]
		if !ok || tv.Value == nil {
			if !isNilOrZero(res) {
				c.escapes(s.Pos(), "return of a loop-dependent value from inside the loop")
				return
			}
			sig += exprName(res) + ";"
			continue
		}
		sig += tv.Value.ExactString() + ";"
	}
	if c.constReturnSeen && c.constReturn != sig {
		c.escapes(s.Pos(), "returns with differing values from inside the loop")
		return
	}
	c.constReturn, c.constReturnSeen = sig, true
	if c.constReturnPos == token.NoPos {
		c.constReturnPos = s.Pos()
	}
}

// isNilOrZero matches the non-constant but iteration-independent results:
// nil and composite zero values are not go/types constants yet carry no
// order information.
func isNilOrZero(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	}
	return false
}

func exprName(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}

// noteWrite records that the body touched outer state (map slots, outer
// accumulators) — information the existential-return rule needs, since an
// early return skips the remaining iterations' writes.
func (c *orderClassifier) noteWrite(e ast.Expr) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if obj := c.pass.Info.ObjectOf(id); obj != nil && c.locals[obj] {
			return
		}
	}
	c.mutated = true
}

// appendTarget matches `v = append(v, ...)` and returns v's object.
func (c *orderClassifier) appendTarget(lhs, rhs ast.Expr) (types.Object, bool) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isBuiltin(c.pass, call.Fun, "append") || len(call.Args) == 0 {
		return nil, false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	if !ok || arg.Name != id.Name {
		return nil, false
	}
	obj := c.pass.Info.ObjectOf(id)
	if obj == nil {
		return nil, false
	}
	for _, extra := range call.Args[1:] {
		c.rhs(extra)
	}
	return obj, true
}

// lvalueOK reports whether writing through the expression is commutative
// across iteration orders: map slots (one write per distinct key) and
// loop-locals (never outlive the iteration).
func (c *orderClassifier) lvalueOK(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return true
		}
		obj := c.pass.Info.ObjectOf(e)
		return obj != nil && c.locals[obj]
	case *ast.IndexExpr:
		t := c.pass.TypeOf(e.X)
		if t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return true
			}
		}
		// Indexed writes into local slices stay local.
		return c.lvalueOK(e.X)
	case *ast.SelectorExpr:
		// Field writes on loop-local structs are local.
		return c.lvalueOK(e.X)
	case *ast.StarExpr:
		return c.lvalueOK(e.X)
	case *ast.ParenExpr:
		return c.lvalueOK(e.X)
	}
	return false
}

// integerTarget reports whether e has an integer type (commutative under
// += / |= / ++ style accumulation, unlike strings and floats).
func (c *orderClassifier) integerTarget(e ast.Expr) bool {
	t := c.pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// rhs scans an expression for order-carrying effects: any call that is not
// a known-pure builtin could observe or record iteration order.
func (c *orderClassifier) rhs(e ast.Expr) {
	if e == nil || c.escape != token.NoPos {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c.callOK(call) {
			return true
		}
		c.escapes(call.Pos(), "call with unknown ordering effects")
		return false
	})
}

// pureBuiltins are builtins (and conversions) that cannot leak order.
var pureBuiltins = map[string]bool{
	"len": true, "cap": true, "min": true, "max": true,
	"delete": true, "make": true, "new": true, "copy": true,
	"append": true, "string": true, "int": true, "int32": true,
	"int64": true, "uint64": true, "float64": true, "byte": true,
	"rune": true, "complex": true, "real": true, "imag": true,
}

// pureValuePkgs are stdlib packages whose package-level functions compute
// values without observable side effects, so calling them inside a loop
// body cannot record iteration order.
var pureValuePkgs = map[string]bool{
	"strings": true, "strconv": true, "math": true,
	"unicode": true, "unicode/utf8": true,
}

func (c *orderClassifier) callOK(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := c.pass.Info.ObjectOf(fun)
		if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
			if fun.Name == "delete" || fun.Name == "copy" {
				c.mutated = true
			}
			return pureBuiltins[fun.Name]
		}
		if _, isType := obj.(*types.TypeName); isType {
			return true // conversion
		}
	case *ast.SelectorExpr:
		if c.pass.TypeOf(fun) == nil {
			return true // qualified type conversion
		}
		if fn, ok := c.pass.Info.ObjectOf(fun.Sel).(*types.Func); ok && fn.Pkg() != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
				path := fn.Pkg().Path()
				if pureValuePkgs[path] {
					return true
				}
				// fmt's S-family formats to a string; Print/Fprint write.
				if path == "fmt" && strings.HasPrefix(fn.Name(), "S") {
					return true
				}
			}
		}
	case *ast.ArrayType, *ast.MapType, *ast.FuncType, *ast.InterfaceType, *ast.StarExpr:
		return true // conversion
	}
	return false
}

func isBuiltin(p *Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := p.Info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// sortedAfter reports whether a statement after the loop canonically sorts
// obj: a call mentioning obj whose function name contains "sort" or
// "canonical" (sort.Strings, sort.Slice, slices.Sort, SortRows, ...).
func sortedAfter(p *Pass, obj types.Object, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSortCall(call.Fun) {
				return true
			}
			for _, arg := range call.Args {
				if mentions(p, arg, obj) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func isSortCall(fun ast.Expr) bool {
	var name string
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
		if x, ok := f.X.(*ast.Ident); ok && (x.Name == "sort" || x.Name == "slices") {
			return true
		}
	default:
		return false
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "sort") || strings.Contains(lower, "canon")
}

func mentions(p *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
