// Whitebox: write Bloom rules, extract C.O.W.R. annotations automatically
// (no annotation file), run the Blazes analysis and synthesis end to end —
// the Section VII workflow.
//
//	go run ./examples/whitebox
package main

import (
	"fmt"

	"blazes/internal/adtrack"
	"blazes/internal/bloom"
	"blazes/internal/dataflow"
)

func main() {
	for _, query := range []dataflow.AdQuery{dataflow.THRESH, dataflow.POOR, dataflow.CAMPAIGN} {
		mod, err := adtrack.ReportModule(query, 100)
		if err != nil {
			panic(err)
		}
		analysis, err := bloom.Analyze(mod)
		if err != nil {
			panic(err)
		}
		fmt.Printf("== %s: extracted annotations ==\n", query)
		for _, p := range analysis.Paths {
			fmt.Printf("  %s → %s : %s\n", p.From, p.To, p.Ann)
		}

		// Assemble the full network (Report + Cache, both auto-annotated)
		// and analyze; for CAMPAIGN also seal the click stream.
		var seal []string
		if query == dataflow.CAMPAIGN {
			seal = []string{adtrack.ColCampaign}
		}
		g, err := adtrack.Graph(query, seal...)
		if err != nil {
			panic(err)
		}
		a, err := dataflow.Analyze(g)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  whole-dataflow verdict: %s (deterministic: %v)\n", a.Verdict, a.Deterministic())
		for _, st := range dataflow.Synthesize(a, dataflow.SynthesisOptions{}) {
			fmt.Printf("  strategy: %s\n", st)
		}
		fmt.Println()
	}
}
