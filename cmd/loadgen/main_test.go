package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunLoadInProcess drives a small in-process burst end to end and
// checks the report shape bench_diff.sh depends on.
func TestRunLoadInProcess(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-sessions", "12", "-rate", "600", "-mutations", "2", "-out", out,
	}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Totals.Requests == 0 || rep.Totals.ThroughputRPS == 0 {
		t.Errorf("empty totals: %+v", rep.Totals)
	}
	for _, ep := range []string{"create", "mutate", "analyze"} {
		if rep.Latency[ep].Count == 0 {
			t.Errorf("no %s samples", ep)
		}
	}
	// The baseline-diff contract: Benchmark* keys with ns_per_op values.
	for _, key := range []string{"BenchmarkLoadgenCreateP50", "BenchmarkLoadgenMutateP99", "BenchmarkLoadgenAnalyzeP95"} {
		if rep.Benchmarks[key]["ns_per_op"] <= 0 {
			t.Errorf("missing benchmark entry %s", key)
		}
	}
}

// TestRunLoadDurableInProcess exercises the in-process server with a
// journal attached.
func TestRunLoadDurableInProcess(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-sessions", "6", "-rate", "600", "-mutations", "1", "-journal", t.TempDir(),
	}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "BenchmarkLoadgen") {
		t.Errorf("report missing benchmarks: %s", stdout.String())
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-sessions", "0"},
		{"-rate", "0"},
		{"-chaos"},                          // needs -bin and -journal
		{"-chaos", "-bin", "/bin/false"},    // still needs -journal
		{"-chaos", "-journal", "/tmp/nope"}, // still needs -bin
		{"stray"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), args, &stdout, &stderr); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestPercentiles(t *testing.T) {
	p := percentiles(nil)
	if p.Count != 0 {
		t.Fatal("empty percentiles should be zero")
	}
}
