package adtrack

import (
	"testing"

	"blazes/internal/bloom"
	"blazes/internal/core"
	"blazes/internal/dataflow"
)

// TestWhiteBoxExtractionMatchesPaperAnnotations reproduces the Section
// VI-B1 annotation file automatically: the Bloom analyzer must derive the
// same C.O.W.R. labels the paper's authors wrote by hand.
func TestWhiteBoxExtractionMatchesPaperAnnotations(t *testing.T) {
	tests := []struct {
		query   dataflow.AdQuery
		wantReq string
		wantClk string
	}{
		{dataflow.THRESH, "CR", "CW"},
		{dataflow.POOR, "OR(id)", "CW"},
		{dataflow.WINDOW, "OR(id,window)", "CW"},
		{dataflow.CAMPAIGN, "OR(campaign,id)", "CW"},
	}
	for _, tt := range tests {
		t.Run(string(tt.query), func(t *testing.T) {
			mod, err := ReportModule(tt.query, 100)
			if err != nil {
				t.Fatal(err)
			}
			a, err := bloom.Analyze(mod)
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]string{}
			for _, p := range a.Paths {
				got[p.From+"→"+p.To] = p.Ann.String()
			}
			if got["request→response"] != tt.wantReq {
				t.Errorf("request→response = %s, want %s", got["request→response"], tt.wantReq)
			}
			if got["click→response"] != tt.wantClk {
				t.Errorf("click→response = %s, want %s", got["click→response"], tt.wantClk)
			}
		})
	}
}

func TestWhiteBoxCacheMatchesPaper(t *testing.T) {
	mod, err := CacheModule()
	if err != nil {
		t.Fatal(err)
	}
	a, err := bloom.Analyze(mod)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"request→response_out":     "CR",
		"response_in→response_out": "CW",
		"request→request_out":      "CR",
	}
	got := map[string]string{}
	for _, p := range a.Paths {
		got[p.From+"→"+p.To] = p.Ann.String()
	}
	for path, ann := range want {
		if got[path] != ann {
			t.Errorf("%s = %s, want %s", path, got[path], ann)
		}
	}
	if _, spurious := got["response_in→request_out"]; spurious {
		t.Error("footnote 3 violated: response→request path must not exist")
	}
}

// TestWhiteBoxGraphVerdicts runs the full Blazes analysis over the
// automatically annotated dataflow and reproduces the Section VI-B2
// verdicts with zero manual annotations.
func TestWhiteBoxGraphVerdicts(t *testing.T) {
	tests := []struct {
		query   dataflow.AdQuery
		seal    []string
		verdict core.Label
	}{
		{dataflow.THRESH, nil, core.Async},
		{dataflow.POOR, nil, core.Diverge},
		{dataflow.POOR, []string{ColCampaign}, core.Diverge},
		{dataflow.CAMPAIGN, []string{ColCampaign}, core.Async},
		{dataflow.WINDOW, []string{ColWindow}, core.Async},
		{dataflow.WINDOW, nil, core.Diverge},
	}
	for _, tt := range tests {
		name := string(tt.query)
		if len(tt.seal) > 0 {
			name += "+seal"
		}
		t.Run(name, func(t *testing.T) {
			g, err := Graph(tt.query, tt.seal...)
			if err != nil {
				t.Fatal(err)
			}
			a, err := dataflow.Analyze(g)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Verdict.Equal(tt.verdict) {
				t.Errorf("verdict = %s, want %s\n%s", a.Verdict, tt.verdict, a.Explain())
			}
		})
	}
}

// TestWhiteBoxSynthesisSelectsSealForCampaign: end-to-end white box —
// modules in, seal-based strategy out.
func TestWhiteBoxSynthesisSelectsSealForCampaign(t *testing.T) {
	g, err := Graph(dataflow.CAMPAIGN, ColCampaign)
	if err != nil {
		t.Fatal(err)
	}
	a, err := dataflow.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	sts := dataflow.Synthesize(a, dataflow.SynthesisOptions{})
	foundSeal := false
	for _, st := range sts {
		if st.Component == "Report" && st.Mechanism == dataflow.CoordSealed {
			foundSeal = true
		}
	}
	if !foundSeal {
		t.Errorf("strategies = %v, want seal-based coordination at Report", sts)
	}
}

// TestReportModuleAnswersQueries sanity-checks the runtime behaviour of
// each query against a tiny hand-computed log.
func TestReportModuleAnswersQueries(t *testing.T) {
	clicks := []bloom.Row{
		{bloom.S("ad1"), bloom.S("c1"), bloom.S("w1"), bloom.S("s1"), bloom.I(0)},
		{bloom.S("ad1"), bloom.S("c1"), bloom.S("w1"), bloom.S("s2"), bloom.I(1)},
		{bloom.S("ad1"), bloom.S("c1"), bloom.S("w2"), bloom.S("s1"), bloom.I(2)},
		{bloom.S("ad2"), bloom.S("c2"), bloom.S("w1"), bloom.S("s1"), bloom.I(3)},
	}
	request := bloom.Row{bloom.S("ad1"), bloom.S("c1"), bloom.S("w1"), bloom.S("r1")}

	run := func(q dataflow.AdQuery, threshold int64) []bloom.Row {
		mod, err := ReportModule(q, threshold)
		if err != nil {
			t.Fatal(err)
		}
		n, err := bloom.NewNode("n", mod)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Deliver("click", clicks...); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Tick(); err != nil {
			t.Fatal(err)
		}
		if err := n.Deliver("request", request); err != nil {
			t.Fatal(err)
		}
		em, err := n.Tick()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range em {
			if e.Collection == "response" {
				return e.Rows
			}
		}
		return nil
	}

	// POOR: ad1 has 3 clicks < 100 ⇒ answered with count 3.
	rows := run(dataflow.POOR, 100)
	if len(rows) != 1 || bloom.AsString(rows[0][2]) != "3" {
		t.Errorf("POOR rows = %v, want count 3", rows)
	}
	// POOR with threshold 3: 3 clicks not < 3 ⇒ no answer.
	if rows := run(dataflow.POOR, 3); len(rows) != 0 {
		t.Errorf("POOR(3) rows = %v, want none", rows)
	}
	// WINDOW: (w1, ad1) has 2 clicks ⇒ count 2.
	rows = run(dataflow.WINDOW, 100)
	if len(rows) != 1 || bloom.AsString(rows[0][2]) != "2" {
		t.Errorf("WINDOW rows = %v, want count 2", rows)
	}
	// CAMPAIGN: (c1, ad1) has 3 clicks ⇒ count 3.
	rows = run(dataflow.CAMPAIGN, 100)
	if len(rows) != 1 || bloom.AsString(rows[0][2]) != "3" {
		t.Errorf("CAMPAIGN rows = %v, want count 3", rows)
	}
	// THRESH with threshold 2: ad1 (3 clicks) is hot.
	rows = run(dataflow.THRESH, 2)
	if len(rows) != 1 || bloom.AsString(rows[0][2]) != "hot" {
		t.Errorf("THRESH rows = %v, want hot", rows)
	}
	// THRESH with threshold 10: nothing hot.
	if rows := run(dataflow.THRESH, 10); len(rows) != 0 {
		t.Errorf("THRESH(10) rows = %v, want none", rows)
	}
}

func TestWorkloadPlanInvariants(t *testing.T) {
	for _, independent := range []bool{true, false} {
		w := DefaultWorkload(5, independent)
		w.EntriesPerServer = 100
		bursts := w.Plan()

		perServer := map[string]int{}
		sealsPer := map[string]map[string]bool{}
		for _, b := range bursts {
			perServer[b.Server] += len(b.Clicks)
			for _, c := range b.Clicks {
				if c.Server != b.Server {
					t.Fatalf("click attributed to wrong server: %v in burst of %s", c, b.Server)
				}
			}
			for _, seal := range b.Seals {
				if sealsPer[b.Server] == nil {
					sealsPer[b.Server] = map[string]bool{}
				}
				if sealsPer[b.Server][seal] {
					t.Fatalf("server %s sealed %s twice", b.Server, seal)
				}
				sealsPer[b.Server][seal] = true
			}
		}
		for s, n := range perServer {
			if n != 100 {
				t.Errorf("independent=%v server %s produced %d records, want 100", independent, s, n)
			}
		}
		// Every producing server seals every campaign it produces.
		for campaign, producers := range w.Producers() {
			for _, p := range producers {
				if !sealsPer[p][campaign] {
					t.Errorf("independent=%v: %s never sealed %s", independent, p, campaign)
				}
			}
		}
		// Independent partitioning: exactly one producer per campaign.
		if independent {
			for campaign, producers := range w.Producers() {
				if len(producers) != 1 {
					t.Errorf("campaign %s has %d producers, want 1", campaign, len(producers))
				}
			}
		}
	}
}
