package dataflow

// StrategySealing names the seal-based strategy (M3): per-partition
// barriers driven by producer punctuations and a unanimous vote.
const StrategySealing = "sealing"

func init() { RegisterStrategy(sealingStrategy{}) }

type sealingStrategy struct{}

func (sealingStrategy) Name() string { return StrategySealing }

func (sealingStrategy) Summary() string {
	return "seal-based barriers (M3): buffer each partition until every producer seals it — no global coordination, cost proportional to partition count"
}

func (sealingStrategy) Plan(ctx *StrategyContext) (Strategy, bool) {
	a, g, comp := ctx.Analysis, ctx.Graph, ctx.Component
	if ctx.Origin {
		keys, ok := sealPlan(a, g, comp)
		if !ok {
			return Strategy{}, false
		}
		return Strategy{
			Component: comp.Name,
			Mechanism: CoordSealed,
			SealKeys:  keys,
			Reason:    "order-sensitive paths are compatible with the seals on their rendezvousing inputs",
		}, true
	}
	keys, ok := sealPlan(a, g, comp)
	if !ok {
		// Defensive: the analysis says seals protect this component, so a
		// plan must exist; fall back to reporting the consumed keys
		// directly from the steps.
		keys = consumedSealKeys(a, g, comp)
	}
	return Strategy{
		Component: comp.Name,
		Mechanism: CoordSealed,
		SealKeys:  keys,
		Reason:    "sealed inputs gate per-partition processing; install the punctuation/voting protocol",
	}, true
}
