package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string) (*Journal, *Recovered) {
	t.Helper()
	j, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return j, rec
}

func appendAll(t *testing.T, j *Journal, payloads ...string) []uint64 {
	t.Helper()
	seqs := make([]uint64, 0, len(payloads))
	for _, p := range payloads {
		seq, err := j.Append([]byte(p))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

func payloads(records []Record) []string {
	out := make([]string, len(records))
	for i, r := range records {
		out[i] = string(r.Payload)
	}
	return out
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// walPath returns the single live wal segment (fails if there are several).
func walPath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("wal segments = %v (err %v), want exactly 1", matches, err)
	}
	return matches[0]
}

// TestReplay is the table the recovery protocol is pinned by: each case
// prepares a journal directory (possibly mangling it the way a crash
// would) and states exactly what Open must recover.
func TestReplay(t *testing.T) {
	cases := []struct {
		name    string
		prepare func(t *testing.T, dir string)
		want    []string // recovered payloads, snapshot first if any
		snap    string   // expected snapshot payload
		torn    bool
		wantErr bool
	}{
		{
			name: "empty-directory",
			prepare: func(t *testing.T, dir string) {
			},
			want: nil,
		},
		{
			name: "clean-shutdown",
			prepare: func(t *testing.T, dir string) {
				j, _ := openT(t, dir)
				appendAll(t, j, "a", "b", "c")
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
			},
			want: []string{"a", "b", "c"},
		},
		{
			name: "no-close-still-durable",
			prepare: func(t *testing.T, dir string) {
				// A kill -9 after Append returns loses nothing: Append is
				// post-fsync. Simulate by never calling Close.
				j, _ := openT(t, dir)
				appendAll(t, j, "a", "b")
				_ = j // leaked on purpose; the file is already synced
			},
			want: []string{"a", "b"},
		},
		{
			name: "torn-final-record",
			prepare: func(t *testing.T, dir string) {
				j, _ := openT(t, dir)
				appendAll(t, j, "a", "b", "victim")
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
				// Chop mid-frame: the final record loses its tail.
				path := walPath(t, dir)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: []string{"a", "b"},
			torn: true,
		},
		{
			name: "garbage-tail",
			prepare: func(t *testing.T, dir string) {
				j, _ := openT(t, dir)
				appendAll(t, j, "a")
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
				f, err := os.OpenFile(walPath(t, dir), os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			want: []string{"a"},
			torn: true,
		},
		{
			name: "snapshot-plus-suffix",
			prepare: func(t *testing.T, dir string) {
				j, _ := openT(t, dir)
				appendAll(t, j, "a", "b")
				if err := j.Snapshot([]byte("state-after-ab")); err != nil {
					t.Fatal(err)
				}
				appendAll(t, j, "c", "d")
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
			},
			snap: "state-after-ab",
			want: []string{"c", "d"},
		},
		{
			name: "snapshot-plus-torn-suffix",
			prepare: func(t *testing.T, dir string) {
				j, _ := openT(t, dir)
				appendAll(t, j, "a")
				if err := j.Snapshot([]byte("state-after-a")); err != nil {
					t.Fatal(err)
				}
				appendAll(t, j, "b", "victim")
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
				path := walPath(t, dir)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			snap: "state-after-a",
			want: []string{"b"},
			torn: true,
		},
		{
			name: "version-skew",
			prepare: func(t *testing.T, dir string) {
				j, _ := openT(t, dir)
				appendAll(t, j, "a")
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
				path := walPath(t, dir)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				data[5] = Version + 7 // a future format
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: true,
		},
		{
			name: "torn-header",
			prepare: func(t *testing.T, dir string) {
				// A crash can leave a segment shorter than its header; the
				// shell must be dropped, not appended to.
				if err := os.WriteFile(filepath.Join(dir, "wal-00000000000000000001.log"), []byte("BLZ"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			torn: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			tc.prepare(t, dir)
			j, rec, err := Open(dir)
			if tc.wantErr {
				if err == nil {
					j.Close()
					t.Fatal("Open succeeded, want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			if got := payloads(rec.Records); !equal(got, tc.want) {
				t.Errorf("recovered %v, want %v", got, tc.want)
			}
			if string(rec.Snapshot) != tc.snap {
				t.Errorf("snapshot %q, want %q", rec.Snapshot, tc.snap)
			}
			if rec.Torn != tc.torn {
				t.Errorf("torn = %v, want %v", rec.Torn, tc.torn)
			}
			// The journal must be writable after any recovery, and a
			// second recovery must see old + new records.
			appendAll(t, j, "post-recovery")
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			j2, rec2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			if got, want := payloads(rec2.Records), append(append([]string(nil), tc.want...), "post-recovery"); !equal(got, want) {
				t.Errorf("post-recovery replay %v, want %v", got, want)
			}
		})
	}
}

// TestSeqsSurviveReopen: seqs keep increasing across restarts, and the
// snapshot seq floor holds even when the suffix is empty.
func TestSeqsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	seqs := appendAll(t, j, "a", "b")
	if seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("seqs = %v, want [1 2]", seqs)
	}
	if err := j.Snapshot([]byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, rec := openT(t, dir)
	defer j2.Close()
	if rec.SnapshotSeq != 2 {
		t.Errorf("SnapshotSeq = %d, want 2", rec.SnapshotSeq)
	}
	seqs = appendAll(t, j2, "c")
	if seqs[0] != 3 {
		t.Errorf("post-reopen seq = %d, want 3", seqs[0])
	}
}

// TestSnapshotCompaction: snapshotting drops covered segments and stale
// snapshots so the directory stays bounded.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	defer j.Close()
	for round := 0; round < 3; round++ {
		appendAll(t, j, "x", "y")
		if err := j.Snapshot([]byte(fmt.Sprintf("snap-%d", round))); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) != 1 {
		t.Errorf("snapshots on disk = %v, want exactly 1", snaps)
	}
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(wals) != 1 {
		t.Errorf("segments on disk = %v, want exactly 1", wals)
	}
	st := j.Stats()
	if st.Snapshots != 3 || st.SnapshotSeq != 6 {
		t.Errorf("stats = %+v, want 3 snapshots covering seq 6", st)
	}
}

// TestConcurrentAppend hammers Append from many goroutines: every record
// must survive, in an order consistent per goroutine, with fewer fsyncs
// than appends (group commit actually batching).
func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := j.Append(fmt.Appendf(nil, "w%d-%d", w, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := j.Stats()
	if st.Appended != workers*per {
		t.Errorf("appended = %d, want %d", st.Appended, workers*per)
	}
	if st.Lag != 0 {
		t.Errorf("lag = %d after quiescence, want 0", st.Lag)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec := openT(t, dir)
	defer j2.Close()
	if len(rec.Records) != workers*per {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), workers*per)
	}
	// Per-goroutine order must be preserved (the service relies on this
	// for per-session op order).
	next := map[string]int{}
	for _, r := range rec.Records {
		var w, i int
		if _, err := fmt.Sscanf(string(r.Payload), "w%d-%d", &w, &i); err != nil {
			t.Fatalf("bad payload %q", r.Payload)
		}
		key := fmt.Sprintf("w%d", w)
		if i != next[key] {
			t.Fatalf("worker %d: record %d arrived before %d", w, i, next[key])
		}
		next[key]++
	}
}

// TestAppendAfterClose pins the ErrClosed contract.
func TestAppendAfterClose(t *testing.T) {
	j, _ := openT(t, t.TempDir())
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("x")); err != ErrClosed {
		t.Errorf("Append after Close = %v, want ErrClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("double Close = %v, want nil", err)
	}
}

// TestOversizeRecord: payloads beyond MaxRecordBytes are rejected up front.
func TestOversizeRecord(t *testing.T) {
	j, _ := openT(t, t.TempDir())
	defer j.Close()
	if _, err := j.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Error("oversize Append succeeded, want error")
	}
}

// TestEncodeDecodeRecords pins the wire round trip the fuzzer explores.
func TestEncodeDecodeRecords(t *testing.T) {
	in := []Record{{Seq: 1, Payload: []byte("a")}, {Seq: 2, Payload: nil}, {Seq: 9, Payload: bytes.Repeat([]byte{0}, 1024)}}
	out, torn, err := DecodeRecords(EncodeRecords(in))
	if err != nil || torn {
		t.Fatalf("DecodeRecords: torn=%v err=%v", torn, err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Seq != in[i].Seq || !bytes.Equal(out[i].Payload, in[i].Payload) {
			t.Errorf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}
