package bloom

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// This file differentially tests the compiled semi-naive evaluator in
// node.go/compile.go against a reference implementation of the original
// naive evaluator (string-keyed stores, interpretive Expr.eval, re-run every
// rule until nothing changes). Randomized modules and workloads must produce
// identical fixpoints, emissions, and pending-work status on every tick.

// refStore mirrors the pre-semi-naive store: string row keys, clone on
// insert and snapshot.
type refStore struct{ rows map[string]Row }

func newRefStore() *refStore { return &refStore{rows: map[string]Row{}} }

func (s *refStore) insert(r Row) bool {
	k := r.key()
	if _, ok := s.rows[k]; ok {
		return false
	}
	s.rows[k] = r.clone()
	return true
}

func (s *refStore) remove(r Row) { delete(s.rows, r.key()) }

func (s *refStore) snapshot() []Row {
	keys := make([]string, 0, len(s.rows))
	for k := range s.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Row, len(keys))
	for i, k := range keys {
		out[i] = s.rows[k].clone()
	}
	return out
}

// refNode replicates the original naive Node.Tick semantics.
type refNode struct {
	mod        *Module
	state      map[string]*refStore
	strata     map[string]int
	pendingIns map[string][]Row
	pendingDel map[string][]Row
}

func newRefNode(t *testing.T, mod *Module) *refNode {
	t.Helper()
	strata, _, err := stratify(mod)
	if err != nil {
		t.Fatal(err)
	}
	n := &refNode{
		mod:        mod,
		state:      map[string]*refStore{},
		strata:     strata,
		pendingIns: map[string][]Row{},
		pendingDel: map[string][]Row{},
	}
	for _, c := range mod.Collections() {
		n.state[c.Name] = newRefStore()
	}
	return n
}

func (n *refNode) rowsOf(name string) []Row { return n.state[name].snapshot() }

func (n *refNode) deliver(coll string, rows ...Row) {
	for _, r := range rows {
		n.pendingIns[coll] = append(n.pendingIns[coll], r.clone())
	}
}

func (n *refNode) pending() bool { return len(n.pendingIns) > 0 || len(n.pendingDel) > 0 }

// tick is the original naive algorithm: apply pending work, run every
// instant rule of each stratum repeatedly until no insert lands, evaluate
// the remaining rules once, emit, clear transients. Emissions are returned
// as collection → all emitted rows (async merges and output contents).
func (n *refNode) tick() (map[string][]Row, error) {
	for _, coll := range sortedKeys(n.pendingIns) {
		for _, r := range n.pendingIns[coll] {
			n.state[coll].insert(r)
		}
	}
	n.pendingIns = map[string][]Row{}
	for _, coll := range sortedKeys(n.pendingDel) {
		for _, r := range n.pendingDel[coll] {
			n.state[coll].remove(r)
		}
	}
	n.pendingDel = map[string][]Row{}

	maxStratum := 0
	for _, s := range n.strata {
		if s > maxStratum {
			maxStratum = s
		}
	}
	for s := 0; s <= maxStratum; s++ {
		for {
			changed := false
			for _, r := range n.mod.Rules() {
				if r.Op != Instant || n.strata[r.Head] != s {
					continue
				}
				rows, err := r.Body.eval(n.mod, n)
				if err != nil {
					return nil, err
				}
				for _, row := range rows {
					if n.state[r.Head].insert(row) {
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
	}

	emitted := map[string][]Row{}
	for _, r := range n.mod.Rules() {
		if r.Op == Instant {
			continue
		}
		rows, err := r.Body.eval(n.mod, n)
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			continue
		}
		switch r.Op {
		case Deferred:
			n.pendingIns[r.Head] = append(n.pendingIns[r.Head], rows...)
		case Delete:
			n.pendingDel[r.Head] = append(n.pendingDel[r.Head], rows...)
		case Async:
			emitted[r.Head] = append(emitted[r.Head], rows...)
		}
	}
	for coll, rows := range emitted {
		emitted[coll] = dedup(rows)
	}
	for _, out := range n.mod.Outputs() {
		if rows := n.state[out].snapshot(); len(rows) > 0 {
			emitted[out] = append(emitted[out], rows...)
		}
	}
	for _, c := range n.mod.Collections() {
		if c.Kind.Transient() {
			n.state[c.Name].rows = map[string]Row{}
		}
	}
	return emitted, nil
}

// modGen builds random but always-schema-valid modules: every intermediate
// expression is renamed into globally fresh column names, so joins never
// collide and projections always resolve.
type modGen struct {
	r    *rand.Rand
	next int
}

func (g *modGen) fresh() string {
	g.next++
	return fmt.Sprintf("x%d", g.next)
}

func (g *modGen) val() Val {
	if g.r.Intn(2) == 0 {
		return S([]string{"a", "b", "c", "d"}[g.r.Intn(4)])
	}
	return I(int64(g.r.Intn(5)))
}

func (g *modGen) row(arity int) Row {
	r := make(Row, arity)
	for i := range r {
		r[i] = g.val()
	}
	return r
}

// expr generates a random expression over the module's collections along
// with its output schema.
func (g *modGen) expr(m *Module, colls []*Collection, depth int) (Expr, Schema) {
	if depth <= 0 || g.r.Intn(4) == 0 {
		c := colls[g.r.Intn(len(colls))]
		// Rename into fresh columns so any two subtrees compose.
		cols := make([]ColSpec, len(c.Schema))
		out := make(Schema, len(c.Schema))
		for i, col := range c.Schema {
			out[i] = g.fresh()
			cols[i] = ColAs(col, out[i])
		}
		return Project(Scan(c.Name), cols...), out
	}
	switch g.r.Intn(6) {
	case 0: // select
		in, s := g.expr(m, colls, depth-1)
		col := s[g.r.Intn(len(s))]
		return Select(in, Where(col, CmpOp(g.r.Intn(6)), g.val())), s
	case 1: // project (subset/duplicate/const)
		in, s := g.expr(m, colls, depth-1)
		nCols := 1 + g.r.Intn(len(s)+1)
		cols := make([]ColSpec, nCols)
		out := make(Schema, nCols)
		for i := range cols {
			out[i] = g.fresh()
			if g.r.Intn(5) == 0 {
				cols[i] = ConstCol(out[i], g.val())
			} else {
				cols[i] = ColAs(s[g.r.Intn(len(s))], out[i])
			}
		}
		return Project(in, cols...), out
	case 2: // join
		l, ls := g.expr(m, colls, depth-1)
		r, rs := g.expr(m, colls, depth-1)
		nKeys := 1 + g.r.Intn(2)
		var on [][2]string
		used := map[string]bool{}
		for i := 0; i < nKeys; i++ {
			rk := rs[g.r.Intn(len(rs))]
			if used[rk] {
				continue
			}
			used[rk] = true
			on = append(on, [2]string{ls[g.r.Intn(len(ls))], rk})
		}
		out := append(Schema{}, ls...)
		for _, c := range rs {
			if !used[c] {
				out = append(out, c)
			}
		}
		return Join(l, r, on...), out
	case 3: // antijoin
		l, ls := g.expr(m, colls, depth-1)
		r, rs := g.expr(m, colls, depth-1)
		return AntiJoin(l, r, [2]string{ls[g.r.Intn(len(ls))], rs[g.r.Intn(len(rs))]}), ls
	case 4: // group by
		in, s := g.expr(m, colls, depth-1)
		nKeys := 1 + g.r.Intn(len(s))
		keys := append(Schema{}, s...)
		g.r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		keys = keys[:nKeys]
		nAggs := 1 + g.r.Intn(2)
		var aggs []Agg
		out := append(Schema{}, keys...)
		for i := 0; i < nAggs; i++ {
			as := g.fresh()
			aggs = append(aggs, Agg{Func: AggFunc(g.r.Intn(4)), Col: s[g.r.Intn(len(s))], As: as})
			out = append(out, as)
		}
		gb := GroupBy(in, keys, aggs...)
		if g.r.Intn(2) == 0 {
			gb = gb.WithHaving(Where(out[g.r.Intn(len(out))], CmpOp(g.r.Intn(6)), g.val()))
		}
		return gb, out
	default: // monotone threshold
		in, s := g.expr(m, colls, depth-1)
		nKeys := 1 + g.r.Intn(len(s))
		keys := append(Schema{}, s...)
		g.r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		keys = keys[:nKeys]
		return MonotoneCountAtLeast(in, keys, int64(1+g.r.Intn(3))), Schema(keys)
	}
}

// adapt projects an expression onto the head's schema positionally, padding
// with constants when the body is narrower than the head.
func (g *modGen) adapt(e Expr, s Schema, head *Collection) Expr {
	cols := make([]ColSpec, len(head.Schema))
	for i, name := range head.Schema {
		if i < len(s) {
			cols[i] = ColAs(s[i], name)
		} else {
			cols[i] = ConstCol(name, g.val())
		}
	}
	return Project(e, cols...)
}

// module generates one random module; it may fail to stratify or validate
// (the caller retries with the same rng, which advances state).
func (g *modGen) module(seed int64) *Module {
	m := NewModule(fmt.Sprintf("rand%d", seed))
	m.Input("in1", "i1a", "i1b")
	m.Input("in2", "i2a", "i2b", "i2c")
	m.Table("t1", "t1a", "t1b")
	m.Table("t2", "t2a", "t2b", "t2c")
	m.Scratch("s1", "s1a", "s1b")
	m.Scratch("s2", "s2a", "s2b", "s2c")
	m.Channel("ch1", "cha", "chb")
	m.Output("o1", "oa", "ob")
	colls := m.Collections()

	heads := map[MergeOp][]string{
		Instant:  {"t1", "t2", "s1", "s2"},
		Deferred: {"t1", "t2"},
		Delete:   {"t1", "t2"},
		Async:    {"ch1", "o1"},
	}
	nRules := 4 + g.r.Intn(5)
	for i := 0; i < nRules; i++ {
		var op MergeOp
		switch p := g.r.Intn(10); {
		case p < 6:
			op = Instant
		case p < 7:
			op = Deferred
		case p < 8:
			op = Delete
		default:
			op = Async
		}
		head := m.Collection(heads[op][g.r.Intn(len(heads[op]))])
		body, s := g.expr(m, colls, 1+g.r.Intn(2))
		m.NamedRule(fmt.Sprintf("r%d", i), head.Name, op, g.adapt(body, s, head))
	}
	return m
}

func sortedCopy(rows []Row) []Row {
	out := make([]Row, len(rows))
	for i, r := range rows {
		out[i] = r.clone()
	}
	SortRows(out)
	return out
}

// TestSemiNaiveMatchesNaiveReference is the differential/property test: for
// 150 seeds, a random module is driven by a random workload under both
// evaluators, comparing per-tick emissions, pending status, and the full
// contents of every collection.
func TestSemiNaiveMatchesNaiveReference(t *testing.T) {
	const seeds = 150
	built := 0
	for seed := int64(0); seed < seeds; seed++ {
		g := &modGen{r: rand.New(rand.NewSource(seed))}
		var mod *Module
		var node *Node
		for attempt := 0; attempt < 25; attempt++ {
			m := g.module(seed)
			n, err := NewNode("sn", m)
			if err != nil {
				continue // unstratifiable or invalid draw; redraw
			}
			mod, node = m, n
			break
		}
		if mod == nil {
			t.Fatalf("seed %d: no valid module in 25 attempts", seed)
		}
		built++
		ref := newRefNode(t, mod)

		deliverable := []struct {
			name  string
			arity int
		}{{"in1", 2}, {"in2", 3}, {"t1", 2}, {"ch1", 2}}
		for tick := 0; tick < 6; tick++ {
			for i := 0; i < g.r.Intn(6); i++ {
				d := deliverable[g.r.Intn(len(deliverable))]
				row := g.row(d.arity)
				if err := node.Deliver(d.name, row); err != nil {
					t.Fatalf("seed %d tick %d: deliver: %v", seed, tick, err)
				}
				ref.deliver(d.name, row)
			}

			em, err := node.Tick()
			if err != nil {
				t.Fatalf("seed %d tick %d: seminaive tick: %v", seed, tick, err)
			}
			refEm, err := ref.tick()
			if err != nil {
				t.Fatalf("seed %d tick %d: reference tick: %v", seed, tick, err)
			}

			got := map[string][]Row{}
			for _, e := range em {
				got[e.Collection] = append(got[e.Collection], e.Rows...)
			}
			if len(got) != len(refEm) {
				t.Fatalf("seed %d tick %d: emitted collections %v vs reference %v", seed, tick, got, refEm)
			}
			for coll, rows := range refEm {
				if !reflect.DeepEqual(sortedCopy(got[coll]), sortedCopy(rows)) {
					t.Fatalf("seed %d tick %d: emission %q mismatch:\n seminaive: %v\n reference: %v",
						seed, tick, coll, sortedCopy(got[coll]), sortedCopy(rows))
				}
			}

			for _, c := range mod.Collections() {
				want := ref.state[c.Name].snapshot()
				if gotRows := node.Rows(c.Name); !reflect.DeepEqual(gotRows, want) {
					t.Fatalf("seed %d tick %d: collection %q mismatch:\n seminaive: %v\n reference: %v",
						seed, tick, c.Name, gotRows, want)
				}
			}
			if node.Pending() != ref.pending() {
				t.Fatalf("seed %d tick %d: pending %v vs reference %v", seed, tick, node.Pending(), ref.pending())
			}
		}
	}
	if built != seeds {
		t.Fatalf("built %d/%d modules", built, seeds)
	}
}

// deleteModule generates a module whose rule mix is skewed toward the
// deferred (<+) and delete (<-) operators, with every delete rule derived
// from its own head table (a selective self-scan), so deletions actually
// intersect current contents instead of projecting random constants that
// almost never match a stored row. Deferred rules feed rows back across
// ticks, racing re-derivation against deletion.
func (g *modGen) deleteModule(seed int64) *Module {
	m := NewModule(fmt.Sprintf("del%d", seed))
	m.Input("in1", "i1a", "i1b")
	m.Input("in2", "i2a", "i2b", "i2c")
	m.Table("t1", "t1a", "t1b")
	m.Table("t2", "t2a", "t2b", "t2c")
	m.Scratch("s1", "s1a", "s1b")
	m.Channel("ch1", "cha", "chb")
	m.Output("o1", "oa", "ob")
	colls := m.Collections()

	// selfSubset builds a body selecting a data-dependent subset of the
	// head table itself, projected back onto its own schema.
	selfSubset := func(head *Collection) Expr {
		cols := make([]ColSpec, len(head.Schema))
		out := make(Schema, len(head.Schema))
		for i, col := range head.Schema {
			out[i] = g.fresh()
			cols[i] = ColAs(col, out[i])
		}
		e := Project(Scan(head.Name), cols...)
		sel := Select(e, Where(out[g.r.Intn(len(out))], CmpOp(g.r.Intn(6)), g.val()))
		back := make([]ColSpec, len(head.Schema))
		for i, col := range head.Schema {
			back[i] = ColAs(out[i], col)
		}
		return Project(sel, back...)
	}

	nRules := 6 + g.r.Intn(4)
	for i := 0; i < nRules; i++ {
		switch p := g.r.Intn(10); {
		case p < 3: // instant feeder
			head := m.Collection([]string{"t1", "t2", "s1"}[g.r.Intn(3)])
			body, s := g.expr(m, colls, 1+g.r.Intn(2))
			m.NamedRule(fmt.Sprintf("r%d", i), head.Name, Instant, g.adapt(body, s, head))
		case p < 6: // delete a live subset of a table
			head := m.Collection([]string{"t1", "t2"}[g.r.Intn(2)])
			m.NamedRule(fmt.Sprintf("r%d", i), head.Name, Delete, selfSubset(head))
		case p < 9: // deferred feedback
			head := m.Collection([]string{"t1", "t2"}[g.r.Intn(2)])
			body, s := g.expr(m, colls, 1+g.r.Intn(2))
			m.NamedRule(fmt.Sprintf("r%d", i), head.Name, Deferred, g.adapt(body, s, head))
		default: // async observer
			head := m.Collection([]string{"ch1", "o1"}[g.r.Intn(2)])
			body, s := g.expr(m, colls, 1)
			m.NamedRule(fmt.Sprintf("r%d", i), head.Name, Async, g.adapt(body, s, head))
		}
	}
	return m
}

// TestSemiNaiveDeleteDeferredWorkloads extends the differential coverage
// to the delete and deferred queues: 120 seeds of delete/deferred-heavy
// modules run for 8 ticks (enough for feedback chains to drain) with rows
// delivered straight into the tables that delete rules target, comparing
// the compiled semi-naive node against the naive reference on every tick.
func TestSemiNaiveDeleteDeferredWorkloads(t *testing.T) {
	const seeds = 120
	built := 0
	deletesFired := 0
	for seed := int64(0); seed < seeds; seed++ {
		g := &modGen{r: rand.New(rand.NewSource(1000 + seed))}
		var mod *Module
		var node *Node
		for attempt := 0; attempt < 25; attempt++ {
			m := g.deleteModule(seed)
			n, err := NewNode("sn", m)
			if err != nil {
				continue
			}
			mod, node = m, n
			break
		}
		if mod == nil {
			t.Fatalf("seed %d: no valid module in 25 attempts", seed)
		}
		built++
		ref := newRefNode(t, mod)

		deliverable := []struct {
			name  string
			arity int
		}{{"in1", 2}, {"in2", 3}, {"t1", 2}, {"t2", 3}, {"ch1", 2}}
		for tick := 0; tick < 8; tick++ {
			for i := 0; i < 1+g.r.Intn(6); i++ {
				d := deliverable[g.r.Intn(len(deliverable))]
				row := g.row(d.arity)
				if err := node.Deliver(d.name, row); err != nil {
					t.Fatalf("seed %d tick %d: deliver: %v", seed, tick, err)
				}
				ref.deliver(d.name, row)
			}

			before := node.Size("t1") + node.Size("t2")
			em, err := node.Tick()
			if err != nil {
				t.Fatalf("seed %d tick %d: seminaive tick: %v", seed, tick, err)
			}
			refEm, err := ref.tick()
			if err != nil {
				t.Fatalf("seed %d tick %d: reference tick: %v", seed, tick, err)
			}
			if node.Size("t1")+node.Size("t2") < before {
				deletesFired++
			}

			got := map[string][]Row{}
			for _, e := range em {
				got[e.Collection] = append(got[e.Collection], e.Rows...)
			}
			if len(got) != len(refEm) {
				t.Fatalf("seed %d tick %d: emitted collections %v vs reference %v", seed, tick, got, refEm)
			}
			for coll, rows := range refEm {
				if !reflect.DeepEqual(sortedCopy(got[coll]), sortedCopy(rows)) {
					t.Fatalf("seed %d tick %d: emission %q mismatch:\n seminaive: %v\n reference: %v",
						seed, tick, coll, sortedCopy(got[coll]), sortedCopy(rows))
				}
			}
			for _, c := range mod.Collections() {
				want := ref.state[c.Name].snapshot()
				if gotRows := node.Rows(c.Name); !reflect.DeepEqual(gotRows, want) {
					t.Fatalf("seed %d tick %d: collection %q mismatch:\n seminaive: %v\n reference: %v",
						seed, tick, c.Name, gotRows, want)
				}
			}
			if node.Pending() != ref.pending() {
				t.Fatalf("seed %d tick %d: pending %v vs reference %v", seed, tick, node.Pending(), ref.pending())
			}
		}
	}
	if built != seeds {
		t.Fatalf("built %d/%d modules", built, seeds)
	}
	// The whole point of this generator: deletions must actually shrink
	// table state somewhere in the sweep.
	if deletesFired < seeds/10 {
		t.Fatalf("net deletions observed in only %d runs of %d — generator not exercising delete queues", deletesFired, seeds)
	}
}

// TestSemiNaiveDeferredDeleteChain is the directed companion: a deferred
// rule re-derives what a delete rule removes, so the two pending queues
// interleave across ticks; a counter stratum watches convergence. The
// compiled node must match the reference at every tick.
func TestSemiNaiveDeferredDeleteChain(t *testing.T) {
	build := func() *Module {
		m := NewModule("defer-del")
		m.Input("in", "k", "v")
		m.Table("live", "k", "v")
		m.Table("tomb", "k", "v")
		m.Scratch("sizes", "k", "cnt")
		m.Output("o1", "k", "cnt")
		m.Rule("live", Instant, Scan("in"))
		// Everything marked dead leaves live next tick…
		m.Rule("live", Delete, Scan("tomb"))
		// …but half of it is resurrected the tick after.
		m.Rule("live", Deferred,
			Select(Scan("tomb"), Where("v", EQ, S("keep"))))
		// Rows whose value is "drop" get entombed (one tick later).
		m.Rule("tomb", Deferred,
			Select(Scan("live"), Where("v", EQ, S("drop"))))
		m.Rule("sizes", Instant,
			GroupBy(Scan("live"), []string{"k"}, Agg{Func: Count, As: "cnt"}))
		m.Rule("o1", Instant, Scan("sizes"))
		return m
	}
	mod := build()
	n, err := NewNode("n", mod)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefNode(t, mod)

	step := func(tick int, rows ...Row) {
		t.Helper()
		if len(rows) > 0 {
			if err := n.Deliver("in", rows...); err != nil {
				t.Fatal(err)
			}
			ref.deliver("in", rows...)
		}
		em, err := n.Tick()
		if err != nil {
			t.Fatal(err)
		}
		refEm, err := ref.tick()
		if err != nil {
			t.Fatal(err)
		}
		got := map[string][]Row{}
		for _, e := range em {
			got[e.Collection] = append(got[e.Collection], e.Rows...)
		}
		for coll, rows := range refEm {
			if !reflect.DeepEqual(sortedCopy(got[coll]), sortedCopy(rows)) {
				t.Fatalf("tick %d: emission %q mismatch:\n seminaive: %v\n reference: %v",
					tick, coll, sortedCopy(got[coll]), sortedCopy(rows))
			}
		}
		for _, c := range mod.Collections() {
			if got, want := n.Rows(c.Name), ref.state[c.Name].snapshot(); !reflect.DeepEqual(got, want) {
				t.Fatalf("tick %d: collection %q: seminaive %v vs reference %v", tick, c.Name, got, want)
			}
		}
	}

	step(0,
		Row{S("a"), S("keep")}, Row{S("a"), S("drop")},
		Row{S("b"), S("drop")}, Row{S("c"), S("stay")})
	for tick := 1; tick <= 5; tick++ {
		step(tick)
	}
	// Fixpoint: "drop" rows oscillate into tombs and are not resurrected
	// (only "keep" values are), so live ends with the keep/stay rows.
	want := []Row{{S("a"), S("keep")}, {S("c"), S("stay")}}
	if got := n.Rows("live"); !reflect.DeepEqual(got, want) {
		t.Fatalf("final live = %v, want %v", got, want)
	}
}

// TestSemiNaiveRecursiveAntiJoin pins the antijoin delta path (and its
// right-side cache invalidation) on a recursive rule whose negative side
// changes between ticks: path extension may only pass through unblocked
// intermediate nodes, and the blocked set grows at the second tick. The
// semi-naive node must match the naive reference on every tick.
func TestSemiNaiveRecursiveAntiJoin(t *testing.T) {
	build := func() *Module {
		m := NewModule("blocked-tc")
		m.Input("edges", "src", "dst")
		m.Input("blocks", "m")
		m.Table("edge", "src", "dst")
		m.Table("blocked", "m")
		m.Table("path", "src", "dst")
		m.Rule("edge", Instant, Scan("edges"))
		m.Rule("blocked", Instant, Scan("blocks"))
		m.Rule("path", Instant, Scan("edge"))
		m.Rule("path", Instant,
			Project(
				Join(
					Project(AntiJoin(Scan("path"), Scan("blocked"), [2]string{"dst", "m"}),
						Col("src"), ColAs("dst", "mid")),
					Scan("edge"), [2]string{"mid", "src"}),
				Col("src"), Col("dst")))
		return m
	}
	mod := build()
	n, err := NewNode("n", mod)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefNode(t, mod)

	deliver := func(coll string, rows ...Row) {
		t.Helper()
		if err := n.Deliver(coll, rows...); err != nil {
			t.Fatal(err)
		}
		ref.deliver(coll, rows...)
	}
	tickBoth := func() {
		t.Helper()
		if _, err := n.Tick(); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.tick(); err != nil {
			t.Fatal(err)
		}
		for _, c := range mod.Collections() {
			if got, want := n.Rows(c.Name), ref.state[c.Name].snapshot(); !reflect.DeepEqual(got, want) {
				t.Fatalf("collection %q: seminaive %v vs reference %v", c.Name, got, want)
			}
		}
	}

	const chain = 30
	edge := func(i int) Row { return Row{S(fmt.Sprintf("n%02d", i)), S(fmt.Sprintf("n%02d", i+1))} }
	for i := 0; i < chain/2; i++ {
		deliver("edges", edge(i))
	}
	tickBoth()
	// Second tick: extend the chain and block an intermediate node; paths
	// straddling n20 must not be derived.
	for i := chain / 2; i < chain; i++ {
		deliver("edges", edge(i))
	}
	deliver("blocks", Row{S("n20")})
	tickBoth()
	// All (i, j) pairs except those with i < 20 < j: 465 - 20*10.
	if want := chain*(chain+1)/2 - 20*10; n.Size("path") != want {
		t.Fatalf("path size = %d, want %d", n.Size("path"), want)
	}
}

// TestSemiNaiveRecursiveDeltaJoin pins the semi-naive delta path on the
// classic recursive case with a larger graph than the node_test version.
func TestSemiNaiveRecursiveDeltaJoin(t *testing.T) {
	m := NewModule("tc")
	m.Input("edges", "src", "dst")
	m.Input("marks", "m")
	m.Table("edge", "src", "dst")
	m.Table("path", "src", "dst")
	m.Table("mark", "m")
	// reach joins a collection that stops changing after the first
	// iteration (mark) against one that keeps growing (path), so new rows
	// arrive exclusively through the full-left ⋈ Δright delta branch.
	m.Table("reach", "m", "dst")
	m.Rule("edge", Instant, Scan("edges"))
	m.Rule("mark", Instant, Scan("marks"))
	m.Rule("path", Instant, Scan("edge"))
	m.Rule("path", Instant,
		Project(
			Join(Project(Scan("path"), Col("src"), ColAs("dst", "mid")), Scan("edge"), [2]string{"mid", "src"}),
			Col("src"), Col("dst")))
	m.Rule("reach", Instant,
		Join(Project(Scan("mark"), ColAs("m", "src")), Scan("path"), [2]string{"src", "src"}))
	n, err := NewNode("n", m)
	if err != nil {
		t.Fatal(err)
	}
	// A chain of 30 nodes, delivered in two halves across two ticks: the
	// second tick re-runs the recursive fixpoint after the edge store
	// changed, so any stale cache of a join side (version invalidation
	// bugs) would truncate the closure.
	const chain = 30
	deliverEdges := func(from, to int) {
		for i := from; i < to; i++ {
			if err := n.Deliver("edges", Row{S(fmt.Sprintf("n%02d", i)), S(fmt.Sprintf("n%02d", i+1))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	deliverEdges(0, chain/2)
	if err := n.Deliver("marks", Row{S("n00")}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Tick(); err != nil {
		t.Fatal(err)
	}
	half := chain / 2
	if want := half * (half + 1) / 2; n.Size("path") != want {
		t.Fatalf("path size after half = %d, want %d", n.Size("path"), want)
	}
	deliverEdges(chain/2, chain)
	if _, err := n.Tick(); err != nil {
		t.Fatal(err)
	}
	want := chain * (chain + 1) / 2
	if n.Size("path") != want {
		t.Fatalf("path size = %d, want %d", n.Size("path"), want)
	}
	// n00 reaches every other node in the chain.
	if n.Size("reach") != chain {
		t.Fatalf("reach size = %d, want %d: %v", n.Size("reach"), chain, n.Rows("reach"))
	}
}
