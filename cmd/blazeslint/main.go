// Command blazeslint runs the Blazes codebase linters — the custom static
// analyzers that enforce the determinism contract (see internal/lint):
// maporder, nondet and ctxflow.
//
// It speaks the `go vet -vettool` protocol, so the canonical invocation is
// the one CI runs:
//
//	go build -o /tmp/blazeslint ./cmd/blazeslint
//	go vet -vettool=/tmp/blazeslint ./...
//
// It also runs standalone over package patterns, loading packages itself
// through the go tool:
//
//	blazeslint ./...
//	blazeslint -checks maporder,nondet -json ./internal/storm
//
// Flags (standalone mode):
//
//	-checks names  comma-separated analyzer selection (default: all)
//	-json          emit diagnostics as a JSON array
//
// Exit codes (standalone mode, the blazes CLI convention):
//
//	0  no diagnostics
//	1  diagnostics reported
//	2  usage error or a package failed to load
//
// In vettool mode diagnostics exit 2 (the unitchecker convention cmd/go
// expects) and tool errors exit 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"blazes/internal/lint"
)

const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The go vet handshakes arrive as bare flags before the .cfg argument.
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			if err := lint.PrintVersion(stdout, filepath.Base(os.Args[0])); err != nil {
				fmt.Fprintln(stderr, "blazeslint:", err)
				return exitError
			}
			return exitOK
		case arg == "-flags" || arg == "--flags":
			lint.PrintFlagDefs(stdout)
			return exitOK
		}
	}
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		return runVetTool(args, stdout, stderr)
	}
	return runStandalone(args, stdout, stderr)
}

// runVetTool handles one `go vet` package unit. Analyzer selection flags
// (-maporder, -nondet=true, ...) may precede the config path; with none,
// every registered analyzer runs.
func runVetTool(args []string, stdout, stderr io.Writer) int {
	cfgPath := args[len(args)-1]
	jsonOut := false
	var selected []string
	for _, arg := range args[:len(args)-1] {
		name := strings.TrimLeft(arg, "-")
		name, val, hasVal := strings.Cut(name, "=")
		if name == "json" {
			jsonOut = !hasVal || val == "true"
			continue
		}
		if lint.IsValidAnalyzer(name) && (!hasVal || val == "true") {
			selected = append(selected, name)
		}
	}
	analyzers, err := lint.ForNames(strings.Join(selected, ","))
	if err != nil {
		fmt.Fprintln(stderr, "blazeslint:", err)
		return exitError
	}
	diags, err := lint.RunUnit(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "blazeslint:", err)
		return exitError
	}
	if len(diags) == 0 {
		return exitOK
	}
	if jsonOut {
		printJSON(stdout, diags)
	} else {
		for _, d := range diags {
			fmt.Fprintln(stderr, d)
		}
	}
	return exitUsage // exit 2: the unitchecker "diagnostics found" code
}

func runStandalone(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blazeslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated analyzer names (default: all)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: blazeslint [-checks names] [-json] packages...\n       go vet -vettool=$(which blazeslint) ./...\n\nanalyzers:\n")
		for _, name := range lint.Names() {
			a, _ := lint.New(name)
			fmt.Fprintf(stderr, "  %-10s %s\n", name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return exitOK
		}
		return exitUsage
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers, err := lint.ForNames(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "blazeslint:", err)
		fs.Usage()
		return exitUsage
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "blazeslint:", err)
		return exitUsage
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "blazeslint:", err)
		return exitUsage
	}
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, lint.Analyze(pkg, analyzers)...)
	}
	if *jsonOut {
		printJSON(stdout, diags)
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return exitError
	}
	return exitOK
}

// printJSON renders diagnostics as a stable JSON array (empty array, not
// null, when clean).
func printJSON(w io.Writer, diags []lint.Diagnostic) {
	type wireDiag struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Column  int    `json:"column"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	out := make([]wireDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, wireDiag{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	data, _ := json.MarshalIndent(out, "", "  ")
	fmt.Fprintln(w, string(data))
}
