package core

import (
	"strings"
	"testing"
)

// TestFig10Reconcile checks the reconciliation procedure of Figure 10 over
// the cases the paper's derivations exercise, plus the Rep/non-Rep matrix.
func TestFig10Reconcile(t *testing.T) {
	tests := []struct {
		name   string
		labels []Label
		rep    bool
		want   Label
	}{
		// Taint ⇒ Rep ? Diverge : Run.
		{"taint no rep", []Label{Async, Taint}, false, Run},
		{"taint rep", []Label{Async, Taint}, true, Diverge},

		// Unprotected NDRead ⇒ Rep ? Inst : Run. (An Async sibling label
		// breaks protection: the read can rendezvous with unsealed data.)
		{"ndread unprotected no rep", []Label{Async, NDRead("campaign")}, false, Run},
		{"ndread unprotected rep", []Label{Async, NDRead("campaign")}, true, Inst},

		// Protected NDRead: every sibling is a compatible seal ⇒ Async.
		// This is the POOR/CAMPAIGN + Seal_campaign derivation: the merged
		// output is Async even though one path still carries Seal.
		{"ndread protected rep", []Label{Seal("campaign"), NDRead("id", "campaign")}, true, Async},
		{"ndread protected no rep", []Label{Seal("window"), NDRead("id", "window")}, false, Async},

		// Incompatible seal sibling does not protect.
		{"ndread bad seal", []Label{Seal("campaign"), NDRead("id")}, true, Inst},

		// No internal labels: merge only.
		{"plain async", []Label{Async, Async}, true, Async},
		{"plain seal", []Label{Seal("batch")}, false, Seal("batch")},
		{"seal plus async", []Label{Seal("batch"), Async}, false, Async},
		{"inst propagates", []Label{Inst, Async}, true, Inst},

		// Taint and unprotected NDRead together: worst wins.
		{"taint and ndread rep", []Label{Taint, NDRead("g"), Async}, true, Diverge},
		{"taint and ndread no rep", []Label{Taint, NDRead("g"), Async}, false, Run},
	}

	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rec := Reconcile(tt.labels, tt.rep, nil)
			if !rec.Output.Equal(tt.want) {
				t.Errorf("Reconcile(%v, rep=%v) = %s, want %s\n%s",
					tt.labels, tt.rep, rec.Output, tt.want, rec.String())
			}
		})
	}
}

func TestReconcileMultipleNDReadGates(t *testing.T) {
	// Two distinct gates, one protected and one not: the unprotected one
	// drives the output to Inst.
	labels := []Label{
		Seal("campaign"),
		NDRead("campaign"), // protected by the seal
		NDRead("user"),     // no seal covers it
	}
	rec := Reconcile(labels, true, nil)
	if !rec.Output.Equal(Inst) {
		t.Errorf("output = %s, want Inst", rec.Output)
	}
}

func TestReconcileTwoNDReadsProtectEachOther(t *testing.T) {
	// The ∀ in protected() admits other copies of the same NDRead.
	labels := []Label{NDRead("id"), NDRead("id")}
	rec := Reconcile(labels, true, nil)
	if !rec.Output.Equal(Async) {
		t.Errorf("output = %s, want Async (identical NDReads protect each other)", rec.Output)
	}
}

func TestReconcileOnlyOneAnomalyPerTaintSet(t *testing.T) {
	// Multiple taints add a single Run/Diverge, not several.
	rec := Reconcile([]Label{Taint, Taint, Taint}, false, nil)
	if len(rec.Added) != 1 {
		t.Errorf("added = %v, want exactly one label", rec.Added)
	}
}

func TestReconcileEmptyLabels(t *testing.T) {
	rec := Reconcile(nil, false, nil)
	if !rec.Output.Equal(Async) {
		t.Errorf("empty reconcile = %s, want Async", rec.Output)
	}
}

func TestReconciliationString(t *testing.T) {
	rec := Reconcile([]Label{Async, Taint}, true, nil)
	s := rec.String()
	for _, want := range []string{"Labels = {Async, Taint}", "Diverge", "merge"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
