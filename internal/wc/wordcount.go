// Package wc implements the paper's running Storm example: a streaming
// wordcount over a tweet stream (Figure 2). Tweets are split into words by
// Splitter (annotated CR), tallied per (word, batch) by Count
// (OW_{word,batch}) and written to a backing store by Commit (CW). The
// package also provides the synthetic tweet workload and the shared backing
// store used to compare runs for the Figure 11 experiment and the anomaly
// tests.
package wc

import (
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"blazes/internal/storm"
)

// DefaultVocabulary is a small word list with a skewed-ish mix of short
// terms, enough to create hash-partitioned fan-out across Count instances.
var DefaultVocabulary = []string{
	"calm", "bloom", "storm", "seal", "order", "replica", "batch", "word",
	"stream", "query", "click", "cloud", "shard", "log", "tuple", "graph",
	"lattice", "monotone", "quorum", "gossip", "cache", "commit", "ack",
	"spout", "bolt",
}

// SyntheticVocabulary builds an n-word synthetic vocabulary ("w000"…); n ≤ 0
// returns nil, selecting DefaultVocabulary.
func SyntheticVocabulary(n int) []string {
	if n <= 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = "w" + strconv.Itoa(i)
	}
	return out
}

// TweetSpout generates a deterministic synthetic tweet stream. Contents are
// derived by hashing (instance, batch, tuple, position), so two runs with
// different simulator seeds still process the *same* logical workload —
// exactly what cross-run determinism tests require.
type TweetSpout struct {
	// Batches is the number of batches each instance produces.
	Batches int64
	// TuplesPerBatch is the tweets per instance per batch.
	TuplesPerBatch int
	// WordsPerTweet is the words in each tweet.
	WordsPerTweet int
	// Vocab is the word list (DefaultVocabulary if nil).
	Vocab []string
}

// NextBatch implements storm.Spout.
func (s *TweetSpout) NextBatch(instance int, batch int64) ([]storm.Values, bool) {
	if batch >= s.Batches {
		return nil, false
	}
	vocab := s.Vocab
	if len(vocab) == 0 {
		vocab = DefaultVocabulary
	}
	tuples := make([]storm.Values, s.TuplesPerBatch)
	words := make([]string, s.WordsPerTweet) // scratch, reused across tweets
	for j := range tuples {
		for k := range words {
			words[k] = vocab[wordIndex(instance, batch, j, k, len(vocab))]
		}
		tuples[j] = storm.Values{strings.Join(words, " ")}
	}
	return tuples, true
}

func wordIndex(instance int, batch int64, tuple, pos, n int) int {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(instance))
	put(uint64(batch))
	put(uint64(tuple))
	put(uint64(pos))
	return int(h.Sum64() % uint64(n))
}

// ExpectedCounts computes the ground-truth per-batch word counts of the
// workload directly (no engine involved), for exactness assertions.
func (s *TweetSpout) ExpectedCounts(instances int) map[int64]map[string]int64 {
	out := map[int64]map[string]int64{}
	for b := int64(0); b < s.Batches; b++ {
		counts := map[string]int64{}
		for i := 0; i < instances; i++ {
			tuples, ok := s.NextBatch(i, b)
			if !ok {
				continue
			}
			for _, tv := range tuples {
				for _, w := range strings.Fields(tv[0]) {
					counts[w]++
				}
			}
		}
		out[b] = counts
	}
	return out
}

// Splitter divides tweets into their constituent words (annotation CR:
// stateless and confluent).
type Splitter struct{}

// Execute implements storm.Bolt.
func (Splitter) Execute(t storm.Tuple, emit storm.Emitter) {
	// One allocation per tweet: every emitted single-word tuple is a
	// capacity-clamped subslice of the Fields result.
	words := strings.Fields(t.Values[0])
	for i := range words {
		emit(storm.Tuple{Values: words[i : i+1 : i+1]})
	}
}

// FinishBatch implements storm.Bolt (no per-batch state).
func (Splitter) FinishBatch(int64, storm.Emitter) {}

// Count tallies words within each batch (annotation OW_{word,batch}:
// stateful and order-sensitive, but sealable on batch). At batch end it
// emits one (word, count) tuple per word, in sorted word order so the
// operator itself stays deterministic.
type Count struct {
	perBatch map[int64]map[string]int64
}

// NewCount returns a fresh counter instance.
func NewCount() *Count { return &Count{perBatch: map[int64]map[string]int64{}} }

// Execute implements storm.Bolt.
func (c *Count) Execute(t storm.Tuple, _ storm.Emitter) {
	m, ok := c.perBatch[t.Batch]
	if !ok {
		m = map[string]int64{}
		c.perBatch[t.Batch] = m
	}
	m[t.Values[0]]++
}

// FinishBatch implements storm.Bolt: emits the batch's counts.
func (c *Count) FinishBatch(batch int64, emit storm.Emitter) {
	m := c.perBatch[batch]
	words := make([]string, 0, len(m))
	for w := range m {
		words = append(words, w)
	}
	sort.Strings(words)
	for _, w := range words {
		emit(storm.Tuple{Values: storm.Values{w, strconv.FormatInt(m[w], 10)}})
	}
	delete(c.perBatch, batch)
}

// Store is the backing store Commit writes to: per-batch word counts plus
// the order in which distinct batches first committed (used to verify the
// transactional total order and the sealed out-of-order behaviour).
type Store struct {
	rows  map[int64]map[string]int64
	order []int64
	seen  map[int64]bool
}

// NewStore returns an empty backing store.
func NewStore() *Store {
	return &Store{rows: map[int64]map[string]int64{}, seen: map[int64]bool{}}
}

// Apply merges one committer instance's rows for a batch.
func (s *Store) Apply(batch int64, counts map[string]int64) {
	if !s.seen[batch] {
		s.seen[batch] = true
		s.order = append(s.order, batch)
	}
	m, ok := s.rows[batch]
	if !ok {
		m = map[string]int64{}
		s.rows[batch] = m
	}
	for w, c := range counts {
		m[w] = c // keyed overwrite: replays are idempotent
	}
}

// Snapshot returns a deep copy of the stored rows.
func (s *Store) Snapshot() map[int64]map[string]int64 {
	out := make(map[int64]map[string]int64, len(s.rows))
	for b, m := range s.rows {
		cp := make(map[string]int64, len(m))
		for w, c := range m {
			cp[w] = c
		}
		out[b] = cp
	}
	return out
}

// CommitOrder returns the distinct batches in first-commit order.
func (s *Store) CommitOrder() []int64 { return append([]int64(nil), s.order...) }

// Commit is the committer bolt: it buffers the counts for each batch and
// writes them to the backing store at commit time (annotation CW: the store
// is keyed by (word, batch), so appends are order-insensitive and replays
// idempotent).
type Commit struct {
	store   *Store
	pending map[int64]map[string]int64
}

// NewCommit returns a committer writing to store.
func NewCommit(store *Store) *Commit {
	return &Commit{store: store, pending: map[int64]map[string]int64{}}
}

// Execute implements storm.Bolt: buffer rows until commit.
func (c *Commit) Execute(t storm.Tuple, _ storm.Emitter) {
	m, ok := c.pending[t.Batch]
	if !ok {
		m = map[string]int64{}
		c.pending[t.Batch] = m
	}
	n, _ := strconv.ParseInt(t.Values[1], 10, 64)
	m[t.Values[0]] = n
}

// FinishBatch implements storm.Bolt (commit happens in Commit).
func (c *Commit) FinishBatch(int64, storm.Emitter) {}

// Commit implements storm.Committer: apply the batch durably.
func (c *Commit) Commit(batch int64) {
	c.store.Apply(batch, c.pending[batch])
	delete(c.pending, batch)
}
