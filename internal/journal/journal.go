// Package journal is the durability substrate under blazes/service: an
// append-only record log with group-commit fsync batching, periodic
// snapshots, and snapshot+replay recovery. The journal stores opaque
// payloads — the service serializes its own session op records — and owns
// only the on-disk discipline: framing, checksums, atomic snapshot
// replacement, segment rotation, and corrupt-tail truncation.
//
// On-disk layout (all files live in one directory):
//
//	wal-<first-seq>.log    record segments, oldest first
//	snap-<seq>.snap        a snapshot covering every record with Seq <= seq
//
// Every file starts with an 8-byte header: the magic "BLZJ", a kind byte
// ('W' for wal segments, 'S' for snapshots), a format version byte, and
// two reserved zero bytes. A file whose version byte is newer than this
// package understands is rejected with ErrVersionSkew — refusing to guess
// at a future format beats silently dropping its records.
//
// Records are length-prefixed frames:
//
//	uint32 LE  payload length
//	uint32 LE  CRC32 (IEEE) over seq + payload
//	uint64 LE  seq
//	[]byte     payload
//
// A torn final frame — short write from a crash mid-append — is detected
// by the length/CRC check, reported in Recovered.Torn, and truncated away
// on open so the segment is clean for new appends. Appends are durable
// when Append returns: concurrent appenders are batched behind a single
// writer goroutine that issues one fsync per batch (group commit), so a
// kill -9 can lose only records whose Append had not yet returned.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	// Version is the current on-disk format version.
	Version = 1

	headerSize = 8
	frameSize  = 16 // length + crc + seq, before the payload

	kindWAL  = 'W'
	kindSnap = 'S'

	// MaxRecordBytes bounds a single record payload; a length prefix
	// beyond it is treated as corruption, not an allocation request.
	MaxRecordBytes = 64 << 20
)

var magic = [4]byte{'B', 'L', 'Z', 'J'}

// ErrVersionSkew marks a file written by a newer format version.
var ErrVersionSkew = errors.New("journal: file format version is newer than supported")

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("journal: closed")

// Record is one replayed journal entry.
type Record struct {
	Seq     uint64
	Payload []byte
}

// Recovered describes what Open found on disk.
type Recovered struct {
	// Snapshot is the newest decodable snapshot payload (nil if none) and
	// SnapshotSeq the record seq it covers.
	Snapshot    []byte
	SnapshotSeq uint64
	// Records are the journal records with Seq > SnapshotSeq, in order.
	Records []Record
	// Torn reports that a corrupt tail was found and truncated away;
	// TruncatedBytes counts the bytes dropped.
	Torn           bool
	TruncatedBytes int64
}

// Stats is a point-in-time snapshot of the journal's counters, surfaced by
// the service's /v1/stats endpoint.
type Stats struct {
	// LastSeq is the highest assigned record seq; SyncedSeq the highest
	// seq known durable. Lag = LastSeq - SyncedSeq is the group-commit
	// queue depth.
	LastSeq   uint64 `json:"last_seq"`
	SyncedSeq uint64 `json:"synced_seq"`
	Lag       uint64 `json:"lag"`
	// Appended counts records accepted this process; Fsyncs the batch
	// commits that made them durable (Appended/Fsyncs is the achieved
	// group-commit batching factor).
	Appended uint64 `json:"appended"`
	Fsyncs   uint64 `json:"fsyncs"`
	// SnapshotSeq is the seq covered by the newest snapshot; Snapshots
	// counts snapshot writes this process.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	Snapshots   uint64 `json:"snapshots"`
	// Segments and Bytes describe the live wal files.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
}

// Options tunes Open behavior beyond the on-disk defaults.
type Options struct {
	// SegmentBytes caps the active wal segment: once a commit pushes the
	// segment past the cap, the journal rotates to a fresh segment (the
	// full one stays on disk until the next snapshot obsoletes it), so no
	// single wal file grows unboundedly between snapshots. 0 disables
	// size-based rotation; snapshots still rotate.
	SegmentBytes int64
}

// Journal is an open journal directory. Append is safe for concurrent use.
type Journal struct {
	dir      string
	segBytes int64

	mu      sync.Mutex
	f       *os.File // active wal segment
	size    int64    // bytes written to f
	sealed  int64    // bytes in live, already-rotated segments
	nextSeq uint64   // seq the next Append gets
	closed  bool

	// Group commit: appenders queue on reqs; the writer goroutine drains
	// the queue, writes every pending frame, fsyncs once, and releases
	// the whole cohort. inflight tracks appenders between seq assignment
	// and completion so Close can drain them before closing reqs.
	reqs     chan appendReq
	done     chan struct{} // writer exited
	inflight sync.WaitGroup

	stats struct {
		sync.Mutex
		synced      uint64
		appended    uint64
		fsyncs      uint64
		snapshotSeq uint64
		snapshots   uint64
	}

	segments []segment // live wal files, oldest first
}

type segment struct {
	firstSeq uint64
	path     string
}

type appendReq struct {
	frame []byte
	seq   uint64
	done  chan error
}

// Open opens (or creates) the journal in dir and returns everything needed
// to rebuild state: the newest snapshot plus the record suffix after it. A
// corrupt tail is truncated; a file from a future format version fails
// with ErrVersionSkew.
func Open(dir string) (*Journal, *Recovered, error) {
	return OpenWithOptions(dir, Options{})
}

// OpenWithOptions is Open with tuning; see Options.
func OpenWithOptions(dir string, opts Options) (*Journal, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	snaps, wals, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}

	rec := &Recovered{}
	// Newest decodable snapshot wins; a corrupt newest snapshot (e.g. a
	// crash during the pre-rename write never happens — writes go to a
	// .tmp first — but a torn disk is still survivable) falls back to the
	// previous one.
	for i := len(snaps) - 1; i >= 0; i-- {
		payload, err := readSnapshot(snaps[i].path)
		if err != nil {
			if errors.Is(err, ErrVersionSkew) {
				return nil, nil, fmt.Errorf("journal: %s: %w", snaps[i].path, err)
			}
			continue
		}
		rec.Snapshot = payload
		rec.SnapshotSeq = snaps[i].firstSeq
		break
	}

	j := &Journal{dir: dir, segBytes: opts.SegmentBytes, nextSeq: 1, reqs: make(chan appendReq, 1024), done: make(chan struct{})}
	j.stats.snapshotSeq = rec.SnapshotSeq

	// Replay wal segments in order. Records at or below the snapshot seq
	// are already folded into the snapshot; a torn record ends the
	// journal — everything after it (including later segments, which a
	// correct writer cannot have produced) is unreachable.
	for i, seg := range wals {
		records, goodBytes, torn, err := readSegment(seg.path)
		if err != nil {
			return nil, nil, fmt.Errorf("journal: %s: %w", seg.path, err)
		}
		for _, r := range records {
			if r.Seq > rec.SnapshotSeq {
				rec.Records = append(rec.Records, r)
			}
			if r.Seq >= j.nextSeq {
				j.nextSeq = r.Seq + 1
			}
		}
		if !torn {
			j.segments = append(j.segments, seg)
			continue
		}
		rec.Torn = true
		if info, statErr := os.Stat(seg.path); statErr == nil {
			rec.TruncatedBytes += info.Size() - goodBytes
		}
		if goodBytes < headerSize {
			// The crash tore even the file header; nothing in the segment
			// is recoverable, so drop the file rather than appending to a
			// header-less shell.
			_ = os.Remove(seg.path)
		} else {
			if err := os.Truncate(seg.path, goodBytes); err != nil {
				return nil, nil, fmt.Errorf("journal: truncating torn tail of %s: %w", seg.path, err)
			}
			j.segments = append(j.segments, seg)
		}
		// Later segments are unreachable past a torn record — a correct
		// writer cannot have produced them.
		for _, later := range wals[i+1:] {
			if info, err := os.Stat(later.path); err == nil {
				rec.TruncatedBytes += info.Size()
			}
			_ = os.Remove(later.path)
		}
		break
	}
	if rec.SnapshotSeq >= j.nextSeq {
		j.nextSeq = rec.SnapshotSeq + 1
	}
	j.stats.synced = j.nextSeq - 1

	// Open the active segment: append to the last live one, or start a
	// fresh segment at the next seq.
	if len(j.segments) > 0 {
		for _, seg := range j.segments[:len(j.segments)-1] {
			if info, err := os.Stat(seg.path); err == nil {
				j.sealed += info.Size()
			}
		}
		last := j.segments[len(j.segments)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		j.f, j.size = f, info.Size()
	} else if err := j.openSegmentLocked(j.nextSeq); err != nil {
		return nil, nil, err
	}

	go j.writer()
	return j, rec, nil
}

// openSegmentLocked creates a fresh wal segment whose first record will be
// firstSeq. Caller holds j.mu (or is still single-threaded in Open).
func (j *Journal) openSegmentLocked(firstSeq uint64) error {
	path := filepath.Join(j.dir, fmt.Sprintf("wal-%020d.log", firstSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	hdr := fileHeader(kindWAL)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	j.f, j.size = f, headerSize
	j.segments = append(j.segments, segment{firstSeq: firstSeq, path: path})
	return nil
}

// Append durably appends one record and returns its seq: when Append
// returns nil, the record has been fsynced. Concurrent appenders share
// fsyncs (group commit).
func (j *Journal) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("journal: record of %d bytes exceeds the %d-byte limit", len(payload), MaxRecordBytes)
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	seq := j.nextSeq
	j.nextSeq++
	j.inflight.Add(1)
	j.mu.Unlock()
	defer j.inflight.Done()

	req := appendReq{frame: encodeFrame(seq, payload), seq: seq, done: make(chan error, 1)}
	j.reqs <- req
	return seq, <-req.done
}

// writer is the single goroutine that owns file writes: it drains every
// queued append, writes the frames, fsyncs once, and releases the cohort.
func (j *Journal) writer() {
	defer close(j.done)
	for req, ok := <-j.reqs; ok; req, ok = <-j.reqs {
		batch := []appendReq{req}
	drain:
		for {
			select {
			case r, more := <-j.reqs:
				if !more {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		err := j.commit(batch)
		for _, r := range batch {
			r.done <- err
		}
	}
}

// commit writes and fsyncs one batch.
func (j *Journal) commit(batch []appendReq) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	var buf []byte
	maxSeq := uint64(0)
	for _, r := range batch {
		buf = append(buf, r.frame...)
		if r.seq > maxSeq {
			maxSeq = r.seq
		}
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.size += int64(len(buf))
	if j.segBytes > 0 && j.size >= j.segBytes {
		j.rotateLocked()
	}
	j.stats.Lock()
	if maxSeq > j.stats.synced {
		j.stats.synced = maxSeq
	}
	j.stats.appended += uint64(len(batch))
	j.stats.fsyncs++
	j.stats.Unlock()
	return nil
}

// rotateLocked starts a fresh wal segment; the full old segment stays on
// disk until the next snapshot obsoletes it (recovery replays every live
// segment in order). A rotation failure is not an append failure — the
// batch that triggered it is already durable in the old segment — so the
// journal keeps appending there and retries on the next commit. Caller
// holds j.mu.
func (j *Journal) rotateLocked() {
	old, oldSize := j.f, j.size
	if err := j.openSegmentLocked(j.nextSeq); err != nil {
		return
	}
	j.sealed += oldSize
	_ = old.Close()
}

// Snapshot atomically records a state snapshot covering every record
// appended so far, rotates to a fresh wal segment, and deletes the
// segments and snapshots the new snapshot obsoletes. The caller guarantees
// payload reflects all records it has successfully appended.
func (j *Journal) Snapshot(payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	seq := j.nextSeq - 1

	path := filepath.Join(j.dir, fmt.Sprintf("snap-%020d.snap", seq))
	if err := writeSnapshot(path, payload); err != nil {
		return err
	}

	// Rotate: records after the snapshot go to a fresh segment, and every
	// wholly-covered old segment can go. Old segments are removed before
	// the new one opens: a size rotation may already have created a
	// (still-empty) segment named wal-<seq+1>, and O_EXCL would refuse to
	// reuse the name while the file exists.
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	old := j.segments
	j.segments = nil
	j.sealed = 0
	for _, seg := range old {
		_ = os.Remove(seg.path)
	}
	if err := j.openSegmentLocked(seq + 1); err != nil {
		return err
	}
	// Drop superseded snapshots.
	snaps, _, err := scanDir(j.dir)
	if err == nil {
		for _, s := range snaps {
			if s.firstSeq < seq {
				_ = os.Remove(s.path)
			}
		}
	}

	j.stats.Lock()
	j.stats.snapshotSeq = seq
	j.stats.snapshots++
	j.stats.Unlock()
	return nil
}

// Stats returns current counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	last := j.nextSeq - 1
	segs := len(j.segments)
	size := j.size + j.sealed
	j.mu.Unlock()
	j.stats.Lock()
	defer j.stats.Unlock()
	lag := uint64(0)
	if last > j.stats.synced {
		lag = last - j.stats.synced
	}
	return Stats{
		LastSeq:     last,
		SyncedSeq:   j.stats.synced,
		Lag:         lag,
		Appended:    j.stats.appended,
		Fsyncs:      j.stats.fsyncs,
		SnapshotSeq: j.stats.snapshotSeq,
		Snapshots:   j.stats.snapshots,
		Segments:    segs,
		Bytes:       size,
	}
}

// Close flushes pending appends and closes the journal. Further Appends
// fail with ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	j.inflight.Wait()
	close(j.reqs)
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ---- encoding ----

func fileHeader(kind byte) [headerSize]byte {
	var h [headerSize]byte
	copy(h[:4], magic[:])
	h[4] = kind
	h[5] = Version
	return h
}

func checkHeader(h []byte, kind byte) error {
	if len(h) < headerSize || [4]byte(h[:4]) != magic || h[4] != kind {
		return fmt.Errorf("not a journal file (bad magic)")
	}
	if h[5] > Version {
		return fmt.Errorf("%w (file version %d, supported %d)", ErrVersionSkew, h[5], Version)
	}
	if h[5] == 0 {
		return fmt.Errorf("not a journal file (version 0)")
	}
	if h[6] != 0 || h[7] != 0 {
		// Reserved bytes are written as zero in every version this
		// package produces; anything else is not our file.
		return fmt.Errorf("not a journal file (reserved header bytes set)")
	}
	return nil
}

// encodeFrame renders one record frame (length, crc, seq, payload).
func encodeFrame(seq uint64, payload []byte) []byte {
	frame := make([]byte, frameSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(frame[8:16], seq)
	copy(frame[frameSize:], payload)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[8:]))
	return frame
}

// decodeFrames walks frames in data, returning the decoded records and the
// byte offset of the first torn/corrupt frame (== len(data) when the tail
// is clean).
func decodeFrames(data []byte) (records []Record, goodBytes int) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return records, off
		}
		if len(rest) < frameSize {
			return records, off // torn length prefix
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		if n > MaxRecordBytes || int(n) > len(rest)-frameSize {
			return records, off // absurd length or torn payload
		}
		end := frameSize + int(n)
		if crc32.ChecksumIEEE(rest[8:end]) != binary.LittleEndian.Uint32(rest[4:8]) {
			return records, off // bit rot or torn write
		}
		seq := binary.LittleEndian.Uint64(rest[8:16])
		payload := make([]byte, n)
		copy(payload, rest[frameSize:end])
		records = append(records, Record{Seq: seq, Payload: payload})
		off += end
	}
}

// readSegment decodes one wal file; torn reports a corrupt tail and
// goodBytes the clean prefix length (header included).
func readSegment(path string) (records []Record, goodBytes int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, err
	}
	if len(data) < headerSize {
		// A crash can leave a header-less segment; everything in it (there
		// is nothing) is gone.
		return nil, 0, true, nil
	}
	if err := checkHeader(data, kindWAL); err != nil {
		return nil, 0, false, err
	}
	records, good := decodeFrames(data[headerSize:])
	goodBytes = int64(headerSize + good)
	return records, goodBytes, goodBytes < int64(len(data)), nil
}

// writeSnapshot writes payload to path atomically: temp file, fsync,
// rename, directory fsync.
func writeSnapshot(path string, payload []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	hdr := fileHeader(kindSnap)
	frame := encodeFrame(0, payload)
	if _, err := f.Write(append(hdr[:], frame...)); err != nil {
		f.Close()
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return nil
}

// readSnapshot decodes a snapshot file's payload.
func readSnapshot(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("journal: snapshot too short")
	}
	if err := checkHeader(data, kindSnap); err != nil {
		return nil, err
	}
	records, good := decodeFrames(data[headerSize:])
	if len(records) != 1 || headerSize+good != len(data) {
		return nil, fmt.Errorf("journal: corrupt snapshot")
	}
	return records[0].Payload, nil
}

// scanDir lists snapshot and wal files, sorted by their embedded seq.
func scanDir(dir string) (snaps, wals []segment, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if seq, ok := parseSeq(name, "wal-", ".log"); ok {
				wals = append(wals, segment{firstSeq: seq, path: filepath.Join(dir, name)})
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if seq, ok := parseSeq(name, "snap-", ".snap"); ok {
				snaps = append(snaps, segment{firstSeq: seq, path: filepath.Join(dir, name)})
			}
		}
	}
	sort.Slice(wals, func(i, k int) bool { return wals[i].firstSeq < wals[k].firstSeq })
	sort.Slice(snaps, func(i, k int) bool { return snaps[i].firstSeq < snaps[k].firstSeq })
	return snaps, wals, nil
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	s := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	seq, err := strconv.ParseUint(s, 10, 64)
	return seq, err == nil
}

// EncodeRecords renders records into wal wire format (header + frames) —
// the fuzzer's round-trip oracle and a convenience for tests that build
// journal files by hand.
func EncodeRecords(records []Record) []byte {
	hdr := fileHeader(kindWAL)
	out := append([]byte(nil), hdr[:]...)
	for _, r := range records {
		out = append(out, encodeFrame(r.Seq, r.Payload)...)
	}
	return out
}

// DecodeRecords parses wal wire format produced by EncodeRecords (or a
// prefix of a wal file). It never panics on arbitrary input: it returns
// the longest decodable prefix and whether the tail was torn. Inputs from
// a future format version fail with ErrVersionSkew; inputs that are not
// journal data at all fail with a plain error.
func DecodeRecords(data []byte) (records []Record, torn bool, err error) {
	if len(data) < headerSize {
		return nil, false, io.ErrUnexpectedEOF
	}
	if err := checkHeader(data, kindWAL); err != nil {
		return nil, false, err
	}
	records, good := decodeFrames(data[headerSize:])
	return records, headerSize+good < len(data), nil
}
