package main

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// recorder collects exact per-endpoint latency samples (a burst is at most
// a few hundred thousand requests, so sorting beats histogram buckets for
// percentile fidelity) plus status-code and transport-error tallies.
type recorder struct {
	mu      sync.Mutex
	samples map[string][]time.Duration
	codes   map[string]map[int]int
	errs    map[string]int
	wall    time.Duration
}

func newRecorder() *recorder {
	return &recorder{
		samples: map[string][]time.Duration{},
		codes:   map[string]map[int]int{},
		errs:    map[string]int{},
	}
}

func (r *recorder) observe(endpoint string, code int, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples[endpoint] = append(r.samples[endpoint], d)
	if r.codes[endpoint] == nil {
		r.codes[endpoint] = map[int]int{}
	}
	r.codes[endpoint][code]++
}

func (r *recorder) transportError(endpoint string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.errs[endpoint]++
}

func (r *recorder) requests() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.samples {
		n += len(s)
	}
	return n
}

func (r *recorder) errorCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.errs {
		n += c
	}
	return n
}

// shedCount counts 429 and 503 responses — requests the server refused by
// design rather than failed.
func (r *recorder) shedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, byCode := range r.codes {
		n += byCode[429] + byCode[503]
	}
	return n
}

// Percentiles is one endpoint's latency summary, microsecond units.
type Percentiles struct {
	Count  int    `json:"count"`
	MeanUs uint64 `json:"mean_us"`
	P50Us  uint64 `json:"p50_us"`
	P95Us  uint64 `json:"p95_us"`
	P99Us  uint64 `json:"p99_us"`
	MaxUs  uint64 `json:"max_us"`
}

func percentiles(samples []time.Duration) Percentiles {
	if len(samples) == 0 {
		return Percentiles{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i] < sorted[k] })
	at := func(q float64) uint64 {
		i := int(q * float64(len(sorted)-1))
		return uint64(sorted[i].Microseconds())
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return Percentiles{
		Count:  len(sorted),
		MeanUs: uint64((sum / time.Duration(len(sorted))).Microseconds()),
		P50Us:  at(0.50),
		P95Us:  at(0.95),
		P99Us:  at(0.99),
		MaxUs:  uint64(sorted[len(sorted)-1].Microseconds()),
	}
}

// Report is the loadgen output document. Benchmarks mirrors the
// BENCH_N.json baseline shape ("Benchmark...": {"ns_per_op": ...}) so
// scripts/bench_diff.sh can diff a smoke run against the committed
// BENCH_7.json with the same awk it uses for the Go benchmarks.
type Report struct {
	Meta       map[string]any                `json:"meta"`
	Totals     Totals                        `json:"totals"`
	Latency    map[string]Percentiles        `json:"latency"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// Totals aggregates the burst.
type Totals struct {
	Sessions      int     `json:"sessions"`
	Requests      int     `json:"requests"`
	Shed          int     `json:"shed"`
	Errors        int     `json:"errors"`
	DurationSec   float64 `json:"duration_sec"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

func (r *recorder) report(cfg config) Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	lat := map[string]Percentiles{}
	total := 0
	for ep, s := range r.samples {
		lat[ep] = percentiles(s)
		total += len(s)
	}
	shed := 0
	for _, byCode := range r.codes {
		shed += byCode[429] + byCode[503]
	}
	errs := 0
	for _, c := range r.errs {
		errs += c
	}

	benchmarks := map[string]map[string]float64{}
	caser := map[string]string{"create": "Create", "mutate": "Mutate", "analyze": "Analyze"}
	for ep, p := range lat {
		name, ok := caser[ep]
		if !ok || p.Count == 0 {
			continue
		}
		for q, us := range map[string]uint64{"P50": p.P50Us, "P95": p.P95Us, "P99": p.P99Us} {
			benchmarks[fmt.Sprintf("BenchmarkLoadgen%s%s", name, q)] = map[string]float64{
				"ns_per_op": float64(us) * 1e3,
			}
		}
	}

	wall := r.wall.Seconds()
	rps := 0.0
	if wall > 0 {
		rps = float64(total) / wall
	}
	return Report{
		Meta: map[string]any{
			"generated_by": "cmd/loadgen",
			"go":           runtime.Version(),
			"date":         time.Now().UTC().Format(time.RFC3339),
			"sessions":     cfg.sessions,
			"rate":         cfg.rate,
			"mutations":    cfg.mutations,
			"seed":         cfg.seed,
		},
		Totals: Totals{
			Sessions:      cfg.sessions,
			Requests:      total,
			Shed:          shed,
			Errors:        errs,
			DurationSec:   wall,
			ThroughputRPS: rps,
		},
		Latency:    lat,
		Benchmarks: benchmarks,
	}
}
