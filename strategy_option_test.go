package blazes

import (
	"strings"
	"testing"
)

// TestWithStrategyUnknownRejected: an unknown strategy name fails at the
// analysis boundary — Analyze, Synthesize, Repair and OpenSession all
// reject it before any work happens, and the error lists the registered
// names.
func TestWithStrategyUnknownRejected(t *testing.T) {
	g := WordcountTopology(true)
	a := NewAnalyzer(WithStrategy("nope"))
	for name, run := range map[string]func() error{
		"analyze":    func() error { _, err := a.Analyze(g); return err },
		"synthesize": func() error { _, err := a.Synthesize(g); return err },
		"repair":     func() error { _, err := a.Repair(g); return err },
		"session":    func() error { _, err := OpenSession(g, WithStrategy("nope")); return err },
	} {
		err := run()
		if err == nil {
			t.Errorf("%s accepted an unknown strategy", name)
			continue
		}
		if !strings.Contains(err.Error(), `unknown strategy "nope"`) {
			t.Errorf("%s error %q does not name the unknown strategy", name, err)
		}
		if !strings.Contains(err.Error(), "sealing") || !strings.Contains(err.Error(), "quorum-ordering") {
			t.Errorf("%s error %q does not list the registered names", name, err)
		}
	}
}

// TestWithStrategySelectsMechanism: a preferred strategy that applies wins
// over the default chain, and the mechanism surfaces through the Report v2
// strategy naming.
func TestWithStrategySelectsMechanism(t *testing.T) {
	g := WordcountTopology(false) // ungated: default chain would order
	res, err := NewAnalyzer(WithStrategy("quorum-ordering")).Synthesize(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies()) == 0 {
		t.Fatal("no strategies synthesized for the ungated wordcount")
	}
	found := false
	for _, st := range res.Strategies() {
		if st.Mechanism == CoordQuorumOrder {
			found = true
		}
	}
	if !found {
		t.Fatalf("no quorum-ordering strategy in %v", res.Strategies())
	}
	rep := res.Report()
	joined := ""
	for _, st := range rep.Strategies {
		joined += st.Mechanism + " "
	}
	if !strings.Contains(joined, "quorum-ordering") {
		t.Errorf("report mechanisms %q missing quorum-ordering", joined)
	}
}

// TestWithStrategyPreconditionFallback: a preferred strategy whose
// preconditions fail (merge-rewrite without a declared merge) silently
// falls back to the default chain — the guarantee never weakens because a
// preference cannot apply.
func TestWithStrategyPreconditionFallback(t *testing.T) {
	g := WordcountTopology(false)
	pref, err := NewAnalyzer(WithStrategy("merge-rewrite")).Synthesize(g)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewAnalyzer().Synthesize(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(pref.Strategies()) != len(base.Strategies()) {
		t.Fatalf("fallback synthesized %d strategies, default %d", len(pref.Strategies()), len(base.Strategies()))
	}
	for i := range base.Strategies() {
		if pref.Strategies()[i].Mechanism != base.Strategies()[i].Mechanism {
			t.Errorf("component %s: fallback mechanism %v, default %v",
				base.Strategies()[i].Component, pref.Strategies()[i].Mechanism, base.Strategies()[i].Mechanism)
		}
	}
}
