package bloom

import "fmt"

// ThresholdExpr is a *monotone* counting threshold: it emits each group key
// once the group's cardinality reaches AtLeast. Unlike a general aggregation
// it never retracts — the count only grows, and crossing a fixed threshold
// is insensitive to arrival order. This models the lattice-based monotone
// aggregation of Conway et al., "Logic and Lattices for Distributed
// Programming" (cited by the paper to explain why THRESH is confluent), and
// is what lets the white-box analyzer derive CR for the THRESH query
// instead of a conservative OR.
type ThresholdExpr struct {
	Input   Expr
	Keys    []string
	AtLeast int64
}

// MonotoneCountAtLeast builds the monotone threshold operator.
func MonotoneCountAtLeast(input Expr, keys []string, atLeast int64) *ThresholdExpr {
	return &ThresholdExpr{Input: input, Keys: keys, AtLeast: atLeast}
}

// Schema implements Expr: the key columns.
func (e *ThresholdExpr) Schema(m *Module) (Schema, error) {
	in, err := e.Input.Schema(m)
	if err != nil {
		return nil, err
	}
	out := make(Schema, 0, len(e.Keys))
	for _, k := range e.Keys {
		if !in.Contains(k) {
			return nil, fmt.Errorf("bloom: threshold key %q missing from %v", k, in)
		}
		out = append(out, k)
	}
	if err := checkNoDupCols(out, "threshold"); err != nil {
		return nil, err
	}
	return out, nil
}

func (e *ThresholdExpr) eval(m *Module, st stateReader) ([]Row, error) {
	in, err := e.Input.Schema(m)
	if err != nil {
		return nil, err
	}
	rows, err := e.Input.eval(m, st)
	if err != nil {
		return nil, err
	}
	keyIdx := make([]int, len(e.Keys))
	for i, k := range e.Keys {
		keyIdx[i] = in.IndexOf(k)
	}
	counts := map[string]int64{}
	repr := map[string]Row{}
	for _, r := range rows {
		k := joinKey(r, keyIdx)
		counts[k]++
		if _, ok := repr[k]; !ok {
			nr := make(Row, len(keyIdx))
			for i, j := range keyIdx {
				nr[i] = r[j]
			}
			repr[k] = nr
		}
	}
	var out []Row
	for k, c := range counts {
		if c >= e.AtLeast {
			out = append(out, repr[k])
		}
	}
	SortRows(out)
	return out, nil
}

func (e *ThresholdExpr) reads() []string { return e.Input.reads() }
