package chaos

import (
	"fmt"
	"hash/fnv"
	"sort"

	"blazes/internal/coord"
	"blazes/internal/core"
	"blazes/internal/dataflow"
	"blazes/internal/fd"
	"blazes/internal/sim"
)

// SyntheticWorkload is the Figure 5 component generalized from
// internal/experiments/anomalies.go and wired into the harness: N producers
// stream messages to R replicas of a single component, with interleaved
// reads. Three variants span the annotation lattice:
//
//   - confluent: a grow-only set (CW write, CR read) — the analyzer
//     certifies it and the harness runs it bare;
//   - gated order-sensitive: per-producer hash chains with the source
//     sealed on producer (OW_producer / OR_producer + Seal_producer) — the
//     analyzer recommends sealing (M3);
//   - ungated order-sensitive: the same chains with unknown partitioning
//     (OW*/OR*) — the analyzer must fall back to ordering (M2/M1).
//
// Replicas deduplicate retransmissions by (producer, seq) — the standard
// at-least-once discipline — so duplication faults exercise idempotence
// while delivery order remains the nondeterminism under test.
type SyntheticWorkload struct {
	// Confluent selects the grow-only-set variant.
	Confluent bool
	// Gated marks the order-sensitive paths as partitioned per producer
	// and seals the source; ignored when Confluent.
	Gated bool
	// Producers, PerProducer, Reads, Replicas size the run.
	Producers, PerProducer, Reads, Replicas int
}

// SyntheticSet returns the confluent variant.
func SyntheticSet() *SyntheticWorkload {
	return &SyntheticWorkload{Confluent: true, Producers: 2, PerProducer: 10, Reads: 4, Replicas: 2}
}

// SyntheticChains returns the order-sensitive variant; gated selects
// per-producer partitioning (sealable).
func SyntheticChains(gated bool) *SyntheticWorkload {
	return &SyntheticWorkload{Gated: gated, Producers: 2, PerProducer: 10, Reads: 4, Replicas: 2}
}

// Name implements Workload.
func (w *SyntheticWorkload) Name() string {
	switch {
	case w.Confluent:
		return "synthetic-set"
	case w.Gated:
		return "synthetic-chains-gated"
	default:
		return "synthetic-chains"
	}
}

// Graph implements Workload.
func (w *SyntheticWorkload) Graph() (*dataflow.Graph, error) {
	g := dataflow.NewGraph(w.Name())
	comp := g.Component("Synthetic")
	comp.Rep = true
	switch {
	case w.Confluent:
		comp.AddPath("msgs", "out", core.CW)
		comp.AddPath("reads", "out", core.CR)
	case w.Gated:
		comp.AddPath("msgs", "out", core.OWGate("producer"))
		comp.AddPath("reads", "out", core.ORGate("producer"))
	default:
		comp.AddPath("msgs", "out", core.OWStar())
		comp.AddPath("reads", "out", core.ORStar())
	}
	src := g.Source("msgs", "Synthetic", "msgs")
	if w.Gated && !w.Confluent {
		src.Seal = fd.NewAttrSet("producer")
	}
	g.Source("reads", "Synthetic", "reads")
	g.Sink("out", "Synthetic", "out")
	return g, nil
}

// Supports implements Workload: the synthetic component can install every
// Figure 5 mechanism.
func (w *SyntheticWorkload) Supports(mech dataflow.Coordination) bool {
	switch mech {
	case dataflow.CoordNone, dataflow.CoordSequenced, dataflow.CoordDynamicOrder, dataflow.CoordSealed:
		return true
	}
	return false
}

// synMsg is one producer message.
type synMsg struct {
	Producer string
	Seq      int
}

func (m synMsg) id() string    { return fmt.Sprintf("%s:%d", m.Producer, m.Seq) }
func (m synMsg) value() string { return m.id() }

// synReplica is one replica of the component under test.
type synReplica struct {
	confluent bool
	seen      map[string]bool
	set       map[string]bool
	chains    map[string]uint64
	outputs   []string
}

func newSynReplica(confluent bool) *synReplica {
	return &synReplica{confluent: confluent, seen: map[string]bool{}, set: map[string]bool{}, chains: map[string]uint64{}}
}

func (r *synReplica) apply(m synMsg) {
	if r.seen[m.id()] {
		return // at-least-once duplicate
	}
	r.seen[m.id()] = true
	if r.confluent {
		r.set[m.value()] = true
		return
	}
	r.chains[m.Producer] = synChainHash(r.chains[m.Producer], m.value())
}

func (r *synReplica) read() { r.outputs = append(r.outputs, r.snapshot()) }

func (r *synReplica) snapshot() string {
	if r.confluent {
		vals := make([]string, 0, len(r.set))
		for v := range r.set {
			vals = append(vals, v)
		}
		return canonSet(vals)
	}
	keys := make([]string, 0, len(r.chains))
	for k := range r.chains {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%x", k, r.chains[k]))
	}
	return canonSet(parts)
}

func (r *synReplica) outcome() ReplicaOutcome {
	return ReplicaOutcome{Trace: append([]string{}, r.outputs...), Final: r.snapshot()}
}

func synChainHash(prev uint64, v string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%x|%s", prev, v)
	return h.Sum64()
}

// Run implements Workload.
func (w *SyntheticWorkload) Run(seed int64, plan FaultPlan, mech dataflow.Coordination) (Outcome, error) {
	span := 80 * sim.Millisecond
	s := sim.New(seed)
	link := plan.Shape(sim.LinkConfig{MinDelay: 100 * sim.Microsecond, MaxDelay: 12 * sim.Millisecond})

	reps := make([]*synReplica, w.Replicas)
	for i := range reps {
		reps[i] = newSynReplica(w.Confluent)
	}
	var msgs []synMsg
	for p := 0; p < w.Producers; p++ {
		for i := 0; i < w.PerProducer; i++ {
			msgs = append(msgs, synMsg{Producer: fmt.Sprintf("p%d", p), Seq: i})
		}
	}
	sendTime := func(m synMsg) sim.Time {
		return span * sim.Time(m.Seq*w.Producers) / sim.Time(len(msgs))
	}
	readTimes := make([]sim.Time, w.Reads)
	for i := range readTimes {
		readTimes[i] = span * sim.Time(i+1) / sim.Time(w.Reads+1)
	}
	// arrival draws one chaotic hop for a message sent at `sent`.
	arrival := func(sent sim.Time) sim.Time {
		return link.Release(sent, sent+link.Delay(s))
	}
	// dup reports whether the link duplicates this delivery.
	dup := func() bool { return link.DupProb > 0 && s.Rand().Float64() < link.DupProb }

	switch mech {
	case dataflow.CoordNone:
		for _, m := range msgs {
			m := m
			at := sendTime(m)
			for _, r := range reps {
				r := r
				s.At(arrival(at), func() { r.apply(m) })
				if dup() {
					s.At(arrival(at), func() { r.apply(m) })
				}
			}
		}
		for _, t := range readTimes {
			for _, r := range reps {
				r := r
				s.At(arrival(t), func() { r.read() })
			}
		}

	case dataflow.CoordSequenced:
		// M1: a preordained total order, fully deterministic: messages by
		// global index with reads at fixed positions.
		type step struct {
			msg  *synMsg
			read bool
		}
		var order []step
		stride := len(msgs)/(w.Reads+1) + 1
		for i, m := range msgs {
			m := m
			order = append(order, step{msg: &m})
			if (i+1)%stride == 0 {
				order = append(order, step{read: true})
			}
		}
		order = append(order, step{read: true})
		at := sim.Time(0)
		for _, st := range order {
			st := st
			at += sim.Millisecond
			s.At(at, func() {
				for _, r := range reps {
					if st.read {
						r.read()
					} else {
						r.apply(*st.msg)
					}
				}
			})
		}

	case dataflow.CoordDynamicOrder:
		// M2: the ordering service decides a per-run arrival order; its
		// own hops suffer the fault plan too.
		cfg := coord.DefaultSequencer
		cfg.SubmitDelay = plan.Shape(cfg.SubmitDelay)
		cfg.DeliverDelay = plan.Shape(cfg.DeliverDelay)
		seq := coord.NewSequencer(s, cfg)
		for _, r := range reps {
			r := r
			seq.Subscribe(func(m coord.Sequenced) {
				switch v := m.Msg.(type) {
				case synMsg:
					r.apply(v)
				case string:
					r.read()
				}
			})
		}
		for _, m := range msgs {
			m := m
			s.At(sendTime(m), func() { seq.Submit(m) })
		}
		for i, t := range readTimes {
			i := i
			s.At(t, func() { seq.Submit(fmt.Sprintf("read%d", i)) })
		}

	case dataflow.CoordSealed:
		// M3: per-producer partitions sealed by punctuation after the
		// producer's last message; reads gate on every partition. Seals
		// ride the producer's FIFO stream so they cannot overtake data.
		registry := coord.NewRegistry(s, link)
		for p := 0; p < w.Producers; p++ {
			producer := fmt.Sprintf("p%d", p)
			registry.Register(producer, producer)
		}
		for ri := range reps {
			r := reps[ri]
			sealed := 0
			var heldReads []func()
			tracker := coord.NewSealTracker(func(partition string, buffered []any) {
				vals := make([]synMsg, 0, len(buffered))
				for _, b := range buffered {
					vals = append(vals, b.(synMsg))
				}
				sort.Slice(vals, func(i, j int) bool { return vals[i].Seq < vals[j].Seq })
				for _, m := range vals {
					r.apply(m)
				}
				sealed++
				if sealed == w.Producers {
					for _, fn := range heldReads {
						fn()
					}
					heldReads = nil
				}
			})
			fifo := newFifoLink(s, link)
			for p := 0; p < w.Producers; p++ {
				producer := fmt.Sprintf("p%d", p)
				registry.Lookup(producer, func(producers []string) {
					tracker.SetExpected(producer, producers)
				})
			}
			var lastSend sim.Time
			for _, m := range msgs {
				m := m
				at := sendTime(m)
				if at > lastSend {
					lastSend = at
				}
				fifo.deliver(m.Producer, at, func() { tracker.Data(m.Producer, m) })
				if dup() {
					fifo.deliver(m.Producer, at, func() { tracker.Data(m.Producer, m) })
				}
			}
			for p := 0; p < w.Producers; p++ {
				producer := fmt.Sprintf("p%d", p)
				fifo.deliver(producer, lastSend+sim.Millisecond, func() {
					tracker.Seal(coord.Punctuation{Partition: producer, Producer: producer})
				})
			}
			for _, t := range readTimes {
				s.At(arrival(t), func() {
					if sealed == w.Producers {
						r.read()
					} else {
						heldReads = append(heldReads, r.read)
					}
				})
			}
		}

	default:
		return Outcome{}, fmt.Errorf("synthetic: unsupported mechanism %s", mech)
	}

	s.Run()
	out := Outcome{}
	for _, r := range reps {
		out.Replicas = append(out.Replicas, r.outcome())
	}
	return out, nil
}
