package lint

import (
	"go/ast"
	"go/types"
)

// nondet forbids the ambient-nondeterminism sources that would break the
// byte-identical replay guarantee in the deterministic packages:
//
//   - wall-clock reads (time.Now, Since, Until, timers, sleeps): simulated
//     time is the only clock those packages may observe;
//   - global math/rand draws (rand.Intn, Shuffle, ...): every random draw
//     must come from a seeded *rand.Rand owned by the simulation, so
//     constructors (rand.New, rand.NewSource) stay legal;
//   - environment reads (os.Getenv and friends): behavior conditioned on
//     ambient configuration diverges across hosts;
//   - select over two or more channels: the runtime picks a ready case
//     pseudo-randomly, so multi-channel select is scheduler-dependent
//     (single-channel select with a default is a deterministic poll).
func runNonDet(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				p.checkNonDetCall(n)
			case *ast.SelectStmt:
				p.checkSelect(n)
			}
			return true
		})
	}
}

// forbiddenFuncs maps package path → package-level functions that read
// ambient state. Methods (e.g. (*rand.Rand).Intn on a seeded source) are
// never matched.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":       "reads the wall clock",
		"Since":     "reads the wall clock",
		"Until":     "reads the wall clock",
		"After":     "schedules on the wall clock",
		"Tick":      "schedules on the wall clock",
		"NewTimer":  "schedules on the wall clock",
		"NewTicker": "schedules on the wall clock",
		"AfterFunc": "schedules on the wall clock",
		"Sleep":     "blocks on the wall clock",
	},
	"math/rand": {
		"Int": "draws from the global source", "Intn": "draws from the global source",
		"Int31": "draws from the global source", "Int31n": "draws from the global source",
		"Int63": "draws from the global source", "Int63n": "draws from the global source",
		"Uint32": "draws from the global source", "Uint64": "draws from the global source",
		"Float32": "draws from the global source", "Float64": "draws from the global source",
		"NormFloat64": "draws from the global source", "ExpFloat64": "draws from the global source",
		"Perm": "draws from the global source", "Shuffle": "draws from the global source",
		"Seed": "reseeds the global source", "Read": "draws from the global source",
	},
	"math/rand/v2": {
		"Int": "draws from the global source", "IntN": "draws from the global source",
		"Int32": "draws from the global source", "Int32N": "draws from the global source",
		"Int64": "draws from the global source", "Int64N": "draws from the global source",
		"Uint32": "draws from the global source", "Uint64": "draws from the global source",
		"Uint32N": "draws from the global source", "Uint64N": "draws from the global source",
		"N": "draws from the global source", "Float32": "draws from the global source",
		"Float64": "draws from the global source", "NormFloat64": "draws from the global source",
		"ExpFloat64": "draws from the global source", "Perm": "draws from the global source",
		"Shuffle": "draws from the global source", "UintN": "draws from the global source",
		"Uint": "draws from the global source",
	},
	"os": {
		"Getenv":    "conditions behavior on the environment",
		"LookupEnv": "conditions behavior on the environment",
		"Environ":   "conditions behavior on the environment",
		"ExpandEnv": "conditions behavior on the environment",
	},
}

func (p *Pass) checkNonDetCall(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := p.Info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	if why, bad := forbiddenFuncs[fn.Pkg().Path()][fn.Name()]; bad {
		p.Reportf(call.Pos(), "%s.%s %s; deterministic packages must use simulated time / a seeded source", fn.Pkg().Name(), fn.Name(), why)
	}
}

func (p *Pass) checkSelect(sel *ast.SelectStmt) {
	comms := 0
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms >= 2 {
		p.Reportf(sel.Pos(), "select over %d channels is scheduler-dependent; deterministic packages must poll one channel at a time", comms)
	}
}
