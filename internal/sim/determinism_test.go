package sim

import (
	"fmt"
	"strings"
	"testing"
)

// scheduleTrace runs a fixed scenario — three links with different fault
// shapes (reordering, duplication+drop, a partition window), nested
// re-scheduling, and direct rng draws — and records every event execution
// as one line. The trace is the complete observable schedule.
func scheduleTrace(seed int64) string {
	s := New(seed)
	var b strings.Builder
	record := func(what string, arg any) {
		fmt.Fprintf(&b, "t=%d %s=%v\n", s.Now(), what, arg)
	}

	links := []*Link{
		NewLink(s, LinkConfig{MinDelay: 10, MaxDelay: 5000}, func(m any) { record("l0", m) }),
		NewLink(s, LinkConfig{MinDelay: 1, MaxDelay: 2000, DupProb: 0.3, DropProb: 0.2}, func(m any) { record("l1", m) }),
		NewLink(s, LinkConfig{MinDelay: 5, MaxDelay: 300,
			Partitions: []PartitionWindow{{From: 200, Until: 1500}}}, func(m any) { record("l2", m) }),
	}
	for i := 0; i < 40; i++ {
		i := i
		s.At(Time(i)*100, func() {
			links[i%3].Send(i)
			if i%5 == 0 {
				// Nested re-scheduling driven by the shared rng.
				s.After(Time(s.Rand().Int63n(400)), func() { record("timer", i) })
			}
		})
	}
	s.Run()
	fmt.Fprintf(&b, "steps=%d now=%d\n", s.Steps(), s.Now())
	return b.String()
}

// TestScheduleDeterminismRegression pins the documented contract: the same
// (seed, configuration) pair yields a byte-identical schedule, including
// under duplication, loss, and partition-then-heal faults.
func TestScheduleDeterminismRegression(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a, b := scheduleTrace(seed), scheduleTrace(seed)
		if a != b {
			t.Fatalf("seed %d: schedules differ:\n--- first\n%s--- second\n%s", seed, a, b)
		}
	}
}

// TestScheduleSeedsActuallyDiffer: distinct seeds must explore distinct
// schedules, or the chaos sweeps would be vacuous.
func TestScheduleSeedsActuallyDiffer(t *testing.T) {
	base := scheduleTrace(1)
	for seed := int64(2); seed <= 5; seed++ {
		if scheduleTrace(seed) != base {
			return
		}
	}
	t.Error("seeds 1–5 produced identical schedules")
}
