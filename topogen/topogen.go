// Package topogen generates large, seeded Blazes dataflow topologies as
// `.blazes` spec text: layered DAGs with replicated fan-out/fan-in, cyclic
// supernodes, mixed CR/CW/OR/OW annotations, and optional seal keys and
// output schemas. The same Config always produces byte-identical spec text,
// so generated topologies can anchor benchmarks and differential tests.
//
// The output is ordinary spec text: feed it to blazes.ParseSpec (or write
// it to a file for the CLI). The `blazes gen` subcommand wraps this package.
//
// This package deliberately does not import blazes: the root package's own
// benchmarks drive the generator, so a dependency back on the public API
// would cycle. That is also why Generate returns spec text instead of a
// graph — the graph types live on the other side of that boundary.
package topogen

import (
	itopogen "blazes/internal/topogen"
)

// Config parameterizes one generated topology. See the field docs on the
// knobs: size, layering, fan-in, cycle density, annotation mix, and the
// replicated/sealed/schema fractions. The zero value is invalid; start from
// Default.
type Config = itopogen.Config

// AnnotationMix weights the four annotation classes (CR/CW/OR/OW).
type AnnotationMix = itopogen.AnnotationMix

// DefaultMix is the reference annotation mix (40/25/20/15).
var DefaultMix = itopogen.DefaultMix

// Stats summarizes a generated topology.
type Stats = itopogen.Stats

// Result is one generated topology: the normalized config that produced
// it, the `.blazes` spec text, and summary statistics.
type Result struct {
	Config Config
	Spec   string
	Stats  Stats
}

// Default returns the reference configuration at the given size and seed.
func Default(components int, seed int64) Config {
	return itopogen.Default(components, seed)
}

// Generate produces one topology from the config. Generation is
// deterministic: equal configs yield byte-identical Spec text.
func Generate(cfg Config) (Result, error) {
	res, err := itopogen.Generate(cfg)
	if err != nil {
		return Result{}, err
	}
	return Result{Config: res.Config, Spec: res.Spec, Stats: res.Stats}, nil
}
