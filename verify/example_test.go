package verify_test

import (
	"fmt"

	"blazes/verify"
)

// Example verifies the confluent grow-only set from Figure 5 by schedule
// exploration: the analyzer certifies it deterministic with no strategies,
// so the harness runs it bare under every fault plan and asserts that all
// seeded schedules converge to the same eventual outcome.
//
// Parallelism spreads the seeded runs over a worker pool — each schedule
// runs on its own simulator and the oracle folds outcomes in seed order,
// so the report (and its JSON form) is byte-identical at any setting.
func Example() {
	rep, err := verify.Check(verify.SyntheticSet(), verify.Options{
		Seeds:       16,
		Parallelism: 8, // byte-identical to Parallelism: 1, just faster
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload %s: verdict %s, holds %v\n", rep.Workload, rep.Verdict, rep.Holds)
	for _, s := range rep.Coordinated {
		fmt.Printf("  %s under %s: observed [%s]\n", s.Mechanism, s.Plan, s.Observed)
	}
	// Output:
	// workload synthetic-set: verdict Async, holds true
	//   none under baseline: observed [Run:- Inst:- Div:-]
	//   none under reorder: observed [Run:- Inst:- Div:-]
	//   none under duplicate: observed [Run:- Inst:- Div:-]
	//   none under partition: observed [Run:- Inst:- Div:-]
}
