package dataflow

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"blazes/internal/core"
)

// outputTopoOrderQuadratic is the implementation outputTopoOrder replaced: a
// slice-backed ready queue fully re-sorted after the initial fill and after
// every push. It pops the lexicographically least ready node each round, so
// the heap-based version must produce the identical sequence. Kept here as
// the regression oracle.
func outputTopoOrderQuadratic(g *Graph) []ifaceNode {
	ig := buildIfaceGraph(g)
	indeg := map[ifaceNode]int{}
	for _, n := range ig.nodes {
		indeg[n] += 0
	}
	for _, vs := range ig.adj {
		for _, w := range vs {
			indeg[w]++
		}
	}
	var queue []ifaceNode
	for _, n := range ig.nodes {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return less(queue[i], queue[j]) })
	var outs []ifaceNode
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v.out {
			outs = append(outs, v)
		}
		for _, w := range ig.adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
		sort.Slice(queue, func(i, j int) bool { return less(queue[i], queue[j]) })
	}
	return outs
}

// randomLayeredGraph builds a random layered DAG: `layers` ranks of `width`
// single-path components, each non-first-rank component fed by 1–3 random
// producers from the rank above, sources on rank 0 and sinks on the last.
func randomLayeredGraph(rng *rand.Rand, layers, width int) *Graph {
	g := NewGraph("rand")
	anns := []core.Annotation{core.CR, core.CW, core.ORStar(), core.OWGate("k")}
	name := func(l, i int) string { return fmt.Sprintf("C%02d_%02d", l, i) }
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			g.Component(name(l, i)).AddPath("in", "out", anns[rng.Intn(len(anns))])
		}
	}
	stream := 0
	for i := 0; i < width; i++ {
		g.Source(fmt.Sprintf("src%02d", i), name(0, i), "in")
		g.Sink(fmt.Sprintf("snk%02d", i), name(layers-1, i), "out")
	}
	for l := 1; l < layers; l++ {
		for i := 0; i < width; i++ {
			for n := 1 + rng.Intn(3); n > 0; n-- {
				from := name(l-1, rng.Intn(width))
				g.Connect(fmt.Sprintf("e%04d", stream), from, "out", name(l, i), "in")
				stream++
			}
		}
	}
	return g
}

func TestOutputTopoOrderMatchesQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		layers := 2 + rng.Intn(5)
		width := 1 + rng.Intn(8)
		g := randomLayeredGraph(rng, layers, width)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: invalid random graph: %v", trial, err)
		}
		// Exercise the collapsed form too: add a back-edge cycle on some
		// trials so the order runs over supernode interfaces as well.
		if trial%3 == 0 && layers >= 2 {
			g.Connect("back", fmt.Sprintf("C%02d_%02d", 1, 0), "out", "C00_00", "in")
		}
		cg := collapseSCCs(g)
		got := outputTopoOrder(cg)
		want := outputTopoOrderQuadratic(cg)
		if len(got) != len(want) {
			t.Fatalf("trial %d: order length %d != %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: order diverges at %d: %+v != %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestIfaceHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h ifaceHeap
	nodes := make([]ifaceNode, 0, 200)
	for i := 0; i < 200; i++ {
		n := ifaceNode{
			comp:  fmt.Sprintf("C%03d", rng.Intn(60)),
			iface: fmt.Sprintf("p%d", rng.Intn(4)),
			out:   rng.Intn(2) == 0,
		}
		nodes = append(nodes, n)
		h.push(n)
	}
	sort.Slice(nodes, func(i, j int) bool { return less(nodes[i], nodes[j]) })
	for i, want := range nodes {
		got := h.pop()
		if got != want {
			t.Fatalf("pop %d = %+v, want %+v", i, got, want)
		}
	}
	if len(h) != 0 {
		t.Fatalf("heap not drained: %d left", len(h))
	}
}
