package substrate_test

import (
	"fmt"

	"blazes/substrate"
)

// Example runs the paper's wordcount topology on the simulated Storm
// engine with sealed (per-batch, uncoordinated) commits and reads the
// engine's metrics.
//
// Parallelism attaches the deterministic worker pool to the run's
// simulator: spout instances generate their batch shares concurrently and
// same-instant bolt work runs on workers, while every delivery keeps its
// seeded schedule position — metrics, commit order, and store contents are
// byte-identical to a sequential run.
func Example() {
	res, err := substrate.RunWordcount(substrate.WordcountConfig{
		Seed:           1,
		Workers:        3,
		Batches:        4,
		TuplesPerBatch: 10,
		WordsPerTweet:  3,
		Mode:           substrate.CommitSealed,
		Punctuate:      true,
		Parallelism:    4, // byte-identical to Parallelism: 1, just faster
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("done %v: %d tuples emitted, %d batches acked, %d stragglers\n",
		res.Done, res.Metrics.EmittedTuples, res.Metrics.AckedBatches, res.Metrics.Stragglers)
	// Output:
	// done true: 120 tuples emitted, 4 batches acked, 0 stragglers
}
