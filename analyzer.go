package blazes

import (
	"fmt"

	"blazes/internal/dataflow"
	"blazes/internal/fd"
)

// Option configures an Analyzer (and spec→graph construction).
type Option func(*config)

type sealRepair struct {
	stream string
	key    AttrSet
}

type config struct {
	sealRepairs      []sealRepair
	variants         map[string]string
	preferSequencing bool
	strategy         string
}

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithSealRepair seals the named stream on the given key before analysis —
// the paper's cheapest repair: tell Blazes the producer punctuates the
// stream per partition, and re-derive. The graph handed to the Analyzer is
// not mutated; analysis runs on a sealed copy. An unknown stream name is an
// error at analysis time.
func WithSealRepair(stream string, key ...string) Option {
	return func(c *config) {
		c.sealRepairs = append(c.sealRepairs, sealRepair{stream: stream, key: fd.NewAttrSet(key...)})
	}
}

// PreferSequencing selects M1 (preordained total order, e.g. Storm
// transactional batch ids) over the default M2 dynamic ordering whenever
// synthesis must order inputs — required for replay-based fault tolerance,
// which needs cross-run determinism.
func PreferSequencing() Option {
	return func(c *config) { c.preferSequencing = true }
}

// WithStrategy asks synthesis to try the named registered coordination
// strategy first, before the default sealing-then-ordering chain. The
// strategy still only applies where its preconditions hold (e.g.
// "merge-rewrite" needs a declared merge); otherwise synthesis falls back
// to the defaults, so the guarantee never weakens. Registered names are
// listed by the blazes/strategy package; an unknown name is an error at
// analysis time.
func WithStrategy(name string) Option {
	return func(c *config) { c.strategy = name }
}

// WithVariant selects a named annotation variant for a component when a
// graph is built from a Spec (e.g. WithVariant("Report", "CAMPAIGN")). It
// has no effect on graphs built in code.
func WithVariant(component, variant string) Option {
	return func(c *config) {
		if c.variants == nil {
			c.variants = map[string]string{}
		}
		c.variants[component] = variant
	}
}

// WithVariants selects several variants at once; see WithVariant.
func WithVariants(variants map[string]string) Option {
	return func(c *config) {
		if c.variants == nil {
			c.variants = map[string]string{}
		}
		for comp, v := range variants {
			c.variants[comp] = v
		}
	}
}

// Analyzer is the façade over the Blazes analysis: it derives stream
// labels, synthesizes coordination strategies, and repairs dataflows to a
// coordination fixpoint. A zero-option Analyzer performs the plain grey-box
// analysis. Analyzers are immutable and safe for concurrent use.
type Analyzer struct {
	cfg config
}

// NewAnalyzer builds an Analyzer from functional options.
func NewAnalyzer(opts ...Option) *Analyzer {
	return &Analyzer{cfg: buildConfig(opts)}
}

// prepare validates the configured strategy and applies seal repairs to a
// copy of g (or returns g unchanged when there are none).
func (a *Analyzer) prepare(g *Graph) (*Graph, error) {
	if a.cfg.strategy != "" {
		if _, err := dataflow.LookupStrategy(a.cfg.strategy); err != nil {
			return nil, fmt.Errorf("blazes: %w", err)
		}
	}
	if len(a.cfg.sealRepairs) == 0 {
		return g, nil
	}
	ng := g.Clone()
	for _, sr := range a.cfg.sealRepairs {
		s := ng.Stream(sr.stream)
		if s == nil {
			return nil, fmt.Errorf("blazes: seal repair: unknown stream %q (declared: %v)", sr.stream, streamNames(ng))
		}
		if sr.key.IsEmpty() {
			return nil, fmt.Errorf("blazes: seal repair on %q needs at least one key attribute", sr.stream)
		}
		s.Seal = sr.key
	}
	return ng, nil
}

func (a *Analyzer) synthOpts() dataflow.SynthesisOptions {
	return dataflow.SynthesisOptions{PreferSequencing: a.cfg.preferSequencing, Strategy: a.cfg.strategy}
}

// Analyze derives a label for every stream and the dataflow verdict.
func (a *Analyzer) Analyze(g *Graph) (*Result, error) {
	g, err := a.prepare(g)
	if err != nil {
		return nil, err
	}
	an, err := dataflow.Analyze(g)
	if err != nil {
		return nil, err
	}
	return &Result{analysis: an}, nil
}

// Synthesize analyzes g and additionally produces one coordination
// strategy per component that needs machinery.
func (a *Analyzer) Synthesize(g *Graph) (*Result, error) {
	res, err := a.Analyze(g)
	if err != nil {
		return nil, err
	}
	res.strategies = dataflow.Synthesize(res.analysis, a.synthOpts())
	res.synthesized = true
	return res, nil
}

// Repair analyzes g, applies synthesized strategies, and re-analyzes until
// no further strategies are produced. The Result carries the final
// analysis; Strategies lists every strategy applied, in application order.
func (a *Analyzer) Repair(g *Graph) (*Result, error) {
	g, err := a.prepare(g)
	if err != nil {
		return nil, err
	}
	an, applied, err := dataflow.Repair(g, a.synthOpts())
	if err != nil {
		return nil, err
	}
	return &Result{analysis: an, strategies: applied, synthesized: true, repaired: true}, nil
}

// Result is the outcome of one Analyzer run: the raw analysis plus any
// synthesized (or applied, after Repair) strategies. Use Report for the
// stable machine-readable projection.
type Result struct {
	analysis    *dataflow.Analysis
	strategies  []Strategy
	synthesized bool
	repaired    bool
}

// Analysis exposes the underlying derivation for tools that walk it.
func (r *Result) Analysis() *Analysis { return r.analysis }

// Verdict is the highest-severity label among sink streams.
func (r *Result) Verdict() Label { return r.analysis.Verdict }

// Deterministic reports whether output contents are guaranteed
// deterministic (verdict at most Async).
func (r *Result) Deterministic() bool { return r.analysis.Deterministic() }

// StreamLabel returns the derived label of the named stream.
func (r *Result) StreamLabel(name string) Label { return r.analysis.Label(name) }

// Strategies returns the synthesized strategies (after Synthesize) or the
// strategies applied to reach the fixpoint (after Repair); nil after a
// plain Analyze.
func (r *Result) Strategies() []Strategy { return r.strategies }

// Repaired reports whether the result is a post-repair fixpoint.
func (r *Result) Repaired() bool { return r.repaired }

// Explain renders the full human-readable derivation tree.
func (r *Result) Explain() string { return r.analysis.Explain() }
