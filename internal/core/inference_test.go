package core

import (
	"testing"

	"blazes/internal/fd"
)

// TestFig9Rules exhaustively checks the four reduction rules of Figure 9
// plus this implementation's documented defaults, over every meaningful
// (input label × annotation) pair.
func TestFig9Rules(t *testing.T) {
	ow := OWGate("word", "batch")
	or := ORGate("id", "window")

	tests := []struct {
		name     string
		in       Label
		ann      Annotation
		wantRule Rule
		wantOut  Label
	}{
		// Rule 1: {Async, Run} × OR_gate ⇒ NDRead_gate.
		{"r1 async", Async, or, Rule1, NDRead("id", "window")},
		{"r1 run", Run, or, Rule1, NDRead("id", "window")},

		// Rule 2: {Async, Run} × OW_gate ⇒ Taint.
		{"r2 async", Async, ow, Rule2, Taint},
		{"r2 run", Run, ow, Rule2, Taint},

		// Rule 3: Inst × (CW | OW) ⇒ Taint.
		{"r3 cw", Inst, CW, Rule3, Taint},
		{"r3 ow", Inst, ow, Rule3, Taint},

		// Rule 4: incompatible seal × OW ⇒ Taint.
		{"r4", Seal("campaign"), OWGate("id"), Rule4, Taint},
		{"r4 star", Seal("batch"), OWStar(), Rule4, Taint},

		// Rule 1': incompatible seal × OR ⇒ NDRead (conservative extension).
		{"r1' seal", Seal("campaign"), ORGate("id"), Rule1Seal, NDRead("id")},

		// Defaults ("(p)").
		{"p async cr", Async, CR, RuleP, Async},
		{"p async cw", Async, CW, RuleP, Async},
		{"p run cw", Run, CW, RuleP, Run},
		{"p run cr", Run, CR, RuleP, Run},
		{"p inst cr", Inst, CR, RuleP, Inst}, // read-only path: no taint
		{"p inst or", Inst, or, RuleP, Inst},
		{"p diverge", Diverge, CW, RuleP, Diverge},
		{"p diverge or", Diverge, ow, RuleP, Diverge},

		// Seal through confluent paths is preserved.
		{"p seal cr", Seal("batch"), CR, RuleP, Seal("batch")},
		{"p seal cw", Seal("campaign"), CW, RuleP, Seal("campaign")},

		// Compatible seal through an order-sensitive path is consumed ⇒
		// Async — the paper's wordcount derivation.
		{"p seal ow compatible", Seal("batch"), OWGate("word", "batch"), RuleP, Async},
		{"p seal or compatible", Seal("window"), ORGate("id", "window"), RuleP, Async},
	}

	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			step := Infer(tt.in, tt.ann, nil)
			if step.Rule != tt.wantRule {
				t.Errorf("rule = %s, want %s", step.Rule, tt.wantRule)
			}
			if !step.Out.Equal(tt.wantOut) {
				t.Errorf("out = %s, want %s", step.Out, tt.wantOut)
			}
		})
	}
}

func TestInferPreservesSealThroughConfluentPaths(t *testing.T) {
	// Seals pass through confluent paths unchanged at the path level; any
	// chasing to the output schema happens at reconciliation so the
	// protection test still sees the original key.
	for _, deps := range []*fd.Set{nil, fd.NewSet(), fd.NewSet(fd.Rename("campaign", "camp_out"))} {
		step := Infer(Seal("campaign"), CW, deps)
		if !step.Out.Equal(Seal("campaign")) {
			t.Errorf("out = %s, want Seal(campaign)", step.Out)
		}
	}
}

func TestReconcileChasesSealThroughLineage(t *testing.T) {
	// White-box: a confluent component renames campaign to camp_out; the
	// merged output seal carries the chased key.
	deps := fd.NewSet(fd.Rename("campaign", "camp_out"))
	rec := ReconcileWithSchema([]Label{Seal("campaign")}, false, deps, fd.NewAttrSet("camp_out", "total"))
	if rec.Output.Kind != LSeal || !rec.Output.Key.Equal(fd.NewAttrSet("camp_out")) {
		t.Errorf("output = %s, want Seal(camp_out)", rec.Output)
	}
}

func TestReconcileDropsSealLostThroughSchema(t *testing.T) {
	// The output schema retains nothing the key injectively determines:
	// the seal is lost and the stream degrades to Async.
	deps := fd.NewSet(fd.NewFD(fd.NewAttrSet("campaign"), fd.NewAttrSet("digest")))
	rec := ReconcileWithSchema([]Label{Seal("campaign")}, false, deps, fd.NewAttrSet("digest"))
	if !rec.Output.Equal(Async) {
		t.Errorf("output = %s, want Async (seal lost)", rec.Output)
	}
}

func TestReconcileGreyBoxKeepsSealWithoutSchema(t *testing.T) {
	rec := Reconcile([]Label{Seal("campaign")}, false, fd.NewSet())
	if !rec.Output.Equal(Seal("campaign")) {
		t.Errorf("output = %s, want Seal(campaign)", rec.Output)
	}
}

func TestInferStepString(t *testing.T) {
	step := Infer(Async, OWGate("word", "batch"), nil)
	want := "Async OW(batch,word) (2) Taint"
	if step.String() != want {
		t.Errorf("String = %q, want %q", step.String(), want)
	}
}

func TestInferPath(t *testing.T) {
	steps := InferPath([]Label{Async, Seal("batch")}, OWGate("batch"), nil)
	if len(steps) != 2 {
		t.Fatalf("len = %d", len(steps))
	}
	if !steps[0].Out.Equal(Taint) {
		t.Errorf("steps[0].Out = %s, want Taint", steps[0].Out)
	}
	if !steps[1].Out.Equal(Async) {
		t.Errorf("steps[1].Out = %s, want Async", steps[1].Out)
	}
}
