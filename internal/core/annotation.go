package core

import (
	"fmt"
	"strings"

	"blazes/internal/fd"
)

// Annotation is a C.O.W.R. component-path annotation (Figure 7): a path from
// an input interface to an output interface is either Confluent or
// Order-sensitive, and either changes component state (a Write path) or does
// not (a Read-only path). Order-sensitive paths carry a gate — the partition
// attributes over which the non-confluent logic operates; GateStar marks the
// OR*/OW* annotations, meaning the partitioning is unknown and every record
// must be assumed to be its own partition.
type Annotation struct {
	Confluent bool
	Write     bool
	// Gate is the partition subscript for OR/OW paths. Ignored for
	// confluent paths.
	Gate fd.AttrSet
	// GateStar marks OR*/OW*: the programmer does not know the partitions,
	// so no seal can ever be compatible.
	GateStar bool
}

// The four C.O.W.R. annotations. Order-sensitive annotations with a gate are
// built with ORGate/OWGate.
var (
	// CR: confluent, stateless (severity 1 in Figure 7).
	CR = Annotation{Confluent: true, Write: false}
	// CW: confluent, stateful (severity 2).
	CW = Annotation{Confluent: true, Write: true}
)

// ORGate returns the OR_gate annotation: order-sensitive, read-only,
// partitioned on the given attributes.
func ORGate(gate ...string) Annotation {
	return Annotation{Write: false, Gate: fd.NewAttrSet(gate...)}
}

// OWGate returns the OW_gate annotation: order-sensitive, stateful,
// partitioned on the given attributes.
func OWGate(gate ...string) Annotation {
	return Annotation{Write: true, Gate: fd.NewAttrSet(gate...)}
}

// ORStar returns OR*: order-sensitive read with unknown partitioning.
func ORStar() Annotation { return Annotation{Write: false, GateStar: true} }

// OWStar returns OW*: order-sensitive write with unknown partitioning.
func OWStar() Annotation { return Annotation{Write: true, GateStar: true} }

// Severity returns the annotation's rank in Figure 7 (1=CR .. 4=OW): paths
// with higher severity can produce more stream anomalies. It is used when a
// cycle is collapsed to its most severe member.
func (a Annotation) Severity() int {
	switch {
	case a.Confluent && !a.Write:
		return 1
	case a.Confluent && a.Write:
		return 2
	case !a.Confluent && !a.Write:
		return 3
	default:
		return 4
	}
}

// OrderSensitive reports whether the path is non-confluent.
func (a Annotation) OrderSensitive() bool { return !a.Confluent }

// SealCompatible reports whether an input stream sealed on key can be
// processed deterministically by this path: the path must expose a known
// gate with some attribute injectively determined by key under deps
// (Section V-A1). Confluent paths are order-insensitive and vacuously
// compatible with any seal; OR*/OW* paths are never compatible.
func (a Annotation) SealCompatible(key fd.AttrSet, deps *fd.Set) bool {
	if a.Confluent {
		return true
	}
	if a.GateStar || a.Gate.IsEmpty() {
		return false
	}
	if deps == nil {
		deps = identityDeps(a.Gate.Union(key))
	}
	return deps.Compatible(a.Gate, key)
}

// identityDeps builds the trivial dependency set in which every attribute
// injectively determines itself — the default when no lineage is supplied.
func identityDeps(attrs fd.AttrSet) *fd.Set {
	s := fd.NewSet()
	s.AddIdentity(attrs.Attrs()...)
	return s
}

// String renders the annotation in the paper's notation, e.g.
// "OW(word,batch)" for OW_{word,batch} and "OR*" for OR*.
func (a Annotation) String() string {
	var b strings.Builder
	if a.Confluent {
		b.WriteByte('C')
	} else {
		b.WriteByte('O')
	}
	if a.Write {
		b.WriteByte('W')
	} else {
		b.WriteByte('R')
	}
	if a.Confluent {
		return b.String()
	}
	if a.GateStar {
		b.WriteByte('*')
	} else if !a.Gate.IsEmpty() {
		fmt.Fprintf(&b, "(%s)", a.Gate)
	}
	return b.String()
}

// ParseAnnotation parses the paper's textual annotation names: "CR", "CW",
// "OR", "OW" (optionally "OR*"/"OW*"). Subscripts are supplied separately
// (the config format carries them in a `subscript` list).
func ParseAnnotation(label string, subscript []string) (Annotation, error) {
	star := strings.HasSuffix(label, "*")
	base := strings.TrimSuffix(strings.ToUpper(strings.TrimSpace(label)), "*")
	var a Annotation
	switch base {
	case "CR":
		a = CR
	case "CW":
		a = CW
	case "OR":
		a = Annotation{Write: false}
	case "OW":
		a = Annotation{Write: true}
	default:
		return Annotation{}, fmt.Errorf("core: unknown annotation label %q", label)
	}
	if a.Confluent {
		if star || len(subscript) > 0 {
			return Annotation{}, fmt.Errorf("core: confluent annotation %q cannot carry a subscript", label)
		}
		return a, nil
	}
	if star {
		if len(subscript) > 0 {
			return Annotation{}, fmt.Errorf("core: %q cannot combine * with an explicit subscript", label)
		}
		a.GateStar = true
		return a, nil
	}
	if len(subscript) == 0 {
		// Unsubscripted OR/OW defaults to OR*/OW*: each record its own
		// partition (Section IV-A1).
		a.GateStar = true
		return a, nil
	}
	a.Gate = fd.NewAttrSet(subscript...)
	return a, nil
}
