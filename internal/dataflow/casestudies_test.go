package dataflow

import (
	"strings"
	"testing"

	"blazes/internal/core"
)

// Golden tests for every derivation in Section VI of the paper.

// TestCaseStudyWordcountUnsealed reproduces Section VI-A2, first derivation:
// without seal annotations the wordcount dataflow derives Run — replay is
// not deterministic and Blazes recommends coordination.
func TestCaseStudyWordcountUnsealed(t *testing.T) {
	a, err := Analyze(WordcountTopology(false))
	if err != nil {
		t.Fatal(err)
	}

	// Splitter: Async × CR ⇒(p) Async.
	if got := a.Components["Splitter"].OutputLabels["words"]; !got.Equal(core.Async) {
		t.Errorf("Splitter output = %s, want Async", got)
	}
	// Count: Async × OW_{word,batch} ⇒(2) Taint ⇒ Run.
	if got := a.Components["Count"].OutputLabels["counts"]; !got.Equal(core.Run) {
		t.Errorf("Count output = %s, want Run", got)
	}
	assertStep(t, a, "Count", core.Step{
		In: core.Async, Ann: core.OWGate("word", "batch"), Rule: core.Rule2, Out: core.Taint,
	})
	// Commit: Run × CW ⇒(p) Run.
	if got := a.Components["Commit"].OutputLabels["db"]; !got.Equal(core.Run) {
		t.Errorf("Commit output = %s, want Run", got)
	}
	if !a.Verdict.Equal(core.Run) {
		t.Errorf("verdict = %s, want Run", a.Verdict)
	}
	if a.Deterministic() {
		t.Error("unsealed wordcount must not be deterministic")
	}
}

// TestCaseStudyWordcountSealed reproduces Section VI-A2, second derivation:
// with the input sealed on batch, the compatibility between punctuations and
// the Count gate yields Async end to end.
func TestCaseStudyWordcountSealed(t *testing.T) {
	a, err := Analyze(WordcountTopology(true))
	if err != nil {
		t.Fatal(err)
	}

	// Splitter: Seal_batch × CR ⇒(p) Seal_batch.
	if got := a.Components["Splitter"].OutputLabels["words"]; !got.Equal(core.Seal("batch")) {
		t.Errorf("Splitter output = %s, want Seal(batch)", got)
	}
	// Count: Seal_batch × OW_{word,batch} ⇒(p) Async (seal consumed).
	if got := a.Components["Count"].OutputLabels["counts"]; !got.Equal(core.Async) {
		t.Errorf("Count output = %s, want Async", got)
	}
	// Commit: Async × CW ⇒(p) Async.
	if got := a.Verdict; !got.Equal(core.Async) {
		t.Errorf("verdict = %s, want Async", got)
	}
	if !a.Deterministic() {
		t.Error("sealed wordcount must be deterministic")
	}
}

// TestCaseStudyTHRESH reproduces Section VI-B2, first derivation: THRESH is
// confluent, so the whole dataflow is Async without coordination.
func TestCaseStudyTHRESH(t *testing.T) {
	a, err := Analyze(AdNetwork(THRESH))
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Components["Report"].OutputLabels["response"]; !got.Equal(core.Async) {
		t.Errorf("Report output = %s, want Async", got)
	}
	if !a.Verdict.Equal(core.Async) {
		t.Errorf("verdict = %s, want Async", a.Verdict)
	}
}

// TestCaseStudyPOOR reproduces Section VI-B2, second derivation: POOR with
// no seal derives Diverge — nondeterministic outputs taint the replicated
// cache and state diverges permanently.
func TestCaseStudyPOOR(t *testing.T) {
	a, err := Analyze(AdNetwork(POOR))
	if err != nil {
		t.Fatal(err)
	}
	// Report: request path OR_id over Async ⇒ NDRead_id, unprotected, Rep
	// ⇒ Inst.
	if got := a.Components["Report"].OutputLabels["response"]; !got.Equal(core.Inst) {
		t.Errorf("Report output = %s, want Inst", got)
	}
	assertStep(t, a, "Report", core.Step{
		In: core.Async, Ann: core.ORGate("id"), Rule: core.Rule1, Out: core.NDRead("id"),
	})
	// Cache: Inst × CW ⇒(3) Taint, Rep ⇒ Diverge.
	assertStep(t, a, "Cache", core.Step{
		In: core.Inst, Ann: core.CW, Rule: core.Rule3, Out: core.Taint,
	})
	if !a.Verdict.Equal(core.Diverge) {
		t.Errorf("verdict = %s, want Diverge", a.Verdict)
	}
}

// TestCaseStudyCAMPAIGNSealed reproduces Section VI-B2, third derivation:
// with the click stream sealed on campaign, the CAMPAIGN query's gate
// {id,campaign} is compatible; the NDRead is protected and the dataflow is
// Async.
func TestCaseStudyCAMPAIGNSealed(t *testing.T) {
	a, err := Analyze(AdNetwork(CAMPAIGN, "campaign"))
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Components["Report"].OutputLabels["response"]; !got.Equal(core.Async) {
		t.Errorf("Report output = %s, want Async", got)
	}
	if !a.Verdict.Equal(core.Async) {
		t.Errorf("verdict = %s, want Async", a.Verdict)
	}
}

// TestCaseStudyPOORSealed: POOR's gate is {id}, incompatible with a campaign
// seal — the dataflow still derives Diverge (only CAMPAIGN is compatible
// with Seal_campaign; Section V-A1).
func TestCaseStudyPOORSealed(t *testing.T) {
	a, err := Analyze(AdNetwork(POOR, "campaign"))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Verdict.Equal(core.Diverge) {
		t.Errorf("verdict = %s, want Diverge", a.Verdict)
	}
}

// TestCaseStudyWINDOWSealed: WINDOW sealed on window reduces to Async
// (Section VI-B2, last sentence).
func TestCaseStudyWINDOWSealed(t *testing.T) {
	a, err := Analyze(AdNetwork(WINDOW, "window"))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Verdict.Equal(core.Async) {
		t.Errorf("verdict = %s, want Async", a.Verdict)
	}
}

// TestCaseStudyWINDOWUnsealed: WINDOW without punctuations races queries
// against clicks like POOR does.
func TestCaseStudyWINDOWUnsealed(t *testing.T) {
	a, err := Analyze(AdNetwork(WINDOW))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Verdict.Equal(core.Diverge) {
		t.Errorf("verdict = %s, want Diverge", a.Verdict)
	}
}

// assertStep checks that the component's derivation contains the given step.
func assertStep(t *testing.T, a *Analysis, comp string, want core.Step) {
	t.Helper()
	ca := a.Components[comp]
	if ca == nil {
		t.Fatalf("no analysis for component %q", comp)
	}
	for _, st := range ca.Steps {
		if st.Rule == want.Rule && st.In.Equal(want.In) && st.Out.Equal(want.Out) &&
			st.Ann.String() == want.Ann.String() {
			return
		}
	}
	t.Errorf("component %s: missing step %q; have %v", comp, want, ca.Steps)
}

func TestExplainContainsDerivation(t *testing.T) {
	a, err := Analyze(WordcountTopology(false))
	if err != nil {
		t.Fatal(err)
	}
	out := a.Explain()
	for _, want := range []string{
		"component Count",
		"Async OW(batch,word) (2) Taint",
		"verdict: Run",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}
