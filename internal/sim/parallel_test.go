package sim

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestPoolMapCoversAllIndexes: every index runs exactly once, for inline
// and concurrent pools, at sizes around the worker count.
func TestPoolMapCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 3, 8, 100} {
			var counts []atomic.Int64
			counts = make([]atomic.Int64, n)
			p.Map(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestPoolMapPanicPropagates: a worker panic reaches the caller after the
// barrier instead of crashing the process.
func TestPoolMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
			}()
			p.Map(8, func(i int) {
				if i == 3 {
					panic("boom")
				}
			})
		}()
	}
}

// TestNilPoolIsInline: a nil *Pool behaves as a size-1 inline pool.
func TestNilPoolIsInline(t *testing.T) {
	var p *Pool
	if p.Size() != 1 {
		t.Fatalf("nil pool size = %d", p.Size())
	}
	ran := 0
	p.Map(3, func(int) { ran++ })
	if ran != 3 {
		t.Fatalf("nil pool ran %d of 3", ran)
	}
}

// computeTrace exercises the two-phase scheduler: R partitions tick in
// rounds at shared instants; each compute mutates only its partition's
// state, each apply draws from the shared rng and schedules follow-ups
// (including same-instant plain events that act as window breakers). The
// trace records every apply in execution order plus all partition state.
func computeTrace(seed int64, pool *Pool) string {
	const partitions = 5
	const rounds = 4
	s := New(seed)
	s.SetPool(pool)
	var b strings.Builder
	state := make([]int, partitions)

	var tick func(p Partition, round int)
	tick = func(p Partition, round int) {
		at := Time(round) * 100
		s.AtCompute(at, p, func() func() {
			// Compute phase: partition-local work only.
			state[p] += round + int(p)
			local := state[p]
			return func() {
				// Apply phase: rng draws, scheduling, shared output.
				fmt.Fprintf(&b, "t=%d p=%d state=%d draw=%d\n", s.Now(), p, local, s.Rand().Int63n(1000))
				if round+1 < rounds {
					tick(p, round+1)
				}
				if p == 0 {
					// A plain event at the same instant as the next round's
					// computes: forces a window break mid-instant.
					s.At(Time(round+1)*100, func() {
						fmt.Fprintf(&b, "t=%d barrier draw=%d\n", s.Now(), s.Rand().Int63n(1000))
					})
				}
			}
		})
	}
	for p := Partition(0); p < partitions; p++ {
		tick(p, 0)
	}
	s.Run()
	fmt.Fprintf(&b, "steps=%d now=%d state=%v\n", s.Steps(), s.Now(), state)
	return b.String()
}

// TestParallelScheduleByteIdentical pins the tentpole contract: the
// parallel scheduler produces a byte-identical schedule — same event order,
// same rng draw sequence, same final state — as the sequential one, for
// every pool size.
func TestParallelScheduleByteIdentical(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		want := computeTrace(seed, nil)
		for _, workers := range []int{1, 2, 4, 8} {
			got := computeTrace(seed, NewPool(workers))
			if got != want {
				t.Fatalf("seed %d workers %d: parallel schedule differs from sequential:\n--- sequential\n%s--- parallel\n%s",
					seed, workers, want, got)
			}
		}
	}
}

// TestAtComputeSequentialEquivalence: without a pool, AtCompute behaves
// exactly like At with the phases fused.
func TestAtComputeSequentialEquivalence(t *testing.T) {
	s := New(1)
	var order []string
	s.AtCompute(10, 1, func() func() {
		order = append(order, "compute")
		return func() { order = append(order, fmt.Sprintf("apply@%d", s.Now())) }
	})
	s.At(5, func() { order = append(order, "early") })
	s.Run()
	want := "early,compute,apply@10"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

// TestRunUntilParallelDeadline: the parallel path honors the deadline
// exactly like the sequential one.
func TestRunUntilParallelDeadline(t *testing.T) {
	run := func(pool *Pool) (fired []int, now Time) {
		s := New(1)
		s.SetPool(pool)
		for i := 0; i < 6; i++ {
			i := i
			s.AtCompute(Time(i)*100, Partition(i%2), func() func() {
				return func() { fired = append(fired, i) }
			})
		}
		s.RunUntil(250)
		return fired, s.Now()
	}
	seqFired, seqNow := run(nil)
	parFired, parNow := run(NewPool(4))
	if fmt.Sprint(seqFired) != fmt.Sprint(parFired) || seqNow != parNow {
		t.Fatalf("sequential (%v, %d) != parallel (%v, %d)", seqFired, seqNow, parFired, parNow)
	}
	if len(seqFired) != 3 || seqNow != 250 {
		t.Fatalf("deadline semantics changed: fired %v now %d", seqFired, seqNow)
	}
}
