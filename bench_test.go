package blazes

// One benchmark per table/figure of the paper, plus microbenchmarks for the
// analysis itself. Figure benches run reduced-scale simulations (the full
// paper-scale runs live in cmd/experiments); custom metrics report the
// figure's headline quantity so `go test -bench` output doubles as a
// regeneration of the paper's data shapes.

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"

	"blazes/internal/adtrack"
	"blazes/internal/bloom"
	"blazes/internal/core"
	"blazes/internal/dataflow"
	"blazes/internal/experiments"
	"blazes/internal/sim"
	"blazes/internal/storm"
	"blazes/internal/wc"
	"blazes/topogen"
)

// reportFlipAnns are the two Report-component annotations the session
// benchmarks alternate between: the paper's CAMPAIGN and THRESH queries.
var reportFlipAnns = [2]Annotation{ORGate("id", "campaign"), CR}

// BenchmarkSessionReanalyze measures the incremental repair loop: one
// session over the adtrack graph, flipping the Report component's
// annotation every iteration and re-analyzing. Only the flipped component
// and its downstream closure are re-derived; everything else — validation,
// cycle collapse, topological order, unaffected derivations — comes from
// the session's caches. Compare against BenchmarkFullReanalyze, which pays
// a fresh whole-graph analysis for the same flip.
func BenchmarkSessionReanalyze(b *testing.B) {
	s, err := OpenSession(AdNetwork(CAMPAIGN, "campaign"))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Analyze(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Annotate("Report", "request", "response", reportFlipAnns[i%2]); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Analyze(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullReanalyze is the one-shot baseline for
// BenchmarkSessionReanalyze: the identical annotation flip on the adtrack
// graph, re-analyzed from scratch through the Analyzer every iteration.
func BenchmarkFullReanalyze(b *testing.B) {
	g := dataflow.AdNetwork(dataflow.CAMPAIGN, "campaign")
	analyzer := NewAnalyzer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Lookup("Report").SetPathAnn("request", "response", reportFlipAnns[i%2])
		res, err := analyzer.Analyze(g)
		if err != nil {
			b.Fatal(err)
		}
		if res.Report() == nil {
			b.Fatal("no report")
		}
	}
}

// BenchmarkSynthesize measures strategy synthesis through the registry
// dispatch (defaultChain + per-component Plan calls). The registry
// replaced a hard-coded switch; this pins that the indirection is within
// noise of the analysis it rides on — synthesis is a rounding error next
// to Analyze.
func BenchmarkSynthesize(b *testing.B) {
	g := dataflow.AdNetwork(dataflow.CAMPAIGN, "campaign")
	an, err := dataflow.Analyze(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sts := dataflow.Synthesize(an, dataflow.SynthesisOptions{}); len(sts) == 0 {
			b.Fatal("no strategies")
		}
	}
}

// BenchmarkSynthesizePreferred is BenchmarkSynthesize with a preferred
// strategy prepended to the chain — the worst-case dispatch (registry
// lookup plus one extra declined Plan call per component).
func BenchmarkSynthesizePreferred(b *testing.B) {
	g := dataflow.AdNetwork(dataflow.CAMPAIGN, "campaign")
	an, err := dataflow.Analyze(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sts := dataflow.Synthesize(an, dataflow.SynthesisOptions{Strategy: dataflow.StrategyQuorumOrdering}); len(sts) == 0 {
			b.Fatal("no strategies")
		}
	}
}

// BenchmarkFig5AnomalyMatrix regenerates the Figure 5 anomaly/remediation
// matrix (3 properties × 4 mechanisms, multi-seed).
func BenchmarkFig5AnomalyMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.Fig5Matrix(4)
		if len(m) != 12 {
			b.Fatalf("cells = %d", len(m))
		}
	}
}

// BenchmarkFig6Queries evaluates the four reporting queries of Figure 6
// against a synthetic click log on the Bloom runtime.
func BenchmarkFig6Queries(b *testing.B) {
	queries := []dataflow.AdQuery{dataflow.THRESH, dataflow.POOR, dataflow.WINDOW, dataflow.CAMPAIGN}
	w := adtrack.DefaultWorkload(3, false)
	w.EntriesPerServer = 200
	var clicks []bloom.Row
	for _, burst := range w.Plan() {
		for _, c := range burst.Clicks {
			clicks = append(clicks, c.Row())
		}
	}
	request := adtrack.Request{ID: adtrack.AdName(0, 0), Campaign: adtrack.CampaignName(0), Window: "w0", ReqID: "r"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			mod, err := adtrack.ReportModule(q, 100)
			if err != nil {
				b.Fatal(err)
			}
			n, err := bloom.NewNode("bench", mod)
			if err != nil {
				b.Fatal(err)
			}
			if err := n.Deliver("click", clicks...); err != nil {
				b.Fatal(err)
			}
			if _, err := n.Tick(); err != nil {
				b.Fatal(err)
			}
			if err := n.Deliver("request", request.Row()); err != nil {
				b.Fatal(err)
			}
			if _, err := n.Tick(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig7to10Calculus exercises the annotation calculus tables
// (Figures 7–10): inference and reconciliation over every rule combination.
func BenchmarkFig7to10Calculus(b *testing.B) {
	anns := []core.Annotation{core.CR, core.CW, core.ORGate("id", "campaign"), core.OWGate("word", "batch"), core.ORStar(), core.OWStar()}
	labels := []core.Label{core.Async, core.Run, core.Inst, core.Diverge, core.Seal("campaign"), core.Seal("batch")}
	for i := 0; i < b.N; i++ {
		for _, ann := range anns {
			var outs []core.Label
			for _, l := range labels {
				outs = append(outs, core.Infer(l, ann, nil).Out)
			}
			core.Reconcile(outs, true, nil)
		}
	}
}

// BenchmarkCaseStudyDerivations runs the full Section VI analyses (both
// running examples, grey box) per iteration.
func BenchmarkCaseStudyDerivations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, g := range []*dataflow.Graph{
			dataflow.WordcountTopology(false),
			dataflow.WordcountTopology(true),
			dataflow.AdNetwork(dataflow.THRESH),
			dataflow.AdNetwork(dataflow.POOR),
			dataflow.AdNetwork(dataflow.CAMPAIGN, "campaign"),
		} {
			if _, err := dataflow.Analyze(g); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWhiteBoxExtraction measures the Bloom white-box analysis of the
// ad system's modules (Section VII).
func BenchmarkWhiteBoxExtraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, q := range []dataflow.AdQuery{dataflow.THRESH, dataflow.POOR, dataflow.WINDOW, dataflow.CAMPAIGN} {
			mod, err := adtrack.ReportModule(q, 100)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := bloom.Analyze(mod); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig11WordcountThroughput regenerates a reduced Figure 11 sweep
// and reports the sealed/transactional throughput ratio at both ends of the
// cluster-size axis. The sweep's four independent simulations run on one
// worker per CPU (results are identical at any parallelism); setting
// BLAZES_BENCH_QUICK=1 shrinks the sweep further for scripts/bench.sh
// -quick (those numbers are a smoke signal, not comparable to the
// baseline).
func BenchmarkFig11WordcountThroughput(b *testing.B) {
	cfg := experiments.DefaultFig11()
	cfg.ClusterSizes = []int{5, 20}
	cfg.Duration = 300 * sim.Millisecond
	cfg.Runs = 1
	cfg.Parallelism = -1 // one worker per CPU
	if os.Getenv("BLAZES_BENCH_QUICK") != "" {
		cfg.ClusterSizes = []int{5, 10}
		cfg.Duration = 100 * sim.Millisecond
	}
	var first, last float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		first, last = rows[0].Ratio, rows[len(rows)-1].Ratio
	}
	b.ReportMetric(first, "ratio@5workers")
	b.ReportMetric(last, "ratio@20workers")
}

// benchAdFigure runs one reduced ad-network figure and reports the ordered
// and sealed slowdown factors over the uncoordinated baseline.
func benchAdFigure(b *testing.B, servers int, includeOrdered bool) {
	var orderedFactor, sealFactor float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig12Or13(experiments.AdFigureConfig{
			Seed: 1, AdServers: servers, EntriesPerServer: 100,
			Sleep: 50 * sim.Millisecond, BatchSize: 10, IncludeOrdered: includeOrdered,
			Parallelism: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		byLabel := map[string]experiments.AdSeries{}
		for _, c := range fig.Curves {
			byLabel[c.Label] = c
		}
		un := byLabel["Uncoordinated"].FinishedAt
		if includeOrdered && un > 0 {
			orderedFactor = float64(byLabel["Ordered"].FinishedAt) / float64(un)
		}
		if un > 0 {
			sealFactor = float64(byLabel["Seal"].FinishedAt) / float64(un)
		}
	}
	if includeOrdered {
		b.ReportMetric(orderedFactor, "ordered/uncoord")
	}
	b.ReportMetric(sealFactor, "seal/uncoord")
}

// BenchmarkFig12AdReport5 regenerates Figure 12 (5 ad servers).
func BenchmarkFig12AdReport5(b *testing.B) { benchAdFigure(b, 5, true) }

// BenchmarkFig13AdReport10 regenerates Figure 13 (10 ad servers).
func BenchmarkFig13AdReport10(b *testing.B) { benchAdFigure(b, 10, true) }

// BenchmarkFig14SealStrategies regenerates Figure 14 (seal variants only)
// and reports the buffering-latency gap between the two partitionings.
func BenchmarkFig14SealStrategies(b *testing.B) {
	var indBuf, sealBuf float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig14WithSleep(1, 100, 50*sim.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range fig.Curves {
			switch c.Label {
			case "Independent Seal":
				indBuf = c.AvgBufferTime.Seconds()
			case "Seal":
				sealBuf = c.AvgBufferTime.Seconds()
			}
		}
	}
	b.ReportMetric(indBuf, "indep-buffer-sec")
	b.ReportMetric(sealBuf, "vote-buffer-sec")
}

// BenchmarkStormSealedWordcount measures raw engine throughput (events/sec
// of the simulator) for the sealed wordcount.
func BenchmarkStormSealedWordcount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := wc.Run(wc.RunConfig{
			Seed: int64(i + 1), Workers: 4, Batches: 10, TuplesPerBatch: 50,
			WordsPerTweet: 4, Mode: storm.CommitSealed, Punctuate: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Done {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkBloomTick measures the Bloom runtime's timestep cost on the
// CAMPAIGN standing query over a 1k-row log.
func BenchmarkBloomTick(b *testing.B) {
	mod, err := adtrack.ReportModule(dataflow.CAMPAIGN, 100)
	if err != nil {
		b.Fatal(err)
	}
	n, err := bloom.NewNode("bench", mod)
	if err != nil {
		b.Fatal(err)
	}
	w := adtrack.DefaultWorkload(2, false)
	w.EntriesPerServer = 500
	for _, burst := range w.Plan() {
		for _, c := range burst.Clicks {
			if err := n.Deliver("click", c.Row()); err != nil {
				b.Fatal(err)
			}
		}
	}
	if _, err := n.Tick(); err != nil {
		b.Fatal(err)
	}
	req := adtrack.Request{ID: adtrack.AdName(0, 0), Campaign: adtrack.CampaignName(0), Window: "w0", ReqID: "r"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Deliver("request", req.Row()); err != nil {
			b.Fatal(err)
		}
		if _, err := n.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

// scaleBenchGraph builds the scale-bench topology through the public
// pipeline (generate → parse → graph): 10k components by default, 1k under
// BLAZES_BENCH_QUICK=1 for scripts/bench.sh -quick (those numbers are a
// smoke signal, not comparable to the baseline).
func scaleBenchGraph(b *testing.B) *Graph {
	b.Helper()
	n := 10_000
	if os.Getenv("BLAZES_BENCH_QUICK") != "" {
		n = 1000
	}
	res, err := topogen.Generate(topogen.Default(n, 8))
	if err != nil {
		b.Fatal(err)
	}
	spec, err := ParseSpec(res.Spec)
	if err != nil {
		b.Fatal(err)
	}
	g, err := spec.Graph(fmt.Sprintf("bench-scale-%d", n))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkAnalyze10k measures one-shot whole-graph analysis of a generated
// 10k-component topology (layered DAG, cyclic supernodes, default
// annotation mix) — the headline number for DESIGN.md's Scale section.
func BenchmarkAnalyze10k(b *testing.B) {
	g := scaleBenchGraph(b)
	analyzer := NewAnalyzer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyzer.Analyze(g); err != nil {
			b.Fatal(err)
		}
	}
}

// scaleFlipTarget picks the flip component for the incremental benchmark:
// the last (highest-named) component touching no cycle stream, so the flip
// never lands inside a supernode and the structural caches survive every
// iteration.
func scaleFlipTarget(b *testing.B, g *Graph) string {
	b.Helper()
	cyclic := map[string]bool{}
	for _, st := range g.Streams() {
		if strings.HasPrefix(st.Name, "cf") || strings.HasPrefix(st.Name, "cb") || strings.HasPrefix(st.Name, "gossip") {
			cyclic[st.FromComp] = true
			cyclic[st.ToComp] = true
		}
	}
	var target string
	for _, c := range g.Components() {
		if !cyclic[c.Name] && c.Name > target {
			target = c.Name
		}
	}
	if target == "" {
		b.Fatal("no acyclic component to flip")
	}
	return target
}

// BenchmarkSessionReanalyze10k measures the incremental path at scale: a
// session over the same 10k topology, flipping one leaf component's
// annotation per iteration. Every pass must come from the incremental
// engine (Rebuilt=false) — otherwise the benchmark has silently degraded
// to whole-graph work.
func BenchmarkSessionReanalyze10k(b *testing.B) {
	s, err := OpenSession(scaleBenchGraph(b))
	if err != nil {
		b.Fatal(err)
	}
	target := scaleFlipTarget(b, s.Graph())
	ctx := context.Background()
	if _, err := s.Analyze(ctx); err != nil {
		b.Fatal(err)
	}
	flips := [2]Annotation{ORStar(), CW}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Annotate(target, "in", "out", flips[i%2]); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Analyze(ctx); err != nil {
			b.Fatal(err)
		}
		if s.LastStats().Rebuilt {
			b.Fatal("annotation flip rebuilt the structural caches")
		}
	}
}
