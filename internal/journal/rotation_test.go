package journal

import (
	"fmt"
	"path/filepath"
	"testing"
)

// TestSegmentRotationByBytes: with a byte cap, commits that push the active
// segment past the cap rotate to a fresh segment; full segments stay on
// disk and recovery replays the record stream across all of them.
func TestSegmentRotationByBytes(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenWithOptions(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 40; i++ {
		p := fmt.Sprintf("record-%02d-xxxxxxxxxxxxxxxx", i)
		want = append(want, p)
	}
	appendAll(t, j, want...)

	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 2 {
		t.Fatalf("wal segments = %v, want rotation to have produced several", matches)
	}
	st := j.Stats()
	if st.Segments != len(matches) {
		t.Errorf("Stats.Segments = %d, want %d", st.Segments, len(matches))
	}
	// Bytes covers every live segment, not just the active one: the framed
	// records plus one header per segment.
	if wantBytes := int64(40*(frameSize+len(want[0])) + len(matches)*headerSize); st.Bytes != wantBytes {
		t.Errorf("Stats.Bytes = %d, want %d", st.Bytes, wantBytes)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery replays across all segments, in order, nothing lost.
	j2, rec := openT(t, dir)
	defer j2.Close()
	if rec.Torn {
		t.Error("clean multi-segment journal reported torn")
	}
	if !equal(payloads(rec.Records), want) {
		t.Fatalf("recovered %d records %v, want %d", len(rec.Records), payloads(rec.Records), len(want))
	}
	// Appends resume with the next seq.
	seq, err := j2.Append([]byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 41 {
		t.Errorf("post-recovery seq = %d, want 41", seq)
	}
}

// TestSegmentRotationThenSnapshot: a snapshot right after a size rotation
// must reuse the freshly-created segment's name (wal-<next-seq>) without
// tripping over the existing file, and drop every pre-snapshot segment.
func TestSegmentRotationThenSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenWithOptions(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Each append exceeds the cap alone, so every commit rotates.
	appendAll(t, j, "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
		"bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb")
	if err := j.Snapshot([]byte("state")); err != nil {
		t.Fatalf("snapshot after rotation: %v", err)
	}
	walPath(t, dir) // exactly one live segment again
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, rec := openT(t, dir)
	defer j2.Close()
	if string(rec.Snapshot) != "state" || rec.SnapshotSeq != 2 {
		t.Fatalf("recovered snapshot %q at seq %d, want \"state\" at 2", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("records after snapshot: %v", payloads(rec.Records))
	}
}

// TestNoRotationWithoutCap: the default (SegmentBytes 0) never rotates on
// size — the single-segment discipline older journals rely on.
func TestNoRotationWithoutCap(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	defer j.Close()
	for i := 0; i < 64; i++ {
		appendAll(t, j, "a-reasonably-long-payload-to-grow-the-segment")
	}
	walPath(t, dir)
}
