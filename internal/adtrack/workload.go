package adtrack

import (
	"fmt"

	"blazes/internal/bloom"
	"blazes/internal/sim"
)

// Workload generates the paper's ad-server click stream: each ad server
// produces EntriesPerServer log entries, dispatched in batches of BatchSize
// with a sleep between batches (Section VIII-B). Entries are generated
// campaign by campaign, and each server punctuates a campaign as soon as it
// has emitted its last record for it.
type Workload struct {
	// AdServers is the number of ad servers (5 or 10 in the paper).
	AdServers int
	// EntriesPerServer is the log entries each server produces (1000).
	EntriesPerServer int
	// BatchSize is the records dispatched per burst (50).
	BatchSize int
	// Sleep is the pause between bursts.
	Sleep sim.Time
	// Campaigns is the number of ad campaigns.
	Campaigns int
	// AdsPerCampaign sizes the ad id space within each campaign.
	AdsPerCampaign int
	// Independent masters each campaign at exactly one ad server (the
	// "independent seal" partitioning of Figure 14); otherwise every
	// server produces records for every campaign.
	Independent bool
}

// DefaultWorkload mirrors the paper's parameters.
func DefaultWorkload(adServers int, independent bool) Workload {
	return Workload{
		AdServers:        adServers,
		EntriesPerServer: 1000,
		BatchSize:        50,
		Sleep:            200 * sim.Millisecond,
		Campaigns:        10,
		AdsPerCampaign:   5,
		Independent:      independent,
	}
}

// CampaignName returns the canonical campaign identifier.
func CampaignName(c int) string { return fmt.Sprintf("camp%02d", c) }

// AdName returns the canonical ad identifier within a campaign.
func AdName(campaign, ad int) string { return fmt.Sprintf("ad%02d-%d", campaign, ad) }

// ServerName returns the canonical ad-server identifier.
func ServerName(s int) string { return fmt.Sprintf("adserver%d", s) }

// Click is one log record. Seq is a per-server sequence number making every
// record unique (a click log is a bag of events; without it the runtime's
// set semantics would collapse repeated clicks into one row).
type Click struct {
	ID       string
	Campaign string
	Window   string
	Server   string
	Seq      int64
}

// Row converts the click to the Report module's click schema.
func (c Click) Row() bloom.Row {
	return bloom.Row{bloom.S(c.ID), bloom.S(c.Campaign), bloom.S(c.Window), bloom.S(c.Server), bloom.I(c.Seq)}
}

// Burst is one dispatched batch from one ad server, with the campaigns the
// server completed (and therefore seals) at the end of this burst.
type Burst struct {
	Server string
	At     sim.Time
	Clicks []Click
	Seals  []string
}

// campaignsOf returns the campaigns server s produces, in emission order.
func (w Workload) campaignsOf(s int) []int {
	var out []int
	for c := 0; c < w.Campaigns; c++ {
		if !w.Independent || c%w.AdServers == s {
			out = append(out, c)
		}
	}
	return out
}

// Plan lays out every burst for every server deterministically (the
// workload is a pure function of its parameters, so different simulator
// seeds replay identical inputs). Each server walks its campaigns in order,
// splitting its entries evenly across them; a campaign's seal is attached
// to the burst containing its final record. Servers run at slightly
// staggered paces (later servers sleep a little longer), which is what
// makes the unanimous-vote wait of the non-independent seal strategy
// visible: a partition releases only when the slowest of its producers has
// punctuated it.
func (w Workload) Plan() []Burst {
	var bursts []Burst
	for s := 0; s < w.AdServers; s++ {
		server := ServerName(s)
		campaigns := w.campaignsOf(s)
		if len(campaigns) == 0 {
			continue
		}
		perCampaign := w.EntriesPerServer / len(campaigns)
		extra := w.EntriesPerServer % len(campaigns)
		sleep := w.Sleep + w.Sleep*sim.Time(s)/sim.Time(8*max(1, w.AdServers-1))

		var pending []Click
		var pendingSeals []string
		burstAt := sim.Time(0)
		seq := int64(0)
		flush := func() {
			if len(pending) == 0 && len(pendingSeals) == 0 {
				return
			}
			bursts = append(bursts, Burst{Server: server, At: burstAt, Clicks: pending, Seals: pendingSeals})
			pending, pendingSeals = nil, nil
			burstAt += sleep
		}
		emit := func(c, k int, sealAfterLast bool, n int) {
			ad := (s + k) % w.AdsPerCampaign
			pending = append(pending, Click{
				ID:       AdName(c, ad),
				Campaign: CampaignName(c),
				Window:   fmt.Sprintf("w%d", k%4),
				Server:   server,
				Seq:      seq,
			})
			seq++
			if sealAfterLast && k == n-1 {
				pendingSeals = append(pendingSeals, CampaignName(c))
			}
			if len(pending) >= w.BatchSize {
				flush()
			}
		}
		counts := make([]int, len(campaigns))
		for ci := range campaigns {
			counts[ci] = perCampaign
			if ci < extra {
				counts[ci]++
			}
		}
		if w.Independent {
			// A campaign's master works through it contiguously and
			// punctuates it the moment its chunk is done — high
			// "coordination locality" (Section X).
			for ci, c := range campaigns {
				for k := 0; k < counts[ci]; k++ {
					emit(c, k, true, counts[ci])
				}
			}
		} else {
			// No ownership, no locality: records of all campaigns
			// interleave across the whole stream, so a server can only
			// punctuate when its stream ends.
			done := 0
			progress := make([]int, len(campaigns))
			for done < len(campaigns) {
				for ci, c := range campaigns {
					if progress[ci] >= counts[ci] {
						continue
					}
					emit(c, progress[ci], false, counts[ci])
					progress[ci]++
					if progress[ci] == counts[ci] {
						done++
					}
				}
			}
			for _, c := range campaigns {
				pendingSeals = append(pendingSeals, CampaignName(c))
			}
		}
		flush()
	}
	return bursts
}

// TotalRecords returns the total click records the workload produces.
func (w Workload) TotalRecords() int { return w.AdServers * w.EntriesPerServer }

// Producers returns, per campaign, the servers that produce records for it
// (the registry contents for the sealing protocol).
func (w Workload) Producers() map[string][]string {
	out := map[string][]string{}
	for s := 0; s < w.AdServers; s++ {
		for _, c := range w.campaignsOf(s) {
			out[CampaignName(c)] = append(out[CampaignName(c)], ServerName(s))
		}
	}
	return out
}

// Request is one analyst query.
type Request struct {
	ID       string
	Campaign string
	Window   string
	ReqID    string
	At       sim.Time
}

// Row converts the request to the Report module's request schema.
func (r Request) Row() bloom.Row {
	return bloom.Row{bloom.S(r.ID), bloom.S(r.Campaign), bloom.S(r.Window), bloom.S(r.ReqID)}
}

// RequestPlan generates n requests spread across the run, cycling through
// campaigns and ads; deterministic like the click plan.
func (w Workload) RequestPlan(n int, spacing sim.Time) []Request {
	out := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		c := i % w.Campaigns
		out = append(out, Request{
			ID:       AdName(c, i%w.AdsPerCampaign),
			Campaign: CampaignName(c),
			Window:   fmt.Sprintf("w%d", i%4),
			ReqID:    fmt.Sprintf("req%03d", i),
			At:       sim.Time(i+1) * spacing,
		})
	}
	return out
}
