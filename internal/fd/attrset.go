// Package fd implements the fragment of functional-dependency theory that
// Blazes needs to decide seal/partition compatibility: attribute sets,
// (injective) functional dependencies, attribute closure, a chase across
// component compositions, and the compatible(gate, key) predicate from
// Section V of the paper.
//
// The paper's key observation is that a stream sealed on key is usable by an
// order-sensitive component partitioned on gate whenever some subset of gate
// is injectively (distinctness-preservingly) determined by key; the identity
// function introduced by attribute projection is the ubiquitous injective
// function, and identity chains compose transitively ("chasing" the
// dependency through the dataflow).
package fd

import (
	"sort"
	"strings"
)

// AttrSet is an immutable, canonically ordered set of attribute names.
// The zero value is the empty set.
type AttrSet struct {
	attrs []string // sorted, deduplicated
}

// NewAttrSet builds an attribute set from the given names, deduplicating and
// canonicalizing order. Empty names are ignored.
func NewAttrSet(names ...string) AttrSet {
	seen := make(map[string]bool, len(names))
	out := make([]string, 0, len(names))
	for _, n := range names {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	sort.Strings(out)
	return AttrSet{attrs: out}
}

// Attrs returns the attributes in canonical (sorted) order. The returned
// slice must not be modified.
func (s AttrSet) Attrs() []string { return s.attrs }

// Len reports the number of attributes in the set.
func (s AttrSet) Len() int { return len(s.attrs) }

// IsEmpty reports whether the set has no attributes.
func (s AttrSet) IsEmpty() bool { return len(s.attrs) == 0 }

// Contains reports whether name is a member of the set.
func (s AttrSet) Contains(name string) bool {
	i := sort.SearchStrings(s.attrs, name)
	return i < len(s.attrs) && s.attrs[i] == name
}

// SubsetOf reports whether every attribute of s is in t.
func (s AttrSet) SubsetOf(t AttrSet) bool {
	for _, a := range s.attrs {
		if !t.Contains(a) {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same attributes.
func (s AttrSet) Equal(t AttrSet) bool {
	if len(s.attrs) != len(t.attrs) {
		return false
	}
	for i, a := range s.attrs {
		if t.attrs[i] != a {
			return false
		}
	}
	return true
}

// Union returns the set union of s and t.
func (s AttrSet) Union(t AttrSet) AttrSet {
	return NewAttrSet(append(append([]string{}, s.attrs...), t.attrs...)...)
}

// Intersect returns the set intersection of s and t.
func (s AttrSet) Intersect(t AttrSet) AttrSet {
	out := make([]string, 0, min(len(s.attrs), len(t.attrs)))
	for _, a := range s.attrs {
		if t.Contains(a) {
			out = append(out, a)
		}
	}
	return AttrSet{attrs: out}
}

// Minus returns the attributes of s not present in t.
func (s AttrSet) Minus(t AttrSet) AttrSet {
	out := make([]string, 0, len(s.attrs))
	for _, a := range s.attrs {
		if !t.Contains(a) {
			out = append(out, a)
		}
	}
	return AttrSet{attrs: out}
}

// String renders the set as a comma-joined list, e.g. "id,window".
func (s AttrSet) String() string { return strings.Join(s.attrs, ",") }

// Key returns a canonical string usable as a map key; identical sets always
// produce identical keys.
func (s AttrSet) Key() string { return s.String() }
