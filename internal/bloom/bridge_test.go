package bloom

import (
	"testing"

	"blazes/internal/dataflow"
)

func newTestGraph(t *testing.T, a *ModuleAnalysis) *dataflow.Graph {
	t.Helper()
	g := dataflow.NewGraph("t")
	a.Component(g, true)
	return g
}
