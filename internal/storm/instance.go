package storm

import (
	"blazes/internal/sim"
)

// debugStragglers enables straggler diagnostics during development.
var debugStragglers = false

func fmtIntMap(m map[int]int) string {
	s := "{"
	for k, v := range m {
		s += " "
		s += itoa(k) + ":" + itoa(v)
	}
	return s + " }"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// Committer is implemented by bolts whose FinishBatch output must be applied
// durably at commit time (e.g. a backing-store writer). The engine calls
// Commit under the topology's commit discipline: immediately after the batch
// seals (CommitSealed) or in global batch order (CommitTransactional).
type Committer interface {
	Commit(batch int64)
}

// instance is one physical task of a bolt stage: a serial executor fed by
// reordering network links.
type instance struct {
	st   *stage
	idx  int
	bolt Bolt

	busyUntil sim.Time
	seen      map[string]bool
	batches   map[int64]*batchState
}

type batchState struct {
	recvFrom map[int]int  // upstream instance → deduped data tuples received
	expected map[int]int  // upstream instance → announced count
	endFrom  map[int]bool // upstream instance → punctuation arrived
	finished bool
	// finishDone is set once the scheduled finish event has actually run
	// (FinishBatch executed, punctuations sent). Resends must wait for it:
	// between finished and finishDone the outbox and counts are still
	// incomplete.
	finishDone bool
	// flushScheduled marks the timer-based (unpunctuated) completion path.
	flushScheduled bool
	// outbox stores routed emissions for replay resend.
	outbox []outMsg
	// counts tracks per-downstream-stage, per-target emitted counts.
	counts map[string][]int
	// lastAttempt is the highest replay attempt this instance forwarded.
	lastAttempt int
	emitSeq     int
	readySent   bool
	committed   bool
}

type outMsg struct {
	stage  *stage
	target int
	m      message
}

func newInstance(st *stage, idx int) *instance {
	return &instance{
		st:      st,
		idx:     idx,
		bolt:    st.factory(idx),
		seen:    map[string]bool{},
		batches: map[int64]*batchState{},
	}
}

func (in *instance) batch(b int64) *batchState {
	bs, ok := in.batches[b]
	if !ok {
		bs = &batchState{
			recvFrom: map[int]int{},
			expected: map[int]int{},
			endFrom:  map[int]bool{},
			counts:   map[string][]int{},
		}
		in.batches[b] = bs
	}
	return bs
}

// receive handles one network message.
func (in *instance) receive(m message) {
	t := in.st.topo
	bs := in.batch(m.batch)

	if m.batchEnd {
		if bs.finished {
			in.maybeResend(m.batch, bs, m.attempt)
			return
		}
		bs.endFrom[m.from] = true
		bs.expected[m.from] = m.count
		in.tryFinish(m.batch, bs)
		return
	}

	if in.seen[m.id] {
		if bs.finished {
			in.maybeResend(m.batch, bs, m.attempt)
		}
		return
	}
	if bs.finished {
		// A tuple for a batch this instance already (timer-)flushed:
		// data loss under the anomalous configuration.
		t.metrics.Stragglers++
		if debugStragglers {
			println("straggler:", in.st.name, in.idx, "batch", int(m.batch), "id", m.id, "attempt", m.attempt)
		}
		return
	}
	in.seen[m.id] = true
	bs.recvFrom[m.from]++

	execAt := in.busyUntil
	if now := t.sim.Now(); execAt < now {
		execAt = now
	}
	execAt += t.cfg.PerTupleCost
	in.busyUntil = execAt
	tuple := m.tuple
	batch := m.batch
	t.sim.At(execAt, func() {
		in.bolt.Execute(tuple, func(out Tuple) {
			out.Batch = batch
			in.emit(batch, bs, out)
		})
		in.tryFinish(batch, bs)
	})

	if !t.cfg.Punctuate && !bs.flushScheduled {
		bs.flushScheduled = true
		t.sim.After(t.cfg.FlushTimeout, func() { in.flush(batch, bs) })
	}
}

// emit routes one produced tuple to every downstream stage.
func (in *instance) emit(b int64, bs *batchState, out Tuple) {
	t := in.st.topo
	for _, down := range in.st.downstream {
		targets := down.grouping.Route(out, down.n, t.sim.Rand().Int63())
		id := tupleID(in.st.name, in.idx, b, bs.emitSeq)
		bs.emitSeq++
		if bs.counts[down.name] == nil {
			bs.counts[down.name] = make([]int, down.n)
		}
		for _, target := range targets {
			bs.counts[down.name][target]++
			m := message{id: id, from: in.idx, tuple: out, batch: b, attempt: bs.lastAttempt}
			bs.outbox = append(bs.outbox, outMsg{stage: down, target: target, m: m})
			t.deliver(down, target, m, t.sim.Now())
		}
	}
}

// tryFinish completes the batch when every upstream instance has punctuated
// and all announced tuples have been executed.
func (in *instance) tryFinish(b int64, bs *batchState) {
	t := in.st.topo
	if bs.finished || !t.cfg.Punctuate {
		return
	}
	for i := 0; i < in.st.upstreamN; i++ {
		if !bs.endFrom[i] {
			return
		}
		if bs.recvFrom[i] != bs.expected[i] {
			return
		}
	}
	in.finish(b, bs)
}

// flush is the timer-based completion used when punctuations are disabled:
// whatever has arrived is treated as the batch.
func (in *instance) flush(b int64, bs *batchState) {
	if !bs.finished {
		in.finish(b, bs)
	}
}

// finish runs FinishBatch, propagates punctuations downstream, and enters
// the commit path on committer stages.
func (in *instance) finish(b int64, bs *batchState) {
	t := in.st.topo
	if debugStragglers {
		println("finish:", in.st.name, in.idx, "batch", int(b),
			"recv", fmtIntMap(bs.recvFrom), "expected", fmtIntMap(bs.expected))
	}
	bs.finished = true
	at := in.busyUntil
	if now := t.sim.Now(); at < now {
		at = now
	}
	at += t.cfg.FinishBatchCost
	in.busyUntil = at
	t.sim.At(at, func() {
		defer func() { bs.finishDone = true }()
		in.bolt.FinishBatch(b, func(out Tuple) {
			out.Batch = b
			in.emit(b, bs, out)
		})
		if t.cfg.Punctuate {
			for _, down := range in.st.downstream {
				counts := bs.counts[down.name]
				if counts == nil {
					counts = make([]int, down.n)
				}
				for target := 0; target < down.n; target++ {
					m := message{
						id: tupleID(in.st.name, in.idx, b, -1), from: in.idx,
						batchEnd: true, batch: b, count: counts[target], attempt: bs.lastAttempt,
					}
					t.deliver(down, target, m, t.sim.Now())
				}
			}
		}
		if in.st.committer {
			in.enterCommit(b, bs)
		}
	})
}

// enterCommit applies the batch under the commit discipline.
func (in *instance) enterCommit(b int64, bs *batchState) {
	t := in.st.topo
	switch t.mode {
	case CommitSealed:
		// Independent commit: apply locally, then ack the spout.
		t.sim.After(t.cfg.CommitCost, func() { in.applyCommit(b, bs) })
	case CommitTransactional:
		if !bs.readySent {
			bs.readySent = true
			t.txc.submitReady(readyMsg{batch: b, instance: in.idx})
		}
	}
}

// applyCommit durably applies the batch and acknowledges the spout.
func (in *instance) applyCommit(b int64, bs *batchState) {
	t := in.st.topo
	if bs.committed {
		return
	}
	bs.committed = true
	if c, ok := in.bolt.(Committer); ok {
		c.Commit(b)
	}
	// Ack travels back to the spout controller over the network.
	idx := in.idx
	t.sim.At(t.cfg.Link.Arrival(t.sim), func() { t.commitDone(b, idx) })
}

// maybeResend re-sends this instance's stored output for a finished batch
// when a replayed message with a newer attempt arrives (recovering
// downstream losses without re-execution — bolts are deterministic).
func (in *instance) maybeResend(b int64, bs *batchState, attempt int) {
	t := in.st.topo
	if !bs.finishDone || attempt <= bs.lastAttempt {
		return
	}
	bs.lastAttempt = attempt
	for _, om := range bs.outbox {
		m := om.m
		m.attempt = attempt
		t.deliver(om.stage, om.target, m, t.sim.Now())
	}
	if t.cfg.Punctuate {
		for _, down := range in.st.downstream {
			counts := bs.counts[down.name]
			if counts == nil {
				counts = make([]int, down.n)
			}
			for target := 0; target < down.n; target++ {
				m := message{
					id: tupleID(in.st.name, in.idx, b, -1), from: in.idx,
					batchEnd: true, batch: b, count: counts[target], attempt: attempt,
				}
				t.deliver(down, target, m, t.sim.Now())
			}
		}
	}
	if in.st.committer && bs.committed {
		// Re-ack: the spout may have missed the original acknowledgement.
		idx := in.idx
		t.sim.After(t.cfg.Link.MinDelay, func() { t.commitDone(b, idx) })
	}
}
