package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"blazes/internal/sim"
)

// The shrinker turns an anomalous sweep cell into a 1-minimal replayable
// counterexample by delta debugging (Zeller's ddmin) over a set of
// removable *events*: the seeds whose schedules the oracle compared, and
// the injected faults of the cell's plan decomposed into independently
// droppable pieces — delay chunks that sum back to the plan's spread, the
// duplication toggle, and partition half-windows (dropping one half
// narrows the window; dropping both removes it; splitting [a,b) at m into
// [a,m)+[m,b) is behaviourally identical under LinkConfig.Release's
// chained-window rule). The predicate is exact: a candidate reproduces
// when folding its runs yields the same Run/Inst/Diverge classification
// the full cell showed. ddmin's termination condition guarantees
// 1-minimality — removing any single remaining event changes the
// classification.

// TraceVersion identifies the replayable-trace artifact schema.
const TraceVersion = "blazes.trace/v1"

// Event is one removable ingredient of a shrunk counterexample.
type Event struct {
	// Kind is "seed", "delay", "dup", or "partition".
	Kind string `json:"kind"`
	// Seed identifies a schedule (Kind "seed").
	Seed int64 `json:"seed,omitempty"`
	// Spread is one additive chunk of the plan's DelaySpread (Kind
	// "delay").
	Spread sim.Time `json:"spread,omitempty"`
	// Dup is the plan's duplicate-delivery probability (Kind "dup").
	Dup float64 `json:"dup,omitempty"`
	// Window is one partition (half-)window (Kind "partition").
	Window *sim.PartitionWindow `json:"window,omitempty"`
}

func (e Event) String() string {
	switch e.Kind {
	case "seed":
		return fmt.Sprintf("seed %d", e.Seed)
	case "delay":
		return fmt.Sprintf("delay +%v", e.Spread)
	case "dup":
		return fmt.Sprintf("dup %g", e.Dup)
	case "partition":
		return fmt.Sprintf("partition [%v, %v)", e.Window.From, e.Window.Until)
	}
	return e.Kind
}

// minPartitionChunk bounds recursive window halving: windows shorter than
// twice this are kept whole.
const minPartitionChunk = 8 * sim.Millisecond

// splitWindow decomposes a partition window into contiguous chunks by
// recursive halving.
func splitWindow(w sim.PartitionWindow, out []sim.PartitionWindow) []sim.PartitionWindow {
	if w.Until-w.From < 2*minPartitionChunk {
		return append(out, w)
	}
	mid := w.From + (w.Until-w.From)/2
	out = splitWindow(sim.PartitionWindow{From: w.From, Until: mid}, out)
	return splitWindow(sim.PartitionWindow{From: mid, Until: w.Until}, out)
}

// planEvents decomposes a fault plan into removable events (seeds are
// appended separately).
func planEvents(plan FaultPlan) []Event {
	var events []Event
	for spread := plan.DelaySpread; spread > 0; {
		chunk := spread / 2
		if chunk < sim.Millisecond {
			chunk = spread
		}
		events = append(events, Event{Kind: "delay", Spread: chunk})
		spread -= chunk
	}
	if plan.DupProb > 0 {
		events = append(events, Event{Kind: "dup", Dup: plan.DupProb})
	}
	for _, w := range plan.Partitions {
		for _, chunk := range splitWindow(w, nil) {
			chunk := chunk
			events = append(events, Event{Kind: "partition", Window: &chunk})
		}
	}
	return events
}

// eventsPlan reassembles a fault plan (named after the original) and the
// sorted seed set from a candidate event subset.
func eventsPlan(name string, events []Event) (FaultPlan, []int64) {
	plan := FaultPlan{Name: name}
	var seeds []int64
	for _, e := range events {
		switch e.Kind {
		case "seed":
			seeds = append(seeds, e.Seed)
		case "delay":
			plan.DelaySpread += e.Spread
		case "dup":
			if e.Dup > plan.DupProb {
				plan.DupProb = e.Dup
			}
		case "partition":
			plan.Partitions = append(plan.Partitions, *e.Window)
		}
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	return plan, seeds
}

// Trace is a self-contained replayable counterexample: everything needed
// to re-execute the anomalous cell — workload by name, mechanism, the
// minimized fault plan and seed set — plus the classification it must
// reproduce. Plan and Seeds are the rendering of Events, kept explicit so
// the artifact replays without re-deriving anything.
type Trace struct {
	Version   string `json:"version"`
	Workload  string `json:"workload"`
	Mechanism string `json:"mechanism"`
	Confluent bool   `json:"confluent,omitempty"`
	Stripped  bool   `json:"stripped,omitempty"`
	// BasePlan names the original (unshrunk) fault plan.
	BasePlan string `json:"base_plan"`
	// Plan is the minimized fault plan; Seeds the minimized schedule set.
	Plan  FaultPlan `json:"plan"`
	Seeds []int64   `json:"seeds"`
	// Anomalies is the classification the trace reproduces; Detail the
	// oracle's first disagreement under it.
	Anomalies Anomalies `json:"anomalies"`
	Detail    string    `json:"detail,omitempty"`
	// Events is the 1-minimal event set the plan and seeds render.
	Events []Event `json:"events"`
	// Steps counts predicate evaluations the shrink spent.
	Steps int `json:"steps"`
}

// Encode renders the trace as indented JSON.
func (t *Trace) Encode() ([]byte, error) { return json.MarshalIndent(t, "", "  ") }

// DecodeTrace parses a trace artifact and checks its schema version.
func DecodeTrace(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("chaos: trace: %w", err)
	}
	if t.Version != TraceVersion {
		return nil, fmt.Errorf("chaos: trace: unsupported version %q (want %q)", t.Version, TraceVersion)
	}
	if _, err := ParseCoordination(t.Mechanism); err != nil {
		return nil, err
	}
	if len(t.Seeds) == 0 {
		return nil, fmt.Errorf("chaos: trace: no seeds")
	}
	return &t, nil
}

// shrinker carries the fixed context of one ShrinkCell call.
type shrinker struct {
	w      Workload
	cell   Cell
	target Anomalies
	steps  int
}

// fold runs the candidate (plan, seeds) and returns the oracle's
// classification and first detail.
func (sh *shrinker) fold(ctx context.Context, plan FaultPlan, seeds []int64) (Anomalies, string, error) {
	mech, err := ParseCoordination(sh.cell.Mechanism)
	if err != nil {
		return Anomalies{}, "", err
	}
	oracle := NewOracle(sh.cell.Confluent)
	for _, seed := range seeds {
		if err := ctx.Err(); err != nil {
			return Anomalies{}, "", err
		}
		out, err := sh.w.Run(seed, plan, mech)
		if err != nil {
			return Anomalies{}, "", fmt.Errorf("seed %d: %w", seed, err)
		}
		oracle.Observe(seed, out)
	}
	detail := ""
	if d := oracle.Details(); len(d) > 0 {
		detail = d[0]
	}
	return oracle.Anomalies(), detail, nil
}

// reproduces is the ddmin predicate: the candidate event set yields
// exactly the target classification.
func (sh *shrinker) reproduces(ctx context.Context, events []Event) (bool, error) {
	sh.steps++
	plan, seeds := eventsPlan(sh.cell.Plan.Name, events)
	if len(seeds) == 0 {
		return false, nil
	}
	got, _, err := sh.fold(ctx, plan, seeds)
	if err != nil {
		return false, err
	}
	return got == sh.target, nil
}

// ddmin is Zeller's minimizing delta debugging over the event set. The
// input must satisfy the predicate; the result is 1-minimal: the final
// n == len(events) round tried every single-event removal and none
// reproduced.
func (sh *shrinker) ddmin(ctx context.Context, events []Event) ([]Event, error) {
	n := 2
	for len(events) >= 2 {
		chunk := (len(events) + n - 1) / n
		reduced := false
		// Try each subset (one chunk alone), then each complement (all
		// but one chunk).
		for start := 0; start < len(events); start += chunk {
			end := start + chunk
			if end > len(events) {
				end = len(events)
			}
			subset := events[start:end]
			ok, err := sh.reproduces(ctx, subset)
			if err != nil {
				return nil, err
			}
			if ok {
				events = append([]Event{}, subset...)
				n = 2
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		for start := 0; start < len(events); start += chunk {
			end := start + chunk
			if end > len(events) {
				end = len(events)
			}
			complement := append(append([]Event{}, events[:start]...), events[end:]...)
			ok, err := sh.reproduces(ctx, complement)
			if err != nil {
				return nil, err
			}
			if ok {
				events = complement
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(events) {
			break
		}
		n *= 2
		if n > len(events) {
			n = len(events)
		}
	}
	return events, nil
}

// ShrinkCell delta-debugs an anomalous cell down to a 1-minimal replayable
// trace. outcomes are the cell's recorded per-seed outcomes (outcomes[i] =
// seed i+1), used to pick the shortest seed prefix that already shows the
// cell's classification before any new runs happen; pass nil to have
// ShrinkCell re-run the cell first.
func ShrinkCell(ctx context.Context, w Workload, cell Cell, outcomes []Outcome) (*Trace, error) {
	if outcomes == nil {
		var pool *sim.Pool
		var err error
		outcomes, err = RunCell(ctx, w, cell, pool, 1, cell.Seeds+1)
		if err != nil {
			return nil, err
		}
	}
	target := FoldCell(cell, outcomes).Observed
	if !target.Any() {
		return nil, fmt.Errorf("chaos: %s under %s/%s: no anomaly to shrink", cell.Workload, cell.Mechanism, cell.Plan.Name)
	}

	// Oracle folding is prefix-monotone, so the shortest prefix of the
	// recorded outcomes already matching the classification is a free
	// first reduction of the schedule set.
	prefix := len(outcomes)
	for k := 1; k <= len(outcomes); k++ {
		oracle := NewOracle(cell.Confluent)
		for i := 0; i < k; i++ {
			oracle.Observe(int64(i+1), outcomes[i])
		}
		if oracle.Anomalies() == target {
			prefix = k
			break
		}
	}

	events := make([]Event, 0, prefix+4)
	for seed := 1; seed <= prefix; seed++ {
		events = append(events, Event{Kind: "seed", Seed: int64(seed)})
	}
	events = append(events, planEvents(cell.Plan)...)

	sh := &shrinker{w: w, cell: cell, target: target}
	if ok, err := sh.reproduces(ctx, events); err != nil {
		return nil, err
	} else if !ok {
		// Cannot happen for deterministic workloads: the prefix fold
		// already matched. Guard anyway so a non-reproducing input fails
		// loudly instead of shrinking garbage.
		return nil, fmt.Errorf("chaos: %s under %s/%s: cell anomalies did not reproduce from recorded seeds",
			cell.Workload, cell.Mechanism, cell.Plan.Name)
	}
	minimal, err := sh.ddmin(ctx, events)
	if err != nil {
		return nil, err
	}

	plan, seeds := eventsPlan(cell.Plan.Name, minimal)
	_, detail, err := sh.fold(ctx, plan, seeds)
	if err != nil {
		return nil, err
	}
	return &Trace{
		Version:   TraceVersion,
		Workload:  cell.Workload,
		Mechanism: cell.Mechanism,
		Confluent: cell.Confluent,
		Stripped:  cell.Stripped,
		BasePlan:  cell.Plan.Name,
		Plan:      plan,
		Seeds:     seeds,
		Anomalies: target,
		Detail:    detail,
		Events:    minimal,
		Steps:     sh.steps,
	}, nil
}

// ReshrinkTrace re-runs delta debugging over an existing trace's event set
// without repeating the sweep that produced it — the corpus-maintenance
// path behind `blazes verify -reshrink`: after the shrinker or a workload
// improves, stored traces can be re-minimized in place. The workload is
// resolved by name and the recorded classification is the target; if it no
// longer reproduces from the recorded events the trace is stale and an
// error says so. The result is a fresh 1-minimal trace with the same
// identity fields (workload, mechanism, base plan, anomalies).
func ReshrinkTrace(ctx context.Context, tr *Trace) (*Trace, error) {
	w, err := LookupWorkload(tr.Workload)
	if err != nil {
		return nil, err
	}
	cell := Cell{
		Workload:  tr.Workload,
		Mechanism: tr.Mechanism,
		Plan:      tr.Plan,
		Seeds:     len(tr.Seeds),
		Confluent: tr.Confluent,
		Stripped:  tr.Stripped,
	}
	events := tr.Events
	if len(events) == 0 {
		// Artifacts written before events were recorded: rebuild the event
		// set from the rendered plan and seeds.
		for _, s := range tr.Seeds {
			events = append(events, Event{Kind: "seed", Seed: s})
		}
		events = append(events, planEvents(tr.Plan)...)
	}
	sh := &shrinker{w: w, cell: cell, target: tr.Anomalies}
	if ok, err := sh.reproduces(ctx, events); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("chaos: reshrink %s under %s/%s: recorded anomalies no longer reproduce from the recorded events",
			tr.Workload, tr.Mechanism, tr.BasePlan)
	}
	minimal, err := sh.ddmin(ctx, events)
	if err != nil {
		return nil, err
	}
	plan, seeds := eventsPlan(tr.BasePlan, minimal)
	_, detail, err := sh.fold(ctx, plan, seeds)
	if err != nil {
		return nil, err
	}
	return &Trace{
		Version:   TraceVersion,
		Workload:  tr.Workload,
		Mechanism: tr.Mechanism,
		Confluent: tr.Confluent,
		Stripped:  tr.Stripped,
		BasePlan:  tr.BasePlan,
		Plan:      plan,
		Seeds:     seeds,
		Anomalies: tr.Anomalies,
		Detail:    detail,
		Events:    minimal,
		Steps:     sh.steps,
	}, nil
}

// ReplayResult is the verdict of re-executing a trace.
type ReplayResult struct {
	// Reproduced: the replay yielded exactly the trace's classification.
	Reproduced bool `json:"reproduced"`
	// Observed and Expected are the replayed and recorded classifications.
	Observed Anomalies `json:"observed"`
	Expected Anomalies `json:"expected"`
	// Detail is the oracle's first disagreement during the replay.
	Detail string `json:"detail,omitempty"`
}

// Replay re-executes a trace — workload resolved by name, every seed run
// under the minimized plan and mechanism, outcomes folded in seed order —
// and compares the classification against the recorded one. Runs are
// seed-deterministic, so a trace that reproduced when it was shrunk
// reproduces on every replay.
func Replay(ctx context.Context, tr *Trace) (*ReplayResult, error) {
	w, err := LookupWorkload(tr.Workload)
	if err != nil {
		return nil, err
	}
	cell := Cell{
		Workload:  tr.Workload,
		Mechanism: tr.Mechanism,
		Plan:      tr.Plan,
		Seeds:     len(tr.Seeds),
		Confluent: tr.Confluent,
		Stripped:  tr.Stripped,
	}
	sh := &shrinker{w: w, cell: cell, target: tr.Anomalies}
	observed, detail, err := sh.fold(ctx, tr.Plan, tr.Seeds)
	if err != nil {
		return nil, fmt.Errorf("chaos: replay %s under %s/%s: %w", tr.Workload, tr.Mechanism, tr.Plan.Name, err)
	}
	return &ReplayResult{
		Reproduced: observed == tr.Anomalies,
		Observed:   observed,
		Expected:   tr.Anomalies,
		Detail:     detail,
	}, nil
}
