package dataflow

import (
	"encoding/json"
	"strings"
	"testing"

	"blazes/internal/core"
	"blazes/internal/fd"
)

// cleanGraph is a small pipeline no lint check fires on: source → Map
// (confluent) → Count (confluent write) → sink, schemas consistent.
func cleanGraph() *Graph {
	g := NewGraph("clean")
	m := g.Component("Map").AddPath("in", "out", core.CR)
	m.OutSchema = map[string]fd.AttrSet{"out": fd.NewAttrSet("word", "batch")}
	g.Component("Count").AddPath("words", "counts", core.CW)
	g.Source("tweets", "Map", "in")
	g.Connect("words", "Map", "out", "Count", "words")
	g.Sink("counts", "Count", "counts")
	return g
}

func lintCodes(diags []LintDiagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Code)
	}
	return out
}

// one asserts exactly one diagnostic with the code and returns it. The
// graph must also pass Validate: every seeded defect here is advisory, so
// it belongs to lint alone (the no-double-report contract with Validate).
func one(t *testing.T, g *Graph, code string) LintDiagnostic {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("defect graph must still pass Validate (lint owns it), got: %v", err)
	}
	diags := LintGraph(g)
	var found []LintDiagnostic
	for _, d := range diags {
		if d.Code == code {
			found = append(found, d)
		}
	}
	if len(found) != 1 {
		t.Fatalf("want exactly one %s, got %v", code, lintCodes(diags))
	}
	return found[0]
}

func TestLintClean(t *testing.T) {
	g := cleanGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if diags := LintGraph(g); len(diags) != 0 {
		t.Fatalf("clean graph produced %v", diags)
	}
}

func TestLintSealKeyNotInSchema(t *testing.T) {
	g := cleanGraph()
	g.Stream("words").Seal = fd.NewAttrSet("campaign")
	d := one(t, g, CodeSealKeyNotInSchema)
	if d.Severity != SeverityError || d.Subject != "words" {
		t.Errorf("got %v", d)
	}
	if !strings.Contains(d.Message, "campaign") {
		t.Errorf("message should name the phantom attribute: %s", d.Message)
	}

	// Seal on a declared attribute is clean.
	g.Stream("words").Seal = fd.NewAttrSet("batch")
	for _, d := range LintGraph(g) {
		if d.Code == CodeSealKeyNotInSchema {
			t.Errorf("in-schema seal flagged: %v", d)
		}
	}
}

func TestLintGateNotInSchema(t *testing.T) {
	g := cleanGraph()
	g.Lookup("Count").SetPathAnn("words", "counts", core.OWGate("campaign"))
	d := one(t, g, CodeGateNotInSchema)
	if d.Severity != SeverityError || d.Subject != "Count" {
		t.Errorf("got %v", d)
	}

	// A gate the schema carries is clean (the seal-compat check may still
	// warn; only BLZ002 is asserted absent).
	g.Lookup("Count").SetPathAnn("words", "counts", core.OWGate("word"))
	for _, d := range LintGraph(g) {
		if d.Code == CodeGateNotInSchema {
			t.Errorf("in-schema gate flagged: %v", d)
		}
	}
}

func TestLintUnreachable(t *testing.T) {
	g := cleanGraph()
	g.Component("Audit").AddPath("in", "out", core.CR)
	d := one(t, g, CodeUnreachable)
	if d.Severity != SeverityWarning || d.Subject != "Audit" {
		t.Errorf("got %v", d)
	}

	// Without any source the check stands down: nothing is reachable by
	// definition and flagging every component would be noise.
	h := NewGraph("nosource")
	h.Component("A").AddPath("in", "out", core.CR)
	if diags := LintGraph(h); len(lintCodes(diags)) != 0 {
		t.Errorf("sourceless graph flagged: %v", diags)
	}
}

func TestLintAnnotationContradiction(t *testing.T) {
	g := cleanGraph()
	// The same from→to pair annotated confluent and order-sensitive.
	g.Lookup("Count").AddPath("words", "counts", core.OWStar())
	d := one(t, g, CodeAnnotationContradiction)
	if d.Severity != SeverityError || d.Subject != "Count" {
		t.Errorf("got %v", d)
	}
}

func TestLintAnnotationEmptyGateNoStar(t *testing.T) {
	g := cleanGraph()
	// Order-sensitive, empty gate, no * marking: claims known partitioning
	// but names no attributes. Only builder-built graphs can express this.
	g.Lookup("Count").SetPathAnn("words", "counts", core.Annotation{Write: true})
	d := one(t, g, CodeAnnotationContradiction)
	if !strings.Contains(d.Message, "empty gate") {
		t.Errorf("got %v", d)
	}
}

func TestLintSealIncompatible(t *testing.T) {
	g := cleanGraph()
	// Sealed on batch, but the consumer partitions on word and batch does
	// not determine word through any declared dependency.
	g.Lookup("Map").OutSchema = nil // keep BLZ001/BLZ002 out of the way
	g.Stream("words").Seal = fd.NewAttrSet("batch")
	g.Lookup("Count").SetPathAnn("words", "counts", core.OWGate("word"))
	d := one(t, g, CodeSealIncompatible)
	if d.Severity != SeverityWarning || d.Subject != "words" {
		t.Errorf("got %v", d)
	}

	// Sealing on the gate itself is compatible.
	g.Stream("words").Seal = fd.NewAttrSet("word")
	for _, d := range LintGraph(g) {
		if d.Code == CodeSealIncompatible {
			t.Errorf("matching seal flagged: %v", d)
		}
	}
}

func TestLintUnsealedCycle(t *testing.T) {
	g := NewGraph("cycle")
	g.Component("A").AddPath("in", "out", core.OWStar())
	g.Component("B").AddPath("in", "out", core.CR)
	g.Source("src", "A", "in")
	g.Connect("ab", "A", "out", "B", "in")
	g.Connect("ba", "B", "out", "A", "in")
	d := one(t, g, CodeUnsealedCycle)
	if d.Severity != SeverityWarning || d.Subject != "A" {
		t.Errorf("got %v", d)
	}
	if !strings.Contains(d.Message, "{A, B}") {
		t.Errorf("message should list the cycle members: %s", d.Message)
	}

	// Any of the three outs stands the warning down: a sealed internal
	// stream, coordination on a member, or no order-sensitive member.
	seal := g.Clone()
	seal.Stream("ab").Seal = fd.NewAttrSet("k")
	coord := g.Clone()
	coord.Lookup("B").Coordination = CoordSequenced
	conf := g.Clone()
	conf.Lookup("A").SetPathAnn("in", "out", core.CW)
	for name, h := range map[string]*Graph{"sealed": seal, "coordinated": coord, "confluent": conf} {
		for _, d := range LintGraph(h) {
			if d.Code == CodeUnsealedCycle {
				t.Errorf("%s cycle flagged: %v", name, d)
			}
		}
	}

	// A self-loop is a one-member cycle.
	h := NewGraph("self")
	h.Component("A").AddPath("in", "out", core.OWStar())
	h.Source("src", "A", "in")
	h.Connect("loop", "A", "out", "A", "in")
	if d := one(t, h, CodeUnsealedCycle); !strings.Contains(d.Message, "{A}") {
		t.Errorf("got %v", d)
	}
}

// TestLintOrderingAndString pins the deterministic errors-first sort and
// the rendered form.
func TestLintOrderingAndString(t *testing.T) {
	g := cleanGraph()
	g.Component("Audit").AddPath("in", "out", core.CR) // BLZ003 warning
	g.Stream("words").Seal = fd.NewAttrSet("campaign") // BLZ001 error
	diags := LintGraph(g)
	codes := lintCodes(diags)
	if len(codes) != 2 || codes[0] != CodeSealKeyNotInSchema || codes[1] != CodeUnreachable {
		t.Fatalf("want errors before warnings [BLZ001 BLZ003], got %v", codes)
	}
	if s := diags[0].String(); !strings.HasPrefix(s, "error BLZ001 words: ") {
		t.Errorf("String() = %q", s)
	}
}

func TestLintSeverityJSON(t *testing.T) {
	for _, sev := range []LintSeverity{SeverityWarning, SeverityError} {
		data, err := json.Marshal(sev)
		if err != nil {
			t.Fatal(err)
		}
		var back LintSeverity
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != sev {
			t.Errorf("round trip %v -> %s -> %v", sev, data, back)
		}
	}
	var bad LintSeverity
	if err := json.Unmarshal([]byte(`"fatal"`), &bad); err == nil {
		t.Error("unknown severity name should fail to unmarshal")
	}
}

// TestLintValidateOwnership pins the split: structural breakage is
// Validate's alone (lint stays silent on those streams), advisory defects
// are lint's alone (Validate passes). A broken graph must not panic lint.
func TestLintValidateOwnership(t *testing.T) {
	g := NewGraph("broken")
	g.Component("A") // pathless: Validate's error
	g.Connect("ghost", "A", "out", "Nowhere", "in")
	g.Connect("void", "", "", "", "")
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should reject the broken graph")
	}
	for _, d := range LintGraph(g) {
		switch d.Subject {
		case "ghost", "void":
			t.Errorf("lint re-reported a Validate defect: %v", d)
		}
	}
}
