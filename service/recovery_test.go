package service

import (
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// newDurable opens a journaled server on dir and waits out the boot
// replay, failing the test on any error.
func newDurable(t *testing.T, dir string, opts Options) *Server {
	t.Helper()
	opts.JournalDir = dir
	srv, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitRecovered(t.Context()); err != nil {
		t.Fatal(err)
	}
	return srv
}

// randomOp draws one mutation from a pool of ops against the wordcount
// spec. Some draws are invalid in some states (removing an edge that is
// not there); the caller tracks which ops were acknowledged, which is
// exactly the durability contract under test.
func randomOp(rng *rand.Rand) MutateOp {
	switch rng.Intn(7) {
	case 0:
		return MutateOp{Op: "seal", Stream: "tweets", Key: []string{"batch"}}
	case 1:
		return MutateOp{Op: "seal", Stream: "tweets"} // unseal
	case 2:
		return MutateOp{Op: "annotate", Component: "Count", From: "words", To: "counts", Label: "OW", Subscript: []string{"word", "batch"}}
	case 3:
		return MutateOp{Op: "annotate", Component: "Splitter", From: "tweets", To: "words", Label: "OR", Subscript: []string{"id"}}
	case 4:
		return MutateOp{Op: "connect", Stream: "tap", From: "Count.counts", To: ""}
	case 5:
		return MutateOp{Op: "remove-edge", Stream: "tap"}
	default:
		return MutateOp{Op: "annotate", Component: "Commit", From: "counts", To: "db", Label: "CW"}
	}
}

// TestRecoveryDifferential is the acceptance check for the durability
// tentpole: feed many sessions randomized op sequences through a journaled
// server, crash it (no Close — the journal must already be durable),
// recover, and require every recovered session's analysis to be
// byte-identical to a fresh in-memory server fed the same acknowledged
// sequence. Only acknowledged ops count: that is the contract.
func TestRecoveryDifferential(t *testing.T) {
	const sessions = 100
	dir := t.TempDir()
	srv := newDurable(t, dir, Options{MaxSessions: sessions})
	h := srv.Handler()
	spec := wordcountSpecText(t)
	rng := rand.New(rand.NewSource(7))

	acked := make([][]MutateOp, sessions)
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("s%d", i+1)
		if code, body := call(t, h, "POST", "/v1/sessions", CreateRequest{Name: id, Spec: spec}); code != http.StatusCreated {
			t.Fatalf("create %s: %d %s", id, code, body)
		}
		n := 3 + rng.Intn(8)
		for k := 0; k < n; k++ {
			op := randomOp(rng)
			code, body := call(t, h, "POST", "/v1/sessions/"+id+"/mutate", MutateRequest{Ops: []MutateOp{op}})
			switch code {
			case http.StatusOK:
				acked[i] = append(acked[i], op)
			case http.StatusBadRequest:
				// invalid in this state; not acknowledged, not expected back
			default:
				t.Fatalf("mutate %s: %d %s", id, code, body)
			}
		}
	}
	// Crash: drop the server without Close. Every acknowledged append has
	// already been fsynced, so the journal on disk is the full record.
	srv = nil

	re := newDurable(t, dir, Options{MaxSessions: sessions})
	defer re.Close()
	rh := re.Handler()
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("s%d", i+1)
		code, got := call(t, rh, "GET", "/v1/sessions/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("recovered get %s: %d %s", id, code, got)
		}
		if !strings.Contains(got, `"recovered": true`) {
			t.Errorf("%s should report recovered: %s", id, got)
		}
		if want := fmt.Sprintf(`"version": %d`, len(acked[i])); !strings.Contains(got, want) {
			t.Errorf("%s: want %s in %s", id, want, got)
		}

		_, gotRep := call(t, rh, "POST", "/v1/sessions/"+id+"/analyze", nil)

		// Differential oracle: a fresh in-memory server fed the same
		// acknowledged sequence must produce the same bytes.
		fresh := New(Options{})
		fh := fresh.Handler()
		if code, body := call(t, fh, "POST", "/v1/sessions", CreateRequest{Name: id, Spec: spec}); code != http.StatusCreated {
			t.Fatalf("fresh create: %d %s", code, body)
		}
		if len(acked[i]) > 0 {
			if code, body := call(t, fh, "POST", "/v1/sessions/s1/mutate", MutateRequest{Ops: acked[i]}); code != http.StatusOK {
				t.Fatalf("fresh replay %s: %d %s", id, code, body)
			}
		}
		_, wantRep := call(t, fh, "POST", "/v1/sessions/s1/analyze", nil)
		if gotRep != wantRep {
			t.Errorf("%s: recovered analysis differs from fresh replay\n got: %s\nwant: %s", id, gotRep, wantRep)
		}
	}
}

// TestRecoveryTornTail appends garbage after a valid journal (a torn final
// write) and requires recovery to keep every acknowledged op, drop the
// tail, and stay writable.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	srv := newDurable(t, dir, Options{})
	h := srv.Handler()
	spec := wordcountSpecText(t)
	if code, body := call(t, h, "POST", "/v1/sessions", CreateRequest{Name: "keep", Spec: spec}); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	seal := MutateOp{Op: "seal", Stream: "tweets", Key: []string{"batch"}}
	if code, body := call(t, h, "POST", "/v1/sessions/s1/mutate", MutateRequest{Ops: []MutateOp{seal}}); code != http.StatusOK {
		t.Fatalf("mutate: %d %s", code, body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no wal segments (%v)", err)
	}
	f, err := os.OpenFile(wals[len(wals)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := newDurable(t, dir, Options{})
	defer re.Close()
	rh := re.Handler()
	if code, body := call(t, rh, "GET", "/v1/sessions/s1", nil); code != http.StatusOK || !strings.Contains(body, `"version": 1`) {
		t.Fatalf("recovered s1: %d %s", code, body)
	}
	// The server must still be writable, and ids must not be reused.
	if code, body := call(t, rh, "POST", "/v1/sessions", CreateRequest{Name: "after", Spec: spec}); code != http.StatusCreated || !strings.Contains(body, `"session": "s2"`) {
		t.Fatalf("create after torn-tail recovery: %d %s", code, body)
	}
}

// TestRecoveryDeleteAndEvict checks that deletes and LRU evictions are
// part of the durable history: a deleted session stays deleted after a
// restart, and an evicted one comes back as a tombstone, not a session.
func TestRecoveryDeleteAndEvict(t *testing.T) {
	dir := t.TempDir()
	srv := newDurable(t, dir, Options{MaxSessions: 2})
	h := srv.Handler()
	spec := wordcountSpecText(t)
	for i := 1; i <= 3; i++ {
		if code, body := call(t, h, "POST", "/v1/sessions", CreateRequest{Name: fmt.Sprintf("n%d", i), Spec: spec}); code != http.StatusCreated {
			t.Fatalf("create %d: %d %s", i, code, body)
		}
	}
	// s1 was evicted by the LRU bound; now delete s2 explicitly.
	if code, _ := call(t, h, "DELETE", "/v1/sessions/s2", nil); code != http.StatusNoContent {
		t.Fatalf("delete s2: %d", code)
	}
	srv = nil // crash

	re := newDurable(t, dir, Options{MaxSessions: 2})
	defer re.Close()
	rh := re.Handler()
	if code, body := call(t, rh, "GET", "/v1/sessions/s1", nil); code != http.StatusGone || !strings.Contains(body, `"evicted"`) {
		t.Errorf("s1 should be a tombstone after restart: %d %s", code, body)
	}
	if code, _ := call(t, rh, "GET", "/v1/sessions/s2", nil); code != http.StatusNotFound {
		t.Errorf("s2 should stay deleted after restart (code %d)", code)
	}
	if code, body := call(t, rh, "GET", "/v1/sessions/s3", nil); code != http.StatusOK {
		t.Errorf("s3 should survive restart: %d %s", code, body)
	}
	// New ids continue after the highest ever assigned.
	if code, body := call(t, rh, "POST", "/v1/sessions", CreateRequest{Spec: spec}); code != http.StatusCreated || !strings.Contains(body, `"session": "s4"`) {
		t.Errorf("create after restart: %d %s", code, body)
	}
}

// TestRecoverySnapshotCompaction drives enough records to trigger
// snapshots and checks the compacted journal still recovers everything.
func TestRecoverySnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	srv := newDurable(t, dir, Options{SnapshotEvery: 8})
	h := srv.Handler()
	spec := wordcountSpecText(t)
	if code, body := call(t, h, "POST", "/v1/sessions", CreateRequest{Name: "snap", Spec: spec}); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	seal := MutateOp{Op: "seal", Stream: "tweets", Key: []string{"batch"}}
	unseal := MutateOp{Op: "seal", Stream: "tweets"}
	for i := 0; i < 20; i++ {
		op := seal
		if i%2 == 1 {
			op = unseal
		}
		if code, body := call(t, h, "POST", "/v1/sessions/s1/mutate", MutateRequest{Ops: []MutateOp{op}}); code != http.StatusOK {
			t.Fatalf("mutate %d: %d %s", i, code, body)
		}
	}
	st := srv.jrn.Stats()
	if st.Snapshots == 0 {
		t.Fatalf("expected at least one snapshot, stats %+v", st)
	}
	srv = nil // crash

	re := newDurable(t, dir, Options{})
	defer re.Close()
	rh := re.Handler()
	if code, body := call(t, rh, "GET", "/v1/sessions/s1", nil); code != http.StatusOK || !strings.Contains(body, `"version": 20`) {
		t.Fatalf("recovered s1: %d %s", code, body)
	}
}

// TestReadOnlyWhileRecovering pins the degradation contract: while the
// boot replay runs, writes and analysis shed with 503 + Retry-After, while
// list/get/healthz/stats keep answering.
func TestReadOnlyWhileRecovering(t *testing.T) {
	srv := New(Options{})
	srv.recovering.Store(true)
	h := srv.Handler()
	spec := wordcountSpecText(t)
	if code, body := call(t, h, "POST", "/v1/sessions", CreateRequest{Spec: spec}); code != http.StatusServiceUnavailable {
		t.Fatalf("create during recovery: %d %s", code, body)
	}
	if code, _ := call(t, h, "POST", "/v1/sessions/s1/analyze", nil); code != http.StatusServiceUnavailable {
		t.Fatal("analyze should shed during recovery")
	}
	if code, body := call(t, h, "GET", "/v1/sessions", nil); code != http.StatusOK || !strings.Contains(body, `"recovering": true`) {
		t.Fatalf("list during recovery: %d %s", code, body)
	}
	if code, body := call(t, h, "GET", "/healthz", nil); code != http.StatusOK || !strings.Contains(body, `"recovering": true`) {
		t.Fatalf("healthz during recovery: %d %s", code, body)
	}
	if code, body := call(t, h, "GET", "/v1/stats", nil); code != http.StatusOK || !strings.Contains(body, `"read_only_rejected": 2`) {
		t.Fatalf("stats during recovery: %d %s", code, body)
	}
	srv.recovering.Store(false)
	if code, body := call(t, h, "POST", "/v1/sessions", CreateRequest{Spec: spec}); code != http.StatusCreated {
		t.Fatalf("create after recovery: %d %s", code, body)
	}
}

// TestBrokenJournalPoisonsWrites pins the poisoned read-only mode: after a
// failed append the server keeps serving reads but refuses new writes.
func TestBrokenJournalPoisonsWrites(t *testing.T) {
	srv := New(Options{})
	h := srv.Handler()
	spec := wordcountSpecText(t)
	if code, body := call(t, h, "POST", "/v1/sessions", CreateRequest{Spec: spec}); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	srv.journalBroken.Store(true)
	if code, _ := call(t, h, "POST", "/v1/sessions", CreateRequest{Spec: spec}); code != http.StatusServiceUnavailable {
		t.Fatal("create should shed when the journal is broken")
	}
	seal := MutateOp{Op: "seal", Stream: "tweets", Key: []string{"batch"}}
	if code, _ := call(t, h, "POST", "/v1/sessions/s1/mutate", MutateRequest{Ops: []MutateOp{seal}}); code != http.StatusServiceUnavailable {
		t.Fatal("mutate should shed when the journal is broken")
	}
	// Reads — including analysis, which mutates nothing durable — survive.
	if code, _ := call(t, h, "POST", "/v1/sessions/s1/analyze", nil); code != http.StatusOK {
		t.Fatal("analyze should keep working when the journal is broken")
	}
	if code, body := call(t, h, "GET", "/v1/stats", nil); code != http.StatusOK || !strings.Contains(body, `"journal_broken": true`) {
		t.Fatalf("stats should report journal_broken: %d %s", code, body)
	}
}
