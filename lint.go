package blazes

import "blazes/internal/dataflow"

// LintDiagnostic is one advisory finding about a dataflow graph, carrying a
// stable BLZnnn code, a severity, and the component or stream it concerns.
//
// Lint complements Graph.Validate: Validate rejects structurally broken
// graphs (unknown endpoints, pathless components) with hard errors, while
// Lint flags well-formed graphs whose declared metadata is contradictory
// (error severity) or carries a known divergence or dead-weight risk
// (warning severity). A defect is reported by exactly one of the two.
type LintDiagnostic = dataflow.LintDiagnostic

// LintSeverity ranks a lint diagnostic.
type LintSeverity = dataflow.LintSeverity

// The lint severities.
const (
	SeverityWarning = dataflow.SeverityWarning
	SeverityError   = dataflow.SeverityError
)

// The stable lint diagnostic codes. Tooling may match on them; a code is
// never renumbered or reused.
const (
	// CodeSealKeyNotInSchema (error): a stream is sealed on a key its
	// producer's declared output schema does not contain.
	CodeSealKeyNotInSchema = dataflow.CodeSealKeyNotInSchema
	// CodeGateNotInSchema (error): an OR/OW gate names attributes the
	// feeding stream's schema does not carry.
	CodeGateNotInSchema = dataflow.CodeGateNotInSchema
	// CodeUnreachable (warning): no source stream reaches the component.
	CodeUnreachable = dataflow.CodeUnreachable
	// CodeAnnotationContradiction (error): the same path is declared both
	// confluent and order-sensitive, or is order-sensitive with neither a
	// gate nor the * marking.
	CodeAnnotationContradiction = dataflow.CodeAnnotationContradiction
	// CodeSealIncompatible (warning): a seal cannot protect the
	// order-sensitive path it feeds (the key does not determine the gate).
	CodeSealIncompatible = dataflow.CodeSealIncompatible
	// CodeUnsealedCycle (warning): a cycle with an order-sensitive member
	// has no sealed internal stream and no coordination applied.
	CodeUnsealedCycle = dataflow.CodeUnsealedCycle
)

// Lint runs every graph diagnostic over g and returns the findings sorted
// errors-first, then by code and subject, so the output is deterministic.
// A nil or empty result means the graph is clean.
func Lint(g *Graph) []LintDiagnostic {
	return dataflow.LintGraph(g)
}

// HasLintErrors reports whether any diagnostic has error severity — the
// condition under which `blazes lint` exits non-zero.
func HasLintErrors(diags []LintDiagnostic) bool {
	for _, d := range diags {
		if d.Severity == SeverityError {
			return true
		}
	}
	return false
}

// Lint runs the graph diagnostics over the session's current graph. Like
// the read-only inspectors it does not count as a mutation and does not
// disturb the incremental analysis state.
func (s *Session) Lint() []LintDiagnostic {
	s.mu.Lock()
	defer s.mu.Unlock()
	return dataflow.LintGraph(s.inc.Graph())
}
