package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("order = %v", got)
	}
	if s.Now() != 30 {
		t.Errorf("now = %v, want 30", s.Now())
	}
}

func TestFIFOTieBreakAtSameInstant(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events must run FIFO; got %v", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New(1)
	var at Time
	s.At(100, func() {
		s.After(50, func() { at = s.Now() })
	})
	s.Run()
	if at != 150 {
		t.Errorf("After fired at %v, want 150", at)
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	s := New(1)
	fired := false
	s.At(100, func() {
		s.At(10, func() { fired = true }) // in the past
	})
	s.Run()
	if !fired {
		t.Error("past-scheduled event must still fire")
	}
	if s.Now() != 100 {
		t.Errorf("now = %v, want 100 (clamped)", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(25)
	if !reflect.DeepEqual(fired, []Time{10, 20}) {
		t.Errorf("fired = %v", fired)
	}
	if s.Now() != 25 {
		t.Errorf("now = %v, want 25", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Microsecond).String(); got != "1.500ms" {
		t.Errorf("String = %q", got)
	}
	if got := Second.Seconds(); got != 1.0 {
		t.Errorf("Seconds = %v", got)
	}
}

// deliverySequence runs a fixed message pattern through a lossy, reordering
// link and records the delivered order.
func deliverySequence(seed int64, cfg LinkConfig, n int) []int {
	s := New(seed)
	var got []int
	l := NewLink(s, cfg, func(m any) { got = append(got, m.(int)) })
	for i := 0; i < n; i++ {
		i := i
		s.At(Time(i)*10, func() { l.Send(i) })
	}
	s.Run()
	return got
}

// TestDeterminismSameSeed: identical seeds must produce identical traces —
// the property all replay-based tests in this repository rely on.
func TestDeterminismSameSeed(t *testing.T) {
	cfg := LinkConfig{MinDelay: 1, MaxDelay: 500, DupProb: 0.2, DropProb: 0.1}
	prop := func(seed int64) bool {
		a := deliverySequence(seed, cfg, 50)
		b := deliverySequence(seed, cfg, 50)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Errorf("same seed must give same trace: %v", err)
	}
}

// TestDifferentSeedsReorder: with wide delay bounds, different seeds must
// produce different delivery orders (this is the nondeterminism the paper's
// analysis guards against).
func TestDifferentSeedsReorder(t *testing.T) {
	cfg := LinkConfig{MinDelay: 1, MaxDelay: 5000}
	base := deliverySequence(1, cfg, 50)
	distinct := false
	for seed := int64(2); seed < 10; seed++ {
		if !reflect.DeepEqual(base, deliverySequence(seed, cfg, 50)) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Error("expected at least one differing delivery order across seeds")
	}
}

func TestLinkReliableDeliversAll(t *testing.T) {
	cfg := LinkConfig{MinDelay: 1, MaxDelay: 100}
	got := deliverySequence(7, cfg, 200)
	if len(got) != 200 {
		t.Fatalf("delivered %d of 200", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate %d on reliable link", v)
		}
		seen[v] = true
	}
}

func TestLinkDuplication(t *testing.T) {
	s := New(3)
	count := map[int]int{}
	l := NewLink(s, LinkConfig{MinDelay: 1, MaxDelay: 10, DupProb: 1.0}, func(m any) { count[m.(int)]++ })
	for i := 0; i < 20; i++ {
		l.Send(i)
	}
	s.Run()
	for i := 0; i < 20; i++ {
		if count[i] != 2 {
			t.Fatalf("message %d delivered %d times, want 2 (DupProb=1)", i, count[i])
		}
	}
	if st := l.Stats(); st.Duplicate != 20 || st.Sent != 20 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkDrop(t *testing.T) {
	s := New(4)
	delivered := 0
	l := NewLink(s, LinkConfig{MinDelay: 1, MaxDelay: 10, DropProb: 1.0}, func(any) { delivered++ })
	for i := 0; i < 20; i++ {
		l.Send(i)
	}
	s.Run()
	if delivered != 0 {
		t.Errorf("delivered = %d, want 0 (DropProb=1)", delivered)
	}
	if st := l.Stats(); st.Dropped != 20 {
		t.Errorf("stats = %+v", st)
	}
}

// TestLinkDropRateApproximates checks the drop probability statistically.
func TestLinkDropRateApproximates(t *testing.T) {
	s := New(5)
	delivered := 0
	l := NewLink(s, LinkConfig{MinDelay: 1, MaxDelay: 2, DropProb: 0.3}, func(any) { delivered++ })
	const n = 5000
	for i := 0; i < n; i++ {
		l.Send(i)
	}
	s.Run()
	rate := 1 - float64(delivered)/float64(n)
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("empirical drop rate = %.3f, want ≈0.3", rate)
	}
}

// TestLinkConfigSwappedDelaysNormalized: MaxDelay < MinDelay is tolerated.
func TestLinkConfigSwappedDelaysNormalized(t *testing.T) {
	s := New(6)
	n := 0
	l := NewLink(s, LinkConfig{MinDelay: 100, MaxDelay: 1}, func(any) { n++ })
	l.Send(1)
	s.Run()
	if n != 1 {
		t.Error("message lost with swapped delay bounds")
	}
}

// TestSimRandDeterministic pins that the exposed RNG is seed-stable.
func TestSimRandDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 10; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("Rand() must be deterministic per seed")
		}
	}
	_ = rand.Int // keep math/rand import for doc purposes
}
