// Package linttest runs an analyzer over a testdata package and checks its
// findings against expectation comments, the same workflow analysistest
// gives x/tools analyzers — reimplemented on the repo's own loader so the
// zero-dependency stance holds for the tests too.
//
// Expectations are written in the source under test:
//
//	ch <- k // want "channel send escapes iteration order"
//
// asserts that a diagnostic whose message contains the quoted substring is
// reported on that line. A comment line of its own can also expect a
// diagnostic on the line below it:
//
//	// want-next "needs a reason"
//	//lint:allow maporder
//
// (needed exactly there: a reasonless //lint:allow marker is itself the
// finding, and appending the expectation to the marker line would become
// its reason). Every want must be matched by a diagnostic and every
// diagnostic by a want; either leftover fails the test.
package linttest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"blazes/internal/lint"
)

// wantRE pulls the quoted substrings out of want comments.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one parsed want comment, pinned to the line the
// diagnostic must land on.
type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

// Run loads the module rooted at srcDir, analyzes the packages matching
// pattern with the named analyzer (scope cleared, so it applies to the
// testdata packages), and compares findings against want comments.
func Run(t *testing.T, analyzer, srcDir string, patterns ...string) {
	t.Helper()
	a, err := lint.New(analyzer)
	if err != nil {
		t.Fatal(err)
	}
	a.Scope = nil
	pkgs, err := lint.Load(srcDir, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %v under %s", patterns, srcDir)
	}
	for _, pkg := range pkgs {
		wants := collectWants(t, pkg)
		diags := lint.Analyze(pkg, []*lint.Analyzer{a})
		for _, d := range diags {
			if !claim(wants, d.Pos, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s [%s]", pkg.ImportPath, d, d.Check)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", pkg.ImportPath, w.file, w.line, w.substr)
			}
		}
	}
}

// claim marks the first unmatched expectation covering the diagnostic.
func claim(wants []*expectation, pos token.Position, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && strings.Contains(message, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants scans every comment of the package for want markers.
func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				offset := 0
				switch {
				case strings.HasPrefix(text, "want-next "):
					text, offset = strings.TrimPrefix(text, "want-next "), 1
				case strings.HasPrefix(text, "want "):
					text = strings.TrimPrefix(text, "want ")
				default:
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: want comment without a quoted substring", pos.Filename, pos.Line)
				}
				for _, m := range matches {
					substr, err := unquoteWant(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want string %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{
						file:   pos.Filename,
						line:   pos.Line + offset,
						substr: substr,
					})
				}
			}
		}
	}
	return wants
}

// unquoteWant undoes the minimal escaping want strings need (\" and \\).
func unquoteWant(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i == len(s) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch s[i] {
		case '"', '\\':
			b.WriteByte(s[i])
		default:
			return "", fmt.Errorf(`only \" and \\ escapes are supported`)
		}
	}
	return b.String(), nil
}
