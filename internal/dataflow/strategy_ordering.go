package dataflow

// StrategyOrdering names the ordering strategy: M2 dynamic ordering by
// default, M1 sequencing under PreferSequencing (Figure 5).
const StrategyOrdering = "ordering"

func init() { RegisterStrategy(orderingStrategy{}) }

type orderingStrategy struct{}

func (orderingStrategy) Name() string { return StrategyOrdering }

func (orderingStrategy) Summary() string {
	return "total order over inputs: M2 dynamic ordering service by default, M1 global sequencer under PreferSequencing — one coordination round trip per message"
}

func (orderingStrategy) Plan(ctx *StrategyContext) (Strategy, bool) {
	if !ctx.Origin {
		// Seal consumers need the punctuation protocol installed, not an
		// order imposed; let the chain fall through to sealing.
		return Strategy{}, false
	}
	mech, reason := CoordDynamicOrder,
		"no compatible seal available; replicas must process state-modifying events in a single order"
	if ctx.PreferSequencing {
		mech, reason = CoordSequenced,
			"no compatible seal available; replay-based fault tolerance requires a preordained total order"
	}
	return Strategy{
		Component: ctx.Component.Name,
		Mechanism: mech,
		Inputs:    allInputStreams(ctx.Graph, ctx.Component),
		Reason:    reason,
	}, true
}
