package blazes

import (
	"errors"
	"fmt"
	"sort"

	"blazes/internal/dataflow"
	"blazes/internal/fd"
)

// GraphBuilder constructs an annotated dataflow graph fluently. Errors are
// deferred: every method keeps accepting calls after a mistake, and Build
// returns all collected problems at once (joined with errors.Join), so a
// construction site reads as a single declarative block:
//
//	g, err := blazes.NewGraphBuilder("wordcount").
//		ComponentPath("Splitter", "tweets", "words", blazes.CR).
//		ComponentPath("Count", "words", "counts", blazes.OWGate("word", "batch")).
//		ComponentPath("Commit", "counts", "db", blazes.CW).
//		Source("tweets", "Splitter", "tweets").
//		Stream("words", "Splitter", "words", "Count", "words").
//		Stream("counts", "Count", "counts", "Commit", "counts").
//		Sink("db", "Commit", "db").
//		Seal("tweets", "batch").
//		Build()
//
// For richer per-component configuration (replication, lineage, output
// schemas) use Component, which returns a ComponentBuilder.
type GraphBuilder struct {
	g     *dataflow.Graph
	seen  map[string]bool // declared stream names
	seals map[string]AttrSet
	reps  []string
	errs  []error
}

// NewGraphBuilder starts a builder for a named dataflow.
func NewGraphBuilder(name string) *GraphBuilder {
	return &GraphBuilder{
		g:     dataflow.NewGraph(name),
		seen:  map[string]bool{},
		seals: map[string]AttrSet{},
	}
}

func (b *GraphBuilder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Component declares (or revisits) a component and returns its builder.
func (b *GraphBuilder) Component(name string) *ComponentBuilder {
	if name == "" {
		b.errf("blazes: component name must be non-empty")
	}
	return &ComponentBuilder{b: b, c: b.g.Component(name)}
}

// ComponentPath is shorthand for Component(name).Path(from, to, ann) when a
// component needs exactly one annotated path.
func (b *GraphBuilder) ComponentPath(name, from, to string, ann Annotation) *GraphBuilder {
	b.Component(name).Path(from, to, ann)
	return b
}

func (b *GraphBuilder) declare(name string) {
	if name == "" {
		b.errf("blazes: stream name must be non-empty")
		return
	}
	if b.seen[name] {
		b.errf("blazes: duplicate stream name %q", name)
		return
	}
	b.seen[name] = true
}

// Source declares an external input stream feeding toComp.toIface.
func (b *GraphBuilder) Source(name, toComp, toIface string) *GraphBuilder {
	b.declare(name)
	b.g.Source(name, toComp, toIface)
	return b
}

// Sink declares an external output stream leaving fromComp.fromIface.
func (b *GraphBuilder) Sink(name, fromComp, fromIface string) *GraphBuilder {
	b.declare(name)
	b.g.Sink(name, fromComp, fromIface)
	return b
}

// Stream wires fromComp.fromIface to toComp.toIface.
func (b *GraphBuilder) Stream(name, fromComp, fromIface, toComp, toIface string) *GraphBuilder {
	b.declare(name)
	b.g.Connect(name, fromComp, fromIface, toComp, toIface)
	return b
}

// Seal annotates the named stream with Seal on the given key attributes.
// The stream may be declared before or after this call; an unknown name is
// reported by Build.
func (b *GraphBuilder) Seal(stream string, key ...string) *GraphBuilder {
	if len(key) == 0 {
		b.errf("blazes: Seal(%q) needs at least one key attribute", stream)
		return b
	}
	b.seals[stream] = fd.NewAttrSet(key...)
	return b
}

// Replicate marks the named stream as replicated (consumed by multiple
// component instances). The stream may be declared before or after this
// call; an unknown name is reported by Build.
func (b *GraphBuilder) Replicate(stream string) *GraphBuilder {
	b.reps = append(b.reps, stream)
	return b
}

// Build validates the accumulated graph and returns it, or every collected
// construction error joined into one.
func (b *GraphBuilder) Build() (*Graph, error) {
	errs := append([]error(nil), b.errs...)
	for _, name := range b.reps {
		s := b.g.Stream(name)
		if s == nil {
			errs = append(errs, fmt.Errorf("blazes: Replicate(%q): unknown stream (declared: %v)", name, streamNames(b.g)))
			continue
		}
		s.Rep = true
	}
	for _, name := range sortedSealNames(b.seals) {
		s := b.g.Stream(name)
		if s == nil {
			errs = append(errs, fmt.Errorf("blazes: Seal(%q): unknown stream (declared: %v)", name, streamNames(b.g)))
			continue
		}
		s.Seal = b.seals[name]
	}
	if err := b.g.Validate(); err != nil {
		// Validate itself aggregates with errors.Join; flatten so Build's
		// own join exposes every individual problem.
		if joined, ok := err.(interface{ Unwrap() []error }); ok {
			errs = append(errs, joined.Unwrap()...)
		} else {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return b.g, nil
}

// MustBuild is Build for static graphs known to be well-formed; it panics
// on error.
func (b *GraphBuilder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// ComponentBuilder configures one component; it is returned by
// GraphBuilder.Component and chains back to the graph via Graph.
type ComponentBuilder struct {
	b *GraphBuilder
	c *dataflow.Component
}

// Path declares an annotated from→to path; interfaces are created on first
// use.
func (cb *ComponentBuilder) Path(from, to string, ann Annotation) *ComponentBuilder {
	if from == "" || to == "" {
		cb.b.errf("blazes: component %q: path needs non-empty interface names", cb.c.Name)
		return cb
	}
	cb.c.AddPath(from, to, ann)
	return cb
}

// Replicated marks the component (and hence its outputs) as replicated.
func (cb *ComponentBuilder) Replicated() *ComponentBuilder {
	cb.c.Rep = true
	return cb
}

// Deps attaches injective functional-dependency lineage (white box).
func (cb *ComponentBuilder) Deps(deps *FDSet) *ComponentBuilder {
	cb.c.Deps = deps
	return cb
}

// OutputSchema declares the attribute schema of an output interface,
// enabling seal-key chasing through the component.
func (cb *ComponentBuilder) OutputSchema(iface string, attrs ...string) *ComponentBuilder {
	if cb.c.OutSchema == nil {
		cb.c.OutSchema = map[string]AttrSet{}
	}
	cb.c.OutSchema[iface] = fd.NewAttrSet(attrs...)
	return cb
}

// Graph returns to the enclosing GraphBuilder for further chaining.
func (cb *ComponentBuilder) Graph() *GraphBuilder { return cb.b }

func sortedSealNames(m map[string]AttrSet) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func streamNames(g *dataflow.Graph) []string {
	var out []string
	for _, s := range g.Streams() {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}
