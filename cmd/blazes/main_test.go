package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The command is driven in-process through run(), pinning the documented
// 0/1/2 exit-code contract and the -json output against golden files.
// Regenerate goldens with:
//
//	go test ./cmd/blazes -run TestGolden -update

var update = flag.Bool("update", false, "rewrite golden files")

const (
	wordcountSpec = "../../internal/spec/testdata/wordcount.blazes"
	adreportSpec  = "../../internal/spec/testdata/adreport.blazes"
)

// exec runs the command and captures its streams.
func exec(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n got: %s\nwant: %s", path, got, want)
	}
}

func TestGoldenWordcountJSON(t *testing.T) {
	code, stdout, stderr := exec(t, "-spec", wordcountSpec, "-json")
	if code != exitOK || stderr != "" {
		t.Fatalf("code = %d, stderr = %q", code, stderr)
	}
	checkGolden(t, "wordcount.json", stdout)
}

func TestGoldenWordcountSealedRepairJSON(t *testing.T) {
	code, stdout, stderr := exec(t, "-spec", wordcountSpec, "-seal", "tweets=batch", "-repair", "-json")
	if code != exitOK || stderr != "" {
		t.Fatalf("code = %d, stderr = %q", code, stderr)
	}
	checkGolden(t, "wordcount_sealed_repair.json", stdout)
}

func TestGoldenAdreportCampaignJSON(t *testing.T) {
	code, stdout, stderr := exec(t,
		"-spec", adreportSpec, "-variant", "Report=CAMPAIGN", "-seal", "clicks=campaign", "-json")
	if code != exitOK || stderr != "" {
		t.Fatalf("code = %d, stderr = %q", code, stderr)
	}
	checkGolden(t, "adreport_campaign.json", stdout)
}

func TestGoldenWordcountVerdictText(t *testing.T) {
	code, stdout, stderr := exec(t, "-spec", wordcountSpec, "-seal", "tweets=batch", "-synthesize")
	if code != exitOK || stderr != "" {
		t.Fatalf("code = %d, stderr = %q", code, stderr)
	}
	checkGolden(t, "wordcount_sealed_synthesize.txt", stdout)
}

// TestJSONIsParseableAndStable: the golden is valid JSON and carries the
// report schema version.
func TestJSONIsParseableAndStable(t *testing.T) {
	_, stdout, _ := exec(t, "-spec", wordcountSpec, "-json")
	var doc map[string]any
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	for _, key := range []string{"version", "dataflow", "verdict", "streams"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report missing %q", key)
		}
	}
}

// TestExitCodeContract pins the documented 0/1/2 contract for both the
// analysis flow and the verify subcommand.
func TestExitCodeContract(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		err  string // required stderr substring
	}{
		{"ok", []string{"-spec", wordcountSpec}, exitOK, ""},
		{"help", []string{"-h"}, exitOK, "usage: blazes"},
		{"verify-help", []string{"verify", "-h"}, exitOK, "usage: blazes verify"},
		{"ok-repair", []string{"-spec", wordcountSpec, "-seal", "tweets=batch", "-repair"}, exitOK, ""},
		{"missing-spec-flag", []string{}, exitUsage, "-spec is required"},
		{"unreadable-spec", []string{"-spec", "does-not-exist.blazes"}, exitError, "does-not-exist"},
		{"bad-flag", []string{"-nope"}, exitUsage, ""},
		{"explain-json-conflict", []string{"-spec", wordcountSpec, "-explain", "-json"}, exitUsage, "-explain cannot be combined"},
		{"bad-variant-syntax", []string{"-spec", adreportSpec, "-variant", "Report"}, exitUsage, "bad -variant"},
		{"unknown-variant-component", []string{"-spec", adreportSpec, "-variant", "Nope=X"}, exitUsage, "unknown component"},
		{"unknown-variant", []string{"-spec", adreportSpec, "-variant", "Report=NOPE"}, exitUsage, "no variant"},
		{"bad-seal-syntax", []string{"-spec", wordcountSpec, "-seal", "tweets"}, exitUsage, "bad -seal"},
		{"unknown-seal-stream", []string{"-spec", wordcountSpec, "-seal", "nope=batch"}, exitUsage, "unknown stream"},
		{"stray-args", []string{"-spec", wordcountSpec, "extra"}, exitUsage, "unexpected arguments"},
		{"verify-unknown-workload", []string{"verify", "-workload", "nope"}, exitUsage, "unknown workload"},
		{"verify-bad-seeds", []string{"verify", "-seeds", "0"}, exitUsage, "-seeds must be positive"},
		{"verify-stray-args", []string{"verify", "extra"}, exitUsage, "unexpected arguments"},
		{"verify-unknown-strategy", []string{"verify", "-strategy", "nope"}, exitUsage, "unknown strategy"},
		{"verify-replay-reshrink-conflict", []string{"verify", "-replay", "x.json", "-reshrink", "dir"}, exitUsage, "cannot be combined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := exec(t, tc.args...)
			if code != tc.code {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, tc.code, stderr)
			}
			if tc.err != "" && !strings.Contains(stderr, tc.err) {
				t.Errorf("stderr %q missing %q", stderr, tc.err)
			}
		})
	}
}

// TestVerifySubcommandJSON runs a reduced sweep of one workload end to end
// through the subcommand and checks the JSON report array.
func TestVerifySubcommandJSON(t *testing.T) {
	code, stdout, stderr := exec(t, "verify", "-workload", "synthetic-chains", "-seeds", "8", "-json")
	if code != exitOK {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	var reports []map[string]any
	if err := json.Unmarshal([]byte(stdout), &reports); err != nil {
		t.Fatalf("verify -json output invalid: %v", err)
	}
	if len(reports) != 1 || reports[0]["workload"] != "synthetic-chains" {
		t.Fatalf("reports = %v", reports)
	}
	if holds, _ := reports[0]["holds"].(bool); !holds {
		t.Errorf("synthetic-chains does not hold: %s", stdout)
	}
}

// TestVerifySubcommandSummary: the human-readable mode mentions each
// verified workload and its verdict.
func TestVerifySubcommandSummary(t *testing.T) {
	code, stdout, _ := exec(t, "verify", "-workload", "synthetic-set", "-seeds", "8")
	if code != exitOK {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"synthetic-set", "guarantee HOLDS", "coordinated"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("summary missing %q:\n%s", want, stdout)
		}
	}
}
