package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"blazes/verify"
)

// TestGoldenShrinkTrace pins the shrink pipeline end to end: `blazes
// verify -shrink` on the order-sensitive synthetic workload writes
// 1-minimal replayable trace artifacts with deterministic bytes, and
// `blazes verify -replay` reproduces each one with exit 0.
func TestGoldenShrinkTrace(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := exec(t, "verify", "-workload", "synthetic-chains", "-seeds", "8", "-shrink", dir)
	if code != exitOK {
		t.Fatalf("verify -shrink: code = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no trace artifacts written (err=%v); stderr: %s", err, stderr)
	}

	// The stripped reorder cell reliably diverges; its artifact is the
	// golden.
	goldenSrc := filepath.Join(dir, "synthetic-chains-none-reorder.json")
	data, err := os.ReadFile(goldenSrc)
	if err != nil {
		t.Fatalf("expected artifact missing: %v (have %v)", err, entries)
	}
	checkGolden(t, "trace_chains_none_reorder.json", string(data))

	for _, path := range entries {
		code, stdout, stderr := exec(t, "verify", "-replay", path)
		if code != exitOK {
			t.Errorf("replay %s: code = %d\nstdout: %s\nstderr: %s", path, code, stdout, stderr)
		}
		if !strings.Contains(stdout, "reproduced") {
			t.Errorf("replay %s: missing verdict in output: %s", path, stdout)
		}
	}
}

// TestReshrinkCorpus: `blazes verify -reshrink` re-minimizes an existing
// trace corpus in place without re-running the sweep — already-minimal
// traces come back unchanged (ddmin is deterministic and idempotent), the
// rewritten files still replay, and a stale trace whose recorded
// classification no longer reproduces fails the command while the other
// files are still processed.
func TestReshrinkCorpus(t *testing.T) {
	dir := t.TempDir()
	code, _, stderr := exec(t, "verify", "-workload", "synthetic-chains", "-seeds", "8", "-shrink", dir)
	if code != exitOK {
		t.Fatalf("shrink setup failed: %d %s", code, stderr)
	}
	traces, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(traces) == 0 {
		t.Fatal("no traces to reshrink")
	}
	before := map[string]*verify.Trace{}
	for _, path := range traces {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := verify.DecodeTrace(data)
		if err != nil {
			t.Fatal(err)
		}
		before[path] = tr
	}

	code, stdout, stderr := exec(t, "verify", "-reshrink", dir)
	if code != exitOK {
		t.Fatalf("verify -reshrink: code = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	for _, path := range traces {
		if !strings.Contains(stdout, path) {
			t.Errorf("reshrink output does not mention %s:\n%s", path, stdout)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := verify.DecodeTrace(data)
		if err != nil {
			t.Fatalf("reshrunk %s no longer decodes: %v", path, err)
		}
		if len(tr.Events) != len(before[path].Events) || len(tr.Seeds) != len(before[path].Seeds) {
			t.Errorf("%s: reshrinking a 1-minimal trace changed it: %d events/%d seeds → %d/%d",
				path, len(before[path].Events), len(before[path].Seeds), len(tr.Events), len(tr.Seeds))
		}
		if tr.Anomalies != before[path].Anomalies {
			t.Errorf("%s: reshrink changed the recorded classification", path)
		}
		if code, _, rerr := exec(t, "verify", "-replay", path); code != exitOK {
			t.Errorf("replay after reshrink %s: code = %d, stderr: %s", path, code, rerr)
		}
	}

	// A stale trace (recorded anomalies no longer reproduce) fails the run
	// but is left untouched.
	stale := *before[traces[0]]
	stale.Anomalies = verify.Anomalies{}
	staleBytes, err := stale.Encode()
	if err != nil {
		t.Fatal(err)
	}
	stalePath := filepath.Join(dir, "stale-trace.json")
	if err := os.WriteFile(stalePath, staleBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = exec(t, "verify", "-reshrink", dir)
	if code != exitError {
		t.Fatalf("reshrink with a stale trace: code = %d, want %d", code, exitError)
	}
	if !strings.Contains(stderr, "no longer reproduce") {
		t.Errorf("stderr does not explain the stale trace: %s", stderr)
	}
	after, err := os.ReadFile(stalePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, staleBytes) {
		t.Error("stale trace was rewritten; it should be left untouched")
	}

	// An empty directory is an error, not a silent success.
	if code, _, _ := exec(t, "verify", "-reshrink", t.TempDir()); code != exitError {
		t.Errorf("reshrink of an empty dir: code = %d, want %d", code, exitError)
	}
}

// TestReplayExitCodes pins the -replay / flag-validation exit-code matrix.
func TestReplayExitCodes(t *testing.T) {
	dir := t.TempDir()

	// A real trace to tamper with.
	code, _, stderr := exec(t, "verify", "-workload", "synthetic-chains", "-seeds", "6", "-shrink", dir)
	if code != exitOK {
		t.Fatalf("shrink setup failed: %d %s", code, stderr)
	}
	traces, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(traces) == 0 {
		t.Fatal("no traces to tamper with")
	}
	data, err := os.ReadFile(traces[0])
	if err != nil {
		t.Fatal(err)
	}
	tr, err := verify.DecodeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	tr.Anomalies = verify.Anomalies{} // recorded classification no longer matches
	tampered, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	tamperedPath := filepath.Join(dir, "tampered.trace")
	if err := os.WriteFile(tamperedPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	junkPath := filepath.Join(dir, "junk.trace")
	if err := os.WriteFile(junkPath, []byte(`{"version":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		args []string
		code int
	}{
		{"tampered trace does not reproduce", []string{"verify", "-replay", tamperedPath}, exitError},
		{"junk artifact", []string{"verify", "-replay", junkPath}, exitError},
		{"missing file", []string{"verify", "-replay", filepath.Join(dir, "absent.json")}, exitError},
		{"replay combined with sweep flags", []string{"verify", "-replay", tamperedPath, "-shrink", dir}, exitUsage},
		{"unknown workload", []string{"verify", "-workload", "no-such"}, exitUsage},
		{"bad seeds", []string{"verify", "-seeds", "0"}, exitUsage},
		{"worker without coordinator", []string{"sweep-worker"}, exitUsage},
		{"worker bad flags", []string{"sweep-worker", "-coordinator", "http://x", "-max", "0"}, exitUsage},
	} {
		if code, stdout, stderr := exec(t, tc.args...); code != tc.code {
			t.Errorf("%s: code = %d, want %d\nstdout: %s\nstderr: %s", tc.name, code, tc.code, stdout, stderr)
		}
	}
}

// TestDistributedVerifyCLI is the full fleet in one process: `blazes
// serve` coordinates, two `blazes sweep-worker` loops claim and report
// over a real socket, and `blazes verify -coordinator` submits, streams
// progress, collects the shrunk trace of the injected stripped-
// coordination anomaly, and renders a JSON report byte-identical to a
// local single-process run.
func TestDistributedVerifyCLI(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	serveDone := make(chan int, 1)
	go func() {
		var errb bytes.Buffer
		serveDone <- runServe(ctx, []string{"-addr", "127.0.0.1:0"}, &out, &errb)
	}()
	base := waitForAddr(t, &out)

	var wg sync.WaitGroup
	for wi := 0; wi < 2; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			var wout, werr bytes.Buffer
			runSweepWorker(ctx, []string{
				"-coordinator", base, "-poll", "50ms", "-parallel", "1",
				"-name", []string{"wa", "wb"}[wi],
			}, &wout, &werr)
		}(wi)
	}

	dir := t.TempDir()
	code, stdout, stderr := exec(t, "verify",
		"-coordinator", base, "-workload", "synthetic-chains", "-seeds", "8", "-shrink", dir, "-json")
	if code != exitOK {
		t.Fatalf("verify -coordinator: code = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}

	wantCode, wantOut, wantErr := exec(t, "verify", "-workload", "synthetic-chains", "-seeds", "8", "-json")
	if wantCode != exitOK {
		t.Fatalf("local verify: code = %d, stderr: %s", wantCode, wantErr)
	}
	if stdout != wantOut {
		t.Errorf("distributed report differs from local run:\n--- distributed ---\n%s\n--- local ---\n%s", stdout, wantOut)
	}

	traces, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(traces) == 0 {
		t.Fatalf("coordinator produced no shrunk traces; stderr: %s", stderr)
	}
	for _, path := range traces {
		if code, _, rerr := exec(t, "verify", "-replay", path); code != exitOK {
			t.Errorf("replay %s: code = %d, stderr: %s", path, code, rerr)
		}
	}

	cancel()
	wg.Wait()
	select {
	case <-serveDone:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}
