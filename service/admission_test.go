package service

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func mustAcquire(t *testing.T, g *gate) func() {
	t.Helper()
	release, err := g.acquire(nil)
	if err != nil {
		t.Fatal(err)
	}
	return release
}

func TestGateFastPathAndRelease(t *testing.T) {
	g := newGate(2, 4, time.Second)
	r1 := mustAcquire(t, g)
	r2 := mustAcquire(t, g)
	if got := g.stats(); got.InFlight != 2 || got.Admitted != 2 {
		t.Fatalf("stats = %+v", got)
	}
	r1()
	r2()
	if got := g.stats(); got.InFlight != 0 {
		t.Fatalf("in_flight = %d after release", got.InFlight)
	}
}

func TestGateShedsBeyondQueueBound(t *testing.T) {
	g := newGate(1, 1, time.Minute)
	release := mustAcquire(t, g)

	// One waiter fills the queue...
	admitted := make(chan func(), 1)
	go func() {
		r, err := g.acquire(nil)
		if err != nil {
			t.Error(err)
			return
		}
		admitted <- r
	}()
	waitFor(t, func() bool { return g.stats().QueueDepth == 1 })

	// ...so the next request sheds immediately.
	if _, err := g.acquire(nil); !errors.Is(err, errOverloaded) {
		t.Fatalf("want errOverloaded, got %v", err)
	}
	if got := g.stats(); got.Shed != 1 {
		t.Fatalf("shed = %d, want 1", got.Shed)
	}

	// Releasing the slot admits the waiter.
	release()
	select {
	case r := <-admitted:
		r()
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never admitted")
	}
}

func TestGateQueueTimeout(t *testing.T) {
	g := newGate(1, 4, 10*time.Millisecond)
	release := mustAcquire(t, g)
	defer release()
	if _, err := g.acquire(nil); !errors.Is(err, errOverloaded) {
		t.Fatalf("want errOverloaded after queue timeout, got %v", err)
	}
	if got := g.stats(); got.QueueTimeouts != 1 || got.QueueDepth != 0 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestGateDeadlineAwareShedding(t *testing.T) {
	g := newGate(1, 4, time.Minute)
	release := mustAcquire(t, g)
	defer release()
	done := make(chan struct{})
	close(done) // the caller is already gone
	if _, err := g.acquire(done); !errors.Is(err, errCanceled) {
		t.Fatalf("want errCanceled, got %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadSheds429 drives the HTTP surface: with the single slot held
// and the queue full, expensive endpoints answer 429 with a Retry-After
// hint, while cheap read endpoints keep answering 200.
func TestOverloadSheds429(t *testing.T) {
	srv := New(Options{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 2 * time.Second})
	h := srv.Handler()
	if code, body := call(t, h, "POST", "/v1/sessions", CreateRequest{Spec: wordcountSpecText(t)}); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}

	release := mustAcquire(t, srv.gate)
	queued := make(chan func(), 1)
	go func() {
		r, err := srv.gate.acquire(nil)
		if err == nil {
			queued <- r
		}
	}()
	waitFor(t, func() bool { return srv.gate.stats().QueueDepth == 1 })

	req := httptest.NewRequest("POST", "/v1/sessions/s1/analyze", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("analyze under overload: %d %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	if !strings.Contains(rec.Body.String(), "overloaded") {
		t.Errorf("shed body should say overloaded: %s", rec.Body.String())
	}

	// Reads bypass the gate: the server stays observable under overload.
	if code, _ := call(t, h, "GET", "/v1/sessions/s1", nil); code != http.StatusOK {
		t.Error("get should bypass the gate")
	}
	if code, body := call(t, h, "GET", "/v1/stats", nil); code != http.StatusOK || !strings.Contains(body, `"shed": 1`) {
		t.Errorf("stats under overload: %d %s", code, body)
	}

	release()
	if r := <-queued; r != nil {
		r()
	}
}

func TestLatencyHistogramQuantiles(t *testing.T) {
	var h latencyHist
	for i := 0; i < 90; i++ {
		h.observe(90 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(40 * time.Millisecond)
	}
	sum := h.summary()
	if sum.Count != 100 {
		t.Fatalf("count = %d", sum.Count)
	}
	if sum.P50Us < 50 || sum.P50Us > 100 {
		t.Errorf("p50 = %dµs, want ≈90µs", sum.P50Us)
	}
	if sum.P99Us < 20_000 || sum.P99Us > 50_000 {
		t.Errorf("p99 = %dµs, want ≈40ms", sum.P99Us)
	}
	if sum.MaxUs != 40_000 {
		t.Errorf("max = %dµs", sum.MaxUs)
	}
	if sum.MeanUs == 0 {
		t.Errorf("mean should be non-zero")
	}
}
