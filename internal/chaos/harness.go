package chaos

import (
	"context"
	"fmt"

	"blazes/internal/dataflow"
	"blazes/internal/sim"
)

// Workload is a runnable system under test: it exposes its annotated
// dataflow for analysis and can execute one seeded run under a fault plan
// with a chosen delivery mechanism installed (CoordNone strips all
// coordination).
//
// Run must be safe for concurrent calls with distinct seeds: the parallel
// sweep explores many seeded schedules at once, each on its own simulator.
// Every built-in workload satisfies this by constructing all per-run state
// inside Run.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Graph returns the annotated dataflow the analyzer reasons about.
	Graph() (*dataflow.Graph, error)
	// Supports reports whether the workload can install mech.
	Supports(mech dataflow.Coordination) bool
	// Run executes one seeded schedule and returns the observable outcome.
	Run(seed int64, plan FaultPlan, mech dataflow.Coordination) (Outcome, error)
}

// poolAware is implemented by workloads that can use a worker pool inside
// one run (e.g. replica construction and quiescence digests); the harness
// hands them the sweep's pool before running.
type poolAware interface {
	setPool(*sim.Pool)
}

// Config tunes a verification run.
type Config struct {
	// Seeds is the number of schedules explored per (mechanism, plan)
	// configuration; 0 selects DefaultSeeds.
	Seeds int
	// Plans is the fault-plan sweep; nil selects DefaultPlans.
	Plans []FaultPlan
	// PreferSequencing selects M1 over M2 when synthesis must order.
	PreferSequencing bool
	// Parallelism is the worker count for exploring seeded schedules
	// concurrently. Each seed runs on its own simulator and the oracle
	// folds outcomes in seed order, so the verdict — anomalies, details,
	// JSON report — is byte-identical to a sequential sweep. 0 or 1 keeps
	// the sweep sequential; < 0 selects GOMAXPROCS.
	Parallelism int
}

// DefaultSeeds is the schedule count the acceptance bar demands per
// configuration.
const DefaultSeeds = 64

// Sweep is the oracle verdict for one (mechanism, plan) configuration
// explored across Seeds schedules.
type Sweep struct {
	Mechanism string    `json:"mechanism"`
	Plan      string    `json:"plan"`
	Seeds     int       `json:"seeds"`
	Observed  Anomalies `json:"observed"`
	Allowed   Anomalies `json:"allowed"`
	// OK: the observed anomalies are within what Figure 5 permits for the
	// mechanism.
	OK bool `json:"ok"`
	// Detail describes the first disagreement found (empty when none).
	Detail string `json:"detail,omitempty"`
}

// Report is the outcome of one Check: the analyzer's verdict, the
// synthesized strategies, and the oracle verdicts for the coordinated and
// stripped sweeps.
type Report struct {
	Workload      string   `json:"workload"`
	Verdict       string   `json:"verdict"`
	Deterministic bool     `json:"deterministic"`
	Strategies    []string `json:"strategies,omitempty"`
	// Coordinated holds one sweep per (recommended mechanism, plan):
	// outcome invariance under the synthesized coordination (or, for
	// confluent programs, under no coordination at all).
	Coordinated []Sweep `json:"coordinated"`
	// Uncoordinated holds the divergence-reproduction sweeps: the same
	// non-confluent program with coordination stripped. Empty for
	// confluent programs.
	Uncoordinated []Sweep `json:"uncoordinated,omitempty"`
	// DivergenceReproduced: at least one stripped sweep exhibited an
	// anomaly, confirming the coordination was load-bearing. Vacuously
	// true when there is nothing to strip: confluent programs, and
	// workloads that cannot run uncoordinated (no stripped sweeps are
	// listed in either case).
	DivergenceReproduced bool `json:"divergence_reproduced"`
	// Holds: the two-sided guarantee held — every coordinated sweep was
	// outcome-invariant (within Figure 5's allowance) and, for
	// non-confluent programs, stripping coordination reproduced
	// divergence.
	Holds bool `json:"holds"`
}

// allowedAnomalies encodes Figure 5's row for each mechanism: sealing and
// preordained sequencing eliminate every class; a dynamic ordering service
// removes replication anomalies but not cross-run nondeterminism; a
// confluent component needs nothing (on the eventual-outcome comparison).
func allowedAnomalies(mech dataflow.Coordination) Anomalies {
	if mech == dataflow.CoordDynamicOrder {
		return Anomalies{Run: true}
	}
	return Anomalies{}
}

// sweep explores cfg.Seeds schedules of one (mechanism, plan) cell. With a
// pool, the seeded runs — each on its own simulator — execute concurrently;
// the oracle then folds the outcomes in seed order, so the verdict is
// byte-identical to the sequential sweep. Cancelling ctx stops the workers
// at the next seed boundary and aborts the sweep.
func sweep(ctx context.Context, w Workload, cfg Config, pool *sim.Pool, plan FaultPlan, mech dataflow.Coordination, confluent bool) (Sweep, error) {
	outcomes := make([]Outcome, cfg.Seeds)
	errs := make([]error, cfg.Seeds)
	if err := pool.MapContext(ctx, cfg.Seeds, func(i int) {
		outcomes[i], errs[i] = w.Run(int64(i+1), plan, mech)
	}); err != nil {
		return Sweep{}, fmt.Errorf("chaos: %s under %s/%s: %w", w.Name(), mech, plan.Name, err)
	}
	oracle := NewOracle(confluent)
	for i, out := range outcomes {
		if errs[i] != nil {
			return Sweep{}, fmt.Errorf("chaos: %s under %s/%s seed %d: %w", w.Name(), mech, plan.Name, i+1, errs[i])
		}
		oracle.Observe(int64(i+1), out)
	}
	s := Sweep{
		Mechanism: mech.String(),
		Plan:      plan.Name,
		Seeds:     cfg.Seeds,
		Observed:  oracle.Anomalies(),
		Allowed:   allowedAnomalies(mech),
	}
	s.OK = s.Observed.Within(s.Allowed)
	if d := oracle.Details(); len(d) > 0 {
		s.Detail = d[0]
	}
	return s, nil
}

// Check verifies the Blazes guarantee for one workload:
//
//  1. analyze the workload's dataflow and synthesize strategies;
//  2. if the verdict is deterministic and no strategy is required
//     (confluent), run the workload *without* coordination under every
//     fault plan and assert eventual-outcome invariance across schedules;
//  3. otherwise install each recommended mechanism the workload supports
//     and assert the runs are outcome-invariant within Figure 5's
//     allowance for that mechanism;
//  4. strip the coordination and assert that at least one fault plan
//     reproduces a detected divergence.
//
// Cancelling ctx aborts the check promptly: in-flight seeded runs finish,
// queued ones never start, and Check returns the context's error.
func Check(ctx context.Context, w Workload, cfg Config) (*Report, error) {
	if cfg.Seeds <= 0 {
		cfg.Seeds = DefaultSeeds
	}
	if cfg.Plans == nil {
		cfg.Plans = DefaultPlans()
	}
	var pool *sim.Pool
	if cfg.Parallelism != 0 && cfg.Parallelism != 1 {
		pool = sim.NewPool(cfg.Parallelism)
	}
	if pa, ok := w.(poolAware); ok {
		pa.setPool(pool)
	}
	g, err := w.Graph()
	if err != nil {
		return nil, fmt.Errorf("chaos: %s: graph: %w", w.Name(), err)
	}
	an, err := dataflow.Analyze(g)
	if err != nil {
		return nil, fmt.Errorf("chaos: %s: analyze: %w", w.Name(), err)
	}
	rep := &Report{
		Workload:      w.Name(),
		Verdict:       an.Verdict.String(),
		Deterministic: an.Deterministic(),
	}

	// A deterministic verdict does not by itself mean "run bare": when the
	// determinism rests on sealed inputs, the runtime must still install
	// the punctuation/voting protocol, and Synthesize says so. Only a
	// deterministic program with *no* synthesized strategies is confluent
	// in the run-it-bare sense.
	strategies := dataflow.Synthesize(an, dataflow.SynthesisOptions{PreferSequencing: cfg.PreferSequencing})
	bare := an.Deterministic() && len(strategies) == 0

	var mechs []dataflow.Coordination
	if bare {
		mechs = []dataflow.Coordination{dataflow.CoordNone}
	} else {
		seen := map[dataflow.Coordination]bool{}
		for _, st := range strategies {
			rep.Strategies = append(rep.Strategies, st.String())
			if st.Mechanism == dataflow.CoordNone || seen[st.Mechanism] {
				continue
			}
			seen[st.Mechanism] = true
			if w.Supports(st.Mechanism) {
				mechs = append(mechs, st.Mechanism)
			}
		}
		if len(mechs) == 0 {
			return nil, fmt.Errorf("chaos: %s: analyzer recommends %v but the workload supports none of it",
				w.Name(), rep.Strategies)
		}
	}

	for _, mech := range mechs {
		for _, plan := range cfg.Plans {
			s, err := sweep(ctx, w, cfg, pool, plan, mech, bare)
			if err != nil {
				return nil, err
			}
			rep.Coordinated = append(rep.Coordinated, s)
		}
	}

	if bare || !w.Supports(dataflow.CoordNone) {
		// Nothing to strip: either the program is confluent, or the
		// workload cannot run uncoordinated — the reproduction half of
		// the check is vacuous and must not fail the verdict.
		rep.DivergenceReproduced = true
	} else {
		for _, plan := range cfg.Plans {
			s, err := sweep(ctx, w, cfg, pool, plan, dataflow.CoordNone, false)
			if err != nil {
				return nil, err
			}
			// Stripped sweeps document what went wrong, they are not
			// held to an allowance.
			s.Allowed = Anomalies{Run: true, Inst: true, Diverge: true}
			s.OK = true
			rep.Uncoordinated = append(rep.Uncoordinated, s)
			if s.Observed.Any() {
				rep.DivergenceReproduced = true
			}
		}
	}

	rep.Holds = rep.DivergenceReproduced
	for _, s := range rep.Coordinated {
		if !s.OK {
			rep.Holds = false
		}
	}
	return rep, nil
}

// Summary renders a one-paragraph human-readable account of the report.
func (r *Report) Summary() string {
	status := "HOLDS"
	if !r.Holds {
		status = "VIOLATED"
	}
	out := fmt.Sprintf("%s: verdict %s (deterministic=%v) — guarantee %s\n", r.Workload, r.Verdict, r.Deterministic, status)
	for _, st := range r.Strategies {
		out += fmt.Sprintf("  strategy: %s\n", st)
	}
	for _, s := range r.Coordinated {
		out += fmt.Sprintf("  coordinated %-22s plan %-10s seeds %-3d observed [%s] allowed [%s] ok=%v\n",
			s.Mechanism, s.Plan, s.Seeds, s.Observed, s.Allowed, s.OK)
		if s.Detail != "" && !s.OK {
			out += fmt.Sprintf("    detail: %s\n", s.Detail)
		}
	}
	for _, s := range r.Uncoordinated {
		out += fmt.Sprintf("  stripped    %-22s plan %-10s seeds %-3d observed [%s]\n",
			s.Mechanism, s.Plan, s.Seeds, s.Observed)
	}
	if len(r.Uncoordinated) > 0 {
		out += fmt.Sprintf("  divergence reproduced without coordination: %v\n", r.DivergenceReproduced)
	}
	return out
}
