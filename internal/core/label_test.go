package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"blazes/internal/fd"
)

// TestFig8SeverityTable pins the severity ranking of Figure 8.
func TestFig8SeverityTable(t *testing.T) {
	tests := []struct {
		kind LabelKind
		sev  int
		intl bool
		name string
	}{
		{LNDRead, 0, true, "NDRead"},
		{LTaint, 0, true, "Taint"},
		{LSeal, 1, false, "Seal"},
		{LAsync, 2, false, "Async"},
		{LRun, 3, false, "Run"},
		{LInst, 4, false, "Inst"},
		{LDiverge, 5, false, "Diverge"},
	}
	for _, tt := range tests {
		if got := tt.kind.Severity(); got != tt.sev {
			t.Errorf("%s severity = %d, want %d", tt.name, got, tt.sev)
		}
		if got := tt.kind.Internal(); got != tt.intl {
			t.Errorf("%s internal = %v, want %v", tt.name, got, tt.intl)
		}
		if got := tt.kind.String(); got != tt.name {
			t.Errorf("String = %q, want %q", got, tt.name)
		}
	}
}

// TestFig8AnomalyColumns pins which labels admit which anomalies, following
// the columns of Figure 8: ND order / ND contents / transient replica
// divergence / persistent replica divergence.
func TestFig8AnomalyColumns(t *testing.T) {
	// Deterministic contents: only Seal and Async.
	for _, l := range []Label{Seal("k"), Async} {
		if !l.Deterministic() {
			t.Errorf("%s should be deterministic", l)
		}
	}
	for _, l := range []Label{Run, Inst, Diverge} {
		if l.Deterministic() {
			t.Errorf("%s must not be deterministic", l)
		}
	}
}

func TestLabelString(t *testing.T) {
	tests := []struct {
		l    Label
		want string
	}{
		{Async, "Async"},
		{Run, "Run"},
		{Inst, "Inst"},
		{Diverge, "Diverge"},
		{Taint, "Taint"},
		{Seal("campaign"), "Seal(campaign)"},
		{Seal("id", "window"), "Seal(id,window)"},
		{NDRead("id", "campaign"), "NDRead(campaign,id)"},
	}
	for _, tt := range tests {
		if got := tt.l.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestLabelEqual(t *testing.T) {
	if !Seal("a", "b").Equal(Seal("b", "a")) {
		t.Error("seal equality must be order-insensitive")
	}
	if Seal("a").Equal(Seal("b")) {
		t.Error("seals with different keys must differ")
	}
	if Seal("a").Equal(NDRead("a")) {
		t.Error("different kinds must differ")
	}
}

func TestMergePairwise(t *testing.T) {
	if got := Merge(Async, Run); !got.Equal(Run) {
		t.Errorf("Merge(Async,Run) = %v", got)
	}
	if got := Merge(Diverge, Seal("k")); !got.Equal(Diverge) {
		t.Errorf("Merge(Diverge,Seal) = %v", got)
	}
	if got := Merge(Seal("k"), Async); !got.Equal(Async) {
		t.Errorf("Merge(Seal,Async) = %v: Async outranks Seal", got)
	}
}

func TestMergeLabels(t *testing.T) {
	tests := []struct {
		name string
		in   []Label
		want Label
	}{
		{"empty defaults to Async", nil, Async},
		{"all internal defaults to Async", []Label{Taint, NDRead("g")}, Async},
		{"internal dropped", []Label{Seal("k"), Taint, Inst}, Inst},
		{"seal alone", []Label{Seal("k")}, Seal("k")},
		{"async beats seal", []Label{Seal("k"), Async}, Async},
		{"diverge wins", []Label{Async, Run, Inst, Diverge}, Diverge},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := MergeLabels(tt.in); !got.Equal(tt.want) {
				t.Errorf("MergeLabels(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

// genLabel draws a random external or internal label.
func genLabel(r *rand.Rand) Label {
	switch r.Intn(7) {
	case 0:
		return NDReadOn(genKey(r))
	case 1:
		return Taint
	case 2:
		return SealOn(genKey(r))
	case 3:
		return Async
	case 4:
		return Run
	case 5:
		return Inst
	default:
		return Diverge
	}
}

func genKey(r *rand.Rand) fd.AttrSet {
	attrs := []string{"id", "campaign", "window"}
	var out []string
	for _, a := range attrs {
		if r.Intn(2) == 0 {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		out = []string{"id"}
	}
	return fd.NewAttrSet(out...)
}

// TestMergeSemilattice property-tests that pairwise Merge is a join
// semilattice over severity: commutative, associative, idempotent-by-rank.
func TestMergeSemilattice(t *testing.T) {
	cfg := &quick.Config{MaxCount: 1000}

	comm := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genLabel(r), genLabel(r)
		return Merge(a, b).Severity() == Merge(b, a).Severity()
	}
	if err := quick.Check(comm, cfg); err != nil {
		t.Errorf("merge not commutative by severity: %v", err)
	}

	assoc := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := genLabel(r), genLabel(r), genLabel(r)
		return Merge(Merge(a, b), c).Severity() == Merge(a, Merge(b, c)).Severity()
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Errorf("merge not associative by severity: %v", err)
	}

	idem := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genLabel(r)
		return Merge(a, a).Equal(a)
	}
	if err := quick.Check(idem, cfg); err != nil {
		t.Errorf("merge not idempotent: %v", err)
	}

	// MergeLabels result severity is an upper bound of every external input.
	bound := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(5)
		ls := make([]Label, n)
		for i := range ls {
			ls[i] = genLabel(r)
		}
		m := MergeLabels(ls)
		for _, l := range ls {
			if !l.Internal() && l.Severity() > m.Severity() {
				return false
			}
		}
		return !m.Internal()
	}
	if err := quick.Check(bound, cfg); err != nil {
		t.Errorf("MergeLabels not an upper bound: %v", err)
	}
}
