package bloom

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Emission is a batch of rows leaving a node in one timestep: rows merged
// asynchronously (<~) into channels, plus the contents of output
// interfaces.
type Emission struct {
	Collection string
	Rows       []Row
}

// Node is one running instance of a module: its persistent state plus the
// timestep machinery. Nodes are driven by Deliver (network arrivals) and
// Tick (one Bloom timestep); hosts route the returned emissions over their
// network.
type Node struct {
	// ID names the node instance (e.g. "report1").
	ID    string
	mod   *Module
	state map[string]*store
	// prog is the module compiled against this node's stores: schemas,
	// strata, and column offsets resolved once, scans bound to store
	// pointers.
	prog *program
	// pendingIns/pendingDel apply at the start of the next tick (<+, <-,
	// and network deliveries).
	pendingIns map[string][]Row
	pendingDel map[string][]Row
	ticks      int
}

// NewNode instantiates a module. The module must validate, stratify, and
// compile (compilation additionally resolves predicate and having columns
// that Validate's schema pass does not reach).
func NewNode(id string, mod *Module) (*Node, error) {
	if err := mod.Validate(); err != nil {
		return nil, err
	}
	strata, maxStratum, err := stratify(mod)
	if err != nil {
		return nil, err
	}
	n := &Node{
		ID:         id,
		mod:        mod,
		state:      map[string]*store{},
		pendingIns: map[string][]Row{},
		pendingDel: map[string][]Row{},
	}
	for _, c := range mod.Collections() {
		n.state[c.Name] = newStore()
	}
	n.prog, err = compileProgram(mod, n.state, strata, maxStratum)
	if err != nil {
		return nil, err
	}
	return n, nil
}

// Module returns the node's module.
func (n *Node) Module() *Module { return n.mod }

// Deliver queues rows for a collection; they become visible at the next
// tick (asynchronous arrival).
func (n *Node) Deliver(collection string, rows ...Row) error {
	c := n.mod.Collection(collection)
	if c == nil {
		return fmt.Errorf("bloom: node %s: deliver to unknown collection %q", n.ID, collection)
	}
	// Validate the whole batch before queuing anything, so a failed
	// Deliver is never partially applied.
	for _, r := range rows {
		if len(r) != len(c.Schema) {
			return fmt.Errorf("bloom: node %s: row %v does not match %q schema %v", n.ID, r, collection, c.Schema)
		}
		for i, v := range r {
			switch v.(type) {
			case string, int64:
			default:
				return fmt.Errorf("bloom: node %s: row %v for %q: column %d has unsupported type %T (want string or int64)",
					n.ID, r, collection, i, v)
			}
		}
	}
	for _, r := range rows {
		n.pendingIns[collection] = append(n.pendingIns[collection], r.clone())
	}
	return nil
}

// Pending reports whether queued work exists (delivered rows or deferred
// merges), i.e. whether a tick would make progress.
func (n *Node) Pending() bool { return len(n.pendingIns) > 0 || len(n.pendingDel) > 0 }

// Rows returns the current contents of a collection in canonical order.
func (n *Node) Rows(collection string) []Row {
	st, ok := n.state[collection]
	if !ok {
		return nil
	}
	return st.snapshot()
}

// Size returns a collection's cardinality.
func (n *Node) Size(collection string) int {
	st, ok := n.state[collection]
	if !ok {
		return 0
	}
	return st.size()
}

// Ticks reports how many timesteps have run.
func (n *Node) Ticks() int { return n.ticks }

// Digest returns a canonical digest of the node's persistent state: every
// non-transient collection's name and rows in canonical order. Two nodes
// running the same module have equal digests exactly when their durable
// state agrees — the comparison replica-convergence checks rest on.
func (n *Node) Digest() string {
	h := fnv.New64a()
	for _, c := range n.mod.Collections() {
		if c.Kind.Transient() {
			continue
		}
		fmt.Fprintf(h, "%s[", c.Name)
		for _, row := range n.state[c.Name].snapshot() {
			fmt.Fprintf(h, "%s;", row)
		}
		fmt.Fprint(h, "]")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// rowsOf implements stateReader.
func (n *Node) rowsOf(name string) []Row { return n.state[name].snapshot() }

// Tick runs one Bloom timestep:
//
//  1. apply queued insertions/deletions (deliveries, <+, <-);
//  2. evaluate the instant (<=) rules to fixpoint, stratum by stratum,
//     semi-naively: after each stratum's first (full, memoized) pass, only
//     rules reading a collection that changed in the previous iteration
//     re-fire, and they join per-iteration deltas against full relations;
//  3. evaluate deferred (<+), delete (<-) and async (<~) rules against the
//     fixpoint state;
//  4. collect emissions (async merges and output-interface contents), in
//     canonical row order, cloned at the boundary;
//  5. clear transient collections.
//
// The error return is retained for API stability; compiled evaluation
// cannot fail (all schema and column resolution happens in NewNode).
func (n *Node) Tick() ([]Emission, error) {
	n.ticks++

	// 1. Apply pending work.
	for _, coll := range sortedKeys(n.pendingIns) {
		st := n.state[coll]
		for _, r := range n.pendingIns[coll] {
			st.insert(r)
		}
	}
	n.pendingIns = map[string][]Row{}
	for _, coll := range sortedKeys(n.pendingDel) {
		st := n.state[coll]
		for _, r := range n.pendingDel[coll] {
			st.remove(r)
		}
	}
	n.pendingDel = map[string][]Row{}

	// 2. Semi-naive stratified fixpoint of instant rules.
	for s := 0; s <= n.prog.maxStratum; s++ {
		rules := n.prog.instant[s]
		if len(rules) == 0 {
			continue
		}
		heads := n.prog.heads[s]
		for _, st := range heads {
			st.clearDelta()
		}
		// First iteration: full (memoized) evaluation of every rule.
		for _, cr := range rules {
			for _, row := range cr.eval() {
				cr.head.insertDelta(row)
			}
		}
		// Delta iterations: only re-fire rules whose reads changed.
		for {
			changed := false
			for _, st := range heads {
				if st.rotate() {
					changed = true
				}
			}
			if !changed {
				break
			}
			for _, cr := range rules {
				if !cr.dirty() {
					continue
				}
				for _, row := range cr.body.delta(nil) {
					cr.head.insertDelta(row)
				}
			}
		}
		for _, st := range heads {
			st.clearDelta()
		}
	}

	// 3. Deferred, delete, and async rules evaluate once on the fixpoint.
	// Their rows stay internal (pending queues alias immutable rows); only
	// async emissions cross the public boundary, cloned in step 4.
	var emissions []Emission
	asyncRows := map[string][]Row{}
	for _, cr := range n.prog.rest {
		rows := cr.eval()
		if len(rows) == 0 {
			continue
		}
		switch cr.rule.Op {
		case Deferred:
			n.pendingIns[cr.rule.Head] = append(n.pendingIns[cr.rule.Head], rows...)
		case Delete:
			n.pendingDel[cr.rule.Head] = append(n.pendingDel[cr.rule.Head], rows...)
		case Async:
			asyncRows[cr.rule.Head] = append(asyncRows[cr.rule.Head], rows...)
		}
	}
	for _, coll := range sortedKeys(asyncRows) {
		emissions = append(emissions, Emission{Collection: coll, Rows: canonRows(asyncRows[coll])})
	}

	// 4. Output interfaces emit their fixpoint contents.
	for _, out := range n.mod.Outputs() {
		if rows := n.state[out].snapshot(); len(rows) > 0 {
			emissions = append(emissions, Emission{Collection: out, Rows: rows})
		}
	}

	// 5. Clear transients.
	for _, c := range n.mod.Collections() {
		if c.Kind.Transient() {
			n.state[c.Name].clear()
		}
	}
	return emissions, nil
}

// canonRows dedups, clones, and canonically orders rows leaving the node.
func canonRows(rows []Row) []Row {
	set := newRowSet(len(rows))
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		if set.add(r) {
			out = append(out, r.clone())
		}
	}
	SortRows(out)
	return out
}

// Drain ticks until no queued work remains, returning all emissions. The
// step limit guards against non-quiescing programs.
func (n *Node) Drain(maxTicks int) ([]Emission, error) {
	var out []Emission
	for i := 0; i < maxTicks; i++ {
		if !n.Pending() && i > 0 {
			return out, nil
		}
		em, err := n.Tick()
		if err != nil {
			return out, err
		}
		out = append(out, em...)
		if !n.Pending() {
			return out, nil
		}
	}
	return out, fmt.Errorf("bloom: node %s did not quiesce within %d ticks", n.ID, maxTicks)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
