package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"blazes/internal/core"
	"blazes/internal/fd"
)

// ComponentAnalysis records the derivation performed at one component: the
// inference steps for every (input label × path) pair and the per-output
// reconciliation, in the notation of Section V-A4.
type ComponentAnalysis struct {
	Name string
	// Steps lists every inference step performed at the component.
	Steps []core.Step
	// Reconciliations maps each output interface to its Figure 10 run.
	Reconciliations map[string]core.Reconciliation
	// OutputLabels maps each output interface to its merged label.
	OutputLabels map[string]core.Label

	// builtBy tags the incremental-engine pass that assembled this record
	// (zero for one-shot analyses); see Incremental.Analyze.
	builtBy uint64
}

// Analysis is the result of analyzing a dataflow graph: a label for every
// stream, the derivation at every component, and the overall verdict (the
// worst label on any sink stream, or on any stream if there are no sinks).
type Analysis struct {
	Graph *Graph
	// Collapsed is the graph actually analyzed (after cycle collapse);
	// identical to Graph when the dataflow has no interface-level cycles.
	Collapsed *Graph
	// StreamLabels maps stream name → derived label.
	StreamLabels map[string]core.Label
	// Components maps component name → its derivation record (names refer
	// to the collapsed graph; supernodes are named "scc+A+B").
	Components map[string]*ComponentAnalysis
	// Verdict is the highest-severity label among sink streams.
	Verdict core.Label
}

// streamIndex precomputes per-(component, interface) stream lists so the
// label propagation does not rescan the whole stream list at every node.
// Slices preserve declaration order, matching StreamsInto/StreamsOutOf.
type streamIndex struct {
	into  map[[2]string][]*Stream
	outOf map[[2]string][]*Stream
}

func indexStreams(g *Graph) *streamIndex {
	idx := &streamIndex{
		into:  map[[2]string][]*Stream{},
		outOf: map[[2]string][]*Stream{},
	}
	for _, s := range g.Streams() {
		if !s.IsSink() {
			k := [2]string{s.ToComp, s.ToIface}
			idx.into[k] = append(idx.into[k], s)
		}
		if !s.IsSource() {
			k := [2]string{s.FromComp, s.FromIface}
			idx.outOf[k] = append(idx.outOf[k], s)
		}
	}
	return idx
}

// Analyze runs the Blazes analysis over g: validate, collapse cycles,
// propagate labels over output interfaces in topological order (inference
// per path, reconciliation per output interface, merge), and compute the
// verdict.
func Analyze(g *Graph) (*Analysis, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cg := collapseSCCs(g)
	if cg != g {
		if err := cg.Validate(); err != nil {
			return nil, fmt.Errorf("dataflow: internal error: collapsed graph invalid: %w", err)
		}
	}

	a := &Analysis{
		Graph:        g,
		Collapsed:    cg,
		StreamLabels: map[string]core.Label{},
		Components:   map[string]*ComponentAnalysis{},
	}

	// Source streams start from their annotations: Seal_key if annotated,
	// otherwise the conservative default Async.
	for _, s := range cg.Streams() {
		if s.IsSource() {
			a.StreamLabels[s.Name] = sourceLabel(s)
		}
	}

	idx := indexStreams(cg)
	for _, node := range outputTopoOrder(cg) {
		a.analyzeOutput(cg, idx, node)
	}

	a.Verdict = a.verdict(cg)
	return a, nil
}

// outputTopoOrder returns the OUT interface nodes of the (acyclic) collapsed
// graph in topological order using Kahn's algorithm over the interface
// graph. The ready set is a min-heap ordered by less(), so each pop yields
// the lexicographically least ready node — the same order the previous
// implementation produced by re-sorting a slice on every push, but in
// O(E log V) instead of O(V·E log E).
func outputTopoOrder(g *Graph) []ifaceNode {
	ig := buildIfaceGraph(g)
	indeg := make(map[ifaceNode]int, len(ig.nodes))
	for _, n := range ig.nodes {
		indeg[n] += 0
	}
	for _, vs := range ig.adj {
		for _, w := range vs {
			indeg[w]++
		}
	}
	heap := make(ifaceHeap, 0, len(ig.nodes))
	for _, n := range ig.nodes {
		if indeg[n] == 0 {
			heap.push(n)
		}
	}
	outs := make([]ifaceNode, 0, len(ig.nodes)/2+1)
	for len(heap) > 0 {
		v := heap.pop()
		if v.out {
			outs = append(outs, v)
		}
		for _, w := range ig.adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				heap.push(w)
			}
		}
	}
	return outs
}

// ifaceHeap is a binary min-heap of interface nodes ordered by less().
// Hand-rolled (rather than container/heap) to keep the hot path free of
// interface boxing and per-op allocations.
type ifaceHeap []ifaceNode

func (h *ifaceHeap) push(n ifaceNode) {
	*h = append(*h, n)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *ifaceHeap) pop() ifaceNode {
	s := *h
	min := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < len(s) && less(s[left], s[smallest]) {
			smallest = left
		}
		if right < len(s) && less(s[right], s[smallest]) {
			smallest = right
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return min
}

// deriveOutput performs the derivation for one output interface: inference
// per (input label × path), then reconciliation, then the mechanism floor.
// It is the single implementation shared by the one-shot Analyze and the
// incremental engine; labels supplies the already-derived stream labels.
func deriveOutput(comp *Component, iface string, idx *streamIndex, labels map[string]core.Label) (steps []core.Step, rec core.Reconciliation, out core.Label) {
	coordinated := comp.Coordination == CoordSequenced || comp.Coordination == CoordDynamicOrder ||
		comp.Coordination == CoordQuorumOrder || comp.Coordination == CoordMergeRewrite

	var merged []core.Label
	for _, p := range comp.PathsTo(iface) {
		ann := p.Ann
		if coordinated && ann.OrderSensitive() {
			// A total order over inputs (M1/M2/M1q) or a commutative merge
			// in place of the fold (merge rewrite) removes order
			// sensitivity: the path behaves as its confluent counterpart.
			// (M2's residual cross-run nondeterminism is reapplied below.)
			ann = core.Annotation{Confluent: true, Write: ann.Write}
		}
		info := core.PathInfo{Ann: ann, Deps: comp.Deps}
		for _, in := range inputLabels(idx, labels, comp.Name, p.From) {
			step := core.InferInfo(in, info)
			steps = append(steps, step)
			merged = append(merged, step.Out)
		}
	}
	rep := comp.Rep
	for _, s := range idx.outOf[[2]string{comp.Name, iface}] {
		if s.Rep {
			rep = true
		}
	}
	var outSchema fd.AttrSet
	if comp.OutSchema != nil {
		outSchema = comp.OutSchema[iface]
	}
	rec = core.ReconcileWithSchema(merged, rep, comp.Deps, outSchema)

	out = rec.Output
	// M2 (dynamic ordering) fixes order within a run only: contents remain
	// nondeterministic across runs (Figure 5).
	if comp.Coordination == CoordDynamicOrder && out.Severity() < core.Run.Severity() {
		out = core.Run
	}
	return steps, rec, out
}

// analyzeOutput derives the label for one output interface and stamps it on
// the streams leaving it.
func (a *Analysis) analyzeOutput(g *Graph, idx *streamIndex, node ifaceNode) {
	comp := g.Lookup(node.comp)
	if comp == nil {
		return
	}
	ca := a.Components[comp.Name]
	if ca == nil {
		ca = &ComponentAnalysis{
			Name:            comp.Name,
			Reconciliations: map[string]core.Reconciliation{},
			OutputLabels:    map[string]core.Label{},
		}
		a.Components[comp.Name] = ca
	}

	steps, rec, out := deriveOutput(comp, node.iface, idx, a.StreamLabels)
	ca.Steps = append(ca.Steps, steps...)
	ca.Reconciliations[node.iface] = rec
	ca.OutputLabels[node.iface] = rec.Output
	for _, s := range idx.outOf[[2]string{comp.Name, node.iface}] {
		a.StreamLabels[s.Name] = out
	}
}

// inputLabels gathers the labels of every stream feeding comp.iface; an
// unconnected input defaults to Async.
func inputLabels(idx *streamIndex, labels map[string]core.Label, comp, iface string) []core.Label {
	var out []core.Label
	for _, s := range idx.into[[2]string{comp, iface}] {
		if l, ok := labels[s.Name]; ok {
			out = append(out, l)
		} else {
			out = append(out, core.Async)
		}
	}
	if len(out) == 0 {
		out = append(out, core.Async)
	}
	return out
}

func (a *Analysis) verdict(g *Graph) core.Label {
	verdict := core.Label{Kind: core.LNDRead}
	found := false
	consider := func(l core.Label) {
		if !found || l.Severity() > verdict.Severity() {
			verdict, found = l, true
		}
	}
	for _, s := range g.Streams() {
		if s.IsSink() {
			if l, ok := a.StreamLabels[s.Name]; ok {
				consider(l)
			}
		}
	}
	if !found {
		for _, s := range g.Streams() {
			if l, ok := a.StreamLabels[s.Name]; ok {
				consider(l)
			}
		}
	}
	if !found {
		return core.Async
	}
	return verdict
}

// sourceLabel derives the initial label of an external input stream.
func sourceLabel(s *Stream) core.Label {
	if !s.Seal.IsEmpty() {
		return core.SealOn(s.Seal)
	}
	return core.Async
}

// Label returns the derived label of the named stream.
func (a *Analysis) Label(stream string) core.Label { return a.StreamLabels[stream] }

// Deterministic reports whether the whole dataflow is guaranteed to produce
// deterministic output contents (verdict at most Async).
func (a *Analysis) Deterministic() bool {
	return a.Verdict.Severity() <= core.Async.Severity()
}

// Explain renders the full derivation: per component (in name order), each
// inference step and reconciliation, then stream labels and verdict.
func (a *Analysis) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataflow %q\n", a.Graph.Name)
	names := make([]string, 0, len(a.Components))
	for n := range a.Components {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ca := a.Components[n]
		fmt.Fprintf(&b, "\ncomponent %s\n", n)
		for _, st := range ca.Steps {
			fmt.Fprintf(&b, "  %s\n", st)
		}
		for _, iface := range sortedRecKeys(ca.Reconciliations) {
			rec := ca.Reconciliations[iface]
			fmt.Fprintf(&b, "  output %s: %s\n", iface, indent(rec.String(), "  "))
		}
	}
	fmt.Fprintf(&b, "\nstreams\n")
	streams := make([]string, 0, len(a.StreamLabels))
	for s := range a.StreamLabels {
		streams = append(streams, s)
	}
	sort.Strings(streams)
	for _, s := range streams {
		fmt.Fprintf(&b, "  %-20s %s\n", s, a.StreamLabels[s])
	}
	fmt.Fprintf(&b, "\nverdict: %s\n", a.Verdict)
	return b.String()
}

func sortedRecKeys(m map[string]core.Reconciliation) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func indent(s, pad string) string {
	return strings.ReplaceAll(s, "\n", "\n"+pad)
}
