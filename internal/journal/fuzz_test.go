package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode feeds arbitrary bytes to the wal decoder. The
// invariants under fuzz:
//
//  1. DecodeRecords never panics and never allocates beyond the input (the
//     length prefix is bounds-checked before use).
//  2. Whatever decodes re-encodes to a byte-identical clean prefix:
//     EncodeRecords(DecodeRecords(data)) is a prefix of data whenever the
//     header was valid — the round trip is exact, not merely equivalent.
//  3. A re-decode of the re-encoding yields the same records (round-trip
//     fixpoint).
func FuzzJournalDecode(f *testing.F) {
	f.Add(EncodeRecords(nil))
	f.Add(EncodeRecords([]Record{{Seq: 1, Payload: []byte("seal tweets batch")}}))
	f.Add(EncodeRecords([]Record{
		{Seq: 1, Payload: []byte(`{"kind":"create","session":"s1"}`)},
		{Seq: 2, Payload: []byte(`{"kind":"mutate","session":"s1"}`)},
		{Seq: 3, Payload: nil},
	}))
	// A torn tail: a valid record plus half a frame.
	torn := EncodeRecords([]Record{{Seq: 7, Payload: []byte("x")}})
	f.Add(append(torn, 0xff, 0x00, 0x00))
	f.Add([]byte("BLZJ"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		records, tornTail, err := DecodeRecords(data)
		if err != nil {
			return // not journal data (or future version): rejected, not decoded
		}
		encoded := EncodeRecords(records)
		if !bytes.HasPrefix(data, encoded) {
			t.Fatalf("re-encoding is not a prefix of the input:\n in: %x\nout: %x", data, encoded)
		}
		if !tornTail && len(encoded) != len(data) {
			t.Fatalf("clean decode consumed %d of %d bytes", len(encoded), len(data))
		}
		again, tornAgain, err := DecodeRecords(encoded)
		if err != nil || tornAgain {
			t.Fatalf("re-decode failed: torn=%v err=%v", tornAgain, err)
		}
		if len(again) != len(records) {
			t.Fatalf("round trip changed record count: %d != %d", len(again), len(records))
		}
		for i := range records {
			if again[i].Seq != records[i].Seq || !bytes.Equal(again[i].Payload, records[i].Payload) {
				t.Fatalf("round trip changed record %d: %+v != %+v", i, again[i], records[i])
			}
		}
	})
}
