// Package substrate is the public façade over the simulated substrates that
// make the Blazes predictions physical: the Storm-like streaming wordcount
// (Section VI-A / Figure 11), the ad-tracking network with replicated
// reporting servers (Section VI-B / Figures 12–14), and the Bloom white-box
// path that extracts C.O.W.R. annotations from rules automatically
// (Section VII). Examples and embedding systems drive the runtimes through
// this package only; the engines themselves stay internal.
package substrate

import (
	"blazes"
	"blazes/internal/adtrack"
	"blazes/internal/bloom"
	"blazes/internal/sim"
	"blazes/internal/storm"
	"blazes/internal/wc"
)

// Time is virtual simulation time (nanoseconds).
type Time = sim.Time

// Virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// ---- Storm wordcount (Section VI-A) ----

// CommitMode selects the wordcount topology's commit discipline.
type CommitMode = storm.CommitMode

// The two commit disciplines of Figure 11.
const (
	// CommitSealed commits each batch when its seal arrives (M3).
	CommitSealed = storm.CommitSealed
	// CommitTransactional commits batches in preordained order (M1).
	CommitTransactional = storm.CommitTransactional
)

// WordcountConfig parameterizes one wordcount run.
type WordcountConfig = wc.RunConfig

// WordcountResult is the outcome: engine metrics plus the committed store.
type WordcountResult = wc.RunResult

// StormMetrics is the engine's throughput/latency record.
type StormMetrics = storm.Metrics

// RunWordcount executes one wordcount topology to completion on the
// simulated cluster.
func RunWordcount(cfg WordcountConfig) (WordcountResult, error) { return wc.Run(cfg) }

// ---- Ad-tracking network (Section VI-B) ----

// Regime selects the coordination regime an ad-network run installs.
type Regime = adtrack.Regime

// The coordination regimes of Figures 12–14.
const (
	Uncoordinated = adtrack.Uncoordinated
	Ordered       = adtrack.Ordered
	Sealed        = adtrack.Sealed
)

// AdConfig parameterizes one ad-network run.
type AdConfig = adtrack.Config

// AdResult is the outcome of one ad-network run.
type AdResult = adtrack.Result

// DefaultAdConfig builds the paper-shaped configuration for the given
// number of ad servers and regime; independent selects per-server
// campaigns (enabling independent seals).
func DefaultAdConfig(adServers int, regime Regime, independent bool) AdConfig {
	return adtrack.DefaultConfig(adServers, regime, independent)
}

// RunAdNetwork executes one ad-network run on the simulated cluster.
func RunAdNetwork(cfg AdConfig) (*AdResult, error) { return adtrack.Run(cfg) }

// CrossInstanceDiff compares the answer tables of the first n replicas
// within one run; it returns "" when they agree, else a description of the
// first divergence (the paper's cross-instance anomaly).
func CrossInstanceDiff(res *AdResult, replicas int) string {
	return adtrack.CrossInstanceDiff(res, replicas)
}

// CrossRunDiff compares two runs' answer tables (the replay anomaly).
func CrossRunDiff(a, b *AdResult, replicas int) string {
	return adtrack.CrossRunDiff(a, b, replicas)
}

// ColCampaign is the campaign attribute of the click schema — the seal key
// of the paper's CAMPAIGN experiments.
const ColCampaign = adtrack.ColCampaign

// ---- Bloom white-box extraction (Section VII) ----

// BloomModule is a set of Bloom rules over input/output interfaces, tables
// and scratches.
type BloomModule = bloom.Module

// ModuleAnalysis is the white-box result: extracted path annotations plus
// lineage (injective FDs) and output schemas.
type ModuleAnalysis = bloom.ModuleAnalysis

// PathAnnotation is one automatically derived C.O.W.R. annotation.
type PathAnnotation = bloom.PathAnnotation

// ExtractAnnotations derives component annotations from a module's rules —
// no annotation file required.
func ExtractAnnotations(m *BloomModule) (*ModuleAnalysis, error) { return bloom.Analyze(m) }

// ReportModule builds the paper's reporting-server Bloom module for the
// given standing query and THRESH threshold.
func ReportModule(query blazes.AdQuery, threshold int64) (*BloomModule, error) {
	return adtrack.ReportModule(query, threshold)
}

// CacheModule builds the caching-tier Bloom module.
func CacheModule() (*BloomModule, error) { return adtrack.CacheModule() }

// WhiteboxAdNetwork assembles the full ad network from auto-annotated
// Bloom modules (Report + Cache) and returns the dataflow graph ready for
// analysis; sealKey, when non-empty, seals the click stream.
func WhiteboxAdNetwork(query blazes.AdQuery, sealKey ...string) (*blazes.Graph, error) {
	return adtrack.Graph(query, sealKey...)
}
