package fd

import "testing"

func TestLineagePreserveAndRename(t *testing.T) {
	l := NewLineage()
	l.Preserve("campaign")
	l.RenameTo("clicks.id", "response.id")

	if !l.Set().InjectivelyDetermines(NewAttrSet("campaign"), NewAttrSet("campaign")) {
		t.Error("preserved attribute should injectively determine itself")
	}
	if !l.Set().InjectivelyDetermines(NewAttrSet("clicks.id"), NewAttrSet("response.id")) {
		t.Error("rename should record an injective dependency")
	}
}

func TestLineageDeriveIsNotInjective(t *testing.T) {
	l := NewLineage()
	l.Derive(NewAttrSet("clicks.id"), "count")
	if l.Set().InjectivelyDetermines(NewAttrSet("clicks.id"), NewAttrSet("count")) {
		t.Error("Derive must not produce injective dependencies")
	}
	if !l.Set().Determines(NewAttrSet("clicks.id"), NewAttrSet("count")) {
		t.Error("Derive should still record a plain dependency")
	}
}

func TestComposeChasesAcrossStages(t *testing.T) {
	// Stage 1: splitter preserves batch, derives word from tweet text.
	s1 := NewLineage()
	s1.Preserve("batch")
	s1.Derive(NewAttrSet("text"), "word")

	// Stage 2: counter preserves word and batch, derives count.
	s2 := NewLineage()
	s2.Preserve("word")
	s2.Preserve("batch")
	s2.Derive(NewAttrSet("word", "batch"), "count")

	composed := Compose(s1, s2)
	sealed := ChaseSeal(NewAttrSet("batch"), composed)
	if !sealed.Contains("batch") {
		t.Errorf("batch seal should survive the composition, got %v", sealed)
	}
	if sealed.Contains("count") {
		t.Errorf("count must not be implicitly sealed, got %v", sealed)
	}
}

func TestComposeSkipsNil(t *testing.T) {
	s1 := NewLineage()
	s1.Preserve("a")
	composed := Compose(nil, s1, nil)
	if !composed.InjectivelyDetermines(NewAttrSet("a"), NewAttrSet("a")) {
		t.Error("compose with nils should keep stage dependencies")
	}
}

func TestChaseSealLostThroughAggregation(t *testing.T) {
	// An aggregation that groups on a derived, non-injective column loses
	// the seal: nothing in the output is injectively determined by the key.
	l := NewLineage()
	l.Derive(NewAttrSet("campaign"), "bucket") // e.g. hash-bucketed, not injective
	sealed := ChaseSeal(NewAttrSet("campaign"), l.Set())
	if sealed.Contains("bucket") {
		t.Error("non-injective derivation must not carry the seal")
	}
}

func TestDeriveInjectiveCarriesSeal(t *testing.T) {
	l := NewLineage()
	l.DeriveInjective(NewAttrSet("campaign", "id"), "pairkey")
	sealed := ChaseSeal(NewAttrSet("campaign", "id"), l.Set())
	if !sealed.Contains("pairkey") {
		t.Error("caller-asserted injective derivation should carry the seal")
	}
}
