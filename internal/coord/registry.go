package coord

import (
	"sort"

	"blazes/internal/sim"
)

// Registry is the name service a sealing strategy consults to learn which
// producers contribute to a stream partition — "the reporting servers use
// Zookeeper only to determine the set of ad servers responsible for each
// campaign — that is, one call to Zookeeper per campaign" (Section VIII-B3).
type Registry struct {
	sim     *sim.Sim
	rtt     sim.LinkConfig
	members map[string]map[string]bool // partition → producer set
	lookups int
}

// NewRegistry creates a registry whose Lookup calls cost one round trip
// drawn from rtt.
func NewRegistry(s *sim.Sim, rtt sim.LinkConfig) *Registry {
	return &Registry{sim: s, rtt: rtt, members: map[string]map[string]bool{}}
}

// Register synchronously records that producer contributes to partition
// (registration happens at deployment time in the paper's systems).
func (r *Registry) Register(partition, producer string) {
	set, ok := r.members[partition]
	if !ok {
		set = map[string]bool{}
		r.members[partition] = set
	}
	set[producer] = true
}

// Producers returns the sorted producer set for a partition (test helper;
// protocol code should use Lookup to pay the round trip).
func (r *Registry) Producers(partition string) []string {
	var out []string
	for p := range r.members[partition] {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Lookup asynchronously resolves the producer set for a partition, invoking
// cb after one registry round trip. Both legs honor partition windows on
// the configured link: a lookup issued while the registry is unreachable
// completes only after the partition heals.
func (r *Registry) Lookup(partition string, cb func(producers []string)) {
	r.lookups++
	sent := r.sim.Now()
	request := r.rtt.Release(sent, sent+r.rtt.Delay(r.sim))
	response := r.rtt.Release(request, request+r.rtt.Delay(r.sim))
	producers := r.Producers(partition)
	r.sim.At(response, func() { cb(producers) })
}

// Lookups reports how many Lookup calls were made (the sealing strategy
// should make exactly one per partition).
func (r *Registry) Lookups() int { return r.lookups }
