// Package core implements the Blazes annotation calculus: the stream-label
// lattice of Figure 8, the C.O.W.R. component annotations of Figure 7, the
// per-path inference rules of Figure 9, and the per-interface reconciliation
// procedure of Figure 10 (Alvaro et al., "Blazes: Coordination Analysis for
// Distributed Programs", ICDE 2014).
//
// The package is deliberately free of any runtime concern: it reasons only
// about labels and annotations. Whole-dataflow propagation lives in
// package dataflow; the runtimes that make the predicted anomalies physical
// live in packages storm and bloom.
package core

import (
	"fmt"

	"blazes/internal/fd"
)

// LabelKind enumerates the stream labels of Figure 8.
type LabelKind int

const (
	// LNDRead marks transiently nondeterministic read results from an
	// order-sensitive read path (internal label; never output).
	LNDRead LabelKind = iota
	// LTaint marks component state corrupted by unordered inputs
	// (internal label; never output).
	LTaint
	// LSeal marks a stream punctuated on a key: for every record there is
	// eventually a punctuation sealing the record's partition.
	LSeal
	// LAsync marks deterministic contents with nondeterministic order —
	// the conservative default for asynchronous channels.
	LAsync
	// LRun marks possible cross-run nondeterminism: different contents in
	// different runs over the same inputs (breaks replay fault-tolerance).
	LRun
	// LInst marks possible cross-instance nondeterminism: replicas emit
	// different contents within a single run.
	LInst
	// LDiverge marks possible permanent replica divergence of component
	// state.
	LDiverge
)

// Severity returns the label's rank in Figure 8 (higher is worse). The two
// internal labels share the lowest rank.
func (k LabelKind) Severity() int {
	switch k {
	case LNDRead, LTaint:
		return 0
	case LSeal:
		return 1
	case LAsync:
		return 2
	case LRun:
		return 3
	case LInst:
		return 4
	case LDiverge:
		return 5
	default:
		return -1
	}
}

// Internal reports whether the label is used only inside the analysis
// (Figure 8 marks NDRead and Taint as never output).
func (k LabelKind) Internal() bool { return k == LNDRead || k == LTaint }

// String returns the paper's name for the label kind.
func (k LabelKind) String() string {
	switch k {
	case LNDRead:
		return "NDRead"
	case LTaint:
		return "Taint"
	case LSeal:
		return "Seal"
	case LAsync:
		return "Async"
	case LRun:
		return "Run"
	case LInst:
		return "Inst"
	case LDiverge:
		return "Diverge"
	default:
		return fmt.Sprintf("LabelKind(%d)", int(k))
	}
}

// Label is a stream label: a kind plus, for Seal and NDRead, the attribute
// subscript (the seal key or the read gate, respectively).
type Label struct {
	Kind LabelKind
	// Key is the seal key for LSeal and the gate for LNDRead; empty
	// otherwise.
	Key fd.AttrSet
}

// Convenience constructors for the subscript-free labels.
var (
	Async   = Label{Kind: LAsync}
	Run     = Label{Kind: LRun}
	Inst    = Label{Kind: LInst}
	Diverge = Label{Kind: LDiverge}
	Taint   = Label{Kind: LTaint}
)

// Seal returns the Seal_key label for the given key attributes.
func Seal(key ...string) Label { return Label{Kind: LSeal, Key: fd.NewAttrSet(key...)} }

// SealOn returns the Seal label for an already-built attribute set.
func SealOn(key fd.AttrSet) Label { return Label{Kind: LSeal, Key: key} }

// NDRead returns the internal NDRead_gate label.
func NDRead(gate ...string) Label { return Label{Kind: LNDRead, Key: fd.NewAttrSet(gate...)} }

// NDReadOn returns the NDRead label for an already-built gate set.
func NDReadOn(gate fd.AttrSet) Label { return Label{Kind: LNDRead, Key: gate} }

// Severity returns the severity rank of the label (Figure 8).
func (l Label) Severity() int { return l.Kind.Severity() }

// Internal reports whether the label is analysis-internal.
func (l Label) Internal() bool { return l.Kind.Internal() }

// Equal reports whether two labels have the same kind and subscript.
func (l Label) Equal(m Label) bool {
	return l.Kind == m.Kind && l.Key.Equal(m.Key)
}

// String renders the label with its subscript, e.g. "Seal(campaign)".
func (l Label) String() string {
	if l.Key.IsEmpty() {
		return l.Kind.String()
	}
	return fmt.Sprintf("%s(%s)", l.Kind, l.Key)
}

// Deterministic reports whether a stream carrying this label is guaranteed
// deterministic contents (per run and across replicas): Seal and Async (and
// nothing worse).
func (l Label) Deterministic() bool {
	return l.Kind == LSeal || l.Kind == LAsync
}

// Merge returns the worse of two labels by severity — the join used when a
// component's per-path output labels are combined into a single stream
// label. Merging is performed over external labels; see MergeLabels for the
// full interface-merge used by reconciliation.
func Merge(a, b Label) Label {
	if b.Severity() > a.Severity() {
		return b
	}
	return a
}

// MergeLabels merges a set of labels for one output interface: internal
// labels are dropped (they must have been reconciled first) and the
// highest-severity remaining label is returned. An empty (or all-internal)
// set merges to Async, the conservative default for asynchronous streams.
func MergeLabels(labels []Label) Label {
	merged := Label{Kind: LNDRead} // severity 0 sentinel, replaced below
	found := false
	for _, l := range labels {
		if l.Internal() {
			continue
		}
		if !found || l.Severity() > merged.Severity() {
			merged = l
			found = true
		}
	}
	if !found {
		return Async
	}
	return merged
}
