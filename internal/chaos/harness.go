package chaos

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"blazes/internal/dataflow"
	"blazes/internal/sim"
)

// Workload is a runnable system under test: it exposes its annotated
// dataflow for analysis and can execute one seeded run under a fault plan
// with a chosen delivery mechanism installed (CoordNone strips all
// coordination).
//
// Run must be safe for concurrent calls with distinct seeds: the parallel
// sweep explores many seeded schedules at once, each on its own simulator.
// Every built-in workload satisfies this by constructing all per-run state
// inside Run.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Graph returns the annotated dataflow the analyzer reasons about.
	Graph() (*dataflow.Graph, error)
	// Supports reports whether the workload can install mech.
	Supports(mech dataflow.Coordination) bool
	// Run executes one seeded schedule and returns the observable outcome.
	Run(seed int64, plan FaultPlan, mech dataflow.Coordination) (Outcome, error)
}

// poolAware is implemented by workloads that can use a worker pool inside
// one run (e.g. replica construction and quiescence digests); the harness
// hands them the sweep's pool before running.
type poolAware interface {
	setPool(*sim.Pool)
}

// Config tunes a verification run.
type Config struct {
	// Seeds is the number of schedules explored per (mechanism, plan)
	// configuration; 0 selects DefaultSeeds. Negative is an error.
	Seeds int
	// Plans is the fault-plan sweep; nil selects DefaultPlans.
	Plans []FaultPlan
	// PreferSequencing selects M1 over M2 when synthesis must order.
	PreferSequencing bool
	// Strategy optionally names a registered strategy to prefer during
	// synthesis (dataflow.RegisterStrategy); empty keeps the default
	// sealing-then-ordering chain. Unknown names are rejected.
	Strategy string
	// Parallelism is the worker count for exploring seeded schedules
	// concurrently. Each seed runs on its own simulator and the oracle
	// folds outcomes in seed order, so the verdict — anomalies, details,
	// JSON report — is byte-identical to a sequential sweep. 0 or 1 keeps
	// the sweep sequential; -1 selects GOMAXPROCS. Values below -1 are an
	// error.
	Parallelism int
}

// validate rejects configurations that previously slipped through
// silently: Seeds and Parallelism are defaulted only at their documented
// sentinel values (0, and -1 respectively), never for arbitrary negatives.
func (cfg Config) validate() error {
	if cfg.Seeds < 0 {
		return fmt.Errorf("chaos: Seeds must be non-negative (got %d; 0 selects the default %d)", cfg.Seeds, DefaultSeeds)
	}
	if cfg.Parallelism < -1 {
		return fmt.Errorf("chaos: Parallelism must be ≥ -1 (got %d; -1 selects one worker per CPU)", cfg.Parallelism)
	}
	if cfg.Strategy != "" {
		if _, err := dataflow.LookupStrategy(cfg.Strategy); err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
	}
	return nil
}

// DefaultSeeds is the schedule count the acceptance bar demands per
// configuration.
const DefaultSeeds = 64

// Sweep is the oracle verdict for one (mechanism, plan) configuration
// explored across Seeds schedules.
type Sweep struct {
	Mechanism string    `json:"mechanism"`
	Plan      string    `json:"plan"`
	Seeds     int       `json:"seeds"`
	Observed  Anomalies `json:"observed"`
	Allowed   Anomalies `json:"allowed"`
	// OK: the observed anomalies are within what Figure 5 permits for the
	// mechanism.
	OK bool `json:"ok"`
	// Detail describes the first disagreement found (empty when none).
	Detail string `json:"detail,omitempty"`
}

// Report is the outcome of one Check: the analyzer's verdict, the
// synthesized strategies, and the oracle verdicts for the coordinated and
// stripped sweeps.
type Report struct {
	Workload      string   `json:"workload"`
	Verdict       string   `json:"verdict"`
	Deterministic bool     `json:"deterministic"`
	Strategies    []string `json:"strategies,omitempty"`
	// Coordinated holds one sweep per (recommended mechanism, plan):
	// outcome invariance under the synthesized coordination (or, for
	// confluent programs, under no coordination at all).
	Coordinated []Sweep `json:"coordinated"`
	// Uncoordinated holds the divergence-reproduction sweeps: the same
	// non-confluent program with coordination stripped. Empty for
	// confluent programs.
	Uncoordinated []Sweep `json:"uncoordinated,omitempty"`
	// DivergenceReproduced: at least one stripped sweep exhibited an
	// anomaly, confirming the coordination was load-bearing. Vacuously
	// true when there is nothing to strip: confluent programs, and
	// workloads that cannot run uncoordinated (no stripped sweeps are
	// listed in either case).
	DivergenceReproduced bool `json:"divergence_reproduced"`
	// Holds: the two-sided guarantee held — every coordinated sweep was
	// outcome-invariant (within Figure 5's allowance) and, for
	// non-confluent programs, stripping coordination reproduced
	// divergence.
	Holds bool `json:"holds"`
}

// allowedAnomalies encodes Figure 5's row for each mechanism: sealing
// (whole or per-partition) and preordained orders (sequencing, quorum
// stamps) eliminate every class; a dynamic ordering service removes
// replication anomalies but not cross-run nondeterminism; a confluent
// component — including one made confluent by a merge rewrite — needs
// nothing (on the eventual-outcome comparison).
func allowedAnomalies(mech dataflow.Coordination) Anomalies {
	if mech == dataflow.CoordDynamicOrder {
		return Anomalies{Run: true}
	}
	return Anomalies{}
}

// coordinations enumerates every delivery mechanism in declaration order.
var coordinations = []dataflow.Coordination{
	dataflow.CoordNone,
	dataflow.CoordSequenced,
	dataflow.CoordDynamicOrder,
	dataflow.CoordSealed,
	dataflow.CoordQuorumOrder,
	dataflow.CoordMergeRewrite,
	dataflow.CoordPartitionSealed,
}

// ParseCoordination resolves the canonical mechanism string (the
// Coordination String form used in every Sweep and Cell) back to the
// enum — the inverse every wire consumer (sweep workers, trace replay)
// relies on.
func ParseCoordination(s string) (dataflow.Coordination, error) {
	for _, c := range coordinations {
		if c.String() == s {
			return c, nil
		}
	}
	known := make([]string, len(coordinations))
	for i, c := range coordinations {
		known[i] = c.String()
	}
	return 0, fmt.Errorf("chaos: unknown coordination mechanism %q (mechanisms: %s)", s, strings.Join(known, ", "))
}

// Cell identifies one independently runnable sweep cell of a Check: a
// (workload, mechanism, fault plan) configuration and the seed range
// [1, Seeds] it explores. Cells are the unit of distribution — a cell's
// seeds can be sharded across processes and the partial outcomes merged in
// seed order without changing a byte of the verdict.
type Cell struct {
	// Workload names the workload (resolvable via LookupWorkload).
	Workload string `json:"workload"`
	// Mechanism is the canonical Coordination string (ParseCoordination
	// inverts it).
	Mechanism string `json:"mechanism"`
	// Plan is the fault plan shaping every link.
	Plan FaultPlan `json:"plan"`
	// Seeds is the schedule count; the cell explores seeds 1..Seeds.
	Seeds int `json:"seeds"`
	// Confluent selects the oracle's eventual-outcome-only comparison
	// (bare runs of certified-confluent programs).
	Confluent bool `json:"confluent,omitempty"`
	// Stripped marks a divergence-reproduction sweep: coordination removed,
	// observed anomalies documented rather than held to an allowance.
	Stripped bool `json:"stripped,omitempty"`
}

// CheckPlan is the execution plan of one Check: the analyzer's verdict and
// the ordered cells to sweep. PlanCheck derives it; FoldCell turns each
// cell's outcomes into its Sweep; Assemble reassembles the Report. Check
// itself is exactly plan → run → fold → assemble, so any other executor
// (the distributed sweep coordinator) that preserves cell order and
// seed-ordered folding produces byte-identical reports.
type CheckPlan struct {
	// Workload is the planned workload.
	Workload Workload
	// Verdict, Deterministic, Strategies mirror the Report header.
	Verdict       string
	Deterministic bool
	Strategies    []string
	// Cells lists the sweeps to run, coordinated cells first, stripped
	// cells last, in the exact order Check appends them.
	Cells []Cell
	// VacuousReproduction marks plans with nothing to strip (confluent
	// programs, or workloads that cannot run uncoordinated):
	// DivergenceReproduced is vacuously true.
	VacuousReproduction bool
}

// PlanCheck analyzes the workload's dataflow, synthesizes coordination and
// lays out the sweep cells Check would run, without running any of them.
func PlanCheck(w Workload, cfg Config) (*CheckPlan, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Seeds == 0 {
		cfg.Seeds = DefaultSeeds
	}
	if cfg.Plans == nil {
		cfg.Plans = DefaultPlans()
	}
	g, err := w.Graph()
	if err != nil {
		return nil, fmt.Errorf("chaos: %s: graph: %w", w.Name(), err)
	}
	an, err := dataflow.Analyze(g)
	if err != nil {
		return nil, fmt.Errorf("chaos: %s: analyze: %w", w.Name(), err)
	}
	p := &CheckPlan{
		Workload:      w,
		Verdict:       an.Verdict.String(),
		Deterministic: an.Deterministic(),
	}

	// A deterministic verdict does not by itself mean "run bare": when the
	// determinism rests on sealed inputs, the runtime must still install
	// the punctuation/voting protocol, and Synthesize says so. Only a
	// deterministic program with *no* synthesized strategies is confluent
	// in the run-it-bare sense.
	strategies := dataflow.Synthesize(an, dataflow.SynthesisOptions{
		PreferSequencing: cfg.PreferSequencing,
		Strategy:         cfg.Strategy,
	})
	bare := an.Deterministic() && len(strategies) == 0

	var mechs []dataflow.Coordination
	if bare {
		mechs = []dataflow.Coordination{dataflow.CoordNone}
	} else {
		seen := map[dataflow.Coordination]bool{}
		for _, st := range strategies {
			p.Strategies = append(p.Strategies, st.String())
			if st.Mechanism == dataflow.CoordNone || seen[st.Mechanism] {
				continue
			}
			seen[st.Mechanism] = true
			if w.Supports(st.Mechanism) {
				mechs = append(mechs, st.Mechanism)
			}
		}
		if len(mechs) == 0 {
			return nil, fmt.Errorf("chaos: %s: analyzer recommends %v but the workload supports none of it",
				w.Name(), p.Strategies)
		}
	}

	for _, mech := range mechs {
		// A merge rewrite makes the component confluent rather than
		// ordering its inputs: the oracle compares eventual outcomes, as
		// for natively confluent programs.
		confluent := bare || mech == dataflow.CoordMergeRewrite
		for _, plan := range cfg.Plans {
			p.Cells = append(p.Cells, Cell{
				Workload:  w.Name(),
				Mechanism: mech.String(),
				Plan:      plan,
				Seeds:     cfg.Seeds,
				Confluent: confluent,
			})
		}
	}
	if bare || !w.Supports(dataflow.CoordNone) {
		// Nothing to strip: either the program is confluent, or the
		// workload cannot run uncoordinated — the reproduction half of
		// the check is vacuous and must not fail the verdict.
		p.VacuousReproduction = true
	} else {
		for _, plan := range cfg.Plans {
			p.Cells = append(p.Cells, Cell{
				Workload:  w.Name(),
				Mechanism: dataflow.CoordNone.String(),
				Plan:      plan,
				Seeds:     cfg.Seeds,
				Stripped:  true,
			})
		}
	}
	return p, nil
}

// RunCell executes one cell's seeds in [from, to) (1-based, to exclusive)
// and returns one Outcome per seed in seed order. With a pool the seeded
// runs — each on its own simulator — execute concurrently; outcomes land
// at their seed's index, so the result is byte-identical to a sequential
// run. Cancelling ctx stops the workers at the next seed boundary.
func RunCell(ctx context.Context, w Workload, cell Cell, pool *sim.Pool, from, to int) ([]Outcome, error) {
	mech, err := ParseCoordination(cell.Mechanism)
	if err != nil {
		return nil, err
	}
	if from < 1 || to > cell.Seeds+1 || from > to {
		return nil, fmt.Errorf("chaos: %s under %s/%s: seed range [%d, %d) outside [1, %d]",
			cell.Workload, cell.Mechanism, cell.Plan.Name, from, to, cell.Seeds)
	}
	n := to - from
	outcomes := make([]Outcome, n)
	errs := make([]error, n)
	if err := pool.MapContext(ctx, n, func(i int) {
		outcomes[i], errs[i] = w.Run(int64(from+i), cell.Plan, mech)
	}); err != nil {
		return nil, fmt.Errorf("chaos: %s under %s/%s: %w", w.Name(), cell.Mechanism, cell.Plan.Name, err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("chaos: %s under %s/%s seed %d: %w", w.Name(), cell.Mechanism, cell.Plan.Name, from+i, err)
		}
	}
	return outcomes, nil
}

// FoldCell merges a cell's per-seed outcomes — outcomes[i] is seed i+1 —
// through the confluence oracle in seed order and renders the cell's Sweep
// verdict. The fold is pure and deterministic: however the outcomes were
// produced (one process, a pool, or many worker processes), equal outcomes
// yield a byte-identical Sweep.
func FoldCell(cell Cell, outcomes []Outcome) Sweep {
	oracle := NewOracle(cell.Confluent)
	for i, out := range outcomes {
		oracle.Observe(int64(i+1), out)
	}
	s := Sweep{
		Mechanism: cell.Mechanism,
		Plan:      cell.Plan.Name,
		Seeds:     cell.Seeds,
		Observed:  oracle.Anomalies(),
	}
	if cell.Stripped {
		// Stripped sweeps document what went wrong, they are not held to
		// an allowance.
		s.Allowed = Anomalies{Run: true, Inst: true, Diverge: true}
		s.OK = true
	} else {
		mech, err := ParseCoordination(cell.Mechanism)
		if err == nil {
			s.Allowed = allowedAnomalies(mech)
		}
		s.OK = s.Observed.Within(s.Allowed)
	}
	if d := oracle.Details(); len(d) > 0 {
		s.Detail = d[0]
	}
	return s
}

// Assemble rebuilds the Report from one Sweep per cell, in cell order.
func (p *CheckPlan) Assemble(sweeps []Sweep) (*Report, error) {
	if len(sweeps) != len(p.Cells) {
		return nil, fmt.Errorf("chaos: %s: %d sweeps for %d cells", p.Workload.Name(), len(sweeps), len(p.Cells))
	}
	rep := &Report{
		Workload:      p.Workload.Name(),
		Verdict:       p.Verdict,
		Deterministic: p.Deterministic,
		Strategies:    p.Strategies,
	}
	rep.DivergenceReproduced = p.VacuousReproduction
	for i, s := range sweeps {
		if p.Cells[i].Stripped {
			rep.Uncoordinated = append(rep.Uncoordinated, s)
			if s.Observed.Any() {
				rep.DivergenceReproduced = true
			}
		} else {
			rep.Coordinated = append(rep.Coordinated, s)
		}
	}
	rep.Holds = rep.DivergenceReproduced
	for _, s := range rep.Coordinated {
		if !s.OK {
			rep.Holds = false
		}
	}
	return rep, nil
}

// Check verifies the Blazes guarantee for one workload:
//
//  1. analyze the workload's dataflow and synthesize strategies;
//  2. if the verdict is deterministic and no strategy is required
//     (confluent), run the workload *without* coordination under every
//     fault plan and assert eventual-outcome invariance across schedules;
//  3. otherwise install each recommended mechanism the workload supports
//     and assert the runs are outcome-invariant within Figure 5's
//     allowance for that mechanism;
//  4. strip the coordination and assert that at least one fault plan
//     reproduces a detected divergence.
//
// Cancelling ctx aborts the check promptly: in-flight seeded runs finish,
// queued ones never start, and Check returns the context's error.
func Check(ctx context.Context, w Workload, cfg Config) (*Report, error) {
	rep, _, err := check(ctx, w, cfg, false)
	return rep, err
}

// CheckShrink is Check plus anomaly shrinking: every cell whose sweep
// observed an anomaly — in practice the stripped divergence-reproduction
// sweeps — is delta-debugged down to a 1-minimal replayable Trace. Traces
// are returned in cell order.
func CheckShrink(ctx context.Context, w Workload, cfg Config) (*Report, []*Trace, error) {
	rep, outcomes, err := check(ctx, w, cfg, true)
	if err != nil {
		return nil, nil, err
	}
	plan, err := PlanCheck(w, cfg)
	if err != nil {
		return nil, nil, err
	}
	var traces []*Trace
	for i, cell := range plan.Cells {
		if !FoldCell(cell, outcomes[i]).Observed.Any() {
			continue
		}
		tr, err := ShrinkCell(ctx, w, cell, outcomes[i])
		if err != nil {
			return nil, nil, fmt.Errorf("chaos: shrink %s under %s/%s: %w", cell.Workload, cell.Mechanism, cell.Plan.Name, err)
		}
		traces = append(traces, tr)
	}
	return rep, traces, nil
}

// check is the shared execution path: plan, run every cell, fold, assemble.
// With keep it also returns the raw per-cell outcomes (for shrinking).
func check(ctx context.Context, w Workload, cfg Config, keep bool) (*Report, [][]Outcome, error) {
	plan, err := PlanCheck(w, cfg)
	if err != nil {
		return nil, nil, err
	}
	var pool *sim.Pool
	if cfg.Parallelism != 0 && cfg.Parallelism != 1 {
		pool = sim.NewPool(cfg.Parallelism)
	}
	if pa, ok := w.(poolAware); ok {
		pa.setPool(pool)
	}
	sweeps := make([]Sweep, len(plan.Cells))
	var kept [][]Outcome
	if keep {
		kept = make([][]Outcome, len(plan.Cells))
	}
	for i, cell := range plan.Cells {
		outcomes, err := RunCell(ctx, w, cell, pool, 1, cell.Seeds+1)
		if err != nil {
			return nil, nil, err
		}
		sweeps[i] = FoldCell(cell, outcomes)
		if keep {
			kept[i] = outcomes
		}
	}
	rep, err := plan.Assemble(sweeps)
	if err != nil {
		return nil, nil, err
	}
	return rep, kept, nil
}

// Suite returns the standard verification workloads, covering the Storm,
// Bloom, and synthetic substrates and every Figure 5 mechanism.
func Suite() []Workload {
	return []Workload{
		Wordcount(),
		ReplicatedReport(dataflow.THRESH),
		ReplicatedReport(dataflow.POOR),
		ReplicatedReport(dataflow.CAMPAIGN),
		AdNetwork(),
		SyntheticSet(),
		SyntheticChains(true),
		SyntheticChains(false),
	}
}

// LookupWorkload resolves a workload name to a fresh workload instance:
// the Suite workloads by their fixed names, plus generated topology
// workloads whose name encodes their configuration
// ("generated-<components>c-s<seed>"), so any process holding only a name
// — a sweep worker, a trace replayer — reconstructs the exact system under
// test.
func LookupWorkload(name string) (Workload, error) {
	for _, w := range Suite() {
		if w.Name() == name {
			return w, nil
		}
	}
	if rest, ok := strings.CutPrefix(name, "generated-"); ok {
		compStr, seedStr, found := strings.Cut(rest, "c-s")
		if found {
			components, err1 := strconv.Atoi(compStr)
			seed, err2 := strconv.ParseInt(seedStr, 10, 64)
			if err1 == nil && err2 == nil && components > 0 {
				return Generated(components, seed), nil
			}
		}
		return nil, fmt.Errorf("chaos: malformed generated workload name %q (want generated-<components>c-s<seed>)", name)
	}
	names := make([]string, 0, len(Suite()))
	for _, w := range Suite() {
		names = append(names, w.Name())
	}
	return nil, fmt.Errorf("chaos: unknown workload %q (workloads: %s, generated-<n>c-s<seed>)", name, strings.Join(names, ", "))
}

// Summary renders a one-paragraph human-readable account of the report.
func (r *Report) Summary() string {
	status := "HOLDS"
	if !r.Holds {
		status = "VIOLATED"
	}
	out := fmt.Sprintf("%s: verdict %s (deterministic=%v) — guarantee %s\n", r.Workload, r.Verdict, r.Deterministic, status)
	for _, st := range r.Strategies {
		out += fmt.Sprintf("  strategy: %s\n", st)
	}
	for _, s := range r.Coordinated {
		out += fmt.Sprintf("  coordinated %-22s plan %-10s seeds %-3d observed [%s] allowed [%s] ok=%v\n",
			s.Mechanism, s.Plan, s.Seeds, s.Observed, s.Allowed, s.OK)
		if s.Detail != "" && !s.OK {
			out += fmt.Sprintf("    detail: %s\n", s.Detail)
		}
	}
	for _, s := range r.Uncoordinated {
		out += fmt.Sprintf("  stripped    %-22s plan %-10s seeds %-3d observed [%s]\n",
			s.Mechanism, s.Plan, s.Seeds, s.Observed)
	}
	if len(r.Uncoordinated) > 0 {
		out += fmt.Sprintf("  divergence reproduced without coordination: %v\n", r.DivergenceReproduced)
	}
	return out
}
