package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"blazes/internal/core"
	"blazes/internal/fd"
)

// Strategy is a synthesized coordination plan for one component (Section
// V-B): a seal-based protocol (per-partition barriers driven by producer
// punctuations and a unanimous vote), an ordering mechanism, or one of the
// registered extensions (quorum ordering, merge rewrite, per-partition
// sealing — see RegisterStrategy).
type Strategy struct {
	// Component names the component whose inputs are coordinated.
	Component string
	// Mechanism is the chosen delivery mechanism.
	Mechanism Coordination
	// SealKeys maps each gating input stream to the seal key on which its
	// partitions close (CoordSealed only).
	SealKeys map[string]fd.AttrSet
	// Inputs lists the input streams routed through the ordering service
	// (CoordSequenced / CoordDynamicOrder only).
	Inputs []string
	// Reason explains why this mechanism was selected.
	Reason string
}

// String summarizes the strategy.
func (s Strategy) String() string {
	switch s.Mechanism {
	case CoordSealed, CoordPartitionSealed:
		keys := make([]string, 0, len(s.SealKeys))
		for stream, key := range s.SealKeys {
			keys = append(keys, fmt.Sprintf("%s on (%s)", stream, key))
		}
		sort.Strings(keys)
		style := "seal-based"
		if s.Mechanism == CoordPartitionSealed {
			style = "per-partition seal-based"
		}
		return fmt.Sprintf("%s: %s coordination — %s", s.Component, style, strings.Join(keys, "; "))
	case CoordSequenced, CoordDynamicOrder, CoordQuorumOrder:
		return fmt.Sprintf("%s: %s over inputs %s", s.Component, s.Mechanism, strings.Join(s.Inputs, ", "))
	case CoordMergeRewrite:
		return fmt.Sprintf("%s: merge rewrite — order-sensitive folds replaced by a commutative merge", s.Component)
	default:
		return fmt.Sprintf("%s: no coordination required", s.Component)
	}
}

// SynthesisOptions tunes strategy selection.
type SynthesisOptions struct {
	// PreferSequencing selects M1 (preordained order, e.g. Storm
	// transactional batch ids) instead of M2 when ordering is required —
	// appropriate for replay-based fault tolerance, which needs cross-run
	// determinism. The default M2 models a dynamic ordering service such
	// as Zookeeper, which removes replication anomalies but not cross-run
	// nondeterminism (Figure 5).
	PreferSequencing bool
	// Strategy optionally names a registered strategy (RegisterStrategy)
	// to try first for every flagged component; where it does not apply,
	// synthesis falls back to the default sealing-then-ordering chain.
	// Unknown names are ignored here — boundary layers (Analyzer options,
	// CLI flags, service validation) reject them via LookupStrategy before
	// synthesis runs.
	Strategy string
}

// Synthesize inspects an analysis and produces one strategy per component
// that needs coordination machinery:
//
//   - Components where an anomaly *originates* (an inference rule fired on
//     deterministic inputs and reconciliation added Run/Inst/Diverge) get a
//     sealing strategy when the derived labels of their rendezvousing
//     streams carry compatible seals, and an ordering strategy otherwise.
//   - Components that consume compatible seals (blocked per-partition
//     processing) get a CoordSealed strategy so the runtime installs the
//     punctuation/voting protocol, even though their outputs are already
//     deterministic.
//
// Components that merely propagate upstream nondeterminism produce no
// strategy: coordinating them cannot repair contents that already differ
// (fix the origin and re-analyze — see Repair).
//
// Selection dispatches through the strategy registry: the preferred
// strategy (opts.Strategy, if set and applicable) is tried first, then the
// default sealing-then-ordering chain, and the first strategy whose Plan
// accepts the component wins.
func Synthesize(a *Analysis, opts SynthesisOptions) []Strategy {
	chain := defaultChain()
	if opts.Strategy != "" {
		if def, err := LookupStrategy(opts.Strategy); err == nil {
			chain = append([]StrategyDef{def}, chain...)
		}
	}

	var out []Strategy
	cg := a.Collapsed
	for _, comp := range cg.Components() {
		if comp.Coordination != CoordNone {
			continue // already coordinated
		}
		ca := a.Components[comp.Name]
		if ca == nil {
			continue
		}
		ctx := StrategyContext{
			Analysis:         a,
			Graph:            cg,
			Component:        comp,
			PreferSequencing: opts.PreferSequencing,
		}
		switch {
		case originatesAnomaly(ca):
			ctx.Origin = true
		case consumesSeal(ca):
			ctx.Origin = false
		default:
			continue
		}
		for _, def := range chain {
			if st, ok := def.Plan(&ctx); ok {
				out = append(out, st)
				break
			}
		}
	}
	return out
}

// originatesAnomaly reports whether reconciliation added an anomaly label
// (Run or worse) at this component *and* some inference rule fired on a
// deterministic input — i.e. the nondeterminism is born here rather than
// inherited.
func originatesAnomaly(ca *ComponentAnalysis) bool {
	added := false
	for _, rec := range ca.Reconciliations {
		for _, l := range rec.Added {
			if l.Severity() >= core.Run.Severity() {
				added = true
			}
		}
	}
	if !added {
		return false
	}
	for _, st := range ca.Steps {
		switch st.Rule {
		case core.Rule1, core.Rule2, core.Rule4, core.Rule1Seal:
			if st.In.Kind == core.LAsync || st.In.Kind == core.LSeal {
				return true
			}
		}
	}
	return false
}

// consumesSeal reports whether the component blocks on sealed partitions:
// an order-sensitive path consumed a compatible seal, or a protected NDRead
// was reconciled to Async.
func consumesSeal(ca *ComponentAnalysis) bool {
	for _, st := range ca.Steps {
		if st.In.Kind == core.LSeal && st.Ann.OrderSensitive() && st.Rule == core.RuleP {
			return true
		}
	}
	for _, rec := range ca.Reconciliations {
		hasND := false
		for _, l := range rec.Input {
			if l.Kind == core.LNDRead {
				hasND = true
			}
		}
		if !hasND {
			continue
		}
		for _, l := range rec.Added {
			if l.Equal(core.Async) {
				return true // protected NDRead
			}
		}
	}
	return false
}

// sealPlan checks M3 applicability using the *derived* labels of the input
// streams (so seals that propagated through upstream confluent components
// count). For every order-sensitive path:
//
//   - a write path's own input streams must carry compatible Seal labels
//     (its state partitions must stop changing);
//   - a read path rendezvouses with the component's state: the streams
//     feeding the component's write paths must carry compatible Seal labels
//     (the read blocks until the partition it touches is complete). A read
//     path with no write siblings reads its own input, which must then be
//     sealed itself.
//
// It returns the per-stream seal keys gating the component.
func sealPlan(a *Analysis, g *Graph, comp *Component) (map[string]fd.AttrSet, bool) {
	writeIfaces := map[string]bool{}
	for _, p := range comp.Paths {
		if p.Ann.Write {
			writeIfaces[p.From] = true
		}
	}

	keys := map[string]fd.AttrSet{}
	checkIface := func(iface string, gate core.Annotation) bool {
		streams := g.StreamsInto(comp.Name, iface)
		if len(streams) == 0 {
			return false
		}
		for _, s := range streams {
			l := a.StreamLabels[s.Name]
			if l.Kind != core.LSeal {
				return false
			}
			if !gate.SealCompatible(l.Key, comp.Deps) {
				return false
			}
			keys[s.Name] = l.Key
		}
		return true
	}

	found := false
	for _, p := range comp.Paths {
		if !p.Ann.OrderSensitive() {
			continue
		}
		found = true
		if p.Ann.GateStar || p.Ann.Gate.IsEmpty() {
			return nil, false
		}
		if p.Ann.Write {
			if !checkIface(p.From, p.Ann) {
				return nil, false
			}
			continue
		}
		// Read path: gate on the state-building inputs.
		rendezvous := sortedBoolKeys(writeIfaces)
		if len(rendezvous) == 0 {
			rendezvous = []string{p.From}
		}
		for _, iface := range rendezvous {
			if !checkIface(iface, p.Ann) {
				return nil, false
			}
		}
	}
	if !found || len(keys) == 0 {
		return nil, false
	}
	return keys, true
}

// consumedSealKeys reports the seal keys observed on inputs to
// order-sensitive paths (fallback reporting).
func consumedSealKeys(a *Analysis, g *Graph, comp *Component) map[string]fd.AttrSet {
	keys := map[string]fd.AttrSet{}
	for _, p := range comp.Paths {
		for _, s := range g.StreamsInto(comp.Name, p.From) {
			if l := a.StreamLabels[s.Name]; l.Kind == core.LSeal {
				keys[s.Name] = l.Key
			}
		}
	}
	return keys
}

func allInputStreams(g *Graph, comp *Component) []string {
	var out []string
	for _, in := range comp.Inputs() {
		for _, s := range g.StreamsInto(comp.Name, in) {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

func sortedBoolKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Apply returns a copy of g with the strategies applied (components marked
// with their coordination mechanism). Strategies synthesized against a
// collapsed graph may name supernodes ("scc+A+B"); those are applied to
// every member component of the original graph.
func Apply(g *Graph, strategies []Strategy) *Graph {
	ng := g.Clone()
	for _, st := range strategies {
		if comp := ng.Lookup(st.Component); comp != nil {
			comp.Coordination = st.Mechanism
			continue
		}
		if rest, ok := strings.CutPrefix(st.Component, "scc+"); ok {
			for _, member := range strings.Split(rest, "+") {
				if comp := ng.Lookup(member); comp != nil {
					comp.Coordination = st.Mechanism
				}
			}
		}
	}
	return ng
}

// Repair analyzes g, synthesizes strategies, applies them, and re-analyzes,
// iterating until no further strategies are produced. It returns the final
// analysis and all strategies applied, in application order.
func Repair(g *Graph, opts SynthesisOptions) (*Analysis, []Strategy, error) {
	var all []Strategy
	cur := g
	for i := 0; i <= len(g.Components()); i++ {
		a, err := Analyze(cur)
		if err != nil {
			return nil, nil, err
		}
		st := Synthesize(a, opts)
		if len(st) == 0 {
			return a, all, nil
		}
		all = append(all, st...)
		cur = Apply(cur, st)
	}
	a, err := Analyze(cur)
	return a, all, err
}
