package dataflow

import (
	"blazes/internal/core"
	"blazes/internal/fd"
)

// Constructors for the paper's two running examples, used by the Section VI
// case-study tests, the examples, and the experiment harness.

// WordcountTopology builds the Storm streaming wordcount dataflow of
// Section I-B / VI-A: Splitter (CR) → Count (OW_{word,batch}) → Commit (CW).
// When sealBatch is set, the tweet source carries Seal_batch — the paper's
// "nontransactional" configuration whose outputs Blazes proves
// deterministic.
func WordcountTopology(sealBatch bool) *Graph {
	g := NewGraph("storm-wordcount")
	g.Component("Splitter").AddPath("tweets", "words", core.CR)
	g.Component("Count").AddPath("words", "counts", core.OWGate("word", "batch"))
	g.Component("Commit").AddPath("counts", "db", core.CW)

	src := g.Source("tweets", "Splitter", "tweets")
	if sealBatch {
		src.Seal = fd.NewAttrSet("batch")
	}
	g.Connect("words", "Splitter", "words", "Count", "words")
	g.Connect("counts", "Count", "counts", "Commit", "counts")
	g.Sink("db", "Commit", "db")
	return g
}

// AdQuery selects which continuous query (Figure 6) the reporting server
// runs; it determines the annotation of Report's request→response path.
type AdQuery string

// The four reporting-server queries of Figure 6.
const (
	THRESH   AdQuery = "THRESH"
	POOR     AdQuery = "POOR"
	WINDOW   AdQuery = "WINDOW"
	CAMPAIGN AdQuery = "CAMPAIGN"
)

// Annotation returns the C.O.W.R. annotation of the query's request→response
// path, as derived in Section VI-B1.
func (q AdQuery) Annotation() core.Annotation {
	switch q {
	case THRESH:
		return core.CR
	case POOR:
		return core.ORGate("id")
	case WINDOW:
		return core.ORGate("id", "window")
	case CAMPAIGN:
		return core.ORGate("id", "campaign")
	default:
		return core.ORStar()
	}
}

// AdNetwork builds the ad-tracking dataflow of Figures 3/4: ad servers send
// click logs to replicated reporting servers; analysts query through a
// caching tier with a gossip self-edge. query selects the Report component's
// standing query; sealKey, when non-empty, seals the click stream on those
// attributes (e.g. "campaign" for the CAMPAIGN experiments).
func AdNetwork(query AdQuery, sealKey ...string) *Graph {
	g := NewGraph("ad-network-" + string(query))

	report := g.Component("Report")
	report.Rep = true
	report.AddPath("click", "response", core.CW)
	report.AddPath("request", "response", query.Annotation())

	cache := g.Component("Cache")
	cache.Rep = true
	cache.AddPath("request", "response", core.CR)
	cache.AddPath("response", "response", core.CW)
	cache.AddPath("request", "request", core.CR)

	clicks := g.Source("clicks", "Report", "click")
	if len(sealKey) > 0 {
		clicks.Seal = fd.NewAttrSet(sealKey...)
	}
	g.Source("analyst-q", "Cache", "request")
	g.Connect("q", "Cache", "request", "Report", "request")
	g.Connect("r", "Report", "response", "Cache", "response")
	// The gossip self-edge: caches asynchronously share responses.
	g.Connect("gossip", "Cache", "response", "Cache", "response")
	g.Sink("analyst-r", "Cache", "response")
	return g
}
