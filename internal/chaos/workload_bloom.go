package chaos

import (
	"fmt"
	"sort"

	"blazes/internal/adtrack"
	"blazes/internal/bloom"
	"blazes/internal/coord"
	"blazes/internal/dataflow"
	"blazes/internal/fd"
	"blazes/internal/sim"
)

// BloomReportWorkload runs replicas of the paper's reporting-server Bloom
// module (Figure 6) under chaotic delivery, with the component annotations
// extracted automatically by the white-box analyzer — so the guarantee is
// checked end to end from rules, not from hand annotations. The query
// selects the variant:
//
//	THRESH   — monotone threshold: confluent, the harness runs it bare;
//	POOR     — non-monotone count with no compatible seal: the analyzer
//	           recommends ordering (M2, or M1 under PreferSequencing);
//	CAMPAIGN — non-monotone count whose gate matches a campaign seal on
//	           the click source: the analyzer recommends sealing (M3).
//
// Each replica is one bloom.Node; ad servers stream clicks and analysts
// pose requests. A request triggers a timestep and its answers are
// collected per request id; the final digest combines the persistent click
// log with the answers every replica gives at quiescence.
type BloomReportWorkload struct {
	Query           dataflow.AdQuery
	Threshold       int64
	Replicas        int
	Servers         int
	ClicksPerServer int
	Campaigns       int
	AdsPerCampaign  int
	Requests        int

	// pool, when set by the harness, parallelizes per-replica work inside
	// one run: node construction (module build + rule compilation) and the
	// quiescence digests, both outside the simulator's event loop. Nodes
	// are fully independent, so results are identical either way.
	pool *sim.Pool
}

// setPool implements poolAware.
func (w *BloomReportWorkload) setPool(p *sim.Pool) { w.pool = p }

// ReplicatedReport returns the default chaos-sized reporting server for the
// given query.
func ReplicatedReport(query dataflow.AdQuery) *BloomReportWorkload {
	return &BloomReportWorkload{
		Query:           query,
		Threshold:       8,
		Replicas:        2,
		Servers:         2,
		ClicksPerServer: 30,
		Campaigns:       3,
		AdsPerCampaign:  2,
		Requests:        6,
	}
}

// Name implements Workload.
func (w *BloomReportWorkload) Name() string { return "bloom-report-" + string(w.Query) }

// sealKey returns the seal attributes of the click source (CAMPAIGN only).
func (w *BloomReportWorkload) sealKey() []string {
	if w.Query == dataflow.CAMPAIGN {
		return []string{adtrack.ColCampaign}
	}
	return nil
}

// Graph implements Workload: the Report component alone, annotations
// extracted from its rules.
func (w *BloomReportWorkload) Graph() (*dataflow.Graph, error) {
	mod, err := adtrack.ReportModule(w.Query, w.Threshold)
	if err != nil {
		return nil, err
	}
	ra, err := bloom.Analyze(mod)
	if err != nil {
		return nil, err
	}
	g := dataflow.NewGraph(w.Name())
	ra.Component(g, true)
	clicks := g.Source("clicks", "Report", "click")
	if key := w.sealKey(); len(key) > 0 {
		clicks.Seal = fd.NewAttrSet(key...)
	}
	g.Source("requests", "Report", "request")
	g.Sink("responses", "Report", "response")
	return g, nil
}

// Supports implements Workload.
func (w *BloomReportWorkload) Supports(mech dataflow.Coordination) bool {
	switch mech {
	case dataflow.CoordNone, dataflow.CoordSequenced, dataflow.CoordDynamicOrder:
		return true
	case dataflow.CoordSealed:
		return len(w.sealKey()) > 0
	}
	return false
}

// bloomReplica drives one node and collects its per-request answers.
type bloomReplica struct {
	node *bloom.Node
	// answers maps request id → deduped answer rows.
	answers map[string]map[string]bool
	order   []string
}

func newBloomReplica(id string, w *BloomReportWorkload) (*bloomReplica, error) {
	mod, err := adtrack.ReportModule(w.Query, w.Threshold)
	if err != nil {
		return nil, err
	}
	node, err := bloom.NewNode(id, mod)
	if err != nil {
		return nil, err
	}
	return &bloomReplica{node: node, answers: map[string]map[string]bool{}}, nil
}

func (r *bloomReplica) click(row bloom.Row) error { return r.node.Deliver("click", row) }

// request delivers one analyst request and runs the timestep that answers
// it, folding the response rows into the per-request answer set.
func (r *bloomReplica) request(row bloom.Row) error {
	if err := r.node.Deliver("request", row); err != nil {
		return err
	}
	em, err := r.node.Tick()
	if err != nil {
		return err
	}
	for _, e := range em {
		if e.Collection != "response" {
			continue
		}
		for _, resp := range e.Rows {
			reqid := fmt.Sprint(resp[1])
			set, ok := r.answers[reqid]
			if !ok {
				set = map[string]bool{}
				r.answers[reqid] = set
				r.order = append(r.order, reqid)
			}
			set[resp.String()] = true
		}
	}
	return nil
}

// trace canonicalizes the answers: one entry per answered request, sorted
// by request id, each listing its answer rows in canonical order.
func (r *bloomReplica) trace() []string {
	ids := append([]string{}, r.order...)
	sort.Strings(ids)
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		rows := make([]string, 0, len(r.answers[id]))
		for row := range r.answers[id] {
			rows = append(rows, row)
		}
		out = append(out, fmt.Sprintf("%s→{%s}", id, canonSet(rows)))
	}
	return out
}

// finalDigest drains the node, digests its persistent click log, and
// re-poses every request at quiescence — the eventual answers a confluent
// (or properly coordinated) replica must agree on.
func (r *bloomReplica) finalDigest(requests []adtrack.Request) (string, error) {
	if r.node.Pending() {
		if _, err := r.node.Tick(); err != nil {
			return "", err
		}
	}
	logRows := r.node.Rows("clicklog")
	rows := make([]string, 0, len(logRows))
	for _, row := range logRows {
		rows = append(rows, row.String())
	}
	quiesced := newBloomQuiescentProbe()
	for i, req := range requests {
		probe := req
		probe.ReqID = fmt.Sprintf("fq%d", i)
		if err := r.node.Deliver("request", probe.Row()); err != nil {
			return "", err
		}
		em, err := r.node.Tick()
		if err != nil {
			return "", err
		}
		quiesced.collect(probe.ReqID, em)
	}
	return digest("log{"+canonSet(rows)+"}", "final{"+canonSet(quiesced.entries)+"}"), nil
}

type bloomQuiescentProbe struct{ entries []string }

func newBloomQuiescentProbe() *bloomQuiescentProbe { return &bloomQuiescentProbe{} }

func (p *bloomQuiescentProbe) collect(reqid string, em []bloom.Emission) {
	var rows []string
	for _, e := range em {
		if e.Collection != "response" {
			continue
		}
		for _, resp := range e.Rows {
			if fmt.Sprint(resp[1]) == reqid {
				rows = append(rows, resp.String())
			}
		}
	}
	p.entries = append(p.entries, fmt.Sprintf("%s→{%s}", reqid, canonSet(rows)))
}

// plan returns the click stream and request schedule (identical for every
// seed: the logical workload is fixed; only delivery varies).
func (w *BloomReportWorkload) plan() (clicks []adtrack.Click, requests []adtrack.Request, span sim.Time) {
	span = 60 * sim.Millisecond
	for srv := 0; srv < w.Servers; srv++ {
		for i := 0; i < w.ClicksPerServer; i++ {
			campaign := i % w.Campaigns
			clicks = append(clicks, adtrack.Click{
				ID:       adtrack.AdName(campaign, i%w.AdsPerCampaign),
				Campaign: adtrack.CampaignName(campaign),
				Window:   "w0",
				Server:   adtrack.ServerName(srv),
				Seq:      int64(srv*w.ClicksPerServer + i),
			})
		}
	}
	for i := 0; i < w.Requests; i++ {
		campaign := i % w.Campaigns
		requests = append(requests, adtrack.Request{
			ID:       adtrack.AdName(campaign, i%w.AdsPerCampaign),
			Campaign: adtrack.CampaignName(campaign),
			Window:   "w0",
			ReqID:    fmt.Sprintf("q%d", i),
			At:       10*sim.Millisecond + span*sim.Time(i)/sim.Time(w.Requests),
		})
	}
	return clicks, requests, span
}

// clickTime paces one server's stream across the span.
func clickTime(span sim.Time, perServer, idx int) sim.Time {
	return span * sim.Time(idx) / sim.Time(perServer+1)
}

// Run implements Workload.
func (w *BloomReportWorkload) Run(seed int64, plan FaultPlan, mech dataflow.Coordination) (Outcome, error) {
	s := sim.New(seed)
	link := plan.Shape(sim.LinkConfig{MinDelay: 200 * sim.Microsecond, MaxDelay: 6 * sim.Millisecond})
	clicks, requests, span := w.plan()

	reps := make([]*bloomReplica, w.Replicas)
	repErrs := make([]error, w.Replicas)
	w.pool.Map(w.Replicas, func(i int) {
		reps[i], repErrs[i] = newBloomReplica(fmt.Sprintf("report%d", i), w)
	})
	for _, err := range repErrs {
		if err != nil {
			return Outcome{}, err
		}
	}

	var runErr error
	fail := func(err error) {
		if err != nil && runErr == nil {
			runErr = err
		}
	}
	arrival := func(sent sim.Time) sim.Time { return link.Release(sent, sent+link.Delay(s)) }
	dup := func() bool { return link.DupProb > 0 && s.Rand().Float64() < link.DupProb }

	switch mech {
	case dataflow.CoordNone:
		for ci, c := range clicks {
			row := c.Row()
			at := clickTime(span, w.ClicksPerServer, ci%w.ClicksPerServer)
			for _, r := range reps {
				r := r
				s.At(arrival(at), func() { fail(r.click(row)) })
				if dup() {
					s.At(arrival(at), func() { fail(r.click(row)) })
				}
			}
		}
		for _, req := range requests {
			row := req.Row()
			for _, r := range reps {
				r := r
				s.At(arrival(req.At), func() { fail(r.request(row)) })
				if dup() {
					s.At(arrival(req.At), func() { fail(r.request(row)) })
				}
			}
		}

	case dataflow.CoordSequenced:
		// M1: a preordained total order, identical in every run: clicks in
		// workload order with requests interleaved at fixed positions.
		type step struct {
			click *adtrack.Click
			req   *adtrack.Request
		}
		var order []step
		stride := len(clicks)/(len(requests)+1) + 1
		ri := 0
		for i := range clicks {
			order = append(order, step{click: &clicks[i]})
			if (i+1)%stride == 0 && ri < len(requests) {
				order = append(order, step{req: &requests[ri]})
				ri++
			}
		}
		for ; ri < len(requests); ri++ {
			order = append(order, step{req: &requests[ri]})
		}
		at := sim.Time(0)
		for _, st := range order {
			st := st
			at += 200 * sim.Microsecond
			s.At(at, func() {
				for _, r := range reps {
					if st.click != nil {
						fail(r.click(st.click.Row()))
					} else {
						fail(r.request(st.req.Row()))
					}
				}
			})
		}

	case dataflow.CoordDynamicOrder:
		cfg := coord.DefaultSequencer
		cfg.SubmitDelay = plan.Shape(cfg.SubmitDelay)
		cfg.DeliverDelay = plan.Shape(cfg.DeliverDelay)
		seq := coord.NewSequencer(s, cfg)
		for _, r := range reps {
			r := r
			seq.Subscribe(func(m coord.Sequenced) {
				switch v := m.Msg.(type) {
				case adtrack.Click:
					fail(r.click(v.Row()))
				case adtrack.Request:
					fail(r.request(v.Row()))
				}
			})
		}
		for ci, c := range clicks {
			c := c
			s.At(clickTime(span, w.ClicksPerServer, ci%w.ClicksPerServer), func() { seq.Submit(c) })
		}
		for _, req := range requests {
			req := req
			s.At(req.At, func() { seq.Submit(req) })
		}

	case dataflow.CoordSealed:
		// M3: per-campaign partitions; every server punctuates a campaign
		// after its last record for it, seals ride the server's FIFO
		// stream, and requests are held until their campaign's vote is
		// unanimous.
		registry := coord.NewRegistry(s, link)
		for c := 0; c < w.Campaigns; c++ {
			for srv := 0; srv < w.Servers; srv++ {
				registry.Register(adtrack.CampaignName(c), adtrack.ServerName(srv))
			}
		}
		for ri := range reps {
			r := reps[ri]
			held := map[string][]adtrack.Request{}
			tracker := coord.NewSealTracker(func(partition string, buffered []any) {
				for _, b := range buffered {
					fail(r.click(b.(adtrack.Click).Row()))
				}
				for _, req := range held[partition] {
					fail(r.request(req.Row()))
				}
				delete(held, partition)
			})
			for c := 0; c < w.Campaigns; c++ {
				campaign := adtrack.CampaignName(c)
				registry.Lookup(campaign, func(producers []string) {
					tracker.SetExpected(campaign, producers)
				})
			}
			fifo := newFifoLink(s, link)
			// lastFor tracks each server's final send time per campaign so
			// the punctuation follows its stream.
			lastFor := map[string]sim.Time{}
			for ci, c := range clicks {
				c := c
				at := clickTime(span, w.ClicksPerServer, ci%w.ClicksPerServer)
				key := c.Server + "/" + c.Campaign
				if at > lastFor[key] {
					lastFor[key] = at
				}
				fifo.deliver(c.Server, at, func() { tracker.Data(c.Campaign, c) })
				if dup() {
					fifo.deliver(c.Server, at, func() { tracker.Data(c.Campaign, c) })
				}
			}
			for srv := 0; srv < w.Servers; srv++ {
				for c := 0; c < w.Campaigns; c++ {
					campaign := adtrack.CampaignName(c)
					server := adtrack.ServerName(srv)
					fifo.deliver(server, lastFor[server+"/"+campaign]+sim.Millisecond, func() {
						tracker.Seal(coord.Punctuation{Partition: campaign, Producer: server})
					})
				}
			}
			for _, req := range requests {
				req := req
				s.At(arrival(req.At), func() {
					if tracker.Sealed(req.Campaign) {
						fail(r.request(req.Row()))
					} else {
						held[req.Campaign] = append(held[req.Campaign], req)
					}
				})
			}
		}

	default:
		return Outcome{}, fmt.Errorf("bloom-report: unsupported mechanism %s", mech)
	}

	s.Run()
	if runErr != nil {
		return Outcome{}, runErr
	}
	// The simulation is over; replicas are independent again, so the
	// quiescence digests (drain + re-posed requests per node) can run
	// concurrently and merge in replica order.
	finals := make([]string, len(reps))
	w.pool.Map(len(reps), func(i int) {
		finals[i], repErrs[i] = reps[i].finalDigest(requests)
	})
	out := Outcome{}
	for i, r := range reps {
		if repErrs[i] != nil {
			return Outcome{}, repErrs[i]
		}
		out.Replicas = append(out.Replicas, ReplicaOutcome{Trace: r.trace(), Final: finals[i]})
	}
	return out, nil
}
