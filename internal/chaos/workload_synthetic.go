package chaos

import (
	"fmt"
	"hash/fnv"
	"sort"

	"blazes/internal/coord"
	"blazes/internal/core"
	"blazes/internal/dataflow"
	"blazes/internal/fd"
	"blazes/internal/sim"
)

// SyntheticWorkload is the Figure 5 component generalized from
// internal/experiments/anomalies.go and wired into the harness: N producers
// stream messages to R replicas of a single component, with interleaved
// reads. Three variants span the annotation lattice:
//
//   - confluent: a grow-only set (CW write, CR read) — the analyzer
//     certifies it and the harness runs it bare;
//   - gated order-sensitive: per-producer hash chains with the source
//     sealed on producer (OW_producer / OR_producer + Seal_producer) — the
//     analyzer recommends sealing (M3);
//   - ungated order-sensitive: the same chains with unknown partitioning
//     (OW*/OR*) — the analyzer must fall back to ordering (M2/M1).
//
// Replicas deduplicate retransmissions by (producer, seq) — the standard
// at-least-once discipline — so duplication faults exercise idempotence
// while delivery order remains the nondeterminism under test.
type SyntheticWorkload struct {
	// Confluent selects the grow-only-set variant.
	Confluent bool
	// Gated marks the order-sensitive paths as partitioned per producer
	// and seals the source; ignored when Confluent.
	Gated bool
	// Producers, PerProducer, Reads, Replicas size the run.
	Producers, PerProducer, Reads, Replicas int
}

// SyntheticSet returns the confluent variant.
func SyntheticSet() *SyntheticWorkload {
	return &SyntheticWorkload{Confluent: true, Producers: 2, PerProducer: 10, Reads: 4, Replicas: 2}
}

// SyntheticChains returns the order-sensitive variant; gated selects
// per-producer partitioning (sealable).
func SyntheticChains(gated bool) *SyntheticWorkload {
	return &SyntheticWorkload{Gated: gated, Producers: 2, PerProducer: 10, Reads: 4, Replicas: 2}
}

// Name implements Workload.
func (w *SyntheticWorkload) Name() string {
	switch {
	case w.Confluent:
		return "synthetic-set"
	case w.Gated:
		return "synthetic-chains-gated"
	default:
		return "synthetic-chains"
	}
}

// Graph implements Workload.
func (w *SyntheticWorkload) Graph() (*dataflow.Graph, error) {
	g := dataflow.NewGraph(w.Name())
	comp := g.Component("Synthetic")
	comp.Rep = true
	switch {
	case w.Confluent:
		comp.AddPath("msgs", "out", core.CW)
		comp.AddPath("reads", "out", core.CR)
	case w.Gated:
		comp.AddPath("msgs", "out", core.OWGate("producer"))
		comp.AddPath("reads", "out", core.ORGate("producer"))
	default:
		comp.AddPath("msgs", "out", core.OWStar())
		comp.AddPath("reads", "out", core.ORStar())
	}
	if !w.Confluent {
		// The per-producer XOR digest in synReplica is a declared
		// commutative merge, so the merge-rewrite strategy applies to the
		// order-sensitive variants.
		comp.Merge = "xor-set-digest"
	}
	src := g.Source("msgs", "Synthetic", "msgs")
	if w.Gated && !w.Confluent {
		src.Seal = fd.NewAttrSet("producer")
	}
	g.Source("reads", "Synthetic", "reads")
	g.Sink("out", "Synthetic", "out")
	return g, nil
}

// Supports implements Workload: the synthetic component can install every
// Figure 5 mechanism plus the registered extensions (per-partition sealing
// needs the per-producer seal, so only the gated variant supports it).
func (w *SyntheticWorkload) Supports(mech dataflow.Coordination) bool {
	switch mech {
	case dataflow.CoordNone, dataflow.CoordSequenced, dataflow.CoordDynamicOrder, dataflow.CoordSealed:
		return true
	case dataflow.CoordQuorumOrder, dataflow.CoordMergeRewrite:
		return true
	case dataflow.CoordPartitionSealed:
		return w.Gated
	}
	return false
}

// synMsg is one producer message.
type synMsg struct {
	Producer string
	Seq      int
}

func (m synMsg) id() string    { return fmt.Sprintf("%s:%d", m.Producer, m.Seq) }
func (m synMsg) value() string { return m.id() }

// synReplica is one replica of the component under test.
type synReplica struct {
	confluent bool
	// merge selects the rewritten fold (merge-rewrite strategy): an
	// order-insensitive XOR digest per producer instead of the hash chain.
	merge   bool
	seen    map[string]bool
	set     map[string]bool
	chains  map[string]uint64
	outputs []string
}

func newSynReplica(confluent bool) *synReplica {
	return &synReplica{confluent: confluent, seen: map[string]bool{}, set: map[string]bool{}, chains: map[string]uint64{}}
}

func (r *synReplica) apply(m synMsg) {
	if r.seen[m.id()] {
		return // at-least-once duplicate
	}
	r.seen[m.id()] = true
	if r.confluent {
		r.set[m.value()] = true
		return
	}
	if r.merge {
		// The declared commutative merge: XOR of element hashes is a set
		// digest, insensitive to delivery order (dedup above supplies
		// idempotence).
		r.chains[m.Producer] ^= synElemHash(m.value())
		return
	}
	r.chains[m.Producer] = synChainHash(r.chains[m.Producer], m.value())
}

func (r *synReplica) read() { r.outputs = append(r.outputs, r.snapshot()) }

func (r *synReplica) snapshot() string {
	if r.confluent {
		vals := make([]string, 0, len(r.set))
		for v := range r.set {
			vals = append(vals, v)
		}
		return canonSet(vals)
	}
	keys := make([]string, 0, len(r.chains))
	for k := range r.chains {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%x", k, r.chains[k]))
	}
	return canonSet(parts)
}

func (r *synReplica) outcome() ReplicaOutcome {
	return ReplicaOutcome{Trace: append([]string{}, r.outputs...), Final: r.snapshot()}
}

func synChainHash(prev uint64, v string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%x|%s", prev, v)
	return h.Sum64()
}

func synElemHash(v string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(v))
	return h.Sum64()
}

// Run implements Workload.
func (w *SyntheticWorkload) Run(seed int64, plan FaultPlan, mech dataflow.Coordination) (Outcome, error) {
	span := 80 * sim.Millisecond
	s := sim.New(seed)
	link := plan.Shape(sim.LinkConfig{MinDelay: 100 * sim.Microsecond, MaxDelay: 12 * sim.Millisecond})

	reps := make([]*synReplica, w.Replicas)
	for i := range reps {
		reps[i] = newSynReplica(w.Confluent)
	}
	var msgs []synMsg
	for p := 0; p < w.Producers; p++ {
		for i := 0; i < w.PerProducer; i++ {
			msgs = append(msgs, synMsg{Producer: fmt.Sprintf("p%d", p), Seq: i})
		}
	}
	sendTime := func(m synMsg) sim.Time {
		return span * sim.Time(m.Seq*w.Producers) / sim.Time(len(msgs))
	}
	readTimes := make([]sim.Time, w.Reads)
	for i := range readTimes {
		readTimes[i] = span * sim.Time(i+1) / sim.Time(w.Reads+1)
	}
	// arrival draws one chaotic hop for a message sent at `sent`.
	arrival := func(sent sim.Time) sim.Time {
		return link.Release(sent, sent+link.Delay(s))
	}
	// dup reports whether the link duplicates this delivery.
	dup := func() bool { return link.DupProb > 0 && s.Rand().Float64() < link.DupProb }
	// finalize runs after the simulation drains, before outcomes are
	// collected (e.g. to assemble request-keyed answers into a trace).
	var finalize []func()

	switch mech {
	case dataflow.CoordNone, dataflow.CoordMergeRewrite:
		// Merge rewrite installs no delivery protocol: replicas run the
		// declared commutative merge over the same chaotic uncoordinated
		// schedule, and order-insensitivity of the merge does the rest.
		if mech == dataflow.CoordMergeRewrite && !w.Confluent {
			for _, r := range reps {
				r.merge = true
			}
		}
		for _, m := range msgs {
			m := m
			at := sendTime(m)
			for _, r := range reps {
				r := r
				s.At(arrival(at), func() { r.apply(m) })
				if dup() {
					s.At(arrival(at), func() { r.apply(m) })
				}
			}
		}
		for _, t := range readTimes {
			for _, r := range reps {
				r := r
				s.At(arrival(t), func() { r.read() })
			}
		}

	case dataflow.CoordSequenced:
		// M1: a preordained total order, fully deterministic: messages by
		// global index with reads at fixed positions.
		type step struct {
			msg  *synMsg
			read bool
		}
		var order []step
		stride := len(msgs)/(w.Reads+1) + 1
		for i, m := range msgs {
			m := m
			order = append(order, step{msg: &m})
			if (i+1)%stride == 0 {
				order = append(order, step{read: true})
			}
		}
		order = append(order, step{read: true})
		at := sim.Time(0)
		for _, st := range order {
			st := st
			at += sim.Millisecond
			s.At(at, func() {
				for _, r := range reps {
					if st.read {
						r.read()
					} else {
						r.apply(*st.msg)
					}
				}
			})
		}

	case dataflow.CoordDynamicOrder:
		// M2: the ordering service decides a per-run arrival order; its
		// own hops suffer the fault plan too.
		cfg := coord.DefaultSequencer
		cfg.SubmitDelay = plan.Shape(cfg.SubmitDelay)
		cfg.DeliverDelay = plan.Shape(cfg.DeliverDelay)
		seq := coord.NewSequencer(s, cfg)
		for _, r := range reps {
			r := r
			seq.Subscribe(func(m coord.Sequenced) {
				switch v := m.Msg.(type) {
				case synMsg:
					r.apply(v)
				case string:
					r.read()
				}
			})
		}
		for _, m := range msgs {
			m := m
			s.At(sendTime(m), func() { seq.Submit(m) })
		}
		for i, t := range readTimes {
			i := i
			s.At(t, func() { seq.Submit(fmt.Sprintf("read%d", i)) })
		}

	case dataflow.CoordQuorumOrder:
		// M1q: producers stamp messages with Lamport clocks and replicas
		// deliver in (clock, producer, seq) order once the stability
		// frontier passes. The reader registers as a producer too, so
		// reads occupy preordained positions in the same total order —
		// no sequencer round trips, only heartbeats.
		cfg := coord.DefaultQuorum
		cfg.Delivery = plan.Shape(cfg.Delivery)
		cfg.HeartbeatEvery = 10 * sim.Millisecond
		q := coord.NewQuorumOrder(s, cfg)
		for _, r := range reps {
			r := r
			q.Subscribe(func(_ coord.Stamp, msg any) {
				switch v := msg.(type) {
				case synMsg:
					r.apply(v)
				case string:
					r.read()
				}
			})
		}
		producers := make([]*coord.QuorumProducer, w.Producers)
		for p := range producers {
			producers[p] = q.Producer()
		}
		reader := q.Producer()
		for pi := 0; pi < w.Producers; pi++ {
			prod := producers[pi]
			name := fmt.Sprintf("p%d", pi)
			for _, m := range msgs {
				if m.Producer != name {
					continue
				}
				m := m
				s.At(sendTime(m), func() { prod.Send(m) })
			}
		}
		for i, t := range readTimes {
			i := i
			s.At(t, func() { reader.Send(fmt.Sprintf("read%d", i)) })
		}
		end := span + sim.Millisecond
		for _, p := range producers {
			p := p
			s.At(end, p.Done)
		}
		s.At(end, reader.Done)

	case dataflow.CoordPartitionSealed:
		// M3p: the same punctuation/voting protocol as CoordSealed, but
		// each partition releases its readers as soon as it alone seals;
		// reads target (and observe) a single partition, so a straggler
		// producer delays only its own partition's readers.
		registry := coord.NewRegistry(s, link)
		for p := 0; p < w.Producers; p++ {
			producer := fmt.Sprintf("p%d", p)
			registry.Register(producer, producer)
		}
		for ri := range reps {
			r := reps[ri]
			sealedPart := map[string]bool{}
			held := map[string][]func(){}
			// Reads release in partition-seal order, which legitimately
			// differs across replicas; answers are keyed by read index so
			// the trace compares query answers, not release order.
			answers := make([]string, w.Reads)
			finalize = append(finalize, func() { r.outputs = append(r.outputs, answers...) })
			tracker := coord.NewSealTracker(func(partition string, buffered []any) {
				vals := make([]synMsg, 0, len(buffered))
				for _, b := range buffered {
					vals = append(vals, b.(synMsg))
				}
				sort.Slice(vals, func(i, j int) bool { return vals[i].Seq < vals[j].Seq })
				for _, m := range vals {
					r.apply(m)
				}
				sealedPart[partition] = true
				for _, fn := range held[partition] {
					fn()
				}
				delete(held, partition)
			})
			fifo := newFifoLink(s, link)
			for p := 0; p < w.Producers; p++ {
				producer := fmt.Sprintf("p%d", p)
				registry.Lookup(producer, func(producers []string) {
					tracker.SetExpected(producer, producers)
				})
			}
			var lastSend sim.Time
			for _, m := range msgs {
				m := m
				at := sendTime(m)
				if at > lastSend {
					lastSend = at
				}
				fifo.deliver(m.Producer, at, func() { tracker.Data(m.Producer, m) })
				if dup() {
					fifo.deliver(m.Producer, at, func() { tracker.Data(m.Producer, m) })
				}
			}
			for p := 0; p < w.Producers; p++ {
				producer := fmt.Sprintf("p%d", p)
				fifo.deliver(producer, lastSend+sim.Millisecond, func() {
					tracker.Seal(coord.Punctuation{Partition: producer, Producer: producer})
				})
			}
			for i, t := range readTimes {
				i := i
				part := fmt.Sprintf("p%d", i%w.Producers)
				answer := func() { answers[i] = fmt.Sprintf("%s=%x", part, r.chains[part]) }
				s.At(arrival(t), func() {
					if sealedPart[part] {
						answer()
					} else {
						held[part] = append(held[part], answer)
					}
				})
			}
		}

	case dataflow.CoordSealed:
		// M3: per-producer partitions sealed by punctuation after the
		// producer's last message; reads gate on every partition. Seals
		// ride the producer's FIFO stream so they cannot overtake data.
		registry := coord.NewRegistry(s, link)
		for p := 0; p < w.Producers; p++ {
			producer := fmt.Sprintf("p%d", p)
			registry.Register(producer, producer)
		}
		for ri := range reps {
			r := reps[ri]
			sealed := 0
			var heldReads []func()
			tracker := coord.NewSealTracker(func(partition string, buffered []any) {
				vals := make([]synMsg, 0, len(buffered))
				for _, b := range buffered {
					vals = append(vals, b.(synMsg))
				}
				sort.Slice(vals, func(i, j int) bool { return vals[i].Seq < vals[j].Seq })
				for _, m := range vals {
					r.apply(m)
				}
				sealed++
				if sealed == w.Producers {
					for _, fn := range heldReads {
						fn()
					}
					heldReads = nil
				}
			})
			fifo := newFifoLink(s, link)
			for p := 0; p < w.Producers; p++ {
				producer := fmt.Sprintf("p%d", p)
				registry.Lookup(producer, func(producers []string) {
					tracker.SetExpected(producer, producers)
				})
			}
			var lastSend sim.Time
			for _, m := range msgs {
				m := m
				at := sendTime(m)
				if at > lastSend {
					lastSend = at
				}
				fifo.deliver(m.Producer, at, func() { tracker.Data(m.Producer, m) })
				if dup() {
					fifo.deliver(m.Producer, at, func() { tracker.Data(m.Producer, m) })
				}
			}
			for p := 0; p < w.Producers; p++ {
				producer := fmt.Sprintf("p%d", p)
				fifo.deliver(producer, lastSend+sim.Millisecond, func() {
					tracker.Seal(coord.Punctuation{Partition: producer, Producer: producer})
				})
			}
			for _, t := range readTimes {
				s.At(arrival(t), func() {
					if sealed == w.Producers {
						r.read()
					} else {
						heldReads = append(heldReads, r.read)
					}
				})
			}
		}

	default:
		return Outcome{}, fmt.Errorf("synthetic: unsupported mechanism %s", mech)
	}

	s.Run()
	for _, fn := range finalize {
		fn()
	}
	out := Outcome{}
	for _, r := range reps {
		out.Replicas = append(out.Replicas, r.outcome())
	}
	return out, nil
}
