package storm

import "hash/fnv"

// Emitter receives tuples produced by a bolt or spout.
type Emitter func(Tuple)

// Bolt is a stream operator. Execute processes one input tuple and may emit
// any number of output tuples; FinishBatch is called exactly once per batch
// after every input tuple of that batch has been executed, and may emit the
// batch's aggregated outputs (the pattern used by Count).
//
// Bolts are deterministic: identical inputs in identical order produce
// identical outputs (Section II). Order-sensitivity enters through the
// network, not the operator.
type Bolt interface {
	Execute(t Tuple, emit Emitter)
	FinishBatch(batch int64, emit Emitter)
}

// Spout produces the input stream in numbered batches. Each spout instance
// is asked for its share of every batch; ok=false marks the end of the
// stream for that instance.
type Spout interface {
	NextBatch(instance int, batch int64) (tuples []Values, ok bool)
}

// Grouping routes a tuple emitted by a producer to one or more consumer
// instances.
type Grouping interface {
	// Route returns the consumer instance indexes (out of n) that must
	// receive the tuple. rand is a deterministic PRNG draw in [0, 1<<63).
	Route(t Tuple, n int, rand int64) []int
}

// ShuffleGrouping sends each tuple to a uniformly random consumer instance —
// Storm's "random partitioning" used between tweets and Splitters.
type ShuffleGrouping struct{}

// Route implements Grouping.
func (ShuffleGrouping) Route(_ Tuple, n int, rand int64) []int {
	return []int{int(rand % int64(n))}
}

// FieldsGrouping hash-partitions on selected fields — used between Splitter
// and Count so each word lands on a single counter.
type FieldsGrouping struct {
	// Fields are indexes into the tuple's Values.
	Fields []int
}

// Route implements Grouping.
func (g FieldsGrouping) Route(t Tuple, n int, _ int64) []int {
	h := fnv.New64a()
	for _, f := range g.Fields {
		if f < len(t.Values) {
			h.Write([]byte(t.Values[f]))
			h.Write([]byte{0})
		}
	}
	return []int{int(mix64(h.Sum64()) % uint64(n))}
}

// mix64 is the splitmix64 finalizer: FNV alone has poor low-bit avalanche
// on short keys, which skews modulo partitioning badly enough to unbalance
// whole stages.
func mix64(s uint64) uint64 {
	s ^= s >> 30
	s *= 0xbf58476d1ce4e9b9
	s ^= s >> 27
	s *= 0x94d049bb133111eb
	s ^= s >> 31
	return s
}

// AllGrouping broadcasts every tuple to every consumer instance.
type AllGrouping struct{}

// Route implements Grouping.
func (AllGrouping) Route(_ Tuple, n int, _ int64) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// GlobalGrouping routes every tuple to instance 0.
type GlobalGrouping struct{}

// Route implements Grouping.
func (GlobalGrouping) Route(Tuple, int, int64) []int { return []int{0} }
