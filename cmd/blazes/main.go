// Command blazes analyzes an annotated dataflow specification (the paper's
// "grey box" input, Figure 1): it derives stream labels, reports the
// consistency verdict, and synthesizes the cheapest safe coordination
// strategy.
//
// Usage:
//
//	blazes -spec internal/spec/testdata/wordcount.blazes -explain
//	blazes -spec internal/spec/testdata/adreport.blazes \
//	       -variant Report=CAMPAIGN -seal clicks=campaign -synthesize
//
// Flags:
//
//	-spec file        the Blazes configuration file (annotations + topology)
//	-variant C=V      select a named annotation variant for component C
//	-seal S=a+b       annotate stream S with Seal on attributes a,b
//	-explain          print the full derivation tree
//	-synthesize       print synthesized coordination strategies
//	-repair           apply strategies and re-analyze to a fixpoint
//	-sequencing       prefer M1 sequencing over M2 dynamic ordering
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"blazes/internal/dataflow"
	"blazes/internal/fd"
	"blazes/internal/spec"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		specPath   = flag.String("spec", "", "Blazes configuration file")
		explain    = flag.Bool("explain", false, "print the full derivation")
		synthesize = flag.Bool("synthesize", false, "print synthesized strategies")
		repair     = flag.Bool("repair", false, "apply strategies and re-analyze")
		sequencing = flag.Bool("sequencing", false, "prefer M1 sequencing when ordering is needed")
		variants   multiFlag
		seals      multiFlag
	)
	flag.Var(&variants, "variant", "Component=Variant annotation selection (repeatable)")
	flag.Var(&seals, "seal", "stream=attr+attr seal annotation (repeatable)")
	flag.Parse()

	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "blazes: -spec is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*specPath)
	if err != nil {
		fatal(err)
	}
	cfg, err := spec.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	opts := spec.BuildOptions{Variants: map[string]string{}}
	for _, v := range variants {
		comp, variant, ok := strings.Cut(v, "=")
		if !ok {
			fatal(fmt.Errorf("bad -variant %q (want Component=Variant)", v))
		}
		opts.Variants[comp] = variant
	}
	g, err := cfg.Graph(strings.TrimSuffix(*specPath, ".blazes"), opts)
	if err != nil {
		fatal(err)
	}
	for _, s := range seals {
		stream, attrs, ok := strings.Cut(s, "=")
		if !ok {
			fatal(fmt.Errorf("bad -seal %q (want stream=attr+attr)", s))
		}
		st := g.Stream(stream)
		if st == nil {
			fatal(fmt.Errorf("unknown stream %q", stream))
		}
		st.Seal = fd.NewAttrSet(strings.Split(attrs, "+")...)
	}

	a, err := dataflow.Analyze(g)
	if err != nil {
		fatal(err)
	}
	if *explain {
		fmt.Println(a.Explain())
	} else {
		fmt.Printf("verdict: %s (deterministic: %v)\n", a.Verdict, a.Deterministic())
	}

	synthOpts := dataflow.SynthesisOptions{PreferSequencing: *sequencing}
	if *synthesize || *repair {
		for _, st := range dataflow.Synthesize(a, synthOpts) {
			fmt.Printf("strategy: %s\n  reason: %s\n", st, st.Reason)
		}
	}
	if *repair {
		final, sts, err := dataflow.Repair(g, synthOpts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("after repair (%d strategies): verdict %s (deterministic: %v)\n",
			len(sts), final.Verdict, final.Deterministic())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blazes:", err)
	os.Exit(1)
}
