package nondet

import "time"

// Wallclock is legal only because the marker names the check and carries a
// reason; drop the reason and it becomes two findings (see maporder).
func Wallclock() time.Time {
	//lint:allow nondet boot banner timestamp; never read inside the simulation
	return time.Now()
}
