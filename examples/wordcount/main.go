// Wordcount: run the paper's Storm topology under both commit disciplines
// on the simulated cluster and compare throughput and correctness — Figure
// 11 in miniature.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"reflect"

	"blazes/substrate"
)

func main() {
	base := substrate.WordcountConfig{
		Seed:           42,
		Workers:        8,
		Batches:        20,
		TuplesPerBatch: 100,
		WordsPerTweet:  4,
		Punctuate:      true,
	}

	sealed := base
	sealed.Mode = substrate.CommitSealed
	rs, err := substrate.RunWordcount(sealed)
	if err != nil {
		panic(err)
	}

	tx := base
	tx.Mode = substrate.CommitTransactional
	rt, err := substrate.RunWordcount(tx)
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-15s %12s %12s %10s\n", "mode", "tuples", "finish", "tput/s")
	fmt.Printf("%-15s %12d %12s %10.0f\n", "sealed", rs.Metrics.EmittedTuples, rs.Metrics.FinishedAt, rs.Metrics.Throughput())
	fmt.Printf("%-15s %12d %12s %10.0f\n", "transactional", rt.Metrics.EmittedTuples, rt.Metrics.FinishedAt, rt.Metrics.Throughput())
	fmt.Printf("speedup: %.2fx\n\n", rt.Metrics.FinishedAt.Seconds()/rs.Metrics.FinishedAt.Seconds())

	// Both modes commit exactly the same counts — they differ only in
	// coordination. Commit order differs: transactional is 0,1,2,…;
	// sealed commits batches as their seals arrive.
	same := reflect.DeepEqual(rs.Store.Snapshot(), rt.Store.Snapshot())
	fmt.Println("identical committed counts:", same)
	fmt.Println("sealed commit order:       ", rs.Store.CommitOrder())
	fmt.Println("transactional commit order:", rt.Store.CommitOrder())
}
