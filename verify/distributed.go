package verify

// Distributed verification: the public surface the sweep coordinator
// (service), the worker processes (blazes sweep-worker), and the trace
// tooling (blazes verify -shrink / -replay) build on. A Check decomposes
// into an ordered list of cells (PlanCheck); each cell's seed range can be
// run anywhere (RunCell), merged in seed order (FoldCell), and the report
// reassembled (CheckPlan.Assemble) — byte-identical to a single-process
// Check of the same configuration, because both paths share the same
// fold. SweepState is the coordinator's resumable ledger; ShrinkCell and
// Replay close the loop from an anomalous cell to a 1-minimal replayable
// trace artifact.

import (
	"context"
	"encoding/json"

	"blazes/internal/chaos"
	"blazes/internal/sim"
)

// Cell identifies one independently runnable sweep cell: a (workload,
// mechanism, fault plan) configuration and its seed range.
type Cell = chaos.Cell

// CheckPlan is the execution plan of one Check: the analyzer's verdict
// plus the ordered cells to sweep.
type CheckPlan = chaos.CheckPlan

// Outcome is the observable result of one seeded run.
type Outcome = chaos.Outcome

// SweepState is the coordinator's resumable ledger for one distributed
// check: claimable seed-range batches, partial outcomes, lease expiry,
// first-report-wins dedup.
type SweepState = chaos.SweepState

// Batch is one claimable unit of work: a contiguous seed range of a cell.
type Batch = chaos.Batch

// Trace is a self-contained replayable counterexample produced by
// shrinking an anomalous cell.
type Trace = chaos.Trace

// ReplayResult is the verdict of re-executing a Trace.
type ReplayResult = chaos.ReplayResult

// TraceVersion identifies the replayable-trace artifact schema.
const TraceVersion = chaos.TraceVersion

// PlanCheck analyzes the workload and lays out the sweep cells a Check
// would run, without running any of them — the coordinator's first step.
func PlanCheck(w Workload, opts Options) (*CheckPlan, error) {
	return chaos.PlanCheck(w, chaos.Config{
		Seeds:            opts.Seeds,
		Plans:            opts.Plans,
		PreferSequencing: opts.PreferSequencing,
		Strategy:         opts.Strategy,
		Parallelism:      opts.Parallelism,
	})
}

// NewSweepState lays the cells out into batches of at most batchSize seeds
// (0 selects 256). claimTTL is the claim lease duration in the caller's
// clock unit (0 = leases never expire).
//
//lint:allow ctxflow constructor of an in-memory ledger; it runs no schedules, so there is nothing to cancel
func NewSweepState(cells []Cell, batchSize int, claimTTL int64) *SweepState {
	return chaos.NewSweepState(cells, batchSize, claimTTL)
}

// RunCell executes one cell's seeds in [from, to) (1-based, to exclusive)
// with the given parallelism (0/1 sequential, -1 one worker per CPU) and
// returns one Outcome per seed in seed order.
func RunCell(ctx context.Context, w Workload, cell Cell, parallelism int, from, to int) ([]Outcome, error) {
	var pool *sim.Pool
	if parallelism != 0 && parallelism != 1 {
		pool = sim.NewPool(parallelism)
	}
	return chaos.RunCell(ctx, w, cell, pool, from, to)
}

// FoldCell merges a cell's per-seed outcomes (outcomes[i] = seed i+1) in
// seed order into the cell's Sweep verdict. Pure and deterministic: equal
// outcomes yield a byte-identical Sweep wherever they were produced.
func FoldCell(cell Cell, outcomes []Outcome) Sweep { return chaos.FoldCell(cell, outcomes) }

// CheckShrink is CheckContext plus anomaly shrinking: every cell whose
// sweep observed an anomaly is delta-debugged to a 1-minimal replayable
// Trace. Traces are returned in cell order.
func CheckShrink(ctx context.Context, w Workload, opts Options) (*Report, []*Trace, error) {
	return chaos.CheckShrink(ctx, w, chaos.Config{
		Seeds:            opts.Seeds,
		Plans:            opts.Plans,
		PreferSequencing: opts.PreferSequencing,
		Strategy:         opts.Strategy,
		Parallelism:      opts.Parallelism,
	})
}

// ShrinkCell delta-debugs an anomalous cell to a 1-minimal replayable
// trace; outcomes are the cell's recorded per-seed outcomes (nil re-runs
// the cell first).
func ShrinkCell(ctx context.Context, w Workload, cell Cell, outcomes []Outcome) (*Trace, error) {
	return chaos.ShrinkCell(ctx, w, cell, outcomes)
}

// Reshrink re-runs delta debugging over an existing trace's recorded event
// set (no sweep) and returns a fresh 1-minimal trace with the same
// identity; it errors if the recorded classification no longer reproduces.
func Reshrink(ctx context.Context, tr *Trace) (*Trace, error) {
	return chaos.ReshrinkTrace(ctx, tr)
}

// Replay re-executes a trace and checks it reproduces its recorded
// Run/Inst/Diverge classification.
func Replay(ctx context.Context, tr *Trace) (*ReplayResult, error) { return chaos.Replay(ctx, tr) }

// MarshalReplay renders a replay verdict as indented JSON.
func MarshalReplay(res *ReplayResult) ([]byte, error) {
	return json.MarshalIndent(res, "", "  ")
}

// DecodeTrace parses a trace artifact and validates its schema version.
func DecodeTrace(data []byte) (*Trace, error) { return chaos.DecodeTrace(data) }

// LookupWorkload resolves a workload name — the Workloads() suite by their
// fixed names, plus generated topologies ("generated-<n>c-s<seed>") — to a
// fresh instance, so a process holding only a name reconstructs the exact
// system under test.
func LookupWorkload(name string) (Workload, error) { return chaos.LookupWorkload(name) }

// Generated adapts the topogen-generated topology for the given size and
// seed to the harness; its name round-trips through LookupWorkload.
func Generated(components int, seed int64) Workload { return chaos.Generated(components, seed) }
