// Package lint is the Blazes codebase's own static-analysis layer: custom
// analyzers that enforce the determinism contract the runtime depends on
// (byte-identical schedules across parallelism levels, session reports
// byte-identical to fresh analyses). The paper's stance — coordination bugs
// should be caught by analysis, not testing — is applied at the meta level:
// instead of waiting for a differential test seed to hit a nondeterminism
// source, the linters reject the source constructs outright.
//
// Three analyzers ship today (see the registry for the extension recipe):
//
//   - maporder: flags `range` over a map in the deterministic packages when
//     the loop body lets iteration order escape (appends feeding returned
//     slices, emissions, sends, early returns) without a canonical sort.
//   - nondet: forbids wall-clock reads (time.Now and friends), global
//     math/rand draws, environment-conditioned behavior (os.Getenv), and
//     multi-channel select in the deterministic packages.
//   - ctxflow: enforces the PR 5 context convention: ctx is the first
//     parameter, sweep entry points accept one (or have a Context-suffixed
//     sibling), and a function that was handed a ctx must not mint its own
//     context.Background/TODO.
//
// Diagnostics are suppressed per line with a reasoned marker:
//
//	//lint:allow <check> <reason...>
//
// on the flagged line or the line above it. A marker without a reason is
// itself a diagnostic — every suppression documents why the construct is
// safe.
//
// The package is stdlib-only by design: it reimplements the narrow slice of
// golang.org/x/tools/go/analysis it needs (a Pass over typed syntax, a
// unitchecker-compatible driver) so the repo keeps its zero-dependency
// stance. cmd/blazeslint exposes the analyzers both as a `go vet -vettool`
// and as a standalone checker.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static-analysis pass.
type Analyzer struct {
	// Name identifies the check in diagnostics and suppression markers.
	Name string
	// Doc is the one-line description the CLI prints.
	Doc string
	// Scope lists the import paths the analyzer applies to. Empty means
	// every package the driver hands it (tests use this to point an
	// analyzer at a testdata package).
	Scope []string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// AppliesTo reports whether the analyzer covers the import path. Test
// variants ("pkg [pkg.test]") are matched by their base path.
func (a *Analyzer) AppliesTo(importPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	base := importPath
	if i := strings.Index(base, " ["); i >= 0 {
		base = base[:i]
	}
	for _, p := range a.Scope {
		if base == p {
			return true
		}
	}
	return false
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax. Test files (_test.go) are already
	// excluded: the determinism contract binds production code.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags    *[]Diagnostic
	suppress suppressionIndex
}

// Diagnostic is one finding, positioned and attributed to its check.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Check)
}

// Reportf records a finding unless a reasoned //lint:allow marker covers
// the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppress.covers(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// allowMarker is the suppression prefix: //lint:allow <check> <reason>.
const allowMarker = "lint:allow"

// allowance is one parsed //lint:allow marker.
type allowance struct {
	check  string
	reason string
	file   string
	line   int
}

// suppressionIndex maps (file, line) to the checks allowed there. A marker
// covers its own line and, when it stands alone on a line, the line below —
// the two placements gofmt produces.
type suppressionIndex map[string]map[int][]string

func (s suppressionIndex) covers(check string, pos token.Position) bool {
	lines := s[pos.Filename]
	for _, c := range lines[pos.Line] {
		if c == check {
			return true
		}
	}
	return false
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Analyze runs every analyzer that applies to the package and returns the
// surviving diagnostics in position order. Unreasoned //lint:allow markers
// are reported as findings of the named check so a suppression can never
// silently drop its justification.
func Analyze(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	idx, bad := indexSuppressions(pkg.Fset, pkg.Files)
	names := map[string]bool{}
	for _, a := range analyzers {
		names[a.Name] = true
		if !a.AppliesTo(pkg.ImportPath) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			diags:    &diags,
			suppress: idx,
		}
		a.Run(pass)
	}
	for _, b := range bad {
		if !names[b.check] {
			// A marker for an analyzer not in this run is not ours to
			// police (and unknown check names are caught below only when
			// the full registry runs).
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:     token.Position{Filename: b.file, Line: b.line, Column: 1},
			Check:   b.check,
			Message: fmt.Sprintf("//lint:allow %s needs a reason (write: //lint:allow %s <why this is safe>)", b.check, b.check),
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// indexSuppressions scans every comment for //lint:allow markers. Markers
// with a reason populate the index; reasonless markers are returned so the
// runner can flag them.
func indexSuppressions(fset *token.FileSet, files []*ast.File) (suppressionIndex, []allowance) {
	idx := suppressionIndex{}
	var bad []allowance
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowMarker) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowMarker))
				check, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				if check == "" {
					continue
				}
				if strings.TrimSpace(reason) == "" {
					bad = append(bad, allowance{check: check, file: pos.Filename, line: pos.Line})
					continue
				}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					idx[pos.Filename] = lines
				}
				// The marker covers its own line (trailing comment) and
				// the next line (standalone comment above the construct).
				lines[pos.Line] = append(lines[pos.Line], check)
				lines[pos.Line+1] = append(lines[pos.Line+1], check)
			}
		}
	}
	return idx, bad
}
