package bloom

import (
	"fmt"
	"sort"
)

// MergeOp is a Bloom rule operator: how derived rows reach the head
// collection.
type MergeOp int

const (
	// Instant (<=) merges within the current timestep; rules with instant
	// heads run to fixpoint each tick.
	Instant MergeOp = iota
	// Deferred (<+) inserts at the start of the next timestep.
	Deferred
	// Delete (<-) removes rows at the start of the next timestep — a
	// nonmonotonic operation.
	Delete
	// Async (<~) hands rows to the network: they arrive at the remote (or
	// local) channel in some later timestep, in nondeterministic order.
	Async
)

// String renders the Bloom operator.
func (op MergeOp) String() string {
	switch op {
	case Instant:
		return "<="
	case Deferred:
		return "<+"
	case Delete:
		return "<-"
	case Async:
		return "<~"
	default:
		return fmt.Sprintf("MergeOp(%d)", int(op))
	}
}

// Rule derives rows for a head collection from a body expression.
type Rule struct {
	Head string
	Op   MergeOp
	Body Expr
	// Label is an optional human-readable rule name for diagnostics.
	Label string
}

// String renders the rule.
func (r Rule) String() string {
	if r.Label != "" {
		return fmt.Sprintf("%s %s ... (%s)", r.Head, r.Op, r.Label)
	}
	return fmt.Sprintf("%s %s ...", r.Head, r.Op)
}

// Module is a Bloom program unit: declared collections plus rules, with
// designated input and output interfaces (Section VII-A: modules map
// naturally to dataflow components).
type Module struct {
	Name  string
	colls map[string]*Collection
	order []string
	rules []Rule
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, colls: map[string]*Collection{}}
}

// Declare adds a collection.
func (m *Module) Declare(name string, kind Kind, schema ...string) *Module {
	if _, dup := m.colls[name]; !dup {
		m.order = append(m.order, name)
	}
	m.colls[name] = &Collection{Name: name, Kind: kind, Schema: Schema(schema)}
	return m
}

// Input declares an input interface collection.
func (m *Module) Input(name string, schema ...string) *Module {
	return m.Declare(name, Input, schema...)
}

// Output declares an output interface collection.
func (m *Module) Output(name string, schema ...string) *Module {
	return m.Declare(name, Output, schema...)
}

// Table declares a persistent table.
func (m *Module) Table(name string, schema ...string) *Module {
	return m.Declare(name, Table, schema...)
}

// Scratch declares a transient scratch.
func (m *Module) Scratch(name string, schema ...string) *Module {
	return m.Declare(name, Scratch, schema...)
}

// Channel declares an asynchronous network channel.
func (m *Module) Channel(name string, schema ...string) *Module {
	return m.Declare(name, Channel, schema...)
}

// Rule appends a rule head op body.
func (m *Module) Rule(head string, op MergeOp, body Expr) *Module {
	m.rules = append(m.rules, Rule{Head: head, Op: op, Body: body})
	return m
}

// NamedRule appends a labelled rule.
func (m *Module) NamedRule(label, head string, op MergeOp, body Expr) *Module {
	m.rules = append(m.rules, Rule{Head: head, Op: op, Body: body, Label: label})
	return m
}

// Collection returns the named collection, or nil.
func (m *Module) Collection(name string) *Collection { return m.colls[name] }

// Collections returns declarations in declaration order.
func (m *Module) Collections() []*Collection {
	out := make([]*Collection, len(m.order))
	for i, n := range m.order {
		out[i] = m.colls[n]
	}
	return out
}

// Rules returns the module's rules.
func (m *Module) Rules() []Rule { return append([]Rule(nil), m.rules...) }

// Inputs returns input interface names in declaration order.
func (m *Module) Inputs() []string { return m.byKind(Input) }

// Outputs returns output interface names in declaration order.
func (m *Module) Outputs() []string { return m.byKind(Output) }

func (m *Module) byKind(k Kind) []string {
	var out []string
	for _, n := range m.order {
		if m.colls[n].Kind == k {
			out = append(out, n)
		}
	}
	return out
}

// Validate checks schema consistency of every rule.
func (m *Module) Validate() error {
	if len(m.rules) == 0 {
		return fmt.Errorf("bloom: module %q has no rules", m.Name)
	}
	for _, c := range m.Collections() {
		if err := checkNoDupCols(c.Schema, fmt.Sprintf("collection %q", c.Name)); err != nil {
			return fmt.Errorf("bloom: module %q: %w", m.Name, err)
		}
	}
	for i, r := range m.rules {
		head := m.colls[r.Head]
		if head == nil {
			return fmt.Errorf("bloom: module %q rule %d: unknown head %q", m.Name, i, r.Head)
		}
		bodySchema, err := r.Body.Schema(m)
		if err != nil {
			return fmt.Errorf("bloom: module %q rule %d: %w", m.Name, i, err)
		}
		if len(bodySchema) != len(head.Schema) {
			return fmt.Errorf("bloom: module %q rule %d: body schema %v does not match head %q schema %v",
				m.Name, i, bodySchema, r.Head, head.Schema)
		}
		if err := validatePredCols(m, r.Body); err != nil {
			return fmt.Errorf("bloom: module %q rule %d: %w", m.Name, i, err)
		}
		for _, read := range r.Body.reads() {
			if m.colls[read] == nil {
				return fmt.Errorf("bloom: module %q rule %d: reads unknown collection %q", m.Name, i, read)
			}
		}
		if head.Kind == Input {
			return fmt.Errorf("bloom: module %q rule %d: cannot write input interface %q", m.Name, i, r.Head)
		}
		if r.Op == Async && head.Kind != Channel && head.Kind != Output {
			return fmt.Errorf("bloom: module %q rule %d: async merge into non-channel %q", m.Name, i, r.Head)
		}
	}
	return nil
}

// validatePredCols walks an expression checking the column references that
// Schema resolution alone does not reach (selection predicates and having
// clauses), so rule compilation at NewNode cannot fail on them later.
func validatePredCols(m *Module, e Expr) error {
	switch x := e.(type) {
	case *SelectExpr:
		s, err := x.Input.Schema(m)
		if err != nil {
			return err
		}
		for _, p := range x.Preds {
			if !s.Contains(p.Col) {
				return fmt.Errorf("bloom: select references unknown column %q (have %v)", p.Col, s)
			}
		}
		return validatePredCols(m, x.Input)
	case *GroupByExpr:
		out, err := x.Schema(m)
		if err != nil {
			return err
		}
		for _, p := range x.Having {
			if !out.Contains(p.Col) {
				return fmt.Errorf("bloom: having references unknown column %q (have %v)", p.Col, out)
			}
		}
		return validatePredCols(m, x.Input)
	case *ProjectExpr:
		return validatePredCols(m, x.Input)
	case *ThresholdExpr:
		return validatePredCols(m, x.Input)
	case *JoinExpr:
		if err := validatePredCols(m, x.Left); err != nil {
			return err
		}
		return validatePredCols(m, x.Right)
	case *AntiJoinExpr:
		if err := validatePredCols(m, x.Left); err != nil {
			return err
		}
		return validatePredCols(m, x.Right)
	default:
		return nil
	}
}

// readers returns rules reading the named collection.
func (m *Module) readers(name string) []Rule {
	var out []Rule
	for _, r := range m.rules {
		for _, read := range r.Body.reads() {
			if read == name {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// sortedCollNames is a deterministic name listing used by analyses.
func (m *Module) sortedCollNames() []string {
	out := append([]string(nil), m.order...)
	sort.Strings(out)
	return out
}
