package coord

import (
	"reflect"
	"testing"
	"testing/quick"

	"blazes/internal/sim"
)

// runSequencer submits n messages from several simulated clients and
// returns each subscriber's observed order.
func runSequencer(seed int64, subscribers, n int) [][]uint64 {
	s := sim.New(seed)
	q := NewSequencer(s, DefaultSequencer)
	orders := make([][]uint64, subscribers)
	for i := range orders {
		i := i
		q.Subscribe(func(m Sequenced) { orders[i] = append(orders[i], m.Seq) })
	}
	for i := 0; i < n; i++ {
		i := i
		// Clients race: staggered submission with overlapping windows.
		s.At(sim.Time(i%7)*sim.Millisecond, func() { q.Submit(i) })
	}
	s.Run()
	return orders
}

// TestTotalOrderAcrossSubscribers: the defining property of the ordering
// service — every subscriber sees exactly the same sequence.
func TestTotalOrderAcrossSubscribers(t *testing.T) {
	prop := func(seed int64) bool {
		orders := runSequencer(seed, 3, 40)
		for i := 1; i < len(orders); i++ {
			if !reflect.DeepEqual(orders[0], orders[i]) {
				return false
			}
		}
		return len(orders[0]) == 40
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Errorf("subscribers observed different orders: %v", err)
	}
}

// TestSequenceIsGapFreeAndMonotone: sequence numbers are 1..n in delivery
// order for each subscriber.
func TestSequenceIsGapFreeAndMonotone(t *testing.T) {
	orders := runSequencer(7, 2, 25)
	for _, order := range orders {
		if len(order) != 25 {
			t.Fatalf("delivered %d of 25", len(order))
		}
		for i, seq := range order {
			if seq != uint64(i+1) {
				t.Fatalf("order = %v: not gap-free monotone", order)
			}
		}
	}
}

// TestSequencerSerializationCost: messages pass through a serial bottleneck;
// total completion time is bounded below by n × ProcessingCost.
func TestSequencerSerializationCost(t *testing.T) {
	s := sim.New(1)
	cfg := SequencerConfig{
		SubmitDelay:    sim.LinkConfig{MinDelay: 1, MaxDelay: 1},
		DeliverDelay:   sim.LinkConfig{MinDelay: 1, MaxDelay: 1},
		ProcessingCost: sim.Millisecond,
	}
	q := NewSequencer(s, cfg)
	delivered := 0
	q.Subscribe(func(Sequenced) { delivered++ })
	const n = 50
	for i := 0; i < n; i++ {
		q.Submit(i) // all at t=0: they must queue
	}
	s.Run()
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
	if s.Now() < n*sim.Millisecond {
		t.Errorf("finished at %v; serial cost should force ≥ %v", s.Now(), sim.Time(n)*sim.Millisecond)
	}
}

// TestSequencerDeterministicPerSeed: the decided order is reproducible.
func TestSequencerDeterministicPerSeed(t *testing.T) {
	msgOrder := func(seed int64) []int {
		s := sim.New(seed)
		q := NewSequencer(s, DefaultSequencer)
		var got []int
		q.Subscribe(func(m Sequenced) { got = append(got, m.Msg.(int)) })
		for i := 0; i < 30; i++ {
			i := i
			s.At(sim.Time(i%5)*sim.Millisecond, func() { q.Submit(i) })
		}
		s.Run()
		return got
	}
	if !reflect.DeepEqual(msgOrder(11), msgOrder(11)) {
		t.Error("same seed must decide the same order")
	}
	same := true
	for seed := int64(12); seed < 20 && same; seed++ {
		same = reflect.DeepEqual(msgOrder(11), msgOrder(seed))
	}
	if same {
		t.Error("different seeds should eventually decide different orders (M2 is run-nondeterministic)")
	}
}

func TestSequencerCounters(t *testing.T) {
	s := sim.New(2)
	q := NewSequencer(s, DefaultSequencer)
	q.Subscribe(func(Sequenced) {})
	q.Subscribe(func(Sequenced) {})
	for i := 0; i < 10; i++ {
		q.Submit(i)
	}
	s.Run()
	if q.Submitted() != 10 {
		t.Errorf("Submitted = %d", q.Submitted())
	}
	if q.Delivered() != 20 {
		t.Errorf("Delivered = %d, want 10×2 subscribers", q.Delivered())
	}
}
