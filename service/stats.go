package service

import (
	"net/http"
	"sync/atomic"
	"time"

	"blazes/internal/journal"
)

// Observability: GET /v1/stats reports everything needed to reason about
// the server under load — session population, journal lag, admission
// queue depth and shed counts, and latency percentiles per expensive
// endpoint — with plain atomic counters so the endpoint itself stays cheap
// enough to poll during overload.

// latBucketBounds are the histogram bucket upper bounds in microseconds
// (1-2-5 decades from 1µs to 100s); the final implicit bucket is
// unbounded. Fixed log-spaced buckets keep recording lock-free and
// percentile estimation deterministic.
var latBucketBounds = [...]uint64{
	1, 2, 5, 10, 20, 50, 100, 200, 500,
	1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000, 10_000_000, 20_000_000, 50_000_000, 100_000_000,
}

// latencyHist is a lock-free fixed-bucket latency histogram.
type latencyHist struct {
	buckets [len(latBucketBounds) + 1]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // microseconds
	max     atomic.Uint64 // microseconds
}

func (h *latencyHist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	i := 0
	for i < len(latBucketBounds) && us > latBucketBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			return
		}
	}
}

// quantile estimates the q-quantile (0 < q < 1) in microseconds by linear
// interpolation inside the holding bucket.
func (h *latencyHist) quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := uint64(0)
			if i > 0 {
				lo = latBucketBounds[i-1]
			}
			hi := h.max.Load()
			if i < len(latBucketBounds) && latBucketBounds[i] < hi {
				hi = latBucketBounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / n
			return lo + uint64(frac*float64(hi-lo))
		}
		cum += n
	}
	return h.max.Load()
}

// LatencySummary is one endpoint's latency section, microsecond units.
type LatencySummary struct {
	Count    uint64 `json:"count"`
	MeanUs   uint64 `json:"mean_us"`
	P50Us    uint64 `json:"p50_us"`
	P95Us    uint64 `json:"p95_us"`
	P99Us    uint64 `json:"p99_us"`
	MaxUs    uint64 `json:"max_us"`
	TotalSec uint64 `json:"total_sec"`
}

func (h *latencyHist) summary() LatencySummary {
	count := h.count.Load()
	sum := h.sum.Load()
	out := LatencySummary{
		Count:    count,
		P50Us:    h.quantile(0.50),
		P95Us:    h.quantile(0.95),
		P99Us:    h.quantile(0.99),
		MaxUs:    h.max.Load(),
		TotalSec: sum / 1_000_000,
	}
	if count > 0 {
		out.MeanUs = sum / count
	}
	return out
}

// StatsResponse is the /v1/stats document.
type StatsResponse struct {
	// Sessions is the live session count; Evicted the retained tombstone
	// count and EvictedTotal the all-time LRU evictions this process.
	Sessions     int    `json:"sessions"`
	MaxSessions  int    `json:"max_sessions"`
	Evicted      int    `json:"evicted"`
	EvictedTotal uint64 `json:"evicted_total"`

	// Durable is true when a journal backs the server. Recovering is true
	// while the boot replay is still rebuilding sessions (writes shed with
	// 503); RecoveredSessions counts sessions rebuilt so far this boot and
	// ReplayErrors sessions the journal acknowledged but could not be
	// rebuilt. JournalBroken means an append failed and the server
	// poisoned itself read-only.
	Durable           bool           `json:"durable"`
	Recovering        bool           `json:"recovering"`
	RecoveredSessions int64          `json:"recovered_sessions"`
	ReplayErrors      int64          `json:"replay_errors,omitempty"`
	JournalBroken     bool           `json:"journal_broken,omitempty"`
	Journal           *journal.Stats `json:"journal,omitempty"`

	Admission AdmissionStats `json:"admission"`

	// Sweeps reports the distributed-verification coordinator's counters.
	Sweeps SweepStats `json:"sweeps"`

	// Latency maps endpoint → summary for the gated endpoints.
	Latency map[string]LatencySummary `json:"latency"`
}

// SweepStats counts sweep-coordinator activity this process.
type SweepStats struct {
	// Active is the number of submitted sweeps not yet complete.
	Active          int    `json:"active"`
	Submitted       uint64 `json:"submitted"`
	Completed       uint64 `json:"completed"`
	BatchesClaimed  uint64 `json:"batches_claimed"`
	BatchesReported uint64 `json:"batches_reported"`
	// TracesShrunk counts anomalous cells successfully delta-debugged to
	// replayable traces.
	TracesShrunk uint64 `json:"traces_shrunk"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sessions := len(s.byID)
	tombs := len(s.tombstones)
	s.mu.Unlock()

	resp := StatsResponse{
		Sessions:          sessions,
		MaxSessions:       s.max,
		Evicted:           tombs,
		EvictedTotal:      s.evictedTotal.Load(),
		Durable:           s.jrn != nil,
		Recovering:        s.recovering.Load(),
		RecoveredSessions: s.recoveredCount.Load(),
		ReplayErrors:      s.replayErrors.Load(),
		JournalBroken:     s.journalBroken.Load(),
		Admission:         s.gate.stats(),
		Sweeps: SweepStats{
			Submitted:       s.sweepsSubmitted.Load(),
			Completed:       s.sweepsCompleted.Load(),
			BatchesClaimed:  s.sweepBatchesClaimed.Load(),
			BatchesReported: s.sweepBatchesReported.Load(),
			TracesShrunk:    s.sweepTracesShrunk.Load(),
		},
		Latency: map[string]LatencySummary{
			"create":  s.createLat.summary(),
			"mutate":  s.mutateLat.summary(),
			"analyze": s.analyzeLat.summary(),
			"verify":  s.verifyLat.summary(),
			"sweep":   s.sweepLat.summary(),
		},
	}
	resp.Sweeps.Active = int(resp.Sweeps.Submitted - resp.Sweeps.Completed)
	resp.Admission.ReadOnlyRejected = s.readOnlyRejected.Load()
	if s.jrn != nil {
		st := s.jrn.Stats()
		resp.Journal = &st
	}
	writeJSON(w, http.StatusOK, resp)
}
