// Command loadgen is the open-loop load generator for `blazes serve`: it
// drives many concurrent analysis sessions through the service's
// create → mutate → analyze loop at a fixed arrival rate and reports
// latency percentiles per endpoint, in the benchmark-baseline JSON shape
// scripts/bench_diff.sh diffs (BENCH_7.json records the committed run).
//
// Open loop means arrivals are scheduled by the clock, not by completions:
// each session starts at its arrival time whether or not earlier sessions
// finished, so a slow server accumulates queueing (and shed 429s) exactly
// like production traffic would — a closed loop would instead slow the
// offered load down to whatever the server can absorb and hide the
// overload entirely.
//
// Targets, most specific wins:
//
//	-addr URL   an already-running server (nothing is spawned)
//	-bin PATH   spawn `PATH serve` as a child process (required by -chaos)
//	(neither)   an in-process server behind a real TCP socket
//
// Chaos mode (-chaos, needs -bin and -journal) is the durability
// acceptance test: it SIGKILLs the server mid-burst, restarts it on the
// same journal, and fails unless every acknowledged mutation survived and
// recovered sessions analyze byte-identically to a fresh replay of the
// same acknowledged ops.
//
// Exit codes: 0 success, 1 failure (lost acknowledged ops, differential
// mismatch, or unexpected errors), 2 usage.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"blazes/service"
)

const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
)

// wordcountSpec is the Storm wordcount topology from the paper's Section
// VI-A1 — the same spec the repo's tests and examples use, inlined so
// loadgen is a self-contained binary.
const wordcountSpec = `Splitter:
  annotation: { from: tweets, to: words, label: CR }
Count:
  annotation: { from: words, to: counts, label: OW, subscript: [word, batch] }
Commit:
  annotation: { from: counts, to: db, label: CW }
topology:
  sources:
    - { name: tweets, to: Splitter.tweets }
  streams:
    - { name: words, from: Splitter.words, to: Count.words }
    - { name: counts, from: Count.counts, to: Commit.counts }
  sinks:
    - { name: db, from: Commit.db }
`

// opPool are the mutations sessions draw from — every op is valid against
// the wordcount spec in any order, so an acknowledged sequence always
// replays cleanly (which is exactly what the chaos differential asserts).
var opPool = []service.MutateOp{
	{Op: "seal", Stream: "tweets", Key: []string{"batch"}},
	{Op: "annotate", Component: "Count", From: "words", To: "counts", Label: "OW", Subscript: []string{"word", "batch"}},
	{Op: "seal", Stream: "tweets"},
	{Op: "annotate", Component: "Splitter", From: "tweets", To: "words", Label: "OR", Subscript: []string{"id"}},
	{Op: "annotate", Component: "Commit", From: "counts", To: "db", Label: "CW"},
	{Op: "seal", Stream: "tweets", Key: []string{"batch"}},
}

type config struct {
	sessions  int
	rate      float64
	mutations int
	seed      int64

	addr    string
	bin     string
	journal string
	chaos   bool

	out     string
	timeout time.Duration
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.IntVar(&cfg.sessions, "sessions", 1000, "concurrent sessions to drive")
	fs.Float64Var(&cfg.rate, "rate", 500, "session arrivals per second (open loop)")
	fs.IntVar(&cfg.mutations, "mutations", 4, "mutate requests per session")
	fs.Int64Var(&cfg.seed, "seed", 7, "workload randomization seed")
	fs.StringVar(&cfg.addr, "addr", "", "base URL of a running server (default: in-process)")
	fs.StringVar(&cfg.bin, "bin", "", "blazes binary to spawn as the server")
	fs.StringVar(&cfg.journal, "journal", "", "journal directory for the spawned/in-process server")
	fs.BoolVar(&cfg.chaos, "chaos", false, "SIGKILL the spawned server mid-burst and verify recovery (needs -bin and -journal)")
	fs.StringVar(&cfg.out, "out", "", "write the JSON report here (default stdout)")
	fs.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request client timeout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: loadgen [-sessions n] [-rate r/s] [-chaos -bin blazes -journal dir] [-out file]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return exitOK
		}
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "loadgen: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		return exitUsage
	}
	if cfg.sessions <= 0 || cfg.rate <= 0 || cfg.mutations < 0 {
		fmt.Fprintf(stderr, "loadgen: -sessions and -rate must be positive, -mutations non-negative\n")
		return exitUsage
	}
	if cfg.chaos {
		if cfg.bin == "" || cfg.journal == "" {
			fmt.Fprintf(stderr, "loadgen: -chaos needs -bin (server to spawn and kill) and -journal (its durable state)\n")
			return exitUsage
		}
		return runChaos(ctx, cfg, stdout, stderr)
	}
	return runLoad(ctx, cfg, stdout, stderr)
}

// runLoad measures a full burst against one healthy server.
func runLoad(ctx context.Context, cfg config, stdout, stderr io.Writer) int {
	base, shutdown, err := startTarget(ctx, cfg, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return exitError
	}
	defer shutdown()

	rec := newRecorder()
	states := burst(ctx, cfg, base, rec, nil)
	done := 0
	for _, st := range states {
		if st.created {
			done++
		}
	}
	fmt.Fprintf(stderr, "loadgen: %d/%d sessions created, %d requests, %d errors, %d shed\n",
		done, cfg.sessions, rec.requests(), rec.errorCount(), rec.shedCount())

	report := rec.report(cfg)
	if err := writeReport(cfg.out, report, stdout); err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return exitError
	}
	if done == 0 {
		fmt.Fprintf(stderr, "loadgen: no session survived the burst — the target is down or rejecting everything\n")
		return exitError
	}
	return exitOK
}

// startTarget resolves the server under test: an external -addr, a spawned
// -bin child, or an in-process server on a real socket.
func startTarget(ctx context.Context, cfg config, stderr io.Writer) (base string, shutdown func(), err error) {
	switch {
	case cfg.addr != "":
		return strings.TrimSuffix(cfg.addr, "/"), func() {}, nil
	case cfg.bin != "":
		proc, err := spawnServer(ctx, cfg, stderr)
		if err != nil {
			return "", nil, err
		}
		return proc.base, func() { proc.stop() }, nil
	default:
		svc, err := service.Open(service.Options{
			MaxSessions: cfg.sessions + 8,
			JournalDir:  cfg.journal,
		})
		if err != nil {
			return "", nil, err
		}
		if err := svc.WaitRecovered(ctx); err != nil {
			return "", nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		srv := &http.Server{Handler: svc.Handler()}
		go func() { _ = srv.Serve(ln) }()
		return "http://" + ln.Addr().String(), func() {
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutdownCtx)
			_ = svc.Close()
		}, nil
	}
}

// sessionState is one session's acknowledged history — the ground truth
// the chaos verifier holds the recovered server to.
type sessionState struct {
	index   int
	id      string
	created bool
	acked   []service.MutateOp
	// inflight is the one mutate op sent but not yet acknowledged when the
	// burst ended (sessions mutate sequentially, so there is at most one):
	// after a crash the recovered version may legitimately include it.
	inflight *service.MutateOp
}

// burst drives cfg.sessions open-loop sessions against base. Arrival times
// are fixed up front at 1/rate spacing; each session runs
// create → mutations × mutate → analyze. killAt, when non-nil, is closed
// to abort outstanding work (chaos mode kills the server under it).
func burst(ctx context.Context, cfg config, base string, rec *recorder, killAt <-chan struct{}) []*sessionState {
	client := &http.Client{
		Timeout: cfg.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.sessions,
			MaxIdleConnsPerHost: cfg.sessions,
		},
	}
	interval := time.Duration(float64(time.Second) / cfg.rate)
	states := make([]*sessionState, cfg.sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.sessions; i++ {
		states[i] = &sessionState{index: i}
		wg.Add(1)
		go func(st *sessionState, arrival time.Duration) {
			defer wg.Done()
			select {
			case <-time.After(time.Until(start.Add(arrival))):
			case <-ctx.Done():
				return
			case <-killAt:
				return
			}
			driveSession(ctx, cfg, client, base, st, rec)
		}(states[i], time.Duration(i)*interval)
	}
	wg.Wait()
	rec.wall = time.Since(start)
	return states
}

// driveSession runs one session's lifecycle, recording per-endpoint
// latencies and tracking exactly which mutations were acknowledged.
func driveSession(ctx context.Context, cfg config, client *http.Client, base string, st *sessionState, rec *recorder) {
	rng := rand.New(rand.NewSource(cfg.seed + int64(st.index)))
	var info service.SessionInfo
	code, err := doJSON(ctx, client, base+"/v1/sessions",
		service.CreateRequest{Name: fmt.Sprintf("load-%d", st.index), Spec: wordcountSpec},
		&info, rec, "create")
	if err != nil || code != http.StatusCreated {
		return
	}
	st.id = info.Session
	st.created = true

	for k := 0; k < cfg.mutations; k++ {
		op := opPool[rng.Intn(len(opPool))]
		st.inflight = &op
		var mr service.MutateResponse
		code, err = doJSON(ctx, client, base+"/v1/sessions/"+st.id+"/mutate",
			service.MutateRequest{Ops: []service.MutateOp{op}}, &mr, rec, "mutate")
		if err != nil {
			return // unacknowledged: st.inflight stays set for the verifier
		}
		st.inflight = nil
		if code == http.StatusOK {
			st.acked = append(st.acked, op)
		}
		// 429/503 sheds are counted by the recorder and simply dropped:
		// an open-loop client does not retry into an overloaded server.
	}

	var rep json.RawMessage
	_, _ = doJSON(ctx, client, base+"/v1/sessions/"+st.id+"/analyze", nil, &rep, rec, "analyze")
}

// doJSON posts body (nil = empty POST) and decodes the response into out.
// It returns a non-nil error only for transport failures — HTTP error
// statuses are recorded and returned as codes.
func doJSON(ctx context.Context, client *http.Client, url string, body, out any, rec *recorder, endpoint string) (int, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = strings.NewReader(string(data))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, rd)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	begin := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		rec.transportError(endpoint)
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		rec.transportError(endpoint)
		return 0, err
	}
	rec.observe(endpoint, resp.StatusCode, time.Since(begin))
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func writeReport(path string, report any, stdout io.Writer) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" || path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
