// Package service embeds the Blazes analysis as a long-running HTTP+JSON
// service: the `blazes serve` subcommand is a thin wrapper around it, and
// any Go program can mount Server.Handler on its own mux. The service
// hosts concurrent analysis sessions (blazes.Session) behind an LRU bound,
// so a client drives the paper's repair loop over the wire: create a
// session from a spec, mutate it (seal, annotate, re-select variants,
// rewire), and re-analyze incrementally — each analysis returns a Report
// v2 whose Delta section says exactly what the last mutation changed.
// Request contexts are honored end to end: an aborted analyze or verify
// request cancels the underlying derivation or schedule sweep.
//
// The service practices the fault-tolerance discipline it analyzes:
//
//   - Durability (Open with Options.JournalDir): every acknowledged
//     mutation is journaled — fsync-batched, snapshot-compacted — and
//     replayed on boot, so a kill -9 loses nothing a client was told
//     succeeded. While the boot replay rebuilds sessions the server
//     degrades to read-only (writes shed with 503) instead of blocking.
//     See durability.go for the write protocol.
//   - Backpressure: the expensive paths (create, mutate, analyze, verify)
//     pass a bounded admission gate; beyond the concurrency slots and the
//     bounded wait queue, requests shed with 429 + Retry-After instead of
//     queueing unboundedly. See admission.go.
//   - Observability: GET /v1/stats reports sessions, journal lag, queue
//     depth, shed counts and latency percentiles. See stats.go.
//
// Endpoints (all JSON):
//
//	POST   /v1/sessions              create a session from a spec
//	GET    /v1/sessions              list open sessions (+ tombstones)
//	GET    /v1/sessions/{id}         inspect one session (410 if evicted)
//	POST   /v1/sessions/{id}/mutate  apply a batch of mutations in order
//	POST   /v1/sessions/{id}/analyze incremental (re-)analysis → Report v2
//	DELETE /v1/sessions/{id}         close a session
//	POST   /v1/verify                run schedule-exploration verification
//	POST   /v1/sweeps                submit a distributed verification sweep
//	GET    /v1/sweeps                list sweeps
//	GET    /v1/sweeps/{id}           sweep status (+ reports/traces when done)
//	POST   /v1/sweeps/{id}/claim     worker: lease seed-range batches
//	POST   /v1/sweeps/{id}/report    worker: report a batch's outcomes
//	GET    /v1/stats                 load/durability/latency statistics
//	GET    /healthz                  liveness + session count
package service

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"blazes"
	"blazes/internal/journal"
	"blazes/strategy"
	"blazes/verify"
)

// DefaultMaxSessions bounds the number of concurrently open sessions when
// Options.MaxSessions is zero.
const DefaultMaxSessions = 64

// DefaultSnapshotEvery is the journal-record interval between snapshots
// when Options.SnapshotEvery is zero.
const DefaultSnapshotEvery = 1024

// DefaultMaxQueue is the admission wait-queue bound when Options.MaxQueue
// is zero.
const DefaultMaxQueue = 256

// DefaultQueueTimeout caps the time a request waits for an admission slot
// when Options.QueueTimeout is zero.
const DefaultQueueTimeout = 2 * time.Second

// Options configures a Server.
type Options struct {
	// MaxSessions caps concurrently open sessions; the least recently
	// used session is evicted when a create would exceed it. 0 selects
	// DefaultMaxSessions.
	MaxSessions int

	// JournalDir, when non-empty, makes the server durable: acknowledged
	// mutations are journaled there and replayed by Open after a restart.
	// New ignores it — only Open wires durability.
	JournalDir string
	// SnapshotEvery is the number of journal records between snapshots
	// (compaction); 0 selects DefaultSnapshotEvery.
	SnapshotEvery int
	// JournalSegmentBytes caps individual wal segment files: the journal
	// rotates to a fresh segment once the active one reaches the cap (full
	// segments last until the next snapshot obsoletes them). 0 disables
	// size-based rotation.
	JournalSegmentBytes int64

	// MaxConcurrent bounds concurrently admitted expensive requests
	// (create/mutate/analyze/verify); 0 selects GOMAXPROCS (min 2).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an admission slot; beyond it
	// requests shed immediately with 429. 0 selects DefaultMaxQueue.
	MaxQueue int
	// QueueTimeout caps the wait for a slot; a request still queued when
	// it fires sheds with 429. 0 selects DefaultQueueTimeout.
	QueueTimeout time.Duration

	// SweepClaimTTL is the lease duration for sweep batches claimed by
	// workers; an expired claim is re-issued to another worker. 0 selects
	// DefaultSweepClaimTTL.
	SweepClaimTTL time.Duration
}

// Server hosts analysis sessions. Create one with New (in-memory) or Open
// (durable) and mount Handler on an http.Server (or use the `blazes
// serve` subcommand). Methods are safe for concurrent use.
type Server struct {
	mu     sync.Mutex
	max    int
	nextID int
	byID   map[string]*entry
	// lru orders entries most-recently-used first.
	lru *list.List
	// tombstones remember evicted/unrecoverable sessions (bounded FIFO).
	// tombIdx maps session id → tombBase-relative position so the fetch
	// path resolves 410s in O(1); tombBase counts entries trimmed off the
	// front, keeping indexed positions stable across trims.
	tombstones []Tombstone
	tombIdx    map[string]int
	tombBase   int

	// Durability (nil jrn = in-memory server). snapMu serializes writers
	// (read lock around apply+journal) against snapshots (write lock), so
	// a snapshot always covers every record at or below its seq.
	jrn           *journal.Journal
	snapMu        sync.RWMutex
	snapEvery     int
	snapshotting  atomic.Bool
	journalBroken atomic.Bool

	// Recovery: while recovering, writes shed with 503 and sessions appear
	// as the background replay rebuilds them.
	recovering     atomic.Bool
	recoveredCh    chan struct{}
	recoveredCount atomic.Int64
	replayErrors   atomic.Int64

	// Admission + observability.
	gate             *gate
	evictedTotal     atomic.Uint64
	readOnlyRejected atomic.Uint64
	createLat        latencyHist
	mutateLat        latencyHist
	analyzeLat       latencyHist
	verifyLat        latencyHist

	// Sweep coordination (in-memory; sweeps are not journaled — a sweep
	// is a computation, not acknowledged durable state). See sweeps.go.
	sweepMu     sync.Mutex
	sweeps      map[string]*sweepJob
	sweepOrder  []string
	nextSweepID int
	sweepTTL    time.Duration

	sweepsSubmitted      atomic.Uint64
	sweepsCompleted      atomic.Uint64
	sweepBatchesClaimed  atomic.Uint64
	sweepBatchesReported atomic.Uint64
	sweepTracesShrunk    atomic.Uint64
	sweepLat             latencyHist
}

type entry struct {
	id   string
	name string
	sess *blazes.Session
	elem *list.Element
	// recovered marks a session rebuilt from the journal after a restart.
	recovered bool

	// opMu serializes this session's mutate batches so the journal's
	// per-session record order always matches the apply order. create is
	// the request that opened the session and ops every op acknowledged
	// since — together they are the session's durable identity.
	opMu   sync.Mutex
	create CreateRequest
	ops    []MutateOp
}

// New creates an in-memory server (no durability even if opts.JournalDir
// is set — use Open for that).
func New(opts Options) *Server {
	max := opts.MaxSessions
	if max <= 0 {
		max = DefaultMaxSessions
	}
	maxConc := opts.MaxConcurrent
	if maxConc <= 0 {
		maxConc = runtime.GOMAXPROCS(0)
		if maxConc < 2 {
			maxConc = 2
		}
	}
	maxQueue := opts.MaxQueue
	if maxQueue <= 0 {
		maxQueue = DefaultMaxQueue
	}
	queueTimeout := opts.QueueTimeout
	if queueTimeout <= 0 {
		queueTimeout = DefaultQueueTimeout
	}
	snapEvery := opts.SnapshotEvery
	if snapEvery <= 0 {
		snapEvery = DefaultSnapshotEvery
	}
	sweepTTL := opts.SweepClaimTTL
	if sweepTTL <= 0 {
		sweepTTL = DefaultSweepClaimTTL
	}
	s := &Server{
		max:         max,
		byID:        map[string]*entry{},
		tombIdx:     map[string]int{},
		lru:         list.New(),
		snapEvery:   snapEvery,
		gate:        newGate(maxConc, maxQueue, queueTimeout),
		recoveredCh: make(chan struct{}),
		sweeps:      map[string]*sweepJob{},
		sweepTTL:    sweepTTL,
	}
	close(s.recoveredCh) // nothing to recover
	return s
}

// Open creates a durable server: it opens (or creates) the journal in
// opts.JournalDir, truncates any torn tail, and starts the boot replay in
// the background — the returned server serves reads immediately and sheds
// writes with 503 until WaitRecovered unblocks. With an empty JournalDir
// it is equivalent to New.
func Open(opts Options) (*Server, error) {
	s := New(opts)
	if opts.JournalDir == "" {
		return s, nil
	}
	jrn, recovered, err := journal.OpenWithOptions(opts.JournalDir, journal.Options{SegmentBytes: opts.JournalSegmentBytes})
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	plan, err := planRecovery(recovered)
	if err != nil {
		jrn.Close()
		return nil, fmt.Errorf("service: %w", err)
	}
	s.jrn = jrn
	s.recoveredCh = make(chan struct{})
	s.recovering.Store(true)
	go s.recoverSessions(plan)
	return s, nil
}

// WaitRecovered blocks until the boot replay has rebuilt every journaled
// session (immediately for in-memory servers), or until ctx is done.
func (s *Server) WaitRecovered(ctx context.Context) error {
	select {
	case <-s.recoveredCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close flushes and closes the journal (a no-op for in-memory servers).
// It waits for a boot replay in progress, so the journal it closes is
// complete.
func (s *Server) Close() error {
	<-s.recoveredCh
	if s.jrn == nil {
		return nil
	}
	return s.jrn.Close()
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	mux.HandleFunc("POST /v1/sessions/{id}/mutate", s.handleMutate)
	mux.HandleFunc("POST /v1/sessions/{id}/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /v1/sessions/{id}/lint", s.handleLint)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	mux.HandleFunc("POST /v1/sweeps/{id}/claim", s.handleSweepClaim)
	mux.HandleFunc("POST /v1/sweeps/{id}/report", s.handleSweepReport)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// SessionCount reports the number of open sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

// touch marks an entry most recently used; the caller holds s.mu.
func (s *Server) touch(e *entry) { s.lru.MoveToFront(e.elem) }

// lookup fetches an entry and bumps its recency.
func (s *Server) lookup(id string) (*entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if ok {
		s.touch(e)
	}
	return e, ok
}

// fetch is lookup plus the error response: 410 with the tombstone when the
// session was evicted or lost, 404 when it never existed.
func (s *Server) fetch(w http.ResponseWriter, id string) (*entry, bool) {
	e, ok := s.lookup(id)
	if ok {
		return e, true
	}
	s.mu.Lock()
	var tomb *Tombstone
	if i, ok := s.tombIdx[id]; ok {
		t := s.tombstones[i-s.tombBase]
		tomb = &t
	}
	s.mu.Unlock()
	if tomb != nil {
		writeJSON(w, http.StatusGone, map[string]any{
			"error":     fmt.Sprintf("session %q is %s", id, tomb.State),
			"tombstone": *tomb,
		})
		return nil, false
	}
	writeError(w, http.StatusNotFound, "unknown session %q", id)
	return nil, false
}

// admit passes the request through the admission gate; on shed it writes
// the 429 (+ Retry-After) or 408 response itself. The returned release
// must be called when ok.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	release, err := s.gate.acquire(r.Context().Done())
	switch {
	case err == nil:
		return release, true
	case errors.Is(err, errOverloaded):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.gate.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "overloaded: admission queue is full, retry later")
		return nil, false
	default: // the request's own deadline/disconnect fired while queued
		writeError(w, http.StatusRequestTimeout, "request canceled while queued for admission")
		return nil, false
	}
}

// available rejects requests the server cannot serve right now: during the
// boot replay every expensive path degrades to 503 (read-only), and a
// poisoned journal keeps state-changing paths (write=true) shut so the
// server never acknowledges a mutation it cannot make durable.
func (s *Server) available(w http.ResponseWriter, write bool) bool {
	if s.recovering.Load() {
		s.readOnlyRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "recovering: journal replay in progress, serving read-only")
		return false
	}
	if write && s.journalBroken.Load() {
		s.readOnlyRejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, "journal failed: server is read-only (see /v1/stats)")
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ErrorResponse is the wire form of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Applied counts the mutate ops applied before the failing one
	// (mutate responses only).
	Applied int `json:"applied,omitempty"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds every request body the service will buffer.
const maxBodyBytes = 8 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// decodeOptionalBody is decodeBody for endpoints whose body may be empty
// (an empty body leaves v at its zero value). Detection is by actually
// decoding — not by Content-Length, which chunked requests don't carry.
func decodeOptionalBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return true
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// CreateRequest opens a session from a Blazes configuration document (the
// same format `blazes -spec` reads).
type CreateRequest struct {
	// Name labels the dataflow; it defaults to "session".
	Name string `json:"name,omitempty"`
	// Spec is the configuration text (annotations + topology).
	Spec string `json:"spec"`
	// Variants selects named annotation variants per component.
	Variants map[string]string `json:"variants,omitempty"`
	// Seals seals streams on the given key attributes before the first
	// analysis.
	Seals map[string][]string `json:"seals,omitempty"`
	// Sequencing prefers M1 sequencing over M2 dynamic ordering whenever
	// synthesis must order inputs.
	Sequencing bool `json:"sequencing,omitempty"`
	// Strategy asks synthesis to try the named registered coordination
	// strategy first (see blazes/strategy); empty keeps the default chain.
	// An unknown name fails session creation.
	Strategy string `json:"strategy,omitempty"`
}

// NewSession opens the session the request describes. Exported because it
// is the rebuild path shared by the live create handler, crash-recovery
// replay, and external differential checkers (cmd/loadgen): a session is
// its CreateRequest plus its acknowledged op stream.
func (req CreateRequest) NewSession() (*blazes.Session, error) {
	if req.Spec == "" {
		return nil, fmt.Errorf("spec is required")
	}
	spec, err := blazes.ParseSpec(req.Spec)
	if err != nil {
		return nil, err
	}
	opts := []blazes.Option{blazes.WithVariants(req.Variants)}
	if req.Sequencing {
		opts = append(opts, blazes.PreferSequencing())
	}
	if req.Strategy != "" {
		opts = append(opts, blazes.WithStrategy(req.Strategy))
	}
	for stream, key := range req.Seals {
		opts = append(opts, blazes.WithSealRepair(stream, key...))
	}
	return spec.OpenSession(req.SessionName(), opts...)
}

// SessionName returns the request's name with the default applied.
func (req CreateRequest) SessionName() string {
	if req.Name == "" {
		return "session"
	}
	return req.Name
}

// SessionInfo describes one open session.
type SessionInfo struct {
	Session string `json:"session"`
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	// State is "open" for live sessions ("evicted"/"unrecoverable"
	// sessions appear as tombstones, not SessionInfos).
	State string `json:"state"`
	// Recovered marks a session rebuilt from the journal after a restart.
	Recovered  bool     `json:"recovered,omitempty"`
	Components []string `json:"components,omitempty"`
	Streams    []string `json:"streams,omitempty"`
}

func (s *Server) info(e *entry, detail bool) SessionInfo {
	si := SessionInfo{Session: e.id, Name: e.name, Version: e.sess.Version(), State: "open", Recovered: e.recovered}
	if detail {
		si.Components = e.sess.ComponentNames()
		si.Streams = e.sess.StreamNames()
	}
	return si
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if !s.available(w, true) {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	start := time.Now()

	var req CreateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Spec == "" {
		writeError(w, http.StatusBadRequest, "spec is required")
		return
	}
	sess, err := req.NewSession()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The create record goes to the journal before the session becomes
	// visible; the snapMu read lock spans id assignment, append and
	// insertion so a concurrent snapshot cannot cover the record's seq
	// without containing the session.
	s.snapMu.RLock()
	s.mu.Lock()
	s.nextID++
	e := &entry{id: fmt.Sprintf("s%d", s.nextID), name: req.SessionName(), sess: sess, create: req}
	s.mu.Unlock()
	if err := s.appendRecord(journalRecord{Kind: "create", Session: e.id, Name: e.name, Create: &req}); err != nil {
		s.snapMu.RUnlock()
		writeError(w, http.StatusInternalServerError, "journal: %v", err)
		return
	}
	s.mu.Lock()
	e.elem = s.lru.PushFront(e)
	s.byID[e.id] = e
	s.evictOverflowLocked()
	s.mu.Unlock()
	s.snapMu.RUnlock()

	s.createLat.observe(time.Since(start))
	s.maybeSnapshot()
	writeJSON(w, http.StatusCreated, s.info(e, true))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	// Snapshot the entries under the store lock, then query each session
	// after releasing it: Session methods take the session's own mutex,
	// and a session mid-analysis must not stall requests for the others.
	s.mu.Lock()
	entries := make([]*entry, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		entries = append(entries, el.Value.(*entry))
	}
	tombs := append([]Tombstone(nil), s.tombstones...)
	s.mu.Unlock()
	out := make([]SessionInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, s.info(e, false))
	}
	resp := map[string]any{"sessions": out}
	if len(tombs) > 0 {
		resp["evicted"] = tombs
	}
	if s.recovering.Load() {
		resp["recovering"] = true
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	e, ok := s.fetch(w, r.PathValue("id"))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.info(e, true))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.available(w, true) {
		return
	}
	id := r.PathValue("id")
	s.snapMu.RLock()
	s.mu.Lock()
	e, ok := s.byID[id]
	if ok {
		s.lru.Remove(e.elem)
		delete(s.byID, id)
	}
	s.mu.Unlock()
	var jerr error
	if ok {
		jerr = s.appendRecord(journalRecord{Kind: "delete", Session: id})
	}
	s.snapMu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	if jerr != nil {
		writeError(w, http.StatusInternalServerError, "journal: %v", jerr)
		return
	}
	s.maybeSnapshot()
	w.WriteHeader(http.StatusNoContent)
}

// MutateOp is one mutation; Op selects which fields apply:
//
//	{"op":"seal", "stream":"tweets", "key":["batch"]}      seal (empty key unseals)
//	{"op":"annotate", "component":"Count", "from":"words", "to":"counts",
//	 "label":"OW", "subscript":["word","batch"]}           replace a path annotation
//	{"op":"variant", "component":"Report", "variant":"POOR"}
//	{"op":"connect", "stream":"tap", "from":"Count.counts", "to":""}
//	{"op":"remove-edge", "stream":"tap"}
//	{"op":"add-component", "name":"Audit",
//	 "paths":[{"from":"in","to":"out","label":"CW"}]}
type MutateOp struct {
	Op        string    `json:"op"`
	Stream    string    `json:"stream,omitempty"`
	Key       []string  `json:"key,omitempty"`
	Component string    `json:"component,omitempty"`
	From      string    `json:"from,omitempty"`
	To        string    `json:"to,omitempty"`
	Label     string    `json:"label,omitempty"`
	Subscript []string  `json:"subscript,omitempty"`
	Variant   string    `json:"variant,omitempty"`
	Name      string    `json:"name,omitempty"`
	Paths     []PathDef `json:"paths,omitempty"`
}

// PathDef declares one annotated path of an add-component op.
type PathDef struct {
	From      string   `json:"from"`
	To        string   `json:"to"`
	Label     string   `json:"label"`
	Subscript []string `json:"subscript,omitempty"`
}

// MutateRequest applies ops in order; the first failure stops the batch
// (earlier ops stay applied — each op is individually atomic) and the
// response reports how many were applied.
type MutateRequest struct {
	Ops []MutateOp `json:"ops"`
}

// MutateResponse acknowledges an applied batch. Durable reports that the
// applied ops were journaled before this acknowledgement (always true on
// durable servers, false on in-memory ones).
type MutateResponse struct {
	Version uint64 `json:"version"`
	Applied int    `json:"applied"`
	Durable bool   `json:"durable,omitempty"`
}

// Apply applies the op to sess. Exported because it is the replay half of
// the durability contract: crash recovery and differential checkers
// (cmd/loadgen, the recovery tests) re-apply journaled op streams with
// exactly the semantics the mutate endpoint used.
func (op MutateOp) Apply(sess *blazes.Session) error {
	switch op.Op {
	case "seal":
		return sess.SealStream(op.Stream, op.Key...)
	case "annotate":
		ann, err := blazes.ParseAnnotation(op.Label, op.Subscript)
		if err != nil {
			return err
		}
		return sess.Annotate(op.Component, op.From, op.To, ann)
	case "variant":
		return sess.SetVariant(op.Component, op.Variant)
	case "connect":
		return sess.Connect(op.Stream, op.From, op.To)
	case "remove-edge":
		return sess.RemoveEdge(op.Stream)
	case "add-component":
		decls := make([]blazes.PathDecl, 0, len(op.Paths))
		for _, p := range op.Paths {
			ann, err := blazes.ParseAnnotation(p.Label, p.Subscript)
			if err != nil {
				return err
			}
			decls = append(decls, blazes.Path(p.From, p.To, ann))
		}
		return sess.AddComponent(op.Name, decls...)
	default:
		return fmt.Errorf("unknown op %q (want seal, annotate, variant, connect, remove-edge or add-component)", op.Op)
	}
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if !s.available(w, true) {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	start := time.Now()

	e, ok := s.fetch(w, r.PathValue("id"))
	if !ok {
		return
	}
	var req MutateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "ops is required")
		return
	}

	// Apply, then journal, then acknowledge. opMu keeps this session's
	// journal order identical to its apply order; the snapMu read lock
	// keeps the applied-but-unjournaled window invisible to snapshots.
	e.opMu.Lock()
	s.snapMu.RLock()
	applied := 0
	var opErr error
	for i, op := range req.Ops {
		if err := op.Apply(e.sess); err != nil {
			opErr = fmt.Errorf("op %d (%s): %v", i, op.Op, err)
			break
		}
		applied = i + 1
	}
	var jerr error
	if applied > 0 {
		jerr = s.appendRecord(journalRecord{Kind: "mutate", Session: e.id, Ops: req.Ops[:applied]})
		if jerr == nil {
			e.ops = append(e.ops, req.Ops[:applied]...)
		}
	}
	s.snapMu.RUnlock()
	e.opMu.Unlock()

	if jerr != nil {
		// The ops are applied in memory but not durable: the server is
		// now poisoned read-only (see durability.go) and this batch is
		// NOT acknowledged.
		writeError(w, http.StatusInternalServerError, "journal: %v", jerr)
		return
	}
	if opErr != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: opErr.Error(), Applied: applied})
		return
	}
	s.mutateLat.observe(time.Since(start))
	s.maybeSnapshot()
	writeJSON(w, http.StatusOK, MutateResponse{Version: e.sess.Version(), Applied: applied, Durable: s.jrn != nil})
}

// AnalyzeRequest tunes one analysis; an empty body is a plain Analyze.
type AnalyzeRequest struct {
	// Synthesize additionally emits one coordination strategy per
	// component that needs machinery.
	Synthesize bool `json:"synthesize,omitempty"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if !s.available(w, false) {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	start := time.Now()

	e, ok := s.fetch(w, r.PathValue("id"))
	if !ok {
		return
	}
	var req AnalyzeRequest
	if !decodeOptionalBody(w, r, &req) {
		return
	}
	var (
		rep *blazes.Report
		err error
	)
	if req.Synthesize {
		rep, err = e.sess.Synthesize(r.Context())
	} else {
		rep, err = e.sess.Analyze(r.Context())
	}
	if err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			code = http.StatusRequestTimeout
		}
		writeError(w, code, "%v", err)
		return
	}
	s.analyzeLat.observe(time.Since(start))
	writeJSON(w, http.StatusOK, rep)
}

// LintResponse carries the severity-ranked BLZnnn graph diagnostics for a
// session's current graph (see the DESIGN.md catalog). Errors marks whether
// any diagnostic has error severity — the same condition under which
// `blazes lint` exits non-zero.
type LintResponse struct {
	Session     string                  `json:"session"`
	Version     uint64                  `json:"version"`
	Errors      bool                    `json:"errors"`
	Diagnostics []blazes.LintDiagnostic `json:"diagnostics"`
}

// handleLint lints the session's current graph. Linting is a read-only
// inspection: it does not mutate the session or disturb the incremental
// analysis state, so it can be polled between mutations.
func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	e, ok := s.fetch(w, r.PathValue("id"))
	if !ok {
		return
	}
	diags := e.sess.Lint()
	if diags == nil {
		diags = []blazes.LintDiagnostic{}
	}
	writeJSON(w, http.StatusOK, LintResponse{
		Session:     e.id,
		Version:     e.sess.Version(),
		Errors:      blazes.HasLintErrors(diags),
		Diagnostics: diags,
	})
}

// VerifyRequest runs the schedule-exploration harness over named built-in
// workloads (all of them when Workloads is empty).
type VerifyRequest struct {
	Workloads []string `json:"workloads,omitempty"`
	// Seeds is the schedule count per (mechanism, plan) configuration; 0
	// selects the default (64).
	Seeds int `json:"seeds,omitempty"`
	// Parallelism is the sweep worker count (0 = one per CPU, 1 =
	// sequential); reports are byte-identical at any setting.
	Parallelism int `json:"parallelism,omitempty"`
	// Sequencing prefers M1 over M2 where ordering is required.
	Sequencing bool `json:"sequencing,omitempty"`
	// Strategy asks synthesis to try the named registered coordination
	// strategy first (see blazes/strategy); unknown names are rejected
	// with 400.
	Strategy string `json:"strategy,omitempty"`
}

// VerifyResponse carries one report per verified workload.
type VerifyResponse struct {
	Holds   bool             `json:"holds"`
	Reports []*verify.Report `json:"reports"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if !s.available(w, false) {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	start := time.Now()

	var req VerifyRequest
	if !decodeOptionalBody(w, r, &req) {
		return
	}
	if req.Seeds < 0 {
		writeError(w, http.StatusBadRequest, "seeds must be non-negative")
		return
	}
	if req.Parallelism < -1 {
		writeError(w, http.StatusBadRequest, "parallelism must be ≥ -1 (-1 selects one worker per CPU)")
		return
	}
	if err := strategy.Validate(req.Strategy); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	suite := verify.Workloads()
	selected := suite
	if len(req.Workloads) > 0 {
		byName := map[string]verify.Workload{}
		var names []string
		for _, wl := range suite {
			byName[wl.Name()] = wl
			names = append(names, wl.Name())
		}
		selected = nil
		for _, name := range req.Workloads {
			wl, ok := byName[name]
			if !ok {
				writeError(w, http.StatusBadRequest, "unknown workload %q (workloads: %v)", name, names)
				return
			}
			selected = append(selected, wl)
		}
	}
	parallelism := req.Parallelism
	if parallelism == 0 {
		parallelism = -1 // one worker per CPU
	}
	opts := verify.Options{Seeds: req.Seeds, PreferSequencing: req.Sequencing, Strategy: req.Strategy, Parallelism: parallelism}
	resp := VerifyResponse{Holds: true}
	for _, wl := range selected {
		rep, err := verify.CheckContext(r.Context(), wl, opts)
		if err != nil {
			code := http.StatusInternalServerError
			if r.Context().Err() != nil {
				code = http.StatusRequestTimeout
			}
			writeError(w, code, "verify %s: %v", wl.Name(), err)
			return
		}
		resp.Reports = append(resp.Reports, rep)
		resp.Holds = resp.Holds && rep.Holds
	}
	s.verifyLat.observe(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         true,
		"sessions":   s.SessionCount(),
		"recovering": s.recovering.Load(),
	})
}
