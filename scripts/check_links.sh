#!/usr/bin/env bash
# check_links.sh — verify that every relative markdown link in the repo's
# documentation points at a file that actually exists. Runs in the CI docs
# job so refactors can't silently orphan README/DESIGN/EXPERIMENTS
# cross-references. External (http/https/mailto) links and pure #anchors are
# skipped: the check must work offline and stay dependency-free.
#
# Usage: scripts/check_links.sh [file.md ...]   # default: the doc set
set -euo pipefail
cd "$(dirname "$0")/.."

FILES=("$@")
if [[ ${#FILES[@]} -eq 0 ]]; then
	FILES=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md PAPER.md PAPERS.md)
fi

bad=0
for f in "${FILES[@]}"; do
	if [[ ! -f "$f" ]]; then
		echo "check_links: missing doc file: $f" >&2
		bad=1
		continue
	fi
	# Extract inline markdown link targets: [text](target).
	while IFS= read -r target; do
		case "$target" in
		http://* | https://* | mailto:* | "#"*) continue ;;
		esac
		path="${target%%#*}"   # drop any #anchor
		path="${path%% *}"     # drop any '"title"' suffix
		[[ -z "$path" ]] && continue
		if [[ ! -e "$path" ]]; then
			echo "check_links: $f: broken link -> $target" >&2
			bad=1
		fi
	done < <(grep -o '\[[^]]*\]([^)]*)' "$f" | sed 's/.*](\([^)]*\))/\1/')
done

if [[ "$bad" -ne 0 ]]; then
	exit 1
fi
echo "check_links: all relative links resolve"
