package lint_test

import (
	"strings"
	"testing"

	"blazes/internal/lint"
	"blazes/internal/lint/linttest"
)

// The three analyzers run over dedicated testdata packages (their own
// module under testdata/src, so the go tool ignores it from the repo root)
// with want-comment expectations: positive cases, the recognized
// order-insensitive idioms, and the suppression marker in both its
// reasoned and reasonless forms.

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "maporder", "testdata/src", "./maporder")
}

func TestNonDet(t *testing.T) {
	linttest.Run(t, "nondet", "testdata/src", "./nondet")
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "ctxflow", "testdata/src", "./ctxflow")
}

// The registry's two-place invariant: every valid name resolves through
// New, All returns them sorted, unknown names fail with a self-updating
// message.

func TestRegistry(t *testing.T) {
	names := lint.Names()
	if len(names) == 0 {
		t.Fatal("no registered analyzers")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, n := range names {
		if !lint.IsValidAnalyzer(n) {
			t.Errorf("IsValidAnalyzer(%q) = false for a registered name", n)
		}
		a, err := lint.New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if a.Name != n || a.Run == nil || a.Doc == "" {
			t.Errorf("New(%q) = %+v: incomplete analyzer", n, a)
		}
	}
	if lint.IsValidAnalyzer("bogus") {
		t.Error("IsValidAnalyzer(bogus) = true")
	}
	if _, err := lint.New("bogus"); err == nil || !strings.Contains(err.Error(), strings.Join(names, ", ")) {
		t.Errorf("New(bogus) error %v should list the valid names", err)
	}
	all := lint.All()
	if len(all) != len(names) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(names))
	}
}

func TestForNames(t *testing.T) {
	as, err := lint.ForNames("")
	if err != nil || len(as) != len(lint.Names()) {
		t.Fatalf("ForNames(\"\") = %d analyzers, err %v; want the full set", len(as), err)
	}
	as, err = lint.ForNames(" nondet , maporder ")
	if err != nil || len(as) != 2 || as[0].Name != "nondet" || as[1].Name != "maporder" {
		t.Fatalf("ForNames selection = %v, err %v", as, err)
	}
	if _, err := lint.ForNames("maporder,bogus"); err == nil {
		t.Error("ForNames with an unknown name should fail")
	}
}

// AppliesTo pins the scope semantics the driver depends on: exact import
// paths, test-variant base paths, and the empty-scope wildcard tests use.
func TestAppliesTo(t *testing.T) {
	a := &lint.Analyzer{Name: "x", Scope: []string{"blazes/internal/sim"}}
	for path, want := range map[string]bool{
		"blazes/internal/sim":                            true,
		"blazes/internal/sim [blazes/internal/sim.test]": true,
		"blazes/internal/storm":                          false,
		"blazes/internal/simx":                           false,
	} {
		if got := a.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	wild := &lint.Analyzer{Name: "y"}
	if !wild.AppliesTo("anything/at/all") {
		t.Error("empty scope must match every package")
	}
}
