package blazes

import (
	"os"
	"path/filepath"
	"sort"
	"strings"

	"blazes/internal/spec"
)

// Spec is a parsed Blazes configuration file (the paper's "grey box" input,
// Figure 1): component annotations — with optional named variants — plus a
// topology section. Build a Graph from it with Graph, selecting variants
// via WithVariant options.
type Spec struct {
	cfg *spec.Config
}

// ParseSpec parses a Blazes configuration document.
func ParseSpec(src string) (*Spec, error) {
	cfg, err := spec.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Spec{cfg: cfg}, nil
}

// LoadSpec reads and parses a Blazes configuration file.
func LoadSpec(path string) (*Spec, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpec(string(src))
}

// SpecName derives a dataflow name from a spec file path (the base name
// without its extension) — what `blazes -spec` uses when naming the graph.
func SpecName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// Graph builds a dataflow graph from the spec. Variant selections are
// taken from WithVariant/WithVariants options; other options are ignored
// here (pass them to the Analyzer instead).
func (s *Spec) Graph(name string, opts ...Option) (*Graph, error) {
	cfg := buildConfig(opts)
	bopts := spec.BuildOptions{Variants: map[string]string{}}
	for comp, v := range cfg.variants {
		bopts.Variants[comp] = v
	}
	return s.cfg.Graph(name, bopts)
}

// Components returns the component names declared in the spec, in file
// order.
func (s *Spec) Components() []string {
	out := make([]string, 0, len(s.cfg.Components))
	for _, c := range s.cfg.Components {
		out = append(out, c.Name)
	}
	return out
}

// Variants returns the variant names a component declares (empty when the
// component has none), in file order; ok reports whether the component
// exists.
func (s *Spec) Variants(component string) (variants []string, ok bool) {
	c := s.cfg.Component(component)
	if c == nil {
		return nil, false
	}
	return append([]string(nil), c.VariantOrder...), true
}

// Streams returns the stream names the topology declares, sorted.
func (s *Spec) Streams() []string {
	out := make([]string, 0, len(s.cfg.Streams))
	for _, st := range s.cfg.Streams {
		out = append(out, st.Name)
	}
	sort.Strings(out)
	return out
}
