package maporder

// Allowed would be flagged (channel send), but the reasoned marker above
// the loop documents why order cannot be observed and suppresses it.
func Allowed(m map[string]int, ch chan string) {
	//lint:allow maporder the receiver drains into an order-insensitive set
	for k := range m {
		ch <- k
	}
}

// Unreasoned shows a marker without a reason: the marker itself is a
// finding, and it suppresses nothing, so the loop is still flagged too.
func Unreasoned(m map[string]int, ch chan string) {
	// want-next "needs a reason"
	//lint:allow maporder
	for k := range m { // want "channel send escapes iteration order"
		ch <- k
	}
}
