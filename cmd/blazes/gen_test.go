package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The gen subcommand is driven in-process like the other flows. Generated
// specs are not checked in as goldens — determinism is the contract, so
// the tests regenerate and compare instead.

func TestGenDeterministicAndAnalyzable(t *testing.T) {
	args := []string{"gen", "-components", "80", "-seed", "12", "-stats"}
	code, out1, stderr1 := exec(t, args...)
	if code != exitOK {
		t.Fatalf("gen: code %d, stderr %s", code, stderr1)
	}
	var st struct {
		Components int `json:"components"`
		Streams    int `json:"streams"`
	}
	if err := json.Unmarshal([]byte(stderr1), &st); err != nil {
		t.Fatalf("-stats should emit JSON on stderr, got %q: %v", stderr1, err)
	}
	if st.Components != 80 || st.Streams == 0 {
		t.Fatalf("stats = %+v", st)
	}
	code, out2, _ := exec(t, args...)
	if code != exitOK || out1 != out2 {
		t.Fatal("same flags must regenerate byte-identical spec text")
	}

	// The emitted spec drives the normal analysis flow end to end.
	dir := t.TempDir()
	path := filepath.Join(dir, "gen.blazes")
	if code, _, stderr := exec(t, "gen", "-components", "80", "-seed", "12", "-o", path); code != exitOK {
		t.Fatalf("gen -o: code %d, stderr %s", code, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != out1 {
		t.Fatal("-o output differs from stdout output")
	}
	if code, stdout, stderr := exec(t, "-spec", path); code != exitOK || !strings.Contains(stdout, "verdict:") {
		t.Fatalf("analyze generated spec: code %d, stdout %q, stderr %s", code, stdout, stderr)
	}
	if code, _, stderr := exec(t, "lint", path); code != exitOK {
		t.Fatalf("lint generated spec should find no errors: code %d, stderr %s", code, stderr)
	}
}

func TestGenSeedsDiffer(t *testing.T) {
	_, a, _ := exec(t, "gen", "-components", "40", "-seed", "1")
	_, b, _ := exec(t, "gen", "-components", "40", "-seed", "2")
	if a == b {
		t.Fatal("different seeds should generate different topologies")
	}
}

func TestGenUsageErrors(t *testing.T) {
	cases := [][]string{
		{"gen", "-components", "0"},
		{"gen", "-cycles", "1.5"},
		{"gen", "-mix", "banana"},
		{"gen", "positional"},
	}
	for _, args := range cases {
		if code, _, _ := exec(t, args...); code != exitUsage {
			t.Errorf("%v: code %d, want %d", args, code, exitUsage)
		}
	}
}
