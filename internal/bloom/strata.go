package bloom

import "fmt"

// signedRead is one collection scanned by a rule body, with the polarity of
// its context: negative means the scan sits under a nonmonotonic operator
// (the right side of an antijoin, or any aggregation input), so stratified
// evaluation must fully compute it before the reading rule runs.
type signedRead struct {
	name     string
	negative bool
}

// signedReads walks the expression tree collecting scans with polarity.
func signedReads(e Expr, neg bool) []signedRead {
	switch x := e.(type) {
	case *ScanExpr:
		return []signedRead{{name: x.Name, negative: neg}}
	case *ProjectExpr:
		return signedReads(x.Input, neg)
	case *SelectExpr:
		return signedReads(x.Input, neg)
	case *JoinExpr:
		return append(signedReads(x.Left, neg), signedReads(x.Right, neg)...)
	case *AntiJoinExpr:
		return append(signedReads(x.Left, neg), signedReads(x.Right, true)...)
	case *GroupByExpr:
		// Aggregation is nonmonotonic in its input: new rows change
		// aggregate values.
		return signedReads(x.Input, true)
	case *ThresholdExpr:
		// Monotone threshold: output only grows with input; positive.
		return signedReads(x.Input, neg)
	default:
		return nil
	}
}

// nonmonotonic reports whether the expression applies any nonmonotonic
// operator (aggregation or negation) — the paper's syntactic test
// (Section VII-B1).
func nonmonotonic(e Expr) bool {
	switch x := e.(type) {
	case *ScanExpr:
		return false
	case *ProjectExpr:
		return nonmonotonic(x.Input)
	case *SelectExpr:
		return nonmonotonic(x.Input)
	case *JoinExpr:
		return nonmonotonic(x.Left) || nonmonotonic(x.Right)
	case *AntiJoinExpr:
		return true
	case *GroupByExpr:
		return true
	case *ThresholdExpr:
		return nonmonotonic(x.Input)
	default:
		return false
	}
}

// stratify assigns each collection a stratum such that positive
// dependencies stay within a stratum and negative dependencies strictly
// increase it, returning the assignment and the highest stratum in use.
// Programs with a nonmonotonic dependency cycle are rejected (they have no
// stratified model).
func stratify(m *Module) (map[string]int, int, error) {
	strata := map[string]int{}
	for _, c := range m.order {
		strata[c] = 0
	}
	n := len(m.order)
	for iter := 0; iter <= n+1; iter++ {
		changed := false
		for _, r := range m.rules {
			if r.Op != Instant {
				// Deferred/async rules break cycles across timesteps;
				// they impose no intra-tick ordering.
				continue
			}
			for _, sr := range signedReads(r.Body, false) {
				need := strata[sr.name]
				if sr.negative {
					need++
				}
				if strata[r.Head] < need {
					strata[r.Head] = need
					changed = true
				}
			}
		}
		if !changed {
			maxStratum := 0
			//lint:allow maporder max over the values is order-insensitive
			for _, s := range strata {
				if s > maxStratum {
					maxStratum = s
				}
			}
			return strata, maxStratum, nil
		}
		if iter == n+1 {
			break
		}
	}
	return nil, 0, fmt.Errorf("bloom: module %q is unstratifiable (nonmonotonic dependency cycle)", m.Name)
}
