package chaos

import (
	"context"
	"os"
	"testing"
)

// TestGeneratedWorkloadCheck closes the loop from the topology generator
// to the chaos harness: a generated graph runs under every fault plan,
// its coordinated sweeps are outcome-invariant, and stripping the
// coordination reproduces divergence on the order-sensitive interfaces
// the generator drew.
func TestGeneratedWorkloadCheck(t *testing.T) {
	w := Generated(24, 7)
	rep, err := Check(context.Background(), w, Config{Seeds: 8, Parallelism: -1})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.Deterministic {
		t.Fatal("generated default-mix graph analyzed as deterministic; the adapter test needs an order-sensitive one")
	}
	if len(rep.Uncoordinated) == 0 {
		t.Fatal("no stripped sweeps")
	}
	if !rep.DivergenceReproduced {
		t.Fatalf("stripping coordination reproduced no divergence:\n%s", rep.Summary())
	}
	if !rep.Holds {
		t.Fatalf("guarantee violated:\n%s", rep.Summary())
	}
}

// TestGeneratedRunDeterminism: runs are pure functions of (seed, plan,
// mechanism) — the property distribution and replay lean on — and M1's
// preordained order is seed-independent.
func TestGeneratedRunDeterminism(t *testing.T) {
	w := Generated(24, 7)
	plan := DefaultPlans()[1] // reorder
	for _, mech := range coordinations {
		if !w.Supports(mech) {
			continue // e.g. merge rewrite: generated graphs declare no merges
		}
		a, err := w.Run(3, plan, mech)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		b, err := w.Run(3, plan, mech)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if a.Replicas[0].Final != b.Replicas[0].Final {
			t.Errorf("%s: same seed, different outcome: %s vs %s", mech, a.Replicas[0].Final, b.Replicas[0].Final)
		}
	}
	s1, err := w.Run(1, plan, 1 /* CoordSequenced */)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := w.Run(2, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Replicas[0].Final != s2.Replicas[0].Final {
		t.Error("M1 outcome varies across seeds; the preordained order must be seed-independent")
	}
}

// TestGeneratedNameRoundTrip: the name encodes the full configuration, so
// LookupWorkload rebuilds the identical workload in another process.
func TestGeneratedNameRoundTrip(t *testing.T) {
	w := Generated(24, 7)
	got, err := LookupWorkload(w.Name())
	if err != nil {
		t.Fatalf("LookupWorkload(%q): %v", w.Name(), err)
	}
	gw, ok := got.(*GeneratedWorkload)
	if !ok || gw.Components != 24 || gw.Seed != 7 {
		t.Fatalf("LookupWorkload(%q) = %#v", w.Name(), got)
	}
	a, err := w.Run(5, DefaultPlans()[0], 0 /* CoordNone */)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gw.Run(5, DefaultPlans()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Replicas[0].Final != b.Replicas[0].Final {
		t.Error("rebuilt workload disagrees with the original on the same run")
	}
	for _, bad := range []string{"generated-xc-s1", "generated-0c-s1", "generated-12", "generated-12c-sQ"} {
		if _, err := LookupWorkload(bad); err == nil {
			t.Errorf("LookupWorkload(%q) accepted a malformed name", bad)
		}
	}
}

// TestScaleGeneratedChaos runs the full-size tier: a 1000-component
// generated topology under the complete fault-plan sweep. Gated behind
// BLAZES_SCALE_FULL with a reduced seed count — the default tier above
// already covers the interpreter; this tier is about the adapter holding
// up at ROADMAP scale.
func TestScaleGeneratedChaos(t *testing.T) {
	if os.Getenv("BLAZES_SCALE_FULL") == "" {
		t.Skip("set BLAZES_SCALE_FULL=1 to sweep a 1000-component generated topology")
	}
	w := Generated(1000, 11)
	rep, err := Check(context.Background(), w, Config{Seeds: 16, Parallelism: -1})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !rep.Holds {
		t.Fatalf("guarantee violated at 1000 components:\n%s", rep.Summary())
	}
}
