package bloom

import (
	"reflect"
	"strings"
	"testing"
)

// evalModule builds a module with the given collections preloaded and
// evaluates expr against it.
func evalExpr(t *testing.T, m *Module, data map[string][]Row, e Expr) []Row {
	t.Helper()
	n, err := NewNode("test", m)
	if err != nil {
		t.Fatal(err)
	}
	for coll, rows := range data {
		n.state[coll] = newStore()
		for _, r := range rows {
			n.state[coll].insert(r)
		}
	}
	rows, err := e.eval(m, n)
	if err != nil {
		t.Fatal(err)
	}
	SortRows(rows)
	return rows
}

func clicksModule() *Module {
	m := NewModule("m")
	m.Table("clicks", "id", "campaign", "n")
	m.Table("ads", "id", "owner")
	// A rule so Validate passes.
	m.Scratch("copy", "id", "campaign", "n")
	m.Rule("copy", Instant, Scan("clicks"))
	return m
}

func TestScanAndProject(t *testing.T) {
	m := clicksModule()
	data := map[string][]Row{"clicks": {
		{S("a1"), S("c1"), I(3)},
		{S("a2"), S("c2"), I(5)},
	}}
	got := evalExpr(t, m, data, Project(Scan("clicks"), Col("id"), ColAs("campaign", "camp")))
	want := []Row{{S("a1"), S("c1")}, {S("a2"), S("c2")}}
	SortRows(want)
	if !RowsEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestProjectConstAndDedup(t *testing.T) {
	m := clicksModule()
	data := map[string][]Row{"clicks": {
		{S("a1"), S("c1"), I(3)},
		{S("a2"), S("c1"), I(5)},
	}}
	got := evalExpr(t, m, data, Project(Scan("clicks"), Col("campaign"), ConstCol("tag", S("x"))))
	// Both rows project to the same (c1, x): set semantics dedups.
	if len(got) != 1 || !reflect.DeepEqual(got[0], Row{S("c1"), S("x")}) {
		t.Errorf("got %v", got)
	}
}

func TestSelectPredicates(t *testing.T) {
	m := clicksModule()
	data := map[string][]Row{"clicks": {
		{S("a1"), S("c1"), I(3)},
		{S("a2"), S("c2"), I(5)},
		{S("a3"), S("c1"), I(9)},
	}}
	got := evalExpr(t, m, data, Select(Scan("clicks"), Where("n", GT, I(3)), Where("campaign", EQ, S("c1"))))
	if len(got) != 1 || got[0][0] != S("a3") {
		t.Errorf("got %v", got)
	}
}

func TestJoin(t *testing.T) {
	m := clicksModule()
	data := map[string][]Row{
		"clicks": {{S("a1"), S("c1"), I(3)}, {S("a2"), S("c2"), I(5)}},
		"ads":    {{S("a1"), S("alice")}, {S("a3"), S("bob")}},
	}
	got := evalExpr(t, m, data, Join(Scan("clicks"), Scan("ads"), [2]string{"id", "id"}))
	// Join keeps left schema + right non-key columns.
	want := []Row{{S("a1"), S("c1"), I(3), S("alice")}}
	if !RowsEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestJoinDuplicateColumnRejected(t *testing.T) {
	m := NewModule("m")
	m.Table("a", "x", "y")
	m.Table("b", "z", "y")
	m.Scratch("s", "x", "y")
	m.Rule("s", Instant, Scan("a"))
	_, err := Join(Scan("a"), Scan("b"), [2]string{"x", "z"}).Schema(m)
	if err == nil || !strings.Contains(err.Error(), "duplicate column") {
		t.Errorf("err = %v", err)
	}
}

func TestAntiJoin(t *testing.T) {
	m := clicksModule()
	data := map[string][]Row{
		"clicks": {{S("a1"), S("c1"), I(3)}, {S("a2"), S("c2"), I(5)}},
		"ads":    {{S("a1"), S("alice")}},
	}
	got := evalExpr(t, m, data, AntiJoin(Scan("clicks"), Scan("ads"), [2]string{"id", "id"}))
	want := []Row{{S("a2"), S("c2"), I(5)}}
	if !RowsEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestGroupByCountAndHaving(t *testing.T) {
	m := clicksModule()
	data := map[string][]Row{"clicks": {
		{S("a1"), S("c1"), I(1)},
		{S("a1"), S("c1"), I(2)},
		{S("a2"), S("c2"), I(3)},
	}}
	got := evalExpr(t, m, data,
		GroupBy(Scan("clicks"), []string{"id"}, Agg{Func: Count, As: "cnt"}).
			WithHaving(Where("cnt", GE, I(2))))
	want := []Row{{S("a1"), I(2)}}
	if !RowsEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestGroupBySumMinMax(t *testing.T) {
	m := clicksModule()
	data := map[string][]Row{"clicks": {
		{S("a1"), S("c1"), I(1)},
		{S("a1"), S("c2"), I(5)},
		{S("a2"), S("c3"), I(7)},
	}}
	got := evalExpr(t, m, data, GroupBy(Scan("clicks"), []string{"id"},
		Agg{Func: Sum, Col: "n", As: "total"},
		Agg{Func: Min, Col: "n", As: "lo"},
		Agg{Func: Max, Col: "n", As: "hi"},
	))
	want := []Row{
		{S("a1"), I(6), I(1), I(5)},
		{S("a2"), I(7), I(7), I(7)},
	}
	if !RowsEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestMonotoneThreshold(t *testing.T) {
	m := clicksModule()
	data := map[string][]Row{"clicks": {
		{S("a1"), S("c1"), I(1)},
		{S("a1"), S("c2"), I(2)},
		{S("a2"), S("c3"), I(3)},
	}}
	got := evalExpr(t, m, data, MonotoneCountAtLeast(Scan("clicks"), []string{"id"}, 2))
	want := []Row{{S("a1")}}
	if !RowsEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestSchemaErrors(t *testing.T) {
	m := clicksModule()
	cases := []Expr{
		Scan("nope"),
		Project(Scan("clicks"), Col("nope")),
		GroupBy(Scan("clicks"), []string{"nope"}),
		MonotoneCountAtLeast(Scan("clicks"), []string{"nope"}, 1),
		Join(Scan("clicks"), Scan("ads"), [2]string{"nope", "id"}),
	}
	for i, e := range cases {
		if _, err := e.Schema(m); err == nil {
			t.Errorf("case %d: want schema error", i)
		}
	}
}

func TestValueHelpers(t *testing.T) {
	if v, ok := AsInt(I(7)); !ok || v != 7 {
		t.Error("AsInt(int64) failed")
	}
	if v, ok := AsInt(S("42")); !ok || v != 42 {
		t.Error("AsInt(numeric string) failed")
	}
	if _, ok := AsInt(S("x")); ok {
		t.Error("AsInt of non-numeric must fail")
	}
	if AsString(I(5)) != "5" || AsString(S("a")) != "a" {
		t.Error("AsString failed")
	}
	if compareVals(I(1), I(2)) >= 0 || compareVals(S("b"), S("a")) <= 0 || compareVals(I(1), S("a")) >= 0 {
		t.Error("compareVals ordering wrong")
	}
}

func TestRowKeyDistinguishesTypes(t *testing.T) {
	a := Row{I(1)}
	b := Row{S("1")}
	if a.key() == b.key() {
		t.Error("int 1 and string \"1\" must have distinct keys")
	}
}
