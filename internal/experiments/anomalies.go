package experiments

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"

	"blazes/internal/coord"
	"blazes/internal/sim"
)

// This file makes Figure 5 empirically observable: a two-producer,
// two-replica component is run under every combination of component
// property (confluent / convergent / order-sensitive) and delivery
// mechanism (none / M1 sequencing / M2 dynamic ordering / M3 sealing), and
// the three anomaly classes are detected by comparing outputs across
// replicas (Inst), across runs (Run), and final states across replicas
// (Diverge).

// Property is the component property axis of Figure 5.
type Property int

// Component properties (P1, P2, and the unconstrained order-sensitive
// case).
const (
	Confluent Property = iota
	Convergent
	OrderSensitive
)

// String names the property.
func (p Property) String() string {
	switch p {
	case Confluent:
		return "confluent (P1)"
	case Convergent:
		return "convergent (P2)"
	default:
		return "order-sensitive"
	}
}

// Mechanism is the delivery-mechanism axis of Figure 5.
type Mechanism int

// Delivery mechanisms.
const (
	MechNone Mechanism = iota
	MechSequenced
	MechDynamic
	MechSealed
)

// String names the mechanism.
func (m Mechanism) String() string {
	switch m {
	case MechNone:
		return "none"
	case MechSequenced:
		return "sequencing (M1)"
	case MechDynamic:
		return "dynamic order (M2)"
	default:
		return "sealing (M3)"
	}
}

// Anomalies records which anomaly classes were observed for one cell.
type Anomalies struct {
	Run     bool // cross-run nondeterminism
	Inst    bool // cross-instance nondeterminism
	Diverge bool // replica divergence
}

func (a Anomalies) String() string {
	mark := func(b bool) string {
		if b {
			return "X"
		}
		return "-"
	}
	return fmt.Sprintf("Run:%s Inst:%s Div:%s", mark(a.Run), mark(a.Inst), mark(a.Diverge))
}

// testMsg is one producer message; Stamp is a predetermined logical
// timestamp making the convergent (LWW) register's final state
// run-independent.
type testMsg struct {
	Producer string
	Seq      int
	Stamp    int
}

func (m testMsg) value() string { return fmt.Sprintf("%s:%d", m.Producer, m.Seq) }

// replicaState is one replica of the component under test.
type replicaState struct {
	prop Property
	// confluent: a grow-only set.
	set map[string]bool
	// convergent: last-writer-wins register.
	regStamp int
	regVal   string
	// order-sensitive: per-partition arrival-order hash chains.
	chains map[string]uint64
	// outputs is the emitted read-response trace.
	outputs []string
}

func newReplicaState(p Property) *replicaState {
	return &replicaState{prop: p, set: map[string]bool{}, chains: map[string]uint64{}}
}

func (r *replicaState) apply(m testMsg) {
	switch r.prop {
	case Confluent:
		r.set[m.value()] = true
	case Convergent:
		if m.Stamp > r.regStamp {
			r.regStamp, r.regVal = m.Stamp, m.value()
		}
	case OrderSensitive:
		r.chains[m.Producer] = chainHash(r.chains[m.Producer], m.value())
	}
}

func (r *replicaState) read() {
	r.outputs = append(r.outputs, r.snapshot())
}

func (r *replicaState) snapshot() string {
	switch r.prop {
	case Confluent:
		var vals []string
		for v := range r.set {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		return strings.Join(vals, ",")
	case Convergent:
		return r.regVal
	default:
		var parts []string
		keys := make([]string, 0, len(r.chains))
		for k := range r.chains {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%x", k, r.chains[k]))
		}
		return strings.Join(parts, " ")
	}
}

// final returns the component's terminal state digest.
func (r *replicaState) final() string { return r.snapshot() }

// trace returns the comparable output stream. Confluent components are
// compared on their eventual output set only (transient subsets are the
// benign Async behaviour, not an anomaly).
func (r *replicaState) trace() []string {
	if r.prop == Confluent {
		return []string{r.final()}
	}
	return append(append([]string{}, r.outputs...), r.final())
}

func chainHash(prev uint64, v string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%x|%s", prev, v)
	return h.Sum64()
}

// cellRun executes one (property, mechanism) cell for one seed and returns
// each replica's trace and final state.
func cellRun(seed int64, prop Property, mech Mechanism) (traces [2][]string, finals [2]string) {
	const producers = 2
	const perProducer = 10
	const reads = 4
	span := 100 * sim.Millisecond

	s := sim.New(seed)
	reps := [2]*replicaState{newReplicaState(prop), newReplicaState(prop)}

	var msgs []testMsg
	for p := 0; p < producers; p++ {
		for i := 0; i < perProducer; i++ {
			msgs = append(msgs, testMsg{
				Producer: fmt.Sprintf("p%d", p),
				Seq:      i,
				Stamp:    i*producers + p + 1,
			})
		}
	}
	sendTime := func(m testMsg) sim.Time {
		return span * sim.Time(m.Seq*producers) / sim.Time(len(msgs))
	}
	jitter := func() sim.Time { return sim.Time(s.Rand().Int63n(int64(20 * sim.Millisecond))) }
	readTimes := make([]sim.Time, reads)
	for i := range readTimes {
		readTimes[i] = span * sim.Time(i+1) / sim.Time(reads+1)
	}

	switch mech {
	case MechNone:
		for _, m := range msgs {
			m := m
			for _, r := range reps {
				r := r
				s.At(sendTime(m)+jitter(), func() { r.apply(m) })
			}
		}
		for _, t := range readTimes {
			for _, r := range reps {
				r := r
				s.At(t+jitter(), func() { r.read() })
			}
		}

	case MechSequenced:
		// M1: a preordained total order — messages by global index, with
		// reads interleaved at fixed positions. Fully deterministic.
		type step struct {
			msg  *testMsg
			read bool
		}
		var order []step
		for i, m := range msgs {
			m := m
			order = append(order, step{msg: &m})
			if (i+1)%(len(msgs)/(reads+1)+1) == 0 {
				order = append(order, step{read: true})
			}
		}
		order = append(order, step{read: true})
		at := sim.Time(0)
		for _, st := range order {
			st := st
			at += sim.Millisecond
			s.At(at, func() {
				for _, r := range reps {
					if st.read {
						r.read()
					} else {
						r.apply(*st.msg)
					}
				}
			})
		}

	case MechDynamic:
		// M2: the ordering service decides per-run arrival order; reads
		// are sequenced too, so replicas agree within the run.
		cfg := coord.DefaultSequencer
		cfg.SubmitDelay.MaxDelay = 20 * sim.Millisecond
		seq := coord.NewSequencer(s, cfg)
		for _, r := range reps {
			r := r
			seq.Subscribe(func(m coord.Sequenced) {
				switch v := m.Msg.(type) {
				case testMsg:
					r.apply(v)
				case string:
					r.read()
				}
			})
		}
		for _, m := range msgs {
			m := m
			s.At(sendTime(m), func() { seq.Submit(m) })
		}
		for i, t := range readTimes {
			i := i
			s.At(t, func() { seq.Submit(fmt.Sprintf("read%d", i)) })
		}

	case MechSealed:
		// M3: per-producer partitions; the component buffers each
		// partition until sealed, then folds it in canonical order.
		// Reads wait until every partition has sealed.
		for ri := range reps {
			r := reps[ri]
			tracker := coord.NewSealTracker(func(partition string, buffered []any) {
				var vals []testMsg
				for _, b := range buffered {
					vals = append(vals, b.(testMsg))
				}
				sort.Slice(vals, func(i, j int) bool { return vals[i].Seq < vals[j].Seq })
				for _, m := range vals {
					r.apply(m)
				}
			})
			for p := 0; p < producers; p++ {
				tracker.SetExpected(fmt.Sprintf("p%d", p), []string{fmt.Sprintf("p%d", p)})
			}
			// Data arrives with jitter bounded by 20ms; the producer's
			// punctuation follows its stream (FIFO contract), so seals
			// are delivered strictly after every possible data arrival.
			for _, m := range msgs {
				m := m
				s.At(sendTime(m)+jitter(), func() { tracker.Data(m.Producer, m) })
			}
			sealFloor := span + 25*sim.Millisecond
			for p := 0; p < producers; p++ {
				p := p
				s.At(sealFloor+jitter(), func() {
					tracker.Seal(coord.Punctuation{Partition: fmt.Sprintf("p%d", p), Producer: fmt.Sprintf("p%d", p)})
				})
			}
			// Reads are held until every partition has sealed (the
			// component's gate spans all partitions), i.e. strictly after
			// the last possible seal arrival.
			for range readTimes {
				s.At(sealFloor+30*sim.Millisecond, func() { r.read() })
			}
		}
	}

	s.Run()
	for i, r := range reps {
		traces[i] = r.trace()
		finals[i] = r.final()
	}
	return traces, finals
}

// Cell identifies one matrix cell.
type Cell struct {
	Prop Property
	Mech Mechanism
}

// Fig5Matrix runs every cell across the given seeds and reports the
// anomalies observed.
func Fig5Matrix(seeds int) map[Cell]Anomalies {
	out := map[Cell]Anomalies{}
	for _, prop := range []Property{Confluent, Convergent, OrderSensitive} {
		for _, mech := range []Mechanism{MechNone, MechSequenced, MechDynamic, MechSealed} {
			var a Anomalies
			var baseTrace []string
			var baseFinal string
			for seed := int64(1); seed <= int64(seeds); seed++ {
				traces, finals := cellRun(seed, prop, mech)
				if !equalTraces(traces[0], traces[1]) {
					a.Inst = true
				}
				if finals[0] != finals[1] {
					a.Diverge = true
				}
				if seed == 1 {
					baseTrace, baseFinal = traces[0], finals[0]
				} else if !equalTraces(baseTrace, traces[0]) || baseFinal != finals[0] {
					a.Run = true
				}
			}
			out[Cell{prop, mech}] = a
		}
	}
	return out
}

func equalTraces(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PrintFig5 renders the observed matrix next to Figure 5's predictions.
func PrintFig5(w io.Writer, m map[Cell]Anomalies) {
	fmt.Fprintln(w, "Figure 5: observed anomalies by component property × delivery mechanism")
	fmt.Fprintf(w, "%-18s %-20s %s\n", "property", "mechanism", "anomalies observed")
	for _, prop := range []Property{Confluent, Convergent, OrderSensitive} {
		for _, mech := range []Mechanism{MechNone, MechSequenced, MechDynamic, MechSealed} {
			fmt.Fprintf(w, "%-18s %-20s %s\n", prop, mech, m[Cell{prop, mech}])
		}
	}
}
