package bloom

import (
	"fmt"
	"sort"
)

// Kind classifies a collection's persistence and visibility semantics
// (Bloom's collection types).
type Kind int

const (
	// Table is persistent state: contents survive across timesteps.
	Table Kind = iota
	// Scratch is transient: recomputed from rules each timestep, empty at
	// the start of every tick.
	Scratch
	// Channel is an asynchronous network collection: tuples inserted via
	// <~ are sent to the network and appear at the destination in some
	// later timestep, in nondeterministic order.
	Channel
	// Input is a module input interface (transient, like a scratch).
	Input
	// Output is a module output interface (transient).
	Output
)

// String names the kind as in Bloom.
func (k Kind) String() string {
	switch k {
	case Table:
		return "table"
	case Scratch:
		return "scratch"
	case Channel:
		return "channel"
	case Input:
		return "input"
	case Output:
		return "output"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Persistent reports whether contents survive the timestep.
func (k Kind) Persistent() bool { return k == Table }

// Transient reports whether the collection empties each timestep.
func (k Kind) Transient() bool { return !k.Persistent() }

// Schema is the ordered column names of a collection.
type Schema []string

// IndexOf returns the position of col, or -1.
func (s Schema) IndexOf(col string) int {
	for i, c := range s {
		if c == col {
			return i
		}
	}
	return -1
}

// Contains reports whether col is in the schema.
func (s Schema) Contains(col string) bool { return s.IndexOf(col) >= 0 }

// Collection declares one named collection.
type Collection struct {
	Name   string
	Kind   Kind
	Schema Schema
}

// store is the runtime contents of a collection: a set of rows.
type store struct {
	rows map[string]Row
}

func newStore() *store { return &store{rows: map[string]Row{}} }

// insert adds a row; reports whether it was new.
func (s *store) insert(r Row) bool {
	k := r.key()
	if _, ok := s.rows[k]; ok {
		return false
	}
	s.rows[k] = r.clone()
	return true
}

// remove deletes a row; reports whether it was present.
func (s *store) remove(r Row) bool {
	k := r.key()
	if _, ok := s.rows[k]; !ok {
		return false
	}
	delete(s.rows, k)
	return true
}

// contains reports membership.
func (s *store) contains(r Row) bool {
	_, ok := s.rows[r.key()]
	return ok
}

// snapshot returns the rows in canonical order.
func (s *store) snapshot() []Row {
	keys := make([]string, 0, len(s.rows))
	for k := range s.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Row, len(keys))
	for i, k := range keys {
		out[i] = s.rows[k].clone()
	}
	return out
}

// size reports the number of rows.
func (s *store) size() int { return len(s.rows) }

// clear empties the store.
func (s *store) clear() { s.rows = map[string]Row{} }
