// The verify subcommand: schedule-exploration verification of the Blazes
// guarantee over the built-in workloads.
//
// Usage:
//
//	blazes verify [-workload name]... [-seeds n] [-parallel n] [-sequencing] [-json]
//
// Flags:
//
//	-workload name    verify one named workload (repeatable; default all).
//	                  Names: wordcount-storm, bloom-report-THRESH,
//	                  bloom-report-POOR, bloom-report-CAMPAIGN,
//	                  adtrack-network, synthetic-set,
//	                  synthetic-chains-gated, synthetic-chains
//	-seeds n          schedules explored per (mechanism, fault plan)
//	                  configuration (default 64)
//	-parallel n       worker count for exploring schedules concurrently;
//	                  reports are byte-identical at any setting (0 = one
//	                  worker per CPU, 1 = sequential)
//	-sequencing       prefer M1 sequencing over M2 dynamic ordering
//	-json             emit the reports as a JSON array
//
// Exit codes follow the command's contract: 0 when every verified workload
// upholds the guarantee, 1 on a violation or error, 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"strings"

	"blazes/verify"
)

func runVerify(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blazes verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seeds      = fs.Int("seeds", verify.DefaultSeeds, "schedules per (mechanism, plan) configuration")
		parallel   = fs.Int("parallel", 0, "schedule-sweep workers (0 = one per CPU, 1 = sequential; reports are byte-identical at any setting)")
		sequencing = fs.Bool("sequencing", false, "prefer M1 sequencing when ordering is needed")
		jsonOut    = fs.Bool("json", false, "emit reports as a JSON array")
		workloads  multiFlag
	)
	fs.Var(&workloads, "workload", "workload name (repeatable; default: the full suite)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: blazes verify [-workload name]... [-seeds n] [-parallel n] [-sequencing] [-json]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nworkloads: %s\n", strings.Join(workloadNames(), ", "))
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return exitOK
		}
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "blazes: verify: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		fs.Usage()
		return exitUsage
	}
	if *seeds <= 0 {
		fmt.Fprintf(stderr, "blazes: verify: -seeds must be positive\n")
		fs.Usage()
		return exitUsage
	}
	if *parallel < 0 {
		fmt.Fprintf(stderr, "blazes: verify: -parallel must be non-negative\n")
		fs.Usage()
		return exitUsage
	}

	suite := verify.Workloads()
	selected := suite
	if len(workloads) > 0 {
		byName := map[string]verify.Workload{}
		for _, w := range suite {
			byName[w.Name()] = w
		}
		selected = nil
		for _, name := range workloads {
			w, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "blazes: verify: unknown workload %q (workloads: %s)\n",
					name, strings.Join(workloadNames(), ", "))
				fs.Usage()
				return exitUsage
			}
			selected = append(selected, w)
		}
	}

	parallelism := *parallel
	if parallelism == 0 {
		parallelism = -1 // one worker per CPU
	}
	opts := verify.Options{Seeds: *seeds, PreferSequencing: *sequencing, Parallelism: parallelism}
	var reports []*verify.Report
	holds := true
	for _, w := range selected {
		rep, err := verify.CheckContext(ctx, w, opts)
		if err != nil {
			fmt.Fprintln(stderr, "blazes: verify:", err)
			return exitError
		}
		reports = append(reports, rep)
		holds = holds && rep.Holds
		if !*jsonOut {
			fmt.Fprint(stdout, rep.Summary())
		}
	}
	if *jsonOut {
		out, err := verify.MarshalReports(reports)
		if err != nil {
			fmt.Fprintln(stderr, "blazes: verify:", err)
			return exitError
		}
		fmt.Fprintln(stdout, string(out))
	}
	if !holds {
		fmt.Fprintln(stderr, "blazes: verify: guarantee violated")
		return exitError
	}
	return exitOK
}

func workloadNames() []string {
	var names []string
	for _, w := range verify.Workloads() {
		names = append(names, w.Name())
	}
	return names
}
