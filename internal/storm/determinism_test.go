package storm

import (
	"fmt"
	"strings"
	"testing"

	"blazes/internal/sim"
)

// engineTrace runs a two-stage topology under a chaotic link configuration
// and renders everything observable — every tuple each instance saw in
// arrival order, the batches finished, and the engine metrics — as one
// string.
func engineTrace(seed int64, mode CommitMode) string {
	s := sim.New(seed)
	cfg := DefaultConfig()
	cfg.Link = sim.LinkConfig{
		MinDelay:   100 * sim.Microsecond,
		MaxDelay:   6 * sim.Millisecond,
		DupProb:    0.2,
		Partitions: []sim.PartitionWindow{{From: 5 * sim.Millisecond, Until: 20 * sim.Millisecond}},
	}

	var bolts []*collectorBolt
	var commits []*collectorBolt
	tp := NewTopology(s, cfg, mode)
	tp.SetSpout("src", staticSpout{batches: 3, tuplesPer: 5}, 2)
	tp.AddBolt("mid", func(int) Bolt {
		c := &collectorBolt{}
		bolts = append(bolts, c)
		return c
	}, 2, ShuffleGrouping{}, "src")
	tp.AddCommitter("sink", func(int) Bolt {
		c := &collectorBolt{}
		commits = append(commits, c)
		return c
	}, 2, FieldsGrouping{Fields: []int{0}}, "mid")
	if err := tp.Start(); err != nil {
		return "start error: " + err.Error()
	}
	s.Run()

	var b strings.Builder
	dump := func(label string, cs []*collectorBolt) {
		for i, c := range cs {
			fmt.Fprintf(&b, "%s[%d]:", label, i)
			for _, tu := range c.got {
				fmt.Fprintf(&b, " %d/%v", tu.Batch, tu.Values)
			}
			fmt.Fprintf(&b, " finished=%v\n", c.finished)
		}
	}
	dump("mid", bolts)
	dump("sink", commits)
	fmt.Fprintf(&b, "metrics=%+v done=%v now=%d\n", tp.Metrics(), tp.Done(), s.Now())
	return b.String()
}

// TestEngineDeterminismRegression pins the documented contract for the
// Storm engine: the same (seed, config) pair yields byte-identical tuple
// deliveries, batch completions, and metrics, in both commit modes and
// under duplication and partition faults.
func TestEngineDeterminismRegression(t *testing.T) {
	for _, mode := range []CommitMode{CommitSealed, CommitTransactional} {
		for seed := int64(1); seed <= 3; seed++ {
			a, b := engineTrace(seed, mode), engineTrace(seed, mode)
			if a != b {
				t.Fatalf("mode %s seed %d: engine traces differ:\n--- first\n%s--- second\n%s", mode, seed, a, b)
			}
		}
	}
}

// TestEngineSeedsActuallyDiffer: different seeds must produce different
// delivery schedules.
func TestEngineSeedsActuallyDiffer(t *testing.T) {
	base := engineTrace(1, CommitSealed)
	for seed := int64(2); seed <= 4; seed++ {
		if engineTrace(seed, CommitSealed) != base {
			return
		}
	}
	t.Error("seeds 1–4 produced identical engine traces")
}
