// The verify subcommand: schedule-exploration verification of the Blazes
// guarantee over the built-in workloads — locally, or distributed across
// sweep-worker processes via a coordinator.
//
// Usage:
//
//	blazes verify [-workload name]... [-seeds n] [-parallel n] [-sequencing] [-json]
//	blazes verify -shrink dir [...]          also write 1-minimal traces
//	blazes verify -coordinator URL [...]     distribute via blazes serve
//	blazes verify -replay trace.json         re-execute a shrunk trace
//
// Flags:
//
//	-workload name    verify one named workload (repeatable; default all).
//	                  Names: wordcount-storm, bloom-report-THRESH,
//	                  bloom-report-POOR, bloom-report-CAMPAIGN,
//	                  adtrack-network, synthetic-set,
//	                  synthetic-chains-gated, synthetic-chains, plus
//	                  generated topologies as generated-<n>c-s<seed>
//	-seeds n          schedules explored per (mechanism, fault plan)
//	                  configuration (default 64)
//	-parallel n       worker count for exploring schedules concurrently;
//	                  reports are byte-identical at any setting (0 = one
//	                  worker per CPU, 1 = sequential)
//	-sequencing       prefer M1 sequencing over M2 dynamic ordering
//	-json             emit the reports as a JSON array
//	-shrink dir       delta-debug every anomalous cell to a 1-minimal
//	                  replayable trace artifact written into dir
//	-coordinator URL  submit the sweep to a `blazes serve` coordinator and
//	                  poll until worker processes finish it; the merged
//	                  report is byte-identical to a local run
//	-replay file      re-execute a trace artifact and check it reproduces
//	                  its recorded anomaly classification
//
// Exit codes follow the command's contract: 0 when every verified workload
// upholds the guarantee (or the replayed trace reproduces), 1 on a
// violation, a non-reproducing trace, or an error, 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"blazes/service"
	"blazes/verify"
)

func runVerify(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blazes verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seeds       = fs.Int("seeds", verify.DefaultSeeds, "schedules per (mechanism, plan) configuration")
		parallel    = fs.Int("parallel", 0, "schedule-sweep workers (0 = one per CPU, 1 = sequential; reports are byte-identical at any setting)")
		sequencing  = fs.Bool("sequencing", false, "prefer M1 sequencing when ordering is needed")
		jsonOut     = fs.Bool("json", false, "emit reports as a JSON array")
		shrinkDir   = fs.String("shrink", "", "write 1-minimal replayable traces for anomalous cells into this directory")
		coordinator = fs.String("coordinator", "", "distribute the sweep via this coordinator URL (blazes serve)")
		batch       = fs.Int("batch", 0, "seeds per claimable batch in coordinator mode (0 = coordinator default)")
		replayPath  = fs.String("replay", "", "replay a shrunk trace artifact (exclusive with the sweep flags)")
		workloads   multiFlag
	)
	fs.Var(&workloads, "workload", "workload name (repeatable; default: the full suite)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: blazes verify [-workload name]... [-seeds n] [-parallel n] [-sequencing] [-json]\n"+
			"       blazes verify -shrink dir | -coordinator URL | -replay trace.json\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nworkloads: %s, generated-<n>c-s<seed>\n", strings.Join(workloadNames(), ", "))
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return exitOK
		}
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "blazes: verify: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		fs.Usage()
		return exitUsage
	}
	if *replayPath != "" {
		if len(workloads) > 0 || *shrinkDir != "" || *coordinator != "" {
			fmt.Fprintf(stderr, "blazes: verify: -replay cannot be combined with sweep flags\n")
			fs.Usage()
			return exitUsage
		}
		return runReplay(ctx, *replayPath, *jsonOut, stdout, stderr)
	}
	if *seeds <= 0 {
		fmt.Fprintf(stderr, "blazes: verify: -seeds must be positive\n")
		fs.Usage()
		return exitUsage
	}
	if *parallel < 0 {
		fmt.Fprintf(stderr, "blazes: verify: -parallel must be non-negative\n")
		fs.Usage()
		return exitUsage
	}

	selected := verify.Workloads()
	if len(workloads) > 0 {
		selected = nil
		for _, name := range workloads {
			w, err := verify.LookupWorkload(name)
			if err != nil {
				fmt.Fprintln(stderr, "blazes: verify:", err)
				fs.Usage()
				return exitUsage
			}
			selected = append(selected, w)
		}
	}
	if *shrinkDir != "" {
		if err := os.MkdirAll(*shrinkDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "blazes: verify:", err)
			return exitError
		}
	}
	if *batch < 0 {
		fmt.Fprintf(stderr, "blazes: verify: -batch must be non-negative\n")
		fs.Usage()
		return exitUsage
	}
	if *coordinator != "" {
		return runCoordinated(ctx, *coordinator, workloads, *seeds, *batch, *sequencing, *shrinkDir, *jsonOut, stdout, stderr)
	}

	parallelism := *parallel
	if parallelism == 0 {
		parallelism = -1 // one worker per CPU
	}
	opts := verify.Options{Seeds: *seeds, PreferSequencing: *sequencing, Parallelism: parallelism}
	var reports []*verify.Report
	holds := true
	for _, w := range selected {
		var (
			rep    *verify.Report
			traces []*verify.Trace
			err    error
		)
		if *shrinkDir != "" {
			rep, traces, err = verify.CheckShrink(ctx, w, opts)
		} else {
			rep, err = verify.CheckContext(ctx, w, opts)
		}
		if err != nil {
			fmt.Fprintln(stderr, "blazes: verify:", err)
			return exitError
		}
		if err := writeTraces(*shrinkDir, traces, stderr); err != nil {
			fmt.Fprintln(stderr, "blazes: verify:", err)
			return exitError
		}
		reports = append(reports, rep)
		holds = holds && rep.Holds
		if !*jsonOut {
			fmt.Fprint(stdout, rep.Summary())
		}
	}
	if *jsonOut {
		out, err := verify.MarshalReports(reports)
		if err != nil {
			fmt.Fprintln(stderr, "blazes: verify:", err)
			return exitError
		}
		fmt.Fprintln(stdout, string(out))
	}
	if !holds {
		fmt.Fprintln(stderr, "blazes: verify: guarantee violated")
		return exitError
	}
	return exitOK
}

// runReplay re-executes a shrunk trace artifact: exit 0 when the recorded
// Run/Inst/Diverge classification reproduces, 1 when it does not.
func runReplay(ctx context.Context, path string, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "blazes: verify:", err)
		return exitError
	}
	tr, err := verify.DecodeTrace(data)
	if err != nil {
		fmt.Fprintln(stderr, "blazes: verify:", err)
		return exitError
	}
	res, err := verify.Replay(ctx, tr)
	if err != nil {
		fmt.Fprintln(stderr, "blazes: verify: replay:", err)
		return exitError
	}
	if jsonOut {
		out, err := verify.MarshalReplay(res)
		if err != nil {
			fmt.Fprintln(stderr, "blazes: verify:", err)
			return exitError
		}
		fmt.Fprintln(stdout, string(out))
	} else {
		fmt.Fprintf(stdout, "trace: %s under %s/%s, %d seed(s), %d event(s), %d shrink step(s)\n",
			tr.Workload, tr.Mechanism, tr.Plan.Name, len(tr.Seeds), len(tr.Events), tr.Steps)
		fmt.Fprintf(stdout, "expected [%s] observed [%s]\n", res.Expected, res.Observed)
		if res.Detail != "" {
			fmt.Fprintf(stdout, "detail: %s\n", res.Detail)
		}
	}
	if !res.Reproduced {
		fmt.Fprintln(stderr, "blazes: verify: trace did not reproduce its recorded anomalies")
		return exitError
	}
	if !jsonOut {
		fmt.Fprintln(stdout, "reproduced")
	}
	return exitOK
}

// runCoordinated submits the sweep to a coordinator, streams progress to
// stderr while worker processes drain it, and renders the merged result
// exactly like a local run.
func runCoordinated(ctx context.Context, coordinator string, workloads []string, seeds, batch int, sequencing bool, shrinkDir string, jsonOut bool, stdout, stderr io.Writer) int {
	base := strings.TrimRight(coordinator, "/")
	var st service.SweepStatus
	err := postJSON(ctx, base+"/v1/sweeps", service.SweepSubmitRequest{
		Workloads:  workloads,
		Seeds:      seeds,
		Sequencing: sequencing,
		Shrink:     shrinkDir != "",
		BatchSize:  batch,
	}, &st)
	if err != nil {
		fmt.Fprintln(stderr, "blazes: verify:", err)
		return exitError
	}
	fmt.Fprintf(stderr, "sweep %s: %d cells, %d batches, %d seeds — waiting for workers\n",
		st.Sweep, st.Cells, st.Batches, st.SeedsTotal)

	lastDone := -1
	for st.State != "complete" {
		sleepCtx(ctx, 300*time.Millisecond)
		if ctx.Err() != nil {
			fmt.Fprintln(stderr, "blazes: verify:", ctx.Err())
			return exitError
		}
		if err := getJSON(ctx, base+"/v1/sweeps/"+st.Sweep, &st); err != nil {
			fmt.Fprintln(stderr, "blazes: verify:", err)
			return exitError
		}
		if st.SeedsDone != lastDone || st.State == "shrinking" {
			lastDone = st.SeedsDone
			fmt.Fprintf(stderr, "sweep %s: %s %d/%d seeds\n", st.Sweep, st.State, st.SeedsDone, st.SeedsTotal)
		}
	}
	if st.Error != "" {
		fmt.Fprintf(stderr, "blazes: verify: sweep %s failed: %s\n", st.Sweep, st.Error)
		return exitError
	}
	for _, msg := range st.ShrinkErrors {
		fmt.Fprintf(stderr, "blazes: verify: shrink: %s\n", msg)
	}
	if err := writeTraces(shrinkDir, st.Traces, stderr); err != nil {
		fmt.Fprintln(stderr, "blazes: verify:", err)
		return exitError
	}
	if jsonOut {
		out, err := verify.MarshalReports(st.Reports)
		if err != nil {
			fmt.Fprintln(stderr, "blazes: verify:", err)
			return exitError
		}
		fmt.Fprintln(stdout, string(out))
	} else {
		for _, rep := range st.Reports {
			fmt.Fprint(stdout, rep.Summary())
		}
	}
	if st.Holds == nil || !*st.Holds {
		fmt.Fprintln(stderr, "blazes: verify: guarantee violated")
		return exitError
	}
	return exitOK
}

// writeTraces persists shrunk traces as self-contained artifacts named
// <workload>-<mechanism>-<plan>.json.
func writeTraces(dir string, traces []*verify.Trace, stderr io.Writer) error {
	if dir == "" {
		return nil
	}
	for _, tr := range traces {
		data, err := tr.Encode()
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("%s-%s-%s.json", slug(tr.Workload), slug(tr.Mechanism), slug(tr.Plan.Name)))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "shrunk trace: %s (%d seed(s), %d event(s), %d step(s))\n",
			path, len(tr.Seeds), len(tr.Events), tr.Steps)
	}
	return nil
}

// slug renders a name ("sequencing (M1)") filesystem-safe
// ("sequencing-m1").
func slug(s string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}

func workloadNames() []string {
	var names []string
	for _, w := range verify.Workloads() {
		names = append(names, w.Name())
	}
	return names
}
