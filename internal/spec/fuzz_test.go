package spec

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseSpec fuzzes the hand-written YAML-subset parser with two
// properties:
//
//  1. it never panics, whatever the input;
//  2. valid inputs round-trip: a document that parses is rendered back to
//     text by the test-only renderer below and re-parses to a deeply equal
//     document (and, when it forms a valid Config, to an equal Config).
//
// The seed corpus under testdata/fuzz/FuzzParseSpec is augmented with the
// real configuration files shipped in testdata/.
func FuzzParseSpec(f *testing.F) {
	for _, name := range []string{"wordcount.blazes", "adreport.blazes"} {
		src, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("a: 1\nb:\n  - x\n  - {k: v, l: [1, 2]}\n")
	f.Add("key: 'quoted # not comment'\nother: \"true\"\n")
	f.Add("nested:\n  deep:\n    deeper: [a,\n      b]\n")

	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseDocument(src)
		if err != nil {
			return
		}
		rendered, ok := renderDocument(doc)
		if !ok {
			// The document contains scalars the plain renderer cannot
			// express unambiguously (e.g. strings holding both quote
			// kinds); round-tripping is not claimed for those.
			return
		}
		back, err := ParseDocument(rendered)
		if err != nil {
			t.Fatalf("rendered document no longer parses: %v\ninput: %q\nrendered: %q", err, src, rendered)
		}
		if !reflect.DeepEqual(doc, back) {
			t.Fatalf("document round trip mismatch\ninput: %q\nrendered: %q\n got: %#v\nwant: %#v",
				src, rendered, back, doc)
		}
		// When the document is a valid Blazes config, the config itself
		// must round-trip too.
		cfg, err := Parse(src)
		if err != nil {
			return
		}
		cfg2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered config no longer parses: %v\nrendered: %q", err, rendered)
		}
		if !reflect.DeepEqual(cfg, cfg2) {
			t.Fatalf("config round trip mismatch\ninput: %q\nrendered: %q", src, rendered)
		}
	})
}

// renderDocument renders a parsed document back to the YAML subset. It
// reports false when a scalar cannot be rendered unambiguously.
func renderDocument(m *Map) (string, bool) {
	var b strings.Builder
	if ok := renderMap(&b, m, 0); !ok {
		return "", false
	}
	return b.String(), true
}

func renderMap(b *strings.Builder, m *Map, indent int) bool {
	for _, key := range m.Keys() {
		v, _ := m.Get(key)
		if !renderableKey(key) {
			return false
		}
		pad := strings.Repeat(" ", indent)
		switch val := v.(type) {
		case *Map:
			fmt.Fprintf(b, "%s%s:\n", pad, key)
			if val.Len() == 0 {
				// An empty nested map renders as an empty scalar, which
				// re-parses as "": only equal when it was one already.
				return false
			}
			if !renderMap(b, val, indent+2) {
				return false
			}
		case []Value:
			if len(val) == 0 {
				// A block list cannot express zero items; the inline
				// form can.
				fmt.Fprintf(b, "%s%s: []\n", pad, key)
				continue
			}
			fmt.Fprintf(b, "%s%s:\n", pad, key)
			for _, item := range val {
				s, ok := renderInline(item)
				if !ok {
					return false
				}
				fmt.Fprintf(b, "%s  - %s\n", pad, s)
			}
		default:
			s, ok := renderScalar(val)
			if !ok {
				return false
			}
			fmt.Fprintf(b, "%s%s: %s\n", pad, key, s)
		}
	}
	return true
}

func renderInline(v Value) (string, bool) {
	switch val := v.(type) {
	case *Map:
		parts := make([]string, 0, val.Len())
		for _, key := range val.Keys() {
			if !renderableKey(key) {
				return "", false
			}
			inner, _ := val.Get(key)
			s, ok := renderInline(inner)
			if !ok {
				return "", false
			}
			parts = append(parts, fmt.Sprintf("%s: %s", key, s))
		}
		return "{" + strings.Join(parts, ", ") + "}", true
	case []Value:
		parts := make([]string, 0, len(val))
		for _, item := range val {
			s, ok := renderInline(item)
			if !ok {
				return "", false
			}
			parts = append(parts, s)
		}
		return "[" + strings.Join(parts, ", ") + "]", true
	default:
		return renderScalar(val)
	}
}

// renderScalar renders a bool or string scalar, quoting strings that would
// otherwise re-parse as something else.
func renderScalar(v Value) (string, bool) {
	switch val := v.(type) {
	case bool:
		if val {
			return "true", true
		}
		return "false", true
	case string:
		if val == "" {
			return "''", true
		}
		plain := val
		needsQuote := false
		switch strings.ToLower(plain) {
		case "true", "yes", "on", "false", "no", "off":
			needsQuote = true
		}
		if strings.ContainsAny(plain, "{}[]'\",#:\n") ||
			strings.TrimSpace(plain) != plain ||
			strings.Contains(plain, "- ") || plain == "-" {
			needsQuote = true
		}
		if !needsQuote {
			return plain, true
		}
		if strings.ContainsRune(plain, '\n') {
			return "", false // no escape syntax in the subset
		}
		if !strings.ContainsRune(plain, '\'') {
			return "'" + plain + "'", true
		}
		if !strings.ContainsRune(plain, '"') {
			return "\"" + plain + "\"", true
		}
		return "", false // holds both quote kinds: unrepresentable
	default:
		return "", false
	}
}

// renderableKey: keys are emitted bare, so they must survive splitKey.
func renderableKey(key string) bool {
	if key == "" || strings.TrimSpace(key) != key {
		return false
	}
	return !strings.ContainsAny(key, ":{}[]'\",#\n-")
}
