package service

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"blazes/internal/journal"
)

// Durability: every session mutation the service acknowledges is first
// made durable as an op record in an append-only journal (the Session
// mutation ops are atomic and eager-validated, so the journal is literally
// the op stream). On boot the server replays snapshot + journal suffix and
// rebuilds each session by re-opening its CreateRequest and re-applying
// its ops — the same code paths the live handlers use, so a recovered
// session is indistinguishable from one that never crashed (its analysis
// history, which is derived state, starts fresh).
//
// Write protocol (the order is the correctness argument):
//
//  1. apply the mutation to the in-memory session (eager validation);
//  2. append the op record and wait for the group-commit fsync;
//  3. acknowledge the request.
//
// A kill -9 can therefore lose only mutations that were never
// acknowledged. The journal append happens inside a snapMu read-lock so a
// concurrent snapshot (which takes the write lock) always sees a state
// that includes every record at or below the snapshot's covering seq.
//
// If a journal append ever fails (disk full, torn mount), the server
// poisons itself into read-only mode instead of serving acknowledgements
// it cannot honor: subsequent writes shed with 503 and /v1/stats reports
// journal_broken.

// journalRecord is the service's journal payload: one acknowledged state
// change. Kind selects the fields, mirroring the HTTP surface:
//
//	create  a session was opened (Create holds the full CreateRequest)
//	mutate  ops were applied to Session, in order
//	delete  the session was closed by a client
//	evict   the LRU bound discarded the session (state moves to tombstone)
type journalRecord struct {
	Kind    string         `json:"kind"`
	Session string         `json:"session"`
	Name    string         `json:"name,omitempty"`
	Create  *CreateRequest `json:"create,omitempty"`
	Ops     []MutateOp     `json:"ops,omitempty"`
}

// snapshotDoc is the snapshot payload: the full state needed to rebuild
// the server without any journal suffix. Sessions carry their op streams
// rather than serialized graphs so snapshot recovery and journal replay
// share one rebuild path.
type snapshotDoc struct {
	NextID   int               `json:"next_id"`
	Sessions []sessionSnapshot `json:"sessions"`
	Evicted  []Tombstone       `json:"evicted,omitempty"`
}

type sessionSnapshot struct {
	ID     string        `json:"id"`
	Name   string        `json:"name"`
	Create CreateRequest `json:"create"`
	Ops    []MutateOp    `json:"ops,omitempty"`
}

// Tombstone records a session that no longer occupies memory — evicted by
// the LRU bound, or unrecoverable after a replay error — so list/get
// responses can report what happened to it instead of a bare 404.
type Tombstone struct {
	Session string `json:"session"`
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	// State is "evicted" or "unrecoverable".
	State string `json:"state"`
}

// maxTombstones bounds the retained eviction/recovery history (FIFO).
const maxTombstones = 1024

// appendRecord journals one record and blocks until it is durable. The
// caller holds s.snapMu.RLock (see the write protocol above). A failure
// poisons the server read-only and is returned for the 500 response.
func (s *Server) appendRecord(rec journalRecord) error {
	if s.jrn == nil {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("encoding journal record: %w", err)
	}
	if _, err := s.jrn.Append(payload); err != nil {
		s.journalBroken.Store(true)
		return err
	}
	return nil
}

// maybeSnapshot writes a snapshot when the journal has grown SnapshotEvery
// records past the last one. It takes the snapMu write lock, so it runs
// with no append in flight and the doc it writes covers every assigned
// seq. At most one snapshot runs at a time.
func (s *Server) maybeSnapshot() {
	if s.jrn == nil || s.journalBroken.Load() {
		return
	}
	st := s.jrn.Stats()
	if st.LastSeq-st.SnapshotSeq < uint64(s.snapEvery) {
		return
	}
	if !s.snapshotting.CompareAndSwap(false, true) {
		return
	}
	defer s.snapshotting.Store(false)

	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	// Re-check under the lock: a competing writer may have just
	// snapshotted (CAS prevents concurrency, not staleness).
	st = s.jrn.Stats()
	if st.LastSeq-st.SnapshotSeq < uint64(s.snapEvery) {
		return
	}
	doc := s.snapshotLocked()
	payload, err := json.Marshal(doc)
	if err != nil {
		return
	}
	if err := s.jrn.Snapshot(payload); err != nil {
		s.journalBroken.Store(true)
	}
}

// snapshotLocked collects the full server state. Caller holds the snapMu
// write lock (no writer is between apply and append) — entry op slices are
// only appended under the snapMu read lock, so reading them here is safe.
func (s *Server) snapshotLocked() snapshotDoc {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc := snapshotDoc{NextID: s.nextID}
	// Oldest-first (LRU back to front) so the rebuild's insertion order
	// reproduces the recency order.
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		doc.Sessions = append(doc.Sessions, sessionSnapshot{
			ID:     e.id,
			Name:   e.name,
			Create: e.create,
			Ops:    append([]MutateOp(nil), e.ops...),
		})
	}
	doc.Evicted = append(doc.Evicted, s.tombstones...)
	return doc
}

// rebuildPlan is the cheap phase of recovery: snapshot + journal records
// folded into per-session op streams, before any graph is built.
type rebuildPlan struct {
	nextID   int
	sessions []sessionSnapshot
	evicted  []Tombstone
	skipped  int // records for unknown sessions (benign races, see below)
}

// planRecovery folds the recovered journal into a rebuild plan. Records
// for unknown sessions are skipped, not fatal: a delete racing a mutate
// can journal the delete first while both were correctly acknowledged —
// the end state (session gone) is identical either way.
func planRecovery(rec *journal.Recovered) (*rebuildPlan, error) {
	plan := &rebuildPlan{nextID: 0}
	byID := map[string]int{} // session id → index in plan.sessions, -1 = dropped
	if rec.Snapshot != nil {
		var doc snapshotDoc
		if err := json.Unmarshal(rec.Snapshot, &doc); err != nil {
			return nil, fmt.Errorf("corrupt snapshot payload: %w", err)
		}
		plan.nextID = doc.NextID
		plan.sessions = doc.Sessions
		plan.evicted = doc.Evicted
		for i, ss := range plan.sessions {
			byID[ss.ID] = i
		}
	}
	for _, r := range rec.Records {
		var jr journalRecord
		if err := json.Unmarshal(r.Payload, &jr); err != nil {
			return nil, fmt.Errorf("corrupt journal record at seq %d: %w", r.Seq, err)
		}
		switch jr.Kind {
		case "create":
			if jr.Create == nil {
				return nil, fmt.Errorf("create record at seq %d has no request", r.Seq)
			}
			byID[jr.Session] = len(plan.sessions)
			plan.sessions = append(plan.sessions, sessionSnapshot{ID: jr.Session, Name: jr.Name, Create: *jr.Create})
			if n, ok := sessionNumber(jr.Session); ok && n >= plan.nextID {
				plan.nextID = n
			}
		case "mutate":
			i, ok := byID[jr.Session]
			if !ok || i < 0 {
				plan.skipped++
				continue
			}
			plan.sessions[i].Ops = append(plan.sessions[i].Ops, jr.Ops...)
		case "delete":
			i, ok := byID[jr.Session]
			if !ok || i < 0 {
				plan.skipped++
				continue
			}
			plan.sessions[i].ID = "" // mark dropped; compacted below
			byID[jr.Session] = -1
		case "evict":
			i, ok := byID[jr.Session]
			if !ok || i < 0 {
				plan.skipped++
				continue
			}
			plan.evicted = append(plan.evicted, Tombstone{
				Session: jr.Session,
				Name:    plan.sessions[i].Name,
				Version: uint64(len(plan.sessions[i].Ops)),
				State:   "evicted",
			})
			plan.sessions[i].ID = ""
			byID[jr.Session] = -1
		default:
			return nil, fmt.Errorf("unknown journal record kind %q at seq %d", jr.Kind, r.Seq)
		}
	}
	live := plan.sessions[:0]
	for _, ss := range plan.sessions {
		if ss.ID != "" {
			live = append(live, ss)
		}
	}
	plan.sessions = live
	for _, ss := range plan.sessions {
		if n, ok := sessionNumber(ss.ID); ok && n > plan.nextID {
			plan.nextID = n
		}
	}
	sort.Slice(plan.sessions, func(i, k int) bool {
		ni, _ := sessionNumber(plan.sessions[i].ID)
		nk, _ := sessionNumber(plan.sessions[k].ID)
		return ni < nk
	})
	if len(plan.evicted) > maxTombstones {
		plan.evicted = plan.evicted[len(plan.evicted)-maxTombstones:]
	}
	return plan, nil
}

func sessionNumber(id string) (int, bool) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "s"))
	return n, err == nil && strings.HasPrefix(id, "s")
}

// recover rebuilds sessions from the plan. It runs on a background
// goroutine: while it works the server serves reads (recovered-so-far
// sessions appear as they complete) and sheds writes with 503, so a big
// recovery degrades to read-only instead of blocking the listener.
func (s *Server) recoverSessions(plan *rebuildPlan) {
	defer func() {
		s.mu.Lock()
		if plan.nextID > s.nextID {
			s.nextID = plan.nextID
		}
		s.mu.Unlock()
		s.recovering.Store(false)
		close(s.recoveredCh)
	}()

	s.mu.Lock()
	for _, t := range plan.evicted {
		s.addTombstoneLocked(t)
	}
	s.mu.Unlock()

	for _, ss := range plan.sessions {
		sess, err := ss.Create.NewSession()
		if err == nil {
			for _, op := range ss.Ops {
				if err = op.Apply(sess); err != nil {
					break
				}
			}
		}
		if err != nil {
			// The journal acknowledged these ops, so failing to replay
			// them is a real fault (likely operator-edited files). Keep
			// serving: tombstone the session and count the damage.
			s.replayErrors.Add(1)
			s.mu.Lock()
			s.addTombstoneLocked(Tombstone{Session: ss.ID, Name: ss.Name, State: "unrecoverable"})
			s.mu.Unlock()
			continue
		}
		e := &entry{id: ss.ID, name: ss.Name, sess: sess, create: ss.Create, ops: ss.Ops, recovered: true}
		s.snapMu.RLock()
		s.mu.Lock()
		e.elem = s.lru.PushFront(e)
		s.byID[e.id] = e
		s.evictOverflowLocked()
		s.mu.Unlock()
		s.snapMu.RUnlock()
		s.recoveredCount.Add(1)
	}
}

// addTombstoneLocked records a tombstone, maintains the id index the fetch
// path uses for O(1) 410 lookups, and enforces the FIFO bound; caller holds
// s.mu. Every tombstone append goes through here — a tombstone in the slice
// without its index entry (or vice versa) would make an evicted session
// flap between 410 and 404.
func (s *Server) addTombstoneLocked(t Tombstone) {
	if i, ok := s.tombIdx[t.Session]; ok {
		// Same session tombstoned again (e.g. replayed evict records):
		// keep one entry, freshest state wins.
		s.tombstones[i-s.tombBase] = t
		return
	}
	s.tombIdx[t.Session] = s.tombBase + len(s.tombstones)
	s.tombstones = append(s.tombstones, t)
	for len(s.tombstones) > maxTombstones {
		delete(s.tombIdx, s.tombstones[0].Session)
		s.tombstones = s.tombstones[1:]
		s.tombBase++
	}
}

// evictOverflowLocked enforces the LRU bound: beyond MaxSessions the least
// recently used session is discarded from memory — but never from the
// journal without a trace: its acknowledged ops are already durable
// (appends are synchronous), an evict record marks the discard for replay,
// and a tombstone keeps the eviction visible in list/get responses.
// Caller holds s.mu and, when durable, s.snapMu.RLock.
func (s *Server) evictOverflowLocked() {
	for len(s.byID) > s.max {
		oldest := s.lru.Back()
		ev := oldest.Value.(*entry)
		s.lru.Remove(oldest)
		delete(s.byID, ev.id)
		s.evictedTotal.Add(1)
		s.addTombstoneLocked(Tombstone{
			Session: ev.id,
			Name:    ev.name,
			Version: ev.sess.Version(),
			State:   "evicted",
		})
		_ = s.appendRecord(journalRecord{Kind: "evict", Session: ev.id})
	}
}
