// Package coord implements the coordination substrates that Blazes
// strategies compile to: a Zookeeper-like totally ordered messaging service
// (the ordering strategies M1/M2 of Figure 5), a partition→producer registry,
// and the seal tracker that implements the paper's per-partition unanimous
// voting protocol (the sealing strategy M3).
package coord

import (
	"blazes/internal/sim"
)

// SequencerConfig shapes the cost model of the ordering service.
type SequencerConfig struct {
	// SubmitDelay bounds the client→service hop.
	SubmitDelay sim.LinkConfig
	// DeliverDelay bounds the service→subscriber hop. Per-subscriber
	// delivery is FIFO: jitter never reorders the decided sequence.
	DeliverDelay sim.LinkConfig
	// ProcessingCost is the service's per-message serialization cost; it
	// makes the sequencer a throughput bottleneck, which is exactly the
	// overhead the paper's sealed strategies avoid.
	ProcessingCost sim.Time
}

// DefaultSequencer mimics a small Zookeeper ensemble: ~1ms hops and a
// per-operation cost dominated by quorum appends.
var DefaultSequencer = SequencerConfig{
	SubmitDelay:    sim.LinkConfig{MinDelay: 300 * sim.Microsecond, MaxDelay: 2 * sim.Millisecond},
	DeliverDelay:   sim.LinkConfig{MinDelay: 300 * sim.Microsecond, MaxDelay: 2 * sim.Millisecond},
	ProcessingCost: 400 * sim.Microsecond,
}

// Sequenced is a message stamped with its position in the global order.
type Sequenced struct {
	Seq uint64
	Msg any
}

// Sequencer is a totally ordered messaging service: clients Submit messages,
// the service decides a single global order (its arrival order — mechanism
// M2, dynamic ordering) and delivers every message to every subscriber in
// that order.
type Sequencer struct {
	sim         *sim.Sim
	cfg         SequencerConfig
	subscribers []*subscriber
	nextSeq     uint64
	busyUntil   sim.Time
	submitted   int
	delivered   int
}

type subscriber struct {
	fn           func(Sequenced)
	lastDelivery sim.Time
	seq          *Sequencer
}

// NewSequencer creates an ordering service on the given simulator.
func NewSequencer(s *sim.Sim, cfg SequencerConfig) *Sequencer {
	return &Sequencer{sim: s, cfg: cfg}
}

// Subscribe registers a delivery callback. All subscribers observe the same
// total order.
func (q *Sequencer) Subscribe(fn func(Sequenced)) {
	q.subscribers = append(q.subscribers, &subscriber{fn: fn, seq: q})
}

// Submit sends msg to the service; it will be sequenced in arrival order
// and broadcast to all subscribers.
func (q *Sequencer) Submit(msg any) {
	q.submitted++
	q.sim.At(q.cfg.SubmitDelay.Arrival(q.sim), func() { q.arrive(msg) })
}

// arrive sequences one message, modelling the service's serial processing.
func (q *Sequencer) arrive(msg any) {
	start := q.sim.Now()
	if q.busyUntil > start {
		start = q.busyUntil
	}
	done := start + q.cfg.ProcessingCost
	q.busyUntil = done
	q.nextSeq++
	sm := Sequenced{Seq: q.nextSeq, Msg: msg}
	q.sim.At(done, func() {
		for _, sub := range q.subscribers {
			sub.deliver(sm)
		}
	})
}

// deliver schedules an in-order (FIFO) delivery to one subscriber: the
// jittered hop never overtakes earlier deliveries.
func (s *subscriber) deliver(m Sequenced) {
	q := s.seq
	at := q.cfg.DeliverDelay.Arrival(q.sim)
	if at < s.lastDelivery {
		at = s.lastDelivery
	}
	s.lastDelivery = at
	q.sim.At(at, func() {
		q.delivered++
		s.fn(m)
	})
}

// QueueDelay reports how far behind the service currently is: the time a
// message arriving now would wait before being sequenced. Clients use it to
// model connection backpressure (throttling and retry under overload), the
// behaviour that makes heavily loaded ordering services degrade
// superlinearly.
func (q *Sequencer) QueueDelay() sim.Time {
	if q.busyUntil <= q.sim.Now() {
		return 0
	}
	return q.busyUntil - q.sim.Now()
}

// Submitted reports how many messages have been submitted.
func (q *Sequencer) Submitted() int { return q.submitted }

// Delivered reports the total number of subscriber deliveries.
func (q *Sequencer) Delivered() int { return q.delivered }
