package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"blazes/verify"
)

// sweepWorker drives the claim/run/report loop over the handler — exactly
// what a `blazes sweep-worker` process does over the wire — until the
// sweep has no work left for it.
func sweepWorker(t *testing.T, h http.Handler, sweepID, name string) {
	ctx := context.Background()
	for {
		code, body := call(t, h, "POST", "/v1/sweeps/"+sweepID+"/claim", map[string]any{"worker": name, "max": 2})
		if code != http.StatusOK {
			t.Errorf("%s: claim: %d %s", name, code, body)
			return
		}
		var claim SweepClaimResponse
		if err := json.Unmarshal([]byte(body), &claim); err != nil {
			t.Errorf("%s: claim decode: %v", name, err)
			return
		}
		if len(claim.Batches) == 0 {
			// Done, or every remaining batch is leased to the other worker.
			return
		}
		for _, b := range claim.Batches {
			wl, err := verify.LookupWorkload(b.Cell.Workload)
			if err != nil {
				t.Errorf("%s: lookup %q: %v", name, b.Cell.Workload, err)
				return
			}
			outs, err := verify.RunCell(ctx, wl, b.Cell, 0, b.SeedFrom, b.SeedTo)
			if err != nil {
				t.Errorf("%s: run batch %d: %v", name, b.ID, err)
				return
			}
			code, body := call(t, h, "POST", "/v1/sweeps/"+sweepID+"/report",
				map[string]any{"batch": b.ID, "outcomes": outs})
			if code != http.StatusOK {
				t.Errorf("%s: report batch %d: %d %s", name, b.ID, code, body)
				return
			}
		}
	}
}

func submitSweep(t *testing.T, h http.Handler, req map[string]any) SweepStatus {
	t.Helper()
	code, body := call(t, h, "POST", "/v1/sweeps", req)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st SweepStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func sweepStatus(t *testing.T, h http.Handler, id string) SweepStatus {
	t.Helper()
	code, body := call(t, h, "GET", "/v1/sweeps/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("status: %d %s", code, body)
	}
	var st SweepStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSweepDistributedDeterminism is the acceptance bar at the HTTP layer:
// two workers share a sweep's batches over the wire — outcomes crossing a
// JSON boundary — and the coordinator's merged report is identical to a
// single-process verify.Check of the same configuration.
func TestSweepDistributedDeterminism(t *testing.T) {
	h := New(Options{}).Handler()
	st := submitSweep(t, h, map[string]any{
		"workloads":  []string{"synthetic-chains"},
		"seeds":      12,
		"batch_size": 5,
	})
	if st.State != "running" || st.SeedsTotal == 0 || st.Batches < 2 {
		t.Fatalf("submit status: %+v", st)
	}

	var wg sync.WaitGroup
	for wi := 0; wi < 2; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			sweepWorker(t, h, st.Sweep, fmt.Sprintf("w%d", wi))
		}(wi)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	final := sweepStatus(t, h, st.Sweep)
	if final.State != "complete" {
		t.Fatalf("state = %q after all reports, want complete (%+v)", final.State, final)
	}
	if final.Holds == nil || !*final.Holds {
		t.Fatalf("sweep did not hold: %+v", final)
	}
	if len(final.Reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(final.Reports))
	}

	want, err := verify.Check(verify.SyntheticChains(false), verify.Options{Seeds: 12})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(final.Reports[0])
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("distributed report differs from single-process Check:\n--- distributed ---\n%s\n--- single ---\n%s", gotJSON, wantJSON)
	}
}

// TestSweepShrinkOnAnomaly: a sweep submitted with shrink delta-debugs
// every anomalous cell — here the stripped divergence-reproduction cells —
// into replayable 1-minimal traces in the background, and the status
// endpoint serves them once the sweep completes.
func TestSweepShrinkOnAnomaly(t *testing.T) {
	h := New(Options{}).Handler()
	st := submitSweep(t, h, map[string]any{
		"workloads":  []string{"synthetic-chains"},
		"seeds":      6,
		"shrink":     true,
		"batch_size": 4,
	})
	sweepWorker(t, h, st.Sweep, "solo")
	if t.Failed() {
		t.FailNow()
	}

	var final SweepStatus
	deadline := time.Now().Add(60 * time.Second)
	for {
		final = sweepStatus(t, h, st.Sweep)
		if final.State == "complete" {
			break
		}
		if final.State != "shrinking" {
			t.Fatalf("state = %q while waiting on shrinks, want shrinking", final.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep still %q after deadline: %+v", final.State, final)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(final.ShrinkErrors) > 0 {
		t.Fatalf("shrink errors: %v", final.ShrinkErrors)
	}
	if len(final.Traces) == 0 {
		t.Fatal("anomalous stripped cells produced no traces")
	}
	for _, tr := range final.Traces {
		res, err := verify.Replay(context.Background(), tr)
		if err != nil {
			t.Fatalf("replay %s/%s: %v", tr.Workload, tr.Plan.Name, err)
		}
		if !res.Reproduced {
			t.Errorf("trace %s/%s did not reproduce: observed %s, expected %s",
				tr.Workload, tr.Plan.Name, res.Observed, res.Expected)
		}
	}

	code, body := call(t, h, "GET", "/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var stats StatsResponse
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	sw := stats.Sweeps
	if sw.Submitted < 1 || sw.Completed < 1 || sw.BatchesReported == 0 || sw.TracesShrunk == 0 {
		t.Fatalf("sweep stats missing activity: %+v", sw)
	}
}

// TestSweepEndpointValidation: malformed submissions, reports and lookups
// fail loudly with the right status codes.
func TestSweepEndpointValidation(t *testing.T) {
	h := New(Options{}).Handler()

	for _, tc := range []struct {
		req  map[string]any
		code int
	}{
		{map[string]any{"seeds": -1}, http.StatusBadRequest},
		{map[string]any{"batch_size": -2}, http.StatusBadRequest},
		{map[string]any{"workloads": []string{"no-such-workload"}}, http.StatusBadRequest},
	} {
		if code, body := call(t, h, "POST", "/v1/sweeps", tc.req); code != tc.code {
			t.Errorf("submit %v: %d %s, want %d", tc.req, code, body, tc.code)
		}
	}
	if code, _ := call(t, h, "GET", "/v1/sweeps/sw99", nil); code != http.StatusNotFound {
		t.Errorf("status of unknown sweep: %d, want 404", code)
	}
	if code, _ := call(t, h, "POST", "/v1/sweeps/sw99/claim", nil); code != http.StatusNotFound {
		t.Errorf("claim on unknown sweep: %d, want 404", code)
	}

	st := submitSweep(t, h, map[string]any{"workloads": []string{"synthetic-set"}, "seeds": 2})
	if code, body := call(t, h, "POST", "/v1/sweeps/"+st.Sweep+"/report",
		map[string]any{"outcomes": []verify.Outcome{}}); code != http.StatusBadRequest {
		t.Errorf("report without batch id: %d %s, want 400", code, body)
	}
	if code, body := call(t, h, "POST", "/v1/sweeps/"+st.Sweep+"/report",
		map[string]any{"batch": 0, "outcomes": []verify.Outcome{}}); code != http.StatusBadRequest {
		t.Errorf("report with short outcomes: %d %s, want 400", code, body)
	}

	sweepWorker(t, h, st.Sweep, "solo")
	if t.Failed() {
		t.FailNow()
	}
	final := sweepStatus(t, h, st.Sweep)
	if final.State != "complete" || final.Holds == nil || !*final.Holds {
		t.Fatalf("confluent sweep did not complete holding: %+v", final)
	}
	// A drained sweep answers claims with done and no batches.
	code, body := call(t, h, "POST", "/v1/sweeps/"+st.Sweep+"/claim", nil)
	if code != http.StatusOK {
		t.Fatalf("claim after completion: %d %s", code, body)
	}
	var claim SweepClaimResponse
	if err := json.Unmarshal([]byte(body), &claim); err != nil {
		t.Fatal(err)
	}
	if !claim.Done || len(claim.Batches) != 0 {
		t.Fatalf("claim after completion = %+v, want done with no batches", claim)
	}
	// The index lists both sweeps, light (no reports/traces).
	code, body = call(t, h, "GET", "/v1/sweeps", nil)
	if code != http.StatusOK {
		t.Fatalf("list: %d %s", code, body)
	}
	var list SweepListResponse
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sweeps) != 1 || len(list.Sweeps[0].Reports) != 0 {
		t.Fatalf("list = %+v, want 1 light entry", list)
	}
}
