#!/usr/bin/env bash
# load_smoke.sh — scaled-down load check for CI: run the open-loop
# generator (cmd/loadgen) with ~200 sessions against an in-process server
# and diff the latency percentiles against the committed BENCH_7.json
# baseline (recorded from a 1000-session run; see EXPERIMENTS.md).
#
# Usage:
#   scripts/load_smoke.sh                     # 200 sessions, threshold 5.0×
#   SESSIONS=1000 THRESHOLD=3.0 scripts/load_smoke.sh
#
# CI hardware is slower and noisier than the baseline machine and a smoke
# burst is 5× smaller, so the comparison runs with a generous threshold
# and the load-smoke job treats a non-zero exit as NON-BLOCKING — the
# point is to catch an order-of-magnitude latency rot or a generator that
# stopped completing sessions, not to gate merges on percentile jitter.
set -euo pipefail
cd "$(dirname "$0")/.."

SESSIONS="${SESSIONS:-200}"
RATE="${RATE:-400}"
THRESHOLD="${THRESHOLD:-5.0}"
REPORT="$(mktemp)"
trap 'rm -f "$REPORT"' EXIT

go run ./cmd/loadgen -sessions "$SESSIONS" -rate "$RATE" -mutations 4 -out "$REPORT"

echo
echo "== percentile diff vs BENCH_7.json (threshold ${THRESHOLD}x) =="
CURRENT_JSON="$REPORT" BASELINE=BENCH_7.json THRESHOLD="$THRESHOLD" scripts/bench_diff.sh
