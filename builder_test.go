package blazes

import (
	"strings"
	"testing"
)

func buildWordcount(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraphBuilder("wordcount").
		ComponentPath("Splitter", "tweets", "words", CR).
		ComponentPath("Count", "words", "counts", OWGate("word", "batch")).
		ComponentPath("Commit", "counts", "db", CW).
		Source("tweets", "Splitter", "tweets").
		Stream("words", "Splitter", "words", "Count", "words").
		Stream("counts", "Count", "counts", "Commit", "counts").
		Sink("db", "Commit", "db").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphBuilderMatchesHandBuiltTopology(t *testing.T) {
	g := buildWordcount(t)
	want := WordcountTopology(false)

	a1, err := NewAnalyzer().Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAnalyzer().Analyze(want)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Verdict().Equal(a2.Verdict()) {
		t.Errorf("builder graph verdict = %s, hand-built = %s", a1.Verdict(), a2.Verdict())
	}
	if !a1.Verdict().Equal(Run) {
		t.Errorf("unsealed wordcount verdict = %s, want Run", a1.Verdict())
	}
}

func TestGraphBuilderComponentOptions(t *testing.T) {
	b := NewGraphBuilder("rep")
	b.Component("R").
		Path("in", "out", OWGate("k")).
		Replicated().
		OutputSchema("out", "k", "v")
	b.Source("src", "R", "in").Sink("snk", "R", "out").Seal("src", "k")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Lookup("R").Rep {
		t.Error("Replicated() not applied")
	}
	if g.Stream("src").Seal.String() != "k" {
		t.Errorf("seal = %q, want k", g.Stream("src").Seal)
	}
	res, err := NewAnalyzer().Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic() {
		t.Errorf("sealed OW(k) should be deterministic, verdict %s", res.Verdict())
	}
}

func TestGraphBuilderReplicateStream(t *testing.T) {
	b := NewGraphBuilder("rep-stream")
	b.ComponentPath("C", "in", "out", CW)
	b.Replicate("src") // before declaration: resolved at Build
	b.Source("src", "C", "in").Sink("snk", "C", "out")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Stream("src").Rep {
		t.Error("Replicate before declaration lost")
	}
}

// TestGraphBuilderDeferredErrors: every construction mistake surfaces at
// Build, and all of them surface at once.
func TestGraphBuilderDeferredErrors(t *testing.T) {
	b := NewGraphBuilder("broken")
	b.ComponentPath("C", "in", "out", CR)
	b.Source("src", "C", "in")
	b.Source("src", "C", "in")      // duplicate name
	b.Seal("ghost", "k")            // unknown stream
	b.Replicate("phantom")          // unknown stream
	b.Sink("snk", "Nowhere", "out") // unknown component
	_, err := b.Build()
	if err == nil {
		t.Fatal("Build succeeded on a broken graph")
	}
	for _, want := range []string{
		`duplicate stream name "src"`,
		`Seal("ghost")`,
		`Replicate("phantom")`,
		`unknown producer component "Nowhere"`,
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q:\n%v", want, err)
		}
	}
}

// TestGraphBuilderAggregatesAllValidationErrors: graph validation reports
// every structural problem in one errors.Join — not just the first — with
// each message naming the offending component or stream, so a broken
// construction site is fixable in a single pass.
func TestGraphBuilderAggregatesAllValidationErrors(t *testing.T) {
	b := NewGraphBuilder("multi-broken")
	b.Component("Empty") // no annotated paths
	b.ComponentPath("C", "in", "out", CR)
	b.Source("a", "C", "nope")                // unknown input interface
	b.Sink("b", "C", "missing")               // unknown output interface
	b.Stream("c", "Ghost", "x", "C", "in")    // unknown producer component
	b.Stream("d", "C", "out", "Phantom", "y") // unknown consumer component
	_, err := b.Build()
	if err == nil {
		t.Fatal("Build succeeded on a multiply-broken graph")
	}
	wants := []string{
		`component "Empty" has no annotated paths`,
		`stream "a": component "C" has no input interface "nope"`,
		`stream "b": component "C" has no output interface "missing"`,
		`stream "c": unknown producer component "Ghost"`,
		`stream "d": unknown consumer component "Phantom"`,
	}
	for _, want := range wants {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q:\n%v", want, err)
		}
	}
	// errors.Join exposes the individual errors via Unwrap() []error.
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("Build error is not an errors.Join aggregate: %T", err)
	}
	if got := len(joined.Unwrap()); got < len(wants) {
		t.Errorf("aggregate holds %d errors, want ≥ %d", got, len(wants))
	}
	// Deterministic message: the same broken graph yields the same text.
	_, err2 := NewGraphBuilder("multi-broken").
		Component("Empty").Graph().
		ComponentPath("C", "in", "out", CR).
		Source("a", "C", "nope").
		Sink("b", "C", "missing").
		Stream("c", "Ghost", "x", "C", "in").
		Stream("d", "C", "out", "Phantom", "y").
		Build()
	if err2 == nil || err.Error() != err2.Error() {
		t.Errorf("validation message not deterministic:\n%v\nvs\n%v", err, err2)
	}
}

func TestGraphBuilderSealNeedsKey(t *testing.T) {
	b := NewGraphBuilder("g")
	b.ComponentPath("C", "in", "out", CR)
	b.Source("src", "C", "in").Sink("snk", "C", "out")
	b.Seal("src") // no key attributes
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "at least one key") {
		t.Errorf("want missing-key error, got %v", err)
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	NewGraphBuilder("empty").Seal("ghost", "k").MustBuild()
}
