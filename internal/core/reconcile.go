package core

import (
	"fmt"
	"strings"

	"blazes/internal/fd"
)

// Reconciliation implements Figure 10: given the list Labels of per-path
// labels arriving at one output interface, it resolves the internal labels
// (Taint, NDRead) into externally visible anomaly labels, then merges to the
// single highest-severity output label.
//
// The procedure:
//
//	Taint ∈ Labels            ⇒ add (Rep ? Diverge : Run)
//	NDRead_gate ∈ Labels and ¬protected(NDRead_gate)
//	                          ⇒ add (Rep ? Inst : Run)
//	NDRead_gate protected     ⇒ add Async (deterministic after per-partition
//	                            blocking; the read rendezvouses only with
//	                            sealed, immutable partitions)
//
// where
//
//	protected(NDRead_gate) ≡ ∀ l ∈ Labels .
//	    l = NDRead_gate ∨ (l = Seal_key ∧ compatible(gate, key))
//
// Reconcile finally returns MergeLabels over the augmented list.

// Reconciliation captures the outcome of reconciling one output interface,
// including the intermediate bookkeeping used for explain output and tests.
type Reconciliation struct {
	// Input is the Labels list handed to the procedure (per-path results).
	Input []Label
	// Added lists the labels introduced by the Figure 10 rules.
	Added []Label
	// Output is the final merged label for the interface.
	Output Label
	// Notes explains each rule firing in order, for derivation printing.
	Notes []string
}

// Reconcile runs the Figure 10 procedure. rep is the Rep flag — whether the
// component (and hence its output streams) is replicated. deps carries
// injective dependency knowledge for compatibility tests (nil = identity
// only).
func Reconcile(labels []Label, rep bool, deps *fd.Set) Reconciliation {
	return ReconcileWithSchema(labels, rep, deps, fd.AttrSet{})
}

// ReconcileWithSchema is Reconcile for white-box components with a known
// output attribute schema: when the merged label is a Seal, its key is
// chased through the lineage and restricted to attributes that survive to
// the output. A seal whose key does not survive degrades to Async — the
// downstream stream carries no usable punctuations.
func ReconcileWithSchema(labels []Label, rep bool, deps *fd.Set, out fd.AttrSet) Reconciliation {
	rec := Reconciliation{Input: append([]Label(nil), labels...)}
	augmented := append([]Label(nil), labels...)

	add := func(l Label, note string) {
		rec.Added = append(rec.Added, l)
		augmented = append(augmented, l)
		rec.Notes = append(rec.Notes, note)
	}

	// Taint ⇒ Rep ? Diverge : Run.
	for _, l := range labels {
		if l.Kind == LTaint {
			if rep {
				add(Diverge, "Taint ∈ Labels ∧ Rep ⇒ Diverge")
			} else {
				add(Run, "Taint ∈ Labels ⇒ Run")
			}
			break
		}
	}

	// Each distinct NDRead gate: protected ⇒ Async, else Rep ? Inst : Run.
	seenGates := map[string]bool{}
	for _, l := range labels {
		if l.Kind != LNDRead || seenGates[l.Key.Key()] {
			continue
		}
		seenGates[l.Key.Key()] = true
		if protected(l, labels, deps) {
			add(Async, fmt.Sprintf("NDRead(%s) protected by compatible seals ⇒ Async", l.Key))
		} else if rep {
			add(Inst, fmt.Sprintf("NDRead(%s) unprotected ∧ Rep ⇒ Inst", l.Key))
		} else {
			add(Run, fmt.Sprintf("NDRead(%s) unprotected ⇒ Run", l.Key))
		}
	}

	rec.Output = MergeLabels(augmented)
	if rec.Output.Kind == LSeal && deps != nil && !out.IsEmpty() {
		chased := deps.InjectiveClosure(rec.Output.Key).Intersect(out)
		if chased.IsEmpty() {
			rec.Notes = append(rec.Notes, fmt.Sprintf("seal key (%s) does not survive to output schema (%s) ⇒ Async", rec.Output.Key, out))
			rec.Output = Async
		} else if !chased.Equal(rec.Output.Key) {
			rec.Notes = append(rec.Notes, fmt.Sprintf("seal key chased through lineage: (%s) ⇒ (%s)", rec.Output.Key, chased))
			rec.Output = SealOn(chased)
		}
	}
	return rec
}

// protected implements the paper's predicate: every label the NDRead can
// rendezvous with must either be the same NDRead or a seal compatible with
// the read's gate.
func protected(nd Label, labels []Label, deps *fd.Set) bool {
	for _, l := range labels {
		if l.Kind == LNDRead && l.Key.Equal(nd.Key) {
			continue
		}
		if l.Kind == LSeal && compatibleWith(nd.Key, l.Key, deps) {
			continue
		}
		return false
	}
	return true
}

func compatibleWith(gate, key fd.AttrSet, deps *fd.Set) bool {
	if deps == nil {
		deps = identityDeps(gate.Union(key))
	}
	return deps.Compatible(gate, key)
}

// String renders the reconciliation for explain output.
func (r Reconciliation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Labels = {%s}", joinLabels(r.Input))
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n  %s", n)
	}
	fmt.Fprintf(&b, "\n  merge ⇒ %s", r.Output)
	return b.String()
}

func joinLabels(ls []Label) string {
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.String()
	}
	return strings.Join(parts, ", ")
}
