package storm

import (
	"blazes/internal/coord"
	"blazes/internal/sim"
)

// readyMsg announces through the ordering service that a committer instance
// has finished processing a batch and is ready to commit it.
type readyMsg struct {
	batch    int64
	instance int
}

// appliedMsg confirms through the ordering service that a committer
// instance has durably applied a batch. Confirmations are writes at the
// coordination service, so they serialize there — the per-instance cost
// that makes transactional commit rounds grow with cluster size.
type appliedMsg struct {
	batch    int64
	instance int
}

// txCoordinator enforces Storm's transactional commit discipline: batch b
// commits only after batch b−1 has fully committed, across all committer
// instances, with the decision serialized through the ordering service.
// This is the global serialization point whose cost Figure 11 measures.
type txCoordinator struct {
	topo *Topology
	// ready tracks which committer instances announced readiness per batch.
	ready map[int64]map[int]bool
	// applied tracks which instances finished applying the current batch.
	applied map[int64]map[int]bool
	// next is the batch allowed to commit now.
	next int64
	// committing marks an in-progress commit round.
	committing bool
}

func newTxCoordinator(t *Topology) *txCoordinator {
	c := &txCoordinator{
		topo:    t,
		ready:   map[int64]map[int]bool{},
		applied: map[int64]map[int]bool{},
	}
	t.seq.Subscribe(func(m coord.Sequenced) {
		if v, ok := m.Msg.(appliedMsg); ok {
			c.onApplied(v.batch, v.instance)
		}
	})
	return c
}

// submitReady delivers a readiness announcement to the coordinator over
// the network. Readiness is a notification (a zk watch fire), not a
// serialized write, so it does not consume ordering-service capacity.
func (c *txCoordinator) submitReady(r readyMsg) {
	c.topo.sim.After(c.commitHop(), func() { c.onReady(r) })
}

func (c *txCoordinator) onReady(r readyMsg) {
	set, ok := c.ready[r.batch]
	if !ok {
		set = map[int]bool{}
		c.ready[r.batch] = set
	}
	set[r.instance] = true
	c.tryCommit()
}

// tryCommit starts the commit round for the next batch once every committer
// instance is ready for it and the previous round finished.
func (c *txCoordinator) tryCommit() {
	if c.committing {
		return
	}
	st := c.topo.committerStage()
	if st == nil {
		return
	}
	if len(c.ready[c.next]) < st.n {
		return
	}
	c.committing = true
	b := c.next
	// Broadcast "commit b" to every committer instance over the network;
	// each applies, then confirms through the ordering service (a write at
	// the coordination service, serialized there).
	for _, ins := range st.instances {
		ins := ins
		c.topo.sim.After(c.commitHop(), func() {
			bs := ins.batch(b)
			c.topo.sim.After(c.topo.cfg.CommitCost, func() {
				ins.applyCommit(b, bs)
				c.topo.seq.Submit(appliedMsg{batch: b, instance: ins.idx})
			})
		})
	}
}

func (c *txCoordinator) onApplied(b int64, idx int) {
	set, ok := c.applied[b]
	if !ok {
		set = map[int]bool{}
		c.applied[b] = set
	}
	set[idx] = true
	st := c.topo.committerStage()
	if len(set) < st.n {
		return
	}
	// Batch fully committed: advance the global order.
	delete(c.ready, b)
	delete(c.applied, b)
	c.next = b + 1
	c.committing = false
	c.tryCommit()
}

// commitHop draws one coordinator↔instance network delay.
func (c *txCoordinator) commitHop() sim.Time {
	cfg := c.topo.cfg.Link
	d := cfg.MinDelay
	if span := cfg.MaxDelay - cfg.MinDelay; span > 0 {
		d += sim.Time(c.topo.sim.Rand().Int63n(int64(span) + 1))
	}
	return d
}
