// Package blazes is a from-scratch Go reproduction of "Blazes: Coordination
// Analysis for Distributed Programs" (Alvaro, Conway, Hellerstein, Maier —
// ICDE 2014): the annotation calculus and whole-dataflow analysis that
// decide where a distributed dataflow needs coordination, the synthesis of
// seal-based and order-based coordination strategies, and every substrate
// the paper's evaluation depends on — a Storm-like stream engine, a
// Bloom-like declarative runtime with white-box analysis, a Zookeeper-like
// ordering service, the seal/punctuation protocol, and a deterministic
// discrete-event network simulator.
//
// This top-level package is the public API. It re-exports the domain
// vocabulary (Label, Annotation, Strategy, Coordination), and provides:
//
//   - GraphBuilder: fluent construction of annotated dataflows with
//     deferred validation (every mistake reported at Build, at once);
//   - Analyzer: the one-shot analysis façade, configured by functional
//     options (WithSealRepair, PreferSequencing, WithVariant), wrapping
//     label derivation, strategy synthesis, and fixpoint repair;
//   - Session: the mutable, incrementally re-analyzed counterpart for
//     the interactive repair loop — mutate (Annotate, SealStream,
//     Connect, SetVariant, ...) and Analyze re-derives only the
//     components the mutation can affect, with a Delta in the report;
//   - Report: the stable, JSON-serializable projection of an analysis
//     (stream labels, per-component derivations, verdict, strategies,
//     session deltas) emitted by `blazes -json` and golden-tested to
//     round-trip; the v2 decoder still accepts v1 documents;
//   - Spec: the grey-box annotation file format of Figure 1.
//
// Four sibling packages complete the public surface: blazes/substrate
// (the simulated Storm wordcount, ad-tracking network, and Bloom
// white-box extraction), blazes/experiments (regeneration of the paper's
// evaluation figures), blazes/verify (the schedule-exploration harness
// that proves the analyzer's guarantee under adversarial delivery), and
// blazes/service (the analysis as a long-running HTTP+JSON service —
// `blazes serve` — hosting concurrent sessions). Everything under
// internal/ is implementation detail; cmd/ and examples/ consume only
// the public packages.
//
// Simulation-backed entry points accept a Parallelism option (see
// substrate.WordcountConfig, verify.Options, experiments.Fig11Config):
// independent partitions and seeded runs execute on a bounded worker pool
// while schedules stay in seeded order, so results are byte-identical at
// any setting — the deterministic parallel runtime described in
// DESIGN.md's "Parallel execution" section.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// layering, and EXPERIMENTS.md for paper-vs-measured results.
package blazes
