package bloom

import (
	"fmt"
	"strings"
	"testing"
)

// runtimeTrace drives one node of a module exercising joins, grouping,
// recursion, deferred and delete rules through a fixed delivery sequence
// and renders every tick's emissions plus the final state of every
// collection. The Bloom runtime has no randomness: its determinism rests
// on canonical ordering at every boundary (hash-bucketed stores must never
// leak Go map iteration order), which is exactly what this trace pins.
func runtimeTrace() string {
	m := NewModule("det")
	m.Input("edges", "src", "dst")
	m.Input("retract", "src", "dst")
	m.Table("edge", "src", "dst")
	m.Table("path", "src", "dst")
	m.Scratch("fanout", "src", "cnt")
	m.Channel("alerts", "src", "cnt")
	m.Output("out", "src", "dst")
	m.Rule("edge", Instant, Scan("edges"))
	m.Rule("path", Instant, Scan("edge"))
	m.Rule("path", Instant,
		Project(
			Join(Project(Scan("path"), Col("src"), ColAs("dst", "mid")), Scan("edge"), [2]string{"mid", "src"}),
			Col("src"), Col("dst")))
	m.Rule("fanout", Instant,
		GroupBy(Scan("path"), []string{"src"}, Agg{Func: Count, As: "cnt"}))
	m.Rule("alerts", Async,
		Select(Scan("fanout"), Where("cnt", GE, I(2))))
	m.Rule("out", Instant, Scan("path"))
	m.Rule("edge", Delete, Scan("retract"))
	m.Rule("edge", Deferred, Project(Scan("retract"), ColAs("dst", "src"), ColAs("src", "dst")))

	n, err := NewNode("det", m)
	if err != nil {
		return "node error: " + err.Error()
	}
	var b strings.Builder
	tick := func() {
		em, err := n.Tick()
		if err != nil {
			fmt.Fprintf(&b, "tick error: %v\n", err)
			return
		}
		for _, e := range em {
			fmt.Fprintf(&b, "emit %s: %v\n", e.Collection, e.Rows)
		}
		fmt.Fprintf(&b, "digest=%s pending=%v\n", n.Digest(), n.Pending())
	}
	deliver := func(coll string, rows ...Row) {
		if err := n.Deliver(coll, rows...); err != nil {
			fmt.Fprintf(&b, "deliver error: %v\n", err)
		}
	}

	deliver("edges", Row{S("a"), S("b")}, Row{S("b"), S("c")}, Row{S("c"), S("d")})
	tick()
	deliver("edges", Row{S("d"), S("e")}, Row{S("e"), S("a")})
	deliver("retract", Row{S("b"), S("c")})
	tick()
	tick() // deferred/delete queues drain
	for _, c := range m.Collections() {
		fmt.Fprintf(&b, "%s=%v\n", c.Name, n.Rows(c.Name))
	}
	return b.String()
}

// TestRuntimeDeterminismRegression pins the documented contract for the
// Bloom runtime: the same module and delivery sequence produce
// byte-identical emissions, digests, and final state on every run.
func TestRuntimeDeterminismRegression(t *testing.T) {
	base := runtimeTrace()
	if strings.Contains(base, "error") {
		t.Fatalf("trace reported an error:\n%s", base)
	}
	for i := 0; i < 5; i++ {
		if got := runtimeTrace(); got != base {
			t.Fatalf("run %d differs:\n--- first\n%s--- now\n%s", i, base, got)
		}
	}
}

// TestDigestTracksState: equal state ⇒ equal digest; different state ⇒
// different digest; transient collections are excluded.
func TestDigestTracksState(t *testing.T) {
	mk := func() *Node {
		m := NewModule("d")
		m.Input("in", "a")
		m.Table("t", "a")
		m.Scratch("s", "a")
		m.Rule("t", Instant, Scan("in"))
		m.Rule("s", Instant, Scan("t"))
		n, err := NewNode("d", m)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a, b := mk(), mk()
	if a.Digest() != b.Digest() {
		t.Fatal("fresh nodes disagree")
	}
	for _, n := range []*Node{a, b} {
		if err := n.Deliver("in", Row{S("x")}); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if a.Digest() != b.Digest() {
		t.Fatal("identical deliveries disagree")
	}
	if err := a.Deliver("in", Row{S("y")}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if a.Digest() == b.Digest() {
		t.Fatal("different state, same digest")
	}
}
