package adtrack

import (
	"testing"

	"blazes/internal/dataflow"
	"blazes/internal/sim"
)

// testConfig builds a small, fast configuration: few records, high
// threshold so every request has a visible numeric answer, and wide link
// jitter so replicas genuinely interleave differently.
func testConfig(seed int64, regime Regime, independent bool) Config {
	cfg := DefaultConfig(3, regime, independent)
	cfg.Seed = seed
	cfg.Workload.EntriesPerServer = 60
	cfg.Workload.BatchSize = 10
	cfg.Workload.Campaigns = 4
	cfg.Workload.AdsPerCampaign = 2
	cfg.Workload.Sleep = 50 * sim.Millisecond
	cfg.Threshold = 100000 // always < threshold ⇒ counts always answered
	cfg.Requests = 8
	cfg.RequestSpacing = 40 * sim.Millisecond
	cfg.ProcessCost = sim.Millisecond
	cfg.Link.MaxDelay = 30 * sim.Millisecond
	// Clients sit at varying distances from the ordering service, so the
	// decided order genuinely races across runs.
	cfg.Sequencer.SubmitDelay.MaxDelay = 40 * sim.Millisecond
	return cfg
}

func TestRunIngestsEverythingEverywhere(t *testing.T) {
	for _, regime := range []Regime{Uncoordinated, Ordered, Sealed} {
		t.Run(regime.String(), func(t *testing.T) {
			res, err := Run(testConfig(1, regime, false))
			if err != nil {
				t.Fatal(err)
			}
			want := 3 * 60
			for i, n := range res.LogSizes {
				if n != want {
					t.Errorf("replica %d log = %d, want %d", i, n, want)
				}
			}
			if res.Series.Final() != want {
				t.Errorf("series final = %d, want %d", res.Series.Final(), want)
			}
			if res.Held != 0 {
				t.Errorf("%d requests still held", res.Held)
			}
		})
	}
}

func TestSeriesMonotone(t *testing.T) {
	res, err := Run(testConfig(2, Sealed, false))
	if err != nil {
		t.Fatal(err)
	}
	prev := Point{}
	for _, p := range res.Series {
		if p.At < prev.At || p.Records < prev.Records {
			t.Fatalf("series not monotone: %v after %v", p, prev)
		}
		prev = p
	}
	if res.Series.At(0) != 0 {
		t.Error("series should start at zero")
	}
	if res.Series.At(res.FinishedAt) != res.Series.Final() {
		t.Error("series at FinishedAt should equal final")
	}
}

// TestUncoordinatedExhibitsCrossInstanceND: the paper "confirmed by
// observation that certain queries posed to multiple reporting server
// replicas returned inconsistent results" — we observe the same.
func TestUncoordinatedExhibitsCrossInstanceND(t *testing.T) {
	saw := false
	for seed := int64(1); seed <= 12 && !saw; seed++ {
		res, err := Run(testConfig(seed, Uncoordinated, false))
		if err != nil {
			t.Fatal(err)
		}
		if d := CrossInstanceDiff(res, 3); d != "" {
			saw = true
		}
	}
	if !saw {
		t.Error("no cross-instance disagreement across 12 seeds; the Inst anomaly should be observable")
	}
}

// TestOrderedRemovesCrossInstanceND: dynamic ordering (M2) makes replicas
// agree within a run.
func TestOrderedRemovesCrossInstanceND(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		res, err := Run(testConfig(seed, Ordered, false))
		if err != nil {
			t.Fatal(err)
		}
		if d := CrossInstanceDiff(res, 3); d != "" {
			t.Fatalf("seed %d: replicas disagree under ordering: %s", seed, d)
		}
	}
}

// TestOrderedStillExhibitsCrossRunND: M2 decides a fresh order each run, so
// answers can differ across runs (Figure 5: Run is only prevented by M1 or
// confluence).
func TestOrderedStillExhibitsCrossRunND(t *testing.T) {
	base, err := Run(testConfig(1, Ordered, false))
	if err != nil {
		t.Fatal(err)
	}
	saw := false
	for seed := int64(2); seed <= 12 && !saw; seed++ {
		res, err := Run(testConfig(seed, Ordered, false))
		if err != nil {
			t.Fatal(err)
		}
		if d := CrossRunDiff(base, res, 3); d != "" {
			saw = true
		}
	}
	if !saw {
		t.Error("ordered runs identical across 12 seeds; M2 should leave cross-run nondeterminism")
	}
}

// TestSealedDeterministicEverywhere: the seal strategy removes all
// nondeterminism: replicas agree, runs agree, and answers equal the ground
// truth computed directly from the workload.
func TestSealedDeterministicEverywhere(t *testing.T) {
	cfg := testConfig(1, Sealed, false)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := CrossInstanceDiff(base, 3); d != "" {
		t.Fatalf("replicas disagree under sealing: %s", d)
	}
	truth := GroundTruth(cfg.Workload, cfg.Workload.RequestPlan(cfg.Requests, cfg.RequestSpacing), cfg.Threshold)
	if d := diffTables(AnswerTable(base, 0), truth); d != "" {
		t.Fatalf("sealed answers differ from ground truth: %s", d)
	}
	for seed := int64(2); seed <= 6; seed++ {
		cfg2 := cfg
		cfg2.Seed = seed
		res, err := Run(cfg2)
		if err != nil {
			t.Fatal(err)
		}
		if d := CrossRunDiff(base, res, 3); d != "" {
			t.Fatalf("seed %d: sealed runs differ: %s", seed, d)
		}
	}
}

// TestIndependentSealAlsoDeterministic: the Figure 14 variant.
func TestIndependentSealAlsoDeterministic(t *testing.T) {
	cfg := testConfig(3, Sealed, true)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := CrossInstanceDiff(res, 3); d != "" {
		t.Fatalf("replicas disagree under independent seals: %s", d)
	}
	truth := GroundTruth(cfg.Workload, cfg.Workload.RequestPlan(cfg.Requests, cfg.RequestSpacing), cfg.Threshold)
	if d := diffTables(AnswerTable(res, 0), truth); d != "" {
		t.Fatalf("independent-seal answers differ from ground truth: %s", d)
	}
}

// TestRegistryLookupsOnePerCampaignPerReplica: the sealing protocol pays
// exactly one registry call per campaign per consumer (Section VIII-B3).
func TestRegistryLookupsOnePerCampaignPerReplica(t *testing.T) {
	cfg := testConfig(4, Sealed, false)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Workload.Campaigns * cfg.Replicas
	if res.RegistryLookups != want {
		t.Errorf("lookups = %d, want %d (campaigns × replicas)", res.RegistryLookups, want)
	}
}

// TestSealedTracksUncoordinatedOrderedLagsBehind: the headline Figure 12/13
// relationship — sealing costs little over the uncoordinated baseline while
// ordering is substantially slower.
func TestSealedTracksUncoordinatedOrderedLagsBehind(t *testing.T) {
	un, err := Run(testConfig(5, Uncoordinated, false))
	if err != nil {
		t.Fatal(err)
	}
	sl, err := Run(testConfig(5, Sealed, false))
	if err != nil {
		t.Fatal(err)
	}
	or, err := Run(testConfig(5, Ordered, false))
	if err != nil {
		t.Fatal(err)
	}
	if or.FinishedAt < 2*un.FinishedAt {
		t.Errorf("ordered (%v) should be well behind uncoordinated (%v)", or.FinishedAt, un.FinishedAt)
	}
	if sl.FinishedAt > 2*un.FinishedAt {
		t.Errorf("sealed (%v) should closely track uncoordinated (%v)", sl.FinishedAt, un.FinishedAt)
	}
	if or.FinishedAt < sl.FinishedAt {
		t.Errorf("ordered (%v) should be slower than sealed (%v)", or.FinishedAt, sl.FinishedAt)
	}
}

// TestIndependentSealLowerLatency: with one producer per partition a single
// punctuation releases it, so the release lag behind the partition's last
// data record is small; the non-independent variant waits for the slowest
// producer's vote (the step shape of Figure 14).
func TestIndependentSealLowerLatency(t *testing.T) {
	ind, err := Run(testConfig(6, Sealed, true))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Run(testConfig(6, Sealed, false))
	if err != nil {
		t.Fatal(err)
	}
	li, ld := ind.AvgBufferTime(), dep.AvgBufferTime()
	if li >= ld {
		t.Errorf("independent-seal buffering (%v) should be below the unanimous-vote buffering (%v)", li, ld)
	}
}

// TestOrderedSlowdownSuperlinearInServers: doubling ad servers should more
// than double coordinated processing time (the paper observed 3×) while
// barely moving the uncoordinated baseline.
func TestOrderedSlowdownSuperlinearInServers(t *testing.T) {
	small := testConfig(7, Ordered, false)
	big := testConfig(7, Ordered, false)
	big.Workload.AdServers = 6 // 2× the servers ⇒ 2× the records

	resSmall, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	resBig, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(resBig.FinishedAt) / float64(resSmall.FinishedAt)
	if ratio < 1.8 {
		t.Errorf("ordered slowdown ratio = %.2f, want ≥ 1.8 on 2× servers", ratio)
	}

	unSmall, err := Run(testConfig(7, Uncoordinated, false))
	if err != nil {
		t.Fatal(err)
	}
	bigUn := testConfig(7, Uncoordinated, false)
	bigUn.Workload.AdServers = 6
	unBig, err := Run(bigUn)
	if err != nil {
		t.Fatal(err)
	}
	unRatio := float64(unBig.FinishedAt) / float64(unSmall.FinishedAt)
	if unRatio > ratio {
		t.Errorf("uncoordinated slowdown (%.2f) should be below ordered slowdown (%.2f)", unRatio, ratio)
	}
}

// TestRunPOORQueryRegimes: the POOR query behaves like CAMPAIGN at runtime
// (the difference is analytical: no seal key matches its gate — see the
// dataflow tests); here we just confirm the runner supports it.
func TestRunPOORQueryRegimes(t *testing.T) {
	cfg := testConfig(8, Uncoordinated, false)
	cfg.Query = dataflow.POOR
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series.Final() != 3*60 {
		t.Errorf("final = %d", res.Series.Final())
	}
}
