package service

// Sweep coordination: the service side of distributed verification. A
// submitted sweep is planned once (verify.PlanCheck per workload), laid
// out as claimable seed-range batches (verify.SweepState), and then any
// number of worker processes — `blazes sweep-worker` — drive the
// claim/run/report loop over plain HTTP. The coordinator itself runs no
// schedules; it merges reported outcomes in seed order, so the assembled
// reports are byte-identical to a single-process verify.Check of the same
// configuration. When a completed cell observed an anomaly and the sweep
// was submitted with shrink, the coordinator delta-debugs the cell in the
// background to a 1-minimal replayable trace artifact.
//
// Sweeps are in-memory only: they are not journaled, and a restart
// forgets them — a sweep is a computation, not state a client was told
// was durable.

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"blazes/strategy"
	"blazes/verify"
)

// DefaultSweepClaimTTL is the batch-claim lease duration when
// Options.SweepClaimTTL is zero: a worker that dies mid-batch has its
// claim re-issued to another worker after this long.
const DefaultSweepClaimTTL = 30 * time.Second

// maxSweeps bounds retained sweeps; submitting beyond it evicts the
// oldest completed sweep (or sheds with 429 when every slot is active).
const maxSweeps = 64

// sweepJob is one submitted sweep: the per-workload check plans, the
// shared batch ledger, and the shrink/finalize bookkeeping. state has its
// own lock; mu guards everything else.
type sweepJob struct {
	id        string
	shrink    bool
	workloads []string
	plans     []*verify.CheckPlan
	// segStart[i] is the index of plans[i]'s first cell in the combined
	// cell list the ledger was built from.
	segStart []int
	state    *verify.SweepState

	mu             sync.Mutex
	pendingShrinks int
	traces         map[int]*verify.Trace // cell index → shrunk trace
	shrinkErrs     []string
	finished       bool
	failure        string
	holds          bool
	reports        []*verify.Report
}

// SweepSubmitRequest starts a distributed sweep over named workloads (the
// whole built-in suite when empty). Workload names resolve like worker
// lookups do: the suite by name, plus "generated-<n>c-s<seed>" topologies.
type SweepSubmitRequest struct {
	Workloads []string `json:"workloads,omitempty"`
	// Seeds is the schedule count per (mechanism, plan) cell; 0 selects
	// the default (64).
	Seeds int `json:"seeds,omitempty"`
	// Sequencing prefers M1 over M2 where ordering is required.
	Sequencing bool `json:"sequencing,omitempty"`
	// Strategy asks synthesis to try the named registered coordination
	// strategy first (see blazes/strategy); unknown names are rejected
	// with 400.
	Strategy string `json:"strategy,omitempty"`
	// Shrink delta-debugs every anomalous cell to a 1-minimal replayable
	// trace once the cell completes.
	Shrink bool `json:"shrink,omitempty"`
	// BatchSize is the max seeds per claimable batch; 0 selects 256.
	BatchSize int `json:"batch_size,omitempty"`
}

// SweepBatch is one claimable unit of work on the wire: the seed range
// plus the full cell, so a worker needs nothing but this message (and
// LookupWorkload) to run it.
type SweepBatch struct {
	ID       int         `json:"id"`
	SeedFrom int         `json:"seed_from"`
	SeedTo   int         `json:"seed_to"`
	Cell     verify.Cell `json:"cell"`
}

// SweepClaimRequest leases up to Max batches to Worker.
type SweepClaimRequest struct {
	Worker string `json:"worker,omitempty"`
	Max    int    `json:"max,omitempty"`
}

// SweepClaimResponse carries the leased batches. Empty Batches with Done
// false means every remaining batch is currently leased — poll again.
type SweepClaimResponse struct {
	Batches []SweepBatch `json:"batches"`
	// Done: every batch has been reported; the worker can exit.
	Done bool `json:"done"`
}

// SweepReportRequest reports one batch's outcomes (one per seed of its
// range, in seed order).
type SweepReportRequest struct {
	Batch    *int             `json:"batch"`
	Outcomes []verify.Outcome `json:"outcomes"`
}

// SweepReportResponse acknowledges a report with overall progress.
type SweepReportResponse struct {
	SeedsDone  int `json:"seeds_done"`
	SeedsTotal int `json:"seeds_total"`
	// Done: every batch has been reported (shrinking may still be
	// running; poll the status endpoint for the final report).
	Done bool `json:"done"`
}

// SweepStatus is the status document for one sweep. Holds, Reports and
// Traces appear once State is "complete".
type SweepStatus struct {
	Sweep          string   `json:"sweep"`
	State          string   `json:"state"` // running | shrinking | complete
	Workloads      []string `json:"workloads"`
	Cells          int      `json:"cells"`
	Batches        int      `json:"batches"`
	SeedsDone      int      `json:"seeds_done"`
	SeedsTotal     int      `json:"seeds_total"`
	Shrink         bool     `json:"shrink,omitempty"`
	PendingShrinks int      `json:"pending_shrinks,omitempty"`

	Holds   *bool            `json:"holds,omitempty"`
	Reports []*verify.Report `json:"reports,omitempty"`
	Traces  []*verify.Trace  `json:"traces,omitempty"`
	// ShrinkErrors lists cells whose shrink failed (the sweep still
	// completes; the anomaly is in the cell's report either way).
	ShrinkErrors []string `json:"shrink_errors,omitempty"`
	// Error marks a sweep that could not be finalized.
	Error string `json:"error,omitempty"`
}

// SweepListResponse is the sweep index.
type SweepListResponse struct {
	Sweeps []SweepStatus `json:"sweeps"`
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.available(w, false) {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	start := time.Now()

	var req SweepSubmitRequest
	if !decodeOptionalBody(w, r, &req) {
		return
	}
	if req.Seeds < 0 {
		writeError(w, http.StatusBadRequest, "seeds must be non-negative")
		return
	}
	if req.BatchSize < 0 {
		writeError(w, http.StatusBadRequest, "batch_size must be non-negative")
		return
	}
	if err := strategy.Validate(req.Strategy); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	names := req.Workloads
	if len(names) == 0 {
		for _, wl := range verify.Workloads() {
			names = append(names, wl.Name())
		}
	}

	job := &sweepJob{shrink: req.Shrink, traces: map[int]*verify.Trace{}}
	opts := verify.Options{Seeds: req.Seeds, PreferSequencing: req.Sequencing, Strategy: req.Strategy}
	var cells []verify.Cell
	for _, name := range names {
		wl, err := verify.LookupWorkload(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		plan, err := verify.PlanCheck(wl, opts)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "plan %s: %v", name, err)
			return
		}
		job.workloads = append(job.workloads, wl.Name())
		job.segStart = append(job.segStart, len(cells))
		job.plans = append(job.plans, plan)
		cells = append(cells, plan.Cells...)
	}
	job.state = verify.NewSweepState(cells, req.BatchSize, s.sweepTTL.Milliseconds())

	s.sweepMu.Lock()
	if len(s.sweeps) >= maxSweeps {
		evicted := false
		for i, id := range s.sweepOrder {
			j := s.sweeps[id]
			j.mu.Lock()
			done := j.finished
			j.mu.Unlock()
			if done {
				delete(s.sweeps, id)
				s.sweepOrder = append(s.sweepOrder[:i], s.sweepOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			s.sweepMu.Unlock()
			writeError(w, http.StatusTooManyRequests, "too many active sweeps (%d); wait for one to complete", maxSweeps)
			return
		}
	}
	s.nextSweepID++
	job.id = fmt.Sprintf("sw%d", s.nextSweepID)
	s.sweeps[job.id] = job
	s.sweepOrder = append(s.sweepOrder, job.id)
	s.sweepMu.Unlock()

	s.sweepsSubmitted.Add(1)
	s.sweepLat.observe(time.Since(start))
	writeJSON(w, http.StatusCreated, job.status())
}

// sweepByID resolves a sweep or writes the 404.
func (s *Server) sweepByID(w http.ResponseWriter, id string) (*sweepJob, bool) {
	s.sweepMu.Lock()
	job, ok := s.sweeps[id]
	s.sweepMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", id)
	}
	return job, ok
}

func (s *Server) handleSweepClaim(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sweepByID(w, r.PathValue("id"))
	if !ok {
		return
	}
	var req SweepClaimRequest
	if !decodeOptionalBody(w, r, &req) {
		return
	}
	worker := req.Worker
	if worker == "" {
		worker = r.RemoteAddr
	}
	claimed := job.state.Claim(time.Now().UnixMilli(), worker, req.Max)
	s.sweepBatchesClaimed.Add(uint64(len(claimed)))
	resp := SweepClaimResponse{Batches: []SweepBatch{}, Done: job.state.Done()}
	cells := job.state.Cells()
	for _, b := range claimed {
		resp.Batches = append(resp.Batches, SweepBatch{ID: b.ID, SeedFrom: b.SeedFrom, SeedTo: b.SeedTo, Cell: cells[b.Cell]})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSweepReport(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sweepByID(w, r.PathValue("id"))
	if !ok {
		return
	}
	var req SweepReportRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Batch == nil {
		writeError(w, http.StatusBadRequest, "batch is required")
		return
	}
	cellDone, err := job.state.Report(*req.Batch, req.Outcomes)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.sweepBatchesReported.Add(1)

	job.mu.Lock()
	if cellDone >= 0 && job.shrink && !job.finished {
		cell := job.state.Cells()[cellDone]
		if outs, err := job.state.CellOutcomes(cellDone); err == nil && verify.FoldCell(cell, outs).Observed.Any() {
			job.pendingShrinks++
			go s.shrinkSweepCell(job, cellDone, cell, outs)
		}
	}
	s.finalizeSweepLocked(job)
	job.mu.Unlock()

	done, total := job.state.Progress()
	writeJSON(w, http.StatusOK, SweepReportResponse{SeedsDone: done, SeedsTotal: total, Done: job.state.Done()})
}

// shrinkSweepCell delta-debugs one anomalous completed cell in the
// background; the sweep finalizes once every pending shrink lands.
func (s *Server) shrinkSweepCell(job *sweepJob, cellIdx int, cell verify.Cell, outcomes []verify.Outcome) {
	wl, err := verify.LookupWorkload(cell.Workload)
	var tr *verify.Trace
	if err == nil {
		tr, err = verify.ShrinkCell(context.Background(), wl, cell, outcomes)
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	job.pendingShrinks--
	if err != nil {
		job.shrinkErrs = append(job.shrinkErrs, fmt.Sprintf("cell %d (%s under %s/%s): %v",
			cellIdx, cell.Workload, cell.Mechanism, cell.Plan.Name, err))
	} else {
		job.traces[cellIdx] = tr
		s.sweepTracesShrunk.Add(1)
	}
	s.finalizeSweepLocked(job)
}

// finalizeSweepLocked assembles the final reports once every batch is
// reported and every background shrink has landed. Caller holds job.mu.
func (s *Server) finalizeSweepLocked(job *sweepJob) {
	if job.finished || job.pendingShrinks > 0 || !job.state.Done() {
		return
	}
	job.finished = true
	sort.Strings(job.shrinkErrs)
	sweeps, err := job.state.Sweeps()
	if err != nil {
		job.failure = err.Error()
		s.sweepsCompleted.Add(1)
		return
	}
	holds := true
	for pi, plan := range job.plans {
		seg := sweeps[job.segStart[pi] : job.segStart[pi]+len(plan.Cells)]
		rep, err := plan.Assemble(seg)
		if err != nil {
			job.failure = err.Error()
			s.sweepsCompleted.Add(1)
			return
		}
		job.reports = append(job.reports, rep)
		holds = holds && rep.Holds
	}
	job.holds = holds
	s.sweepsCompleted.Add(1)
}

// status snapshots the sweep for the wire.
func (j *sweepJob) status() SweepStatus {
	done, total := j.state.Progress()
	j.mu.Lock()
	defer j.mu.Unlock()
	st := SweepStatus{
		Sweep:          j.id,
		Workloads:      j.workloads,
		Cells:          len(j.state.Cells()),
		Batches:        j.state.Batches(),
		SeedsDone:      done,
		SeedsTotal:     total,
		Shrink:         j.shrink,
		PendingShrinks: j.pendingShrinks,
	}
	switch {
	case j.finished:
		st.State = "complete"
		st.Error = j.failure
		if j.failure == "" {
			holds := j.holds
			st.Holds = &holds
			st.Reports = j.reports
		}
		st.ShrinkErrors = j.shrinkErrs
		cellIdxs := make([]int, 0, len(j.traces))
		for c := range j.traces {
			cellIdxs = append(cellIdxs, c)
		}
		sort.Ints(cellIdxs)
		for _, c := range cellIdxs {
			st.Traces = append(st.Traces, j.traces[c])
		}
	case j.state.Done():
		st.State = "shrinking"
	default:
		st.State = "running"
	}
	return st
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sweepByID(w, r.PathValue("id"))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	s.sweepMu.Lock()
	jobs := make([]*sweepJob, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		jobs = append(jobs, s.sweeps[id])
	}
	s.sweepMu.Unlock()
	resp := SweepListResponse{Sweeps: []SweepStatus{}}
	for _, j := range jobs {
		st := j.status()
		// The index stays light: reports and traces are status-endpoint
		// payloads.
		st.Reports, st.Traces = nil, nil
		resp.Sweeps = append(resp.Sweeps, st)
	}
	writeJSON(w, http.StatusOK, resp)
}
