// Command blazes analyzes an annotated dataflow specification (the paper's
// "grey box" input, Figure 1): it derives stream labels, reports the
// consistency verdict, and synthesizes the cheapest safe coordination
// strategy.
//
// Usage:
//
//	blazes -spec internal/spec/testdata/wordcount.blazes -explain
//	blazes -spec internal/spec/testdata/adreport.blazes \
//	       -variant Report=CAMPAIGN -seal clicks=campaign -synthesize
//	blazes -spec internal/spec/testdata/wordcount.blazes -seal tweets=batch -json
//
// Flags:
//
//	-spec file        the Blazes configuration file (annotations + topology)
//	-variant C=V      select a named annotation variant for component C
//	-seal S=a+b       annotate stream S with Seal on attributes a,b
//	-explain          print the full derivation tree
//	-synthesize       print synthesized coordination strategies
//	-repair           apply strategies and re-analyze to a fixpoint
//	-sequencing       prefer M1 sequencing over M2 dynamic ordering
//	-json             emit the analysis as a machine-readable Report
//	                  (mutually exclusive with -explain: the report
//	                  already carries the full derivation)
//
// Exit codes:
//
//	0  analysis completed (whatever the verdict)
//	1  the spec failed to load or the analysis failed
//	2  usage error: bad flag syntax, unknown stream, component or variant
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"

	"blazes"
)

const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		specPath   = flag.String("spec", "", "Blazes configuration file")
		explain    = flag.Bool("explain", false, "print the full derivation")
		synthesize = flag.Bool("synthesize", false, "print synthesized strategies")
		repair     = flag.Bool("repair", false, "apply strategies and re-analyze to a fixpoint")
		sequencing = flag.Bool("sequencing", false, "prefer M1 sequencing when ordering is needed")
		jsonOut    = flag.Bool("json", false, "emit a machine-readable Report (JSON)")
		variants   multiFlag
		seals      multiFlag
	)
	flag.Var(&variants, "variant", "Component=Variant annotation selection (repeatable)")
	flag.Var(&seals, "seal", "stream=attr+attr seal annotation (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: blazes -spec file [flags]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), `
exit codes:
  0  analysis completed (whatever the verdict)
  1  the spec failed to load or the analysis failed
  2  usage error: bad flag syntax, unknown stream, component or variant
`)
	}
	flag.Parse()

	if *specPath == "" {
		usageError("-spec is required")
	}
	if flag.NArg() > 0 {
		usageError("unexpected arguments: %s", strings.Join(flag.Args(), " "))
	}
	if *explain && *jsonOut {
		usageError("-explain cannot be combined with -json (the report already carries the full derivation)")
	}

	spec, err := blazes.LoadSpec(*specPath)
	if err != nil {
		fatal(err)
	}

	var opts []blazes.Option
	if *sequencing {
		opts = append(opts, blazes.PreferSequencing())
	}
	for _, v := range variants {
		comp, variant, ok := strings.Cut(v, "=")
		if !ok || comp == "" || variant == "" {
			usageError("bad -variant %q (want Component=Variant)", v)
		}
		known, exists := spec.Variants(comp)
		if !exists {
			usageError("-variant %s: unknown component %q (components: %s)",
				v, comp, strings.Join(spec.Components(), ", "))
		}
		if !slices.Contains(known, variant) {
			usageError("-variant %s: component %q has no variant %q (variants: %s)",
				v, comp, variant, strings.Join(known, ", "))
		}
		opts = append(opts, blazes.WithVariant(comp, variant))
	}
	knownStreams := spec.Streams()
	for _, s := range seals {
		stream, attrs, ok := strings.Cut(s, "=")
		if !ok || stream == "" || attrs == "" {
			usageError("bad -seal %q (want stream=attr+attr)", s)
		}
		if !slices.Contains(knownStreams, stream) {
			usageError("-seal %s: unknown stream %q (streams: %s)",
				s, stream, strings.Join(knownStreams, ", "))
		}
		key := strings.Split(attrs, "+")
		for _, attr := range key {
			if attr == "" {
				usageError("bad -seal %q: empty attribute name (want stream=attr+attr)", s)
			}
		}
		opts = append(opts, blazes.WithSealRepair(stream, key...))
	}

	g, err := spec.Graph(blazes.SpecName(*specPath), opts...)
	if err != nil {
		fatal(err)
	}

	analyzer := blazes.NewAnalyzer(opts...)
	// JSON mode with -repair emits only the fixpoint report; skip the
	// pre-repair analysis that would otherwise be discarded.
	var res *blazes.Result
	if !*jsonOut || !*repair {
		if *synthesize {
			res, err = analyzer.Synthesize(g)
		} else {
			res, err = analyzer.Analyze(g)
		}
		if err != nil {
			fatal(err)
		}
	}
	var fixpoint *blazes.Result
	if *repair {
		if fixpoint, err = analyzer.Repair(g); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		// One report: the repair fixpoint when -repair is set (marked
		// "repaired": true), otherwise the input analysis.
		final := res
		if fixpoint != nil {
			final = fixpoint
		}
		out, err := final.Report().MarshalIndent()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		os.Exit(exitOK)
	}

	if *explain {
		fmt.Println(res.Explain())
	} else {
		fmt.Printf("verdict: %s (deterministic: %v)\n", res.Verdict(), res.Deterministic())
	}
	if *synthesize {
		for _, st := range res.Strategies() {
			fmt.Printf("strategy: %s\n  reason: %s\n", st, st.Reason)
		}
	}
	if fixpoint != nil {
		// Repair reports the strategies it applied, exactly once, with the
		// post-repair verdict.
		for _, st := range fixpoint.Strategies() {
			fmt.Printf("applied: %s\n  reason: %s\n", st, st.Reason)
		}
		fmt.Printf("after repair (%d strategies): verdict %s (deterministic: %v)\n",
			len(fixpoint.Strategies()), fixpoint.Verdict(), fixpoint.Deterministic())
	}
	os.Exit(exitOK)
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "blazes: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(exitUsage)
}

func fatal(err error) {
	// Public-API errors already carry the "blazes: " prefix.
	fmt.Fprintln(os.Stderr, "blazes:", strings.TrimPrefix(err.Error(), "blazes: "))
	os.Exit(exitError)
}
