package bloom

import (
	"fmt"
	"sort"
)

// Expr is a relational-algebra expression over the module's collections.
// The AST is deliberately structural (no opaque functions) so the white-box
// analyzer can classify monotonicity, extract partition subscripts, and
// trace column lineage.
//
// Each expression carries two evaluation paths: the interpretive eval below
// (the reference evaluator — it re-resolves schemas on every call and is
// what seminaive_test.go's differential harness runs), and a compiled
// counterpart in compile.go that Node.Tick actually executes after NewNode
// resolves all schemas and column offsets once.
type Expr interface {
	// Schema returns the expression's output columns.
	Schema(m *Module) (Schema, error)
	// eval computes the rows under the given state reader (reference path).
	eval(m *Module, st stateReader) ([]Row, error)
	// reads lists the collections the expression scans.
	reads() []string
}

// stateReader supplies collection contents during reference evaluation.
type stateReader interface {
	rowsOf(name string) []Row
}

// ScanExpr reads a collection.
type ScanExpr struct{ Name string }

// Scan reads every row of the named collection.
func Scan(name string) *ScanExpr { return &ScanExpr{Name: name} }

// Schema implements Expr.
func (e *ScanExpr) Schema(m *Module) (Schema, error) {
	c := m.Collection(e.Name)
	if c == nil {
		return nil, fmt.Errorf("bloom: scan of unknown collection %q", e.Name)
	}
	return c.Schema, nil
}

func (e *ScanExpr) eval(_ *Module, st stateReader) ([]Row, error) { return st.rowsOf(e.Name), nil }
func (e *ScanExpr) reads() []string                               { return []string{e.Name} }

// ColSpec projects one output column: either a copy of an input column
// (identity lineage — injective) or a constant.
type ColSpec struct {
	// From is the source column name (identity projection) when non-empty.
	From string
	// As is the output column name; defaults to From.
	As string
	// Const is the constant value when From is empty.
	Const Val
}

// Col projects column name unchanged.
func Col(name string) ColSpec { return ColSpec{From: name, As: name} }

// ColAs projects column from under a new name.
func ColAs(from, as string) ColSpec { return ColSpec{From: from, As: as} }

// ConstCol emits a constant column.
func ConstCol(as string, v Val) ColSpec { return ColSpec{As: as, Const: v} }

func (c ColSpec) out() string {
	if c.As != "" {
		return c.As
	}
	return c.From
}

// ProjectExpr projects/renames columns.
type ProjectExpr struct {
	Input Expr
	Cols  []ColSpec
}

// Project applies a projection.
func Project(input Expr, cols ...ColSpec) *ProjectExpr {
	return &ProjectExpr{Input: input, Cols: cols}
}

// Schema implements Expr.
func (e *ProjectExpr) Schema(m *Module) (Schema, error) {
	in, err := e.Input.Schema(m)
	if err != nil {
		return nil, err
	}
	out := make(Schema, len(e.Cols))
	for i, c := range e.Cols {
		if c.From != "" && !in.Contains(c.From) {
			return nil, fmt.Errorf("bloom: project references unknown column %q (have %v)", c.From, in)
		}
		out[i] = c.out()
	}
	if err := checkNoDupCols(out, "project"); err != nil {
		return nil, err
	}
	return out, nil
}

func (e *ProjectExpr) eval(m *Module, st stateReader) ([]Row, error) {
	in, err := e.Input.Schema(m)
	if err != nil {
		return nil, err
	}
	rows, err := e.Input.eval(m, st)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(e.Cols))
	for i, c := range e.Cols {
		if c.From != "" {
			idx[i] = in.IndexOf(c.From)
		} else {
			idx[i] = -1
		}
	}
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		nr := make(Row, len(e.Cols))
		for i, c := range e.Cols {
			if idx[i] >= 0 {
				nr[i] = r[idx[i]]
			} else {
				nr[i] = c.Const
			}
		}
		out = append(out, nr)
	}
	return dedup(out), nil
}

func (e *ProjectExpr) reads() []string { return e.Input.reads() }

// CmpOp is a comparison operator for selections and having clauses.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	default:
		return ">="
	}
}

func (op CmpOp) apply(a, b Val) bool {
	c := compareVals(a, b)
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	default:
		return c >= 0
	}
}

// Pred is a structural predicate comparing a column with a constant.
type Pred struct {
	Col   string
	Op    CmpOp
	Const Val
}

// Where builds a predicate.
func Where(col string, op CmpOp, v Val) Pred { return Pred{Col: col, Op: op, Const: v} }

// SelectExpr filters rows by conjunctive predicates.
type SelectExpr struct {
	Input Expr
	Preds []Pred
}

// Select filters rows.
func Select(input Expr, preds ...Pred) *SelectExpr {
	return &SelectExpr{Input: input, Preds: preds}
}

// Schema implements Expr.
func (e *SelectExpr) Schema(m *Module) (Schema, error) { return e.Input.Schema(m) }

func (e *SelectExpr) eval(m *Module, st stateReader) ([]Row, error) {
	in, err := e.Input.Schema(m)
	if err != nil {
		return nil, err
	}
	rows, err := e.Input.eval(m, st)
	if err != nil {
		return nil, err
	}
	for _, p := range e.Preds {
		if !in.Contains(p.Col) {
			return nil, fmt.Errorf("bloom: select references unknown column %q", p.Col)
		}
	}
	var out []Row
	for _, r := range rows {
		ok := true
		for _, p := range e.Preds {
			if !p.Op.apply(r[in.IndexOf(p.Col)], p.Const) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

func (e *SelectExpr) reads() []string { return e.Input.reads() }

// JoinExpr is an equijoin. Output schema is the left schema followed by the
// right columns not used as join keys (natural-join style), so identity
// lineage is preserved for every surviving column.
type JoinExpr struct {
	Left, Right Expr
	// On pairs left and right join columns.
	On [][2]string
}

// Join builds an equijoin; on entries are {leftCol, rightCol}.
func Join(left, right Expr, on ...[2]string) *JoinExpr {
	return &JoinExpr{Left: left, Right: right, On: on}
}

// Schema implements Expr.
func (e *JoinExpr) Schema(m *Module) (Schema, error) {
	ls, err := e.Left.Schema(m)
	if err != nil {
		return nil, err
	}
	rs, err := e.Right.Schema(m)
	if err != nil {
		return nil, err
	}
	rightKey := map[string]bool{}
	for _, p := range e.On {
		if !ls.Contains(p[0]) {
			return nil, fmt.Errorf("bloom: join key %q missing from left schema %v", p[0], ls)
		}
		if !rs.Contains(p[1]) {
			return nil, fmt.Errorf("bloom: join key %q missing from right schema %v", p[1], rs)
		}
		rightKey[p[1]] = true
	}
	out := append(Schema{}, ls...)
	for _, c := range rs {
		if rightKey[c] {
			continue
		}
		if out.Contains(c) {
			return nil, fmt.Errorf("bloom: join would duplicate column %q; rename one side", c)
		}
		out = append(out, c)
	}
	return out, nil
}

func (e *JoinExpr) eval(m *Module, st stateReader) ([]Row, error) {
	ls, err := e.Left.Schema(m)
	if err != nil {
		return nil, err
	}
	rs, err := e.Right.Schema(m)
	if err != nil {
		return nil, err
	}
	if _, err := e.Schema(m); err != nil {
		return nil, err
	}
	lrows, err := e.Left.eval(m, st)
	if err != nil {
		return nil, err
	}
	rrows, err := e.Right.eval(m, st)
	if err != nil {
		return nil, err
	}
	rightKey := map[string]bool{}
	var lk, rk []int
	for _, p := range e.On {
		lk = append(lk, ls.IndexOf(p[0]))
		rk = append(rk, rs.IndexOf(p[1]))
		rightKey[p[1]] = true
	}
	// Hash the right side on its key.
	idx := map[string][]Row{}
	for _, r := range rrows {
		idx[joinKey(r, rk)] = append(idx[joinKey(r, rk)], r)
	}
	var keep []int
	for i, c := range rs {
		if !rightKey[c] {
			keep = append(keep, i)
		}
	}
	var out []Row
	for _, l := range lrows {
		for _, r := range idx[joinKey(l, lk)] {
			nr := make(Row, 0, len(l)+len(keep))
			nr = append(nr, l...)
			for _, i := range keep {
				nr = append(nr, r[i])
			}
			out = append(out, nr)
		}
	}
	return dedup(out), nil
}

func (e *JoinExpr) reads() []string { return append(e.Left.reads(), e.Right.reads()...) }

func joinKey(r Row, idx []int) string {
	k := make(Row, len(idx))
	for i, j := range idx {
		k[i] = r[j]
	}
	return k.key()
}

// AntiJoinExpr emits left rows with no matching right row (SQL NOT IN) —
// a nonmonotonic operation: growing the right side can retract outputs.
type AntiJoinExpr struct {
	Left, Right Expr
	On          [][2]string
}

// AntiJoin builds the nonmonotonic not-in operator.
func AntiJoin(left, right Expr, on ...[2]string) *AntiJoinExpr {
	return &AntiJoinExpr{Left: left, Right: right, On: on}
}

// Schema implements Expr (left schema).
func (e *AntiJoinExpr) Schema(m *Module) (Schema, error) { return e.Left.Schema(m) }

func (e *AntiJoinExpr) eval(m *Module, st stateReader) ([]Row, error) {
	ls, err := e.Left.Schema(m)
	if err != nil {
		return nil, err
	}
	rs, err := e.Right.Schema(m)
	if err != nil {
		return nil, err
	}
	lrows, err := e.Left.eval(m, st)
	if err != nil {
		return nil, err
	}
	rrows, err := e.Right.eval(m, st)
	if err != nil {
		return nil, err
	}
	var lk, rk []int
	for _, p := range e.On {
		li, ri := ls.IndexOf(p[0]), rs.IndexOf(p[1])
		if li < 0 || ri < 0 {
			return nil, fmt.Errorf("bloom: antijoin key %v missing", p)
		}
		lk = append(lk, li)
		rk = append(rk, ri)
	}
	present := map[string]bool{}
	for _, r := range rrows {
		present[joinKey(r, rk)] = true
	}
	var out []Row
	for _, l := range lrows {
		if !present[joinKey(l, lk)] {
			out = append(out, l)
		}
	}
	return out, nil
}

func (e *AntiJoinExpr) reads() []string { return append(e.Left.reads(), e.Right.reads()...) }

// AggFunc is an aggregate function.
type AggFunc int

// Aggregate functions.
const (
	Count AggFunc = iota
	Sum
	Min
	Max
)

func (f AggFunc) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	default:
		return "max"
	}
}

// Agg is one aggregate column.
type Agg struct {
	Func AggFunc
	// Col is the aggregated column (ignored for Count).
	Col string
	// As names the output column.
	As string
}

// GroupByExpr groups on key columns and computes aggregates — a
// nonmonotonic operation: aggregate values change as inputs grow.
type GroupByExpr struct {
	Input Expr
	Keys  []string
	Aggs  []Agg
	// Having filters groups after aggregation (on key or agg columns).
	Having []Pred
}

// GroupBy builds an aggregation.
func GroupBy(input Expr, keys []string, aggs ...Agg) *GroupByExpr {
	return &GroupByExpr{Input: input, Keys: keys, Aggs: aggs}
}

// WithHaving adds group filters.
func (e *GroupByExpr) WithHaving(preds ...Pred) *GroupByExpr {
	e.Having = append(e.Having, preds...)
	return e
}

// Schema implements Expr: keys then aggregate columns.
func (e *GroupByExpr) Schema(m *Module) (Schema, error) {
	in, err := e.Input.Schema(m)
	if err != nil {
		return nil, err
	}
	out := make(Schema, 0, len(e.Keys)+len(e.Aggs))
	for _, k := range e.Keys {
		if !in.Contains(k) {
			return nil, fmt.Errorf("bloom: group key %q missing from %v", k, in)
		}
		out = append(out, k)
	}
	for _, a := range e.Aggs {
		if a.Func != Count && !in.Contains(a.Col) {
			return nil, fmt.Errorf("bloom: aggregate column %q missing from %v", a.Col, in)
		}
		out = append(out, a.As)
	}
	if err := checkNoDupCols(out, "group by"); err != nil {
		return nil, err
	}
	return out, nil
}

func (e *GroupByExpr) eval(m *Module, st stateReader) ([]Row, error) {
	in, err := e.Input.Schema(m)
	if err != nil {
		return nil, err
	}
	outSchema, err := e.Schema(m)
	if err != nil {
		return nil, err
	}
	rows, err := e.Input.eval(m, st)
	if err != nil {
		return nil, err
	}
	keyIdx := make([]int, len(e.Keys))
	for i, k := range e.Keys {
		keyIdx[i] = in.IndexOf(k)
	}
	groups := map[string][]Row{}
	var order []string
	for _, r := range rows {
		k := joinKey(r, keyIdx)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	sort.Strings(order)
	var out []Row
	for _, k := range order {
		grp := groups[k]
		nr := make(Row, 0, len(e.Keys)+len(e.Aggs))
		for _, i := range keyIdx {
			nr = append(nr, grp[0][i])
		}
		for _, a := range e.Aggs {
			nr = append(nr, applyAgg(a, in, grp))
		}
		ok := true
		for _, p := range e.Having {
			i := outSchema.IndexOf(p.Col)
			if i < 0 {
				return nil, fmt.Errorf("bloom: having references unknown column %q", p.Col)
			}
			if !p.Op.apply(nr[i], p.Const) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, nr)
		}
	}
	return out, nil
}

func (e *GroupByExpr) reads() []string { return e.Input.reads() }

func applyAgg(a Agg, in Schema, grp []Row) Val {
	switch a.Func {
	case Count:
		return int64(len(grp))
	case Sum:
		var s int64
		i := in.IndexOf(a.Col)
		for _, r := range grp {
			if v, ok := AsInt(r[i]); ok {
				s += v
			}
		}
		return s
	case Min, Max:
		i := in.IndexOf(a.Col)
		best := grp[0][i]
		for _, r := range grp[1:] {
			c := compareVals(r[i], best)
			if (a.Func == Min && c < 0) || (a.Func == Max && c > 0) {
				best = r[i]
			}
		}
		return best
	default:
		return nil
	}
}

func dedup(rows []Row) []Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		k := r.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}
