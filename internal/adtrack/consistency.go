package adtrack

import (
	"fmt"
	"sort"

	"blazes/internal/bloom"
)

// AnswerTable extracts one replica's answers: reqid → answer value. A
// request whose group fails the having clause produces no row; it is simply
// absent from the table.
func AnswerTable(res *Result, replica int) map[string]string {
	out := map[string]string{}
	for _, r := range res.Responses {
		if r.Replica != replica {
			continue
		}
		// response schema: (id, reqid, answer)
		reqid := bloom.AsString(r.Row[1])
		out[reqid] = bloom.AsString(r.Row[2])
	}
	return out
}

// CrossInstanceDiff compares every replica's answer table against replica
// 0's and returns a description of the first disagreement, or "" when all
// replicas agree — the cross-instance nondeterminism (Inst) detector.
func CrossInstanceDiff(res *Result, replicas int) string {
	base := AnswerTable(res, 0)
	for i := 1; i < replicas; i++ {
		other := AnswerTable(res, i)
		if d := diffTables(base, other); d != "" {
			return fmt.Sprintf("replica 0 vs %d: %s", i, d)
		}
	}
	return ""
}

// CrossRunDiff compares the answer tables of two runs replica by replica —
// the cross-run nondeterminism (Run) detector.
func CrossRunDiff(a, b *Result, replicas int) string {
	for i := 0; i < replicas; i++ {
		if d := diffTables(AnswerTable(a, i), AnswerTable(b, i)); d != "" {
			return fmt.Sprintf("replica %d: %s", i, d)
		}
	}
	return ""
}

func diffTables(a, b map[string]string) string {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	for _, k := range ordered {
		av, aok := a[k]
		bv, bok := b[k]
		if aok != bok {
			return fmt.Sprintf("request %s answered by one side only", k)
		}
		if av != bv {
			return fmt.Sprintf("request %s: %q vs %q", k, av, bv)
		}
	}
	return ""
}

// GroundTruth computes the final per-request answer directly from the
// workload plan: the total (campaign, id) click count if it passes the
// having clause (count < threshold for CAMPAIGN/POOR/WINDOW-style queries),
// absent otherwise. Sealed runs must match it exactly.
func GroundTruth(w Workload, requests []Request, threshold int64) map[string]string {
	counts := map[[2]string]int64{}
	for _, b := range w.Plan() {
		for _, c := range b.Clicks {
			counts[[2]string{c.Campaign, c.ID}]++
		}
	}
	out := map[string]string{}
	for _, req := range requests {
		n := counts[[2]string{req.Campaign, req.ID}]
		if n > 0 && n < threshold {
			out[req.ReqID] = fmt.Sprintf("%d", n)
		}
	}
	return out
}
