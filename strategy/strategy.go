// Package strategy exposes the coordination-strategy registry behind the
// Blazes analyzer. Synthesis (blazes.Analyzer, blazes verify, the analysis
// service) resolves strategies by name through this registry rather than a
// hard-coded switch; every name accepted anywhere in the toolchain — the
// WithStrategy option, the -strategy flag, the Strategy fields of the
// service API — comes from the set reported here, so error messages and
// validation stay in lockstep with what is actually registered.
//
// A strategy plans one coordination mechanism for one component: sealing
// and ordering are the paper's defaults; quorum-ordering, merge-rewrite
// and partition-sealing are registered extensions. New strategies register
// in internal/dataflow with RegisterStrategy and must pass the chaos
// conformance gate (the synthesized graph converges under fault injection,
// the stripped graph demonstrably diverges) before they ship.
package strategy

import "blazes/internal/dataflow"

// Registered strategy names.
const (
	Sealing          = dataflow.StrategySealing
	Ordering         = dataflow.StrategyOrdering
	QuorumOrdering   = dataflow.StrategyQuorumOrdering
	MergeRewrite     = dataflow.StrategyMergeRewrite
	PartitionSealing = dataflow.StrategyPartitionSealing
)

// Info describes one registered strategy.
type Info struct {
	// Name is the registry key, as accepted by blazes.WithStrategy, the
	// verify -strategy flag, and the service Strategy fields.
	Name string
	// Summary is a one-line description of the mechanism and when it
	// applies.
	Summary string
}

// Names returns every registered strategy name, sorted.
func Names() []string { return dataflow.StrategyNames() }

// Validate reports whether name is registered; the error lists the valid
// names. The empty name is valid and means "use the default chain".
func Validate(name string) error {
	if name == "" {
		return nil
	}
	_, err := dataflow.LookupStrategy(name)
	return err
}

// Catalog returns an Info for every registered strategy, in name order.
func Catalog() []Info {
	defs := dataflow.Strategies()
	infos := make([]Info, len(defs))
	for i, d := range defs {
		infos[i] = Info{Name: d.Name(), Summary: d.Summary()}
	}
	return infos
}
