package chaos

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"blazes/internal/sim"
)

// loadCorpus reads the seeded-anomaly corpus: each testdata/anomaly_*.json
// file is one Cell known to exhibit an anomaly, covering hand-built and
// generated workloads, plans with and without injected fault events.
func loadCorpus(t *testing.T) map[string]Cell {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "anomaly_*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no anomaly corpus under testdata/ (err=%v)", err)
	}
	cells := make(map[string]Cell, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("read %s: %v", f, err)
		}
		var cell Cell
		if err := json.Unmarshal(data, &cell); err != nil {
			t.Fatalf("parse %s: %v", f, err)
		}
		cells[filepath.Base(f)] = cell
	}
	return cells
}

// TestShrinkCorpus is the shrinker's acceptance property, over every
// corpus cell:
//
//	(a) the shrunk trace still reproduces its anomaly classification —
//	    checked through the full artifact round trip (encode, decode,
//	    Replay with the workload re-resolved by name);
//	(b) the trace is 1-minimal — removing any single remaining event
//	    (a seed, a delay chunk, the dup toggle, a partition half-window)
//	    no longer reproduces the classification.
func TestShrinkCorpus(t *testing.T) {
	for name, cell := range loadCorpus(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			w, err := LookupWorkload(cell.Workload)
			if err != nil {
				t.Fatalf("LookupWorkload: %v", err)
			}
			tr, err := ShrinkCell(ctx, w, cell, nil)
			if err != nil {
				t.Fatalf("ShrinkCell: %v", err)
			}
			if !tr.Anomalies.Any() {
				t.Fatal("shrunk trace records no anomaly")
			}
			if len(tr.Seeds) == 0 || len(tr.Events) == 0 {
				t.Fatalf("degenerate trace: seeds=%v events=%v", tr.Seeds, tr.Events)
			}
			if len(tr.Events) > len(planEvents(cell.Plan))+cell.Seeds {
				t.Fatalf("trace grew: %d events from a %d-event cell", len(tr.Events), len(planEvents(cell.Plan))+cell.Seeds)
			}

			// (a) replayable after a full artifact round trip.
			data, err := tr.Encode()
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			decoded, err := DecodeTrace(data)
			if err != nil {
				t.Fatalf("DecodeTrace: %v", err)
			}
			res, err := Replay(ctx, decoded)
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if !res.Reproduced {
				t.Fatalf("trace does not reproduce: observed %v, expected %v (%s)", res.Observed, res.Expected, res.Detail)
			}

			// Replay is deterministic: a second replay agrees byte for byte.
			res2, err := Replay(ctx, decoded)
			if err != nil {
				t.Fatalf("Replay (second): %v", err)
			}
			if *res != *res2 {
				t.Fatalf("replay nondeterministic: %+v vs %+v", res, res2)
			}

			// (b) 1-minimality under the shrinker's own predicate.
			sh := &shrinker{w: w, cell: cell, target: tr.Anomalies}
			for i, ev := range tr.Events {
				sub := append(append([]Event{}, tr.Events[:i]...), tr.Events[i+1:]...)
				ok, err := sh.reproduces(ctx, sub)
				if err != nil {
					t.Fatalf("reproduces without %s: %v", ev, err)
				}
				if ok {
					t.Errorf("not 1-minimal: still reproduces without event %d (%s)", i, ev)
				}
			}
		})
	}
}

// TestShrinkRejectsHealthyCell: a cell with no anomaly is not shrinkable.
func TestShrinkRejectsHealthyCell(t *testing.T) {
	cell := Cell{
		Workload:  "synthetic-set",
		Mechanism: "none",
		Plan:      FaultPlan{Name: "baseline"},
		Seeds:     4,
		Confluent: true,
	}
	if _, err := ShrinkCell(context.Background(), SyntheticSet(), cell, nil); err == nil {
		t.Fatal("ShrinkCell accepted an anomaly-free cell")
	}
}

// TestPlanEventsRoundTrip: decomposing a plan and reassembling the full
// event set reconstructs it exactly — the identity ddmin starts from.
func TestPlanEventsRoundTrip(t *testing.T) {
	for _, plan := range DefaultPlans() {
		events := planEvents(plan)
		got, seeds := eventsPlan(plan.Name, events)
		if len(seeds) != 0 {
			t.Errorf("%s: plan events yielded seeds %v", plan.Name, seeds)
		}
		if got.Name != plan.Name || got.DelaySpread != plan.DelaySpread || got.DupProb != plan.DupProb {
			t.Errorf("%s: round trip %+v != %+v", plan.Name, got, plan)
		}
		// Window chunks must tile the original windows exactly.
		var covered sim.Time
		for _, w := range got.Partitions {
			covered += w.Until - w.From
		}
		var want sim.Time
		for _, w := range plan.Partitions {
			want += w.Until - w.From
		}
		if covered != want {
			t.Errorf("%s: partition coverage %v != %v", plan.Name, covered, want)
		}
	}
}

// TestDecodeTraceRejects: version and shape checks on the artifact.
func TestDecodeTraceRejects(t *testing.T) {
	base := &Trace{
		Version:   TraceVersion,
		Workload:  "synthetic-chains",
		Mechanism: "none",
		BasePlan:  "baseline",
		Plan:      FaultPlan{Name: "baseline"},
		Seeds:     []int64{1, 2},
		Anomalies: Anomalies{Run: true},
	}
	ok, err := base.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTrace(ok); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Trace){
		"wrong version":     func(tr *Trace) { tr.Version = "blazes.trace/v0" },
		"unknown mechanism": func(tr *Trace) { tr.Mechanism = "hope" },
		"no seeds":          func(tr *Trace) { tr.Seeds = nil },
	} {
		tr := *base
		mutate(&tr)
		data, err := tr.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeTrace(data); err == nil {
			t.Errorf("%s: DecodeTrace accepted it", name)
		}
	}
	if _, err := DecodeTrace([]byte("not json")); err == nil {
		t.Error("DecodeTrace accepted junk")
	}
}
