// The serve subcommand: the analysis as a long-running HTTP+JSON service
// (blazes/service) hosting concurrent, incrementally re-analyzed sessions.
//
// Usage:
//
//	blazes serve [-addr host:port] [-max-sessions n] [-journal dir] [...]
//
// Flags:
//
//	-addr addr           listen address (default 127.0.0.1:8351; port 0
//	                     picks a free port — the chosen address is printed)
//	-max-sessions n      concurrent session cap; least-recently-used
//	                     sessions are evicted beyond it (default 64)
//	-journal dir         journal every acknowledged mutation to dir and
//	                     replay it on boot (durable mode; default off)
//	-snapshot-every n    journal records between snapshot compactions
//	                     (default 1024; needs -journal)
//	-journal-segment-bytes n  rotate wal segments once they reach n bytes
//	                     (default 0 = rotate only on snapshots; needs -journal)
//	-max-concurrent n    admitted create/mutate/analyze/verify requests
//	                     running at once (default GOMAXPROCS)
//	-max-queue n         requests waiting for admission beyond which the
//	                     server sheds with 429 (default 256)
//	-queue-timeout d     max time a request waits for admission (default 2s)
//	-request-timeout d   per-request deadline on expensive endpoints; 0
//	                     disables (default 1m)
//	-read-header-timeout d  http.Server ReadHeaderTimeout (default 5s)
//	-write-timeout d     http.Server WriteTimeout; 0 disables (default 2m)
//	-idle-timeout d      http.Server IdleTimeout (default 2m)
//
// The server announces itself on stdout ("serving on http://..."), runs
// until SIGINT/SIGTERM, then shuts down gracefully: in-flight requests get
// a drain window and their contexts are cancelled, and in durable mode the
// journal is flushed and closed. Exit codes: 0 after a clean shutdown, 1
// if the listener or server fails, 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"blazes/service"
)

// serveShutdownTimeout is the graceful-drain window after a signal.
const serveShutdownTimeout = 5 * time.Second

// withRequestTimeout wraps h so every request carries a deadline: a stuck
// client or a pathological analysis cannot hold a connection (and an
// admission slot) forever. The handlers translate the context error to 408.
func withRequestTimeout(h http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

func runServe(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blazes serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:8351", "listen address (port 0 picks a free port)")
		maxSessions = fs.Int("max-sessions", service.DefaultMaxSessions, "concurrent session cap (LRU eviction beyond it)")

		journalDir    = fs.String("journal", "", "journal directory for durable mode (empty = in-memory)")
		snapshotEvery = fs.Int("snapshot-every", service.DefaultSnapshotEvery, "journal records between snapshots (needs -journal)")
		segmentBytes  = fs.Int64("journal-segment-bytes", 0, "rotate wal segments at this size; 0 = only on snapshots (needs -journal)")

		maxConcurrent = fs.Int("max-concurrent", 0, "admitted expensive requests at once (0 = GOMAXPROCS)")
		maxQueue      = fs.Int("max-queue", service.DefaultMaxQueue, "admission queue bound; beyond it requests shed with 429")
		queueTimeout  = fs.Duration("queue-timeout", service.DefaultQueueTimeout, "max wait for an admission slot")

		requestTimeout    = fs.Duration("request-timeout", time.Minute, "per-request deadline on expensive endpoints (0 disables)")
		readHeaderTimeout = fs.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout")
		writeTimeout      = fs.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout (0 disables)")
		idleTimeout       = fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: blazes serve [-addr host:port] [-max-sessions n] [-journal dir] [flags]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return exitOK
		}
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "blazes: serve: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		fs.Usage()
		return exitUsage
	}
	if *maxSessions <= 0 {
		fmt.Fprintf(stderr, "blazes: serve: -max-sessions must be positive\n")
		fs.Usage()
		return exitUsage
	}
	if *maxConcurrent < 0 || *maxQueue < 0 || *snapshotEvery < 0 || *segmentBytes < 0 {
		fmt.Fprintf(stderr, "blazes: serve: -max-concurrent, -max-queue, -snapshot-every and -journal-segment-bytes must be non-negative\n")
		fs.Usage()
		return exitUsage
	}

	svc, err := service.Open(service.Options{
		MaxSessions:         *maxSessions,
		JournalDir:          *journalDir,
		SnapshotEvery:       *snapshotEvery,
		JournalSegmentBytes: *segmentBytes,
		MaxConcurrent:       *maxConcurrent,
		MaxQueue:            *maxQueue,
		QueueTimeout:        *queueTimeout,
	})
	if err != nil {
		fmt.Fprintf(stderr, "blazes: serve: %v\n", err)
		return exitError
	}
	if *journalDir != "" {
		fmt.Fprintf(stdout, "blazes: journaling to %s (replay in progress, read-only until done)\n", *journalDir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "blazes: serve: %v\n", err)
		_ = svc.Close()
		return exitError
	}
	fmt.Fprintf(stdout, "blazes: serving on http://%s\n", ln.Addr())

	srv := &http.Server{
		Handler: withRequestTimeout(svc.Handler(), *requestTimeout),
		// Cancel request contexts when the serve context dies, so
		// in-flight analyze/verify work stops during the drain.
		BaseContext:       func(net.Listener) context.Context { return ctx },
		ReadHeaderTimeout: *readHeaderTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), serveShutdownTimeout)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	err = srv.Serve(ln)
	<-done
	if cerr := svc.Close(); cerr != nil {
		fmt.Fprintf(stderr, "blazes: serve: closing journal: %v\n", cerr)
		return exitError
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "blazes: serve: %v\n", err)
		return exitError
	}
	fmt.Fprintln(stdout, "blazes: shut down cleanly")
	return exitOK
}
