package core

import (
	"testing"

	"blazes/internal/fd"
)

// TestFig7AnnotationTable pins the C.O.W.R. table of Figure 7: severity
// ranks and the confluent/stateless axes.
func TestFig7AnnotationTable(t *testing.T) {
	tests := []struct {
		name      string
		ann       Annotation
		severity  int
		confluent bool
		write     bool
		str       string
	}{
		{"CR", CR, 1, true, false, "CR"},
		{"CW", CW, 2, true, true, "CW"},
		{"OR", ORGate("id"), 3, false, false, "OR(id)"},
		{"OW", OWGate("word", "batch"), 4, false, true, "OW(batch,word)"},
		{"OR*", ORStar(), 3, false, false, "OR*"},
		{"OW*", OWStar(), 4, false, true, "OW*"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.ann.Severity(); got != tt.severity {
				t.Errorf("severity = %d, want %d", got, tt.severity)
			}
			if got := tt.ann.Confluent; got != tt.confluent {
				t.Errorf("confluent = %v, want %v", got, tt.confluent)
			}
			if got := tt.ann.Write; got != tt.write {
				t.Errorf("write = %v, want %v", got, tt.write)
			}
			if got := tt.ann.String(); got != tt.str {
				t.Errorf("String = %q, want %q", got, tt.str)
			}
		})
	}
}

func TestSealCompatible(t *testing.T) {
	tests := []struct {
		name string
		ann  Annotation
		key  fd.AttrSet
		want bool
	}{
		{"confluent always compatible", CW, fd.NewAttrSet("x"), true},
		{"gate superset of key", OWGate("word", "batch"), fd.NewAttrSet("batch"), true},
		{"gate equal to key", ORGate("window"), fd.NewAttrSet("window"), true},
		{"disjoint", ORGate("id"), fd.NewAttrSet("campaign"), false},
		{"star never compatible", OWStar(), fd.NewAttrSet("batch"), false},
		{"empty key incompatible", OWGate("id"), fd.NewAttrSet(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.ann.SealCompatible(tt.key, nil); got != tt.want {
				t.Errorf("SealCompatible(%v) = %v, want %v", tt.key, got, tt.want)
			}
		})
	}
}

func TestSealCompatibleWithLineage(t *testing.T) {
	// Seal on company is compatible with a gate on symbol through an
	// injective FD, but not with a gate on city (non-injective).
	deps := fd.NewSet(
		fd.NewInjectiveFD(fd.NewAttrSet("company"), fd.NewAttrSet("symbol")),
		fd.NewFD(fd.NewAttrSet("company"), fd.NewAttrSet("city")),
	)
	if !ORGate("symbol").SealCompatible(fd.NewAttrSet("company"), deps) {
		t.Error("company seal should drive symbol gate via injective FD")
	}
	if ORGate("city").SealCompatible(fd.NewAttrSet("company"), deps) {
		t.Error("company seal must not drive city gate (non-injective FD)")
	}
}

func TestParseAnnotation(t *testing.T) {
	tests := []struct {
		label     string
		subscript []string
		want      string
		wantErr   bool
	}{
		{"CR", nil, "CR", false},
		{"CW", nil, "CW", false},
		{"cw", nil, "CW", false},
		{"OW", []string{"word", "batch"}, "OW(batch,word)", false},
		{"OR", []string{"id"}, "OR(id)", false},
		{"OR", nil, "OR*", false}, // unsubscripted defaults to *
		{"OW*", nil, "OW*", false},
		{"OR*", []string{"id"}, "", true}, // * plus subscript is contradictory
		{"CR", []string{"id"}, "", true},  // confluent with subscript
		{"XX", nil, "", true},
	}
	for _, tt := range tests {
		got, err := ParseAnnotation(tt.label, tt.subscript)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseAnnotation(%q,%v): want error", tt.label, tt.subscript)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAnnotation(%q,%v): %v", tt.label, tt.subscript, err)
			continue
		}
		if got.String() != tt.want {
			t.Errorf("ParseAnnotation(%q,%v) = %s, want %s", tt.label, tt.subscript, got, tt.want)
		}
	}
}
