package bloom

import (
	"testing"

	"blazes/internal/fd"
)

// reportLike builds the shape of the paper's reporting server: clicks are
// persisted to a log; a standing aggregation over the log answers requests.
func reportLike(having Pred) *Module {
	m := NewModule("report")
	m.Input("click", "id", "campaign")
	m.Input("request", "id", "reqid")
	m.Output("response", "id", "reqid", "cnt")
	m.Table("clicklog", "id", "campaign")
	m.Scratch("counts", "id", "campaign", "cnt")
	m.Rule("clicklog", Instant, Scan("click"))
	m.Rule("counts", Instant,
		GroupBy(Scan("clicklog"), []string{"id", "campaign"}, Agg{Func: Count, As: "cnt"}).WithHaving(having))
	m.Rule("response", Async,
		Project(Join(Scan("request"), Scan("counts"), [2]string{"id", "id"}),
			Col("id"), Col("reqid"), Col("cnt")))
	return m
}

func findPath(t *testing.T, a *ModuleAnalysis, from, to string) PathAnnotation {
	t.Helper()
	for _, p := range a.Paths {
		if p.From == from && p.To == to {
			return p
		}
	}
	t.Fatalf("no path %s→%s in %v", from, to, a.Paths)
	return PathAnnotation{}
}

// TestWhiteBoxReportAnnotations is the heart of Section VII: the analyzer
// must derive the paper's manual annotations automatically — click→response
// is CW (a log append), request→response is OR subscripted by the query's
// grouping columns.
func TestWhiteBoxReportAnnotations(t *testing.T) {
	a, err := Analyze(reportLike(Where("cnt", LT, I(100))))
	if err != nil {
		t.Fatal(err)
	}
	click := findPath(t, a, "click", "response")
	if click.Ann.String() != "CW" {
		t.Errorf("click→response = %s, want CW", click.Ann)
	}
	req := findPath(t, a, "request", "response")
	if req.Ann.String() != "OR(campaign,id)" {
		t.Errorf("request→response = %s, want OR(campaign,id)", req.Ann)
	}
}

// TestWhiteBoxThreshIsConfluent: the monotone threshold operator (lattice
// aggregation) yields CR for THRESH-like queries.
func TestWhiteBoxThreshIsConfluent(t *testing.T) {
	m := NewModule("thresh")
	m.Input("click", "id", "campaign")
	m.Input("request", "id", "reqid")
	m.Output("response", "id", "reqid")
	m.Table("clicklog", "id", "campaign")
	m.Scratch("popular", "id")
	m.Rule("clicklog", Instant, Scan("click"))
	m.Rule("popular", Instant, MonotoneCountAtLeast(Scan("clicklog"), []string{"id"}, 1000))
	m.Rule("response", Async,
		Project(Join(Scan("request"), Scan("popular"), [2]string{"id", "id"}), Col("id"), Col("reqid")))

	a, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if p := findPath(t, a, "request", "response"); p.Ann.String() != "CR" {
		t.Errorf("request→response = %s, want CR (monotone threshold)", p.Ann)
	}
	if p := findPath(t, a, "click", "response"); p.Ann.String() != "CW" {
		t.Errorf("click→response = %s, want CW", p.Ann)
	}
}

// TestWhiteBoxCacheAnnotations: the caching tier derives the paper's Cache
// annotations, including the *absence* of a response→request path
// (footnote 3).
func TestWhiteBoxCacheAnnotations(t *testing.T) {
	m := NewModule("cache")
	m.Input("request", "id", "reqid")
	m.Input("response_in", "id", "reqid", "cnt")
	m.Output("response_out", "id", "reqid", "cnt")
	m.Output("request_out", "id", "reqid")
	m.Table("answers", "id", "cnt")
	// Hits answer from the store.
	m.Rule("response_out", Async,
		Project(Join(Scan("request"), Scan("answers"), [2]string{"id", "id"}),
			Col("id"), Col("reqid"), Col("cnt")))
	// Arriving responses update the store and are forwarded (to the
	// analyst and, via the replicated response stream, to peer caches).
	m.Rule("answers", Instant, Project(Scan("response_in"), Col("id"), Col("cnt")))
	m.Rule("response_out", Async, Scan("response_in"))
	// Misses are forwarded to a reporting server (monotone forward-all).
	m.Rule("request_out", Async, Scan("request"))

	a, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if p := findPath(t, a, "request", "response_out"); p.Ann.String() != "CR" {
		t.Errorf("request→response = %s, want CR", p.Ann)
	}
	if p := findPath(t, a, "response_in", "response_out"); p.Ann.String() != "CW" {
		t.Errorf("response→response = %s, want CW", p.Ann)
	}
	if p := findPath(t, a, "request", "request_out"); p.Ann.String() != "CR" {
		t.Errorf("request→request = %s, want CR", p.Ann)
	}
	// Footnote 3: no path from response_in to request_out.
	for _, p := range a.Paths {
		if p.From == "response_in" && p.To == "request_out" {
			t.Error("spurious response→request path; Cache must not close a cycle with Report")
		}
	}
}

func TestWhiteBoxAntiJoinGate(t *testing.T) {
	// An antijoin's subscript is its theta columns.
	m := NewModule("aj")
	m.Input("req", "id")
	m.Input("done", "id")
	m.Output("out", "id")
	m.Table("finished", "id")
	m.Rule("finished", Instant, Scan("done"))
	m.Rule("out", Async, AntiJoin(Scan("req"), Scan("finished"), [2]string{"id", "id"}))

	a, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if p := findPath(t, a, "req", "out"); p.Ann.String() != "OR(id)" {
		t.Errorf("req→out = %s, want OR(id)", p.Ann)
	}
}

func TestWhiteBoxDeleteIsOWStar(t *testing.T) {
	// Deletion mutates state nonmonotonically with unknown partitioning;
	// a path whose deletions influence an output is OW*.
	m := NewModule("del")
	m.Input("rm", "v")
	m.Input("q", "v")
	m.Output("out", "v")
	m.Table("t", "v")
	m.Rule("t", Delete, Join(Scan("rm"), Scan("t"), [2]string{"v", "v"}))
	m.Rule("out", Async, Join(Scan("q"), Scan("t"), [2]string{"v", "v"}))

	a, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if p := findPath(t, a, "rm", "out"); p.Ann.String() != "OW*" {
		t.Errorf("rm→out = %s, want OW*", p.Ann)
	}
	// The query path merely joins persisted state: CR.
	if p := findPath(t, a, "q", "out"); p.Ann.String() != "CR" {
		t.Errorf("q→out = %s, want CR", p.Ann)
	}
}

func TestWhiteBoxDeleteRuleDoesNotReachOutput(t *testing.T) {
	// A deletion that cannot influence any output leaves unrelated paths
	// confluent: attribution is per (input, output) pair.
	m := NewModule("del2")
	m.Input("rm", "v")
	m.Output("out", "v")
	m.Table("t", "v")
	m.Rule("t", Delete, Join(Scan("rm"), Scan("t"), [2]string{"v", "v"}))
	m.Rule("out", Async, Scan("rm"))

	a, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if p := findPath(t, a, "rm", "out"); p.Ann.String() != "CR" {
		t.Errorf("rm→out = %s, want CR (the deleted table never reaches out)", p.Ann)
	}
}

func TestWhiteBoxDisagreeingGatesDegradeToStar(t *testing.T) {
	// Two aggregations with different grouping keys on one path: the gate
	// is unknown.
	m := NewModule("two")
	m.Input("in", "a", "b")
	m.Output("out", "a", "cnt2")
	m.Scratch("s1", "a", "b", "cnt")
	m.Scratch("s2", "a", "cnt2")
	m.Rule("s1", Instant, GroupBy(Scan("in"), []string{"a", "b"}, Agg{Func: Count, As: "cnt"}))
	m.Rule("s2", Instant, GroupBy(Scan("s1"), []string{"a"}, Agg{Func: Count, As: "cnt2"}))
	m.Rule("out", Async, Scan("s2"))

	a, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if p := findPath(t, a, "in", "out"); p.Ann.String() != "OR*" {
		t.Errorf("in→out = %s, want OR* (conflicting gates)", p.Ann)
	}
}

func TestLineageExtraction(t *testing.T) {
	m := NewModule("lin")
	m.Input("in", "campaign", "x")
	m.Output("out", "camp", "x")
	m.Rule("out", Async, Project(Scan("in"), ColAs("campaign", "camp"), Col("x")))

	a, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Deps.InjectivelyDetermines(fd.NewAttrSet("campaign"), fd.NewAttrSet("camp")) {
		t.Error("rename should record an injective dependency campaign ↣ camp")
	}
	// Seal on campaign must be compatible with a gate on camp.
	if !a.Deps.Compatible(fd.NewAttrSet("camp"), fd.NewAttrSet("campaign")) {
		t.Error("compatible(camp, campaign) should hold through the rename")
	}
}

func TestAnalyzeComponentBridge(t *testing.T) {
	a, err := Analyze(reportLike(Where("cnt", LT, I(100))))
	if err != nil {
		t.Fatal(err)
	}
	g := newTestGraph(t, a)
	comp := g.Lookup("report")
	if comp == nil {
		t.Fatal("component not installed")
	}
	if len(comp.Paths) != len(a.Paths) {
		t.Errorf("paths = %d, want %d", len(comp.Paths), len(a.Paths))
	}
	if comp.Deps == nil || comp.OutSchema == nil {
		t.Error("lineage and output schemas must transfer")
	}
}
