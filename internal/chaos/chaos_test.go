package chaos

import (
	"context"
	"strings"
	"testing"

	"blazes/internal/dataflow"
	"blazes/internal/sim"
)

// TestGuaranteeAcrossSubstrates is the acceptance property of the chaos
// harness: for every substrate (Storm wordcount, replicated Bloom report
// server, the full ad network, the synthetic Figure 5 component), across
// DefaultSeeds (64) schedules per (mechanism, fault plan) configuration:
//
//   - runs under the analyzer's recommended coordination are
//     outcome-invariant within Figure 5's allowance, and
//   - stripping the coordination from every order-sensitive configuration
//     reproduces a detected divergence.
func TestGuaranteeAcrossSubstrates(t *testing.T) {
	cases := []struct {
		w Workload
		// wantMech is a substring of the coordinated sweeps' mechanism.
		wantMech string
		// bare marks confluent workloads verified without coordination.
		bare bool
		// wantStripped are anomaly classes the uncoordinated runs must
		// exhibit (beyond DivergenceReproduced, which Holds implies).
		wantStripped Anomalies
	}{
		{w: Wordcount(), wantMech: "sealing", wantStripped: Anomalies{Run: true, Diverge: true}},
		{w: ReplicatedReport(dataflow.THRESH), wantMech: "none", bare: true},
		{w: ReplicatedReport(dataflow.POOR), wantMech: "dynamic ordering", wantStripped: Anomalies{Run: true, Inst: true}},
		{w: ReplicatedReport(dataflow.CAMPAIGN), wantMech: "sealing", wantStripped: Anomalies{Run: true, Inst: true}},
		{w: AdNetwork(), wantMech: "sealing", wantStripped: Anomalies{Run: true, Inst: true}},
		{w: SyntheticSet(), wantMech: "none", bare: true},
		{w: SyntheticChains(true), wantMech: "sealing", wantStripped: Anomalies{Run: true, Inst: true, Diverge: true}},
		{w: SyntheticChains(false), wantMech: "dynamic ordering", wantStripped: Anomalies{Run: true, Inst: true, Diverge: true}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.w.Name(), func(t *testing.T) {
			t.Parallel()
			rep, err := Check(context.Background(), tc.w, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Holds {
				t.Fatalf("guarantee violated:\n%s", rep.Summary())
			}
			if len(rep.Coordinated) == 0 {
				t.Fatal("no coordinated sweeps ran")
			}
			for _, s := range rep.Coordinated {
				if s.Seeds < DefaultSeeds {
					t.Errorf("sweep %s/%s explored %d schedules, want ≥ %d", s.Mechanism, s.Plan, s.Seeds, DefaultSeeds)
				}
				if !strings.Contains(s.Mechanism, tc.wantMech) {
					t.Errorf("coordinated sweep ran under %q, want mechanism containing %q", s.Mechanism, tc.wantMech)
				}
			}
			if tc.bare {
				if len(rep.Uncoordinated) != 0 {
					t.Errorf("confluent workload ran %d stripped sweeps, want none", len(rep.Uncoordinated))
				}
				return
			}
			if len(rep.Strategies) == 0 {
				t.Error("non-confluent workload reported no synthesized strategies")
			}
			var stripped Anomalies
			for _, s := range rep.Uncoordinated {
				stripped.Run = stripped.Run || s.Observed.Run
				stripped.Inst = stripped.Inst || s.Observed.Inst
				stripped.Diverge = stripped.Diverge || s.Observed.Diverge
			}
			if !tc.wantStripped.Within(stripped) {
				t.Errorf("stripped sweeps observed [%s], want at least [%s]:\n%s",
					stripped, tc.wantStripped, rep.Summary())
			}
		})
	}
}

// TestPreferSequencingEliminatesRunAnomalies: under M1 (preordained order)
// even the cross-run anomaly that M2 permits must disappear.
func TestPreferSequencingEliminatesRunAnomalies(t *testing.T) {
	t.Parallel()
	rep, err := Check(context.Background(), ReplicatedReport(dataflow.POOR), Config{PreferSequencing: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("guarantee violated:\n%s", rep.Summary())
	}
	for _, s := range rep.Coordinated {
		if !strings.Contains(s.Mechanism, "sequencing") {
			t.Errorf("mechanism = %q, want M1 sequencing", s.Mechanism)
		}
		if s.Observed.Any() {
			t.Errorf("M1 sweep %s observed [%s], want none", s.Plan, s.Observed)
		}
	}
}

// TestOracleClassifiesAnomalies pins the three anomaly classes directly.
func TestOracleClassifiesAnomalies(t *testing.T) {
	mk := func(trace0, final0, trace1, final1 string) Outcome {
		return Outcome{Replicas: []ReplicaOutcome{
			{Trace: []string{trace0}, Final: final0},
			{Trace: []string{trace1}, Final: final1},
		}}
	}

	o := NewOracle(false)
	o.Observe(1, mk("a", "s", "a", "s"))
	o.Observe(2, mk("a", "s", "a", "s"))
	if o.Anomalies().Any() {
		t.Errorf("identical runs flagged: %s", o.Anomalies())
	}

	o = NewOracle(false)
	o.Observe(1, mk("a", "s", "b", "s"))
	if a := o.Anomalies(); !a.Inst || a.Diverge || a.Run {
		t.Errorf("trace mismatch across replicas = %s, want Inst only", a)
	}

	o = NewOracle(false)
	o.Observe(1, mk("a", "s", "a", "u"))
	if a := o.Anomalies(); !a.Diverge || !a.Inst {
		// A final-state divergence also differs in the comparable trace.
		t.Errorf("final mismatch across replicas = %s, want Diverge (and Inst)", a)
	}

	o = NewOracle(false)
	o.Observe(1, mk("a", "s", "a", "s"))
	o.Observe(2, mk("b", "s", "b", "s"))
	if a := o.Anomalies(); !a.Run || a.Inst || a.Diverge {
		t.Errorf("cross-run mismatch = %s, want Run only", a)
	}
	if len(o.Details()) == 0 {
		t.Error("no detail recorded for cross-run mismatch")
	}
}

// TestOracleConfluentComparesFinalsOnly: transient output subsets are
// benign for confluent components; only eventual outcomes count.
func TestOracleConfluentComparesFinalsOnly(t *testing.T) {
	o := NewOracle(true)
	o.Observe(1, Outcome{Replicas: []ReplicaOutcome{
		{Trace: []string{"a", "ab"}, Final: "abc"},
		{Trace: []string{"b", "bc"}, Final: "abc"},
	}})
	o.Observe(2, Outcome{Replicas: []ReplicaOutcome{
		{Trace: []string{"c"}, Final: "abc"},
		{Trace: []string{}, Final: "abc"},
	}})
	if o.Anomalies().Any() {
		t.Errorf("confluent oracle flagged transient differences: %s", o.Anomalies())
	}
	o.Observe(3, Outcome{Replicas: []ReplicaOutcome{
		{Final: "abc"}, {Final: "abd"},
	}})
	if a := o.Anomalies(); !a.Diverge {
		t.Errorf("eventual divergence missed: %s", a)
	}
}

// TestFaultPlanShape pins the plan→link transformation.
func TestFaultPlanShape(t *testing.T) {
	base := sim.LinkConfig{MinDelay: 1 * sim.Millisecond, MaxDelay: 2 * sim.Millisecond, DupProb: 0.1}
	p := FaultPlan{
		Name:        "x",
		DelaySpread: 8 * sim.Millisecond,
		DupProb:     0.25,
		Partitions:  []sim.PartitionWindow{{From: 1, Until: 2}},
	}
	got := p.Shape(base)
	if got.MaxDelay != 10*sim.Millisecond {
		t.Errorf("MaxDelay = %v, want 10ms", got.MaxDelay)
	}
	if got.DupProb != 0.25 {
		t.Errorf("DupProb = %v, want plan's 0.25", got.DupProb)
	}
	if len(got.Partitions) != 1 {
		t.Errorf("Partitions = %v", got.Partitions)
	}
	if base.Partitions != nil {
		t.Error("Shape mutated the input's partition slice")
	}
	// A stronger link-level DupProb survives.
	strong := p.Shape(sim.LinkConfig{DupProb: 0.9})
	if strong.DupProb != 0.9 {
		t.Errorf("DupProb = %v, want link's stronger 0.9", strong.DupProb)
	}
}

// TestAnomaliesWithin pins the subset check Figure 5 verdicts rest on.
func TestAnomaliesWithin(t *testing.T) {
	if !(Anomalies{Run: true}).Within(Anomalies{Run: true}) {
		t.Error("Run within Run must hold")
	}
	if (Anomalies{Run: true, Inst: true}).Within(Anomalies{Run: true}) {
		t.Error("Inst must not be within Run-only")
	}
	if !(Anomalies{}).Within(Anomalies{}) {
		t.Error("empty within empty must hold")
	}
}

// TestWordcountExactnessUnderCoordination: the coordinated wordcount is not
// merely schedule-invariant — it equals the schedule-independent ground
// truth (the second synthetic replica) on every schedule and fault plan.
func TestWordcountExactnessUnderCoordination(t *testing.T) {
	t.Parallel()
	w := Wordcount()
	for _, plan := range DefaultPlans() {
		out, err := w.Run(7, plan, dataflow.CoordSealed)
		if err != nil {
			t.Fatal(err)
		}
		if out.Replicas[0].Final != out.Replicas[1].Final {
			t.Errorf("plan %s: committed store differs from ground truth", plan.Name)
		}
	}
}
