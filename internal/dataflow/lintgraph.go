package dataflow

import (
	"encoding/json"
	"fmt"
	"sort"

	"blazes/internal/core"
)

// LintSeverity ranks a graph diagnostic. Errors describe graphs whose
// analysis would be vacuous or misleading (the declared metadata contradicts
// itself); warnings describe graphs that analyze fine but carry a known
// divergence or dead-weight risk.
type LintSeverity int

const (
	// SeverityWarning marks advisory findings: the analysis is sound but
	// the operator should look.
	SeverityWarning LintSeverity = iota
	// SeverityError marks contradictions in the declared metadata.
	SeverityError
)

// String names the severity for reports.
func (s LintSeverity) String() string {
	if s == SeverityError {
		return "error"
	}
	return "warning"
}

// MarshalJSON renders the severity as its name, keeping the wire form
// readable and independent of the enum's numeric values.
func (s LintSeverity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the name form produced by MarshalJSON.
func (s *LintSeverity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = SeverityError
	case "warning":
		*s = SeverityWarning
	default:
		return fmt.Errorf("dataflow: unknown lint severity %q", name)
	}
	return nil
}

// Lint diagnostic codes. Codes are stable across releases: tooling may
// match on them, so a code is never renumbered or reused.
const (
	// CodeSealKeyNotInSchema: a stream is sealed on a key the producer's
	// declared output schema does not contain.
	CodeSealKeyNotInSchema = "BLZ001"
	// CodeGateNotInSchema: an order-sensitive path gates on attributes the
	// feeding stream's producer schema does not contain.
	CodeGateNotInSchema = "BLZ002"
	// CodeUnreachable: a component no source stream can reach.
	CodeUnreachable = "BLZ003"
	// CodeAnnotationContradiction: the same input→output pair carries both
	// a confluent and an order-sensitive annotation, or an order-sensitive
	// annotation with neither a gate nor the * marking.
	CodeAnnotationContradiction = "BLZ004"
	// CodeSealIncompatible: a sealed stream feeds an order-sensitive path
	// whose gate the seal key cannot reach through the component's
	// functional dependencies — the seal buys no determinism there.
	CodeSealIncompatible = "BLZ005"
	// CodeUnsealedCycle: a cycle with an order-sensitive member has no
	// sealed internal stream and no coordination applied — replica
	// divergence can feed back and amplify.
	CodeUnsealedCycle = "BLZ006"
)

// LintDiagnostic is one advisory finding about a graph. It complements
// Graph.Validate: Validate rejects structurally broken graphs with hard
// errors, Lint flags well-formed graphs whose metadata is contradictory or
// risky. The two never report the same defect twice.
type LintDiagnostic struct {
	// Code is the stable BLZnnn identifier.
	Code string `json:"code"`
	// Severity ranks the finding.
	Severity LintSeverity `json:"severity"`
	// Subject names the component or stream the finding is about.
	Subject string `json:"subject"`
	// Message explains the finding and how to fix it.
	Message string `json:"message"`
}

// String renders the diagnostic as "severity CODE subject: message".
func (d LintDiagnostic) String() string {
	return fmt.Sprintf("%s %s %s: %s", d.Severity, d.Code, d.Subject, d.Message)
}

// LintGraph runs every graph diagnostic over g and returns the findings
// sorted errors-first, then by code, subject and message, so output is
// deterministic. The graph should already pass Validate — structurally
// broken graphs produce undefined (but non-panicking) lint results.
func LintGraph(g *Graph) []LintDiagnostic {
	var diags []LintDiagnostic
	diags = append(diags, lintSealSchemas(g)...)
	diags = append(diags, lintGateSchemas(g)...)
	diags = append(diags, lintReachability(g)...)
	diags = append(diags, lintAnnotations(g)...)
	diags = append(diags, lintSealCompatibility(g)...)
	diags = append(diags, lintUnsealedCycles(g)...)
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity // errors first
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		return a.Message < b.Message
	})
	return diags
}

// lintSealSchemas reports BLZ001: a seal key absent from the sealed
// stream's producer schema. A seal punctuates partitions of the stream's
// records, so every key attribute must exist on those records; sealing on a
// phantom attribute means no partition ever seals (or every record is its
// own partition), and the M3 guarantee evaporates silently.
func lintSealSchemas(g *Graph) []LintDiagnostic {
	var diags []LintDiagnostic
	for _, s := range g.Streams() {
		if s.Seal.IsEmpty() || s.IsSource() {
			continue
		}
		producer := g.Lookup(s.FromComp)
		if producer == nil || producer.OutSchema == nil {
			continue
		}
		schema, ok := producer.OutSchema[s.FromIface]
		if !ok {
			continue
		}
		if missing := s.Seal.Minus(schema); !missing.IsEmpty() {
			diags = append(diags, LintDiagnostic{
				Code:     CodeSealKeyNotInSchema,
				Severity: SeverityError,
				Subject:  s.Name,
				Message: fmt.Sprintf("sealed on (%s) but producer %s.%s declares schema (%s): attribute(s) %s do not exist on the stream",
					s.Seal, s.FromComp, s.FromIface, schema, missing),
			})
		}
	}
	return diags
}

// lintGateSchemas reports BLZ002: an OR/OW gate naming attributes the
// feeding producer's schema does not carry. The gate partitions input
// records; gating on an attribute the records lack degenerates to one
// partition per record, which is OR*/OW* in disguise.
func lintGateSchemas(g *Graph) []LintDiagnostic {
	var diags []LintDiagnostic
	for _, c := range g.Components() {
		for _, p := range c.Paths {
			if p.Ann.Confluent || p.Ann.GateStar || p.Ann.Gate.IsEmpty() {
				continue
			}
			for _, s := range g.StreamsInto(c.Name, p.From) {
				if s.IsSource() {
					continue
				}
				producer := g.Lookup(s.FromComp)
				if producer == nil || producer.OutSchema == nil {
					continue
				}
				schema, ok := producer.OutSchema[s.FromIface]
				if !ok {
					continue
				}
				if missing := p.Ann.Gate.Minus(schema); !missing.IsEmpty() {
					diags = append(diags, LintDiagnostic{
						Code:     CodeGateNotInSchema,
						Severity: SeverityError,
						Subject:  c.Name,
						Message: fmt.Sprintf("path %s→%s gates on (%s) but stream %q carries schema (%s): attribute(s) %s are missing",
							p.From, p.To, p.Ann.Gate, s.Name, schema, missing),
					})
				}
			}
		}
	}
	return diags
}

// lintReachability reports BLZ003: components no source stream reaches.
// An unreachable component never processes a record, so its annotations
// silently contribute nothing to the analysis — usually a mis-wired stream.
// Graphs with no sources at all are skipped: nothing is reachable by
// definition, and Validate-level concerns apply instead.
func lintReachability(g *Graph) []LintDiagnostic {
	seen := map[string]bool{}
	var frontier []string
	for _, s := range g.Streams() {
		if s.IsSource() && !s.IsSink() && !seen[s.ToComp] {
			seen[s.ToComp] = true
			frontier = append(frontier, s.ToComp)
		}
	}
	if len(frontier) == 0 {
		return nil
	}
	for len(frontier) > 0 {
		comp := frontier[0]
		frontier = frontier[1:]
		for _, s := range g.Streams() {
			if s.FromComp == comp && !s.IsSink() && !seen[s.ToComp] {
				seen[s.ToComp] = true
				frontier = append(frontier, s.ToComp)
			}
		}
	}
	var diags []LintDiagnostic
	for _, c := range g.Components() {
		if !seen[c.Name] {
			diags = append(diags, LintDiagnostic{
				Code:     CodeUnreachable,
				Severity: SeverityWarning,
				Subject:  c.Name,
				Message:  "no source stream reaches this component; it never processes a record",
			})
		}
	}
	return diags
}

// lintAnnotations reports BLZ004: contradictory annotations. Two paths over
// the same from→to pair disagreeing on confluence means the component's
// order-sensitivity is unknowable (the analysis takes the most severe, but
// the declaration is wrong either way). An order-sensitive annotation with
// an empty gate and no * marking is equally contradictory: it claims known
// partitioning but names no partition attributes. Spec-built graphs cannot
// produce the latter (ParseAnnotation defaults to *), but builder-built
// graphs can.
func lintAnnotations(g *Graph) []LintDiagnostic {
	var diags []LintDiagnostic
	for _, c := range g.Components() {
		kind := map[[2]string]core.Annotation{}
		flagged := map[[2]string]bool{}
		for _, p := range c.Paths {
			pair := [2]string{p.From, p.To}
			if prev, ok := kind[pair]; ok {
				if prev.Confluent != p.Ann.Confluent && !flagged[pair] {
					flagged[pair] = true
					diags = append(diags, LintDiagnostic{
						Code:     CodeAnnotationContradiction,
						Severity: SeverityError,
						Subject:  c.Name,
						Message: fmt.Sprintf("path %s→%s is annotated both %s and %s; one declaration must be wrong",
							p.From, p.To, prev, p.Ann),
					})
				}
			} else {
				kind[pair] = p.Ann
			}
			if !p.Ann.Confluent && !p.Ann.GateStar && p.Ann.Gate.IsEmpty() {
				diags = append(diags, LintDiagnostic{
					Code:     CodeAnnotationContradiction,
					Severity: SeverityError,
					Subject:  c.Name,
					Message: fmt.Sprintf("path %s→%s is order-sensitive with an empty gate and no * marking; declare the partition attributes or use OR*/OW*",
						p.From, p.To),
				})
			}
		}
	}
	return diags
}

// lintSealCompatibility reports BLZ005: a sealed stream feeding an
// order-sensitive path the seal cannot protect (Section V-A1's compatibility
// test fails). The runtime still buffers and punctuates — the cost of M3 is
// paid — but order nondeterminism passes straight through.
func lintSealCompatibility(g *Graph) []LintDiagnostic {
	var diags []LintDiagnostic
	for _, s := range g.Streams() {
		if s.Seal.IsEmpty() || s.IsSink() {
			continue
		}
		consumer := g.Lookup(s.ToComp)
		if consumer == nil {
			continue
		}
		for _, p := range consumer.PathsFrom(s.ToIface) {
			if p.Ann.Confluent {
				continue
			}
			if !p.Ann.SealCompatible(s.Seal, consumer.Deps) {
				diags = append(diags, LintDiagnostic{
					Code:     CodeSealIncompatible,
					Severity: SeverityWarning,
					Subject:  s.Name,
					Message: fmt.Sprintf("seal on (%s) cannot protect path %s→%s of %s (annotation %s): the key does not determine the gate, so sealing buys no determinism here",
						s.Seal, p.From, p.To, s.ToComp, p.Ann),
				})
			}
		}
	}
	return diags
}

// lintUnsealedCycles reports BLZ006: a component cycle with an
// order-sensitive member, no sealed stream inside the cycle, and no
// coordination applied to any member. Divergent replica state can feed back
// around such a cycle and amplify instead of washing out — the divergence
// risk the paper's case studies coordinate away.
func lintUnsealedCycles(g *Graph) []LintDiagnostic {
	comps := g.Components()
	index := map[string]int{}
	for i, c := range comps {
		index[c.Name] = i
	}
	adj := make([][]int, len(comps))
	for _, s := range g.Streams() {
		if s.IsSource() || s.IsSink() {
			continue
		}
		adj[index[s.FromComp]] = append(adj[index[s.FromComp]], index[s.ToComp])
	}
	groups := stronglyConnected(adj)

	var diags []LintDiagnostic
	for _, group := range groups {
		members := map[string]bool{}
		for _, i := range group {
			members[comps[i].Name] = true
		}
		if len(group) == 1 && !hasSelfLoop(g, comps[group[0]].Name) {
			continue
		}
		orderSensitive := false
		coordinated := false
		for _, i := range group {
			for _, p := range comps[i].Paths {
				if p.Ann.OrderSensitive() {
					orderSensitive = true
				}
			}
			if comps[i].Coordination != CoordNone {
				coordinated = true
			}
		}
		if !orderSensitive || coordinated {
			continue
		}
		sealed := false
		for _, s := range g.Streams() {
			if !s.IsSource() && !s.IsSink() && members[s.FromComp] && members[s.ToComp] && !s.Seal.IsEmpty() {
				sealed = true
				break
			}
		}
		if sealed {
			continue
		}
		names := make([]string, 0, len(members))
		for n := range members {
			names = append(names, n)
		}
		sort.Strings(names)
		diags = append(diags, LintDiagnostic{
			Code:     CodeUnsealedCycle,
			Severity: SeverityWarning,
			Subject:  names[0],
			Message: fmt.Sprintf("cycle {%s} has an order-sensitive member but no sealed internal stream and no coordination; replica divergence can feed back around the cycle",
				joinNames(names)),
		})
	}
	return diags
}

func hasSelfLoop(g *Graph, comp string) bool {
	for _, s := range g.Streams() {
		if s.FromComp == comp && s.ToComp == comp {
			return true
		}
	}
	return false
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// stronglyConnected returns the strongly connected components of the
// directed graph given as adjacency lists, using Tarjan's algorithm
// (iterative indices, deterministic order).
func stronglyConnected(adj [][]int) [][]int {
	n := len(adj)
	const unvisited = -1
	indexOf := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range indexOf {
		indexOf[i] = unvisited
	}
	var stack []int
	var groups [][]int
	next := 0

	var strongconnect func(v int)
	strongconnect = func(v int) {
		indexOf[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if indexOf[w] == unvisited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && indexOf[w] < low[v] {
				low[v] = indexOf[w]
			}
		}
		if low[v] == indexOf[v] {
			var group []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				group = append(group, w)
				if w == v {
					break
				}
			}
			sort.Ints(group)
			groups = append(groups, group)
		}
	}
	for v := 0; v < n; v++ {
		if indexOf[v] == unvisited {
			strongconnect(v)
		}
	}
	return groups
}
