package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON configuration `go vet -vettool` writes for
// each package unit. The field set (and the .cfg single-argument protocol)
// is the contract between cmd/go and x/tools' unitchecker; blazeslint
// reimplements the subset it needs so the repo stays stdlib-only.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements the `-V=full` handshake cmd/go uses to fingerprint
// a vettool for build caching: the tool prints one line containing its name
// and a content hash of its own executable.
func PrintVersion(w io.Writer, progname string) error {
	h := sha256.New()
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
	return nil
}

// PrintFlagDefs implements the `-flags` handshake: cmd/go asks the tool
// which flags it supports so it can forward matching `go vet` arguments.
func PrintFlagDefs(w io.Writer) {
	type flagDef struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []flagDef{
		{Name: "json", Bool: true, Usage: "emit diagnostics as JSON"},
	}
	for _, name := range Names() {
		a, _ := New(name)
		defs = append(defs, flagDef{Name: name, Bool: true, Usage: a.Doc})
	}
	data, _ := json.MarshalIndent(defs, "", "\t")
	fmt.Fprintln(w, string(data))
}

// RunUnit processes one vet config file: load, type-check against the
// export data cmd/go already built, run the analyzers, report. It returns
// the diagnostics (nil on a facts-only invocation) so the caller owns exit
// codes and rendering.
func RunUnit(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", cfgPath, err)
	}

	// cmd/go requires the facts output file to exist even though these
	// analyzers exchange no facts; write it first so every exit path
	// (including facts-only dependency visits) satisfies the contract.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	applies := false
	for _, a := range analyzers {
		if a.AppliesTo(cfg.ImportPath) {
			applies = true
			break
		}
	}
	if !applies {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}
	pkg, info, err := check(cfg.ImportPath, fset, files, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	return Analyze(&Package{
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, analyzers), nil
}
