// Package dataflow models the logical dataflow graphs that Blazes analyzes
// (Section II of the paper) and implements the whole-graph analysis of
// Section V: path enumeration with cycle collapse, per-component inference
// and reconciliation, end-to-end label propagation, and coordination
// strategy synthesis.
package dataflow

import (
	"errors"
	"fmt"
	"sort"

	"blazes/internal/core"
	"blazes/internal/fd"
)

// Coordination enumerates the delivery mechanisms of Figure 5 that can be
// imposed on a component's inputs by a synthesized strategy.
type Coordination int

const (
	// CoordNone leaves delivery asynchronous and unordered.
	CoordNone Coordination = iota
	// CoordSequenced is M1: a preordained total order over inputs (e.g.
	// Storm transactional batch ids). Deterministic across runs, instances
	// and replays.
	CoordSequenced
	// CoordDynamicOrder is M2: a dynamic ordering service (e.g. Paxos or
	// Zookeeper) decides a total order per run. All replicas agree within
	// a run, but different runs may order differently.
	CoordDynamicOrder
	// CoordSealed is M3: per-partition sealing; inputs are buffered until
	// their partition is sealed by every producer.
	CoordSealed
	// CoordQuorumOrder is a cheaper M1 variant: producers stamp messages
	// with Lamport clocks and replicas deliver in (clock, producer, seq)
	// order once the stability frontier passes, so the total order is
	// preordained without a global sequencer round trip per message.
	CoordQuorumOrder
	// CoordMergeRewrite is not a delivery mechanism: the component's
	// order-sensitive fold is replaced by a declared commutative merge,
	// making it confluent by construction. No runtime protocol is
	// installed; the derived labels change instead.
	CoordMergeRewrite
	// CoordPartitionSealed is M3 with independent partitions: each
	// partition key seals and releases on its own, so one slow partition
	// does not block reads against the others.
	CoordPartitionSealed
)

// String names the mechanism as in Figure 5.
func (c Coordination) String() string {
	switch c {
	case CoordNone:
		return "none"
	case CoordSequenced:
		return "sequencing (M1)"
	case CoordDynamicOrder:
		return "dynamic ordering (M2)"
	case CoordSealed:
		return "sealing (M3)"
	case CoordQuorumOrder:
		return "quorum ordering (M1q)"
	case CoordMergeRewrite:
		return "merge rewrite (confluent)"
	case CoordPartitionSealed:
		return "partition sealing (M3p)"
	default:
		return fmt.Sprintf("Coordination(%d)", int(c))
	}
}

// Path is an annotated path from an input interface to an output interface
// of one component.
type Path struct {
	From, To string
	Ann      core.Annotation
}

// Component is a logical unit of computation and storage with named input
// and output interfaces and annotated paths between them.
type Component struct {
	Name string
	// Rep marks the component (and hence its output streams) as
	// replicated: multiple instances consume replicated inputs.
	Rep bool
	// Paths lists the annotated input→output paths.
	Paths []Path
	// Deps carries the component's injective-FD lineage (white box); nil
	// means identity-only.
	Deps *fd.Set
	// OutSchema optionally maps output interface names to their attribute
	// schemas, enabling seal-key chasing (white box).
	OutSchema map[string]fd.AttrSet
	// Coordination records a delivery mechanism imposed on this
	// component's inputs by a synthesized (or manually applied) strategy.
	Coordination Coordination
	// Merge optionally names a commutative, associative, idempotent merge
	// function for the component's state. A non-empty Merge declares that
	// the component's order-sensitive folds can be replaced by that merge,
	// making the merge-rewrite strategy applicable.
	Merge string

	inputs  map[string]bool
	outputs map[string]bool
}

// Inputs returns the component's input interface names in sorted order.
func (c *Component) Inputs() []string { return sortedKeys(c.inputs) }

// Outputs returns the component's output interface names in sorted order.
func (c *Component) Outputs() []string { return sortedKeys(c.outputs) }

// AddPath declares an annotated path. Interfaces are created on first use.
func (c *Component) AddPath(from, to string, ann core.Annotation) *Component {
	c.Paths = append(c.Paths, Path{From: from, To: to, Ann: ann})
	c.inputs[from] = true
	c.outputs[to] = true
	return c
}

// SetPathAnn replaces the annotation of every from→to path and reports
// whether at least one path matched. The interface sets are unchanged, so
// the mutation cannot invalidate streams.
func (c *Component) SetPathAnn(from, to string, ann core.Annotation) bool {
	found := false
	for i := range c.Paths {
		if c.Paths[i].From == from && c.Paths[i].To == to {
			c.Paths[i].Ann = ann
			found = true
		}
	}
	return found
}

// SetPaths replaces the component's paths wholesale (e.g. when a spec
// variant is re-selected) and rebuilds the interface sets. Streams wired to
// interfaces that no longer exist are caught by the next Validate.
func (c *Component) SetPaths(paths []Path) {
	c.Paths = append(c.Paths[:0:0], paths...)
	c.inputs = map[string]bool{}
	c.outputs = map[string]bool{}
	for _, p := range c.Paths {
		c.inputs[p.From] = true
		c.outputs[p.To] = true
	}
}

// PathsFrom returns the paths reading the given input interface.
func (c *Component) PathsFrom(in string) []Path {
	var out []Path
	for _, p := range c.Paths {
		if p.From == in {
			out = append(out, p)
		}
	}
	return out
}

// PathsTo returns the paths feeding the given output interface.
func (c *Component) PathsTo(out string) []Path {
	var res []Path
	for _, p := range c.Paths {
		if p.To == out {
			res = append(res, p)
		}
	}
	return res
}

// Stream connects an output interface of one component to an input
// interface of another (or represents an external source/sink edge when one
// endpoint is empty).
type Stream struct {
	Name string
	// FromComp/FromIface identify the producer; empty FromComp marks an
	// external source.
	FromComp, FromIface string
	// ToComp/ToIface identify the consumer; empty ToComp marks an
	// external sink.
	ToComp, ToIface string
	// Seal carries the Seal_key annotation when the stream is punctuated
	// on key (empty = unsealed).
	Seal fd.AttrSet
	// Rep marks a replicated stream.
	Rep bool
}

// IsSource reports whether the stream enters the dataflow from outside.
func (s *Stream) IsSource() bool { return s.FromComp == "" }

// IsSink reports whether the stream leaves the dataflow.
func (s *Stream) IsSink() bool { return s.ToComp == "" }

// Graph is a logical dataflow: components wired by streams.
type Graph struct {
	Name       string
	components map[string]*Component
	streams    []*Stream
	byName     map[string]*Stream
}

// NewGraph creates an empty dataflow graph.
func NewGraph(name string) *Graph {
	return &Graph{
		Name:       name,
		components: map[string]*Component{},
		byName:     map[string]*Stream{},
	}
}

// Component returns the named component, creating it if needed.
func (g *Graph) Component(name string) *Component {
	if c, ok := g.components[name]; ok {
		return c
	}
	c := &Component{
		Name:    name,
		inputs:  map[string]bool{},
		outputs: map[string]bool{},
	}
	g.components[name] = c
	return c
}

// Components returns the components in name order.
func (g *Graph) Components() []*Component {
	names := sortedKeys2(g.components)
	out := make([]*Component, len(names))
	for i, n := range names {
		out[i] = g.components[n]
	}
	return out
}

// Lookup returns the named component, or nil.
func (g *Graph) Lookup(name string) *Component { return g.components[name] }

// Connect wires fromComp.fromIface to toComp.toIface with a named stream
// and returns it for further annotation.
func (g *Graph) Connect(name, fromComp, fromIface, toComp, toIface string) *Stream {
	s := &Stream{
		Name:     name,
		FromComp: fromComp, FromIface: fromIface,
		ToComp: toComp, ToIface: toIface,
	}
	g.streams = append(g.streams, s)
	g.byName[name] = s
	return s
}

// Source declares an external input stream feeding toComp.toIface.
func (g *Graph) Source(name, toComp, toIface string) *Stream {
	return g.Connect(name, "", "", toComp, toIface)
}

// Sink declares an external output stream leaving fromComp.fromIface.
func (g *Graph) Sink(name, fromComp, fromIface string) *Stream {
	return g.Connect(name, fromComp, fromIface, "", "")
}

// Stream returns the named stream, or nil.
func (g *Graph) Stream(name string) *Stream { return g.byName[name] }

// RemoveStream deletes the named stream from the graph and reports whether
// it existed. Declaration order of the remaining streams is preserved.
func (g *Graph) RemoveStream(name string) bool {
	if _, ok := g.byName[name]; !ok {
		return false
	}
	delete(g.byName, name)
	kept := g.streams[:0]
	for _, s := range g.streams {
		if s.Name != name {
			kept = append(kept, s)
		}
	}
	g.streams = kept
	return true
}

// Streams returns all streams in declaration order.
func (g *Graph) Streams() []*Stream { return g.streams }

// StreamsInto returns the streams arriving at comp.iface.
func (g *Graph) StreamsInto(comp, iface string) []*Stream {
	var out []*Stream
	for _, s := range g.streams {
		if s.ToComp == comp && s.ToIface == iface {
			out = append(out, s)
		}
	}
	return out
}

// StreamsOutOf returns the streams leaving comp.iface.
func (g *Graph) StreamsOutOf(comp, iface string) []*Stream {
	var out []*Stream
	for _, s := range g.streams {
		if s.FromComp == comp && s.FromIface == iface {
			out = append(out, s)
		}
	}
	return out
}

// Validate checks structural sanity: stream endpoints must reference
// declared components and interfaces used by at least one path, and every
// component must have at least one path. Every problem is reported — the
// collected errors, each naming the offending component or stream, are
// joined with errors.Join so a construction site can fix them in one pass.
// Components are checked in name order and streams in declaration order,
// so the message is deterministic.
func (g *Graph) Validate() error {
	var errs []error
	for _, name := range sortedKeys2(g.components) {
		if len(g.components[name].Paths) == 0 {
			errs = append(errs, fmt.Errorf("dataflow: component %q has no annotated paths", name))
		}
	}
	for _, s := range g.streams {
		if !s.IsSource() {
			c, ok := g.components[s.FromComp]
			if !ok {
				errs = append(errs, fmt.Errorf("dataflow: stream %q: unknown producer component %q", s.Name, s.FromComp))
			} else if !c.outputs[s.FromIface] {
				errs = append(errs, fmt.Errorf("dataflow: stream %q: component %q has no output interface %q", s.Name, s.FromComp, s.FromIface))
			}
		}
		if !s.IsSink() {
			c, ok := g.components[s.ToComp]
			if !ok {
				errs = append(errs, fmt.Errorf("dataflow: stream %q: unknown consumer component %q", s.Name, s.ToComp))
			} else if !c.inputs[s.ToIface] {
				errs = append(errs, fmt.Errorf("dataflow: stream %q: component %q has no input interface %q", s.Name, s.ToComp, s.ToIface))
			}
		}
		if s.IsSource() && s.IsSink() {
			errs = append(errs, fmt.Errorf("dataflow: stream %q connects nothing to nothing", s.Name))
		}
	}
	return errors.Join(errs...)
}

// Clone deep-copies the graph so strategies can be applied to a copy.
func (g *Graph) Clone() *Graph {
	ng := NewGraph(g.Name)
	for _, c := range g.Components() {
		nc := ng.Component(c.Name)
		nc.Rep = c.Rep
		nc.Deps = c.Deps
		nc.Coordination = c.Coordination
		nc.Merge = c.Merge
		if c.OutSchema != nil {
			nc.OutSchema = make(map[string]fd.AttrSet, len(c.OutSchema))
			for k, v := range c.OutSchema {
				nc.OutSchema[k] = v
			}
		}
		for _, p := range c.Paths {
			nc.AddPath(p.From, p.To, p.Ann)
		}
	}
	for _, s := range g.streams {
		ns := ng.Connect(s.Name, s.FromComp, s.FromIface, s.ToComp, s.ToIface)
		ns.Seal = s.Seal
		ns.Rep = s.Rep
	}
	return ng
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys2(m map[string]*Component) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
