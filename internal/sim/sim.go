// Package sim is a deterministic discrete-event simulator with virtual time.
// It supplies the nondeterministic messaging environment in which the
// paper's anomalies arise — reordering, duplication (at-least-once delivery)
// and loss — while keeping every run perfectly reproducible from a seed:
// the same (seed, configuration) pair always yields the same schedule, and
// different seeds explore different delivery orders. This substitutes for
// the paper's EC2 testbed; see DESIGN.md §2.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is virtual time in microseconds.
type Time int64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * Millisecond
)

// String renders the time as fractional milliseconds.
func (t Time) String() string {
	return fmt.Sprintf("%d.%03dms", t/Millisecond, t%Millisecond)
}

// Seconds converts virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for events at the same instant
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Sim is a single-threaded discrete-event scheduler.
type Sim struct {
	now    Time
	events eventHeap
	rng    *rand.Rand
	seq    uint64
	steps  uint64
}

// New creates a simulator whose nondeterministic choices are driven by the
// given seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand exposes the simulator's seeded random source. All randomness in a
// simulation must flow through it to preserve determinism.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current time.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Step runs the next event; it reports false when no events remain.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	s.steps++
	e.fn()
	return true
}

// Run executes events until none remain.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps ≤ deadline; the clock ends at
// deadline (or later if an executed event scheduled exactly at it advanced
// time further).
func (s *Sim) RunUntil(deadline Time) {
	for len(s.events) > 0 && s.events[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Steps reports how many events have executed (useful in tests).
func (s *Sim) Steps() uint64 { return s.steps }

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }
