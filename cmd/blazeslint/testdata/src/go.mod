module blazes

go 1.24
