package storm

import (
	"fmt"

	"blazes/internal/sim"
)

// debugStragglers enables straggler diagnostics during development.
var debugStragglers = false

// Committer is implemented by bolts whose FinishBatch output must be applied
// durably at commit time (e.g. a backing-store writer). The engine calls
// Commit under the topology's commit discipline: immediately after the batch
// seals (CommitSealed) or in global batch order (CommitTransactional).
type Committer interface {
	Commit(batch int64)
}

// instance is one physical task of a bolt stage: a serial executor fed by
// reordering network links. Each instance is one partition of the
// deterministic scheduler (key): its bolt code may run on a worker
// goroutine, but never concurrently with other work of the same instance,
// and everything that touches the simulator — routing draws, delivery
// scheduling, batch bookkeeping — runs in the apply phase on the scheduler
// goroutine.
type instance struct {
	st   *stage
	idx  int
	key  sim.Partition
	bolt Bolt

	busyUntil sim.Time
	batches   map[int64]*batchState
	// emitBuf collects a compute phase's emissions for routing in the apply
	// phase. Reused across events: windows guarantee at most one in-flight
	// compute per instance.
	emitBuf []Tuple
	// queue holds tuples awaiting their execution event, in busy-time
	// order. Execution events of one instance fire in exactly the order
	// they were scheduled (busyUntil strictly increases), so a FIFO matches
	// the schedule — and lets every execution share the two prebuilt
	// closures below instead of allocating one per tuple.
	queue    []execItem
	queueOff int
	// pendingBatch/pendingBS carry the in-flight two-phase event's batch
	// from its compute to its matching apply (same serialization guarantee
	// as emitBuf).
	pendingBatch int64
	pendingBS    *batchState
	execCompute  func() func()
	execApply    func()
	collect      Emitter
	finishApply  func()
}

// execItem is one queued tuple execution.
type execItem struct {
	tuple Tuple
	bs    *batchState
}

type batchState struct {
	recvFrom []int  // upstream instance → deduped data tuples received
	expected []int  // upstream instance → announced count
	endFrom  []bool // upstream instance → punctuation arrived
	// seen is a per-upstream-instance bitset over emission sequence
	// numbers: the dedup state that used to be a map of formatted strings.
	seen     [][]uint64
	finished bool
	// finishDone is set once the scheduled finish event has actually run
	// (FinishBatch executed, punctuations sent). Resends must wait for it:
	// between finished and finishDone the outbox and counts are still
	// incomplete.
	finishDone bool
	// flushScheduled marks the timer-based (unpunctuated) completion path.
	flushScheduled bool
	// outbox stores routed emissions for replay resend; only populated when
	// the topology can actually observe a resend trigger (replay or
	// duplicate delivery enabled), since it retains every emitted message.
	outbox []outMsg
	// counts tracks per-downstream-stage (by position), per-target emitted
	// counts.
	counts [][]int
	// lastAttempt is the highest replay attempt this instance forwarded.
	lastAttempt int32
	emitSeq     int32
	readySent   bool
	committed   bool
}

// isSeen reports whether (from, seq) was already processed.
func (bs *batchState) isSeen(from, seq int32) bool {
	bits := bs.seen[from]
	word := int(seq) / 64
	return word < len(bits) && bits[word]&(1<<(uint(seq)%64)) != 0
}

// markSeen records (from, seq) as processed.
func (bs *batchState) markSeen(from, seq int32) {
	bits := bs.seen[from]
	word := int(seq) / 64
	for word >= len(bits) {
		bits = append(bits, 0)
	}
	bits[word] |= 1 << (uint(seq) % 64)
	bs.seen[from] = bits
}

type outMsg struct {
	stage  *stage
	target int
	m      message
}

func newInstance(st *stage, idx int, key sim.Partition) *instance {
	in := &instance{
		st:      st,
		idx:     idx,
		key:     key,
		bolt:    st.factory(idx),
		batches: map[int64]*batchState{},
	}
	in.collect = func(out Tuple) {
		out.Batch = in.pendingBatch
		in.emitBuf = append(in.emitBuf, out)
	}
	in.execCompute = func() func() {
		it := in.queue[in.queueOff]
		in.queue[in.queueOff] = execItem{}
		in.queueOff++
		if in.queueOff == len(in.queue) {
			in.queue = in.queue[:0]
			in.queueOff = 0
		}
		in.pendingBatch, in.pendingBS = it.tuple.Batch, it.bs
		in.emitBuf = in.emitBuf[:0]
		in.bolt.Execute(it.tuple, in.collect)
		return in.execApply
	}
	in.execApply = func() {
		b, bs := in.pendingBatch, in.pendingBS
		for _, out := range in.emitBuf {
			in.emit(b, bs, out)
		}
		in.tryFinish(b, bs)
	}
	in.finishApply = func() {
		t := in.st.topo
		b, bs := in.pendingBatch, in.pendingBS
		defer func() { bs.finishDone = true }()
		for _, out := range in.emitBuf {
			in.emit(b, bs, out)
		}
		if t.cfg.Punctuate {
			in.sendPunctuations(b, bs, bs.lastAttempt)
		}
		if in.st.committer {
			in.enterCommit(b, bs)
		}
	}
	return in
}

func (in *instance) batch(b int64) *batchState {
	bs, ok := in.batches[b]
	if !ok {
		n := in.st.upstreamN
		bs = &batchState{
			recvFrom: make([]int, n),
			expected: make([]int, n),
			endFrom:  make([]bool, n),
			seen:     make([][]uint64, n),
		}
		in.batches[b] = bs
	}
	return bs
}

// receive handles one network message.
func (in *instance) receive(m message) {
	t := in.st.topo
	bs := in.batch(m.batchID())

	if m.batchEnd {
		if bs.finished {
			in.maybeResend(m.batchID(), bs, m.attempt)
			return
		}
		bs.endFrom[m.from] = true
		bs.expected[m.from] = m.count
		in.tryFinish(m.batchID(), bs)
		return
	}

	if bs.isSeen(m.from, m.seq) {
		if bs.finished {
			in.maybeResend(m.batchID(), bs, m.attempt)
		}
		return
	}
	if bs.finished {
		// A tuple for a batch this instance already (timer-)flushed:
		// data loss under the anomalous configuration.
		t.metrics.Stragglers++
		if debugStragglers {
			println("straggler:", in.st.name, in.idx, "batch", int(m.batchID()),
				"from", int(m.from), "seq", int(m.seq), "attempt", int(m.attempt))
		}
		return
	}
	bs.markSeen(m.from, m.seq)
	bs.recvFrom[m.from]++

	execAt := in.busyUntil
	if now := t.sim.Now(); execAt < now {
		execAt = now
	}
	execAt += t.cfg.PerTupleCost
	in.busyUntil = execAt
	// Two-phase execution: the bolt runs in the compute phase (worker-safe,
	// partition = this instance, emissions buffered), while routing — which
	// draws from the shared rng — happens in the prebuilt apply on the
	// scheduler goroutine, in schedule order. One instance's execution
	// events fire in scheduling order (busyUntil strictly increases), so
	// the queued tuple and the prebuilt closures replace the per-tuple
	// closure allocations this path used to make.
	in.queue = append(in.queue, execItem{tuple: m.tuple, bs: bs})
	t.sim.AtCompute(execAt, in.key, in.execCompute)

	if !t.cfg.Punctuate && !bs.flushScheduled {
		bs.flushScheduled = true
		batch := m.batchID()
		t.sim.After(t.cfg.FlushTimeout, func() { in.flush(batch, bs) })
	}
}

// emit routes one produced tuple to every downstream stage. Must run on the
// scheduler goroutine (it draws routing randomness and network delays).
func (in *instance) emit(b int64, bs *batchState, out Tuple) {
	t := in.st.topo
	if bs.counts == nil && len(in.st.downstream) > 0 {
		bs.counts = make([][]int, len(in.st.downstream))
	}
	for di, down := range in.st.downstream {
		t.routeBuf = down.grouping.Route(out, down.n, t.sim.Rand().Int63(), t.routeBuf[:0])
		seq := bs.emitSeq
		bs.emitSeq++
		if bs.counts[di] == nil {
			bs.counts[di] = make([]int, down.n)
		}
		for _, target := range t.routeBuf {
			bs.counts[di][target]++
			m := message{seq: seq, from: int32(in.idx), tuple: out, attempt: bs.lastAttempt}
			if t.recordResend {
				bs.outbox = append(bs.outbox, outMsg{stage: down, target: target, m: m})
			}
			t.deliver(down, target, m, t.sim.Now())
		}
	}
}

// tryFinish completes the batch when every upstream instance has punctuated
// and all announced tuples have been executed.
func (in *instance) tryFinish(b int64, bs *batchState) {
	t := in.st.topo
	if bs.finished || !t.cfg.Punctuate {
		return
	}
	for i := 0; i < in.st.upstreamN; i++ {
		if !bs.endFrom[i] {
			return
		}
		if bs.recvFrom[i] != bs.expected[i] {
			return
		}
	}
	in.finish(b, bs)
}

// flush is the timer-based completion used when punctuations are disabled:
// whatever has arrived is treated as the batch.
func (in *instance) flush(b int64, bs *batchState) {
	if !bs.finished {
		in.finish(b, bs)
	}
}

// finish runs FinishBatch, propagates punctuations downstream, and enters
// the commit path on committer stages.
func (in *instance) finish(b int64, bs *batchState) {
	t := in.st.topo
	if debugStragglers {
		println("finish:", in.st.name, in.idx, "batch", int(b),
			"recv", fmt.Sprint(bs.recvFrom), "expected", fmt.Sprint(bs.expected))
	}
	bs.finished = true
	at := in.busyUntil
	if now := t.sim.Now(); at < now {
		at = now
	}
	at += t.cfg.FinishBatchCost
	in.busyUntil = at
	t.sim.AtCompute(at, in.key, func() func() {
		in.pendingBatch, in.pendingBS = b, bs
		in.emitBuf = in.emitBuf[:0]
		in.bolt.FinishBatch(b, func(out Tuple) {
			out.Batch = b
			in.emitBuf = append(in.emitBuf, out)
		})
		return in.finishApply
	})
}

// sendPunctuations announces this instance's per-target emission counts to
// every downstream stage.
func (in *instance) sendPunctuations(b int64, bs *batchState, attempt int32) {
	t := in.st.topo
	for di, down := range in.st.downstream {
		var counts []int
		if bs.counts != nil {
			counts = bs.counts[di]
		}
		for target := 0; target < down.n; target++ {
			count := 0
			if counts != nil {
				count = counts[target]
			}
			m := message{
				seq: -1, from: int32(in.idx), tuple: Tuple{Batch: b},
				batchEnd: true, count: count, attempt: attempt,
			}
			t.deliver(down, target, m, t.sim.Now())
		}
	}
}

// enterCommit applies the batch under the commit discipline.
func (in *instance) enterCommit(b int64, bs *batchState) {
	t := in.st.topo
	switch t.mode {
	case CommitSealed:
		// Independent commit: apply locally, then ack the spout.
		t.sim.After(t.cfg.CommitCost, func() { in.applyCommit(b, bs) })
	case CommitTransactional:
		if !bs.readySent {
			bs.readySent = true
			t.txc.submitReady(readyMsg{batch: b, instance: in.idx})
		}
	}
}

// applyCommit durably applies the batch and acknowledges the spout.
func (in *instance) applyCommit(b int64, bs *batchState) {
	t := in.st.topo
	if bs.committed {
		return
	}
	bs.committed = true
	if c, ok := in.bolt.(Committer); ok {
		c.Commit(b)
	}
	// Ack travels back to the spout controller over the network.
	idx := in.idx
	t.sim.At(t.cfg.Link.Arrival(t.sim), func() { t.commitDone(b, idx) })
}

// maybeResend re-sends this instance's stored output for a finished batch
// when a replayed message with a newer attempt arrives (recovering
// downstream losses without re-execution — bolts are deterministic).
func (in *instance) maybeResend(b int64, bs *batchState, attempt int32) {
	t := in.st.topo
	if !bs.finishDone || attempt <= bs.lastAttempt {
		return
	}
	bs.lastAttempt = attempt
	for _, om := range bs.outbox {
		m := om.m
		m.attempt = attempt
		t.deliver(om.stage, om.target, m, t.sim.Now())
	}
	if t.cfg.Punctuate {
		in.sendPunctuations(b, bs, attempt)
	}
	if in.st.committer && bs.committed {
		// Re-ack: the spout may have missed the original acknowledgement.
		idx := in.idx
		t.sim.After(t.cfg.Link.MinDelay, func() { t.commitDone(b, idx) })
	}
}
