package wc

import (
	"reflect"
	"testing"

	"blazes/internal/storm"
)

func TestTweetSpoutDeterministicWorkload(t *testing.T) {
	s := &TweetSpout{Batches: 3, TuplesPerBatch: 5, WordsPerTweet: 4}
	a, okA := s.NextBatch(1, 2)
	b, okB := s.NextBatch(1, 2)
	if !okA || !okB || !reflect.DeepEqual(a, b) {
		t.Error("workload must be a pure function of (instance, batch)")
	}
	if _, ok := s.NextBatch(0, 3); ok {
		t.Error("batch beyond Batches must report ok=false")
	}
}

func TestSplitterSplitsWords(t *testing.T) {
	var got []string
	Splitter{}.Execute(storm.Tuple{Values: storm.Values{"calm seal storm"}}, func(out storm.Tuple) {
		got = append(got, out.Values[0])
	})
	want := []string{"calm", "seal", "storm"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("words = %v, want %v", got, want)
	}
}

func TestCountEmitsSortedPerBatchCounts(t *testing.T) {
	c := NewCount()
	for _, w := range []string{"b", "a", "b", "c", "a", "b"} {
		c.Execute(storm.Tuple{Batch: 7, Values: storm.Values{w}}, nil)
	}
	var got [][2]string
	c.FinishBatch(7, func(out storm.Tuple) {
		got = append(got, [2]string{out.Values[0], out.Values[1]})
	})
	want := [][2]string{{"a", "2"}, {"b", "3"}, {"c", "1"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("counts = %v, want %v", got, want)
	}
	// State for the batch is released.
	if len(c.perBatch) != 0 {
		t.Error("per-batch state should be freed after FinishBatch")
	}
}

func TestStoreIdempotentApply(t *testing.T) {
	st := NewStore()
	st.Apply(1, map[string]int64{"a": 2})
	st.Apply(1, map[string]int64{"a": 2}) // replayed commit
	st.Apply(0, map[string]int64{"b": 1})
	snap := st.Snapshot()
	if snap[1]["a"] != 2 || snap[0]["b"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	if !reflect.DeepEqual(st.CommitOrder(), []int64{1, 0}) {
		t.Errorf("order = %v", st.CommitOrder())
	}
}

func TestRunSealedProducesExactCounts(t *testing.T) {
	rc := RunConfig{Seed: 1, Workers: 4, Batches: 6, TuplesPerBatch: 20, WordsPerTweet: 4, Mode: storm.CommitSealed, Punctuate: true}
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("run did not complete")
	}
	spout := &TweetSpout{Batches: rc.Batches, TuplesPerBatch: rc.TuplesPerBatch, WordsPerTweet: rc.WordsPerTweet}
	want := spout.ExpectedCounts(rc.Workers)
	if got := res.Store.Snapshot(); !reflect.DeepEqual(got, toComparable(want)) {
		t.Errorf("store = %v\nwant %v", got, want)
	}
	if res.Metrics.AckedBatches != int(rc.Batches) {
		t.Errorf("acked = %d, want %d", res.Metrics.AckedBatches, rc.Batches)
	}
}

func toComparable(m map[int64]map[string]int64) map[int64]map[string]int64 { return m }

func TestRunTransactionalCommitsInBatchOrder(t *testing.T) {
	res, err := Run(RunConfig{Seed: 3, Workers: 4, Batches: 8, TuplesPerBatch: 10, WordsPerTweet: 3, Mode: storm.CommitTransactional, Punctuate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("run did not complete")
	}
	order := res.Store.CommitOrder()
	for i, b := range order {
		if b != int64(i) {
			t.Fatalf("commit order = %v: transactional topologies must commit batches in order", order)
		}
	}
}

func TestRunSealedCommitsOutOfOrderSometimes(t *testing.T) {
	// Sealed commits are independent; across a few seeds we should observe
	// at least one out-of-order first-commit sequence.
	sawOutOfOrder := false
	for seed := int64(1); seed <= 10 && !sawOutOfOrder; seed++ {
		res, err := Run(RunConfig{Seed: seed, Workers: 4, Batches: 8, TuplesPerBatch: 10, WordsPerTweet: 3, Mode: storm.CommitSealed, Punctuate: true})
		if err != nil {
			t.Fatal(err)
		}
		order := res.Store.CommitOrder()
		for i, b := range order {
			if b != int64(i) {
				sawOutOfOrder = true
				break
			}
		}
	}
	if !sawOutOfOrder {
		t.Error("sealed mode never committed out of order across 10 seeds; independence lost?")
	}
}

// TestSealedConfluenceAcrossSeeds: the headline guarantee Blazes certifies
// for the sealed topology — identical final store contents for every
// network schedule.
func TestSealedConfluenceAcrossSeeds(t *testing.T) {
	var base map[int64]map[string]int64
	for seed := int64(1); seed <= 6; seed++ {
		res, err := Run(RunConfig{Seed: seed, Workers: 4, Batches: 5, TuplesPerBatch: 15, WordsPerTweet: 4, Mode: storm.CommitSealed, Punctuate: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatalf("seed %d did not complete", seed)
		}
		snap := res.Store.Snapshot()
		if base == nil {
			base = snap
			continue
		}
		if !reflect.DeepEqual(base, snap) {
			t.Fatalf("seed %d produced different store contents: cross-run nondeterminism in sealed mode", seed)
		}
	}
}

// TestTransactionalDeterministicAcrossSeeds: ordering also removes
// cross-run nondeterminism (M1 sequencing).
func TestTransactionalDeterministicAcrossSeeds(t *testing.T) {
	var base map[int64]map[string]int64
	for seed := int64(1); seed <= 4; seed++ {
		res, err := Run(RunConfig{Seed: seed, Workers: 3, Batches: 4, TuplesPerBatch: 12, WordsPerTweet: 4, Mode: storm.CommitTransactional, Punctuate: true})
		if err != nil {
			t.Fatal(err)
		}
		snap := res.Store.Snapshot()
		if base == nil {
			base = snap
			continue
		}
		if !reflect.DeepEqual(base, snap) {
			t.Fatalf("seed %d diverged under transactional commits", seed)
		}
	}
}

// TestUnpunctuatedTimerFlushExhibitsRunAnomaly: without punctuations, batch
// contents are guessed by timers, so different network schedules commit
// different contents — the cross-run nondeterminism (Run) the analysis
// derives for the unsealed, uncoordinated wordcount.
func TestUnpunctuatedTimerFlushExhibitsRunAnomaly(t *testing.T) {
	engine := storm.DefaultConfig()
	engine.FlushTimeout = 3 * 1000 // 3ms: tight enough that stragglers occur
	snapshots := make([]map[int64]map[string]int64, 0, 8)
	for seed := int64(1); seed <= 8; seed++ {
		res, err := Run(RunConfig{Seed: seed, Workers: 4, Batches: 5, TuplesPerBatch: 30, WordsPerTweet: 4, Mode: storm.CommitSealed, Punctuate: false, Engine: &engine})
		if err != nil {
			t.Fatal(err)
		}
		snapshots = append(snapshots, res.Store.Snapshot())
	}
	allSame := true
	for _, s := range snapshots[1:] {
		if !reflect.DeepEqual(snapshots[0], s) {
			allSame = false
			break
		}
	}
	if allSame {
		t.Error("timer-flushed runs were identical across 8 seeds; expected cross-run nondeterminism")
	}
}

// TestReplayRecoversFromLoss: with lossy links and replay enabled, the
// sealed topology still converges to exactly-correct counts (dedup +
// idempotent keyed commits turn at-least-once into effectively-once).
func TestReplayRecoversFromLoss(t *testing.T) {
	engine := storm.DefaultConfig()
	engine.Link.DropProb = 0.05
	engine.ReplayTimeout = 200 * 1000 // 200ms
	rc := RunConfig{Seed: 5, Workers: 3, Batches: 4, TuplesPerBatch: 15, WordsPerTweet: 3, Mode: storm.CommitSealed, Punctuate: true, Engine: &engine}
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("lossy run did not complete — replay failed to recover")
	}
	spout := &TweetSpout{Batches: rc.Batches, TuplesPerBatch: rc.TuplesPerBatch, WordsPerTweet: rc.WordsPerTweet}
	if !reflect.DeepEqual(res.Store.Snapshot(), spout.ExpectedCounts(rc.Workers)) {
		t.Error("counts diverged despite replay + idempotent commits")
	}
}

// TestDuplicateDeliveryIsDeduplicated: at-least-once duplication does not
// double-count.
func TestDuplicateDeliveryIsDeduplicated(t *testing.T) {
	engine := storm.DefaultConfig()
	engine.Link.DupProb = 0.3
	rc := RunConfig{Seed: 6, Workers: 3, Batches: 4, TuplesPerBatch: 15, WordsPerTweet: 3, Mode: storm.CommitSealed, Punctuate: true, Engine: &engine}
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("run did not complete")
	}
	spout := &TweetSpout{Batches: rc.Batches, TuplesPerBatch: rc.TuplesPerBatch, WordsPerTweet: rc.WordsPerTweet}
	if !reflect.DeepEqual(res.Store.Snapshot(), spout.ExpectedCounts(rc.Workers)) {
		t.Error("duplicated delivery changed the counts")
	}
}

// TestSealedFasterThanTransactional: the headline Figure 11 relationship on
// a small instance — the sealed topology finishes the same workload sooner.
func TestSealedFasterThanTransactional(t *testing.T) {
	base := RunConfig{Seed: 9, Workers: 8, Batches: 20, TuplesPerBatch: 30, WordsPerTweet: 4, Punctuate: true}

	sealed := base
	sealed.Mode = storm.CommitSealed
	rs, err := Run(sealed)
	if err != nil {
		t.Fatal(err)
	}

	tx := base
	tx.Mode = storm.CommitTransactional
	rt, err := Run(tx)
	if err != nil {
		t.Fatal(err)
	}

	if !rs.Done || !rt.Done {
		t.Fatal("runs did not complete")
	}
	if rs.Metrics.FinishedAt >= rt.Metrics.FinishedAt {
		t.Errorf("sealed (%v) should finish before transactional (%v)",
			rs.Metrics.FinishedAt, rt.Metrics.FinishedAt)
	}
	if !reflect.DeepEqual(rs.Store.Snapshot(), rt.Store.Snapshot()) {
		t.Error("both modes must produce identical outputs (they differ only in coordination)")
	}
}
