package topogen

import (
	"strings"
	"testing"

	"blazes/internal/dataflow"
)

// mustGraph generates, parses, and validates one topology.
func mustGraph(t *testing.T, cfg Config) (Result, *dataflow.Graph) {
	t.Helper()
	res, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate(%+v): %v", cfg, err)
	}
	g, err := res.Graph()
	if err != nil {
		t.Fatalf("Graph: %v\nspec head:\n%s", err, head(res.Spec, 20))
	}
	return res, g
}

func head(s string, lines int) string {
	parts := strings.SplitN(s, "\n", lines+1)
	if len(parts) > lines {
		parts = parts[:lines]
	}
	return strings.Join(parts, "\n")
}

// checkTopology runs the full contract on one generated topology: the spec
// parses and validates (Graph), analysis completes, and lint reports no
// errors (warnings are expected and fine).
func checkTopology(t *testing.T, cfg Config) (Result, *dataflow.Analysis) {
	t.Helper()
	res, g := mustGraph(t, cfg)
	a, err := dataflow.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for _, d := range dataflow.LintGraph(g) {
		if d.Severity == dataflow.SeverityError {
			t.Fatalf("generated graph has lint error: %s", d)
		}
	}
	return res, a
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := Default(300, 42)
	r1, a1 := checkTopology(t, cfg)
	r2, a2 := checkTopology(t, cfg)
	if r1.Spec != r2.Spec {
		t.Fatal("same config produced different spec text")
	}
	if r1.Stats != r2.Stats {
		t.Fatalf("same config produced different stats: %+v vs %+v", r1.Stats, r2.Stats)
	}
	if e1, e2 := a1.Explain(), a2.Explain(); e1 != e2 {
		t.Fatal("same config produced different analysis explanations")
	}
	r3, err := Generate(Default(300, 43))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Spec == r1.Spec {
		t.Fatal("different seeds produced identical spec text")
	}
}

func TestGeneratedGraphShape(t *testing.T) {
	res, g := mustGraph(t, Default(400, 7))
	comps := g.Components()
	if len(comps) != 400 {
		t.Fatalf("components = %d, want 400", len(comps))
	}
	st := res.Stats
	if got := len(g.Streams()); got != st.Streams+st.Sources+st.Sinks {
		t.Fatalf("streams = %d, want %d internal + %d sources + %d sinks",
			got, st.Streams, st.Sources, st.Sinks)
	}
	if st.CyclePairs == 0 && st.SelfLoops == 0 {
		t.Fatal("default config should generate cycles")
	}
	if st.Sealed == 0 || st.Replicated == 0 || st.Schemas == 0 {
		t.Fatalf("default config should exercise seals/rep/schemas: %+v", st)
	}
	// No unreachable components: every component is fed (directly or
	// transitively) from a source, so BLZ003 must not fire.
	for _, d := range dataflow.LintGraph(g) {
		if d.Code == dataflow.CodeUnreachable {
			t.Fatalf("generated graph has unreachable component: %s", d)
		}
	}
}

// TestGenerateKnobMatrix sweeps every knob through its extremes: the
// contract (valid, analyzable, lint-error-free) must hold across the whole
// configuration space, not just the defaults.
func TestGenerateKnobMatrix(t *testing.T) {
	base := Default(120, 9)
	cases := map[string]func(*Config){
		"defaults":      func(*Config) {},
		"tiny":          func(c *Config) { c.Components = 1 },
		"two":           func(c *Config) { c.Components = 2 },
		"single-layer":  func(c *Config) { c.Layers = 1 },
		"deep":          func(c *Config) { c.Layers = 60 },
		"wide":          func(c *Config) { c.Layers = 2 },
		"fanin-1":       func(c *Config) { c.FanIn = 1 },
		"fanin-8":       func(c *Config) { c.FanIn = 8 },
		"acyclic":       func(c *Config) { c.CycleDensity = 0 },
		"max-cycles":    func(c *Config) { c.CycleDensity = 1 },
		"all-rep":       func(c *Config) { c.ReplicatedFraction = 1 },
		"all-sealed":    func(c *Config) { c.SealFraction = 1 },
		"all-schema":    func(c *Config) { c.SchemaFraction = 1 },
		"no-schema":     func(c *Config) { c.SchemaFraction = 0 },
		"all-dual":      func(c *Config) { c.ExtraInputFraction = 1 },
		"confluent-mix": func(c *Config) { c.Mix = AnnotationMix{CR: 1} },
		"ordered-mix":   func(c *Config) { c.Mix = AnnotationMix{OW: 1} },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := base
			mutate(&cfg)
			checkTopology(t, cfg)
		})
	}
}

func TestConfigValidation(t *testing.T) {
	bad := map[string]Config{
		"zero":        {},
		"neg-comps":   {Components: -3},
		"neg-layers":  {Components: 10, Layers: -1},
		"neg-fanin":   {Components: 10, FanIn: -2},
		"cycles>1":    {Components: 10, CycleDensity: 1.5},
		"seal<0":      {Components: 10, SealFraction: -0.1},
		"neg-weights": {Components: 10, Mix: AnnotationMix{CR: -1, CW: 2}},
	}
	for name, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("%s: Generate(%+v) should fail", name, cfg)
		}
	}
	// Layers beyond Components clamps rather than failing.
	if _, err := Generate(Config{Components: 3, Layers: 50}); err != nil {
		t.Errorf("layers clamp: %v", err)
	}
}

// TestScale10k is the scale-smoke contract: generate and fully analyze a
// 10k-component topology (CI runs this under -race). It also re-checks
// byte determinism at scale, where iteration-order bugs actually surface.
func TestScale10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-component generation is not a -short test")
	}
	cfg := Default(10_000, 8)
	res, a := checkTopology(t, cfg)
	res2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec != res2.Spec {
		t.Fatal("10k spec not byte-identical across runs")
	}
	if a.Verdict.String() == "" {
		t.Fatal("empty verdict")
	}
	t.Logf("10k stats: %+v, verdict %s", res.Stats, a.Verdict)
}

// FuzzGenerate drives arbitrary knob combinations through the full
// contract: normalize, generate, parse, validate, analyze, lint. Any
// panic, parse failure, or lint error on generator output is a bug.
func FuzzGenerate(f *testing.F) {
	f.Add(int64(1), 50, 0, 3, 0.1, 0.2, 0.15, 0.3, 0.2)
	f.Add(int64(99), 200, 5, 1, 1.0, 1.0, 1.0, 1.0, 1.0)
	f.Add(int64(-7), 1, 1, 2, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, seed int64, comps, layers, fanin int,
		cyc, rep, seal, schema, dual float64) {
		if comps < 1 || comps > 400 || layers < 0 || layers > comps || fanin < 1 || fanin > 10 {
			t.Skip()
		}
		for _, v := range []float64{cyc, rep, seal, schema, dual} {
			if v < 0 || v > 1 {
				t.Skip()
			}
		}
		cfg := Config{
			Seed: seed, Components: comps, Layers: layers, FanIn: fanin,
			CycleDensity: cyc, ReplicatedFraction: rep, SealFraction: seal,
			SchemaFraction: schema, ExtraInputFraction: dual,
		}
		res, err := Generate(cfg)
		if err != nil {
			t.Fatalf("normalized config rejected: %v", err)
		}
		g, err := res.Graph()
		if err != nil {
			t.Fatalf("generated spec does not round-trip: %v", err)
		}
		if _, err := dataflow.Analyze(g); err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		for _, d := range dataflow.LintGraph(g) {
			if d.Severity == dataflow.SeverityError {
				t.Fatalf("lint error on generated graph: %s", d)
			}
		}
	})
}
