package main

import (
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// The lint subcommand is driven in-process like the analysis flow. The
// seeded-defect corpus under testdata/lint has one spec per BLZ code, so
// the goldens pin both the catalog's coverage and the rendered form.
// Regenerate with:
//
//	go test ./cmd/blazes -run TestLint -update

// corpusSpecs returns the seeded-defect specs in name order (the order the
// command receives them, hence the order of the report).
func corpusSpecs(t *testing.T) []string {
	t.Helper()
	specs, err := filepath.Glob(filepath.Join("testdata", "lint", "*.blazes"))
	if err != nil || len(specs) == 0 {
		t.Fatalf("no corpus specs: %v", err)
	}
	sort.Strings(specs)
	return specs
}

func TestLintCorpusText(t *testing.T) {
	args := append([]string{"lint"}, corpusSpecs(t)...)
	code, stdout, stderr := exec(t, args...)
	if code != exitError || stderr != "" {
		t.Fatalf("code = %d (want %d: corpus has error-severity seeds), stderr = %q", code, exitError, stderr)
	}
	checkGolden(t, filepath.Join("lint", "corpus.txt"), stdout)

	// Every documented code appears against its seed exactly once.
	for _, want := range []string{"BLZ001", "BLZ002", "BLZ003", "BLZ004", "BLZ005", "BLZ006"} {
		if n := strings.Count(stdout, want); n != 1 {
			t.Errorf("corpus output mentions %s %d times, want 1:\n%s", want, n, stdout)
		}
	}
}

func TestLintCorpusJSON(t *testing.T) {
	args := append([]string{"lint", "-json"}, corpusSpecs(t)...)
	code, stdout, stderr := exec(t, args...)
	if code != exitError || stderr != "" {
		t.Fatalf("code = %d, stderr = %q", code, stderr)
	}
	checkGolden(t, filepath.Join("lint", "corpus.json"), stdout)

	var report []struct {
		Spec        string `json:"spec"`
		Diagnostics []struct {
			Code     string `json:"code"`
			Severity string `json:"severity"`
			Subject  string `json:"subject"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(report) != len(corpusSpecs(t)) {
		t.Fatalf("report covers %d specs, want %d", len(report), len(corpusSpecs(t)))
	}
	for _, r := range report {
		if len(r.Diagnostics) == 0 {
			t.Errorf("%s: seeded defect produced no diagnostics", r.Spec)
		}
	}
}

// TestLintCleanSpecs pins that the checked-in analysis specs stay lintable:
// wordcount is fully clean; adreport carries exactly its known BLZ006
// gossip-cycle warning, and warnings alone keep the exit code 0.
func TestLintCleanSpecs(t *testing.T) {
	code, stdout, stderr := exec(t, "lint", wordcountSpec, adreportSpec)
	if code != exitOK || stderr != "" {
		t.Fatalf("code = %d, stderr = %q", code, stderr)
	}
	checkGolden(t, filepath.Join("lint", "clean.txt"), stdout)
	if !strings.Contains(stdout, "wordcount.blazes: ok") {
		t.Errorf("wordcount should be clean:\n%s", stdout)
	}
}

// TestLintVariantSweep pins the default sweep: adreport's Report component
// has only variant annotations, so linting with no -variant flag must
// still build (first variant pinned, one component varied at a time)
// instead of failing on the variantless graph.
func TestLintVariantSweep(t *testing.T) {
	code, _, stderr := exec(t, "lint", adreportSpec)
	if code != exitOK {
		t.Fatalf("variantless lint of adreport: code = %d, stderr = %q", code, stderr)
	}
	// An explicit selection narrows the sweep but must agree on the verdict.
	code, _, stderr = exec(t, "lint", "-variant", "Report=CAMPAIGN", adreportSpec)
	if code != exitOK {
		t.Fatalf("explicit-variant lint: code = %d, stderr = %q", code, stderr)
	}
}

func TestLintUsageErrors(t *testing.T) {
	if code, _, _ := exec(t, "lint"); code != exitUsage {
		t.Errorf("no specs: code = %d, want %d", code, exitUsage)
	}
	if code, _, _ := exec(t, "lint", "testdata/does-not-exist.blazes"); code != exitUsage {
		t.Errorf("missing spec: code = %d, want %d", code, exitUsage)
	}
	if code, _, _ := exec(t, "lint", "-variant", "broken", wordcountSpec); code != exitUsage {
		t.Errorf("bad -variant: code = %d, want %d", code, exitUsage)
	}
}
