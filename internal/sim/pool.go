package sim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded fork-join worker pool with deterministic merge
// semantics: Map partitions an index space over at most Size workers and
// blocks until every index has been processed (the merge barrier). Results
// are communicated through the caller's index-addressed storage, so the
// outcome is independent of which worker ran which index — determinism is
// by construction, not by luck.
//
// A Pool carries no per-simulation state: one pool may serve many
// simulators and many concurrent Map calls (sweeps nest safely; each call
// spawns its own bounded worker set).
type Pool struct{ n int }

// NewPool creates a pool of n workers. n ≤ 1 yields an inline pool whose
// Map runs on the calling goroutine; n ≤ 0 selects GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{n: n}
}

// Size reports the worker count (1 for an inline pool).
func (p *Pool) Size() int {
	if p == nil || p.n < 1 {
		return 1
	}
	return p.n
}

// Map invokes fn(i) for every i in [0, n), using up to Size concurrent
// workers, and returns once all invocations have completed. Invocations
// must be independent: fn must not assume any ordering across indexes. A
// panic in any invocation is re-raised on the caller after the barrier.
//
// A nil or size-1 pool runs every index inline, in order — the sequential
// semantics every parallel caller must be byte-identical to.
func (p *Pool) Map(n int, fn func(i int)) {
	_ = p.MapContext(context.Background(), n, fn)
}

// MapContext is Map with cancellation: once ctx is done, workers stop
// picking up new indexes and MapContext returns ctx.Err() after the ones in
// flight finish. Results are only complete when the error is nil — a
// cancelled sweep's outputs must be discarded, not merged.
func (p *Pool) MapContext(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := p.Size()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked any
	)
	done := ctx.Done()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			for {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return ctx.Err()
}
