// Package sim sits on a deterministic-scope import path (the fixture
// module is also named blazes) so the e2e test can watch the analyzers
// fire through the real `go vet -vettool` protocol.
package sim

import "time"

// Stamp reads the wall clock: the nondet analyzer must flag it.
func Stamp() time.Time {
	return time.Now()
}

// Keys leaks map iteration order: the maporder analyzer must flag it.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
