package bloom

import "testing"

func TestRowHashBoundaries(t *testing.T) {
	// Length-prefixed string hashing: adjacent values must not concatenate
	// ambiguously, and type tags must separate I(1) from S("1").
	pairs := [][2]Row{
		{{S("as"), S("b")}, {S("a"), S("sb")}},
		{{S("ab")}, {S("a"), S("b")}},
		{{I(1)}, {S("1")}},
	}
	for _, p := range pairs {
		if p[0].hash() == p[1].hash() {
			t.Errorf("rows %v and %v collide", p[0], p[1])
		}
		if rowsSame(p[0], p[1]) {
			t.Errorf("rows %v and %v compare equal", p[0], p[1])
		}
	}
	a, b := Row{S("x"), I(3)}, Row{S("x"), I(3)}
	if a.hash() != b.hash() || !rowsSame(a, b) {
		t.Error("equal rows must hash and compare equal")
	}
}

func TestValsEqualTotal(t *testing.T) {
	// Non-comparable dynamic types (possible via rule constants) must not
	// panic; they compare by rendered form like key()'s "o" encoding.
	if !valsEqual([]byte("x"), []byte("x")) {
		t.Error("equal non-comparable values must compare equal")
	}
	if valsEqual([]byte("x"), S("x")) || valsEqual([]byte("3"), I(3)) {
		t.Error("other types must not unify with string/int64")
	}
}
