package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServeLifecycle boots the server on a free port, drives a
// create → mutate → analyze round trip over a real socket, cancels the
// context (the in-process stand-in for SIGINT/SIGTERM) and requires a
// clean exit with the documented shutdown message.
func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	done := make(chan int, 1)
	go func() {
		var errb bytes.Buffer
		done <- runServe(ctx, []string{"-addr", "127.0.0.1:0", "-max-sessions", "4"}, &out, &errb)
	}()

	base := waitForAddr(t, &out)
	// Round trip: create a session, seal, analyze.
	spec := "Count:\n  annotation: {from: words, to: counts, label: OW, subscript: [word, batch]}\ntopology:\n  sources:\n    - {name: words, to: Count.words}\n  sinks:\n    - {name: counts, from: Count.counts}\n"
	resp := post(t, base+"/v1/sessions", `{"name":"wc","spec":`+jsonString(spec)+`}`)
	if !strings.Contains(resp, `"session": "s1"`) {
		t.Fatalf("create response: %s", resp)
	}
	resp = post(t, base+"/v1/sessions/s1/mutate", `{"ops":[{"op":"seal","stream":"words","key":["batch"]}]}`)
	if !strings.Contains(resp, `"applied": 1`) {
		t.Fatalf("mutate response: %s", resp)
	}
	resp = post(t, base+"/v1/sessions/s1/analyze", "")
	if !strings.Contains(resp, `"version": "blazes.report/v2"`) {
		t.Fatalf("analyze response: %s", resp)
	}

	cancel()
	select {
	case code := <-done:
		if code != exitOK {
			t.Fatalf("exit = %d, want %d", code, exitOK)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "shut down cleanly") {
		t.Errorf("missing clean-shutdown message in: %s", out.String())
	}
}

// TestServeExitCodes pins the serve flag contract.
func TestServeExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		err  string
	}{
		{"help", []string{"serve", "-h"}, exitOK, "usage: blazes serve"},
		{"bad-flag", []string{"serve", "-nope"}, exitUsage, ""},
		{"stray-args", []string{"serve", "extra"}, exitUsage, "unexpected arguments"},
		{"bad-max-sessions", []string{"serve", "-max-sessions", "0"}, exitUsage, "-max-sessions must be positive"},
		{"bad-addr", []string{"serve", "-addr", "256.256.256.256:0"}, exitError, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := exec(t, tc.args...)
			if code != tc.code {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, tc.code, stderr)
			}
			if tc.err != "" && !strings.Contains(stderr, tc.err) {
				t.Errorf("stderr %q missing %q", stderr, tc.err)
			}
		})
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing server output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRe = regexp.MustCompile(`serving on (http://[^\s]+)`)

// waitForAddr polls the server's stdout for the announced listen address.
func waitForAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server never announced its address; output: %q", out.String())
	return ""
}

func post(t *testing.T, url, body string) string {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	resp, err := http.Post(url, "application/json", rd)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// jsonString quotes s as a JSON string literal.
func jsonString(s string) string {
	var b bytes.Buffer
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// get fetches url and returns the body.
func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestServeDurableRestart boots a journaled server, writes a session,
// shuts down, boots a second server on the same journal and requires the
// session back — with the recovery surfaced in /v1/stats.
func TestServeDurableRestart(t *testing.T) {
	dir := t.TempDir()
	spec := "Count:\n  annotation: {from: words, to: counts, label: OW, subscript: [word, batch]}\ntopology:\n  sources:\n    - {name: words, to: Count.words}\n  sinks:\n    - {name: counts, from: Count.counts}\n"

	boot := func() (base string, stop func() int) {
		ctx, cancel := context.WithCancel(context.Background())
		var out syncBuffer
		done := make(chan int, 1)
		go func() {
			var errb bytes.Buffer
			done <- runServe(ctx, []string{"-addr", "127.0.0.1:0", "-journal", dir}, &out, &errb)
		}()
		base = waitForAddr(t, &out)
		return base, func() int {
			cancel()
			select {
			case code := <-done:
				return code
			case <-time.After(10 * time.Second):
				t.Fatal("server did not shut down")
				return -1
			}
		}
	}

	base, stop := boot()
	// The boot replay (empty journal) finishes quickly; poll until writes
	// are admitted.
	deadline := time.Now().Add(10 * time.Second)
	var resp string
	for time.Now().Before(deadline) {
		resp = post(t, base+"/v1/sessions", `{"name":"wc","spec":`+jsonString(spec)+`}`)
		if strings.Contains(resp, `"session": "s1"`) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(resp, `"session": "s1"`) {
		t.Fatalf("create never succeeded: %s", resp)
	}
	resp = post(t, base+"/v1/sessions/s1/mutate", `{"ops":[{"op":"seal","stream":"words","key":["batch"]}]}`)
	if !strings.Contains(resp, `"durable": true`) {
		t.Fatalf("mutate on a journaled server should acknowledge durability: %s", resp)
	}
	if code := stop(); code != exitOK {
		t.Fatalf("first shutdown exit = %d", code)
	}

	base, stop = boot()
	defer stop()
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp = get(t, base+"/v1/sessions/s1")
		if strings.Contains(resp, `"recovered": true`) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(resp, `"recovered": true`) || !strings.Contains(resp, `"version": 1`) {
		t.Fatalf("session not recovered after restart: %s", resp)
	}
	stats := get(t, base+"/v1/stats")
	for _, want := range []string{`"durable": true`, `"recovered_sessions": 1`, `"journal"`} {
		if !strings.Contains(stats, want) {
			t.Errorf("stats missing %s: %s", want, stats)
		}
	}
}
