package chaos

import (
	"context"
	"strings"
	"testing"
)

// TestConfigValidation pins the configuration contract: the documented
// sentinels (Seeds 0, Parallelism 0/-1) default, everything else negative
// is rejected loudly — Parallelism < -1 used to be silently accepted and
// handed to the pool as "GOMAXPROCS".
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string
	}{
		{name: "zero value defaults"},
		{name: "explicit seeds and parallelism", cfg: Config{Seeds: 4, Parallelism: 2}},
		{name: "sequential parallelism", cfg: Config{Seeds: 4, Parallelism: 1}},
		{name: "one worker per CPU sentinel", cfg: Config{Seeds: 4, Parallelism: -1}},
		{name: "negative seeds", cfg: Config{Seeds: -1}, wantErr: "Seeds must be non-negative"},
		{name: "parallelism below sentinel", cfg: Config{Parallelism: -2}, wantErr: "Parallelism must be ≥ -1"},
		{name: "very negative parallelism", cfg: Config{Parallelism: -64}, wantErr: "Parallelism must be ≥ -1"},
		{name: "seeds reported before parallelism", cfg: Config{Seeds: -5, Parallelism: -9}, wantErr: "Seeds must be non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := PlanCheck(SyntheticSet(), tc.cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("PlanCheck: unexpected error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("PlanCheck accepted %+v, want error containing %q", tc.cfg, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("PlanCheck error %q does not contain %q", err, tc.wantErr)
			}
			// Check goes through the same gate.
			if _, cerr := Check(context.Background(), SyntheticSet(), tc.cfg); cerr == nil || !strings.Contains(cerr.Error(), tc.wantErr) {
				t.Fatalf("Check error %v does not contain %q", cerr, tc.wantErr)
			}
		})
	}
}

// TestPlanCheckLayout pins the cell layout Check executes: coordinated
// cells first (mechanisms × plans, in recommendation then plan order),
// stripped cells last, defaults applied.
func TestPlanCheckLayout(t *testing.T) {
	p, err := PlanCheck(SyntheticChains(false), Config{})
	if err != nil {
		t.Fatalf("PlanCheck: %v", err)
	}
	plans := DefaultPlans()
	if want := 2 * len(plans); len(p.Cells) != want {
		t.Fatalf("got %d cells, want %d (coordinated + stripped)", len(p.Cells), want)
	}
	for i, cell := range p.Cells {
		if cell.Seeds != DefaultSeeds {
			t.Errorf("cell %d: Seeds = %d, want default %d", i, cell.Seeds, DefaultSeeds)
		}
		if cell.Plan.Name != plans[i%len(plans)].Name {
			t.Errorf("cell %d: plan %q, want %q", i, cell.Plan.Name, plans[i%len(plans)].Name)
		}
		if stripped := i >= len(plans); cell.Stripped != stripped {
			t.Errorf("cell %d: Stripped = %v, want %v", i, cell.Stripped, stripped)
		}
		if _, err := ParseCoordination(cell.Mechanism); err != nil {
			t.Errorf("cell %d: %v", i, err)
		}
	}
	if p.VacuousReproduction {
		t.Error("synthetic-chains has coordination to strip; VacuousReproduction must be false")
	}
}

// TestParseCoordinationRoundTrip: every mechanism's String form parses
// back, and junk is rejected.
func TestParseCoordinationRoundTrip(t *testing.T) {
	for _, c := range coordinations {
		got, err := ParseCoordination(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCoordination(%q) = %v, %v; want %v", c.String(), got, err, c)
		}
	}
	if _, err := ParseCoordination("vector clocks (M9)"); err == nil {
		t.Error("ParseCoordination accepted an unknown mechanism")
	}
}
