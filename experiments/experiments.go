// Package experiments is the public façade over the paper's evaluation
// (Section VIII): it regenerates the Figure 5 anomaly matrix and the
// Figure 11–14 performance figures on the simulated substrate. The heavy
// machinery lives in internal packages; this package re-exports exactly
// the surface a driver program needs, so `cmd/experiments` — or any other
// harness — depends only on the public API.
package experiments

import (
	"context"
	"io"

	iexp "blazes/internal/experiments"
	"blazes/internal/sim"
)

// Time is virtual simulation time (nanoseconds).
type Time = sim.Time

// Virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Cell addresses one cell of the Figure 5 matrix: a consistency property
// under one delivery mechanism.
type Cell = iexp.Cell

// Anomalies records what the simulated substrate observed in one cell.
type Anomalies = iexp.Anomalies

// Fig5Matrix runs the Figure 5 anomaly/remediation matrix (3 properties ×
// 4 mechanisms) across the given number of seeds.
func Fig5Matrix(seeds int) map[Cell]Anomalies { return iexp.Fig5Matrix(seeds) }

// PrintFig5 renders the matrix the way the paper tabulates it.
func PrintFig5(w io.Writer, m map[Cell]Anomalies) { iexp.PrintFig5(w, m) }

// Fig11Config parameterizes the Storm wordcount throughput sweep.
type Fig11Config = iexp.Fig11Config

// Fig11Row is one (cluster size, commit mode) measurement.
type Fig11Row = iexp.Fig11Row

// DefaultFig11 returns the paper-scale sweep configuration.
func DefaultFig11() Fig11Config { return iexp.DefaultFig11() }

// Fig11 runs the wordcount sweep.
func Fig11(cfg Fig11Config) ([]Fig11Row, error) { return iexp.Fig11(cfg) }

// Fig11Context is Fig11 with cancellation: once ctx is done, the sweep's
// workers stop picking up new simulations and the call returns the
// context's error instead of rows.
func Fig11Context(ctx context.Context, cfg Fig11Config) ([]Fig11Row, error) {
	return iexp.Fig11Context(ctx, cfg)
}

// PrintFig11 renders the sweep rows.
func PrintFig11(w io.Writer, rows []Fig11Row) { iexp.PrintFig11(w, rows) }

// AdFigureConfig parameterizes an ad-network throughput/latency figure
// (Figures 12–14).
type AdFigureConfig = iexp.AdFigureConfig

// AdFigure is the measured figure: one series per coordination regime.
type AdFigure = iexp.AdFigure

// AdSeries is one regime's records-over-time series.
type AdSeries = iexp.AdSeries

// Fig12Or13 runs the ad-network comparison at the configured scale.
func Fig12Or13(cfg AdFigureConfig) (*AdFigure, error) { return iexp.Fig12Or13(cfg) }

// Fig12Or13Context is Fig12Or13 with cancellation; see Fig11Context.
func Fig12Or13Context(ctx context.Context, cfg AdFigureConfig) (*AdFigure, error) {
	return iexp.Fig12Or13Context(ctx, cfg)
}

// PrintAdFigure renders the figure as sampled series.
func PrintAdFigure(w io.Writer, fig *AdFigure, samples int) { iexp.PrintAdFigure(w, fig, samples) }
