package bloom

import (
	"fmt"
	"sort"
)

// Emission is a batch of rows leaving a node in one timestep: rows merged
// asynchronously (<~) into channels, plus the contents of output
// interfaces.
type Emission struct {
	Collection string
	Rows       []Row
}

// Node is one running instance of a module: its persistent state plus the
// timestep machinery. Nodes are driven by Deliver (network arrivals) and
// Tick (one Bloom timestep); hosts route the returned emissions over their
// network.
type Node struct {
	// ID names the node instance (e.g. "report1").
	ID     string
	mod    *Module
	state  map[string]*store
	strata map[string]int
	// pendingIns/pendingDel apply at the start of the next tick (<+, <-,
	// and network deliveries).
	pendingIns map[string][]Row
	pendingDel map[string][]Row
	ticks      int
}

// NewNode instantiates a module. The module must validate and stratify.
func NewNode(id string, mod *Module) (*Node, error) {
	if err := mod.Validate(); err != nil {
		return nil, err
	}
	strata, err := stratify(mod)
	if err != nil {
		return nil, err
	}
	n := &Node{
		ID:         id,
		mod:        mod,
		state:      map[string]*store{},
		strata:     strata,
		pendingIns: map[string][]Row{},
		pendingDel: map[string][]Row{},
	}
	for _, c := range mod.Collections() {
		n.state[c.Name] = newStore()
	}
	return n, nil
}

// Module returns the node's module.
func (n *Node) Module() *Module { return n.mod }

// Deliver queues rows for a collection; they become visible at the next
// tick (asynchronous arrival).
func (n *Node) Deliver(collection string, rows ...Row) error {
	c := n.mod.Collection(collection)
	if c == nil {
		return fmt.Errorf("bloom: node %s: deliver to unknown collection %q", n.ID, collection)
	}
	for _, r := range rows {
		if len(r) != len(c.Schema) {
			return fmt.Errorf("bloom: node %s: row %v does not match %q schema %v", n.ID, r, collection, c.Schema)
		}
		n.pendingIns[collection] = append(n.pendingIns[collection], r.clone())
	}
	return nil
}

// Pending reports whether queued work exists (delivered rows or deferred
// merges), i.e. whether a tick would make progress.
func (n *Node) Pending() bool { return len(n.pendingIns) > 0 || len(n.pendingDel) > 0 }

// Rows returns the current contents of a collection in canonical order.
func (n *Node) Rows(collection string) []Row {
	st, ok := n.state[collection]
	if !ok {
		return nil
	}
	return st.snapshot()
}

// Size returns a collection's cardinality.
func (n *Node) Size(collection string) int {
	st, ok := n.state[collection]
	if !ok {
		return 0
	}
	return st.size()
}

// Ticks reports how many timesteps have run.
func (n *Node) Ticks() int { return n.ticks }

// rowsOf implements stateReader.
func (n *Node) rowsOf(name string) []Row { return n.state[name].snapshot() }

// Tick runs one Bloom timestep:
//
//  1. apply queued insertions/deletions (deliveries, <+, <-);
//  2. evaluate the instant (<=) rules to fixpoint, stratum by stratum;
//  3. evaluate deferred (<+), delete (<-) and async (<~) rules against the
//     fixpoint state;
//  4. collect emissions (async merges and output-interface contents);
//  5. clear transient collections.
func (n *Node) Tick() ([]Emission, error) {
	n.ticks++

	// 1. Apply pending work.
	insOrder := sortedKeys(n.pendingIns)
	for _, coll := range insOrder {
		st := n.state[coll]
		for _, r := range n.pendingIns[coll] {
			st.insert(r)
		}
	}
	n.pendingIns = map[string][]Row{}
	for _, coll := range sortedKeys(n.pendingDel) {
		st := n.state[coll]
		for _, r := range n.pendingDel[coll] {
			st.remove(r)
		}
	}
	n.pendingDel = map[string][]Row{}

	// 2. Stratified fixpoint of instant rules.
	maxStratum := 0
	for _, s := range n.strata {
		if s > maxStratum {
			maxStratum = s
		}
	}
	for s := 0; s <= maxStratum; s++ {
		for {
			changed := false
			for _, r := range n.mod.rules {
				if r.Op != Instant || n.strata[r.Head] != s {
					continue
				}
				rows, err := r.Body.eval(n.mod, n)
				if err != nil {
					return nil, fmt.Errorf("bloom: node %s: rule %s: %w", n.ID, r, err)
				}
				head := n.state[r.Head]
				for _, row := range rows {
					if head.insert(row) {
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
	}

	// 3. Deferred, delete, and async rules evaluate once on the fixpoint.
	var emissions []Emission
	asyncRows := map[string][]Row{}
	for _, r := range n.mod.rules {
		if r.Op == Instant {
			continue
		}
		rows, err := r.Body.eval(n.mod, n)
		if err != nil {
			return nil, fmt.Errorf("bloom: node %s: rule %s: %w", n.ID, r, err)
		}
		if len(rows) == 0 {
			continue
		}
		switch r.Op {
		case Deferred:
			n.pendingIns[r.Head] = append(n.pendingIns[r.Head], cloneRows(rows)...)
		case Delete:
			n.pendingDel[r.Head] = append(n.pendingDel[r.Head], cloneRows(rows)...)
		case Async:
			asyncRows[r.Head] = append(asyncRows[r.Head], cloneRows(rows)...)
		}
	}
	for _, coll := range sortedKeys(asyncRows) {
		emissions = append(emissions, Emission{Collection: coll, Rows: dedup(asyncRows[coll])})
	}

	// 4. Output interfaces emit their fixpoint contents.
	for _, out := range n.mod.Outputs() {
		if rows := n.state[out].snapshot(); len(rows) > 0 {
			emissions = append(emissions, Emission{Collection: out, Rows: rows})
		}
	}

	// 5. Clear transients.
	for _, c := range n.mod.Collections() {
		if c.Kind.Transient() {
			n.state[c.Name].clear()
		}
	}
	return emissions, nil
}

// Drain ticks until no queued work remains, returning all emissions. The
// step limit guards against non-quiescing programs.
func (n *Node) Drain(maxTicks int) ([]Emission, error) {
	var out []Emission
	for i := 0; i < maxTicks; i++ {
		if !n.Pending() && i > 0 {
			return out, nil
		}
		em, err := n.Tick()
		if err != nil {
			return out, err
		}
		out = append(out, em...)
		if !n.Pending() {
			return out, nil
		}
	}
	return out, fmt.Errorf("bloom: node %s did not quiesce within %d ticks", n.ID, maxTicks)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func cloneRows(rows []Row) []Row {
	out := make([]Row, len(rows))
	for i, r := range rows {
		out[i] = r.clone()
	}
	return out
}
