package bloom

import (
	"fmt"
	"testing"

	"blazes/internal/sim"
)

// replicaModule builds the shared module shape used by the concurrency
// tests: a join over delivered edges with a grouped fanout.
func replicaModule() *Module {
	m := NewModule("rep")
	m.Input("edges", "src", "dst")
	m.Table("edge", "src", "dst")
	m.Table("path", "src", "dst")
	m.Scratch("fanout", "src", "cnt")
	m.Rule("edge", Instant, Scan("edges"))
	m.Rule("path", Instant, Scan("edge"))
	m.Rule("path", Instant,
		Project(
			Join(Project(Scan("path"), Col("src"), ColAs("dst", "mid")), Scan("edge"), [2]string{"mid", "src"}),
			Col("src"), Col("dst")))
	m.Rule("fanout", Instant,
		GroupBy(Scan("path"), []string{"src"}, Agg{Func: Count, As: "cnt"}))
	return m
}

// driveReplica delivers a deterministic workload derived from the replica
// index and ticks the node to quiescence, returning the final digest.
func driveReplica(i int) (string, error) {
	n, err := NewNode(fmt.Sprintf("rep%d", i), replicaModule())
	if err != nil {
		return "", err
	}
	for round := 0; round < 4; round++ {
		for e := 0; e < 6; e++ {
			src := S(fmt.Sprintf("n%d", (i+e)%5))
			dst := S(fmt.Sprintf("n%d", (i+e+round)%5))
			if err := n.Deliver("edges", Row{src, dst}); err != nil {
				return "", err
			}
		}
		if _, err := n.Tick(); err != nil {
			return "", err
		}
	}
	return n.Digest(), nil
}

// TestConcurrentTickAcrossReplicas pins the concurrency contract the
// parallel runtime relies on: distinct nodes share no mutable state, so
// constructing and ticking many replicas concurrently (run under -race in
// CI) yields exactly the digests of the sequential run.
func TestConcurrentTickAcrossReplicas(t *testing.T) {
	const replicas = 16
	want := make([]string, replicas)
	for i := range want {
		d, err := driveReplica(i)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = d
	}
	got := make([]string, replicas)
	errs := make([]error, replicas)
	sim.NewPool(8).Map(replicas, func(i int) {
		got[i], errs[i] = driveReplica(i)
	})
	for i := range got {
		if errs[i] != nil {
			t.Fatalf("replica %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Fatalf("replica %d: concurrent digest %q != sequential %q", i, got[i], want[i])
		}
	}
}

// TestConcurrentNodesShareModule: several nodes instantiated concurrently
// from one shared *Module (NewNode only reads it) behave identically.
func TestConcurrentNodesShareModule(t *testing.T) {
	mod := replicaModule()
	const nodes = 8
	digests := make([]string, nodes)
	errs := make([]error, nodes)
	sim.NewPool(4).Map(nodes, func(i int) {
		n, err := NewNode(fmt.Sprintf("shared%d", i), mod)
		if err != nil {
			errs[i] = err
			return
		}
		if err := n.Deliver("edges", Row{S("a"), S("b")}, Row{S("b"), S("c")}); err != nil {
			errs[i] = err
			return
		}
		if _, err := n.Tick(); err != nil {
			errs[i] = err
			return
		}
		digests[i] = n.Digest()
	})
	for i := 1; i < nodes; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d: %v", i, errs[i])
		}
		if digests[i] != digests[0] {
			t.Fatalf("node %d digest %q != node 0 %q", i, digests[i], digests[0])
		}
	}
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
}
