package sim

// LinkConfig shapes the delivery behaviour of a simulated network channel.
type LinkConfig struct {
	// MinDelay/MaxDelay bound the uniformly drawn per-message latency.
	// MaxDelay > MinDelay yields nondeterministic interleavings across
	// links — the root cause of the paper's anomalies.
	MinDelay, MaxDelay Time
	// DupProb is the probability a message is delivered twice (modelling
	// at-least-once delivery and sender retry).
	DupProb float64
	// DropProb is the probability a message is silently lost.
	DropProb float64
}

// DefaultLAN mimics a low-latency datacenter link with mild reordering.
var DefaultLAN = LinkConfig{MinDelay: 200 * Microsecond, MaxDelay: 2 * Millisecond}

// LinkStats counts a link's deliveries.
type LinkStats struct {
	Sent      int
	Delivered int
	Duplicate int
	Dropped   int
}

// Link is a unidirectional message channel between two simulated endpoints.
// Delivery order is nondeterministic within the configured delay bounds but
// fully determined by the simulator's seed.
type Link struct {
	sim     *Sim
	cfg     LinkConfig
	deliver func(msg any)
	stats   LinkStats
}

// NewLink creates a link that hands arriving messages to deliver.
func NewLink(s *Sim, cfg LinkConfig, deliver func(msg any)) *Link {
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	return &Link{sim: s, cfg: cfg, deliver: deliver}
}

// Send queues msg for delivery after a random delay, possibly duplicating
// or dropping it per the link configuration.
func (l *Link) Send(msg any) {
	l.stats.Sent++
	if l.cfg.DropProb > 0 && l.sim.rng.Float64() < l.cfg.DropProb {
		l.stats.Dropped++
		return
	}
	l.scheduleDelivery(msg, false)
	if l.cfg.DupProb > 0 && l.sim.rng.Float64() < l.cfg.DupProb {
		l.scheduleDelivery(msg, true)
	}
}

func (l *Link) scheduleDelivery(msg any, dup bool) {
	delay := l.cfg.MinDelay
	if span := l.cfg.MaxDelay - l.cfg.MinDelay; span > 0 {
		delay += Time(l.sim.rng.Int63n(int64(span) + 1))
	}
	l.sim.After(delay, func() {
		l.stats.Delivered++
		if dup {
			l.stats.Duplicate++
		}
		l.deliver(msg)
	})
}

// Stats returns the link's delivery counters.
func (l *Link) Stats() LinkStats { return l.stats }
