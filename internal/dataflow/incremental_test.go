package dataflow

import (
	"context"
	"math/rand"
	"testing"

	"blazes/internal/core"
	"blazes/internal/fd"
)

// fullEqual asserts an incremental analysis matches a fresh one on every
// observable: stream labels, verdict, and the full rendered derivation.
func fullEqual(t *testing.T, tag string, inc, fresh *Analysis) {
	t.Helper()
	if got, want := inc.Verdict.String(), fresh.Verdict.String(); got != want {
		t.Fatalf("%s: verdict = %s, want %s", tag, got, want)
	}
	if len(inc.StreamLabels) != len(fresh.StreamLabels) {
		t.Fatalf("%s: %d stream labels, want %d", tag, len(inc.StreamLabels), len(fresh.StreamLabels))
	}
	for name, l := range fresh.StreamLabels {
		if !inc.StreamLabels[name].Equal(l) {
			t.Fatalf("%s: label(%s) = %s, want %s", tag, name, inc.StreamLabels[name], l)
		}
	}
	if got, want := inc.Explain(), fresh.Explain(); got != want {
		t.Fatalf("%s: derivation differs:\n got: %s\nwant: %s", tag, got, want)
	}
}

// TestIncrementalMatchesFreshOnPaperGraphs drives the built-in graphs
// through annotation and seal flips and checks every re-analysis against a
// fresh full analysis of the same graph.
func TestIncrementalMatchesFreshOnPaperGraphs(t *testing.T) {
	graphs := []*Graph{
		WordcountTopology(false),
		WordcountTopology(true),
		AdNetwork(THRESH),
		AdNetwork(CAMPAIGN, "campaign"),
	}
	ctx := context.Background()
	for _, g := range graphs {
		inc := NewIncremental(g.Clone())
		a, _, err := inc.Analyze(ctx)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		fresh, err := Analyze(inc.Graph())
		if err != nil {
			t.Fatal(err)
		}
		fullEqual(t, g.Name, a, fresh)
	}
}

// TestIncrementalAnnotationFlip: flipping one acyclic component's
// annotation re-derives only its downstream closure and still matches a
// fresh analysis.
func TestIncrementalAnnotationFlip(t *testing.T) {
	ctx := context.Background()
	inc := NewIncremental(AdNetwork(CAMPAIGN, "campaign"))
	if _, stats, err := inc.Analyze(ctx); err != nil || !stats.Rebuilt {
		t.Fatalf("first analyze: stats=%+v err=%v", stats, err)
	}

	report := inc.Graph().Lookup("Report")
	for i, q := range []AdQuery{THRESH, POOR, CAMPAIGN, WINDOW, CAMPAIGN} {
		if !report.SetPathAnn("request", "response", q.Annotation()) {
			t.Fatal("path not found")
		}
		inc.NoteAnnotationChange("Report")
		a, stats, err := inc.Analyze(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Rebuilt {
			t.Fatalf("flip %d (%s): structural rebuild for an annotation flip", i, q)
		}
		if len(stats.Recomputed) == 0 {
			t.Fatalf("flip %d (%s): nothing recomputed", i, q)
		}
		fresh, err := Analyze(inc.Graph())
		if err != nil {
			t.Fatal(err)
		}
		fullEqual(t, string(q), a, fresh)
	}
}

// TestIncrementalCyclicAnnotationFlip: annotation changes on a component
// that lies on an interface-level cycle degrade to a structural rebuild and
// still match.
func TestIncrementalCyclicAnnotationFlip(t *testing.T) {
	ctx := context.Background()
	inc := NewIncremental(AdNetwork(THRESH))
	if _, _, err := inc.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
	cache := inc.Graph().Lookup("Cache")
	if !cache.SetPathAnn("response", "response", core.OWStar()) {
		t.Fatal("path not found")
	}
	inc.NoteAnnotationChange("Cache")
	a, stats, err := inc.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Rebuilt {
		t.Fatal("cyclic annotation change should rebuild the structure")
	}
	fresh, err := Analyze(inc.Graph())
	if err != nil {
		t.Fatal(err)
	}
	fullEqual(t, "cyclic-flip", a, fresh)
}

// TestIncrementalSealFlip: sealing and unsealing a source stream matches a
// fresh analysis without a structural rebuild.
func TestIncrementalSealFlip(t *testing.T) {
	ctx := context.Background()
	inc := NewIncremental(WordcountTopology(false))
	if _, _, err := inc.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
	for i, key := range []fd.AttrSet{fd.NewAttrSet("batch"), {}, fd.NewAttrSet("batch", "word")} {
		inc.Graph().Stream("tweets").Seal = key
		inc.NoteStreamChange("tweets")
		a, stats, err := inc.Analyze(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Rebuilt {
			t.Fatalf("flip %d: seal flip rebuilt the structure", i)
		}
		fresh, err := Analyze(inc.Graph())
		if err != nil {
			t.Fatal(err)
		}
		fullEqual(t, "seal", a, fresh)
	}
}

// TestIncrementalTopologyMutations: adding and removing streams and
// components forces a rebuild and matches.
func TestIncrementalTopologyMutations(t *testing.T) {
	ctx := context.Background()
	inc := NewIncremental(WordcountTopology(true))
	if _, _, err := inc.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
	g := inc.Graph()

	// Tap the counts stream into a new auditing component.
	g.Component("Audit").AddPath("counts", "log", core.CW)
	g.Connect("audit-in", "Count", "counts", "Audit", "counts")
	g.Sink("audit-log", "Audit", "log")
	inc.NoteTopologyChange()
	a, stats, err := inc.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Rebuilt {
		t.Fatal("topology change should rebuild")
	}
	fresh, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	fullEqual(t, "add", a, fresh)

	// Remove the tap again.
	if !g.RemoveStream("audit-in") || !g.RemoveStream("audit-log") {
		t.Fatal("RemoveStream failed")
	}
	g.Lookup("Audit").SetPaths(nil)
	inc.NoteTopologyChange()
	if _, _, err := inc.Analyze(ctx); err == nil {
		t.Fatal("component with no paths should fail validation")
	}
	// Restore a valid path and re-analyze.
	g.Lookup("Audit").SetPaths([]Path{{From: "counts", To: "log", Ann: core.CW}})
	inc.NoteTopologyChange()
	if _, _, err := inc.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalNoChangeReturnsCached: analyzing twice without a mutation
// reuses the whole analysis.
func TestIncrementalNoChangeReturnsCached(t *testing.T) {
	ctx := context.Background()
	inc := NewIncremental(AdNetwork(POOR))
	a1, _, err := inc.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	a2, stats, err := inc.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("unchanged session should return the cached analysis")
	}
	if len(stats.Recomputed) != 0 {
		t.Fatalf("recomputed %v on a no-op", stats.Recomputed)
	}
}

// TestIncrementalCancellation: a cancelled context aborts the analysis.
func TestIncrementalCancellation(t *testing.T) {
	inc := NewIncremental(AdNetwork(THRESH))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := inc.Analyze(ctx); err == nil {
		t.Fatal("cancelled context should abort")
	}
}

// TestIncrementalRandomizedFlips drives random annotation/seal flips on the
// wordcount and checks each against fresh analysis.
func TestIncrementalRandomizedFlips(t *testing.T) {
	ctx := context.Background()
	anns := []core.Annotation{core.CR, core.CW, core.ORGate("word"), core.OWGate("word", "batch"), core.ORStar(), core.OWStar()}
	rng := rand.New(rand.NewSource(7))
	inc := NewIncremental(WordcountTopology(true))
	if _, _, err := inc.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
	comps := []string{"Splitter", "Count", "Commit"}
	for i := 0; i < 60; i++ {
		name := comps[rng.Intn(len(comps))]
		c := inc.Graph().Lookup(name)
		p := c.Paths[rng.Intn(len(c.Paths))]
		c.SetPathAnn(p.From, p.To, anns[rng.Intn(len(anns))])
		inc.NoteAnnotationChange(name)
		if rng.Intn(3) == 0 {
			s := inc.Graph().Stream("tweets")
			if s.Seal.IsEmpty() {
				s.Seal = fd.NewAttrSet("batch")
			} else {
				s.Seal = fd.AttrSet{}
			}
			inc.NoteStreamChange("tweets")
		}
		a, _, err := inc.Analyze(ctx)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Analyze(inc.Graph())
		if err != nil {
			t.Fatal(err)
		}
		fullEqual(t, "rand", a, fresh)
	}
}
