package coord

import (
	"fmt"
	"sort"
)

// Punctuation is a producer's promise that it will emit no further messages
// for a stream partition (Section II / Tucker et al.).
type Punctuation struct {
	Partition string
	Producer  string
}

// String renders the punctuation.
func (p Punctuation) String() string {
	return fmt.Sprintf("seal(%s)@%s", p.Partition, p.Producer)
}

// SealTracker implements the consumer side of the paper's sealing protocol
// (Section V-B1). For each partition it:
//
//  1. buffers arriving data until the partition's complete contents are
//     known;
//  2. tracks per-producer punctuations (the local per-producer protocol);
//  3. performs a unanimous voting round over the partition's producer set
//     (learned from the registry, one lookup per partition): the partition
//     is complete only when *every* producer has sealed it;
//  4. releases the buffered, now-immutable partition for processing.
//
// When a partition has a single producer, the vote degenerates and the
// partition is released as soon as that producer's seal arrives — the
// "independent seal" fast path measured in Figure 14.
type SealTracker struct {
	// expected maps partition → producer vote set (nil until known).
	expected map[string][]string
	// sealedBy maps partition → producers that have punctuated.
	sealedBy map[string]map[string]bool
	// buffer holds per-partition data awaiting the seal.
	buffer map[string][]any
	// done marks released partitions.
	done map[string]bool
	// onSealed receives each completed partition exactly once.
	onSealed func(partition string, msgs []any)
	// lateData counts messages arriving after their partition sealed
	// (at-least-once duplicates under the protocol contract).
	lateData int
}

// NewSealTracker creates a tracker delivering completed partitions to
// onSealed.
func NewSealTracker(onSealed func(partition string, msgs []any)) *SealTracker {
	return &SealTracker{
		expected: map[string][]string{},
		sealedBy: map[string]map[string]bool{},
		buffer:   map[string][]any{},
		done:     map[string]bool{},
		onSealed: onSealed,
	}
}

// SetExpected supplies the producer vote set for a partition (from a
// registry lookup). The empty set means the partition can seal with no
// votes; callers should guard against that.
func (t *SealTracker) SetExpected(partition string, producers []string) {
	ps := append([]string(nil), producers...)
	sort.Strings(ps)
	t.expected[partition] = ps
	t.maybeRelease(partition)
}

// KnowsExpected reports whether the vote set for partition is known.
func (t *SealTracker) KnowsExpected(partition string) bool {
	_, ok := t.expected[partition]
	return ok
}

// Data buffers one message for a partition. Messages for already-released
// partitions are counted as late duplicates and dropped.
func (t *SealTracker) Data(partition string, msg any) {
	if t.done[partition] {
		t.lateData++
		return
	}
	t.buffer[partition] = append(t.buffer[partition], msg)
}

// Seal records a producer's punctuation for a partition and releases the
// partition if the vote is now unanimous.
func (t *SealTracker) Seal(p Punctuation) {
	if t.done[p.Partition] {
		return
	}
	set, ok := t.sealedBy[p.Partition]
	if !ok {
		set = map[string]bool{}
		t.sealedBy[p.Partition] = set
	}
	set[p.Producer] = true
	t.maybeRelease(p.Partition)
}

// Sealed reports whether the partition has been released.
func (t *SealTracker) Sealed(partition string) bool { return t.done[partition] }

// Pending reports how many messages are buffered for an unreleased
// partition.
func (t *SealTracker) Pending(partition string) int { return len(t.buffer[partition]) }

// LateData reports messages that arrived after their partition released.
func (t *SealTracker) LateData() int { return t.lateData }

// maybeRelease performs the unanimous vote.
func (t *SealTracker) maybeRelease(partition string) {
	if t.done[partition] {
		return
	}
	expected, known := t.expected[partition]
	if !known || len(expected) == 0 {
		return
	}
	votes := t.sealedBy[partition]
	for _, producer := range expected {
		if !votes[producer] {
			return
		}
	}
	t.done[partition] = true
	msgs := t.buffer[partition]
	delete(t.buffer, partition)
	if t.onSealed != nil {
		t.onSealed(partition, msgs)
	}
}
