package experiments

import (
	"reflect"
	"testing"

	"blazes/internal/sim"
)

// TestFig11ParallelMatchesSequential: the sweep's rows — including the
// floating-point throughput aggregation — are identical whether the
// independent simulations run sequentially or on a worker pool.
func TestFig11ParallelMatchesSequential(t *testing.T) {
	cfg := Fig11Config{
		Seed:           1,
		ClusterSizes:   []int{3, 5},
		TuplesPerBatch: 40,
		WordsPerTweet:  3,
		Duration:       60 * sim.Millisecond,
		Runs:           2,
	}
	seq, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	par, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel rows differ:\nsequential %+v\nparallel   %+v", seq, par)
	}
}

// TestFig12ParallelMatchesSequential: the ad-network figure's curves are
// identical at any parallelism.
func TestFig12ParallelMatchesSequential(t *testing.T) {
	base := AdFigureConfig{
		Seed: 1, AdServers: 3, EntriesPerServer: 40,
		Sleep: 30 * sim.Millisecond, BatchSize: 10, IncludeOrdered: true,
	}
	seq, err := Fig12Or13(base)
	if err != nil {
		t.Fatal(err)
	}
	basePar := base
	basePar.Parallelism = 4
	par, err := Fig12Or13(basePar)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel figure differs:\nsequential %+v\nparallel   %+v", seq, par)
	}
}
