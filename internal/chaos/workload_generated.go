package chaos

import (
	"fmt"
	"hash/fnv"
	"sync"

	"blazes/internal/dataflow"
	"blazes/internal/sim"
	"blazes/internal/topogen"
)

// GeneratedWorkload adapts a topogen-generated topology to the chaos
// harness: the generated graph — the same spec text `blazes gen` emits —
// is interpreted as a message-forwarding network and swept under fault
// plans like the hand-built workloads. Messages are injected at every
// source stream, forwarded once per component (deduplication terminates
// the generator's cycles), and folded into per-interface state whose
// sensitivity follows the interface's annotations: confluent interfaces
// accumulate a set, order-sensitive interfaces accumulate per-source
// hash chains, so delivery order is observable exactly where the analyzer
// says it is. Because no fault plan drops messages, the delivered *set* at
// every interface is schedule-independent; only arrival order varies —
// chaotic under CoordNone, preordained under M1, per-run under M2, and
// per-source-sequential under M3's sealing — which is precisely the
// nondeterminism the verdict is about.
//
// The workload runs one instance per seed and compares eventual state
// digests across schedules, so stripped sweeps surface cross-run (Run)
// nondeterminism on the order-sensitive interfaces the generator drew.
type GeneratedWorkload struct {
	// Components and Seed parameterize topogen.Default; the workload name
	// ("generated-<components>c-s<seed>") round-trips them through
	// LookupWorkload.
	Components int
	Seed       int64
	// MsgsPerSource is the number of messages injected per source stream;
	// 0 selects 3.
	MsgsPerSource int

	once     sync.Once
	model    *genModel
	modelErr error
}

// Generated returns the workload for topogen.Default(components, seed).
func Generated(components int, seed int64) *GeneratedWorkload {
	return &GeneratedWorkload{Components: components, Seed: seed}
}

// Name implements Workload; LookupWorkload parses this form back.
func (w *GeneratedWorkload) Name() string {
	return fmt.Sprintf("generated-%dc-s%d", w.Components, w.Seed)
}

// genIface is one component input interface of the generated graph.
type genIface struct {
	comp    int // index into genModel.comps
	name    string
	ordered bool // some path from this interface is order-sensitive
}

// genModel is the prebuilt interpreter model: indexes over the generated
// graph so every seeded run only allocates per-run state.
type genModel struct {
	graph *dataflow.Graph
	comps []string
	// ifaces lists every (component, input interface) in component-name
	// then interface-name order.
	ifaces []genIface
	// outs[c] lists the interface indexes component c forwards to, in
	// stream declaration order.
	outs [][]int
	// sources lists the target interface index of each source stream, in
	// stream declaration order; sourceNames the matching stream names.
	sources     []int
	sourceNames []string
	msgsPer     int
}

func (w *GeneratedWorkload) build() (*genModel, error) {
	res, err := topogen.Generate(topogen.Default(w.Components, w.Seed))
	if err != nil {
		return nil, fmt.Errorf("generated: %w", err)
	}
	g, err := res.Graph()
	if err != nil {
		return nil, fmt.Errorf("generated: %w", err)
	}
	m := &genModel{graph: g, msgsPer: w.MsgsPerSource}
	if m.msgsPer <= 0 {
		m.msgsPer = 3
	}
	compIdx := map[string]int{}
	for i, c := range g.Components() {
		m.comps = append(m.comps, c.Name)
		compIdx[c.Name] = i
	}
	ifaceIdx := map[string]int{}
	for ci, name := range m.comps {
		c := g.Lookup(name)
		for _, in := range c.Inputs() {
			ordered := false
			for _, p := range c.PathsFrom(in) {
				if p.Ann.OrderSensitive() {
					ordered = true
				}
			}
			ifaceIdx[name+"\x00"+in] = len(m.ifaces)
			m.ifaces = append(m.ifaces, genIface{comp: ci, name: in, ordered: ordered})
		}
	}
	m.outs = make([][]int, len(m.comps))
	for _, s := range g.Streams() {
		switch {
		case s.IsSource():
			ti, ok := ifaceIdx[s.ToComp+"\x00"+s.ToIface]
			if !ok {
				return nil, fmt.Errorf("generated: source %q targets unknown interface %s.%s", s.Name, s.ToComp, s.ToIface)
			}
			m.sources = append(m.sources, ti)
			m.sourceNames = append(m.sourceNames, s.Name)
		case s.IsSink():
			// Sinks carry state out of the dataflow; the digest already
			// covers every component, so they need no interpretation.
		default:
			fi, ok := compIdx[s.FromComp]
			if !ok {
				return nil, fmt.Errorf("generated: stream %q leaves unknown component %q", s.Name, s.FromComp)
			}
			ti, ok := ifaceIdx[s.ToComp+"\x00"+s.ToIface]
			if !ok {
				return nil, fmt.Errorf("generated: stream %q targets unknown interface %s.%s", s.Name, s.ToComp, s.ToIface)
			}
			m.outs[fi] = append(m.outs[fi], ti)
		}
	}
	return m, nil
}

func (w *GeneratedWorkload) modelOnce() (*genModel, error) {
	w.once.Do(func() { w.model, w.modelErr = w.build() })
	return w.model, w.modelErr
}

// Graph implements Workload.
func (w *GeneratedWorkload) Graph() (*dataflow.Graph, error) {
	m, err := w.modelOnce()
	if err != nil {
		return nil, err
	}
	return m.graph, nil
}

// Supports implements Workload: the interpreter can impose every Figure 5
// delivery mechanism on the generated graph, plus the registered ordering
// and sealing extensions (quorum stamps and per-partition seals both fold
// to canonical per-source orders at the digest level). Merge rewrite is
// out: generated graphs declare no commutative merges.
func (w *GeneratedWorkload) Supports(mech dataflow.Coordination) bool {
	switch mech {
	case dataflow.CoordNone, dataflow.CoordSequenced, dataflow.CoordDynamicOrder, dataflow.CoordSealed,
		dataflow.CoordQuorumOrder, dataflow.CoordPartitionSealed:
		return true
	}
	return false
}

// genMsg is one injected message: sources[src]'s seq-th message. Its
// global id is src*msgsPer+seq.
type genMsg struct {
	src, seq, id int
}

// genState is the per-run state of the interpreter.
type genState struct {
	m *genModel
	// seen[iface][id]: the message was applied at the interface (dedupe —
	// the at-least-once discipline). For confluent interfaces seen *is*
	// the state.
	seen [][]bool
	// chains[iface][src] is the order-sensitive fold: a hash chain over
	// the source's messages in arrival order (0 = no message yet; the
	// chain hash is never 0 because every link hashes non-empty input).
	chains [][]uint64
	// forwarded[comp][id]: the component already relayed the message
	// downstream (cycle termination).
	forwarded [][]bool
}

func newGenState(m *genModel) *genState {
	total := len(m.sources) * m.msgsPer
	st := &genState{
		m:         m,
		seen:      make([][]bool, len(m.ifaces)),
		chains:    make([][]uint64, len(m.ifaces)),
		forwarded: make([][]bool, len(m.comps)),
	}
	for i := range m.ifaces {
		st.seen[i] = make([]bool, total)
		if m.ifaces[i].ordered {
			st.chains[i] = make([]uint64, len(m.sources))
		}
	}
	for c := range m.comps {
		st.forwarded[c] = make([]bool, total)
	}
	return st
}

// apply folds one message into an interface's state; duplicates are
// ignored (idempotence under at-least-once delivery).
func (st *genState) apply(iface int, msg genMsg) {
	if st.seen[iface][msg.id] {
		return
	}
	st.seen[iface][msg.id] = true
	if st.m.ifaces[iface].ordered {
		st.chains[iface][msg.src] = synChainHash(st.chains[iface][msg.src],
			fmt.Sprintf("%s:%d", st.m.sourceNames[msg.src], msg.seq))
	}
}

// digest renders the canonical terminal state: every interface in model
// order, confluent interfaces by their (schedule-independent) message set,
// order-sensitive interfaces by their per-source chains.
func (st *genState) digest() string {
	h := fnv.New64a()
	for i, ifc := range st.m.ifaces {
		fmt.Fprintf(h, "%s.%s:", st.m.comps[ifc.comp], ifc.name)
		if ifc.ordered {
			for src, chain := range st.chains[i] {
				if chain != 0 {
					fmt.Fprintf(h, "%d=%x,", src, chain)
				}
			}
		} else {
			for id, ok := range st.seen[i] {
				if ok {
					fmt.Fprintf(h, "%d,", id)
				}
			}
		}
		h.Write([]byte{'|'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// propagate pushes every message through the graph in canonical
// (source, seq) order, handing each (interface, message) arrival to visit
// exactly once per interface. This is the deterministic delivery order M1
// preordains; M3's per-source sealing folds to the same per-source
// sequential order, and M2 shuffles the arrival lists it produces.
func (m *genModel) propagate(visit func(iface int, msg genMsg)) {
	total := len(m.sources) * m.msgsPer
	forwarded := make([][]bool, len(m.comps))
	for c := range m.comps {
		forwarded[c] = make([]bool, total)
	}
	arrived := make([][]bool, len(m.ifaces))
	for i := range m.ifaces {
		arrived[i] = make([]bool, total)
	}
	var deliver func(iface int, msg genMsg)
	deliver = func(iface int, msg genMsg) {
		if arrived[iface][msg.id] {
			return
		}
		arrived[iface][msg.id] = true
		visit(iface, msg)
		c := m.ifaces[iface].comp
		if forwarded[c][msg.id] {
			return
		}
		forwarded[c][msg.id] = true
		for _, ti := range m.outs[c] {
			deliver(ti, msg)
		}
	}
	for src := range m.sources {
		for seq := 0; seq < m.msgsPer; seq++ {
			deliver(m.sources[src], genMsg{src: src, seq: seq, id: src*m.msgsPer + seq})
		}
	}
}

// Run implements Workload.
func (w *GeneratedWorkload) Run(seed int64, plan FaultPlan, mech dataflow.Coordination) (Outcome, error) {
	m, err := w.modelOnce()
	if err != nil {
		return Outcome{}, err
	}
	st := newGenState(m)

	switch mech {
	case dataflow.CoordNone:
		// Chaotic delivery: every hop is a shaped link drawing its own
		// latency (and partition holds and duplicates) from the seeded
		// simulator, so arrival order at order-sensitive interfaces is
		// schedule-dependent.
		s := sim.New(seed)
		link := plan.Shape(sim.LinkConfig{MinDelay: 100 * sim.Microsecond, MaxDelay: 10 * sim.Millisecond})
		var deliver func(iface int, msg genMsg)
		send := func(at sim.Time, iface int, msg genMsg) {
			s.At(link.Release(at, at+link.Delay(s)), func() { deliver(iface, msg) })
			if link.DupProb > 0 && s.Rand().Float64() < link.DupProb {
				s.At(link.Release(at, at+link.Delay(s)), func() { deliver(iface, msg) })
			}
		}
		deliver = func(iface int, msg genMsg) {
			st.apply(iface, msg)
			c := m.ifaces[iface].comp
			if st.forwarded[c][msg.id] {
				return
			}
			st.forwarded[c][msg.id] = true
			now := s.Now()
			for _, ti := range m.outs[c] {
				send(now, ti, msg)
			}
		}
		for src := range m.sources {
			// Dense same-source send cadence (2ms) against ≥10ms latency
			// jitter: first-hop reordering is already likely, and each
			// further hop compounds it.
			for seq := 0; seq < m.msgsPer; seq++ {
				at := sim.Time(seq)*2*sim.Millisecond + sim.Time(src%8)*250*sim.Microsecond
				send(at, m.sources[src], genMsg{src: src, seq: seq, id: src*m.msgsPer + seq})
			}
		}
		s.Run()

	case dataflow.CoordSequenced, dataflow.CoordSealed,
		dataflow.CoordQuorumOrder, dataflow.CoordPartitionSealed:
		// M1 preordains the (source, seq) total order; M1q's producer
		// stamps preordain the same canonical order without the sequencer;
		// M3 buffers each source's partition until sealed and folds it in
		// sequence order, and M3p releases each partition independently —
		// the terminal fold per source is identical. All collapse to the
		// canonical propagation order, deterministic across seeds.
		m.propagate(st.apply)

	case dataflow.CoordDynamicOrder:
		// M2: an ordering service fixes one arrival order per run — all
		// interfaces agree within the run, but the order is drawn from the
		// run's seed, so different runs may disagree (Figure 5 allows
		// exactly this cross-run nondeterminism).
		arrivals := make([][]genMsg, len(m.ifaces))
		m.propagate(func(iface int, msg genMsg) {
			arrivals[iface] = append(arrivals[iface], msg)
		})
		rng := sim.New(seed).Rand()
		for i, msgs := range arrivals {
			rng.Shuffle(len(msgs), func(a, b int) { msgs[a], msgs[b] = msgs[b], msgs[a] })
			for _, msg := range msgs {
				st.apply(i, msg)
			}
		}

	default:
		return Outcome{}, fmt.Errorf("generated: unsupported mechanism %s", mech)
	}

	return Outcome{Replicas: []ReplicaOutcome{{Final: st.digest()}}}, nil
}
