// Package blazes is a from-scratch Go reproduction of "Blazes: Coordination
// Analysis for Distributed Programs" (Alvaro, Conway, Hellerstein, Maier —
// ICDE 2014): the annotation calculus and whole-dataflow analysis that
// decide where a distributed dataflow needs coordination, the synthesis of
// seal-based and order-based coordination strategies, and every substrate
// the paper's evaluation depends on — a Storm-like stream engine, a
// Bloom-like declarative runtime with white-box analysis, a Zookeeper-like
// ordering service, the seal/punctuation protocol, and a deterministic
// discrete-event network simulator.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package blazes
