// Command blazes analyzes an annotated dataflow specification (the paper's
// "grey box" input, Figure 1): it derives stream labels, reports the
// consistency verdict, and synthesizes the cheapest safe coordination
// strategy. The verify subcommand goes further and *proves* the guarantee
// by adversarial execution: it runs built-in workloads under many seeded
// delivery schedules with fault injection and checks that coordinated runs
// are outcome-invariant while stripped runs diverge. The serve subcommand
// runs the analysis as a long-running HTTP+JSON service hosting mutable,
// incrementally re-analyzed sessions (see blazes/service). The lint
// subcommand runs the severity-ranked BLZnnn graph diagnostics (seal keys
// missing from schemas, contradictory annotations, unreachable components,
// unsealed nondeterministic cycles — see DESIGN.md) over one or more specs.
// The gen subcommand emits seeded synthetic `.blazes` specs at any scale
// (layered DAGs, cyclic supernodes, mixed annotations — see blazes/topogen)
// for stress, fuzz, and benchmark corpora.
//
// Usage:
//
//	blazes -spec internal/spec/testdata/wordcount.blazes -explain
//	blazes -spec internal/spec/testdata/adreport.blazes \
//	       -variant Report=CAMPAIGN -seal clicks=campaign -synthesize
//	blazes -spec internal/spec/testdata/wordcount.blazes -seal tweets=batch -json
//	blazes verify -workload wordcount-storm -seeds 64
//	blazes verify -json
//	blazes verify -workload synthetic-chains -shrink traces/
//	blazes verify -replay traces/synthetic-chains-none-reorder.json
//	blazes verify -coordinator http://127.0.0.1:8351 -seeds 10000
//	blazes serve -addr 127.0.0.1:8351
//	blazes sweep-worker -coordinator http://127.0.0.1:8351
//	blazes lint internal/spec/testdata/wordcount.blazes internal/spec/testdata/adreport.blazes
//	blazes gen -components 10000 -seed 8 -o big.blazes
//
// Flags (analysis mode):
//
//	-spec file        the Blazes configuration file (annotations + topology)
//	-variant C=V      select a named annotation variant for component C
//	-seal S=a+b       annotate stream S with Seal on attributes a,b
//	-explain          print the full derivation tree
//	-synthesize       print synthesized coordination strategies
//	-repair           apply strategies and re-analyze to a fixpoint
//	-sequencing       prefer M1 sequencing over M2 dynamic ordering
//	-json             emit the analysis as a machine-readable Report
//	                  (mutually exclusive with -explain: the report
//	                  already carries the full derivation)
//
// Exit codes:
//
//	0  analysis completed (whatever the verdict) / every verified
//	   workload upheld the guarantee
//	1  the spec failed to load, the analysis failed, or a verified
//	   workload violated the guarantee
//	2  usage error: bad flag syntax, unknown stream, component, variant
//	   or workload
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"

	"blazes"
)

const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	// ^C / SIGTERM cancel the context: verify sweeps stop at the next
	// seed boundary and serve shuts down gracefully, instead of the
	// process dying mid-write (or not at all).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches to the analysis flow or the verify/serve subcommands; it
// returns the process exit code so tests can drive the command in-process.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "verify":
			return runVerify(ctx, args[1:], stdout, stderr)
		case "serve":
			return runServe(ctx, args[1:], stdout, stderr)
		case "sweep-worker":
			return runSweepWorker(ctx, args[1:], stdout, stderr)
		case "lint":
			return runLint(args[1:], stdout, stderr)
		case "gen":
			return runGen(args[1:], stdout, stderr)
		}
	}
	return runAnalyze(args, stdout, stderr)
}

func runAnalyze(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blazes", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath   = fs.String("spec", "", "Blazes configuration file")
		explain    = fs.Bool("explain", false, "print the full derivation")
		synthesize = fs.Bool("synthesize", false, "print synthesized strategies")
		repair     = fs.Bool("repair", false, "apply strategies and re-analyze to a fixpoint")
		sequencing = fs.Bool("sequencing", false, "prefer M1 sequencing when ordering is needed")
		jsonOut    = fs.Bool("json", false, "emit a machine-readable Report (JSON)")
		variants   multiFlag
		seals      multiFlag
	)
	fs.Var(&variants, "variant", "Component=Variant annotation selection (repeatable)")
	fs.Var(&seals, "seal", "stream=attr+attr seal annotation (repeatable)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: blazes -spec file [flags]\n       blazes verify [flags]\n       blazes serve [flags]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, `
exit codes:
  0  analysis completed (whatever the verdict)
  1  the spec failed to load or the analysis failed
  2  usage error: bad flag syntax, unknown stream, component or variant
`)
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return exitOK
		}
		return exitUsage
	}
	usageError := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "blazes: %s\n", fmt.Sprintf(format, a...))
		fs.Usage()
		return exitUsage
	}
	fatal := func(err error) int {
		// Public-API errors already carry the "blazes: " prefix.
		fmt.Fprintln(stderr, "blazes:", strings.TrimPrefix(err.Error(), "blazes: "))
		return exitError
	}

	if *specPath == "" {
		return usageError("-spec is required")
	}
	if fs.NArg() > 0 {
		return usageError("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if *explain && *jsonOut {
		return usageError("-explain cannot be combined with -json (the report already carries the full derivation)")
	}

	spec, err := blazes.LoadSpec(*specPath)
	if err != nil {
		return fatal(err)
	}

	var opts []blazes.Option
	if *sequencing {
		opts = append(opts, blazes.PreferSequencing())
	}
	for _, v := range variants {
		comp, variant, ok := strings.Cut(v, "=")
		if !ok || comp == "" || variant == "" {
			return usageError("bad -variant %q (want Component=Variant)", v)
		}
		known, exists := spec.Variants(comp)
		if !exists {
			return usageError("-variant %s: unknown component %q (components: %s)",
				v, comp, strings.Join(spec.Components(), ", "))
		}
		if !slices.Contains(known, variant) {
			return usageError("-variant %s: component %q has no variant %q (variants: %s)",
				v, comp, variant, strings.Join(known, ", "))
		}
		opts = append(opts, blazes.WithVariant(comp, variant))
	}
	knownStreams := spec.Streams()
	for _, s := range seals {
		stream, attrs, ok := strings.Cut(s, "=")
		if !ok || stream == "" || attrs == "" {
			return usageError("bad -seal %q (want stream=attr+attr)", s)
		}
		if !slices.Contains(knownStreams, stream) {
			return usageError("-seal %s: unknown stream %q (streams: %s)",
				s, stream, strings.Join(knownStreams, ", "))
		}
		key := strings.Split(attrs, "+")
		for _, attr := range key {
			if attr == "" {
				return usageError("bad -seal %q: empty attribute name (want stream=attr+attr)", s)
			}
		}
		opts = append(opts, blazes.WithSealRepair(stream, key...))
	}

	g, err := spec.Graph(blazes.SpecName(*specPath), opts...)
	if err != nil {
		return fatal(err)
	}

	analyzer := blazes.NewAnalyzer(opts...)
	// JSON mode with -repair emits only the fixpoint report; skip the
	// pre-repair analysis that would otherwise be discarded.
	var res *blazes.Result
	if !*jsonOut || !*repair {
		if *synthesize {
			res, err = analyzer.Synthesize(g)
		} else {
			res, err = analyzer.Analyze(g)
		}
		if err != nil {
			return fatal(err)
		}
	}
	var fixpoint *blazes.Result
	if *repair {
		if fixpoint, err = analyzer.Repair(g); err != nil {
			return fatal(err)
		}
	}

	if *jsonOut {
		// One report: the repair fixpoint when -repair is set (marked
		// "repaired": true), otherwise the input analysis.
		final := res
		if fixpoint != nil {
			final = fixpoint
		}
		out, err := final.Report().MarshalIndent()
		if err != nil {
			return fatal(err)
		}
		fmt.Fprintln(stdout, string(out))
		return exitOK
	}

	if *explain {
		fmt.Fprintln(stdout, res.Explain())
	} else {
		fmt.Fprintf(stdout, "verdict: %s (deterministic: %v)\n", res.Verdict(), res.Deterministic())
	}
	if *synthesize {
		for _, st := range res.Strategies() {
			fmt.Fprintf(stdout, "strategy: %s\n  reason: %s\n", st, st.Reason)
		}
	}
	if fixpoint != nil {
		// Repair reports the strategies it applied, exactly once, with the
		// post-repair verdict.
		for _, st := range fixpoint.Strategies() {
			fmt.Fprintf(stdout, "applied: %s\n  reason: %s\n", st, st.Reason)
		}
		fmt.Fprintf(stdout, "after repair (%d strategies): verdict %s (deterministic: %v)\n",
			len(fixpoint.Strategies()), fixpoint.Verdict(), fixpoint.Deterministic())
	}
	return exitOK
}
