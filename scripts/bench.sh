#!/usr/bin/env bash
# bench.sh — run the benchmark suite and record the repo's perf baseline as
# JSON.
#
# Usage:
#   scripts/bench.sh                 # 5 runs per benchmark -> BENCH_8.json
#   scripts/bench.sh -quick          # <1-minute smoke signal -> BENCH_quick.json
#   COUNT=3 OUT=/tmp/b.json scripts/bench.sh
#
# Output maps each benchmark to its mean ns/op, B/op, and allocs/op across
# COUNT runs. See EXPERIMENTS.md ("Performance baseline") for how the file
# is used to gate regressions between PRs.
#
# -quick mode is for contributors who want a fast signal: one run per
# benchmark with the Figure 11 sweep and the 10k-component scale pair
# (BenchmarkAnalyze10k, BenchmarkSessionReanalyze10k) reduced via
# BLAZES_BENCH_QUICK — the sweep and the scale graphs dominate the
# suite's runtime; quick mode runs the scale pair at 1k. The fast analysis
# benchmarks — including BenchmarkSessionReanalyze vs BenchmarkFullReanalyze,
# the incremental-session speedup pair — run at full fidelity in both
# modes. Quick numbers are a smoke signal only — Fig11's workload differs
# from the baseline's, so never compare BENCH_quick.json against
# BENCH_*.json or commit it as a baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "-quick" || "${1:-}" == "--quick" ]]; then
	QUICK=1
	shift
fi
if [[ $# -gt 0 ]]; then
	echo "usage: scripts/bench.sh [-quick]" >&2
	exit 2
fi

if [[ "$QUICK" == 1 ]]; then
	COUNT="${COUNT:-1}"
	OUT="${OUT:-BENCH_quick.json}"
	export BLAZES_BENCH_QUICK=1
else
	COUNT="${COUNT:-5}"
	OUT="${OUT:-BENCH_8.json}"
fi
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -bench . -benchmem -count "$COUNT" -run '^$' ./... | tee "$RAW"

# Average the per-run lines. Portable awk (no asorti): the sort pre-pass
# groups benchmark lines so names are emitted in lexicographic order.
sort "$RAW" | awk -v count="$COUNT" \
	-v goversion="$(go env GOVERSION)" \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (!(name in seen)) { seen[name] = 1; order[++n] = name }
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op")     { ns[name] += $i; nns[name]++ }
		if ($(i + 1) == "B/op")      { b[name]  += $i; nb[name]++ }
		if ($(i + 1) == "allocs/op") { a[name]  += $i; na[name]++ }
	}
}
END {
	printf "{\n"
	printf "  \"meta\": {\"generated_by\": \"scripts/bench.sh\", \"count\": %d, \"go\": \"%s\", \"date\": \"%s\"},\n", count, goversion, date
	printf "  \"benchmarks\": {\n"
	for (i = 1; i <= n; i++) {
		name = order[i]
		printf "    \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.2f}%s\n", \
			name, \
			nns[name] ? ns[name] / nns[name] : 0, \
			nb[name] ? b[name] / nb[name] : 0, \
			na[name] ? a[name] / na[name] : 0, \
			(i < n) ? "," : ""
	}
	printf "  }\n}\n"
}' > "$OUT"

echo "wrote $OUT"
