package verify_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"blazes/verify"
)

// TestCheckContextPreCancelled: an already-cancelled context aborts before
// any schedule runs.
func TestCheckContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := verify.CheckContext(ctx, verify.SyntheticSet(), verify.Options{Seeds: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCheckContextStopsMidSweep: cancelling during a sweep stops the
// workers at the next seed boundary instead of running the full
// multi-configuration sweep.
func TestCheckContextStopsMidSweep(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	// A deliberately deep sweep that would take far longer than the
	// timeout if cancellation did not bite.
	_, err := verify.CheckContext(ctx, verify.Wordcount(), verify.Options{Seeds: 512, Parallelism: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("cancellation took %v — workers did not stop promptly", elapsed)
	}
}

// TestCheckMatchesCheckContextBackground: the ctx-free entry point is the
// background-context special case — reports are byte-identical.
func TestCheckMatchesCheckContextBackground(t *testing.T) {
	opts := verify.Options{Seeds: 6, Parallelism: 2}
	a, err := verify.Check(verify.SyntheticSet(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := verify.CheckContext(context.Background(), verify.SyntheticSet(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := verify.MarshalReports([]*verify.Report{a})
	if err != nil {
		t.Fatal(err)
	}
	bb, err := verify.MarshalReports([]*verify.Report{b})
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Fatalf("reports differ:\n%s\nvs\n%s", ab, bb)
	}
}
