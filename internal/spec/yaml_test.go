package spec

import (
	"strings"
	"testing"
)

func TestParseScalars(t *testing.T) {
	doc, err := ParseDocument("a: hello\nb: true\nc: false\nd: 'quoted: text'\ne: \"double\"")
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		key  string
		want Value
	}{
		{"a", "hello"},
		{"b", true},
		{"c", false},
		{"d", "quoted: text"},
		{"e", "double"},
	}
	for _, tt := range tests {
		got, ok := doc.Get(tt.key)
		if !ok || got != tt.want {
			t.Errorf("Get(%q) = %v (%v), want %v", tt.key, got, ok, tt.want)
		}
	}
}

func TestParseNestedMap(t *testing.T) {
	doc, err := ParseDocument("outer:\n  inner: v\n  deep:\n    x: y")
	if err != nil {
		t.Fatal(err)
	}
	outer, _ := doc.Get("outer")
	m, ok := outer.(*Map)
	if !ok {
		t.Fatalf("outer is %T", outer)
	}
	if v, _ := m.Get("inner"); v != "v" {
		t.Errorf("inner = %v", v)
	}
	deep, _ := m.Get("deep")
	dm, ok := deep.(*Map)
	if !ok || dm.Len() != 1 {
		t.Fatalf("deep = %v", deep)
	}
}

func TestParseListIndentedAndSameLevel(t *testing.T) {
	// Both YAML styles used in the paper: dash indented under the key, and
	// dash at the key's own indentation.
	for _, src := range []string{
		"k:\n  - a\n  - b",
		"outer:\n  k:\n  - a\n  - b",
	} {
		doc, err := ParseDocument(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		var listVal Value
		if v, ok := doc.Get("k"); ok {
			listVal = v
		} else {
			outer, _ := doc.Get("outer")
			listVal, _ = outer.(*Map).Get("k")
		}
		list, ok := listVal.([]Value)
		if !ok || len(list) != 2 || list[0] != "a" || list[1] != "b" {
			t.Errorf("%q: list = %v", src, listVal)
		}
	}
}

func TestParseFlowMapAndList(t *testing.T) {
	doc, err := ParseDocument("x: { from: a, to: b, subscript: [w, z] }")
	if err != nil {
		t.Fatal(err)
	}
	x, _ := doc.Get("x")
	m, ok := x.(*Map)
	if !ok {
		t.Fatalf("x is %T", x)
	}
	if v, _ := m.Get("from"); v != "a" {
		t.Errorf("from = %v", v)
	}
	sub, _ := m.Get("subscript")
	list, ok := sub.([]Value)
	if !ok || len(list) != 2 || list[0] != "w" || list[1] != "z" {
		t.Errorf("subscript = %v", sub)
	}
}

func TestParseContinuationLines(t *testing.T) {
	src := "x: { from: a,\n     to: b }"
	doc, err := ParseDocument(src)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := doc.Get("x")
	m, ok := x.(*Map)
	if !ok {
		t.Fatalf("x is %T", x)
	}
	if v, _ := m.Get("to"); v != "b" {
		t.Errorf("to = %v", v)
	}
}

func TestParseComments(t *testing.T) {
	doc, err := ParseDocument("# heading\na: 1 # trailing\nb: 'not # a comment'")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Get("a"); v != "1" {
		t.Errorf("a = %v", v)
	}
	if v, _ := doc.Get("b"); v != "not # a comment" {
		t.Errorf("b = %v", v)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, src, wantSub string
	}{
		{"tab indent", "a:\n\tb: c", "tabs"},
		{"bare scalar", "just a scalar", "key: value"},
		{"duplicate key", "a: 1\na: 2", "duplicate"},
		{"bad flow", "x: { unclosed", "malformed"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseDocument(tt.src)
			if err == nil || !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error = %v, want substring %q", err, tt.wantSub)
			}
		})
	}
}

func TestMapOrderPreserved(t *testing.T) {
	doc, err := ParseDocument("z: 1\na: 2\nm: 3")
	if err != nil {
		t.Fatal(err)
	}
	keys := doc.Keys()
	want := []string{"z", "a", "m"}
	for i, k := range want {
		if keys[i] != k {
			t.Errorf("keys = %v, want %v", keys, want)
			break
		}
	}
}
