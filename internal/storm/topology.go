package storm

import (
	"fmt"

	"blazes/internal/coord"
	"blazes/internal/sim"
)

// CommitMode selects how committer bolts apply batches.
type CommitMode int

const (
	// CommitSealed commits each batch independently the moment its
	// punctuations arrive — out of order across batches, with no global
	// coordination. Blazes proves this safe when batches are independent
	// (the wordcount's OW_{word,batch} is compatible with Seal_batch).
	CommitSealed CommitMode = iota
	// CommitTransactional is Storm's "transactional topology": batches
	// commit in a single global order decided through the ordering
	// service, batch n+1 only after batch n.
	CommitTransactional
)

// String names the mode.
func (m CommitMode) String() string {
	if m == CommitTransactional {
		return "transactional"
	}
	return "sealed"
}

// Config shapes the simulated physical deployment.
type Config struct {
	// Link is the inter-instance network behaviour.
	Link sim.LinkConfig
	// PerTupleCost is each instance's serial execution cost per tuple.
	PerTupleCost sim.Time
	// FinishBatchCost is the cost of a bolt's per-batch finalization.
	FinishBatchCost sim.Time
	// CommitCost is the local cost of applying one batch at a committer.
	CommitCost sim.Time
	// EmitInterval paces spout emission (per tuple per spout instance).
	EmitInterval sim.Time
	// MaxInFlight bounds the number of uncommitted batches in the
	// pipeline.
	MaxInFlight int
	// BatchInterval, when positive, switches the spout to paced emission:
	// batch k is emitted at k×BatchInterval regardless of acks (an
	// offered-load, steady-state model — the regime the paper's
	// throughput measurements are taken in). Zero keeps ack-driven
	// emission bounded by MaxInFlight.
	BatchInterval sim.Time
	// ReplayTimeout re-emits a batch that has not fully committed in time
	// (at-least-once delivery). Zero disables replay.
	ReplayTimeout sim.Time
	// Punctuate controls whether batch-end punctuations flow through the
	// topology. When false, bolts flush batches on a timer instead —
	// the nondeterministic "early emission" the paper warns about.
	Punctuate bool
	// FlushTimeout is the timer used when Punctuate is false: a batch is
	// (prematurely, possibly incompletely) finished this long after its
	// first tuple reaches an instance.
	FlushTimeout sim.Time
	// Sequencer configures the ordering service for transactional mode.
	Sequencer coord.SequencerConfig
}

// DefaultConfig is a reasonable LAN deployment.
func DefaultConfig() Config {
	return Config{
		Link:            sim.DefaultLAN,
		PerTupleCost:    20 * sim.Microsecond,
		FinishBatchCost: 200 * sim.Microsecond,
		CommitCost:      500 * sim.Microsecond,
		EmitInterval:    10 * sim.Microsecond,
		MaxInFlight:     4,
		Punctuate:       true,
		FlushTimeout:    50 * sim.Millisecond,
		Sequencer:       coord.DefaultSequencer,
	}
}

// Metrics aggregates a run's outcomes.
type Metrics struct {
	// EmittedTuples counts first-attempt spout emissions.
	EmittedTuples int
	// ReplayedTuples counts re-emissions.
	ReplayedTuples int
	// CommittedBatches counts batch commits (per committer instance).
	CommittedBatches int
	// AckedBatches counts fully committed batches.
	AckedBatches int
	// Stragglers counts tuples that arrived after their batch was
	// timer-flushed (lost data under the anomalous configuration).
	Stragglers int
	// Replays counts batch replay rounds.
	Replays int
	// FinishedAt is the virtual time of the final batch ack.
	FinishedAt sim.Time
	// CommitSeries records (time, cumulative acked batches) pairs.
	CommitSeries []CommitPoint
}

// CommitPoint is one sample of commit progress.
type CommitPoint struct {
	At      sim.Time
	Batches int
}

// Throughput returns first-attempt tuples per virtual second.
func (m Metrics) Throughput() float64 {
	if m.FinishedAt == 0 {
		return 0
	}
	return float64(m.EmittedTuples) / m.FinishedAt.Seconds()
}

// Topology is a wired dataflow of one spout stage and bolt stages.
type Topology struct {
	sim  *sim.Sim
	cfg  Config
	mode CommitMode

	spoutName string
	spout     Spout
	spoutN    int

	stages  []*stage
	byName  map[string]*stage
	seq     *coord.Sequencer
	txc     *txCoordinator
	metrics Metrics

	// recordResend marks configurations under which a finished instance
	// can observe a resend trigger (batch replay or duplicate delivery).
	// Only then do instances retain their outbox and the spout its routed
	// batches — that state is large and pure overhead otherwise.
	recordResend bool
	// routeBuf is the shared routing scratch buffer (scheduler goroutine
	// only).
	routeBuf []int

	// Spout-side batch control.
	nextBatch    int64
	exhausted    bool
	totalBatches int64
	inflight     map[int64]*batchControl
	spoutOutbox  map[int64]*spoutBatch
	// scratchBatch is the reusable routed-batch buffer used when replay
	// state need not be retained.
	scratchBatch spoutBatch
	// spoutTuples/spoutOK are reusable per-instance pull buffers.
	spoutTuples [][]Values
	spoutOK     []bool
}

// spoutBatch is a batch routed once at first emission and stored verbatim so
// replays deliver byte-identical messages to the same targets (Storm's
// transactional spouts regenerate identical batches; re-routing a shuffle
// grouping on replay would defeat downstream deduplication).
type spoutBatch struct {
	sends []spoutSend
	// ends carries the per-(stage,instance) punctuation counts.
	ends []spoutEnd
}

type spoutSend struct {
	stage  *stage
	target int
	m      message
	// offset is the pacing offset from the start of (re)emission.
	offset sim.Time
}

type spoutEnd struct {
	stage  *stage
	target int
	from   int
	count  int
	offset sim.Time
}

type batchControl struct {
	acked   bool
	attempt int32
	commits map[int]bool // committer instance → committed
}

// stage is one bolt layer.
type stage struct {
	topo       *Topology
	name       string
	n          int
	factory    func(instance int) Bolt
	grouping   Grouping
	upstream   string // stage or spout name
	committer  bool
	instances  []*instance
	downstream []*stage
	upstreamN  int
}

// NewTopology creates an empty topology over the simulator.
func NewTopology(s *sim.Sim, cfg Config, mode CommitMode) *Topology {
	t := &Topology{
		sim:          s,
		cfg:          cfg,
		mode:         mode,
		byName:       map[string]*stage{},
		inflight:     map[int64]*batchControl{},
		spoutOutbox:  map[int64]*spoutBatch{},
		totalBatches: -1,
	}
	if mode == CommitTransactional {
		t.seq = coord.NewSequencer(s, cfg.Sequencer)
		t.txc = newTxCoordinator(t)
	}
	return t
}

// SetSpout installs the spout stage.
func (t *Topology) SetSpout(name string, s Spout, parallelism int) {
	t.spoutName, t.spout, t.spoutN = name, s, parallelism
}

// AddBolt appends a bolt stage reading from upstream with the given
// grouping.
func (t *Topology) AddBolt(name string, factory func(instance int) Bolt, parallelism int, g Grouping, upstream string) {
	t.addStage(name, factory, parallelism, g, upstream, false)
}

// AddCommitter appends a committing bolt stage: its FinishBatch is the
// commit point governed by the topology's CommitMode.
func (t *Topology) AddCommitter(name string, factory func(instance int) Bolt, parallelism int, g Grouping, upstream string) {
	t.addStage(name, factory, parallelism, g, upstream, true)
}

func (t *Topology) addStage(name string, factory func(int) Bolt, n int, g Grouping, upstream string, committer bool) {
	st := &stage{
		topo: t, name: name, n: n, factory: factory,
		grouping: g, upstream: upstream, committer: committer,
	}
	t.stages = append(t.stages, st)
	t.byName[name] = st
}

// Metrics returns the run's metrics (valid once the simulator has drained).
func (t *Topology) Metrics() Metrics { return t.metrics }

// Sequencer exposes the ordering service (transactional mode; nil
// otherwise).
func (t *Topology) Sequencer() *coord.Sequencer { return t.seq }

// Start wires the physical topology and begins emitting batches. Run the
// simulator to completion (or a deadline) afterwards.
func (t *Topology) Start() error {
	if t.spout == nil {
		return fmt.Errorf("storm: topology has no spout")
	}
	if len(t.stages) == 0 {
		return fmt.Errorf("storm: topology has no bolts")
	}
	for _, st := range t.stages {
		if st.upstream == t.spoutName {
			st.upstreamN = t.spoutN
			continue
		}
		up, ok := t.byName[st.upstream]
		if !ok {
			return fmt.Errorf("storm: stage %q reads from unknown stage %q", st.name, st.upstream)
		}
		up.downstream = append(up.downstream, st)
		st.upstreamN = up.n
	}
	t.recordResend = t.cfg.ReplayTimeout > 0 || t.cfg.Link.DupProb > 0
	// Instantiate instances; each gets a topology-unique partition key for
	// the deterministic parallel scheduler.
	key := sim.Partition(0)
	for _, st := range t.stages {
		st.instances = make([]*instance, st.n)
		for i := 0; i < st.n; i++ {
			st.instances[i] = newInstance(st, i, key)
			key++
		}
	}
	t.spoutTuples = make([][]Values, t.spoutN)
	t.spoutOK = make([]bool, t.spoutN)
	if t.cfg.BatchInterval > 0 {
		t.schedulePaced(0)
	} else {
		t.maybeEmit()
	}
	return nil
}

// schedulePaced emits batch b at b×BatchInterval and chains the next.
func (t *Topology) schedulePaced(b int64) {
	t.sim.At(sim.Time(b)*t.cfg.BatchInterval, func() {
		t.emitBatch(b)
		if t.exhausted {
			return
		}
		t.nextBatch = b + 1
		t.schedulePaced(b + 1)
	})
}

// spoutDownstream returns the stages reading directly from the spout.
func (t *Topology) spoutDownstream() []*stage {
	var out []*stage
	for _, st := range t.stages {
		if st.upstream == t.spoutName {
			out = append(out, st)
		}
	}
	return out
}

// maybeEmit keeps MaxInFlight batches in the pipeline.
func (t *Topology) maybeEmit() {
	for !t.exhausted && t.unackedCount() < t.cfg.MaxInFlight {
		t.emitBatch(t.nextBatch)
		if t.exhausted {
			break
		}
		t.nextBatch++
	}
}

func (t *Topology) unackedCount() int {
	n := 0
	for _, bc := range t.inflight {
		if !bc.acked {
			n++
		}
	}
	return n
}

// emitBatch pulls batch b from every spout instance (concurrently when the
// simulator carries a worker pool — each instance's share is an independent
// pure function), routes it exactly once, and streams it into the first
// stages. The routed batch is retained for replay only when a resend is
// actually observable; otherwise a reusable scratch buffer holds it just
// long enough to send.
func (t *Topology) emitBatch(b int64) {
	perInstance := t.spoutTuples
	t.sim.Pool().Map(t.spoutN, func(i int) {
		perInstance[i], t.spoutOK[i] = t.spout.NextBatch(i, b)
	})
	any := false
	for i := 0; i < t.spoutN; i++ {
		if t.spoutOK[i] {
			any = true
		} else {
			perInstance[i] = nil
		}
	}
	if !any {
		t.exhausted = true
		t.totalBatches = b
		return
	}
	t.inflight[b] = &batchControl{commits: map[int]bool{}}

	var sb *spoutBatch
	if t.recordResend {
		sb = &spoutBatch{}
		t.spoutOutbox[b] = sb
	} else {
		sb = &t.scratchBatch
		sb.sends = sb.sends[:0]
		sb.ends = sb.ends[:0]
	}
	for _, st := range t.spoutDownstream() {
		for i, tuples := range perInstance {
			counts := make([]int, st.n)
			var offset sim.Time
			for seq, vals := range tuples {
				tp := Tuple{Batch: b, Values: vals}
				t.routeBuf = st.grouping.Route(tp, st.n, t.sim.Rand().Int63(), t.routeBuf[:0])
				offset += t.cfg.EmitInterval
				for _, target := range t.routeBuf {
					counts[target]++
					sb.sends = append(sb.sends, spoutSend{
						stage: st, target: target, offset: offset,
						m: message{seq: int32(seq), from: int32(i), tuple: tp},
					})
				}
			}
			if t.cfg.Punctuate {
				for target := 0; target < st.n; target++ {
					sb.ends = append(sb.ends, spoutEnd{
						stage: st, target: target, from: i, count: counts[target], offset: offset,
					})
				}
			}
		}
	}
	for i := range perInstance {
		t.metrics.EmittedTuples += len(perInstance[i])
	}
	t.sendBatch(sb, b, 1)
	if t.cfg.ReplayTimeout > 0 {
		t.scheduleReplayCheck(b)
	}
}

// sendBatch streams the routed batch (attempt n) into the first stages,
// pacing tuples and closing with punctuations.
func (t *Topology) sendBatch(sb *spoutBatch, b int64, attempt int32) {
	if sb == nil {
		return
	}
	start := t.sim.Now()
	for _, snd := range sb.sends {
		m := snd.m
		m.attempt = attempt
		t.deliver(snd.stage, snd.target, m, start+snd.offset)
	}
	for _, end := range sb.ends {
		t.deliver(end.stage, end.target, message{
			seq: -1, from: int32(end.from), tuple: Tuple{Batch: b},
			batchEnd: true, count: end.count, attempt: attempt,
		}, start+end.offset)
	}
}

// deliver schedules a message onto an instance after a network delay drawn
// from the link configuration (independently per message, which is what
// reorders them). A message is "sent" at notBefore (spout pacing offsets
// schedule sends in the future); partition windows open at that instant
// hold it at the sender until they heal.
func (t *Topology) deliver(st *stage, idx int, m message, notBefore sim.Time) {
	delay := t.cfg.Link.Delay(t.sim)
	if t.cfg.Link.DropProb > 0 && t.sim.Rand().Float64() < t.cfg.Link.DropProb {
		return
	}
	at := t.cfg.Link.Release(notBefore, notBefore+delay)
	if now := t.sim.Now(); at < now {
		at = now
	}
	ins := st.instances[idx]
	recv := func() { ins.receive(m) }
	t.sim.At(at, recv)
	if t.cfg.Link.DupProb > 0 && t.sim.Rand().Float64() < t.cfg.Link.DupProb {
		t.sim.At(at+delay, recv)
	}
}

// scheduleReplayCheck re-emits the batch if it has not been acked in time.
func (t *Topology) scheduleReplayCheck(b int64) {
	t.sim.After(t.cfg.ReplayTimeout, func() {
		bc := t.inflight[b]
		if bc == nil || bc.acked {
			return
		}
		bc.attempt++
		t.metrics.Replays++
		sb := t.spoutOutbox[b]
		if sb != nil {
			t.metrics.ReplayedTuples += len(sb.sends)
		}
		t.sendBatch(sb, b, bc.attempt+1)
		t.scheduleReplayCheck(b)
	})
}

// commitDone is called when one committer instance has durably applied a
// batch.
func (t *Topology) commitDone(b int64, committerIdx int) {
	t.metrics.CommittedBatches++
	bc := t.inflight[b]
	if bc == nil || bc.acked {
		return
	}
	bc.commits[committerIdx] = true
	committers := t.committerStage()
	if committers == nil || len(bc.commits) < committers.n {
		return
	}
	bc.acked = true
	t.metrics.AckedBatches++
	t.metrics.FinishedAt = t.sim.Now()
	t.metrics.CommitSeries = append(t.metrics.CommitSeries, CommitPoint{At: t.sim.Now(), Batches: t.metrics.AckedBatches})
	delete(t.spoutOutbox, b)
	if t.cfg.BatchInterval == 0 {
		t.maybeEmit()
	}
}

func (t *Topology) committerStage() *stage {
	for _, st := range t.stages {
		if st.committer {
			return st
		}
	}
	return nil
}

// Done reports whether every emitted batch has fully committed.
func (t *Topology) Done() bool {
	if !t.exhausted {
		return false
	}
	for _, bc := range t.inflight {
		if !bc.acked {
			return false
		}
	}
	return true
}
