package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"regexp"
	"strings"
	"time"

	"blazes/service"
)

// Chaos mode: the kill-9 durability acceptance test. The sequence is
//
//  1. spawn `-bin serve -journal dir` and open a mutate burst against it;
//  2. SIGKILL the server midway through the burst — no drain, no Close,
//     exactly the crash the journal exists for;
//  3. respawn on the same journal and wait out the boot replay;
//  4. hold the recovered state to the client's acknowledgement record:
//     every acknowledged session must be back, every recovered version
//     must equal the acknowledged op count (+1 only when one op was
//     in flight unacknowledged at the kill), and each recovered session's
//     analysis must be byte-identical to a fresh in-process server fed the
//     same op sequence.
//
// Anything less is lost acknowledged state and exits 1.

// serverProc is a spawned `blazes serve` child.
type serverProc struct {
	cmd  *exec.Cmd
	base string
}

var chaosAddrRe = regexp.MustCompile(`serving on (http://[^\s]+)`)

// spawnServer starts `-bin serve` on a free port with the configured
// journal and waits for the announced address.
func spawnServer(ctx context.Context, cfg config, stderr io.Writer) (*serverProc, error) {
	args := []string{"serve", "-addr", "127.0.0.1:0", "-max-sessions", fmt.Sprint(cfg.sessions + 8)}
	if cfg.journal != "" {
		args = append(args, "-journal", cfg.journal)
	}
	cmd := exec.CommandContext(ctx, cfg.bin, args...)
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawning %s: %w", cfg.bin, err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := chaosAddrRe.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
			}
		}
	}()
	select {
	case base := <-addrCh:
		return &serverProc{cmd: cmd, base: base}, nil
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("%s serve never announced its address", cfg.bin)
	case <-ctx.Done():
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, ctx.Err()
	}
}

// kill delivers SIGKILL — the crash under test, not a shutdown.
func (p *serverProc) kill() {
	_ = p.cmd.Process.Kill()
	_ = p.cmd.Wait()
}

// stop ends a child that outlived its test (best effort; chaos mode
// normally kills explicitly).
func (p *serverProc) stop() { p.kill() }

func runChaos(ctx context.Context, cfg config, stdout, stderr io.Writer) int {
	proc, err := spawnServer(ctx, cfg, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return exitError
	}
	defer proc.stop()

	// Kill partway through the arrival schedule so the SIGKILL lands amid
	// in-flight mutates.
	burstLen := time.Duration(float64(cfg.sessions) / cfg.rate * float64(time.Second))
	killAt := make(chan struct{})
	killTimer := time.AfterFunc(burstLen/2, func() {
		fmt.Fprintf(stderr, "loadgen: chaos: SIGKILL mid-burst\n")
		proc.kill()
		close(killAt)
	})
	defer killTimer.Stop()

	rec := newRecorder()
	states := burst(ctx, cfg, proc.base, rec, killAt)
	select {
	case <-killAt:
	default:
		fmt.Fprintf(stderr, "loadgen: chaos: burst finished before the kill fired — raise -sessions or lower -rate\n")
		return exitError
	}

	fmt.Fprintf(stderr, "loadgen: chaos: restarting on %s\n", cfg.journal)
	proc2, err := spawnServer(ctx, cfg, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return exitError
	}
	defer proc2.stop()
	if err := waitRecovered(ctx, proc2.base); err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return exitError
	}

	lost, checked, err := verifyRecovered(ctx, proc2.base, states, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: chaos: %v\n", err)
		return exitError
	}
	ackedOps := 0
	ackedSessions := 0
	for _, st := range states {
		if st.created {
			ackedSessions++
			ackedOps += len(st.acked)
		}
	}
	fmt.Fprintf(stderr, "loadgen: chaos: %d acked sessions (%d acked ops), %d differentially checked, %d lost\n",
		ackedSessions, ackedOps, checked, lost)
	if lost > 0 {
		fmt.Fprintf(stderr, "loadgen: chaos: FAIL — acknowledged state was lost\n")
		return exitError
	}
	fmt.Fprintln(stdout, "loadgen: chaos: PASS — zero acknowledged-op loss")
	return exitOK
}

// waitRecovered polls /v1/stats until the boot replay finishes.
func waitRecovered(ctx context.Context, base string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		resp, err := client.Get(base + "/v1/stats")
		if err == nil {
			var st struct {
				Recovering bool `json:"recovering"`
			}
			err := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil && !st.Recovering {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server still recovering after 60s")
}

// verifyRecovered holds the restarted server to the acknowledgement
// record. It returns how many sessions lost acknowledged state and how
// many passed the byte-differential against a fresh replay.
func verifyRecovered(ctx context.Context, base string, states []*sessionState, stderr io.Writer) (lost, checked int, err error) {
	client := &http.Client{Timeout: 30 * time.Second}
	for _, st := range states {
		if !st.created {
			continue // never acknowledged; the journal owes us nothing
		}
		var info service.SessionInfo
		code, err := getJSON(ctx, client, base+"/v1/sessions/"+st.id, &info)
		if err != nil {
			return lost, checked, err
		}
		if code != http.StatusOK {
			fmt.Fprintf(stderr, "loadgen: chaos: %s (load-%d) missing after restart (HTTP %d)\n", st.id, st.index, code)
			lost++
			continue
		}
		want := len(st.acked)
		ops := st.acked
		switch {
		case info.Version == uint64(want):
			// exactly the acknowledged sequence
		case info.Version == uint64(want+1) && st.inflight != nil:
			// the op in flight at the kill was journaled before the
			// acknowledgement could be sent — durable, never acked. That
			// is allowed; fold it into the replay oracle.
			ops = append(append([]service.MutateOp(nil), st.acked...), *st.inflight)
		default:
			fmt.Fprintf(stderr, "loadgen: chaos: %s recovered at version %d, acknowledged %d (inflight %v)\n",
				st.id, info.Version, want, st.inflight != nil)
			lost++
			continue
		}

		gotRep, err := analyzeBody(ctx, client, base+"/v1/sessions/"+st.id+"/analyze")
		if err != nil {
			return lost, checked, err
		}
		wantRep, err := freshReplayAnalysis(ctx, st, ops)
		if err != nil {
			return lost, checked, fmt.Errorf("fresh replay for %s: %w", st.id, err)
		}
		if gotRep != wantRep {
			fmt.Fprintf(stderr, "loadgen: chaos: %s analysis differs from fresh replay of its acknowledged ops\n", st.id)
			lost++
			continue
		}
		checked++
	}
	return lost, checked, nil
}

// freshReplayAnalysis rebuilds the session on a fresh in-memory server by
// replaying its acknowledged ops through the same HTTP surface, and
// returns the analyze body — the byte-identical oracle for the recovered
// server's answer.
func freshReplayAnalysis(ctx context.Context, st *sessionState, ops []service.MutateOp) (string, error) {
	h := service.New(service.Options{}).Handler()
	create, err := json.Marshal(service.CreateRequest{Name: fmt.Sprintf("load-%d", st.index), Spec: wordcountSpec})
	if err != nil {
		return "", err
	}
	if code, body := handlerCall(ctx, h, "POST", "/v1/sessions", string(create)); code != http.StatusCreated {
		return "", fmt.Errorf("fresh create: %d %s", code, body)
	}
	if len(ops) > 0 {
		mb, err := json.Marshal(service.MutateRequest{Ops: ops})
		if err != nil {
			return "", err
		}
		if code, body := handlerCall(ctx, h, "POST", "/v1/sessions/s1/mutate", string(mb)); code != http.StatusOK {
			return "", fmt.Errorf("fresh mutate: %d %s", code, body)
		}
	}
	_, body := handlerCall(ctx, h, "POST", "/v1/sessions/s1/analyze", "")
	return body, nil
}

// handlerCall invokes a handler directly (no socket) and returns status
// and body.
func handlerCall(ctx context.Context, h http.Handler, method, path, body string) (int, string) {
	// Always give the request a body: handlers built for real server
	// requests assume a non-nil Body, which NewRequest only guarantees for
	// a non-nil reader.
	req, _ := http.NewRequestWithContext(ctx, method, "http://loadgen"+path, strings.NewReader(body))
	rec := &responseRecorder{header: http.Header{}}
	h.ServeHTTP(rec, req)
	return rec.code, rec.body.String()
}

// responseRecorder is a minimal httptest.ResponseRecorder stand-in
// (net/http/httptest is test-only by convention; this binary ships).
type responseRecorder struct {
	header http.Header
	body   strings.Builder
	code   int
}

func (r *responseRecorder) Header() http.Header { return r.header }
func (r *responseRecorder) WriteHeader(c int) {
	if r.code == 0 {
		r.code = c
	}
}
func (r *responseRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(p)
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode < 300 && out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// analyzeBody POSTs an analyze and returns the raw body for byte
// comparison.
func analyzeBody(ctx context.Context, client *http.Client, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}
