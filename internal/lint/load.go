package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	ImportMap  map[string]string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists the given package patterns (plus their dependencies, for
// export data), parses and type-checks every non-dependency match, and
// returns the packages ready for Analyze. It drives the go tool the same
// way `go vet` does, so a package that builds also loads.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,Module,ImportMap,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(t.ImportPath, t.Dir, t.GoFiles, t.ImportMap, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses the listed files (skipping tests) and type-checks them
// against the export data of their dependencies.
func typecheck(importPath, dir string, goFiles []string, importMap map[string]string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	pkg, info, err := check(importPath, fset, files, importMap, exports)
	if err != nil {
		return nil, err
	}
	return &Package{ImportPath: importPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// check runs go/types over parsed files, resolving imports through the
// export-data index (the same compiler-produced files go vet hands its
// analyzers, so there is no second type world).
func check(importPath string, fset *token.FileSet, files []*ast.File, importMap map[string]string, exports map[string]string) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(error) {}, // collect nothing; first error returned below
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return pkg, info, nil
}
