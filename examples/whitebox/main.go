// Whitebox: write Bloom rules, extract C.O.W.R. annotations automatically
// (no annotation file), run the Blazes analysis and synthesis end to end —
// the Section VII workflow.
//
//	go run ./examples/whitebox
package main

import (
	"fmt"

	"blazes"
	"blazes/substrate"
)

func main() {
	for _, query := range []blazes.AdQuery{blazes.THRESH, blazes.POOR, blazes.CAMPAIGN} {
		mod, err := substrate.ReportModule(query, 100)
		if err != nil {
			panic(err)
		}
		analysis, err := substrate.ExtractAnnotations(mod)
		if err != nil {
			panic(err)
		}
		fmt.Printf("== %s: extracted annotations ==\n", query)
		for _, p := range analysis.Paths {
			fmt.Printf("  %s → %s : %s\n", p.From, p.To, p.Ann)
		}

		// Assemble the full network (Report + Cache, both auto-annotated)
		// and analyze; for CAMPAIGN also seal the click stream.
		var seal []string
		if query == blazes.CAMPAIGN {
			seal = []string{substrate.ColCampaign}
		}
		g, err := substrate.WhiteboxAdNetwork(query, seal...)
		if err != nil {
			panic(err)
		}
		res, err := blazes.NewAnalyzer().Synthesize(g)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  whole-dataflow verdict: %s (deterministic: %v)\n", res.Verdict(), res.Deterministic())
		for _, st := range res.Strategies() {
			fmt.Printf("  strategy: %s\n", st)
		}
		fmt.Println()
	}
}
