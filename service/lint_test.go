package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"blazes"
)

// TestLintEndpoint drives /lint across a session's lifecycle: clean after
// create, warning after an incompatible seal lands, read-only throughout
// (the version a mutation set is reported, never bumped, by linting).
func TestLintEndpoint(t *testing.T) {
	h := New(Options{}).Handler()

	code, body := call(t, h, "POST", "/v1/sessions", CreateRequest{
		Name: "wordcount",
		Spec: wordcountSpecText(t),
	})
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}

	code, body = call(t, h, "GET", "/v1/sessions/s1/lint", nil)
	if code != http.StatusOK {
		t.Fatalf("lint: %d %s", code, body)
	}
	checkGolden(t, "lint_wordcount_clean.json", body)
	var resp LintResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Errors || len(resp.Diagnostics) != 0 {
		t.Fatalf("fresh wordcount should lint clean: %+v", resp)
	}
	version := resp.Version

	// Seal words on sentiment: Count gates on (word, batch) and sentiment
	// determines neither attribute, so BLZ005 fires — a warning, not an
	// error (a batch seal, by contrast, is compatible and clean).
	code, body = call(t, h, "POST", "/v1/sessions/s1/mutate", MutateRequest{
		Ops: []MutateOp{{Op: "seal", Stream: "words", Key: []string{"sentiment"}}},
	})
	if code != http.StatusOK {
		t.Fatalf("mutate: %d %s", code, body)
	}

	code, body = call(t, h, "GET", "/v1/sessions/s1/lint", nil)
	if code != http.StatusOK {
		t.Fatalf("lint after seal: %d %s", code, body)
	}
	checkGolden(t, "lint_wordcount_sealed.json", body)
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Diagnostics) != 1 || resp.Diagnostics[0].Code != blazes.CodeSealIncompatible {
		t.Fatalf("want one %s, got %+v", blazes.CodeSealIncompatible, resp.Diagnostics)
	}
	if resp.Errors {
		t.Error("a warning alone must not set errors")
	}
	if resp.Version <= version {
		t.Errorf("mutation should have bumped the reported version (%d -> %d)", version, resp.Version)
	}

	// Linting twice reports the same version: the inspection is read-only.
	code, body = call(t, h, "GET", "/v1/sessions/s1/lint", nil)
	if code != http.StatusOK {
		t.Fatalf("second lint: %d %s", code, body)
	}
	var again LintResponse
	if err := json.Unmarshal([]byte(body), &again); err != nil {
		t.Fatal(err)
	}
	if again.Version != resp.Version {
		t.Errorf("lint mutated the session: version %d -> %d", resp.Version, again.Version)
	}

	if code, _ := call(t, h, "GET", "/v1/sessions/nope/lint", nil); code != http.StatusNotFound {
		t.Errorf("unknown session: %d, want 404", code)
	}
}
