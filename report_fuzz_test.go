package blazes

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReportRoundTrip: any JSON DecodeReport accepts must survive a
// marshal → decode → marshal cycle byte-identically (the wire schema is
// loss-free), across both the v1 and v2 schemas. The corpus seeds are the
// recorded golden documents — v1 fixtures, current v2 goldens, and a
// hand-built delta-carrying session report — plus degenerate shapes.
func FuzzReportRoundTrip(f *testing.F) {
	for _, name := range []string{
		"report_wordcount_v1.json",
		"report_adreport_v1.json",
		"report_wordcount.json",
		"report_adreport.json",
	} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// A session report with a populated Delta section.
	sessionReport := func() []byte {
		s, err := OpenSession(WordcountTopology(false))
		if err != nil {
			f.Fatal(err)
		}
		if _, err := s.Synthesize(f.Context()); err != nil {
			f.Fatal(err)
		}
		if err := s.SealStream("tweets", "batch"); err != nil {
			f.Fatal(err)
		}
		rep, err := s.Synthesize(f.Context())
		if err != nil {
			f.Fatal(err)
		}
		out, err := rep.MarshalIndent()
		if err != nil {
			f.Fatal(err)
		}
		return out
	}
	f.Add(sessionReport())
	f.Add([]byte(`{"version":"blazes.report/v2"}`))
	f.Add([]byte(`{"version":"blazes.report/v1","streams":[{"name":"s","label":{"kind":"Async","severity":2}}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReport(data)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		first, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("accepted report failed to marshal: %v", err)
		}
		back, err := DecodeReport(first)
		if err != nil {
			t.Fatalf("re-decode of own output failed: %v\noutput: %s", err, first)
		}
		second, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip not stable:\nfirst:  %s\nsecond: %s", first, second)
		}
	})
}
