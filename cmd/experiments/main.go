// Command experiments regenerates the paper's evaluation figures (Section
// VIII) and the Figure 5 anomaly matrix on the simulated substrate,
// printing the series/rows the paper plots.
//
// Usage:
//
//	experiments -fig all           # everything, paper-scale
//	experiments -fig 11            # the Storm wordcount sweep
//	experiments -fig 12 -quick     # reduced-scale ad-network run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"blazes/experiments"
)

func main() {
	// ^C / SIGTERM cancel the sweeps at the next simulation boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 5, 11, 12, 13, 14, or all")
		quick    = flag.Bool("quick", false, "reduced scale (faster, same shapes)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		parallel = flag.Int("parallel", 0, "workers for a figure's independent simulations (0 = one per CPU, 1 = sequential; figures are identical at any setting)")
	)
	flag.Parse()
	parallelism := *parallel
	if parallelism == 0 {
		parallelism = -1 // one worker per CPU
	}

	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	entries := 1000
	sleep := experiments.Time(0)
	batch := 0
	if *quick {
		entries = 150
		sleep = 50 * experiments.Millisecond
		batch = 10
	}

	run("5", func() error {
		experiments.PrintFig5(os.Stdout, experiments.Fig5Matrix(8))
		return nil
	})
	run("11", func() error {
		cfg := experiments.DefaultFig11()
		cfg.Seed = *seed
		cfg.Parallelism = parallelism
		if *quick {
			cfg.Duration = 400 * experiments.Millisecond
			cfg.Runs = 1
		}
		rows, err := experiments.Fig11Context(ctx, cfg)
		if err != nil {
			return err
		}
		experiments.PrintFig11(os.Stdout, rows)
		return nil
	})
	adFig := func(servers int, includeOrdered bool, title string) func() error {
		return func() error {
			f, err := experiments.Fig12Or13Context(ctx, experiments.AdFigureConfig{
				Seed: *seed, AdServers: servers, EntriesPerServer: entries,
				Sleep: sleep, BatchSize: batch, IncludeOrdered: includeOrdered,
				Parallelism: parallelism,
			})
			if err != nil {
				return err
			}
			if title != "" {
				f.Title = title
			}
			experiments.PrintAdFigure(os.Stdout, f, 12)
			return nil
		}
	}
	run("12", adFig(5, true, ""))
	run("13", adFig(10, true, ""))
	run("14", adFig(10, false, "Seal-based strategies, 10 ad servers"))
}
