package fd

// Lineage records how one stage of a dataflow maps attributes of its input
// to attributes of its output. A stage preserves an attribute (identity
// lineage), renames it, derives it non-injectively (e.g. an aggregate over
// it), or drops it. Composing lineages across stages and closing over the
// identity chains is the "chase" of Section V-A1/VII-B2: a sound but
// incomplete procedure for detecting injective functional dependencies, which
// exploits the common special case that the identity function is injective,
// as is any series of transitive applications of it.
type Lineage struct {
	set *Set
}

// NewLineage returns an empty lineage accumulator.
func NewLineage() *Lineage { return &Lineage{set: NewSet()} }

// Preserve records that the stage carries attr through unchanged.
func (l *Lineage) Preserve(attr string) { l.set.Add(Identity(attr)) }

// RenameTo records that input attribute from is emitted as output attribute
// to without transformation (an injective identity application under
// renaming).
func (l *Lineage) RenameTo(from, to string) { l.set.Add(Rename(from, to)) }

// Derive records that output attribute to is computed from the input
// attributes in from by an arbitrary (not necessarily injective) function.
func (l *Lineage) Derive(from AttrSet, to string) {
	l.set.Add(NewFD(from, NewAttrSet(to)))
}

// DeriveInjective records that output attribute to is computed from from by
// a function the caller asserts is injective (for example a tagged encoding
// of a composite key).
func (l *Lineage) DeriveInjective(from AttrSet, to string) {
	l.set.Add(NewInjectiveFD(from, NewAttrSet(to)))
}

// Set exposes the accumulated dependency set.
func (l *Lineage) Set() *Set { return l.set }

// Compose merges the dependencies of several lineages (e.g. the stages of a
// dataflow path) into one set; the closure over the merged set performs the
// transitive chase across the composition.
func Compose(stages ...*Lineage) *Set {
	out := NewSet()
	for _, st := range stages {
		if st == nil {
			continue
		}
		for _, f := range st.set.fds {
			out.Add(f)
		}
	}
	return out
}

// ChaseSeal maps a seal key through a composed lineage: it returns the set
// of output attributes injectively determined by the key, i.e. the keys on
// which the downstream stream remains implicitly sealed. An empty result
// means the seal is lost through this composition.
func ChaseSeal(key AttrSet, through *Set) AttrSet {
	return through.InjectiveClosure(key)
}
