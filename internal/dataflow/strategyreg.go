package dataflow

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// StrategyContext is everything a registered strategy sees when planning
// coordination for one component: the finished analysis, the collapsed
// graph the analysis ran over, the component in question, and why it was
// flagged (an anomaly originates here, or it consumes upstream seals).
type StrategyContext struct {
	Analysis  *Analysis
	Graph     *Graph // the collapsed graph (supernodes, not raw components)
	Component *Component
	// Origin is true when reconciliation added an anomaly at this
	// component (the nondeterminism is born here); false when the
	// component consumes compatible seals and only needs the runtime
	// protocol installed.
	Origin bool
	// PreferSequencing carries the caller's M1-over-M2 preference through
	// to strategies that order inputs.
	PreferSequencing bool
}

// StrategyDef is a registered coordination strategy: a named recipe that
// inspects a flagged component and either produces a concrete Strategy or
// declines. Implement the interface, then call RegisterStrategy — the
// name becomes valid everywhere strategies are referenced (Analyzer
// options, `blazes verify -strategy`, the service API), and the chaos
// conformance matrix picks it up by iterating the registry.
type StrategyDef interface {
	// Name is the registry key ("sealing", "quorum-ordering", ...).
	Name() string
	// Summary is a one-line description for catalogs and docs.
	Summary() string
	// Plan produces a Strategy for ctx.Component, or reports false when
	// the strategy does not apply (synthesis then falls back down the
	// default chain).
	Plan(ctx *StrategyContext) (Strategy, bool)
}

type registeredStrategy struct {
	def  StrategyDef
	site string
}

var (
	strategyMu  sync.RWMutex
	strategyReg = map[string]registeredStrategy{}
)

// RegisterStrategy adds a strategy to the registry. It is meant to be
// called from package init; registering two strategies under one name is
// a programming error and panics with both registration sites named.
func RegisterStrategy(def StrategyDef) {
	site := "unknown"
	if _, file, line, ok := runtime.Caller(1); ok {
		site = fmt.Sprintf("%s:%d", file, line)
	}
	strategyMu.Lock()
	defer strategyMu.Unlock()
	name := def.Name()
	if prev, ok := strategyReg[name]; ok {
		panic(fmt.Sprintf("dataflow: duplicate strategy %q registered at %s (previously registered at %s)",
			name, site, prev.site))
	}
	strategyReg[name] = registeredStrategy{def: def, site: site}
}

// LookupStrategy resolves a registered strategy by name. The error lists
// the valid names, so boundary layers (CLI flags, service request
// validation, Analyzer options) can surface it verbatim.
func LookupStrategy(name string) (StrategyDef, error) {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	if r, ok := strategyReg[name]; ok {
		return r.def, nil
	}
	return nil, fmt.Errorf("unknown strategy %q (registered: %v)", name, strategyNamesLocked())
}

// StrategyNames returns the registered strategy names in sorted order.
func StrategyNames() []string {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	return strategyNamesLocked()
}

// strategyNamesLocked requires strategyMu held (read or write).
func strategyNamesLocked() []string {
	out := make([]string, 0, len(strategyReg))
	for name := range strategyReg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Strategies returns the registered strategy definitions in name order —
// the conformance matrix iterates this so every future registration is
// chaos-checked by construction.
func Strategies() []StrategyDef {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	out := make([]StrategyDef, 0, len(strategyReg))
	for _, name := range strategyNamesLocked() {
		out = append(out, strategyReg[name].def)
	}
	return out
}

// defaultChain is the fallback planning order, reproducing the paper's
// repair preference: sealing when compatible seals exist, ordering
// otherwise. A preferred strategy (SynthesisOptions.Strategy) is tried
// before this chain.
func defaultChain() []StrategyDef {
	sealing, err := LookupStrategy(StrategySealing)
	if err != nil {
		panic(err) // registered in this package's init
	}
	ordering, err := LookupStrategy(StrategyOrdering)
	if err != nil {
		panic(err)
	}
	return []StrategyDef{sealing, ordering}
}
