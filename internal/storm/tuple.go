// Package storm is a Storm-like distributed stream-processing engine built
// on the discrete-event simulator: topologies of spouts and bolts with
// shuffle/fields/all groupings, batch-granular at-least-once delivery with
// replay, and two commit disciplines — *transactional* (batches commit in a
// global total order through the ordering service, Storm's "transactional
// topologies") and *sealed* (batches commit independently as soon as their
// per-batch punctuations arrive, the strategy Blazes proves safe for the
// wordcount of Section VI-A). It is the substrate for the Figure 11
// experiment.
//
// Execution is deterministic even in parallel mode: when the simulator
// carries a worker pool, bolt work runs as two-phase events partitioned by
// operator instance (sim.AtCompute) and spout instances generate their
// batch shares concurrently, while every routing decision and network-delay
// draw stays on the scheduler goroutine in schedule order — the delivery
// schedule is byte-identical to the sequential run.
package storm

import "fmt"

// Values is a tuple payload: a fixed-arity list of fields.
type Values []string

// Tuple is one message flowing through a topology. Every tuple belongs to a
// batch — the unit of replay and of sealing.
type Tuple struct {
	Batch  int64
	Values Values
}

// String renders the tuple compactly.
func (t Tuple) String() string {
	return fmt.Sprintf("b%d%v", t.Batch, []string(t.Values))
}

// message is the wire format between instances: either a data tuple or a
// batch-end punctuation carrying the producer's per-batch emission count.
// Its identity for deduplication is (from, seq) — unique within the
// receiving instance's batch, because every consumer stage has exactly one
// upstream stage and producers number their per-batch emissions densely.
// The batch rides in tuple.Batch (set even on punctuations, whose Values
// are nil): one delivery closure per message is the engine's floor on
// allocations, so the struct is kept lean. (An earlier revision carried a
// formatted string id; building and hashing those strings dominated the
// allocation profile.)
type message struct {
	seq      int32 // producer's per-batch emission sequence; -1 for punctuations
	from     int32 // producer instance index within its stage
	attempt  int32 // replay attempt that produced this message
	batchEnd bool
	count    int // tuples the producer emitted to this consumer for batch
	tuple    Tuple
}

// batchID returns the batch the message belongs to.
func (m message) batchID() int64 { return m.tuple.Batch }
