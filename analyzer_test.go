package blazes

import (
	"path/filepath"
	"strings"
	"testing"
)

const specDir = "internal/spec/testdata"

func loadSpec(t *testing.T, name string) *Spec {
	t.Helper()
	s, err := LoadSpec(filepath.Join(specDir, name))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAnalyzerSealRepairDoesNotMutateInput(t *testing.T) {
	g := buildWordcount(t)
	res, err := NewAnalyzer(WithSealRepair("tweets", "batch")).Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic() {
		t.Errorf("sealed verdict = %s, want Async", res.Verdict())
	}
	if !g.Stream("tweets").Seal.IsEmpty() {
		t.Error("WithSealRepair mutated the caller's graph")
	}

	// The same analyzer, reused, still sees the unsealed input fresh.
	plain, err := NewAnalyzer().Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Deterministic() {
		t.Error("unsealed wordcount analyzed deterministic")
	}
}

func TestAnalyzerSealRepairUnknownStream(t *testing.T) {
	g := buildWordcount(t)
	_, err := NewAnalyzer(WithSealRepair("ghost", "k")).Analyze(g)
	if err == nil || !strings.Contains(err.Error(), `unknown stream "ghost"`) {
		t.Errorf("want unknown-stream error, got %v", err)
	}
}

func TestAnalyzerPreferSequencing(t *testing.T) {
	g := buildWordcount(t)
	seq, err := NewAnalyzer(PreferSequencing()).Synthesize(g)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewAnalyzer().Synthesize(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Strategies()) == 0 || len(dyn.Strategies()) == 0 {
		t.Fatalf("expected strategies: seq=%d dyn=%d", len(seq.Strategies()), len(dyn.Strategies()))
	}
	if got := seq.Strategies()[0].Mechanism; got != CoordSequenced {
		t.Errorf("PreferSequencing mechanism = %s, want M1", got)
	}
	if got := dyn.Strategies()[0].Mechanism; got != CoordDynamicOrder {
		t.Errorf("default mechanism = %s, want M2", got)
	}
}

func TestAnalyzerRepairReachesFixpoint(t *testing.T) {
	g := buildWordcount(t)

	// M1 sequencing removes order sensitivity entirely: deterministic.
	res, err := NewAnalyzer(PreferSequencing()).Repair(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Repaired() {
		t.Error("Repaired() = false after Repair")
	}
	if !res.Deterministic() {
		t.Errorf("post-repair (M1) verdict = %s, want deterministic", res.Verdict())
	}
	if len(res.Strategies()) == 0 {
		t.Error("Repair applied no strategies to an anomalous dataflow")
	}
	// Repair must not mutate the input graph either.
	if g.Lookup("Count").Coordination != CoordNone {
		t.Error("Repair mutated the caller's graph")
	}

	// The default M2 dynamic ordering agrees within a run but not across
	// runs (Figure 5): the fixpoint verdict stays Run.
	dyn, err := NewAnalyzer().Repair(g)
	if err != nil {
		t.Fatal(err)
	}
	if !dyn.Verdict().Equal(Run) {
		t.Errorf("post-repair (M2) verdict = %s, want Run", dyn.Verdict())
	}
}

func TestSpecVariantSelection(t *testing.T) {
	s := loadSpec(t, "adreport.blazes")

	comps := s.Components()
	if len(comps) != 2 || comps[0] != "Report" {
		t.Fatalf("Components() = %v", comps)
	}
	variants, ok := s.Variants("Report")
	if !ok || len(variants) != 4 {
		t.Fatalf("Variants(Report) = %v, %v", variants, ok)
	}
	if streams := s.Streams(); len(streams) != 6 {
		t.Fatalf("Streams() = %v", streams)
	}

	g, err := s.Graph("ad-campaign", WithVariant("Report", "CAMPAIGN"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewAnalyzer(WithSealRepair("clicks", "campaign")).Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic() {
		t.Errorf("CAMPAIGN + seal(campaign) verdict = %s, want Async", res.Verdict())
	}

	if _, err := s.Graph("bad", WithVariant("Report", "NOPE")); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestSpecName(t *testing.T) {
	if got := SpecName("internal/spec/testdata/wordcount.blazes"); got != "wordcount" {
		t.Errorf("SpecName = %q", got)
	}
}
