package chaos

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func fakeOutcome(final string) Outcome {
	return Outcome{Replicas: []ReplicaOutcome{{Final: final}}}
}

// TestSweepStateClaimsAndExpiry: leases are exclusive until they expire,
// expired leases are re-issued, and duplicate reports resolve
// first-report-wins.
func TestSweepStateClaimsAndExpiry(t *testing.T) {
	cells := []Cell{{Workload: "synthetic-set", Mechanism: "none", Plan: FaultPlan{Name: "baseline"}, Seeds: 4, Confluent: true}}
	st := NewSweepState(cells, 2, 10)
	if st.Batches() != 2 {
		t.Fatalf("Batches() = %d, want 2", st.Batches())
	}

	first := st.Claim(100, "w1", 10)
	if len(first) != 2 {
		t.Fatalf("w1 claimed %d batches, want 2", len(first))
	}
	if got := st.Claim(105, "w2", 10); len(got) != 0 {
		t.Fatalf("w2 claimed %d leased batches before expiry", len(got))
	}
	second := st.Claim(111, "w2", 10)
	if len(second) != 2 {
		t.Fatalf("w2 re-claimed %d batches after expiry, want 2", len(second))
	}

	// w2 reports both batches; the second completes the cell.
	if cellDone, err := st.Report(second[0].ID, []Outcome{fakeOutcome("a"), fakeOutcome("a")}); err != nil || cellDone != -1 {
		t.Fatalf("first report: (%d, %v), want (-1, nil)", cellDone, err)
	}
	// The stale worker's late report for the same batch is ignored.
	if cellDone, err := st.Report(first[0].ID, []Outcome{fakeOutcome("STALE"), fakeOutcome("STALE")}); err != nil || cellDone != -1 {
		t.Fatalf("duplicate report: (%d, %v), want (-1, nil)", cellDone, err)
	}
	if cellDone, err := st.Report(second[1].ID, []Outcome{fakeOutcome("a"), fakeOutcome("a")}); err != nil || cellDone != 0 {
		t.Fatalf("completing report: (%d, %v), want (0, nil)", cellDone, err)
	}
	if !st.Done() {
		t.Fatal("Done() = false after all batches reported")
	}
	outs, err := st.CellOutcomes(0)
	if err != nil {
		t.Fatalf("CellOutcomes: %v", err)
	}
	for i, out := range outs {
		if out.Replicas[0].Final != "a" {
			t.Fatalf("seed %d: stale report overwrote the first one: %q", i+1, out.Replicas[0].Final)
		}
	}
	if done, total := st.Progress(); done != 4 || total != 4 {
		t.Fatalf("Progress() = (%d, %d), want (4, 4)", done, total)
	}
}

// TestSweepStateRejects: malformed reports fail loudly instead of
// corrupting the ledger.
func TestSweepStateRejects(t *testing.T) {
	cells := []Cell{{Workload: "synthetic-set", Mechanism: "none", Plan: FaultPlan{Name: "baseline"}, Seeds: 3, Confluent: true}}
	st := NewSweepState(cells, 2, 0)
	if _, err := st.Report(99, nil); err == nil {
		t.Error("unknown batch accepted")
	}
	if _, err := st.Report(0, []Outcome{fakeOutcome("a")}); err == nil {
		t.Error("short outcome list accepted")
	}
	if _, err := st.CellOutcomes(0); err == nil {
		t.Error("CellOutcomes served an incomplete cell")
	}
	if _, err := st.Sweeps(); err == nil {
		t.Error("Sweeps served an unfinished sweep")
	}
	// TTL 0: leases never expire.
	if got := st.Claim(0, "w1", 10); len(got) != 2 {
		t.Fatalf("claimed %d, want 2", len(got))
	}
	if got := st.Claim(1<<60, "w2", 10); len(got) != 0 {
		t.Fatalf("TTL-0 lease was re-issued (%d batches)", len(got))
	}
}

// TestSweepDeterminism is the distributed-merge acceptance bar at the
// chaos layer: two concurrent workers — each resolving the workload
// fresh by name, exactly as worker processes do — claim interleaved
// seed-range batches, and the assembled report is byte-identical to a
// single-process Check of the same configuration.
func TestSweepDeterminism(t *testing.T) {
	ctx := context.Background()
	cfg := Config{Seeds: 12, Parallelism: 2}

	want, err := Check(ctx, SyntheticChains(false), cfg)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	wantJSON, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}

	plan, err := PlanCheck(SyntheticChains(false), cfg)
	if err != nil {
		t.Fatalf("PlanCheck: %v", err)
	}
	st := NewSweepState(plan.Cells, 5, 0)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for wi := 0; wi < 2; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for {
				batches := st.Claim(0, "worker", 2)
				if len(batches) == 0 {
					return
				}
				for _, b := range batches {
					cell := plan.Cells[b.Cell]
					w, err := LookupWorkload(cell.Workload)
					if err != nil {
						errs[wi] = err
						return
					}
					outs, err := RunCell(ctx, w, cell, nil, b.SeedFrom, b.SeedTo)
					if err != nil {
						errs[wi] = err
						return
					}
					if _, err := st.Report(b.ID, outs); err != nil {
						errs[wi] = err
						return
					}
				}
			}
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("worker: %v", err)
		}
	}

	sweeps, err := st.Sweeps()
	if err != nil {
		t.Fatalf("Sweeps: %v", err)
	}
	got, err := plan.Assemble(sweeps)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	gotJSON, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("distributed merge differs from single-process Check:\n--- distributed ---\n%s\n--- single ---\n%s", gotJSON, wantJSON)
	}
}
