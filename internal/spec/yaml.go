// Package spec parses the Blazes configuration files that grey-box users
// supply (Figure 1, "Blazes spec"): component annotations in the exact
// format printed in Section VI of the paper, plus a `topology` section
// describing sources, streams and sinks so a dataflow graph can be built
// without a host-system adapter.
//
// The format is a small YAML subset sufficient for the paper's files:
// indentation-nested maps, "- " lists, inline flow maps `{k: v, ...}` and
// lists `[a, b]`, booleans, and `#` comments. The parser is hand-written so
// the module stays stdlib-only.
package spec

import (
	"fmt"
	"strings"
)

// Value is a parsed YAML-subset value: string, bool, []Value, or *Map.
type Value interface{}

// Map is an insertion-ordered string-keyed map.
type Map struct {
	keys   []string
	values map[string]Value
}

// NewMap returns an empty ordered map.
func NewMap() *Map { return &Map{values: map[string]Value{}} }

// Set inserts or replaces a key.
func (m *Map) Set(key string, v Value) {
	if _, ok := m.values[key]; !ok {
		m.keys = append(m.keys, key)
	}
	m.values[key] = v
}

// Get returns the value for key.
func (m *Map) Get(key string) (Value, bool) {
	v, ok := m.values[key]
	return v, ok
}

// Keys returns the keys in insertion order.
func (m *Map) Keys() []string { return m.keys }

// Len reports the number of entries.
func (m *Map) Len() int { return len(m.keys) }

type line struct {
	num    int
	indent int
	text   string // trimmed content
}

// ParseDocument parses a full document into an ordered map.
func ParseDocument(src string) (*Map, error) {
	lines, err := splitLines(src)
	if err != nil {
		return nil, err
	}
	lines = joinContinuations(lines)
	v, next, err := parseBlock(lines, 0, 0)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("spec: line %d: unexpected content %q", lines[next].num, lines[next].text)
	}
	m, ok := v.(*Map)
	if !ok {
		return nil, fmt.Errorf("spec: document root must be a mapping")
	}
	return m, nil
}

func splitLines(src string) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		stripped := stripComment(raw)
		trimmed := strings.TrimSpace(stripped)
		if trimmed == "" {
			continue
		}
		indent := 0
		for _, r := range stripped {
			if r == ' ' {
				indent++
			} else if r == '\t' {
				return nil, fmt.Errorf("spec: line %d: tabs are not allowed for indentation", i+1)
			} else {
				break
			}
		}
		out = append(out, line{num: i + 1, indent: indent, text: trimmed})
	}
	return out, nil
}

// joinContinuations merges lines whose flow collections ({...}, [...]) are
// still open onto the following lines — the paper's configuration files wrap
// long inline maps across lines.
func joinContinuations(lines []line) []line {
	var out []line
	for i := 0; i < len(lines); i++ {
		cur := lines[i]
		for flowDepth(cur.text) > 0 && i+1 < len(lines) {
			i++
			cur.text += " " + lines[i].text
		}
		out = append(out, cur)
	}
	return out
}

// flowDepth counts unbalanced flow-collection delimiters outside quotes.
func flowDepth(s string) int {
	depth := 0
	inSingle, inDouble := false, false
	for _, r := range s {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '{', '[':
			if !inSingle && !inDouble {
				depth++
			}
		case '}', ']':
			if !inSingle && !inDouble {
				depth--
			}
		}
	}
	return depth
}

// stripComment removes a trailing # comment that is not inside quotes.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses consecutive lines at exactly the given indent into a map
// or list, returning the value and the index of the first unconsumed line.
func parseBlock(lines []line, i, indent int) (Value, int, error) {
	if i >= len(lines) {
		return NewMap(), i, nil
	}
	if strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-" {
		return parseList(lines, i, indent)
	}
	return parseMap(lines, i, indent)
}

func parseList(lines []line, i, indent int) (Value, int, error) {
	var items []Value
	for i < len(lines) && lines[i].indent == indent &&
		(strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-") {
		rest := strings.TrimSpace(strings.TrimPrefix(lines[i].text, "-"))
		if rest == "" {
			return nil, i, fmt.Errorf("spec: line %d: empty list items are not supported", lines[i].num)
		}
		v, err := parseInline(rest, lines[i].num)
		if err != nil {
			return nil, i, err
		}
		items = append(items, v)
		i++
	}
	return items, i, nil
}

func parseMap(lines []line, i, indent int) (Value, int, error) {
	m := NewMap()
	for i < len(lines) && lines[i].indent == indent && !strings.HasPrefix(lines[i].text, "- ") {
		key, rest, err := splitKey(lines[i].text, lines[i].num)
		if err != nil {
			return nil, i, err
		}
		if _, dup := m.Get(key); dup {
			return nil, i, fmt.Errorf("spec: line %d: duplicate key %q", lines[i].num, key)
		}
		if rest != "" {
			v, err := parseInline(rest, lines[i].num)
			if err != nil {
				return nil, i, err
			}
			m.Set(key, v)
			i++
			continue
		}
		// Nested block: child lines with deeper indent, or — as YAML
		// allows and the paper's files use — a list whose "- " items sit
		// at the same indent as the key.
		i++
		switch {
		case i < len(lines) && lines[i].indent > indent:
			child, next, err := parseBlock(lines, i, lines[i].indent)
			if err != nil {
				return nil, i, err
			}
			m.Set(key, child)
			i = next
		case i < len(lines) && lines[i].indent == indent && strings.HasPrefix(lines[i].text, "- "):
			child, next, err := parseList(lines, i, indent)
			if err != nil {
				return nil, i, err
			}
			m.Set(key, child)
			i = next
		default:
			m.Set(key, "")
		}
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, i, fmt.Errorf("spec: line %d: unexpected indentation", lines[i].num)
	}
	return m, i, nil
}

// splitKey splits "key: rest" respecting quotes and flow delimiters.
func splitKey(s string, num int) (key, rest string, err error) {
	depth := 0
	inSingle, inDouble := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '{', '[':
			if !inSingle && !inDouble {
				depth++
			}
		case '}', ']':
			if !inSingle && !inDouble {
				depth--
			}
		case ':':
			if inSingle || inDouble || depth > 0 {
				continue
			}
			if i+1 < len(s) && s[i+1] != ' ' {
				continue // e.g. a URL-ish scalar; treat as part of key text
			}
			return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), nil
		}
	}
	if strings.HasSuffix(s, ":") {
		return strings.TrimSpace(s[:len(s)-1]), "", nil
	}
	return "", "", fmt.Errorf("spec: line %d: expected \"key: value\", got %q", num, s)
}

// parseInline parses a scalar, flow map, or flow list.
func parseInline(s string, num int) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "{"):
		return parseFlowMap(s, num)
	case strings.HasPrefix(s, "["):
		return parseFlowList(s, num)
	default:
		return parseScalar(s), nil
	}
}

func parseScalar(s string) Value {
	s = strings.TrimSpace(s)
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			return s[1 : len(s)-1]
		}
	}
	switch strings.ToLower(s) {
	case "true", "yes", "on":
		return true
	case "false", "no", "off":
		return false
	}
	return s
}

func parseFlowMap(s string, num int) (Value, error) {
	inner, err := stripDelims(s, '{', '}', num)
	if err != nil {
		return nil, err
	}
	m := NewMap()
	for _, part := range splitTop(inner) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, rest, err := splitKey(part, num)
		if err != nil {
			return nil, err
		}
		v, err := parseInline(rest, num)
		if err != nil {
			return nil, err
		}
		m.Set(key, v)
	}
	return m, nil
}

func parseFlowList(s string, num int) (Value, error) {
	inner, err := stripDelims(s, '[', ']', num)
	if err != nil {
		return nil, err
	}
	var items []Value
	for _, part := range splitTop(inner) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := parseInline(part, num)
		if err != nil {
			return nil, err
		}
		items = append(items, v)
	}
	return items, nil
}

func stripDelims(s string, open, close rune, num int) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || rune(s[0]) != open || rune(s[len(s)-1]) != close {
		return "", fmt.Errorf("spec: line %d: malformed flow collection %q", num, s)
	}
	return s[1 : len(s)-1], nil
}

// splitTop splits on commas at the top nesting level.
func splitTop(s string) []string {
	var parts []string
	depth := 0
	inSingle, inDouble := false, false
	start := 0
	for i, r := range s {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '{', '[':
			if !inSingle && !inDouble {
				depth++
			}
		case '}', ']':
			if !inSingle && !inDouble {
				depth--
			}
		case ',':
			if depth == 0 && !inSingle && !inDouble {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}
