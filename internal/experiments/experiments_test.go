package experiments

import (
	"strings"
	"testing"

	"blazes/internal/sim"
)

// TestFig5AnomalyMatrix pins the observable behaviour of every Figure 5
// cell: which anomalies occur under which property/mechanism combination.
func TestFig5AnomalyMatrix(t *testing.T) {
	m := Fig5Matrix(8)

	expect := map[Cell]Anomalies{
		// Confluent components never exhibit the anomalies.
		{Confluent, MechNone}:      {},
		{Confluent, MechSequenced}: {},
		{Confluent, MechDynamic}:   {},
		{Confluent, MechSealed}:    {},
		// Convergent components prevent divergence only: reads race.
		{Convergent, MechNone}:      {Run: true, Inst: true},
		{Convergent, MechSequenced}: {},
		{Convergent, MechDynamic}:   {Run: true},
		{Convergent, MechSealed}:    {},
		// Order-sensitive components exhibit everything uncoordinated.
		{OrderSensitive, MechNone}:      {Run: true, Inst: true, Diverge: true},
		{OrderSensitive, MechSequenced}: {},
		{OrderSensitive, MechDynamic}:   {Run: true},
		{OrderSensitive, MechSealed}:    {},
	}

	for cell, want := range expect {
		got := m[cell]
		if got != want {
			t.Errorf("%s × %s: observed %v, want %v", cell.Prop, cell.Mech, got, want)
		}
	}
}

func TestFig5Print(t *testing.T) {
	var b strings.Builder
	PrintFig5(&b, Fig5Matrix(3))
	out := b.String()
	for _, want := range []string{"confluent (P1)", "sealing (M3)", "Run:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestFig11Shape runs a reduced Figure 11 sweep and checks the paper's
// qualitative claims: the sealed topology wins everywhere, and its
// advantage grows with cluster size.
func TestFig11Shape(t *testing.T) {
	cfg := DefaultFig11()
	cfg.ClusterSizes = []int{5, 20}
	cfg.Duration = 400 * sim.Millisecond
	cfg.Runs = 1

	rows, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Ratio <= 1.0 {
			t.Errorf("w=%d: sealed/transactional ratio = %.2f, want > 1", r.Workers, r.Ratio)
		}
		if r.Sealed <= 0 || r.Transactional <= 0 {
			t.Errorf("w=%d: zero throughput", r.Workers)
		}
	}
	if rows[1].Ratio <= rows[0].Ratio {
		t.Errorf("ratio should grow with cluster size: %.2f@%d vs %.2f@%d",
			rows[0].Ratio, rows[0].Workers, rows[1].Ratio, rows[1].Workers)
	}
	// Sealed throughput scales with workers.
	if rows[1].Sealed <= rows[0].Sealed {
		t.Errorf("sealed throughput should scale: %.0f@%d vs %.0f@%d",
			rows[0].Sealed, rows[0].Workers, rows[1].Sealed, rows[1].Workers)
	}

	var b strings.Builder
	PrintFig11(&b, rows)
	if !strings.Contains(b.String(), "Figure 11") {
		t.Error("print output malformed")
	}
}

// TestFig12Shape runs a reduced Figure 12 and checks the qualitative
// relationships: seals track the uncoordinated baseline; ordering lags far
// behind.
func TestFig12Shape(t *testing.T) {
	fig, err := Fig12Or13(AdFigureConfig{Seed: 1, AdServers: 5, EntriesPerServer: 120, Sleep: 50 * sim.Millisecond, BatchSize: 10, IncludeOrdered: true})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AdSeries{}
	for _, c := range fig.Curves {
		byLabel[c.Label] = c
	}
	un := byLabel["Uncoordinated"]
	or := byLabel["Ordered"]
	ind := byLabel["Independent Seal"]
	seal := byLabel["Seal"]

	if un.Series.Final() != fig.Total {
		t.Errorf("uncoordinated processed %d of %d", un.Series.Final(), fig.Total)
	}
	for _, c := range fig.Curves {
		if c.Series.Final() != fig.Total {
			t.Errorf("%s processed %d of %d", c.Label, c.Series.Final(), fig.Total)
		}
	}
	if or.FinishedAt < 2*un.FinishedAt {
		t.Errorf("ordered (%v) should lag well behind uncoordinated (%v)", or.FinishedAt, un.FinishedAt)
	}
	if seal.FinishedAt > 2*un.FinishedAt {
		t.Errorf("seal (%v) should track uncoordinated (%v)", seal.FinishedAt, un.FinishedAt)
	}
	if ind.FinishedAt > 2*un.FinishedAt {
		t.Errorf("independent seal (%v) should track uncoordinated (%v)", ind.FinishedAt, un.FinishedAt)
	}

	var b strings.Builder
	PrintAdFigure(&b, fig, 8)
	if !strings.Contains(b.String(), "Uncoordinated") {
		t.Error("print output malformed")
	}
}

// TestFig13DoublingAdServers: doubling the ad servers should barely move
// the uncoordinated run but substantially slow the ordered one (the paper
// saw ~3×; we require ≥1.8× and that it exceed the uncoordinated factor).
func TestFig13DoublingAdServers(t *testing.T) {
	small, err := Fig12Or13(AdFigureConfig{Seed: 1, AdServers: 3, EntriesPerServer: 100, Sleep: 50 * sim.Millisecond, BatchSize: 10, IncludeOrdered: true})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Fig12Or13(AdFigureConfig{Seed: 1, AdServers: 6, EntriesPerServer: 100, Sleep: 50 * sim.Millisecond, BatchSize: 10, IncludeOrdered: true})
	if err != nil {
		t.Fatal(err)
	}
	get := func(f *AdFigure, label string) AdSeries {
		for _, c := range f.Curves {
			if c.Label == label {
				return c
			}
		}
		t.Fatalf("missing curve %s", label)
		return AdSeries{}
	}
	orRatio := float64(get(big, "Ordered").FinishedAt) / float64(get(small, "Ordered").FinishedAt)
	unRatio := float64(get(big, "Uncoordinated").FinishedAt) / float64(get(small, "Uncoordinated").FinishedAt)
	if orRatio < 1.8 {
		t.Errorf("ordered slowdown = %.2f, want ≥ 1.8", orRatio)
	}
	if unRatio >= orRatio {
		t.Errorf("uncoordinated slowdown (%.2f) should be well below ordered (%.2f)", unRatio, orRatio)
	}
}

// TestFig14SealShapes: the independent-seal curve buffers records for less
// time than the unanimous-vote variant, whose releases come in late steps.
func TestFig14SealShapes(t *testing.T) {
	fig, err := Fig14WithSleep(1, 120, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AdSeries{}
	for _, c := range fig.Curves {
		byLabel[c.Label] = c
	}
	ind := byLabel["Independent Seal"]
	seal := byLabel["Seal"]
	if ind.AvgBufferTime >= seal.AvgBufferTime {
		t.Errorf("independent buffering (%v) should be below unanimous-vote buffering (%v)",
			ind.AvgBufferTime, seal.AvgBufferTime)
	}
	// The non-independent curve's mass arrives later: compare midpoint
	// progress.
	var maxT sim.Time
	for _, c := range fig.Curves {
		if c.FinishedAt > maxT {
			maxT = c.FinishedAt
		}
	}
	mid := maxT / 2
	if ind.Series.At(mid) < seal.Series.At(mid) {
		t.Errorf("independent progress at midpoint (%d) should lead the non-independent curve (%d)",
			ind.Series.At(mid), seal.Series.At(mid))
	}
}
