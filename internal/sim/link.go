package sim

// PartitionWindow is an interval during which a link is cut. Messages sent
// while the window is open are buffered at the sender and transmitted when
// the partition heals (at Until) — the partition-then-heal fault the chaos
// harness injects. Messages already in flight when the window opens are
// unaffected (they left the sender before the cut).
type PartitionWindow struct {
	From  Time `json:"from"`
	Until Time `json:"until"`
}

// Contains reports whether t falls inside the window.
func (w PartitionWindow) Contains(t Time) bool { return t >= w.From && t < w.Until }

// LinkConfig shapes the delivery behaviour of a simulated network channel.
type LinkConfig struct {
	// MinDelay/MaxDelay bound the uniformly drawn per-message latency.
	// MaxDelay > MinDelay yields nondeterministic interleavings across
	// links — the root cause of the paper's anomalies.
	MinDelay, MaxDelay Time
	// DupProb is the probability a message is delivered twice (modelling
	// at-least-once delivery and sender retry).
	DupProb float64
	// DropProb is the probability a message is silently lost.
	DropProb float64
	// Partitions lists windows during which the link is cut; see
	// PartitionWindow. Windows may overlap; the latest heal time wins.
	Partitions []PartitionWindow
}

// Delay draws one uniform per-message latency from the simulator's rng,
// treating MaxDelay < MinDelay as a fixed MinDelay latency. Every substrate
// draws its link latencies through this helper so fault plans that widen the
// bounds reach all of them uniformly.
func (cfg LinkConfig) Delay(s *Sim) Time {
	delay := cfg.MinDelay
	if span := cfg.MaxDelay - cfg.MinDelay; span > 0 {
		delay += Time(s.rng.Int63n(int64(span) + 1))
	}
	return delay
}

// Release pushes a tentative arrival time past any partition window open at
// send time: a message sent while the link is partitioned waits at the
// sender until the window heals, then takes its drawn latency. If another
// window is already open at the heal instant (chained or overlapping
// partitions), the message keeps waiting.
func (cfg LinkConfig) Release(sent, arrival Time) Time {
	latency := arrival - sent
	for {
		heal := Time(-1)
		for _, w := range cfg.Partitions {
			if w.Contains(sent) && w.Until > heal {
				heal = w.Until
			}
		}
		if heal < 0 {
			return sent + latency
		}
		sent = heal // strictly later: Contains(sent) implies sent < Until
	}
}

// Arrival draws a latency and returns the partition-adjusted delivery time
// for a message sent at the current simulator time.
func (cfg LinkConfig) Arrival(s *Sim) Time {
	sent := s.Now()
	return cfg.Release(sent, sent+cfg.Delay(s))
}

// DefaultLAN mimics a low-latency datacenter link with mild reordering.
var DefaultLAN = LinkConfig{MinDelay: 200 * Microsecond, MaxDelay: 2 * Millisecond}

// LinkStats counts a link's deliveries.
type LinkStats struct {
	Sent      int
	Delivered int
	Duplicate int
	Dropped   int
}

// Link is a unidirectional message channel between two simulated endpoints.
// Delivery order is nondeterministic within the configured delay bounds but
// fully determined by the simulator's seed.
type Link struct {
	sim     *Sim
	cfg     LinkConfig
	deliver func(msg any)
	stats   LinkStats
}

// NewLink creates a link that hands arriving messages to deliver.
func NewLink(s *Sim, cfg LinkConfig, deliver func(msg any)) *Link {
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	return &Link{sim: s, cfg: cfg, deliver: deliver}
}

// Send queues msg for delivery after a random delay, possibly duplicating
// or dropping it per the link configuration.
func (l *Link) Send(msg any) {
	l.stats.Sent++
	if l.cfg.DropProb > 0 && l.sim.rng.Float64() < l.cfg.DropProb {
		l.stats.Dropped++
		return
	}
	l.scheduleDelivery(msg, false)
	if l.cfg.DupProb > 0 && l.sim.rng.Float64() < l.cfg.DupProb {
		l.scheduleDelivery(msg, true)
	}
}

func (l *Link) scheduleDelivery(msg any, dup bool) {
	sent := l.sim.Now()
	at := l.cfg.Release(sent, sent+l.cfg.Delay(l.sim))
	l.sim.At(at, func() {
		l.stats.Delivered++
		if dup {
			l.stats.Duplicate++
		}
		l.deliver(msg)
	})
}

// Stats returns the link's delivery counters.
func (l *Link) Stats() LinkStats { return l.stats }
