package adtrack

import (
	"fmt"
	"sort"

	"blazes/internal/bloom"
	"blazes/internal/coord"
	"blazes/internal/dataflow"
	"blazes/internal/sim"
)

// Regime is the coordination strategy under which the ad network runs — the
// three configurations measured in Section VIII-B (the two seal lines of
// Figure 14 differ in workload partitioning, not in protocol).
type Regime int

const (
	// Uncoordinated delivers clicks and requests directly; fastest, but
	// replicas may disagree (the paper confirmed inconsistent answers).
	Uncoordinated Regime = iota
	// Ordered routes every click and request through the totally ordered
	// messaging service, so all replicas process the same sequence.
	Ordered
	// Sealed buffers each campaign partition until its producers have all
	// punctuated it (unanimous vote), then processes it atomically;
	// requests for a campaign are held until that campaign seals.
	Sealed
	// Quorum routes clicks and requests through the quorum-ordering
	// protocol: producers stamp messages with Lamport clocks, replicas
	// deliver in stamp order behind the stability frontier. Same total
	// order guarantee as Ordered, but the only coordination traffic is
	// the heartbeat — no per-message sequencer round trip.
	Quorum
)

// String names the regime as in the figures.
func (r Regime) String() string {
	switch r {
	case Uncoordinated:
		return "uncoordinated"
	case Ordered:
		return "ordered"
	case Quorum:
		return "quorum"
	default:
		return "sealed"
	}
}

// Config parameterizes one ad-network run.
type Config struct {
	// Seed drives all network nondeterminism.
	Seed int64
	// Workload is the ad-server click plan.
	Workload Workload
	// Query selects the reporting query (CAMPAIGN in the paper's runs).
	Query dataflow.AdQuery
	// Threshold is the query's having threshold.
	Threshold int64
	// Replicas is the number of reporting servers (3 in the paper).
	Replicas int
	// Requests is the number of analyst requests to pose.
	Requests int
	// RequestSpacing is the interval between requests.
	RequestSpacing sim.Time
	// Regime selects the coordination strategy.
	Regime Regime
	// ProcessCost is the per-record ingestion cost at a replica (models
	// the Bloom prototype's interpretation overhead).
	ProcessCost sim.Time
	// Link shapes the direct adserver→replica and analyst→replica links.
	Link sim.LinkConfig
	// Sequencer configures the ordering service (Ordered regime). The
	// per-operation cost models quorum appends at the coordination
	// service and is the serialization bottleneck the sealed strategies
	// avoid.
	Sequencer coord.SequencerConfig
	// BackpressureThreshold is the sequencer queue delay above which
	// clients throttle and retry (Ordered regime).
	BackpressureThreshold sim.Time
	// Quorum configures the quorum-ordering protocol (Quorum regime).
	Quorum coord.QuorumConfig
}

// DefaultConfig mirrors the paper's setup for the given number of ad
// servers.
func DefaultConfig(adServers int, regime Regime, independent bool) Config {
	seq := coord.DefaultSequencer
	seq.ProcessingCost = 4 * sim.Millisecond // quorum append at the service
	return Config{
		Seed:                  1,
		Workload:              DefaultWorkload(adServers, independent),
		Query:                 dataflow.CAMPAIGN,
		Threshold:             100,
		Replicas:              3,
		Requests:              20,
		RequestSpacing:        500 * sim.Millisecond,
		Regime:                regime,
		ProcessCost:           500 * sim.Microsecond,
		Link:                  sim.LinkConfig{MinDelay: 500 * sim.Microsecond, MaxDelay: 8 * sim.Millisecond},
		Sequencer:             seq,
		BackpressureThreshold: 250 * sim.Millisecond,
		Quorum:                coord.DefaultQuorum,
	}
}

// Point is one sample of ingestion progress.
type Point struct {
	At      sim.Time
	Records int
}

// Series is a cumulative progress curve — the y-axis of Figures 12–14.
type Series []Point

// Final returns the last cumulative value.
func (s Series) Final() int {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1].Records
}

// At interpolates the cumulative value at time t (step function).
func (s Series) At(t sim.Time) int {
	val := 0
	for _, p := range s {
		if p.At > t {
			break
		}
		val = p.Records
	}
	return val
}

// Response is one answer emitted by a replica.
type Response struct {
	Replica int
	Row     bloom.Row
	At      sim.Time
}

// Result is the outcome of one ad-network run.
type Result struct {
	// Series is replica 0's cumulative processed-log-records curve.
	Series Series
	// FinishedAt is when the last replica finished ingesting all records.
	FinishedAt sim.Time
	// RegistryLookups counts seal-protocol registry calls (one per
	// campaign per replica expected).
	RegistryLookups int
	// Responses collects every response emitted, tagged by replica.
	Responses []Response
	// LogSizes is each replica's final click-log cardinality.
	LogSizes []int
	// LogDigests is each replica's canonical persistent-state digest
	// (bloom.Node.Digest), the content-sensitive companion to LogSizes.
	LogDigests []string
	// Held reports requests still held at run end (sealed regime, when a
	// campaign never sealed).
	Held int
	// BufferSum and BufferCount accumulate, at replica 0, the time each
	// click record spent buffered awaiting its partition's seal — the
	// latency cost of low coordination locality that separates Figure
	// 14's two curves.
	BufferSum   sim.Time
	BufferCount int
	// CoordMessages counts the coordination-service messages the regime
	// issued: sequencer submissions (one round trip per click/request)
	// under Ordered, watermark heartbeats under Quorum, 0 otherwise —
	// the cost axis on which quorum ordering beats the sequencer.
	CoordMessages int
}

// AvgBufferTime is the mean time a record waited for its partition to seal.
func (r *Result) AvgBufferTime() sim.Time {
	if r.BufferCount == 0 {
		return 0
	}
	return r.BufferSum / sim.Time(r.BufferCount)
}

// workItem is one element of a replica's serialized input queue: a click
// record or a request. Keeping both in one queue preserves the relative
// order in which they reached the replica — essential for the ordering
// regime's guarantee that all replicas process the same interleaving.
type workItem struct {
	click *Click
	req   *Request
}

// replica is one reporting server instance in the simulation.
type replica struct {
	idx       int
	node      *bloom.Node
	busyUntil sim.Time
	draining  bool
	pending   []workItem
	ingested  int
	series    Series
	// Sealed-regime state.
	tracker *coord.SealTracker
	held    map[string][]Request
	looked  map[string]bool
	// arrivals records per-campaign data arrival times until release.
	arrivals map[string][]sim.Time
	// fifo enforces per-producer in-order delivery (punctuations are
	// embedded in the stream; a seal must not overtake its data).
	fifo map[string]sim.Time
}

// Run executes one ad-network run to completion.
func Run(cfg Config) (*Result, error) {
	if cfg.Replicas <= 0 {
		return nil, fmt.Errorf("adtrack: Replicas must be positive")
	}
	s := sim.New(cfg.Seed)
	res := &Result{}

	replicas := make([]*replica, cfg.Replicas)
	for i := range replicas {
		mod, err := ReportModule(cfg.Query, cfg.Threshold)
		if err != nil {
			return nil, err
		}
		node, err := bloom.NewNode(fmt.Sprintf("report%d", i), mod)
		if err != nil {
			return nil, err
		}
		replicas[i] = &replica{
			idx:      i,
			node:     node,
			held:     map[string][]Request{},
			looked:   map[string]bool{},
			arrivals: map[string][]sim.Time{},
			fifo:     map[string]sim.Time{},
		}
	}

	bursts := cfg.Workload.Plan()
	requests := cfg.Workload.RequestPlan(cfg.Requests, cfg.RequestSpacing)

	// linkArrival is the partition-adjusted delivery time for a message
	// sent now over the direct adserver→replica / analyst→replica links.
	linkArrival := func() sim.Time { return cfg.Link.Arrival(s) }

	var tickErr error
	fail := func(err error) {
		if tickErr == nil {
			tickErr = err
		}
	}

	// collectTick runs one Bloom timestep on a replica and harvests
	// responses.
	collectTick := func(r *replica) {
		em, err := r.node.Tick()
		if err != nil {
			fail(err)
			return
		}
		for _, e := range em {
			if e.Collection != "response" {
				continue
			}
			for _, row := range e.Rows {
				res.Responses = append(res.Responses, Response{Replica: r.idx, Row: row, At: s.Now()})
			}
		}
	}

	// drain serializes a replica's work queue: clicks cost ProcessCost
	// each; a request triggers a Bloom timestep at its queue position, so
	// the interleaving of clicks and requests is faithfully preserved.
	var drain func(r *replica)
	drain = func(r *replica) {
		if r.draining || len(r.pending) == 0 {
			return
		}
		r.draining = true
		var clicks []bloom.Row
		i := 0
		for ; i < len(r.pending); i++ {
			if r.pending[i].req != nil {
				break
			}
			clicks = append(clicks, r.pending[i].click.Row())
		}
		var req *Request
		if i < len(r.pending) {
			req = r.pending[i].req
			i++
		}
		r.pending = r.pending[i:]

		start := s.Now()
		if r.busyUntil > start {
			start = r.busyUntil
		}
		done := start + sim.Time(len(clicks))*cfg.ProcessCost
		r.busyUntil = done
		s.At(done, func() {
			if len(clicks) > 0 {
				if err := r.node.Deliver("click", clicks...); err != nil {
					fail(err)
					return
				}
				r.ingested += len(clicks)
				r.series = append(r.series, Point{At: s.Now(), Records: r.ingested})
			}
			if req != nil {
				if err := r.node.Deliver("request", req.Row()); err != nil {
					fail(err)
					return
				}
				collectTick(r)
			}
			r.draining = false
			drain(r)
		})
	}
	enqueueClick := func(r *replica, c Click) {
		r.pending = append(r.pending, workItem{click: &c})
		drain(r)
	}
	enqueueRequest := func(r *replica, req Request) {
		r.pending = append(r.pending, workItem{req: &req})
		drain(r)
	}

	switch cfg.Regime {
	case Uncoordinated:
		// Every click travels independently: reordering across records
		// and across replicas.
		for _, b := range bursts {
			b := b
			s.At(b.At, func() {
				for _, c := range b.Clicks {
					for _, r := range replicas {
						c, r := c, r
						s.At(linkArrival(), func() { enqueueClick(r, c) })
					}
				}
			})
		}
		for _, req := range requests {
			req := req
			s.At(req.At, func() {
				for _, r := range replicas {
					r := r
					s.At(linkArrival(), func() { enqueueRequest(r, req) })
				}
			})
		}

	case Ordered:
		seq := coord.NewSequencer(s, cfg.Sequencer)
		for _, r := range replicas {
			r := r
			seq.Subscribe(func(m coord.Sequenced) {
				switch v := m.Msg.(type) {
				case Click:
					enqueueClick(r, v)
				case Request:
					enqueueRequest(r, v)
				}
			})
		}
		// Clients throttle when the service queue grows (connection
		// backpressure): a burst finding the queue deep defers itself.
		var submitBurst func(b Burst)
		submitBurst = func(b Burst) {
			if d := seq.QueueDelay(); d > cfg.BackpressureThreshold {
				backoff := d + sim.Time(s.Rand().Int63n(int64(d)+1))
				s.After(backoff, func() { submitBurst(b) })
				return
			}
			for _, c := range b.Clicks {
				seq.Submit(c)
			}
		}
		for _, b := range bursts {
			b := b
			s.At(b.At, func() { submitBurst(b) })
		}
		for _, req := range requests {
			req := req
			s.At(req.At, func() { seq.Submit(req) })
		}
		defer func() { res.CoordMessages = seq.Submitted() }()

	case Quorum:
		q := coord.NewQuorumOrder(s, cfg.Quorum)
		for _, r := range replicas {
			r := r
			q.Subscribe(func(_ coord.Stamp, msg any) {
				switch v := msg.(type) {
				case Click:
					enqueueClick(r, v)
				case Request:
					enqueueRequest(r, v)
				}
			})
		}
		// One stamping producer per ad server (first-occurrence order, so
		// producer ids — and hence the preordained order — are
		// deterministic) plus one for the analyst.
		producers := map[string]*coord.QuorumProducer{}
		var plist []*coord.QuorumProducer
		for _, b := range bursts {
			if producers[b.Server] == nil {
				p := q.Producer()
				producers[b.Server] = p
				plist = append(plist, p)
			}
		}
		analyst := q.Producer()
		plist = append(plist, analyst)
		var last sim.Time
		for _, b := range bursts {
			b := b
			if b.At > last {
				last = b.At
			}
			s.At(b.At, func() {
				p := producers[b.Server]
				for _, c := range b.Clicks {
					p.Send(c)
				}
			})
		}
		for _, req := range requests {
			req := req
			if req.At > last {
				last = req.At
			}
			s.At(req.At, func() { analyst.Send(req) })
		}
		// Quiescence markers flush everything buffered behind the frontier.
		for _, p := range plist {
			p := p
			s.At(last+sim.Millisecond, p.Done)
		}
		defer func() { res.CoordMessages = q.Heartbeats() }()

	case Sealed:
		registry := coord.NewRegistry(s, cfg.Link)
		for campaign, producers := range cfg.Workload.Producers() {
			for _, p := range producers {
				registry.Register(campaign, p)
			}
		}
		for _, r := range replicas {
			r := r
			r.tracker = coord.NewSealTracker(func(partition string, msgs []any) {
				if r.idx == 0 {
					for _, at := range r.arrivals[partition] {
						res.BufferSum += s.Now() - at
						res.BufferCount++
					}
					delete(r.arrivals, partition)
				}
				for _, m := range msgs {
					enqueueClick(r, m.(Click))
				}
				for _, req := range r.held[partition] {
					enqueueRequest(r, req)
				}
				delete(r.held, partition)
			})
		}
		lookup := func(r *replica, campaign string) {
			if r.looked[campaign] {
				return
			}
			r.looked[campaign] = true
			registry.Lookup(campaign, func(producers []string) {
				r.tracker.SetExpected(campaign, producers)
			})
		}
		// Per-(producer, replica) FIFO delivery: punctuations are embedded
		// in the producer's stream and must not overtake its data.
		fifoDeliver := func(r *replica, server string, fn func()) {
			at := linkArrival()
			if prev := r.fifo[server]; at < prev {
				at = prev
			}
			r.fifo[server] = at
			s.At(at, fn)
		}
		for _, b := range bursts {
			b := b
			s.At(b.At, func() {
				for _, r := range replicas {
					r := r
					for _, c := range b.Clicks {
						c := c
						fifoDeliver(r, b.Server, func() {
							lookup(r, c.Campaign)
							if r.idx == 0 {
								r.arrivals[c.Campaign] = append(r.arrivals[c.Campaign], s.Now())
							}
							r.tracker.Data(c.Campaign, c)
						})
					}
					for _, campaign := range b.Seals {
						campaign := campaign
						server := b.Server
						fifoDeliver(r, server, func() {
							lookup(r, campaign)
							r.tracker.Seal(coord.Punctuation{Partition: campaign, Producer: server})
						})
					}
				}
			})
		}
		for _, req := range requests {
			req := req
			s.At(req.At, func() {
				for _, r := range replicas {
					r := r
					s.At(linkArrival(), func() {
						if r.tracker.Sealed(req.Campaign) {
							enqueueRequest(r, req)
						} else {
							r.held[req.Campaign] = append(r.held[req.Campaign], req)
						}
					})
				}
			})
		}
		defer func() { res.RegistryLookups = registry.Lookups() }()
	}

	s.Run()
	if tickErr != nil {
		return nil, tickErr
	}

	// Final bookkeeping: flush one tick per replica so trailing deliveries
	// reach the log, then collect results. FinishedAt measures record
	// ingestion (the paper's y-axis), not the analyst-request tail.
	for _, r := range replicas {
		if r.node.Pending() {
			collectTick(r)
		}
		res.LogSizes = append(res.LogSizes, r.node.Size("clicklog"))
		res.LogDigests = append(res.LogDigests, r.node.Digest())
		res.Held += len(r.held)
		if n := len(r.series); n > 0 && r.series[n-1].At > res.FinishedAt {
			res.FinishedAt = r.series[n-1].At
		}
	}
	if tickErr != nil {
		return nil, tickErr
	}
	res.Series = replicas[0].series
	sort.Slice(res.Responses, func(i, j int) bool {
		if res.Responses[i].At != res.Responses[j].At {
			return res.Responses[i].At < res.Responses[j].At
		}
		return res.Responses[i].Replica < res.Responses[j].Replica
	})
	return res, nil
}
