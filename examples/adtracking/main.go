// Ad tracking: run the paper's ad network under all coordination regimes,
// observe the cross-instance anomaly the paper reports for the
// uncoordinated run, and the determinism (plus near-baseline performance)
// of the sealed run — Figures 12–14 in miniature.
//
//	go run ./examples/adtracking
package main

import (
	"fmt"

	"blazes/substrate"
)

func config(regime substrate.Regime, independent bool) substrate.AdConfig {
	cfg := substrate.DefaultAdConfig(5, regime, independent)
	cfg.Workload.EntriesPerServer = 120
	cfg.Workload.BatchSize = 10
	cfg.Workload.Sleep = 50 * substrate.Millisecond
	cfg.Threshold = 1 << 30 // every count answered
	cfg.Requests = 10
	cfg.RequestSpacing = 60 * substrate.Millisecond
	return cfg
}

func main() {
	fmt.Printf("%-18s %10s %10s %8s %s\n", "regime", "records", "finish", "lookups", "replicas agree?")
	for _, v := range []struct {
		label       string
		regime      substrate.Regime
		independent bool
	}{
		{"uncoordinated", substrate.Uncoordinated, false},
		{"ordered", substrate.Ordered, false},
		{"independent seal", substrate.Sealed, true},
		{"seal", substrate.Sealed, false},
	} {
		res, err := substrate.RunAdNetwork(config(v.regime, v.independent))
		if err != nil {
			panic(err)
		}
		diff := substrate.CrossInstanceDiff(res, 3)
		agree := "yes"
		if diff != "" {
			agree = "NO — " + diff
		}
		fmt.Printf("%-18s %10d %10s %8d %s\n",
			v.label, res.Series.Final(), res.FinishedAt, res.RegistryLookups, agree)
	}

	fmt.Println("\nThe uncoordinated run may disagree across replicas (the paper 'confirmed")
	fmt.Println("by observation that certain queries posed to multiple reporting server")
	fmt.Println("replicas returned inconsistent results'); ordering and sealing both")
	fmt.Println("restore agreement, but sealing finishes near the uncoordinated baseline")
	fmt.Println("while ordering pays the totally-ordered delivery penalty.")
}
