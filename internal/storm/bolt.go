package storm

// Emitter receives tuples produced by a bolt or spout.
type Emitter func(Tuple)

// Bolt is a stream operator. Execute processes one input tuple and may emit
// any number of output tuples; FinishBatch is called exactly once per batch
// after every input tuple of that batch has been executed, and may emit the
// batch's aggregated outputs (the pattern used by Count).
//
// Bolts are deterministic: identical inputs in identical order produce
// identical outputs (Section II). Order-sensitivity enters through the
// network, not the operator.
//
// In parallel mode each instance is one partition of the deterministic
// scheduler: Execute/FinishBatch may run on a worker goroutine, but never
// concurrently for the same instance, and emitted tuples are routed on the
// scheduler goroutine in schedule order. A bolt instance must therefore not
// share mutable state with other instances.
type Bolt interface {
	Execute(t Tuple, emit Emitter)
	FinishBatch(batch int64, emit Emitter)
}

// Spout produces the input stream in numbered batches. Each spout instance
// is asked for its share of every batch; ok=false marks the end of the
// stream for that instance.
//
// In parallel mode NextBatch may be called concurrently for *different*
// instances of the same batch; implementations must not share unsynchronized
// mutable state across instances (the synthetic spouts are pure functions of
// (instance, batch)).
type Spout interface {
	NextBatch(instance int, batch int64) (tuples []Values, ok bool)
}

// Grouping routes a tuple emitted by a producer to one or more consumer
// instances.
type Grouping interface {
	// Route appends to buf and returns the consumer instance indexes (out
	// of n) that must receive the tuple. rand is a deterministic PRNG draw
	// in [0, 1<<63). Callers pass a reusable buffer (typically buf[:0]) so
	// routing allocates nothing on the hot path.
	Route(t Tuple, n int, rand int64, buf []int) []int
}

// ShuffleGrouping sends each tuple to a uniformly random consumer instance —
// Storm's "random partitioning" used between tweets and Splitters.
type ShuffleGrouping struct{}

// Route implements Grouping.
func (ShuffleGrouping) Route(_ Tuple, n int, rand int64, buf []int) []int {
	return append(buf, int(rand%int64(n)))
}

// FieldsGrouping hash-partitions on selected fields — used between Splitter
// and Count so each word lands on a single counter.
type FieldsGrouping struct {
	// Fields are indexes into the tuple's Values.
	Fields []int
}

// fnv64 constants (FNV-1a), inlined so routing does not allocate a hasher.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Route implements Grouping.
func (g FieldsGrouping) Route(t Tuple, n int, _ int64, buf []int) []int {
	h := uint64(fnvOffset64)
	for _, f := range g.Fields {
		if f < len(t.Values) {
			v := t.Values[f]
			for i := 0; i < len(v); i++ {
				h ^= uint64(v[i])
				h *= fnvPrime64
			}
			// NUL field separator, as the previous hasher-based version
			// wrote it (h ^= 0 is a no-op).
			h *= fnvPrime64
		}
	}
	return append(buf, int(mix64(h)%uint64(n)))
}

// mix64 is the splitmix64 finalizer: FNV alone has poor low-bit avalanche
// on short keys, which skews modulo partitioning badly enough to unbalance
// whole stages.
func mix64(s uint64) uint64 {
	s ^= s >> 30
	s *= 0xbf58476d1ce4e9b9
	s ^= s >> 27
	s *= 0x94d049bb133111eb
	s ^= s >> 31
	return s
}

// AllGrouping broadcasts every tuple to every consumer instance.
type AllGrouping struct{}

// Route implements Grouping.
func (AllGrouping) Route(_ Tuple, n int, _ int64, buf []int) []int {
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}

// GlobalGrouping routes every tuple to instance 0.
type GlobalGrouping struct{}

// Route implements Grouping.
func (GlobalGrouping) Route(_ Tuple, _ int, _ int64, buf []int) []int {
	return append(buf, 0)
}
