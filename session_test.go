package blazes

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func loadSessionSpec(t *testing.T, name string) *Spec {
	t.Helper()
	s, err := LoadSpec(filepath.Join("internal", "spec", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// cyclicTopology builds a two-component interface-level cycle (A↔B): the
// collapse folds both into the "scc+A+B" supernode, whose name and
// member-qualified interfaces ("B.out") contain dots — the shape that
// exercises the supernode paths of the incremental engine and the
// session's report reuse.
func cyclicTopology(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraphBuilder("gossip-pair").
		ComponentPath("A", "in", "out", CW).
		ComponentPath("B", "in", "out", OWGate("k")).
		Source("src", "A", "in").
		Stream("ab", "A", "out", "B", "in").
		Stream("ba", "B", "out", "A", "in").
		Sink("snk", "B", "out").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// mutator applies one random valid mutation to the session and returns a
// description of what it did.
type mutator func(t *testing.T, rng *rand.Rand, s *Session, specBacked bool, serial *int) string

func randAttrs(rng *rand.Rand) []string {
	pool := []string{"batch", "word", "campaign", "id", "window"}
	n := 1 + rng.Intn(2)
	out := make([]string, 0, n)
	for len(out) < n {
		out = append(out, pool[rng.Intn(len(pool))])
	}
	return out
}

func randAnn(rng *rand.Rand) Annotation {
	switch rng.Intn(6) {
	case 0:
		return CR
	case 1:
		return CW
	case 2:
		return ORGate(randAttrs(rng)...)
	case 3:
		return OWGate(randAttrs(rng)...)
	case 4:
		return ORStar()
	default:
		return OWStar()
	}
}

func sessionMutators() []mutator {
	return []mutator{
		// Annotate a random existing path.
		func(t *testing.T, rng *rand.Rand, s *Session, _ bool, _ *int) string {
			g := s.Graph()
			comps := g.Components()
			c := comps[rng.Intn(len(comps))]
			p := c.Paths[rng.Intn(len(c.Paths))]
			ann := randAnn(rng)
			if err := s.Annotate(c.Name, p.From, p.To, ann); err != nil {
				t.Fatalf("Annotate(%s, %s, %s): %v", c.Name, p.From, p.To, err)
			}
			return fmt.Sprintf("annotate %s.%s→%s %s", c.Name, p.From, p.To, ann)
		},
		// Seal or unseal a random stream.
		func(t *testing.T, rng *rand.Rand, s *Session, _ bool, _ *int) string {
			g := s.Graph()
			streams := g.Streams()
			st := streams[rng.Intn(len(streams))]
			if rng.Intn(3) == 0 {
				if err := s.SealStream(st.Name); err != nil {
					t.Fatalf("unseal %s: %v", st.Name, err)
				}
				return "unseal " + st.Name
			}
			key := randAttrs(rng)
			if err := s.SealStream(st.Name, key...); err != nil {
				t.Fatalf("seal %s: %v", st.Name, err)
			}
			return fmt.Sprintf("seal %s on %v", st.Name, key)
		},
		// Tap a random output interface into a new external sink.
		func(t *testing.T, rng *rand.Rand, s *Session, _ bool, serial *int) string {
			g := s.Graph()
			comps := g.Components()
			c := comps[rng.Intn(len(comps))]
			outs := c.Outputs()
			iface := outs[rng.Intn(len(outs))]
			*serial++
			name := fmt.Sprintf("tap%d", *serial)
			if err := s.Connect(name, c.Name+"."+iface, ""); err != nil {
				t.Fatalf("Connect(%s): %v", name, err)
			}
			return "tap " + c.Name + "." + iface
		},
		// Add an auditing component fed by a random output interface.
		func(t *testing.T, rng *rand.Rand, s *Session, _ bool, serial *int) string {
			g := s.Graph()
			comps := g.Components()
			c := comps[rng.Intn(len(comps))]
			outs := c.Outputs()
			iface := outs[rng.Intn(len(outs))]
			*serial++
			name := fmt.Sprintf("Aux%d", *serial)
			if err := s.AddComponent(name, Path("in", "out", randAnn(rng))); err != nil {
				t.Fatalf("AddComponent(%s): %v", name, err)
			}
			if err := s.Connect(fmt.Sprintf("aux-in%d", *serial), c.Name+"."+iface, name+".in"); err != nil {
				t.Fatalf("Connect aux-in: %v", err)
			}
			if err := s.Connect(fmt.Sprintf("aux-out%d", *serial), name+".out", ""); err != nil {
				t.Fatalf("Connect aux-out: %v", err)
			}
			return "add component " + name
		},
		// Remove a previously added tap (or skip when none exists).
		func(t *testing.T, rng *rand.Rand, s *Session, _ bool, _ *int) string {
			g := s.Graph()
			var taps []string
			for _, st := range g.Streams() {
				if len(st.Name) > 3 && st.Name[:3] == "tap" {
					taps = append(taps, st.Name)
				}
			}
			if len(taps) == 0 {
				return "noop"
			}
			name := taps[rng.Intn(len(taps))]
			if err := s.RemoveEdge(name); err != nil {
				t.Fatalf("RemoveEdge(%s): %v", name, err)
			}
			return "remove " + name
		},
		// Re-select a spec variant (spec-backed sessions only).
		func(t *testing.T, rng *rand.Rand, s *Session, specBacked bool, _ *int) string {
			if !specBacked {
				return "noop"
			}
			variants := []string{"THRESH", "POOR", "WINDOW", "CAMPAIGN"}
			v := variants[rng.Intn(len(variants))]
			if err := s.SetVariant("Report", v); err != nil {
				t.Fatalf("SetVariant(%s): %v", v, err)
			}
			return "variant Report=" + v
		},
	}
}

// TestSessionDifferential is the tentpole acceptance check: across ≥150
// randomized mutation sequences, every Session.Analyze (and, on a subset,
// Synthesize) emits bytes identical to a fresh one-shot analysis of the
// equivalent graph, modulo the Delta section a one-shot report cannot have.
func TestSessionDifferential(t *testing.T) {
	const sequences = 160
	ctx := context.Background()
	muts := sessionMutators()

	for seq := 0; seq < sequences; seq++ {
		rng := rand.New(rand.NewSource(int64(seq) + 1))
		var (
			s          *Session
			specBacked bool
			err        error
		)
		switch seq % 5 {
		case 0:
			s, err = OpenSession(WordcountTopology(rng.Intn(2) == 0))
		case 1:
			s, err = OpenSession(AdNetwork(CAMPAIGN, "campaign"))
		case 2:
			s, err = loadSessionSpec(t, "wordcount.blazes").OpenSession("wordcount")
		case 3:
			s, err = OpenSession(cyclicTopology(t)) // supernode path
		default:
			specBacked = true
			s, err = loadSessionSpec(t, "adreport.blazes").OpenSession("adreport",
				WithVariant("Report", "CAMPAIGN"), WithSealRepair("clicks", "campaign"))
		}
		if err != nil {
			t.Fatalf("seq %d: open: %v", seq, err)
		}

		serial := 0
		steps := 1 + rng.Intn(6)
		trace := []string{"open"}
		for step := 0; step <= steps; step++ {
			if step > 0 {
				trace = append(trace, muts[rng.Intn(len(muts))](t, rng, s, specBacked, &serial))
			}
			synth := rng.Intn(3) == 0
			var got *Report
			if synth {
				got, err = s.Synthesize(ctx)
			} else {
				got, err = s.Analyze(ctx)
			}
			if err != nil {
				t.Fatalf("seq %d step %d (%v): session analyze: %v", seq, step, trace, err)
			}

			// Fresh one-shot analysis of the equivalent graph.
			analyzer := NewAnalyzer()
			var fresh *Result
			if synth {
				fresh, err = analyzer.Synthesize(s.Graph())
			} else {
				fresh, err = analyzer.Analyze(s.Graph())
			}
			if err != nil {
				t.Fatalf("seq %d step %d (%v): fresh analyze: %v", seq, step, trace, err)
			}

			gotBytes := marshalWithoutDelta(t, got)
			wantBytes := marshalWithoutDelta(t, fresh.Report())
			if !bytes.Equal(gotBytes, wantBytes) {
				t.Fatalf("seq %d step %d (%v): session report differs from fresh analysis\n--- session ---\n%s\n--- fresh ---\n%s",
					seq, step, trace, gotBytes, wantBytes)
			}
		}
	}
}

func marshalWithoutDelta(t *testing.T, rep *Report) []byte {
	t.Helper()
	clone := *rep
	clone.Delta = nil
	out, err := clone.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSessionDelta: the second analysis carries a delta describing the flip.
func TestSessionDelta(t *testing.T) {
	ctx := context.Background()
	s, err := OpenSession(WordcountTopology(false))
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Synthesize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if first.Delta != nil {
		t.Fatal("first analysis must not carry a delta")
	}

	if err := s.SealStream("tweets", "batch"); err != nil {
		t.Fatal(err)
	}
	second, err := s.Synthesize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	d := second.Delta
	if d == nil {
		t.Fatal("second analysis must carry a delta")
	}
	if d.Since != 1 {
		t.Errorf("Since = %d, want 1", d.Since)
	}
	if len(d.Streams) == 0 {
		t.Error("sealing tweets changed no stream labels?")
	}
	found := false
	for _, sd := range d.Streams {
		if sd.Name == "tweets" && sd.After.Kind == "Seal" {
			found = true
		}
	}
	if !found {
		t.Errorf("delta streams %v missing tweets → Seal", d.Streams)
	}
	if d.Verdict == nil {
		t.Error("sealing the wordcount changes the verdict (Diverge → Async)")
	}
	if len(d.Strategies) == 0 {
		t.Error("sealing changes the synthesized strategies")
	}
	if len(d.Recomputed) == 0 {
		t.Error("delta must name the recomputed components")
	}

	// A no-op re-analysis yields an empty (but present) delta.
	third, err := s.Synthesize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if third.Delta == nil {
		t.Fatal("third analysis must carry a delta")
	}
	if len(third.Delta.Streams) != 0 || third.Delta.Verdict != nil || len(third.Delta.Recomputed) != 0 {
		t.Errorf("no-op delta not empty: %+v", third.Delta)
	}
}

// TestSessionMemoization: an annotation flip recomputes strictly fewer
// output interfaces than the whole graph.
func TestSessionMemoization(t *testing.T) {
	ctx := context.Background()
	s, err := OpenSession(AdNetwork(CAMPAIGN, "campaign"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
	if !s.LastStats().Rebuilt {
		t.Fatal("first analysis must build the structure")
	}
	if err := s.Annotate("Report", "request", "response", ORGate("id")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
	st := s.LastStats()
	if st.Rebuilt {
		t.Error("annotation flip must not rebuild the structure")
	}
	if len(st.Recomputed) == 0 {
		t.Error("annotation flip must recompute something")
	}
	if st.Reused == 0 {
		t.Error("annotation flip must reuse upstream derivations")
	}
}

// TestSessionMutatorErrors: every mutator validates eagerly and leaves the
// session analyzable.
func TestSessionMutatorErrors(t *testing.T) {
	ctx := context.Background()
	s, err := OpenSession(WordcountTopology(false))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		call func() error
	}{
		{"annotate-unknown-comp", func() error { return s.Annotate("Nope", "a", "b", CR) }},
		{"annotate-unknown-path", func() error { return s.Annotate("Count", "nope", "nope", CR) }},
		{"seal-unknown-stream", func() error { return s.SealStream("nope", "k") }},
		{"remove-unknown-stream", func() error { return s.RemoveEdge("nope") }},
		{"connect-dup", func() error { return s.Connect("tweets", "Count.counts", "") }},
		{"connect-unknown-comp", func() error { return s.Connect("x", "Nope.out", "") }},
		{"connect-unknown-iface", func() error { return s.Connect("x", "Count.nope", "") }},
		{"connect-bad-endpoint", func() error { return s.Connect("x", "malformed", "") }},
		{"connect-nothing", func() error { return s.Connect("x", "", "") }},
		{"add-dup-component", func() error { return s.AddComponent("Count", Path("a", "b", CR)) }},
		{"add-no-paths", func() error { return s.AddComponent("New") }},
		{"variant-on-graph-session", func() error { return s.SetVariant("Count", "X") }},
	}
	before := s.Version()
	for _, tc := range cases {
		if err := tc.call(); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if s.Version() != before {
		t.Error("failed mutators must not bump the session version")
	}
	if _, err := s.Analyze(ctx); err != nil {
		t.Fatalf("session corrupted by failed mutators: %v", err)
	}
}

// TestSessionSupernodeDelta: seal flips on a cyclic graph re-derive the
// collapsed supernode, the report reflects the new derivation (not a
// stale reused ComponentReport), and Delta.Recomputed names the actual
// supernode — "scc+A+B", not a mis-split of its dotted interface names.
func TestSessionSupernodeDelta(t *testing.T) {
	ctx := context.Background()
	s, err := OpenSession(cyclicTopology(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.SealStream("src", "k"); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delta == nil || len(rep.Delta.Recomputed) == 0 {
		t.Fatalf("sealed re-analysis carries no recomputed components: %+v", rep.Delta)
	}
	for _, name := range rep.Delta.Recomputed {
		found := false
		for _, cr := range rep.Components {
			if cr.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("Delta.Recomputed names %q, which is not in Report.Components", name)
		}
	}
	fresh, err := NewAnalyzer().Analyze(s.Graph())
	if err != nil {
		t.Fatal(err)
	}
	got := marshalWithoutDelta(t, rep)
	want := marshalWithoutDelta(t, fresh.Report())
	if !bytes.Equal(got, want) {
		t.Errorf("supernode session report differs from fresh analysis\n--- session ---\n%s\n--- fresh ---\n%s", got, want)
	}
}

// TestSessionSetVariantRollsBackOnOrphanedStream: re-selecting a variant
// that would orphan a stream wired to a variant-only interface fails and
// leaves the session exactly as it was (the mutator-atomicity contract).
func TestSessionSetVariantRollsBackOnOrphanedStream(t *testing.T) {
	ctx := context.Background()
	spec, err := ParseSpec(`C:
  annotation: {from: in, to: out, label: CR}
  EXTRA: {from: in, to: dbg, label: CW}
topology:
  sources:
    - {name: src, to: C.in}
  sinks:
    - {name: snk, from: C.out}
`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := spec.OpenSession("rollback", WithVariant("C", "EXTRA"))
	if err != nil {
		t.Fatal(err)
	}
	// Wire a sink to the interface only the EXTRA variant declares.
	if err := s.Connect("tap", "C.dbg", ""); err != nil {
		t.Fatal(err)
	}
	before := s.Version()
	err = s.SetVariant("C", "")
	if err == nil {
		t.Fatal("SetVariant succeeded despite orphaning stream tap")
	}
	if !strings.Contains(err.Error(), `"tap"`) {
		t.Errorf("error does not name the orphaned stream: %v", err)
	}
	if s.Version() != before {
		t.Error("failed SetVariant bumped the session version")
	}
	if _, err := s.Analyze(ctx); err != nil {
		t.Fatalf("session corrupted by failed SetVariant: %v", err)
	}
	// Dropping the tap first makes the same re-selection legal.
	if err := s.RemoveEdge("tap"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetVariant("C", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSessionCancellation: a cancelled context aborts Analyze.
func TestSessionCancellation(t *testing.T) {
	s, err := OpenSession(WordcountTopology(false))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Analyze(ctx); err == nil {
		t.Fatal("cancelled context must abort Analyze")
	}
}

// TestSessionCancelledRebuildDoesNotStaleCaches: a topology mutation
// followed by a *cancelled* analysis must not poison the session's
// projection caches — the next successful analysis is a full pass whose
// report carries the new stream set.
func TestSessionCancelledRebuildDoesNotStaleCaches(t *testing.T) {
	ctx := context.Background()
	s, err := OpenSession(WordcountTopology(false))
	if err != nil {
		t.Fatal(err)
	}
	// Two completed analyses so the projection caches are warm.
	if _, err := s.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.SealStream("tweets", "batch"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Analyze(ctx); err != nil {
		t.Fatal(err)
	}

	// Topology mutation, then an analysis that dies mid-rebuild.
	if err := s.Connect("tap", "Count.counts", ""); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Analyze(cancelled); err == nil {
		t.Fatal("cancelled context must abort Analyze")
	}

	rep, err := s.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !s.LastStats().Rebuilt {
		t.Error("pass after a cancelled rebuild must report Rebuilt")
	}
	if _, ok := rep.StreamLabel("tap"); !ok {
		t.Fatalf("report omits the stream added before the cancelled pass: %v", rep.Streams)
	}
	fresh, err := NewAnalyzer().Analyze(s.Graph())
	if err != nil {
		t.Fatal(err)
	}
	got := marshalWithoutDelta(t, rep)
	want := marshalWithoutDelta(t, fresh.Report())
	if !bytes.Equal(got, want) {
		t.Errorf("post-cancellation report differs from fresh analysis\n--- session ---\n%s\n--- fresh ---\n%s", got, want)
	}
}

// TestDecodeReportV1Fixtures: the v2 decoder still accepts the recorded v1
// golden documents.
func TestDecodeReportV1Fixtures(t *testing.T) {
	for _, name := range []string{"report_wordcount_v1.json", "report_adreport_v1.json"} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := DecodeReport(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Version != ReportVersionV1 {
			t.Errorf("%s: version = %q", name, rep.Version)
		}
		if rep.Delta != nil {
			t.Errorf("%s: v1 fixture decoded with a delta", name)
		}
		if len(rep.Streams) == 0 || rep.Dataflow == "" {
			t.Errorf("%s: decoded report incomplete: %+v", name, rep)
		}
	}
}
