// Package verify is the public façade over the schedule-exploration
// verification harness (internal/chaos): it proves, by adversarial
// execution, the two-sided Blazes guarantee for a workload — programs the
// analyzer certifies confluent converge without coordination on every
// delivery schedule, and non-confluent programs coordinated with the
// synthesized strategy (sealing or sequencing, installed on the
// coordination substrates of internal/coord) are outcome-invariant, while
// stripping that coordination reproduces the predicted divergence.
//
// A Check explores Seeds schedules per (mechanism, fault plan)
// configuration; fault plans inject reordering, duplication, bounded extra
// delay, and partition-then-heal on every simulated link. The result is a
// machine-readable Report whose oracle verdicts classify disagreements
// into the paper's anomaly classes (cross-run and cross-instance
// nondeterminism, replica divergence).
//
//	rep, err := verify.Check(verify.Wordcount(), verify.Options{})
//	if err != nil || !rep.Holds { ... }
package verify

import (
	"context"
	"encoding/json"

	"blazes"
	"blazes/internal/chaos"
)

// Workload is a runnable system under test: it exposes its annotated
// dataflow for analysis and executes seeded runs under fault plans with a
// chosen delivery mechanism installed.
type Workload = chaos.Workload

// Plan is one adversarial delivery configuration.
type Plan = chaos.FaultPlan

// Report is the outcome of one Check.
type Report = chaos.Report

// Sweep is the oracle verdict for one (mechanism, plan) configuration.
type Sweep = chaos.Sweep

// Anomalies records the observed anomaly classes of Figure 5.
type Anomalies = chaos.Anomalies

// DefaultSeeds is the schedule count explored per configuration when
// Options.Seeds is zero.
const DefaultSeeds = chaos.DefaultSeeds

// DefaultPlans is the standard adversarial sweep: baseline jitter, heavy
// reordering, at-least-once duplication, and a partition that heals
// mid-run.
func DefaultPlans() []Plan { return chaos.DefaultPlans() }

// Options tunes a verification run.
type Options struct {
	// Seeds is the number of schedules explored per (mechanism, plan)
	// configuration; 0 selects DefaultSeeds (64).
	Seeds int
	// Plans is the fault-plan sweep; nil selects DefaultPlans.
	Plans []Plan
	// PreferSequencing selects M1 (preordained total order) over M2
	// dynamic ordering when synthesis must order inputs.
	PreferSequencing bool
	// Strategy asks synthesis to try the named registered coordination
	// strategy first (see blazes/strategy); empty keeps the default
	// sealing-then-ordering chain. An unknown name is an error before any
	// schedule runs.
	Strategy string
	// Parallelism is the worker count for exploring seeded schedules
	// concurrently (each on its own simulator, merged in seed order): the
	// report — anomalies, details, JSON bytes — is byte-identical to a
	// sequential sweep, only faster on multicore. 0 or 1 keeps the sweep
	// sequential; < 0 selects GOMAXPROCS.
	Parallelism int
}

// Check verifies the Blazes guarantee for one workload; see the package
// documentation. The returned Report's Holds field is the verdict.
func Check(w Workload, opts Options) (*Report, error) {
	return CheckContext(context.Background(), w, opts)
}

// CheckContext is Check with cancellation: once ctx is done, sweep workers
// stop picking up new seeded schedules, in-flight runs finish, and the
// check returns the context's error — a multi-minute sweep stops within one
// seed's run time instead of running to completion.
func CheckContext(ctx context.Context, w Workload, opts Options) (*Report, error) {
	return chaos.Check(ctx, w, chaos.Config{
		Seeds:            opts.Seeds,
		Plans:            opts.Plans,
		PreferSequencing: opts.PreferSequencing,
		Strategy:         opts.Strategy,
		Parallelism:      opts.Parallelism,
	})
}

// Wordcount is the paper's streaming wordcount on the simulated Storm
// engine: sealing maps to punctuated batches with sealed commits,
// sequencing to transactional commits, and stripping the coordination
// reverts to timer-guessed batch boundaries.
func Wordcount() Workload { return chaos.Wordcount() }

// AdNetwork is the paper's full ad-tracking network (replicated Bloom
// reporting servers, ad-server click plan, the Section VIII-B coordination
// regimes) with the click source sealed per campaign.
func AdNetwork() Workload { return chaos.AdNetwork() }

// ReplicatedReport is the reporting-server Bloom module alone, replicated,
// with annotations extracted by the white-box analyzer. The query selects
// the variant: THRESH is confluent, POOR needs ordering, CAMPAIGN seals
// per campaign.
func ReplicatedReport(query blazes.AdQuery) Workload { return chaos.ReplicatedReport(query) }

// SyntheticSet is the confluent Figure 5 component: a replicated grow-only
// set.
func SyntheticSet() Workload { return chaos.SyntheticSet() }

// SyntheticChains is the order-sensitive Figure 5 component: replicated
// per-producer hash chains; gated seals the source per producer (M3),
// ungated forces ordering (M2/M1).
func SyntheticChains(gated bool) Workload { return chaos.SyntheticChains(gated) }

// Workloads returns the standard verification suite, covering the Storm,
// Bloom, and synthetic substrates and every Figure 5 mechanism. Every
// member's name resolves through LookupWorkload.
func Workloads() []Workload { return chaos.Suite() }

// MarshalReports renders reports as indented JSON (a stable array, one
// element per workload).
func MarshalReports(reports []*Report) ([]byte, error) {
	return json.MarshalIndent(reports, "", "  ")
}
