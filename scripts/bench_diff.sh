#!/usr/bin/env bash
# bench_diff.sh — smoke-run every benchmark once and diff ns/op against the
# recorded baseline (BENCH_8.json).
#
# Usage:
#   scripts/bench_diff.sh                     # threshold 3.0× vs BENCH_8.json
#   BASELINE=BENCH_8.json THRESHOLD=2.5 scripts/bench_diff.sh
#
#   # JSON mode: skip `go test -bench` and diff the Benchmark* entries of
#   # one report against another (the load-smoke job compares a fresh
#   # cmd/loadgen run to the committed BENCH_7.json this way):
#   CURRENT_JSON=/tmp/load.json BASELINE=BENCH_7.json scripts/bench_diff.sh
#
# Exits 1 when any benchmark is more than THRESHOLD× slower than its
# baseline mean. Single-iteration numbers are noisy and CI hardware differs
# from the baseline machine, so callers (the bench-smoke and load-smoke CI
# jobs) treat the result as NON-BLOCKING: the point is to surface silent
# order-of-magnitude rots, not to gate merges on jitter.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${BASELINE:-BENCH_8.json}"
THRESHOLD="${THRESHOLD:-3.0}"
CURRENT_JSON="${CURRENT_JSON:-}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

if [[ -z "$CURRENT_JSON" ]]; then
	go test -bench . -benchtime 1x -benchmem -run '^$' ./... | tee "$RAW"
fi

awk -v baseline="$BASELINE" -v current="$CURRENT_JSON" -v threshold="$THRESHOLD" '
# parse_json reads "Benchmark...": {"ns_per_op": N} entries into arr. The
# name and value may share a line (compact BENCH_N.json) or sit on
# adjacent lines (indented cmd/loadgen reports) — pending carries the name
# across lines until its ns_per_op shows up.
function parse_json(file, arr,    line, name, val, pending) {
	pending = ""
	while ((getline line < file) > 0) {
		if (match(line, /"Benchmark[^"]*"/)) {
			name = substr(line, RSTART + 1, RLENGTH - 2)
			pending = name
		}
		if (pending != "" && match(line, /"ns_per_op": [0-9.eE+-]+/)) {
			val = substr(line, RSTART + 13, RLENGTH - 13)
			arr[pending] = val + 0
			pending = ""
		}
	}
	close(file)
}
BEGIN {
	parse_json(baseline, base)
	if (current != "") parse_json(current, now)
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") {
			now[name] = $i + 0
		}
	}
}
END {
	printf "\n%-40s %14s %14s %8s\n", "benchmark", "baseline ns/op", "smoke ns/op", "ratio"
	worst = 0
	for (name in now) {
		if (!(name in base)) {
			printf "%-40s %14s %14.0f %8s  (new: no baseline)\n", name, "-", now[name], "-"
			continue
		}
		ratio = base[name] > 0 ? now[name] / base[name] : 0
		flag = ""
		if (ratio > threshold) { flag = "  <-- REGRESSION?"; bad++ }
		printf "%-40s %14.0f %14.0f %7.2fx%s\n", name, base[name], now[name], ratio, flag
		if (ratio > worst) worst = ratio
	}
	printf "\nthreshold %.2fx, worst ratio %.2fx\n", threshold, worst
	if (bad > 0) {
		printf "%d benchmark(s) exceeded the threshold (non-blocking; see scripts/bench_diff.sh)\n", bad
		exit 1
	}
}' "$RAW"
