// Quickstart: build an annotated dataflow with the fluent GraphBuilder,
// run the Blazes Analyzer, read the verdict, and let it synthesize the
// cheapest safe coordination — all through the public `blazes` API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"blazes"
)

func main() {
	// The paper's streaming wordcount (Figure 2): Splitter divides tweets
	// into words (confluent, stateless: CR); Count tallies per (word,
	// batch) — stateful and order-sensitive, but partitioned: OW_{word,
	// batch}; Commit appends to a keyed store (confluent, stateful: CW).
	g, err := blazes.NewGraphBuilder("wordcount").
		ComponentPath("Splitter", "tweets", "words", blazes.CR).
		ComponentPath("Count", "words", "counts", blazes.OWGate("word", "batch")).
		ComponentPath("Commit", "counts", "db", blazes.CW).
		Source("tweets", "Splitter", "tweets").
		Stream("words", "Splitter", "words", "Count", "words").
		Stream("counts", "Count", "counts", "Commit", "counts").
		Sink("db", "Commit", "db").
		Build()
	if err != nil {
		panic(err)
	}

	// Blazes recommends coordination; for a replay-based engine that
	// means sequencing (Storm's transactional topologies).
	analyzer := blazes.NewAnalyzer(blazes.PreferSequencing())
	res, err := analyzer.Synthesize(g)
	if err != nil {
		panic(err)
	}
	fmt.Println("== unsealed analysis ==")
	fmt.Println(res.Explain())
	fmt.Printf("deterministic: %v\n\n", res.Deterministic())
	for _, st := range res.Strategies() {
		fmt.Println("strategy:", st, "—", st.Reason)
	}

	// Now tell Blazes the input stream is punctuated per batch: the seal
	// is compatible with Count's gate, so no global coordination is
	// needed — only the per-batch seal protocol.
	fmt.Println("\n== sealed on batch ==")
	sealed := blazes.NewAnalyzer(blazes.PreferSequencing(), blazes.WithSealRepair("tweets", "batch"))
	res2, err := sealed.Synthesize(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("verdict: %s, deterministic: %v\n", res2.Verdict(), res2.Deterministic())
	for _, st := range res2.Strategies() {
		fmt.Println("strategy:", st, "—", st.Reason)
	}
}
