package dataflow

import (
	"context"
	"fmt"

	"blazes/internal/core"
	"blazes/internal/fd"
)

// Incremental is a dependency-tracked, memoized analysis engine over one
// mutable graph: the backbone of blazes.Session. The owner mutates the
// graph it registered, reports what changed through the Note* methods, and
// calls Analyze to re-derive labels; per-output-interface derivations are
// memoized against their exact inputs (path annotations, component config,
// incoming stream labels), so a mutation re-derives only its downstream
// closure — propagation stops as soon as a derived label comes out
// unchanged. Structural work (validation, cycle collapse, topological
// order, stream indexes) is cached across analyses and rebuilt only when a
// topology-changing mutation is noted, tracked by a graph version counter.
//
// Incremental is not safe for concurrent use; blazes.Session serializes
// access.
type Incremental struct {
	g *Graph

	// version counts noted mutations; analyzed is the version the last
	// completed Analyze observed. Equal versions mean the cached Analysis
	// is current.
	version  uint64
	analyzed uint64

	// Structure cache, valid while topoDirty is false.
	topoDirty bool
	collapsed *Graph
	order     []ifaceNode
	idx       *streamIndex
	// cyclic marks original components lying on interface-level cycles:
	// their annotations feed the collapse itself, so annotation changes on
	// them degrade to a structural rebuild.
	cyclic map[string]bool

	// Pending cheap syncs into the collapsed clone (when the collapse
	// produced a rewritten copy, its components/streams shadow the
	// originals and must track annotation/seal mutations).
	pendingComps   map[string]bool
	pendingStreams map[string]bool

	// memo keeps up to memoVersions derivations per output interface,
	// most-recently-used first: the repair loop's try-and-revert pattern
	// (flip an annotation, analyze, flip it back) hits the cache in both
	// directions.
	memo map[[2]string][]*nodeMemo
	// stamped records, per interface, the memo entry whose label was last
	// written to its outgoing streams; a hit on any other entry means the
	// derivation changed and must restamp and rebuild.
	stamped map[[2]string]*nodeMemo
	last    *Analysis
	// carry accumulates the interfaces whose derivation changed since the
	// last *completed* pass: a cancelled pass updates memo state, so its
	// changes must still be reported (and their components' records
	// rebuilt) by the pass that eventually completes.
	carry map[[2]string]bool
	// runSeq identifies each non-cached Analyze pass; ComponentAnalysis
	// records carry the pass that built them so an aborted pass can never
	// leave a half-built record that a later pass appends to twice.
	runSeq uint64
}

// memoVersions bounds the per-interface derivation cache.
const memoVersions = 4

// NodeRef identifies one output interface of the collapsed graph. Comp
// may be a supernode name ("scc+A+B") and Iface a member-qualified
// interface ("B.out"); both can contain dots, which is why the reference
// is structured rather than a joined string.
type NodeRef struct {
	Comp, Iface string
}

// Stats reports what one incremental Analyze actually did.
type Stats struct {
	// Rebuilt: this pass was a full (non-incremental) one — the structure
	// caches were rebuilt by this pass or by a cancelled pass since the
	// last completed analysis, so nothing from the previous analysis
	// (labels, records, projections) carries over.
	Rebuilt bool
	// Recomputed lists the collapsed-graph output interfaces whose
	// derivation record changed this round — freshly derived, or swapped
	// in from the version cache — in propagation order.
	Recomputed []NodeRef
	// Reused counts output interfaces served from the memo.
	Reused int
}

// nodeMemo captures one output interface's derivation together with the
// exact inputs it depends on; the entry is valid while every recorded
// dependency still matches.
type nodeMemo struct {
	paths     []Path
	coord     Coordination
	rep       bool
	deps      *fd.Set
	outSchema fd.AttrSet
	inLabels  []core.Label
	outReps   bool

	steps []core.Step
	rec   core.Reconciliation
	out   core.Label
}

func annEqual(a, b core.Annotation) bool {
	return a.Confluent == b.Confluent && a.Write == b.Write &&
		a.GateStar == b.GateStar && a.Gate.Equal(b.Gate)
}

func pathsEqual(a, b []Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].From != b[i].From || a[i].To != b[i].To || !annEqual(a[i].Ann, b[i].Ann) {
			return false
		}
	}
	return true
}

func labelsEqual(a, b []core.Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func (m *nodeMemo) valid(comp *Component, iface string, in []core.Label, outReps bool) bool {
	if m.coord != comp.Coordination || m.rep != comp.Rep || m.deps != comp.Deps || m.outReps != outReps {
		return false
	}
	var schema fd.AttrSet
	if comp.OutSchema != nil {
		schema = comp.OutSchema[iface]
	}
	return m.outSchema.Equal(schema) && pathsEqual(m.paths, comp.Paths) && labelsEqual(m.inLabels, in)
}

// NewIncremental wraps g (which the caller owns and mutates in place; every
// mutation must be reported through a Note* method before the next Analyze).
func NewIncremental(g *Graph) *Incremental {
	return &Incremental{
		g:              g,
		topoDirty:      true,
		pendingComps:   map[string]bool{},
		pendingStreams: map[string]bool{},
		memo:           map[[2]string][]*nodeMemo{},
		stamped:        map[[2]string]*nodeMemo{},
		carry:          map[[2]string]bool{},
	}
}

// Graph returns the live graph. Mutations must be noted.
func (inc *Incremental) Graph() *Graph { return inc.g }

// Version returns the mutation counter (bumped once per noted change).
func (inc *Incremental) Version() uint64 { return inc.version }

// NoteTopologyChange records a structural mutation (components, paths or
// streams added/removed/replaced): the next Analyze revalidates and rebuilds
// the collapse, order and indexes.
func (inc *Incremental) NoteTopologyChange() {
	inc.version++
	inc.topoDirty = true
}

// NoteAnnotationChange records that the named component's path annotations
// changed in place (same path list, new annotations). Components on
// interface-level cycles degrade to a structural rebuild, because the
// collapsed annotation is derived from its cycle members.
func (inc *Incremental) NoteAnnotationChange(comp string) {
	inc.version++
	if inc.topoDirty {
		return
	}
	if inc.cyclic[comp] {
		inc.topoDirty = true
		return
	}
	inc.pendingComps[comp] = true
}

// NoteStreamChange records that the named stream's seal (or replication
// flag) changed in place.
func (inc *Incremental) NoteStreamChange(stream string) {
	inc.version++
	if !inc.topoDirty {
		inc.pendingStreams[stream] = true
	}
}

// rebuildStructure revalidates and recomputes the collapse, topo order,
// stream index and cycle membership.
func (inc *Incremental) rebuildStructure() error {
	if err := inc.g.Validate(); err != nil {
		return err
	}
	cg := collapseSCCs(inc.g)
	if cg != inc.g {
		if err := cg.Validate(); err != nil {
			return fmt.Errorf("dataflow: internal error: collapsed graph invalid: %w", err)
		}
	}
	inc.collapsed = cg
	inc.order = outputTopoOrder(cg)
	inc.idx = indexStreams(cg)

	ig := buildIfaceGraph(inc.g)
	sccs := condenseIfaces(ig)
	inc.cyclic = map[string]bool{}
	for id, members := range sccs.members {
		if !sccs.cyclic[id] {
			continue
		}
		for _, m := range members {
			inc.cyclic[m.comp] = true
		}
	}

	// Prune memo entries for output interfaces that no longer exist.
	live := map[[2]string]bool{}
	for _, n := range inc.order {
		live[[2]string{n.comp, n.iface}] = true
	}
	for k := range inc.memo {
		if !live[k] {
			delete(inc.memo, k)
			delete(inc.stamped, k)
		}
	}

	clear(inc.pendingComps)
	clear(inc.pendingStreams)
	clear(inc.carry)
	// The cached analysis indexes the old structure; the rebuild pass
	// restamps everything from scratch.
	inc.last = nil
	inc.topoDirty = false
	return nil
}

// applyPendingSyncs mirrors in-place annotation and seal mutations into the
// collapsed clone. When the collapse returned the original graph the clone
// IS the graph and nothing needs doing. The pending sets stay populated —
// Analyze consumes them (to restamp the affected source labels) and clears
// them once the pass is under way.
func (inc *Incremental) applyPendingSyncs() {
	if inc.collapsed == inc.g {
		return
	}
	//lint:allow maporder per-name sync of disjoint components; the lookups are read-only
	for name := range inc.pendingComps {
		orig := inc.g.Lookup(name)
		cc := inc.collapsed.Lookup(name)
		if orig == nil || cc == nil || len(cc.Paths) != len(orig.Paths) {
			// A component folded into a supernode (or out of sync): only
			// reachable if cycle membership changed without a topology
			// note — rebuild defensively.
			inc.topoDirty = true
			return
		}
		for i := range cc.Paths {
			cc.Paths[i].Ann = orig.Paths[i].Ann
		}
	}
	//lint:allow maporder per-name seal/rep sync of disjoint streams; the lookups are read-only
	for name := range inc.pendingStreams {
		if orig, cs := inc.g.Stream(name), inc.collapsed.Stream(name); orig != nil && cs != nil {
			cs.Seal = orig.Seal
			cs.Rep = orig.Rep
		}
	}
}

// Analyze re-derives the analysis, reusing every memoized derivation whose
// dependencies are unchanged. The result is identical to a fresh
// Analyze(g) of the current graph. The returned Analysis is owned by the
// engine: it is updated in place by the next Analyze, so callers must
// project what they need (labels, reports) before mutating further. ctx
// cancels between interface derivations.
//
// Invariant exploited by the in-place path: after every pass, each output
// interface's streams are stamped with the label of the memo entry recorded
// in `stamped`, so a hit on that same entry can skip stamping (and record
// rebuilding) entirely; a hit on any other cached version restamps and is
// reported as changed.
func (inc *Incremental) Analyze(ctx context.Context) (*Analysis, Stats, error) {
	var stats Stats
	if inc.last != nil && inc.version == inc.analyzed && !inc.topoDirty {
		stats.Reused = len(inc.order)
		return inc.last, stats, nil
	}

	if inc.topoDirty {
		if err := inc.rebuildStructure(); err != nil {
			return nil, stats, err
		}
	} else {
		inc.applyPendingSyncs()
		if inc.topoDirty { // defensive re-entry from applyPendingSyncs
			if err := inc.rebuildStructure(); err != nil {
				return nil, stats, err
			}
		}
	}

	cg := inc.collapsed
	inc.runSeq++
	// last survives only completed passes: rebuildStructure drops it, so
	// a rebuild performed by a *cancelled* pass still forces (and
	// reports) a full pass here.
	inPlace := inc.last != nil
	stats.Rebuilt = !inPlace
	a := inc.last
	if !inPlace {
		a = &Analysis{
			Graph:        inc.g,
			Collapsed:    cg,
			StreamLabels: make(map[string]core.Label, len(cg.Streams())),
			Components:   map[string]*ComponentAnalysis{},
		}
		for _, s := range cg.Streams() {
			if s.IsSource() {
				a.StreamLabels[s.Name] = sourceLabel(s)
			}
		}
	} else {
		// Only noted seal flips can move a source label.
		//lint:allow maporder each iteration writes its own StreamLabels slot
		for name := range inc.pendingStreams {
			if s := cg.Stream(name); s != nil && s.IsSource() {
				a.StreamLabels[name] = sourceLabel(s)
			}
		}
	}
	clear(inc.pendingComps)
	clear(inc.pendingStreams)

	var sig []core.Label // reused gather buffer
	for _, node := range inc.order {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		comp := cg.Lookup(node.comp)
		if comp == nil {
			continue
		}
		key := [2]string{node.comp, node.iface}
		sig = sig[:0]
		for _, p := range comp.Paths {
			if p.To != node.iface {
				continue
			}
			streams := inc.idx.into[[2]string{node.comp, p.From}]
			if len(streams) == 0 {
				sig = append(sig, core.Async)
				continue
			}
			for _, s := range streams {
				if l, ok := a.StreamLabels[s.Name]; ok {
					sig = append(sig, l)
				} else {
					sig = append(sig, core.Async)
				}
			}
		}
		outReps := false
		for _, s := range inc.idx.outOf[key] {
			if s.Rep {
				outReps = true
			}
		}

		// Look the signature up in the per-interface version cache
		// (most-recently-used first).
		var m *nodeMemo
		entries := inc.memo[key]
		for i, e := range entries {
			if e.valid(comp, node.iface, sig, outReps) {
				m = e
				if i > 0 { // move to front
					copy(entries[1:i+1], entries[:i])
					entries[0] = m
				}
				break
			}
		}
		if m != nil {
			stats.Reused++
		} else {
			steps, rec, out := deriveOutput(comp, node.iface, inc.idx, a.StreamLabels)
			var schema fd.AttrSet
			if comp.OutSchema != nil {
				schema = comp.OutSchema[node.iface]
			}
			m = &nodeMemo{
				paths:     append([]Path(nil), comp.Paths...),
				coord:     comp.Coordination,
				rep:       comp.Rep,
				deps:      comp.Deps,
				outSchema: schema,
				inLabels:  append([]core.Label(nil), sig...),
				outReps:   outReps,
				steps:     steps,
				rec:       rec,
				out:       out,
			}
			if len(entries) >= memoVersions {
				entries = entries[:memoVersions-1]
			}
			inc.memo[key] = append([]*nodeMemo{m}, entries...)
		}

		if inPlace && inc.stamped[key] == m {
			continue // streams already stamped with m.out, record unchanged
		}
		inc.carry[key] = true
		inc.stamped[key] = m
		for _, s := range inc.idx.outOf[key] {
			a.StreamLabels[s.Name] = m.out
		}
	}

	// The pass completed: report every interface whose derivation changed
	// since the last completed pass (including changes made by cancelled
	// passes), in propagation order, and rebuild the derivation records of
	// their components (of all components on the full path).
	touched := map[string]bool{}
	for _, node := range inc.order {
		key := [2]string{node.comp, node.iface}
		if inc.carry[key] {
			stats.Recomputed = append(stats.Recomputed, NodeRef{Comp: node.comp, Iface: node.iface})
			touched[node.comp] = true
		}
	}
	clear(inc.carry)
	if !inPlace {
		for _, node := range inc.order {
			touched[node.comp] = true
		}
	}
	if len(touched) > 0 {
		for _, node := range inc.order {
			if !touched[node.comp] {
				continue
			}
			ca := a.Components[node.comp]
			if ca == nil || ca.builtBy != inc.runSeq {
				ca = &ComponentAnalysis{
					Name:            node.comp,
					Reconciliations: map[string]core.Reconciliation{},
					OutputLabels:    map[string]core.Label{},
					builtBy:         inc.runSeq,
				}
				a.Components[node.comp] = ca
			}
			m := inc.stamped[[2]string{node.comp, node.iface}]
			if m == nil {
				continue // unreachable: every visited node has an entry
			}
			ca.Steps = append(ca.Steps, m.steps...)
			ca.Reconciliations[node.iface] = m.rec
			ca.OutputLabels[node.iface] = m.rec.Output
		}
	}

	a.Verdict = a.verdict(cg)
	inc.analyzed = inc.version
	inc.last = a
	return a, stats, nil
}
