package blazes

import (
	"encoding/json"
	"fmt"
	"sort"

	"blazes/internal/dataflow"
)

// ReportVersion identifies the Report JSON schema. Consumers should reject
// versions they do not understand; the schema only grows within a version.
// v2 adds the optional Delta section produced by analysis sessions; v1
// documents (which never carry a delta) still decode.
const (
	ReportVersion   = "blazes.report/v2"
	ReportVersionV1 = "blazes.report/v1"
)

// Report is the stable machine-readable projection of a Result: every
// stream's derived label, every component's derivation, the verdict, and
// any synthesized or applied strategies. It is plain data — it marshals to
// JSON and back without loss (encode → decode → deep-equal), which is what
// `blazes -json` emits and what embedding systems should persist.
type Report struct {
	Version  string `json:"version"`
	Dataflow string `json:"dataflow"`
	// Verdict is the highest-severity label among sink streams.
	Verdict       LabelReport `json:"verdict"`
	Deterministic bool        `json:"deterministic"`
	// Streams lists every stream of the analyzed (collapsed) graph with
	// its derived label, in name order.
	Streams []StreamReport `json:"streams"`
	// Components lists the per-component derivations in name order; cycle
	// supernodes appear under their collapsed name ("scc+A+B").
	Components []ComponentReport `json:"components"`
	// Strategies lists synthesized strategies (after Synthesize) or the
	// strategies applied to reach the fixpoint (after Repair).
	Strategies []StrategyReport `json:"strategies,omitempty"`
	// Repaired marks a post-repair fixpoint report: Strategies have been
	// applied and the labels reflect the coordinated dataflow.
	Repaired bool `json:"repaired,omitempty"`
	// Delta, present on session re-analyses only, records what changed
	// since the session's previous analysis. One-shot analyzer reports and
	// a session's first analysis omit it.
	Delta *Delta `json:"delta,omitempty"`
}

// Delta is the difference between two consecutive analyses of one session:
// the repair loop reads it to see exactly what an annotation flip, seal, or
// rewiring bought.
type Delta struct {
	// Since is the session-local sequence number of the analysis this
	// delta is relative to (the first analysis is 1).
	Since int `json:"since"`
	// Streams lists the streams whose derived label changed, in name
	// order. Streams that appeared or disappeared carry a zero Before or
	// After label (kind "").
	Streams []StreamDelta `json:"streams,omitempty"`
	// Verdict is present when the dataflow verdict changed.
	Verdict *VerdictDelta `json:"verdict,omitempty"`
	// Strategies lists per-component strategy changes (both reports must
	// carry strategies for the comparison to be meaningful; a plain
	// Analyze after a Synthesize records no strategy delta).
	Strategies []StrategyDelta `json:"strategies,omitempty"`
	// Recomputed lists the components whose derivation was actually
	// re-run by the incremental engine; everything else was served from
	// the memo. Sorted by name.
	Recomputed []string `json:"recomputed,omitempty"`
	// Reused counts output-interface derivations served from the memo.
	Reused int `json:"reused"`
}

// StreamDelta is one stream label change.
type StreamDelta struct {
	Name   string      `json:"name"`
	Before LabelReport `json:"before"`
	After  LabelReport `json:"after"`
}

// VerdictDelta is the verdict change.
type VerdictDelta struct {
	Before LabelReport `json:"before"`
	After  LabelReport `json:"after"`
}

// StrategyDelta is one component's strategy change; a nil Before marks a
// strategy that appeared, a nil After one that disappeared.
type StrategyDelta struct {
	Component string          `json:"component"`
	Before    *StrategyReport `json:"before,omitempty"`
	After     *StrategyReport `json:"after,omitempty"`
}

// LabelReport is a stream label in wire form.
type LabelReport struct {
	// Kind is the paper's label name: "NDRead", "Taint", "Seal", "Async",
	// "Run", "Inst" or "Diverge".
	Kind string `json:"kind"`
	// Key carries the seal key (Seal) or read gate (NDRead) attributes.
	Key []string `json:"key,omitempty"`
	// Severity is the label's rank in Figure 8 (higher is worse).
	Severity int `json:"severity"`
}

// StreamReport describes one stream and its derived label.
type StreamReport struct {
	Name string `json:"name"`
	// From/To are "Component.iface" endpoints; empty marks an external
	// source or sink.
	From       string      `json:"from,omitempty"`
	To         string      `json:"to,omitempty"`
	Label      LabelReport `json:"label"`
	Seal       []string    `json:"seal,omitempty"`
	Replicated bool        `json:"replicated,omitempty"`
}

// StepReport is one Figure 9 inference step.
type StepReport struct {
	Input      LabelReport `json:"input"`
	Annotation string      `json:"annotation"`
	Rule       string      `json:"rule"`
	Output     LabelReport `json:"output"`
}

// ReconciliationReport is one Figure 10 run at an output interface.
type ReconciliationReport struct {
	Interface string        `json:"interface"`
	Inputs    []LabelReport `json:"inputs"`
	Added     []LabelReport `json:"added,omitempty"`
	Notes     []string      `json:"notes,omitempty"`
	Output    LabelReport   `json:"output"`
}

// ComponentReport is one component's derivation record.
type ComponentReport struct {
	Name         string                 `json:"name"`
	Replicated   bool                   `json:"replicated,omitempty"`
	Coordination string                 `json:"coordination,omitempty"`
	Steps        []StepReport           `json:"steps"`
	Outputs      []ReconciliationReport `json:"outputs"`
}

// StrategyReport is one synthesized coordination strategy in wire form.
type StrategyReport struct {
	Component string `json:"component"`
	// Mechanism is a stable token: "none", "sequencing" (M1),
	// "dynamic-ordering" (M2) or "sealing" (M3).
	Mechanism string `json:"mechanism"`
	// SealKeys maps each gating input stream to its seal key (sealing
	// strategies only).
	SealKeys map[string][]string `json:"sealKeys,omitempty"`
	// Inputs lists the streams routed through the ordering service
	// (sequencing / dynamic-ordering strategies only).
	Inputs []string `json:"inputs,omitempty"`
	Reason string   `json:"reason,omitempty"`
}

// MechanismToken renders a Coordination as the stable wire token used in
// StrategyReport.Mechanism.
func MechanismToken(c Coordination) string {
	switch c {
	case CoordSequenced:
		return "sequencing"
	case CoordDynamicOrder:
		return "dynamic-ordering"
	case CoordSealed:
		return "sealing"
	case CoordQuorumOrder:
		return "quorum-ordering"
	case CoordMergeRewrite:
		return "merge-rewrite"
	case CoordPartitionSealed:
		return "partition-sealing"
	default:
		return "none"
	}
}

// ParseMechanism inverts MechanismToken.
func ParseMechanism(token string) (Coordination, error) {
	switch token {
	case "none":
		return CoordNone, nil
	case "sequencing":
		return CoordSequenced, nil
	case "dynamic-ordering":
		return CoordDynamicOrder, nil
	case "sealing":
		return CoordSealed, nil
	case "quorum-ordering":
		return CoordQuorumOrder, nil
	case "merge-rewrite":
		return CoordMergeRewrite, nil
	case "partition-sealing":
		return CoordPartitionSealed, nil
	default:
		return CoordNone, fmt.Errorf("blazes: unknown mechanism token %q", token)
	}
}

func labelReport(l Label) LabelReport {
	return LabelReport{Kind: l.Kind.String(), Key: attrList(l.Key), Severity: l.Severity()}
}

func attrList(s AttrSet) []string {
	if s.IsEmpty() {
		return nil
	}
	return append([]string(nil), s.Attrs()...)
}

func endpoint(comp, iface string) string {
	if comp == "" {
		return ""
	}
	return comp + "." + iface
}

func strategyReport(st Strategy) StrategyReport {
	sr := StrategyReport{
		Component: st.Component,
		Mechanism: MechanismToken(st.Mechanism),
		Reason:    st.Reason,
	}
	if len(st.SealKeys) > 0 {
		sr.SealKeys = map[string][]string{}
		for stream, key := range st.SealKeys {
			sr.SealKeys[stream] = attrList(key)
		}
	}
	if len(st.Inputs) > 0 {
		sr.Inputs = append([]string(nil), st.Inputs...)
	}
	return sr
}

// Report projects the Result into its stable wire form.
func (r *Result) Report() *Report {
	an := r.analysis
	rep := &Report{
		Version:       ReportVersion,
		Dataflow:      an.Graph.Name,
		Verdict:       labelReport(an.Verdict),
		Deterministic: an.Deterministic(),
		Repaired:      r.repaired,
	}
	rep.Streams = streamReportsOf(an)
	for _, n := range componentNamesOf(an) {
		rep.Components = append(rep.Components, componentReportOf(an, n))
	}
	for _, st := range r.strategies {
		rep.Strategies = append(rep.Strategies, strategyReport(st))
	}
	return rep
}

// streamReportsOf projects every stream of the analyzed (collapsed) graph,
// in name order.
func streamReportsOf(an *Analysis) []StreamReport {
	streams := an.Collapsed.Streams()
	byName := make([]*dataflow.Stream, len(streams))
	copy(byName, streams)
	sort.Slice(byName, func(i, j int) bool { return byName[i].Name < byName[j].Name })
	out := make([]StreamReport, 0, len(byName))
	for _, s := range byName {
		out = append(out, StreamReport{
			Name:       s.Name,
			From:       endpoint(s.FromComp, s.FromIface),
			To:         endpoint(s.ToComp, s.ToIface),
			Label:      labelReport(an.StreamLabels[s.Name]),
			Seal:       attrList(s.Seal),
			Replicated: s.Rep,
		})
	}
	return out
}

// componentNamesOf returns the analyzed component names in name order.
func componentNamesOf(an *Analysis) []string {
	names := make([]string, 0, len(an.Components))
	for n := range an.Components {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// componentReportOf projects one component's derivation record.
func componentReportOf(an *Analysis, n string) ComponentReport {
	ca := an.Components[n]
	cr := ComponentReport{Name: n}
	if comp := an.Collapsed.Lookup(n); comp != nil {
		cr.Replicated = comp.Rep
		if comp.Coordination != CoordNone {
			cr.Coordination = MechanismToken(comp.Coordination)
		}
	}
	for _, st := range ca.Steps {
		cr.Steps = append(cr.Steps, StepReport{
			Input:      labelReport(st.In),
			Annotation: st.Ann.String(),
			Rule:       string(st.Rule),
			Output:     labelReport(st.Out),
		})
	}
	ifaces := make([]string, 0, len(ca.Reconciliations))
	for iface := range ca.Reconciliations {
		ifaces = append(ifaces, iface)
	}
	sort.Strings(ifaces)
	for _, iface := range ifaces {
		rec := ca.Reconciliations[iface]
		rr := ReconciliationReport{
			Interface: iface,
			Output:    labelReport(rec.Output),
		}
		for _, l := range rec.Input {
			rr.Inputs = append(rr.Inputs, labelReport(l))
		}
		for _, l := range rec.Added {
			rr.Added = append(rr.Added, labelReport(l))
		}
		if len(rec.Notes) > 0 {
			rr.Notes = append([]string(nil), rec.Notes...)
		}
		cr.Outputs = append(cr.Outputs, rr)
	}
	return cr
}

// MarshalIndent renders the report as indented JSON (the `blazes -json`
// output format).
func (r *Report) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// DecodeReport parses a Report from JSON, rejecting unknown schema
// versions. Both the current v2 schema and the delta-free v1 schema
// decode; the document keeps the version it was written with.
func DecodeReport(data []byte) (*Report, error) {
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("blazes: decoding report: %w", err)
	}
	if rep.Version != ReportVersion && rep.Version != ReportVersionV1 {
		return nil, fmt.Errorf("blazes: unsupported report version %q (want %q or %q)", rep.Version, ReportVersion, ReportVersionV1)
	}
	return &rep, nil
}

// StreamLabel returns the wire-form label of the named stream, or false
// when the report has no such stream.
func (r *Report) StreamLabel(name string) (LabelReport, bool) {
	for _, s := range r.Streams {
		if s.Name == name {
			return s.Label, true
		}
	}
	return LabelReport{}, false
}

// Strategy returns the strategy for the named component, or false.
func (r *Report) Strategy(component string) (StrategyReport, bool) {
	for _, s := range r.Strategies {
		if s.Component == component {
			return s, true
		}
	}
	return StrategyReport{}, false
}
