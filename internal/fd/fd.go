package fd

import (
	"fmt"
	"strings"
)

// FD is a functional dependency From → To. When Injective is set, the
// dependency additionally preserves distinctness: distinct values of From map
// to distinct values of To. Only injective dependencies transfer seals — if
// we have seen every value of From, we have seen every f(From) for an
// injective f (Section V-A1 of the paper).
type FD struct {
	From      AttrSet
	To        AttrSet
	Injective bool
}

// NewFD builds a (non-injective) functional dependency.
func NewFD(from, to AttrSet) FD { return FD{From: from, To: to} }

// NewInjectiveFD builds an injective functional dependency, such as the
// identity dependency introduced by projecting an attribute without
// transformation.
func NewInjectiveFD(from, to AttrSet) FD { return FD{From: from, To: to, Injective: true} }

// Identity returns the trivial injective dependency attr → attr.
func Identity(attr string) FD {
	s := NewAttrSet(attr)
	return FD{From: s, To: s, Injective: true}
}

// Rename returns the injective dependency from → to introduced when an
// attribute is projected (possibly under a new name) without transformation.
func Rename(from, to string) FD {
	return FD{From: NewAttrSet(from), To: NewAttrSet(to), Injective: true}
}

// String renders the dependency in the usual arrow notation, with "↣"
// marking injective dependencies.
func (f FD) String() string {
	arrow := "->"
	if f.Injective {
		arrow = ">->"
	}
	return fmt.Sprintf("%s %s %s", f.From, arrow, f.To)
}

// Set is a collection of functional dependencies over which closures and
// chases are computed. The zero value is an empty, usable set.
type Set struct {
	fds []FD
}

// NewSet builds a dependency set from the given dependencies.
func NewSet(fds ...FD) *Set {
	s := &Set{}
	for _, f := range fds {
		s.Add(f)
	}
	return s
}

// Add inserts a dependency. Dependencies with empty From or To sides are
// ignored (they are vacuous).
func (s *Set) Add(f FD) {
	if f.From.IsEmpty() || f.To.IsEmpty() {
		return
	}
	s.fds = append(s.fds, f)
}

// AddIdentity inserts the identity dependency for each named attribute.
func (s *Set) AddIdentity(attrs ...string) {
	for _, a := range attrs {
		s.Add(Identity(a))
	}
}

// FDs returns a copy of the dependencies in the set.
func (s *Set) FDs() []FD {
	out := make([]FD, len(s.fds))
	copy(out, s.fds)
	return out
}

// Len reports the number of dependencies in the set.
func (s *Set) Len() int { return len(s.fds) }

// Closure computes the attribute closure of start under the dependencies in
// the set: the largest set X such that start → X. The standard fixpoint
// algorithm (Maier; Beeri–Bernstein) is used.
func (s *Set) Closure(start AttrSet) AttrSet {
	return s.closure(start, false)
}

// InjectiveClosure computes the closure of start using only injective
// dependencies, so start ↣ result via a composition of injective functions.
// Injectivity composes: if f and g are injective, g∘f is injective, which is
// exactly the transitive "chase" of identity projections through a dataflow.
func (s *Set) InjectiveClosure(start AttrSet) AttrSet {
	return s.closure(start, true)
}

func (s *Set) closure(start AttrSet, injectiveOnly bool) AttrSet {
	result := start
	for changed := true; changed; {
		changed = false
		for _, f := range s.fds {
			if injectiveOnly && !f.Injective {
				continue
			}
			if f.From.SubsetOf(result) && !f.To.SubsetOf(result) {
				result = result.Union(f.To)
				changed = true
			}
		}
	}
	return result
}

// Determines reports whether from → to holds under the set (to is contained
// in the closure of from).
func (s *Set) Determines(from, to AttrSet) bool {
	return to.SubsetOf(s.Closure(from))
}

// InjectivelyDetermines implements the paper's injectivefd(A, B) predicate:
// A functionally determines B via some composition of injective
// (distinctness-preserving) functions recorded in the set.
func (s *Set) InjectivelyDetermines(from, to AttrSet) bool {
	if to.IsEmpty() {
		return false
	}
	return to.SubsetOf(s.InjectiveClosure(from))
}

// Compatible implements the paper's predicate
//
//	compatible(gate, key) ≡ ∃ attr ⊆ gate . injectivefd(key, attr)
//
// deciding whether a stream sealed on key can drive an order-sensitive
// component partitioned on gate: some nonempty subset of the gate attributes
// must be injectively determined by the seal key, so that once every key
// partition is sealed, the corresponding gate partitions are sealed too.
func (s *Set) Compatible(gate, key AttrSet) bool {
	if gate.IsEmpty() || key.IsEmpty() {
		return false
	}
	// ∃ nonempty attr ⊆ gate with attr ⊆ InjectiveClosure(key) — equivalent
	// to the intersection of gate with the injective closure being nonempty.
	return !gate.Intersect(s.InjectiveClosure(key)).IsEmpty()
}

// String lists the dependencies one per line.
func (s *Set) String() string {
	parts := make([]string, len(s.fds))
	for i, f := range s.fds {
		parts[i] = f.String()
	}
	return strings.Join(parts, "\n")
}
