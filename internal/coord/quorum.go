package coord

import (
	"math"
	"sort"

	"blazes/internal/sim"
)

// QuorumConfig shapes the quorum-ordering substrate (the quorum-ordering
// strategy, M1q).
type QuorumConfig struct {
	// Delivery bounds the direct producer→replica hop. Per-pair delivery
	// is FIFO: jitter never reorders one producer's messages at one
	// replica, which is what makes a producer's own stamps act as
	// watermarks.
	Delivery sim.LinkConfig
	// HeartbeatEvery is the idle-watermark period: how often a producer
	// that has nothing to send still advances the stability frontier. It
	// bounds how long stable messages can sit buffered, and it is the
	// protocol's whole coordination cost — compare Heartbeats() against a
	// Sequencer's one round trip per Submit.
	HeartbeatEvery sim.Time
}

// DefaultQuorum mirrors DefaultSequencer's link model with a 100ms
// heartbeat: cheap enough to be negligible against per-message round
// trips, frequent enough that buffered reads release within a heartbeat.
var DefaultQuorum = QuorumConfig{
	Delivery:       sim.LinkConfig{MinDelay: 300 * sim.Microsecond, MaxDelay: 2 * sim.Millisecond},
	HeartbeatEvery: 100 * sim.Millisecond,
}

// Stamp is the preordained position of a message in the quorum order:
// messages are delivered in (Clock, Producer, Seq) order. Clock is the
// producer's Lamport clock at send time, Seq its per-producer sequence
// number (also the dedup key under at-least-once delivery).
type Stamp struct {
	Clock    uint64
	Producer int
	Seq      uint64
}

// less orders stamps by (Clock, Producer, Seq).
func (a Stamp) less(b Stamp) bool {
	if a.Clock != b.Clock {
		return a.Clock < b.Clock
	}
	if a.Producer != b.Producer {
		return a.Producer < b.Producer
	}
	return a.Seq < b.Seq
}

// QuorumOrder is the quorum/vector-clock ordering service: producers stamp
// messages with monotone Lamport clocks and send them directly to every
// replica; replicas buffer and deliver in (Clock, Producer, Seq) order once
// the stability frontier — the minimum watermark across producers — has
// passed. The total order is fixed by the stamps at send time, so unlike a
// Sequencer (one round trip per message) the only coordination traffic is
// the periodic heartbeat that advances watermarks through idle periods.
type QuorumOrder struct {
	sim        *sim.Sim
	cfg        QuorumConfig
	producers  []*QuorumProducer
	replicas   []*quorumReplica
	heartbeats int
	delivered  int
}

// NewQuorumOrder creates a quorum-ordering service on the given simulator.
func NewQuorumOrder(s *sim.Sim, cfg QuorumConfig) *QuorumOrder {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultQuorum.HeartbeatEvery
	}
	return &QuorumOrder{sim: s, cfg: cfg}
}

// Subscribe registers a replica delivery callback. All replicas observe
// the same (Clock, Producer, Seq) total order.
func (q *QuorumOrder) Subscribe(fn func(Stamp, any)) {
	r := &quorumReplica{
		q:           q,
		fn:          fn,
		watermark:   map[int]uint64{},
		seen:        map[[2]uint64]bool{},
		lastArrival: map[int]sim.Time{},
	}
	for _, p := range q.producers {
		r.watermark[p.id] = 0
	}
	q.replicas = append(q.replicas, r)
}

// Producer registers a new producer and starts its heartbeat. Register
// every producer before the first Send so replicas know the full frontier.
func (q *QuorumOrder) Producer() *QuorumProducer {
	p := &QuorumProducer{q: q, id: len(q.producers)}
	q.producers = append(q.producers, p)
	for _, r := range q.replicas {
		r.watermark[p.id] = 0
	}
	q.sim.After(q.cfg.HeartbeatEvery, p.tick)
	return p
}

// Heartbeats reports how many watermark broadcasts producers have issued —
// the protocol's total coordination cost, the analog of a Sequencer's
// Submitted count.
func (q *QuorumOrder) Heartbeats() int { return q.heartbeats }

// Delivered reports the total number of replica deliveries.
func (q *QuorumOrder) Delivered() int { return q.delivered }

// QuorumProducer is one stamping client of the quorum order.
type QuorumProducer struct {
	q     *QuorumOrder
	id    int
	clock uint64
	seq   uint64
	done  bool
}

// ID returns the producer's position in the (Clock, Producer, Seq) order.
func (p *QuorumProducer) ID() int { return p.id }

// Send stamps msg with the producer's next clock and broadcasts it to
// every replica over the direct jittered (but per-pair FIFO) hop.
func (p *QuorumProducer) Send(msg any) {
	p.clock++
	p.seq++
	st := Stamp{Clock: p.clock, Producer: p.id, Seq: p.seq}
	for _, r := range p.q.replicas {
		r.send(p.id, func() { r.data(st, msg) })
	}
}

// tick emits a heartbeat and reschedules itself until Done.
func (p *QuorumProducer) tick() {
	if p.done {
		return
	}
	p.heartbeat(p.clock)
	p.q.sim.After(p.q.cfg.HeartbeatEvery, p.tick)
}

// Done marks the producer quiescent: a final watermark at +inf lets
// replicas drain everything buffered behind this producer's frontier.
func (p *QuorumProducer) Done() {
	if p.done {
		return
	}
	p.done = true
	p.heartbeat(math.MaxUint64)
}

// heartbeat broadcasts the producer's watermark: a promise that no future
// stamp from it will carry a clock ≤ w.
func (p *QuorumProducer) heartbeat(w uint64) {
	p.q.heartbeats++
	for _, r := range p.q.replicas {
		r.send(p.id, func() { r.mark(p.id, w) })
	}
}

// quorumReplica buffers stamped messages and releases them in stamp order
// as the stability frontier advances.
type quorumReplica struct {
	q  *QuorumOrder
	fn func(Stamp, any)
	// buffer holds arrived-but-unstable messages.
	buffer []stamped
	// watermark is the highest clock each producer has promised not to
	// send at or below again (its last stamp or heartbeat).
	watermark map[int]uint64
	// seen dedups data messages by (producer, seq) under at-least-once
	// delivery.
	seen map[[2]uint64]bool
	// lastArrival keeps each producer→replica link FIFO, like the
	// Sequencer's per-subscriber clamp.
	lastArrival map[int]sim.Time
}

type stamped struct {
	st  Stamp
	msg any
}

// send schedules fn at a jittered arrival that never overtakes earlier
// traffic from the same producer, duplicating per the link configuration
// (data dedups by stamp, watermarks are idempotent).
func (r *quorumReplica) send(producer int, fn func()) {
	r.deliver(producer, fn)
	if p := r.q.cfg.Delivery.DupProb; p > 0 && r.q.sim.Rand().Float64() < p {
		r.deliver(producer, fn)
	}
}

func (r *quorumReplica) deliver(producer int, fn func()) {
	at := r.q.cfg.Delivery.Arrival(r.q.sim)
	if last := r.lastArrival[producer]; at < last {
		at = last
	}
	r.lastArrival[producer] = at
	r.q.sim.At(at, fn)
}

// data receives one stamped message: dedup, record the implied watermark
// (the stamp itself — FIFO links make it one), buffer, and drain.
func (r *quorumReplica) data(st Stamp, msg any) {
	key := [2]uint64{uint64(st.Producer), st.Seq}
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	if st.Clock > r.watermark[st.Producer] {
		r.watermark[st.Producer] = st.Clock
	}
	r.buffer = append(r.buffer, stamped{st: st, msg: msg})
	r.drain()
}

// mark receives a watermark heartbeat (idempotent: max wins).
func (r *quorumReplica) mark(producer int, w uint64) {
	if w > r.watermark[producer] {
		r.watermark[producer] = w
	}
	r.drain()
}

// drain delivers every buffered message at or below the stability frontier
// — the minimum watermark across producers — in (Clock, Producer, Seq)
// order. A producer never stamps at or below its watermark again and the
// per-pair links are FIFO, so everything ≤ the frontier has arrived:
// delivering it in stamp order is safe and identical at every replica.
func (r *quorumReplica) drain() {
	frontier := uint64(math.MaxUint64)
	//lint:allow maporder min over the values is order-insensitive
	for _, w := range r.watermark {
		if w < frontier {
			frontier = w
		}
	}
	if len(r.watermark) == 0 {
		frontier = 0
	}
	var ready, rest []stamped
	for _, m := range r.buffer {
		if m.st.Clock <= frontier {
			ready = append(ready, m)
		} else {
			rest = append(rest, m)
		}
	}
	if len(ready) == 0 {
		return
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].st.less(ready[j].st) })
	r.buffer = rest
	for _, m := range ready {
		r.q.delivered++
		r.fn(m.st, m.msg)
	}
}
